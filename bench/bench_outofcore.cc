// Out-of-core serving benchmark (DESIGN.md §13): ingests a generated d5
// corpus into a BTSX v2 file, reopens it through a DiskStore whose block
// cache budget is deliberately a quarter of the record section — so the
// corpus cannot be fully resident — and enforces three invariants before
// the counter diff in CI:
//
//   1. Byte-identity: every query answered from disk at 1/2/4 threads is
//      byte-identical to the in-RAM engine on the original document.
//   2. Budget: resident block-cache bytes never exceed the configured
//      budget (checked after every query), and the constrained run
//      actually evicts — proving the corpus was served out of core, not
//      silently cached whole.
//   3. Store parity: a sequential scan through the DiskStore returns
//      bit-identical NodeRecords to a PageStore over the same document at
//      the same granularity, with identical read counts (NumPages) and
//      identical partition decisions; the pread fallback mode (no mapping,
//      explicit block I/O) agrees record-for-record too.
//
// Exit status is non-zero on any violation. The BENCH_outofcore.json
// artifact pins the per-operator work counters of the disk-served plans:
// with a fixed seed and scale they are pure functions of the plan, so the
// perf gate catches a change that makes out-of-core plans scan more.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/engine.h"
#include "storage/btsx2.h"
#include "storage/disk_store.h"
#include "storage/page_store.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::ProfileSink;
using blossomtree::bench::TimeSeconds;
using blossomtree::bench::WithContext;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;

namespace {

struct QueryCase {
  const char* id;
  const char* text;
};

// The same shapes the service and cache gates exercise: a low-selectivity
// path (o1, every block of the record section is touched), a selective
// predicate path (o2), and a FLWOR pipeline (o3) whose binding scan goes
// through the store.
constexpr QueryCase kQueries[] = {
    {"o1", "//article/author"},
    {"o2", "//phdthesis[year]/title"},
    {"o3", "for $a in //article where exists($a/year) return "
           "<hit>{$a/title}</hit>"},
};

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.05);
  std::vector<unsigned> threads = flags.threads;
  if (threads.empty()) threads = {1, 2, 4};

  GenOptions o;
  o.scale = flags.scale;
  o.seed = flags.seed;
  auto doc = GenerateDataset(Dataset::kD5Dblp, o);

  const std::string path = "bench_outofcore_tmp.btsx2";
  if (auto s = blossomtree::storage::WriteBtsx2(*doc, path); !s.ok()) {
    std::printf("ingest failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Budget: a quarter of the record section, so a full-document scan must
  // evict. Small blocks keep the block count meaningful at bench scale.
  blossomtree::storage::DiskStoreOptions opts;
  opts.block_bytes = 4096;
  auto probe = blossomtree::storage::DiskStore::Open(path, opts);
  if (!probe.ok()) {
    std::printf("open failed: %s\n", probe.status().ToString().c_str());
    return 1;
  }
  opts.cache_budget_bytes = (*probe)->RecordBytes() / 4;
  probe->reset();
  auto store = blossomtree::storage::DiskStore::Open(path, opts);
  if (!store.ok()) {
    std::printf("open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Out-of-core corpus: %s, %zu nodes, file %.1f KiB, records %.1f KiB, "
      "cache budget %.1f KiB (%zu blocks of %zu B)\n\n",
      DatasetName(Dataset::kD5Dblp), (*store)->NumNodes(),
      (*store)->FileBytes() / 1024.0, (*store)->RecordBytes() / 1024.0,
      (*store)->budget_bytes() / 1024.0, (*store)->NumPages(),
      (size_t)4096);

  bool ok = true;
  if ((*store)->budget_bytes() >= (*store)->RecordBytes()) {
    std::printf("FAIL: budget does not constrain the record section\n");
    ok = false;
  }

  ProfileSink sink("outofcore");
  sink.AddDatasetLabel(DatasetName(Dataset::kD5Dblp));

  std::printf("  %-3s %7s %11s %11s %9s %s\n", "id", "threads", "ram_ms",
              "disk_ms", "blk_reads", "identical");

  for (const QueryCase& q : kQueries) {
    // In-RAM reference on the original (built, non-adopted) document.
    blossomtree::engine::EngineOptions plain;
    plain.num_threads = 1;
    blossomtree::engine::BlossomTreeEngine ref(doc.get(), plain);
    auto ref_r = ref.EvaluateQuery(q.text);
    if (!ref_r.ok()) {
      std::printf("  %-3s reference error: %s\n", q.id,
                  ref_r.status().ToString().c_str());
      return 1;
    }

    // Serial disk-served profile for the artifact, outside the timed runs.
    {
      blossomtree::engine::EngineOptions po;
      po.num_threads = 1;
      po.collect_profile = true;
      po.plan.store = store->get();
      blossomtree::engine::BlossomTreeEngine prof((*store)->document(), po);
      if (prof.EvaluateQuery(q.text).ok()) {
        std::string context = "\"dataset\": \"" +
                              std::string(DatasetName(Dataset::kD5Dblp)) +
                              "\", \"id\": \"" + q.id +
                              "\", \"variant\": \"disk\"";
        sink.Add(WithContext(context, prof.LastProfile().ToJson()));
      }
    }

    for (unsigned t : threads) {
      blossomtree::engine::EngineOptions ro;
      ro.num_threads = t;
      blossomtree::engine::BlossomTreeEngine ram(doc.get(), ro);
      blossomtree::engine::EngineOptions dopt;
      dopt.num_threads = t;
      dopt.plan.store = store->get();
      blossomtree::engine::BlossomTreeEngine disk((*store)->document(), dopt);

      bool identical = true;
      uint64_t block_reads = 0;
      std::vector<double> ram_samples;
      std::vector<double> disk_samples;
      for (int run = 0; run < flags.runs; ++run) {
        blossomtree::Result<std::string> rr = std::string{};
        ram_samples.push_back(
            TimeSeconds([&] { rr = ram.EvaluateQuery(q.text); }));
        if (!rr.ok() || *rr != *ref_r) identical = false;

        (*store)->ResetCounters();
        blossomtree::Result<std::string> dr = std::string{};
        disk_samples.push_back(
            TimeSeconds([&] { dr = disk.EvaluateQuery(q.text); }));
        if (!dr.ok() || *dr != *ref_r) identical = false;
        block_reads = (*store)->PageReads();

        auto stats = (*store)->BlockCacheStats();
        if (stats.bytes > (*store)->budget_bytes()) {
          std::printf("FAIL: cache %llu bytes over budget %llu\n",
                      (unsigned long long)stats.bytes,
                      (unsigned long long)(*store)->budget_bytes());
          ok = false;
        }
      }
      ok = ok && identical;
      std::printf("  %-3s %7u %11.3f %11.3f %9llu %s\n", q.id, t,
                  Median(ram_samples) * 1e3, Median(disk_samples) * 1e3,
                  (unsigned long long)block_reads,
                  identical ? "yes" : "NO");
    }
  }

  // The constrained cache must actually have evicted: proof the corpus was
  // served out of core rather than resident end to end.
  auto stats = (*store)->BlockCacheStats();
  std::printf("\nBlock cache: %llu hits, %llu misses, %llu evictions, "
              "%llu bytes resident\n",
              (unsigned long long)stats.hits,
              (unsigned long long)stats.misses,
              (unsigned long long)stats.evictions,
              (unsigned long long)stats.bytes);
  if (stats.evictions == 0) {
    std::printf("FAIL: no evictions — the corpus fit in the budget\n");
    ok = false;
  }

  // Store parity: DiskStore vs PageStore at the same granularity.
  {
    blossomtree::storage::PageStore pages(*doc, /*page_bytes=*/4096);
    blossomtree::storage::ScanCursor dc;
    blossomtree::storage::ScanCursor pc;
    for (blossomtree::xml::NodeId n = 0; n < (*store)->NumNodes(); ++n) {
      blossomtree::storage::NodeRecord a = (*store)->Get(n, &dc);
      blossomtree::storage::NodeRecord b = pages.Get(n, &pc);
      if (std::memcmp(&a, &b, sizeof a) != 0) {
        std::printf("FAIL: record mismatch vs PageStore at node %u\n", n);
        ok = false;
        break;
      }
    }
    if (dc.reads != pc.reads || dc.reads != (*store)->NumPages()) {
      std::printf("FAIL: sequential scan reads %llu (disk) vs %llu (page), "
                  "expected %zu\n",
                  (unsigned long long)dc.reads, (unsigned long long)pc.reads,
                  (*store)->NumPages());
      ok = false;
    }
    for (size_t k : {size_t{1}, size_t{2}, size_t{4}}) {
      if ((*store)->Partition(k) != pages.Partition(k)) {
        std::printf("FAIL: partition mismatch vs PageStore at k=%zu\n", k);
        ok = false;
      }
    }
  }

  // Pread fallback: explicit block I/O, no mapping, scan API only.
  {
    blossomtree::storage::DiskStoreOptions po = opts;
    po.use_mmap = false;
    auto pread = blossomtree::storage::DiskStore::Open(path, po);
    if (!pread.ok()) {
      std::printf("FAIL: pread open: %s\n",
                  pread.status().ToString().c_str());
      ok = false;
    } else {
      blossomtree::storage::ScanCursor mc;
      blossomtree::storage::ScanCursor rc;
      for (blossomtree::xml::NodeId n = 0; n < (*pread)->NumNodes(); ++n) {
        blossomtree::storage::NodeRecord a = (*store)->Get(n, &mc);
        blossomtree::storage::NodeRecord b = (*pread)->Get(n, &rc);
        if (std::memcmp(&a, &b, sizeof a) != 0) {
          std::printf("FAIL: pread record mismatch at node %u\n", n);
          ok = false;
          break;
        }
      }
      auto ps = (*pread)->BlockCacheStats();
      if (ps.bytes > (*pread)->budget_bytes()) {
        std::printf("FAIL: pread cache over budget\n");
        ok = false;
      }
    }
  }

  sink.WriteAndReport();
  std::remove(path.c_str());

  if (!ok) {
    std::printf("FAIL: out-of-core invariants violated\n");
    return 1;
  }
  std::printf("OK: disk-served results byte-identical at every thread "
              "count, cache stayed under budget\n");
  return 0;
}
