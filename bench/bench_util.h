#ifndef BLOSSOMTREE_BENCH_BENCH_UTIL_H_
#define BLOSSOMTREE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace blossomtree {
namespace bench {

/// Shared command-line flags for the table-reproduction harnesses.
struct BenchFlags {
  double scale = 0.2;      ///< Dataset scale factor (1.0 ≈ paper/10).
  uint64_t seed = 42;      ///< Generator seed.
  int runs = 3;            ///< Timed repetitions; the paper averages 3.
  double dnf_seconds = 5;  ///< Per-run cap; slower runs print DNF.
  /// Thread counts to sweep (--threads=1,2,4). Benches that support
  /// intra-query parallelism time each count; 1 is always measured as the
  /// baseline. Empty = the bench's default sweep.
  std::vector<unsigned> threads;
  std::string json_path;   ///< --json=PATH: machine-readable results.
};

inline BenchFlags ParseFlags(int argc, char** argv,
                             double default_scale = 0.2) {
  BenchFlags flags;
  flags.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      flags.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      flags.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      flags.runs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--dnf-seconds=", 14) == 0) {
      flags.dnf_seconds = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      for (const char* p = arg + 10; *p != '\0';) {
        char* end = nullptr;
        unsigned long t = std::strtoul(p, &end, 10);
        if (end == p) break;
        if (t > 0) flags.threads.push_back(static_cast<unsigned>(t));
        p = *end == ',' ? end + 1 : end;
      }
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      flags.json_path = arg + 7;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "flags: --scale=F --seed=N --runs=N --dnf-seconds=F "
          "--threads=N[,N...] --json=PATH\n");
      std::exit(0);
    }
  }
  return flags;
}

/// Times one invocation of `fn` in seconds.
inline double TimeSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Runs `fn` up to `runs` times, returning the average seconds; returns a
/// negative value (DNF) if a run exceeds `dnf_seconds`. When `run_seconds`
/// is non-null every completed run's time is appended — the per-query
/// latency histograms in BENCH_*.json are fed from these samples.
inline double TimeAverage(const std::function<void()>& fn, int runs,
                          double dnf_seconds,
                          std::vector<double>* run_seconds = nullptr) {
  double total = 0;
  for (int i = 0; i < runs; ++i) {
    double t = TimeSeconds(fn);
    if (run_seconds != nullptr) run_seconds->push_back(t);
    if (t > dnf_seconds) return -1.0;
    total += t;
  }
  return total / runs;
}

/// Build configuration of this binary ("Release" = assertions compiled
/// out), stamped into BENCH_*.json so latency numbers from a Debug run are
/// never mistaken for Release measurements. The counter-based perf gate is
/// build-type independent.
inline const char* BuildType() {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

/// Compiler banner (e.g. "13.2.0" under GCC, "Ubuntu clang ..." strings
/// under Clang) for the BENCH_*.json environment block.
inline const char* CompilerVersion() {
#ifdef __VERSION__
  return __VERSION__;
#else
  return "unknown";
#endif
}

/// Formats a time cell: seconds with 3 decimals, or "DNF".
inline std::string TimeCell(double seconds) {
  if (seconds < 0) return "DNF";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

/// Accumulates per-query operator profiles as pre-serialized JSON objects
/// (typically engine::QueryProfile::ToJson() wrapped with dataset/system
/// context by the caller) and writes them as BENCH_<bench>.json. Keeping
/// the entries opaque here avoids an engine dependency in bench_util.h.
class ProfileSink {
 public:
  /// Schema of the BENCH_*.json artifacts. v2 added the environment block
  /// and per-query latency histograms; bump on layout changes so the
  /// regression gate can refuse cross-schema diffs.
  static constexpr int kSchemaVersion = 2;

  explicit ProfileSink(std::string bench) : bench_(std::move(bench)) {}

  /// Adds one complete JSON object (e.g. `{"dataset": "d1", ...}`).
  void Add(std::string json_object) {
    if (!json_object.empty()) entries_.push_back(std::move(json_object));
  }

  /// Environment stamps for the artifact header: the thread count the
  /// harness ran with, and each dataset it touched (deduplicated, in
  /// first-seen order).
  void SetThreads(unsigned threads) { threads_ = threads; }
  void AddDatasetLabel(const std::string& label) {
    for (const std::string& d : datasets_) {
      if (d == label) return;
    }
    datasets_.push_back(label);
  }

  bool empty() const { return entries_.empty(); }

  /// Writes `{"bench": ..., "schema_version": ..., "environment": {...},
  /// "profiles": [...]}`; returns the path written, or an empty string on
  /// failure/no entries.
  std::string Write() const {
    if (entries_.empty()) return {};
    std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return {};
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema_version\": %d,\n",
                 bench_.c_str(), kSchemaVersion);
    std::fprintf(f,
                 "  \"environment\": {\"build\": \"%s\", \"compiler\": "
                 "\"%s\", \"threads\": %u, \"datasets\": [",
                 BuildType(), CompilerVersion(), threads_);
    for (size_t i = 0; i < datasets_.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i > 0 ? ", " : "", datasets_[i].c_str());
    }
    std::fprintf(f, "]},\n  \"profiles\": [\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", entries_[i].c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return path;
  }

  /// Write() plus a one-line notice on stdout.
  void WriteAndReport() const {
    std::string path = Write();
    if (!path.empty()) {
      std::printf("\nPer-operator profiles written to %s\n", path.c_str());
    }
  }

 private:
  std::string bench_;
  std::vector<std::string> entries_;
  unsigned threads_ = 1;
  std::vector<std::string> datasets_;
};

}  // namespace bench
}  // namespace blossomtree

#endif  // BLOSSOMTREE_BENCH_BENCH_UTIL_H_
