// Ablation for §4.2's memory/correctness discussion: "if the input XML
// document is recursive, the order preserving property will not hold. Even
// if we modify the pipelined algorithm to cache more results ... the memory
// requirement for caching the intermediate results could be large [3]".
//
// On documents with increasing same-tag nesting degree k this bench shows:
//  - the pipelined join LOSES matches (emitted NestedLists < correct) — why
//    the optimizer must disable it on recursive documents (Theorem 2);
//  - the cache a corrected pipelined join would need grows with k (an inner
//    match inside k nested outer matches must be delivered k times — the
//    max multiplicity column, matching the memory lower bound of the
//    paper's reference [3]);
//  - the BNLJ stays correct, paying k bounded re-scans instead.

#include <cstdio>

#include "bench_profile.h"
#include "bench_util.h"
#include "exec/operator.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "xml/parser.h"
#include "xpath/parser.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::TimeSeconds;
using blossomtree::opt::JoinStrategy;
using blossomtree::opt::PlanOptions;

namespace {

/// Builds k nested <a> levels, each carrying `width` <b/> children.
std::string NestedDoc(int depth, int width) {
  std::string xml = "<r>";
  for (int i = 0; i < depth; ++i) {
    xml += "<a>";
    for (int w = 0; w < width; ++w) xml += "<b/>";
  }
  for (int i = 0; i < depth; ++i) xml += "</a>";
  xml += "</r>";
  return xml;
}

size_t CountLists(const blossomtree::xml::Document* doc,
                  const blossomtree::pattern::BlossomTree* tree,
                  JoinStrategy strategy, double* seconds) {
  PlanOptions po;
  po.strategy = strategy;
  size_t count = 0;
  *seconds = TimeSeconds([&] {
    auto plan = blossomtree::opt::PlanQuery(doc, tree, po);
    if (!plan.ok()) return;
    blossomtree::nestedlist::NestedList nl;
    while (plan->trees[0].root->GetNext(&nl)) ++count;
  });
  return count;
}

/// Max number of a-ancestors over all b nodes: the per-item delivery count
/// (and hence cache multiplicity) a correct pipelined join would need.
uint64_t MaxMultiplicity(const blossomtree::xml::Document& doc) {
  uint64_t best = 0;
  auto a_tag = doc.tags().Lookup("a");
  auto b_tag = doc.tags().Lookup("b");
  for (blossomtree::xml::NodeId b : doc.TagIndex(b_tag)) {
    uint64_t count = 0;
    for (blossomtree::xml::NodeId a : doc.TagIndex(a_tag)) {
      if (doc.IsAncestor(a, b)) ++count;
    }
    best = std::max(best, count);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/1.0);
  (void)flags;
  std::printf(
      "Ablation: pipelined join on recursive documents — lost matches and\n"
      "cache requirement vs nesting degree (query //a//b, width 4)\n\n");
  std::printf("%-7s | %10s %10s | %12s | %10s %9s\n", "nesting",
              "NL lists", "PL lists", "cache need", "NL s", "PL s");

  auto query = blossomtree::xpath::ParsePath("//a//b");
  auto tree = blossomtree::pattern::BuildFromPath(*query);
  if (!tree.ok()) return 1;

  blossomtree::bench::ProfileSink sink("ablation_pipeline_memory");
  for (int depth : {1, 2, 4, 8, 16, 32, 64}) {
    auto parsed = blossomtree::xml::ParseDocument(NestedDoc(depth, 4));
    if (!parsed.ok()) return 1;
    auto doc = parsed.MoveValue();
    double nl_s = 0;
    double pl_s = 0;
    size_t nl_lists = CountLists(doc.get(), &*tree,
                                 JoinStrategy::kBoundedNestedLoop, &nl_s);
    size_t pl_lists =
        CountLists(doc.get(), &*tree, JoinStrategy::kPipelined, &pl_s);
    std::printf("%-7d | %10zu %10zu | %12llu | %10.5f %9.5f\n", depth,
                nl_lists, pl_lists,
                static_cast<unsigned long long>(MaxMultiplicity(*doc)), nl_s,
                pl_s);
    // BNLJ breakdown per nesting degree: rescans should track the degree.
    PlanOptions po;
    po.strategy = JoinStrategy::kBoundedNestedLoop;
    sink.AddDatasetLabel("nested-depth-" + std::to_string(depth));
    blossomtree::bench::LatencyHistogram latency;
    latency.RecordSeconds(nl_s);
    sink.Add(blossomtree::bench::WithContext(
        "\"nesting\": " + std::to_string(depth) + ", \"system\": \"NL\", " +
            latency.JsonField(),
        blossomtree::bench::PlanProfileJson(doc.get(), &*tree, "//a//b",
                                            po)));
  }
  sink.WriteAndReport();
  std::printf(
      "\nExpected: NL lists == nesting degree (one per matched a); PL emits\n"
      "only the outermost match (losing the rest) — its required cache for\n"
      "correctness (max multiplicity) grows linearly with nesting, which is\n"
      "why the optimizer disables PL on recursive documents.\n");
  return 0;
}
