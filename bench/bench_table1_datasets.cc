// Reproduces Table 1 of the paper: "Categories of testing data sets".
//
// Generates the five data sets (see DESIGN.md §5 for the substitution of
// XBench/Treebank/dblp by shape-matched generators) and prints the same
// columns the paper reports: size, #nodes, avg. dep., max dep., |tags|,
// |tree| (in-memory structure size).
//
// The default scale (1.0) targets roughly 1/10 of the paper's node counts;
// pass --scale=10 to match the originals.

#include <cstdio>

#include "bench_util.h"
#include "datagen/datagen.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::datagen::AllDatasets;
using blossomtree::datagen::ComputeStats;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::DatasetStats;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;

namespace {

const char* Category(Dataset d) {
  switch (d) {
    case Dataset::kD1Recursive:
    case Dataset::kD2Address:
    case Dataset::kD3Catalog:
      return "Synthetic";
    default:
      return "Real-shaped";
  }
}

std::string Mb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/1.0);
  std::printf("Table 1: Categories of testing data sets (scale=%.2f)\n\n",
              flags.scale);
  std::printf("%-12s %-10s %-4s %-10s %9s %9s %8s %8s %10s\n", "category",
              "recursive?", "set", "size", "#nodes", "avg.dep.", "max dep.",
              "|tags|", "|tree|");
  blossomtree::bench::ProfileSink sink("table1_datasets");
  for (Dataset d : AllDatasets()) {
    GenOptions o;
    o.scale = flags.scale;
    o.seed = flags.seed;
    auto doc = GenerateDataset(d, o);
    sink.AddDatasetLabel(DatasetName(d));
    DatasetStats s = ComputeStats(*doc, DatasetName(d));
    std::printf("%-12s %-10s %-4s %-10s %9zu %9.1f %8u %8zu %10s\n",
                Category(d), s.recursive ? "Y" : "N", s.name.c_str(),
                Mb(s.xml_bytes).c_str(), s.num_nodes, s.avg_depth,
                s.max_depth, s.num_tags, Mb(s.tree_bytes).c_str());
    char stats[256];
    std::snprintf(stats, sizeof(stats),
                  "{\"dataset\": \"%s\", \"recursive\": %s, "
                  "\"xml_bytes\": %zu, \"nodes\": %zu, "
                  "\"avg_depth\": %.2f, \"max_depth\": %u, \"tags\": %zu, "
                  "\"tree_bytes\": %zu}",
                  s.name.c_str(), s.recursive ? "true" : "false",
                  s.xml_bytes, s.num_nodes, s.avg_depth, s.max_depth,
                  s.num_tags, s.tree_bytes);
    sink.Add(stats);
  }
  sink.WriteAndReport();
  std::printf(
      "\nPaper values (full size): d1 69MB/1.2M nodes, d2 17MB/403k,\n"
      "d3 30MB/621k, d4 82MB/2.4M, d5 133MB/3.3M; depth and |tags| columns\n"
      "should match the paper's shape at any scale.\n");
  return 0;
}
