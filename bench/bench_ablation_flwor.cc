// Ablation for the paper's motivating claim (§1): evaluating correlated
// path expressions "for each iteration in the for-loop ... may be very
// inefficient, due to the redundancy during the loop". Runs Example-1-style
// FLWOR queries (correlated for/let/where with <<, value and deep-equal
// predicates) with:
//   BT  = BlossomTree engine (one pattern-matching pass + joins), and
//   NAV = navigational semantics-following evaluation (paths re-evaluated
//         per loop iteration — the X-Hive-style strawman),
// over growing bibliography documents, reporting time and nodes visited.

#include <cstdio>

#include "baseline/navigational.h"
#include "bench_profile.h"
#include "bench_util.h"
#include "engine/engine.h"
#include "util/rng.h"
#include "xml/document.h"

using blossomtree::Rng;
using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::TimeCell;
using blossomtree::bench::TimeSeconds;

namespace {

/// Bibliography like Example 2's, with `n` books; ~30% carry an author.
std::unique_ptr<blossomtree::xml::Document> Bib(size_t n, uint64_t seed) {
  auto doc = std::make_unique<blossomtree::xml::Document>();
  Rng rng(seed);
  doc->BeginElement("bib");
  for (size_t i = 0; i < n; ++i) {
    doc->BeginElement("book");
    doc->BeginElement("title");
    doc->AddText("title-" + std::to_string(rng.Uniform(n / 2 + 1)));
    doc->EndElement();
    if (rng.Chance(0.3)) {
      doc->BeginElement("author");
      doc->BeginElement("last");
      doc->AddText("author-" + std::to_string(rng.Uniform(8)));
      doc->EndElement();
      doc->EndElement();
    }
    doc->EndElement();
  }
  doc->EndElement();
  blossomtree::Status st = doc->Finish();
  (void)st;
  return doc;
}

constexpr const char* kPairsQuery = R"(
<bib>{
for $book1 in doc("bib.xml")//book, $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
}</bib>
)";

constexpr const char* kSimpleQuery =
    "for $b in doc(\"bib.xml\")//book for $t in $b/title "
    "return <r>{ $t }</r>";

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/1.0);
  std::printf(
      "Ablation: FLWOR evaluation — BlossomTree (BT) vs per-iteration\n"
      "navigational re-evaluation (NAV), Example-1-style query\n\n");
  std::printf("%-8s | %-28s | %10s %10s | %12s\n", "#books", "query",
              "BT s", "NAV s", "NAV visits");

  struct Q {
    const char* name;
    const char* text;
  };
  const Q queries[] = {{"book-pairs (Example 1)", kPairsQuery},
                       {"chained for (b, b/title)", kSimpleQuery}};

  blossomtree::bench::ProfileSink sink("ablation_flwor");
  for (size_t n : {50, 100, 200, 400, 800}) {
    size_t scaled = static_cast<size_t>(n * flags.scale);
    if (scaled < 4) scaled = 4;
    auto doc = Bib(scaled, flags.seed);
    sink.AddDatasetLabel("bib-" + std::to_string(scaled));
    for (const Q& q : queries) {
      std::string bt_result;
      std::string nav_result;
      double bt_s = TimeSeconds([&] {
        blossomtree::engine::BlossomTreeEngine engine(doc.get());
        auto r = engine.EvaluateQuery(q.text);
        if (r.ok()) bt_result = r.MoveValue();
      });
      uint64_t nav_visits = 0;
      double nav_s = TimeSeconds([&] {
        blossomtree::baseline::NavigationalEvaluator nav(doc.get());
        auto r = nav.EvaluateQuery(q.text);
        if (r.ok()) nav_result = r.MoveValue();
        nav_visits = nav.NodesVisited();
      });
      if (bt_result != nav_result) {
        std::printf("!! engines disagree on %s at n=%zu\n", q.name, scaled);
      }
      std::printf("%-8zu | %-28s | %10s %10s | %12llu\n", scaled, q.name,
                  TimeCell(bt_s).c_str(), TimeCell(nav_s).c_str(),
                  static_cast<unsigned long long>(nav_visits));
      // Untimed re-run with profile collection: the engine's own
      // per-operator breakdown for the artifact.
      blossomtree::engine::EngineOptions eo;
      eo.collect_profile = true;
      blossomtree::engine::BlossomTreeEngine profiled(doc.get(), eo);
      if (profiled.EvaluateQuery(q.text).ok()) {
        blossomtree::bench::LatencyHistogram latency;
        latency.RecordSeconds(bt_s);
        sink.Add("{\"books\": " + std::to_string(scaled) +
                 ", \"query\": \"" + std::string(q.name) + "\", " +
                 latency.JsonField() +
                 ", \"profile\": " + profiled.LastProfile().ToJson() +
                 "}");
      }
    }
  }
  sink.WriteAndReport();
  std::printf(
      "\nExpected: NAV re-evaluates $book2's path and the let-paths per\n"
      "iteration, so its node visits (and time) grow superlinearly with\n"
      "the document, while BT matches each pattern tree once.\n");
  return 0;
}
