// Reproduces Table 3 of the paper: "Running time (in sec) for X-Hive (XH),
// TwigStack (TS), and BlossomTree (BT)" — the paper's main experiment.
//
// Protocol (paper §5.2):
//  - recursive data sets (d1, d4): XH, TS, NL (the pipelined join is not
//    order-preserving on recursive documents, so it is excluded);
//  - non-recursive data sets (d2, d3, d5): XH, TS, PL (the nested loop has
//    the worst performance on non-recursive data and is excluded);
//  - each number is the average over --runs executions (default 3, as in
//    the paper); runs exceeding --dnf-seconds print DNF.
//
// Systems:
//  XH = navigational whole-query baseline (X-Hive stand-in; DESIGN.md §5)
//  TS = TwigStack holistic twig join over tag indexes
//  SJ = binary structural semijoins over tag indexes (the §2.1 join-based
//       class, an extra column beyond the paper's table)
//  PL = BlossomTree plan: NoK scans + pipelined //-joins
//  NL = BlossomTree plan: NoK scans + bounded nested-loop //-joins
//
// Expected shape (paper §5.2): TS fastest on recursive data; on
// non-recursive data PL is comparable to or faster than TS (it needs no
// tag indexes); NL is the slowest and may DNF; XH trails TS/PL throughout.

#include <cstdio>
#include <vector>

#include "baseline/navigational.h"
#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "exec/twig_semijoin.h"
#include "exec/twigstack.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "workload/queries.h"
#include "xpath/parser.h"

using blossomtree::Status;
using blossomtree::baseline::NavigationalEvaluator;
using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::TimeCell;
using blossomtree::bench::TimeSeconds;
using blossomtree::datagen::AllDatasets;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;
using blossomtree::workload::QueriesFor;
using blossomtree::workload::QuerySpec;

namespace {

struct SystemRow {
  const char* name;
  std::vector<std::string> cells;
};

/// Times fn over flags.runs executions with a DNF cap; completed runs feed
/// `latency` when non-null.
std::string Timed(const BenchFlags& flags, const std::function<Status()>& fn,
                  blossomtree::bench::LatencyHistogram* latency = nullptr) {
  double total = 0;
  for (int i = 0; i < flags.runs; ++i) {
    Status st;
    double t = TimeSeconds([&] { st = fn(); });
    if (!st.ok()) return "n/a";
    if (t > flags.dnf_seconds) return "DNF";
    if (latency != nullptr) latency->RecordSeconds(t);
    total += t;
  }
  return TimeCell(total / flags.runs);
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/2.0);
  std::printf(
      "Table 3: running time (in sec) per data set x query x system\n"
      "(scale=%.2f, runs=%d, DNF cap=%.1fs)\n\n",
      flags.scale, flags.runs, flags.dnf_seconds);
  std::printf("%-5s %-4s %8s %8s %8s %8s %8s %8s\n", "file", "sys.", "Q1",
              "Q2", "Q3", "Q4", "Q5", "Q6");
  blossomtree::bench::ProfileSink sink("table3_join_algorithms");

  for (Dataset d : AllDatasets()) {
    GenOptions o;
    o.scale = flags.scale;
    o.seed = flags.seed;
    auto doc = GenerateDataset(d, o);
    sink.AddDatasetLabel(DatasetName(d));
    // Warm the tag indexes once (the join-based systems assume they exist
    // on storage, like the paper's setting).
    for (blossomtree::xml::TagId t = 0; t < doc->tags().size(); ++t) {
      doc->TagIndex(t);
    }
    bool recursive = doc->IsRecursive();

    SystemRow xh{"XH", {}};
    SystemRow ts{"TS", {}};
    SystemRow sj{"SJ", {}};
    SystemRow bt{recursive ? "NL" : "PL", {}};
    // PLm: the §4.2 merged rewrite — all NoKs in one shared scan
    // (non-recursive sets only).
    SystemRow plm{"PLm", {}};

    for (const QuerySpec& q : QueriesFor(d)) {
      auto path = blossomtree::xpath::ParsePath(q.xpath);
      if (!path.ok()) {
        for (SystemRow* row : {&xh, &ts, &sj, &bt}) {
          row->cells.push_back("parse!");
        }
        continue;
      }
      auto tree = blossomtree::pattern::BuildFromPath(*path);
      if (!tree.ok()) {
        for (SystemRow* row : {&xh, &ts, &sj, &bt}) {
          row->cells.push_back("build!");
        }
        continue;
      }

      xh.cells.push_back(Timed(flags, [&]() -> Status {
        NavigationalEvaluator nav(doc.get());
        return nav.EvaluatePath(*path).status();
      }));
      ts.cells.push_back(Timed(flags, [&]() -> Status {
        blossomtree::exec::TwigStack twig(doc.get(), &*tree);
        std::vector<blossomtree::xml::NodeId> out;
        return twig.Run(tree->VertexOfVariable("result"), &out);
      }));
      sj.cells.push_back(Timed(flags, [&]() -> Status {
        blossomtree::exec::TwigSemijoin semi(doc.get(), &*tree);
        std::vector<blossomtree::xml::NodeId> out;
        return semi.Run(tree->VertexOfVariable("result"), &out);
      }));
      blossomtree::opt::PlanOptions po;
      po.strategy = recursive
                        ? blossomtree::opt::JoinStrategy::kBoundedNestedLoop
                        : blossomtree::opt::JoinStrategy::kPipelined;
      blossomtree::bench::LatencyHistogram bt_latency;
      bt.cells.push_back(Timed(
          flags,
          [&]() -> Status {
            return blossomtree::opt::EvaluatePathQuery(doc.get(), &*tree, po)
                .status();
          },
          &bt_latency));
      // Per-operator breakdown of the BT plan (outside the timed loop).
      sink.Add(blossomtree::bench::WithContext(
          "\"dataset\": \"" + std::string(DatasetName(d)) +
              "\", \"id\": \"" + q.id + "\", \"system\": \"" + bt.name +
              "\", " + bt_latency.JsonField(),
          blossomtree::bench::PlanProfileJson(doc.get(), &*tree, q.xpath,
                                              po)));
      if (!recursive) {
        blossomtree::opt::PlanOptions pm = po;
        pm.merge_nok_scans = true;
        plm.cells.push_back(Timed(flags, [&]() -> Status {
          return blossomtree::opt::EvaluatePathQuery(doc.get(), &*tree, pm)
              .status();
        }));
      }
    }

    std::vector<const SystemRow*> rows = {&xh, &ts, &sj, &bt};
    if (!recursive) rows.push_back(&plm);
    for (const SystemRow* row : rows) {
      std::printf("%-5s %-4s", row == &xh ? DatasetName(d) : "",
                  row->name);
      for (const std::string& cell : row->cells) {
        std::printf(" %8s", cell.c_str());
      }
      std::printf("\n");
    }
  }
  sink.WriteAndReport();
  std::printf(
      "\nPaper's qualitative result: TS fastest on recursive data (d1, d4);\n"
      "PL comparable-or-faster than TS on non-recursive data (d2, d3, d5);\n"
      "NL slowest / DNF; XH consistently slower than TS and PL.\n");
  return 0;
}
