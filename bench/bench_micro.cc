// Google-benchmark microbenchmarks for the individual operators: XML
// parsing, NoK scan, structural merge join, TwigStack, pipelined join, and
// NestedList projection. These are not paper tables; they quantify the
// building blocks the table benches compose.

#include <benchmark/benchmark.h>

#include "baseline/navigational.h"
#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "exec/structural_join.h"
#include "exec/twigstack.h"
#include "nestedlist/ops.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace {

std::unique_ptr<xml::Document> BenchDoc(datagen::Dataset d, double scale) {
  datagen::GenOptions o;
  o.scale = scale;
  o.seed = 42;
  return datagen::GenerateDataset(d, o);
}

void BM_ParseXml(benchmark::State& state) {
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  std::string text = xml::Serialize(*doc);
  for (auto _ : state) {
    auto r = xml::ParseDocument(text);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseXml);

void BM_SerializeXml(benchmark::State& state) {
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  for (auto _ : state) {
    std::string text = xml::Serialize(*doc);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_SerializeXml);

void BM_NokScan(benchmark::State& state) {
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  auto path = xpath::ParsePath("//proceedings[editor]").MoveValue();
  auto tree = pattern::BuildFromPath(path).MoveValue();
  auto decomp = pattern::Decompose(tree);
  for (auto _ : state) {
    exec::NokScanOperator scan(doc.get(), &tree,
                               &decomp.noks[decomp.noks.size() - 1]);
    nestedlist::NestedList nl;
    size_t count = 0;
    while (scan.GetNext(&nl)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc->NumNodes()));
}
BENCHMARK(BM_NokScan);

void BM_StructuralJoin(benchmark::State& state) {
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  const auto& anc = doc->TagIndex(doc->tags().Lookup("proceedings"));
  const auto& desc = doc->TagIndex(doc->tags().Lookup("editor"));
  for (auto _ : state) {
    auto pairs = exec::StackStructuralJoin(*doc, anc, desc);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(anc.size() + desc.size()));
}
BENCHMARK(BM_StructuralJoin);

void BM_TwigStack(benchmark::State& state) {
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  auto path = xpath::ParsePath("//proceedings[//editor]//url").MoveValue();
  auto tree = pattern::BuildFromPath(path).MoveValue();
  for (auto _ : state) {
    exec::TwigStack ts(doc.get(), &tree);
    std::vector<xml::NodeId> out;
    Status st = ts.Run(tree.VertexOfVariable("result"), &out);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_TwigStack);

void BM_PipelinedPlan(benchmark::State& state) {
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  auto path = xpath::ParsePath("//proceedings[//editor]//url").MoveValue();
  auto tree = pattern::BuildFromPath(path).MoveValue();
  opt::PlanOptions po;
  po.strategy = opt::JoinStrategy::kPipelined;
  for (auto _ : state) {
    auto r = opt::EvaluatePathQuery(doc.get(), &tree, po);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PipelinedPlan);

void BM_NavigationalPath(benchmark::State& state) {
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  auto path = xpath::ParsePath("//proceedings[//editor]//url").MoveValue();
  for (auto _ : state) {
    baseline::NavigationalEvaluator nav(doc.get());
    auto r = nav.EvaluatePath(path);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NavigationalPath);

void BM_Projection(benchmark::State& state) {
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  auto path = xpath::ParsePath("//proceedings//editor").MoveValue();
  auto tree = pattern::BuildFromPath(path).MoveValue();
  opt::PlanOptions po;
  po.strategy = opt::JoinStrategy::kPipelined;
  auto plan = opt::PlanQuery(doc.get(), &tree, po).MoveValue();
  auto lists = exec::Drain(plan.trees[0].root.get());
  pattern::SlotId slot = tree.SlotOfVariable("result");
  for (auto _ : state) {
    auto nodes =
        nestedlist::ProjectSequence(tree, plan.trees[0].tops, lists, slot);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_Projection);

void BM_DatasetGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto doc = BenchDoc(datagen::Dataset::kD1Recursive, 0.05);
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_DatasetGeneration);

}  // namespace
}  // namespace blossomtree

// BENCHMARK_MAIN plus a BENCH_micro.json artifact: the per-operator
// breakdown of the pipelined plan the BM_PipelinedJoin/BM_Projection
// microbenchmarks exercise.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using namespace blossomtree;
  auto doc = BenchDoc(datagen::Dataset::kD5Dblp, 0.05);
  const std::string query = "//proceedings//editor";
  auto path = xpath::ParsePath(query).MoveValue();
  auto tree = pattern::BuildFromPath(path).MoveValue();
  opt::PlanOptions po;
  po.strategy = opt::JoinStrategy::kPipelined;
  bench::ProfileSink sink("micro");
  sink.AddDatasetLabel("d5");
  bench::LatencyHistogram latency;
  latency.RecordSeconds(bench::TimeSeconds([&] {
    auto r = opt::EvaluatePathQuery(doc.get(), &tree, po);
    (void)r;
  }));
  sink.Add(bench::WithContext(
      "\"dataset\": \"d5\", " + latency.JsonField(),
      bench::PlanProfileJson(doc.get(), &tree, query, po)));
  sink.WriteAndReport();
  return 0;
}
