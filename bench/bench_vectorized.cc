// Vectorized-execution benchmark (DESIGN.md §16): times the batch-at-a-time
// engine (chunked scan driver + SIMD tag-id candidate prefilter) against the
// node-at-a-time reference path on scan-bound d5 queries, and enforces the
// batch core's contract before the counter diff in CI:
//
//   1. Byte-identity: every query result is byte-identical across
//      vectorize on/off, SIMD kernels on/off, and 1/2/4 threads.
//   2. Counter identity: the deterministic per-operator counters
//      (QueryProfile::ToText) are bitwise-identical across the same matrix
//      — kernels filter, they never tick a counter.
//   3. Throughput: on the scan-bound queries the vectorized serial path
//      must clear >= 4x the node-at-a-time baseline in scanned nodes/sec.
//
// Exit status is non-zero on any violation. The BENCH_vectorized.json
// artifact pins the per-operator work counters of the vectorized plans, so
// the perf gate catches a change that silently makes batched plans scan or
// compare more.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/engine.h"
#include "exec/kernels.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "xpath/parser.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::ProfileSink;
using blossomtree::bench::TimeSeconds;
using blossomtree::bench::WithContext;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;

namespace {

struct QueryCase {
  const char* id;
  const char* text;
  /// Gated by the 4x throughput floor: the scan dominates, so the SIMD
  /// prefilter's per-node win is the whole story. Join-heavy shapes are
  /// checked for identity but not held to the scan speedup.
  bool scan_bound;
};

constexpr QueryCase kQueries[] = {
    // phdthesis / www are d5's sparse tags: nearly every node is rejected
    // by the scan, so the prefilter's per-node win is the whole runtime.
    {"v1", "//phdthesis[year]/title", true},
    {"v2", "//www/editor", true},
    // Dense matches (article) and a //-join: per-match work dominates, so
    // these pin identity and counters but are not held to the scan floor.
    {"v3", "//article/title", false},
    {"v4", "//inproceedings//author", false},
};

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

blossomtree::engine::EngineOptions MakeOptions(unsigned threads,
                                               bool vectorize, bool simd,
                                               bool profile) {
  blossomtree::engine::EngineOptions o;
  o.num_threads = threads;
  o.collect_profile = profile;
  o.plan.exec.vectorize = vectorize;
  o.plan.exec.simd = simd;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.05);
  std::vector<unsigned> threads = flags.threads;
  if (threads.empty()) threads = {1, 2, 4};

  GenOptions o;
  o.scale = flags.scale;
  o.seed = flags.seed;
  auto doc = GenerateDataset(Dataset::kD5Dblp, o);

  std::printf("Vectorized execution: %s, %zu nodes, kernels %s%s\n\n",
              DatasetName(Dataset::kD5Dblp), doc->NumNodes(),
              blossomtree::exec::KernelBackendName(
                  blossomtree::exec::EffectiveKernelBackend(true)),
              blossomtree::exec::ForceScalarKernels()
                  ? " (BLOSSOMTREE_FORCE_SCALAR_KERNELS)"
                  : "");

  ProfileSink sink("vectorized");
  sink.AddDatasetLabel(DatasetName(Dataset::kD5Dblp));

  bool ok = true;
  std::printf("  %-3s %12s %12s %11s %11s %8s %s\n", "id", "scalar_ms",
              "vector_ms", "scal_Mn/s", "vec_Mn/s", "speedup", "identical");

  for (const QueryCase& q : kQueries) {
    // Reference: node-at-a-time, scalar, serial — result bytes + counters.
    blossomtree::engine::BlossomTreeEngine ref(
        doc.get(), MakeOptions(1, false, false, true));
    auto ref_r = ref.EvaluateQuery(q.text);
    if (!ref_r.ok()) {
      std::printf("  %-3s reference error: %s\n", q.id,
                  ref_r.status().ToString().c_str());
      return 1;
    }
    const std::string ref_counters = ref.LastProfile().ToText();
    uint64_t nodes_scanned = 0;
    for (const auto& op : ref.LastProfile().operators) {
      nodes_scanned += op.stats.nodes_scanned;
    }

    // Contract sweep: results and deterministic counters identical across
    // the whole {threads} x {vectorize} x {simd} matrix.
    bool identical = true;
    for (unsigned t : threads) {
      for (bool vectorize : {false, true}) {
        for (bool simd : {false, true}) {
          blossomtree::engine::BlossomTreeEngine eng(
              doc.get(), MakeOptions(t, vectorize, simd, true));
          auto r = eng.EvaluateQuery(q.text);
          if (!r.ok() || *r != *ref_r) {
            std::printf("FAIL: %s result differs at threads=%u "
                        "vectorize=%d simd=%d\n",
                        q.id, t, vectorize ? 1 : 0, simd ? 1 : 0);
            identical = false;
          } else if (eng.LastProfile().ToText() != ref_counters) {
            std::printf("FAIL: %s counters differ at threads=%u "
                        "vectorize=%d simd=%d\n",
                        q.id, t, vectorize ? 1 : 0, simd ? 1 : 0);
            identical = false;
          }
        }
      }
    }
    ok = ok && identical;

    // Artifact profile: the serial vectorized plan's counters.
    {
      blossomtree::engine::BlossomTreeEngine prof(
          doc.get(), MakeOptions(1, true, true, true));
      if (prof.EvaluateQuery(q.text).ok()) {
        std::string context = "\"dataset\": \"" +
                              std::string(DatasetName(Dataset::kD5Dblp)) +
                              "\", \"id\": \"" + q.id +
                              "\", \"variant\": \"vectorized\"";
        sink.Add(WithContext(context, prof.LastProfile().ToJson()));
      }
    }

    // Throughput: the executor itself (plan + drain), excluding query
    // parsing and result assembly — the floor measures scan throughput,
    // nodes/sec through the drivers. Baseline drains node-at-a-time over
    // the reference path; the vectorized plan drains batch-at-a-time.
    auto path = blossomtree::xpath::ParsePath(q.text);
    auto tree = blossomtree::pattern::BuildFromPath(*path);
    if (!tree.ok()) {
      std::printf("  %-3s build error: %s\n", q.id,
                  tree.status().ToString().c_str());
      return 1;
    }
    blossomtree::opt::PlanOptions scalar_po;
    scalar_po.exec.vectorize = false;
    scalar_po.exec.simd = false;
    auto scalar_plan =
        blossomtree::opt::PlanQuery(doc.get(), &*tree, scalar_po);
    auto vector_plan = blossomtree::opt::PlanQuery(
        doc.get(), &*tree, blossomtree::opt::PlanOptions{});
    if (!scalar_plan.ok() || !vector_plan.ok()) {
      std::printf("  %-3s plan error\n", q.id);
      return 1;
    }
    std::vector<double> scalar_s;
    std::vector<double> vector_s;
    for (int run = 0; run < flags.runs; ++run) {
      scalar_s.push_back(TimeSeconds([&] {
        scalar_plan->trees[0].root->Rewind();
        blossomtree::nestedlist::NestedList nl;
        while (scalar_plan->trees[0].root->GetNext(&nl)) {
        }
      }));
      vector_s.push_back(TimeSeconds([&] {
        vector_plan->trees[0].root->Rewind();
        blossomtree::exec::Batch batch;
        while (vector_plan->trees[0].root->GetNextBatch(&batch, 64) > 0) {
        }
      }));
    }
    double sbest = *std::min_element(scalar_s.begin(), scalar_s.end());
    double vbest = *std::min_element(vector_s.begin(), vector_s.end());
    double speedup = sbest / vbest;
    std::printf("  %-3s %12.3f %12.3f %11.1f %11.1f %7.2fx %s\n", q.id,
                Median(scalar_s) * 1e3, Median(vector_s) * 1e3,
                nodes_scanned / sbest / 1e6, nodes_scanned / vbest / 1e6,
                speedup, identical ? "yes" : "NO");
    if (q.scan_bound && speedup < 4.0) {
      std::printf("FAIL: %s vectorized speedup %.2fx below the 4x floor\n",
                  q.id, speedup);
      ok = false;
    }
  }

  sink.WriteAndReport();
  if (!ok) {
    std::printf("FAIL: vectorized execution contract violated\n");
    return 1;
  }
  std::printf("OK: results and counters identical across vectorize/SIMD/"
              "threads; scan-bound speedup cleared the 4x floor\n");
  return 0;
}
