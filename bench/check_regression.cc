// CI perf-regression gate: diffs the BENCH_*.json artifacts of a fresh
// bench run against the checked-in baselines under bench/baseline/.
//
//   check_regression [--tolerance=F] [--check-latency]
//                    [--latency-tolerance=F] BASELINE CURRENT
//                    [BASELINE CURRENT ...]
//
// Compares the deterministic work counters (nodes_scanned, index_entries,
// comparisons, rows, nl_cells) per query; exits 1 on any regression, with
// one FAIL line per offending counter. Wall time is compared only behind
// --check-latency (off in CI: shared runners are too noisy for a clock
// gate, while the counter gate is exact on any machine).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "regression_check.h"

int main(int argc, char** argv) {
  blossomtree::bench::RegressionOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      options.counter_tolerance = std::atof(arg + 12);
    } else if (std::strcmp(arg, "--check-latency") == 0) {
      options.check_latency = true;
    } else if (std::strncmp(arg, "--latency-tolerance=", 20) == 0) {
      options.latency_tolerance = std::atof(arg + 20);
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: check_regression [--tolerance=F] [--check-latency] "
          "[--latency-tolerance=F] BASELINE CURRENT [BASELINE CURRENT "
          "...]\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || files.size() % 2 != 0) {
    std::fprintf(stderr,
                 "check_regression: need BASELINE CURRENT file pairs "
                 "(--help for usage)\n");
    return 2;
  }

  bool failed = false;
  for (size_t i = 0; i < files.size(); i += 2) {
    const std::string& baseline_path = files[i];
    const std::string& current_path = files[i + 1];
    auto baseline = blossomtree::bench::LoadBenchRun(baseline_path);
    if (!baseline.ok()) {
      std::fprintf(stderr, "FAIL: %s: %s\n", baseline_path.c_str(),
                   baseline.status().message().c_str());
      failed = true;
      continue;
    }
    auto current = blossomtree::bench::LoadBenchRun(current_path);
    if (!current.ok()) {
      std::fprintf(stderr, "FAIL: %s: %s\n", current_path.c_str(),
                   current.status().message().c_str());
      failed = true;
      continue;
    }
    blossomtree::bench::RegressionReport report =
        blossomtree::bench::CompareRuns(*baseline, *current, options);
    std::printf("== %s vs %s ==\n%s", baseline_path.c_str(),
                current_path.c_str(), report.ToString().c_str());
    if (!report.ok()) failed = true;
  }
  if (failed) {
    std::fprintf(stderr,
                 "\nperf gate: REGRESSION DETECTED. If the counter change "
                 "is intended (plan or workload change), regenerate the "
                 "baselines:\n  run the bench harnesses with the CI flags "
                 "and copy the BENCH_*.json files into bench/baseline/\n");
    return 1;
  }
  std::printf("perf gate: OK\n");
  return 0;
}
