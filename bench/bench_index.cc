// Structural-index access-path benchmark (DESIGN.md §14): ingests d3 and
// d5 corpora to BTSX v2 with their .btsi sidecars, reopens them cold
// through a DiskStore, and runs the same queries twice — once with the
// planner blind to the index (every NoK a scan) and once with the sidecar
// index attached (cost-based seek-vs-scan per NoK root) — enforcing three
// invariants before the counter diff in CI:
//
//   1. Byte-identity: the indexed plan's results are byte-identical to the
//      scan plan and to the in-RAM reference at 1/2/4 threads.
//   2. Work: on the d5 single-tag and equality queries the indexed plan
//      scans at least 10x fewer nodes than the scan plan, and the plan
//      actually contains an IndexSeek operator (not a scan that happened
//      to be cheap).
//   3. Selectivity: over a geometric value distribution (key vK matching
//      ~2^-K-1 of the items) the equality seek's probe count tracks the
//      match count while the scan stays flat, and the seek never probes
//      more nodes than the scan visits.
//
// Exit status is non-zero on any violation. The BENCH_index.json artifact
// pins the per-operator counters of both variants: with a fixed seed and
// scale they are pure functions of the access-path choice, so the perf
// gate catches a costing change that silently flips a seek back to a scan.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/engine.h"
#include "index/btsi.h"
#include "index/structural_index.h"
#include "storage/btsx2.h"
#include "storage/disk_store.h"
#include "util/rng.h"
#include "xml/document.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::ProfileSink;
using blossomtree::bench::TimeSeconds;
using blossomtree::bench::WithContext;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;

namespace {

struct QueryCase {
  const char* id;
  const char* text;
  bool expect_seek;  // Must plan an IndexSeek AND scan >=10x fewer nodes.
};

// d3 (catalog, 51 tags): a rare single tag, a rooted path, and a value
// equality on a leaf tag. d5 (dblp, 35 tags): the paper's high-selectivity
// probes — phdthesis is rare, school occurs only under theses.
constexpr QueryCase kD3Queries[] = {
    {"i1", "//date_of_birth", true},
    {"i2", "//publisher//street_address", false},
    {"i3", "//date_of_birth[.=\"alpha\"]", true},
};
constexpr QueryCase kD5Queries[] = {
    {"i1", "//school", true},
    {"i2", "//phdthesis/author", true},
    {"i3", "//school[.=\"alpha\"]", true},
    {"i4", "//article/author", false},
};

uint64_t SumNodesScanned(const blossomtree::engine::QueryProfile& p) {
  uint64_t total = 0;
  for (const auto& op : p.operators) total += op.stats.nodes_scanned;
  return total;
}

bool HasIndexSeek(const blossomtree::engine::QueryProfile& p) {
  for (const auto& op : p.operators) {
    if (op.label.rfind("IndexSeek", 0) == 0) return true;
  }
  return false;
}

// Items with a geometric key distribution: key vK with probability
// 2^-K-1, so //key[.="v0"] matches ~half the items and //key[.="v9"]
// ~0.1% — the selectivity axis of invariant 3.
std::unique_ptr<blossomtree::xml::Document> GeometricCatalog(size_t items,
                                                             uint64_t seed) {
  auto doc = std::make_unique<blossomtree::xml::Document>();
  blossomtree::Rng rng(seed);
  doc->BeginElement("catalog");
  for (size_t i = 0; i < items; ++i) {
    doc->BeginElement("item");
    doc->BeginElement("key");
    int k = 0;
    while (k < 9 && rng.Chance(0.5)) ++k;
    doc->AddText("v" + std::to_string(k));
    doc->EndElement();
    doc->BeginElement("payload");
    doc->AddText(std::to_string(rng.Uniform(1000)));
    doc->EndElement();
    doc->EndElement();
  }
  doc->EndElement();
  blossomtree::Status st = doc->Finish();
  (void)st;
  return doc;
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.05);
  std::vector<unsigned> threads = flags.threads;
  if (threads.empty()) threads = {1, 2, 4};

  bool ok = true;
  ProfileSink sink("index");

  struct DatasetCase {
    Dataset dataset;
    const QueryCase* queries;
    size_t num_queries;
  };
  const DatasetCase kDatasets[] = {
      {Dataset::kD3Catalog, kD3Queries,
       sizeof(kD3Queries) / sizeof(kD3Queries[0])},
      {Dataset::kD5Dblp, kD5Queries,
       sizeof(kD5Queries) / sizeof(kD5Queries[0])},
  };

  for (const DatasetCase& dc : kDatasets) {
    GenOptions o;
    o.scale = flags.scale;
    o.seed = flags.seed;
    auto doc = GenerateDataset(dc.dataset, o);
    sink.AddDatasetLabel(DatasetName(dc.dataset));

    // Offline half of the pipeline: corpus file plus index sidecar, the
    // same artifacts `btingest --index` writes.
    const std::string path =
        std::string("bench_index_tmp_") + DatasetName(dc.dataset) + ".btsx2";
    if (auto s = blossomtree::storage::WriteBtsx2(*doc, path); !s.ok()) {
      std::printf("ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    {
      auto idx = blossomtree::index::StructuralIndex::Build(*doc);
      auto s = blossomtree::index::WriteBtsi(
          *idx, blossomtree::index::BtsiSidecarPath(path));
      if (!s.ok()) {
        std::printf("sidecar failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }

    // Two cold opens — separate block caches, so neither variant rides the
    // other's residency. The sidecar attaches to both; only the seek
    // variant passes it to the planner.
    auto scan_store = blossomtree::storage::DiskStore::Open(path);
    auto seek_store = blossomtree::storage::DiskStore::Open(path);
    if (!scan_store.ok() || !seek_store.ok()) {
      std::printf("open failed\n");
      return 1;
    }
    if ((*seek_store)->index() == nullptr) {
      std::printf("FAIL: sidecar did not attach on open\n");
      return 1;
    }

    std::printf("%s: %zu nodes, index sidecar %s\n",
                DatasetName(dc.dataset), (*scan_store)->NumNodes(),
                blossomtree::index::BtsiSidecarPath(path).c_str());
    std::printf("  %-3s %-34s %10s %10s %7s %9s %9s %s\n", "id", "query",
                "scan_ms", "seek_ms", "ratio", "scan_n", "seek_n",
                "identical");

    for (size_t qi = 0; qi < dc.num_queries; ++qi) {
      const QueryCase& q = dc.queries[qi];

      // In-RAM serial reference on the original document, no index.
      blossomtree::engine::EngineOptions plain;
      plain.num_threads = 1;
      blossomtree::engine::BlossomTreeEngine ref(doc.get(), plain);
      auto ref_r = ref.EvaluateQuery(q.text);
      if (!ref_r.ok()) {
        std::printf("  %-3s reference error: %s\n", q.id,
                    ref_r.status().ToString().c_str());
        return 1;
      }

      // Serial profiled runs of both variants feed the artifact and the
      // work assertions.
      uint64_t scan_nodes = 0;
      uint64_t seek_nodes = 0;
      for (int variant = 0; variant < 2; ++variant) {
        auto& store = variant == 0 ? scan_store : seek_store;
        blossomtree::engine::EngineOptions po;
        po.num_threads = 1;
        po.collect_profile = true;
        po.plan.store = store->get();
        if (variant == 1) po.plan.index = (*store)->index();
        blossomtree::engine::BlossomTreeEngine prof((*store)->document(),
                                                    po);
        auto pr = prof.EvaluateQuery(q.text);
        if (!pr.ok()) {
          std::printf("  %-3s %s error: %s\n", q.id,
                      variant == 0 ? "scan" : "seek",
                      pr.status().ToString().c_str());
          return 1;
        }
        const auto& profile = prof.LastProfile();
        if (variant == 0) {
          scan_nodes = SumNodesScanned(profile);
        } else {
          seek_nodes = SumNodesScanned(profile);
          if (q.expect_seek && !HasIndexSeek(profile)) {
            std::printf("  %-3s FAIL: no IndexSeek in the indexed plan\n",
                        q.id);
            ok = false;
          }
        }
        std::string context =
            "\"dataset\": \"" + std::string(DatasetName(dc.dataset)) +
            "\", \"id\": \"" + q.id + "\", \"variant\": \"" +
            (variant == 0 ? "scan" : "seek") + "\"";
        sink.Add(WithContext(context, profile.ToJson()));
      }

      if (q.expect_seek && scan_nodes < 10 * seek_nodes) {
        std::printf(
            "  %-3s FAIL: seek scanned %llu nodes, scan %llu (< 10x)\n",
            q.id, (unsigned long long)seek_nodes,
            (unsigned long long)scan_nodes);
        ok = false;
      }
      if (seek_nodes > scan_nodes) {
        std::printf("  %-3s FAIL: indexed plan did more work than scan\n",
                    q.id);
        ok = false;
      }

      // Timed runs + byte-identity at every thread count.
      bool identical = true;
      std::vector<double> scan_samples;
      std::vector<double> seek_samples;
      for (unsigned t : threads) {
        blossomtree::engine::EngineOptions so;
        so.num_threads = t;
        so.plan.store = scan_store->get();
        blossomtree::engine::BlossomTreeEngine scan(
            (*scan_store)->document(), so);
        blossomtree::engine::EngineOptions ko;
        ko.num_threads = t;
        ko.plan.store = seek_store->get();
        ko.plan.index = (*seek_store)->index();
        blossomtree::engine::BlossomTreeEngine seek(
            (*seek_store)->document(), ko);
        for (int run = 0; run < flags.runs; ++run) {
          blossomtree::Result<std::string> sr = std::string{};
          scan_samples.push_back(
              TimeSeconds([&] { sr = scan.EvaluateQuery(q.text); }));
          if (!sr.ok() || *sr != *ref_r) identical = false;
          blossomtree::Result<std::string> kr = std::string{};
          seek_samples.push_back(
              TimeSeconds([&] { kr = seek.EvaluateQuery(q.text); }));
          if (!kr.ok() || *kr != *ref_r) identical = false;
        }
      }
      ok = ok && identical;
      std::printf("  %-3s %-34s %10.3f %10.3f %6.1fx %9llu %9llu %s\n",
                  q.id, q.text, Median(scan_samples) * 1e3,
                  Median(seek_samples) * 1e3,
                  seek_nodes > 0
                      ? (double)scan_nodes / (double)seek_nodes
                      : (double)scan_nodes,
                  (unsigned long long)scan_nodes,
                  (unsigned long long)seek_nodes,
                  identical ? "yes" : "NO");
    }
    std::printf("\n");
    std::remove(blossomtree::index::BtsiSidecarPath(path).c_str());
    std::remove(path.c_str());
  }

  // Selectivity sweep: equality seeks over a geometric value distribution.
  {
    size_t items = static_cast<size_t>(50000 * flags.scale);
    if (items < 100) items = 100;
    auto doc = GeometricCatalog(items, flags.seed);
    auto idx = blossomtree::index::StructuralIndex::Build(*doc);
    sink.AddDatasetLabel("catalog-" + std::to_string(items));

    std::printf("Selectivity sweep: //key[.=\"vK\"] over %zu items\n",
                items);
    std::printf("  %-4s %9s %9s %9s %s\n", "key", "scan_n", "seek_n",
                "rows", "identical");

    uint64_t first_seek = 0;
    uint64_t last_seek = 0;
    for (int k = 0; k <= 9; ++k) {
      std::string query = "//key[.=\"v" + std::to_string(k) + "\"]";
      uint64_t counts[2] = {0, 0};
      uint64_t rows = 0;
      std::string results[2];
      for (int variant = 0; variant < 2; ++variant) {
        blossomtree::engine::EngineOptions po;
        po.num_threads = 1;
        po.collect_profile = true;
        if (variant == 1) po.plan.index = idx.get();
        blossomtree::engine::BlossomTreeEngine eng(doc.get(), po);
        auto r = eng.EvaluateQuery(query);
        if (!r.ok()) {
          std::printf("  v%d %s error: %s\n", k,
                      variant == 0 ? "scan" : "seek",
                      r.status().ToString().c_str());
          return 1;
        }
        results[variant] = *r;
        const auto& profile = eng.LastProfile();
        counts[variant] = SumNodesScanned(profile);
        if (variant == 1) {
          rows = 0;
          for (const auto& op : profile.operators) rows += op.stats.matches;
          sink.Add(WithContext("\"dataset\": \"catalog-" +
                                   std::to_string(items) +
                                   "\", \"id\": \"v" + std::to_string(k) +
                                   "\", \"variant\": \"seek\"",
                               profile.ToJson()));
        }
      }
      bool identical = results[0] == results[1];
      ok = ok && identical;
      if (counts[1] > counts[0]) {
        std::printf("  v%d FAIL: seek probed more than the scan visited\n",
                    k);
        ok = false;
      }
      if (k == 0) first_seek = counts[1];
      if (k == 9) last_seek = counts[1];
      std::printf("  v%-3d %9llu %9llu %9llu %s\n", k,
                  (unsigned long long)counts[0],
                  (unsigned long long)counts[1], (unsigned long long)rows,
                  identical ? "yes" : "NO");
    }
    // Geometric keys: matches halve per tier, so the seek's probe count —
    // which tracks match counts, unlike the flat scan — must collapse by
    // >=10x across the sweep. (Per-step monotonicity would be noise-bound:
    // the high-K tiers hold single-digit samples.)
    if (first_seek < 10 * last_seek) {
      std::printf("  FAIL: seek probes did not track selectivity "
                  "(v0=%llu, v9=%llu)\n",
                  (unsigned long long)first_seek,
                  (unsigned long long)last_seek);
      ok = false;
    }
    std::printf("\n");
  }

  sink.WriteAndReport();
  if (!ok) {
    std::printf("FAIL: index access-path invariants violated\n");
    return 1;
  }
  std::printf("OK: indexed plans byte-identical at every thread count, "
              ">=10x fewer nodes on the selective queries\n");
  return 0;
}
