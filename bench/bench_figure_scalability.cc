// Figure-style scalability series: running time vs document size for the
// four systems on a fixed branching query per data set (the paper's §2.1
// scalability claim for the join-based class and the scan-bound behaviour
// of the pipelined plan), plus a thread-count sweep of the partitioned
// parallel NoK scan (--threads=) with byte-identical-result verification.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/navigational.h"
#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "exec/twig_semijoin.h"
#include "exec/twigstack.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "util/thread_pool.h"
#include "workload/queries.h"
#include "xpath/parser.h"

using namespace blossomtree;
using bench::BenchFlags;
using bench::ParseFlags;
using bench::TimeAverage;
using bench::TimeCell;
using bench::TimeSeconds;

namespace {

struct ThreadPoint {
  std::string dataset;
  unsigned threads;
  double seconds;
  double speedup;
  bool identical;
};

std::string Serialize(const std::vector<xml::NodeId>& nodes) {
  std::string s;
  for (xml::NodeId n : nodes) {
    s += std::to_string(n);
    s += ',';
  }
  return s;
}

/// Sweeps the per-query thread counts for one dataset's Q6 and appends the
/// measured points; every run's result set is compared byte-for-byte
/// against the serial engine's.
void SweepThreads(datagen::Dataset dataset, const BenchFlags& flags,
                  const std::vector<unsigned>& counts,
                  std::vector<ThreadPoint>* out,
                  bench::ProfileSink* sink) {
  const auto queries = workload::QueriesFor(dataset);
  auto path = xpath::ParsePath(queries[5].xpath);
  if (!path.ok()) return;
  auto tree = pattern::BuildFromPath(*path);
  if (!tree.ok()) return;
  datagen::GenOptions o;
  o.scale = flags.scale;
  o.seed = flags.seed;
  auto doc = datagen::GenerateDataset(dataset, o);
  sink->AddDatasetLabel(datagen::DatasetName(dataset));

  std::string serial_bytes;
  double serial_s = 0;
  std::printf("%-4s %9zu nodes | %7s %9s %8s %s\n",
              datagen::DatasetName(dataset), doc->NumNodes(), "threads",
              "time s", "speedup", "identical");
  for (unsigned t : counts) {
    std::unique_ptr<util::ThreadPool> pool;
    opt::PlanOptions po;  // kAuto: PL or BNLJ per the document's recursion.
    if (t > 1) {
      pool = std::make_unique<util::ThreadPool>(t);
      po.pool = pool.get();
    }
    std::string bytes;
    std::vector<double> run_seconds;
    double s = TimeAverage(
        [&] {
          auto r = opt::EvaluatePathQuery(doc.get(), &*tree, po);
          bytes = r.ok() ? Serialize(*r) : "<error>";
        },
        flags.runs, flags.dnf_seconds, &run_seconds);
    if (t == 1) {
      serial_bytes = bytes;
      serial_s = s;
    }
    bool identical = bytes == serial_bytes;
    double speedup = (s > 0 && serial_s > 0) ? serial_s / s : 0;
    std::printf("%-22s | %7u %9s %7.2fx %s\n", "", t, TimeCell(s).c_str(),
                speedup, identical ? "yes" : "NO — MISMATCH");
    out->push_back({datagen::DatasetName(dataset), t, s, speedup,
                    identical});
    // Per-operator breakdown at this thread count: the deterministic
    // counters must match the serial profile entry for entry.
    bench::LatencyHistogram latency;
    latency.RecordAll(run_seconds);
    sink->Add(bench::WithContext(
        "\"dataset\": \"" + std::string(datagen::DatasetName(dataset)) +
            "\", \"threads\": " + std::to_string(t) + ", " +
            latency.JsonField(),
        bench::PlanProfileJson(doc.get(), &*tree, queries[5].xpath, po)));
  }
}

bool WriteJson(const std::string& path,
               const std::vector<ThreadPoint>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"figure_scalability_threads\",\n");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ThreadPoint& p = points[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"threads\": %u, "
                 "\"seconds\": %.6f, \"speedup\": %.3f, "
                 "\"identical\": %s}%s\n",
                 p.dataset.c_str(), p.threads, p.seconds, p.speedup,
                 p.identical ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/1.0);
  std::printf(
      "Scalability sweep: time vs document size (d5 workload query Q6)\n\n");
  std::printf("%-7s %9s | %8s %8s %8s %8s\n", "scale", "#nodes", "XH s",
              "TS s", "SJ s", "PL s");

  const auto queries = workload::QueriesFor(datagen::Dataset::kD5Dblp);
  auto path = xpath::ParsePath(queries[5].xpath);
  if (!path.ok()) return 1;
  auto tree = pattern::BuildFromPath(*path);
  if (!tree.ok()) return 1;

  for (double s : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    datagen::GenOptions o;
    o.scale = s * flags.scale;
    o.seed = flags.seed;
    auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
    for (xml::TagId t = 0; t < doc->tags().size(); ++t) doc->TagIndex(t);

    double xh_s = TimeSeconds([&] {
      baseline::NavigationalEvaluator nav(doc.get());
      auto r = nav.EvaluatePath(*path);
      (void)r;
    });
    double ts_s = TimeSeconds([&] {
      exec::TwigStack ts(doc.get(), &*tree);
      std::vector<xml::NodeId> out;
      Status st = ts.Run(tree->VertexOfVariable("result"), &out);
      (void)st;
    });
    double sj_s = TimeSeconds([&] {
      exec::TwigSemijoin sj(doc.get(), &*tree);
      std::vector<xml::NodeId> out;
      Status st = sj.Run(tree->VertexOfVariable("result"), &out);
      (void)st;
    });
    opt::PlanOptions po;
    po.strategy = opt::JoinStrategy::kPipelined;
    double pl_s = TimeSeconds([&] {
      auto r = opt::EvaluatePathQuery(doc.get(), &*tree, po);
      (void)r;
    });
    std::printf("%-7.3f %9zu | %8s %8s %8s %8s\n", s * flags.scale,
                doc->NumNodes(), TimeCell(xh_s).c_str(),
                TimeCell(ts_s).c_str(), TimeCell(sj_s).c_str(),
                TimeCell(pl_s).c_str());
  }
  std::printf(
      "\nExpected: every system scales near-linearly in document size; the\n"
      "constant factors order as SJ < TS < XH < PL (index-driven to\n"
      "scan-driven) at this query's selectivity.\n\n");

  // -- Intra-query parallelism sweep (partitioned NoK scan) -----------------
  std::vector<unsigned> counts = flags.threads;
  if (counts.empty()) {
    counts = {1, 2, 4, 8};
  } else if (counts.front() != 1) {
    counts.insert(counts.begin(), 1);  // Serial baseline for the speedups.
  }
  std::printf(
      "Parallel NoK scan sweep (Q6, hardware concurrency = %zu):\n\n",
      util::ThreadPool::DefaultThreads());
  std::vector<ThreadPoint> points;
  bench::ProfileSink sink("figure_scalability");
  sink.SetThreads(*std::max_element(counts.begin(), counts.end()));
  SweepThreads(datagen::Dataset::kD4Treebank, flags, counts, &points,
               &sink);
  SweepThreads(datagen::Dataset::kD5Dblp, flags, counts, &points, &sink);
  sink.WriteAndReport();

  std::string json =
      flags.json_path.empty() ? "bench_scalability_threads.json"
                              : flags.json_path;
  if (WriteJson(json, points)) {
    std::printf("\nSpeedup curve written to %s\n", json.c_str());
  } else {
    std::fprintf(stderr, "\ncould not write %s\n", json.c_str());
  }

  bool all_identical = true;
  for (const ThreadPoint& p : points) all_identical &= p.identical;
  std::printf(
      "Expected: near-linear speedup until the partition count or the core\n"
      "count saturates; results byte-identical at every thread count (%s).\n",
      all_identical ? "verified" : "VIOLATED");
  return all_identical ? 0 : 1;
}
