// Figure-style scalability series: running time vs document size for the
// four systems on a fixed branching query per data set (the paper's §2.1
// scalability claim for the join-based class and the scan-bound behaviour
// of the pipelined plan).

#include <cstdio>

#include "baseline/navigational.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "exec/twig_semijoin.h"
#include "exec/twigstack.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "workload/queries.h"
#include "xpath/parser.h"

using namespace blossomtree;
using bench::BenchFlags;
using bench::ParseFlags;
using bench::TimeCell;
using bench::TimeSeconds;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/1.0);
  std::printf(
      "Scalability sweep: time vs document size (d5 workload query Q6)\n\n");
  std::printf("%-7s %9s | %8s %8s %8s %8s\n", "scale", "#nodes", "XH s",
              "TS s", "SJ s", "PL s");

  const auto queries = workload::QueriesFor(datagen::Dataset::kD5Dblp);
  auto path = xpath::ParsePath(queries[5].xpath);
  if (!path.ok()) return 1;
  auto tree = pattern::BuildFromPath(*path);
  if (!tree.ok()) return 1;

  for (double s : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    datagen::GenOptions o;
    o.scale = s * flags.scale;
    o.seed = flags.seed;
    auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
    for (xml::TagId t = 0; t < doc->tags().size(); ++t) doc->TagIndex(t);

    double xh_s = TimeSeconds([&] {
      baseline::NavigationalEvaluator nav(doc.get());
      auto r = nav.EvaluatePath(*path);
      (void)r;
    });
    double ts_s = TimeSeconds([&] {
      exec::TwigStack ts(doc.get(), &*tree);
      std::vector<xml::NodeId> out;
      Status st = ts.Run(tree->VertexOfVariable("result"), &out);
      (void)st;
    });
    double sj_s = TimeSeconds([&] {
      exec::TwigSemijoin sj(doc.get(), &*tree);
      std::vector<xml::NodeId> out;
      Status st = sj.Run(tree->VertexOfVariable("result"), &out);
      (void)st;
    });
    opt::PlanOptions po;
    po.strategy = opt::JoinStrategy::kPipelined;
    double pl_s = TimeSeconds([&] {
      auto r = opt::EvaluatePathQuery(doc.get(), &*tree, po);
      (void)r;
    });
    std::printf("%-7.3f %9zu | %8s %8s %8s %8s\n", s * flags.scale,
                doc->NumNodes(), TimeCell(xh_s).c_str(),
                TimeCell(ts_s).c_str(), TimeCell(sj_s).c_str(),
                TimeCell(pl_s).c_str());
  }
  std::printf(
      "\nExpected: every system scales near-linearly in document size; the\n"
      "constant factors order as SJ < TS < XH < PL (index-driven to\n"
      "scan-driven) at this query's selectivity.\n");
  return 0;
}
