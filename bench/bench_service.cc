// Multi-client service benchmark (DESIGN.md §12): drives a QueryService
// over a shared corpus with an open-loop arrival schedule — queries are
// submitted on a fixed cadence from round-robin client sessions regardless
// of completions, the way real clients load a server — and reports p50/p99
// end-to-end latency and queue delay from the service.* histograms.
//
// The BENCH_service.json artifact carries one deterministic per-operator
// profile per query, computed on a standalone serial engine (work counters
// are pure functions of the plan at a fixed seed/scale, so the perf gate
// diffs them exactly); the service run's latency and queue-delay
// histograms ride along as timing context the gate ignores.
//
// Exit status is non-zero when any service result deviates from the
// uncached serial reference (the zero-wrong-results invariant: admission
// control may reject under overload, but an accepted query must return
// exactly the serial bytes) or when any query fails for a reason other
// than admission rejection.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/engine.h"
#include "service/corpus.h"
#include "service/query_service.h"
#include "util/metrics.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::ProfileSink;
using blossomtree::bench::TimeSeconds;
using blossomtree::bench::WithContext;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;

namespace {

struct QueryCase {
  const char* id;
  const char* text;
};

// The served mix: s1 is a broad low-selectivity scan, s2/s3 hit rare tags
// (the shared result cache's sweet spot once warm), s4 exercises the
// FLWOR pipeline per tuple. All run through EvaluateQuery, the service's
// single entry point.
constexpr QueryCase kQueries[] = {
    {"s1", "//article/title"},
    {"s2", "//phdthesis/author"},
    {"s3", "//article[year = \"omega\"]/title"},
    {"s4", "for $a in //phdthesis return <hit>{$a/school}</hit>"},
};

constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

/// One extra open-loop pass over a fresh corpus (cold caches, fresh
/// service) with the observer on or off — the overhead comparison must not
/// inherit warmth from the artifact run. Returns the mean accepted e2e in
/// nanoseconds; `accepted_out`/`bad_out` report the pass's outcome mix.
double OverheadPass(bool observer_on, const GenOptions& gen, size_t clients,
                    size_t per_client, size_t slots,
                    std::chrono::nanoseconds interval, size_t* accepted_out,
                    size_t* bad_out) {
  blossomtree::service::CorpusOptions copts;
  copts.plan_cache.enabled = true;
  copts.result_cache.enabled = true;
  blossomtree::service::Corpus corpus(copts);
  if (!corpus.Add("dblp", GenerateDataset(Dataset::kD5Dblp, gen)).ok()) {
    *bad_out = clients * per_client;
    return 0;
  }
  blossomtree::service::ServiceOptions sopts;
  sopts.slots = slots;
  sopts.max_queue = clients * per_client;
  sopts.observer.enabled = observer_on;
  sopts.observer.slow_threshold_ns = 0;  // Worst case: every query is "slow".
  sopts.observer.slow_log_capacity = 8;
  blossomtree::service::QueryService svc(&corpus, sopts);
  std::vector<std::shared_ptr<blossomtree::service::Session>> sessions;
  for (size_t c = 0; c < clients; ++c) {
    sessions.push_back(svc.CreateSession("client-" + std::to_string(c)));
  }
  const size_t total = clients * per_client;
  std::vector<std::shared_ptr<blossomtree::service::QueryTicket>> tickets;
  tickets.reserve(total);
  auto start = std::chrono::steady_clock::now();
  for (size_t n = 0; n < total; ++n) {
    std::this_thread::sleep_until(start + interval * n);
    tickets.push_back(svc.Submit(*sessions[n % clients], "dblp",
                                 kQueries[n % kNumQueries].text));
  }
  svc.Drain();
  uint64_t e2e_sum = 0;
  size_t accepted = 0;
  size_t bad = 0;
  for (auto& ticket : tickets) {
    const auto& r = ticket->Wait();
    if (r.ok()) {
      e2e_sum += ticket->e2e_ns();
      ++accepted;
    } else if (r.status().code() !=
               blossomtree::StatusCode::kResourceExhausted) {
      ++bad;
    }
  }
  *accepted_out = accepted;
  *bad_out = bad;
  return accepted > 0 ? static_cast<double>(e2e_sum) /
                            static_cast<double>(accepted)
                      : 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.05);
  size_t clients = 4;
  size_t per_client = 16;
  size_t slots = 4;
  bool observer_on = true;
  bool overhead_check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--per-client=", 13) == 0) {
      per_client = std::strtoul(argv[i] + 13, nullptr, 10);
    } else if (std::strncmp(argv[i], "--slots=", 8) == 0) {
      slots = std::strtoul(argv[i] + 8, nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-observer") == 0) {
      observer_on = false;
    } else if (std::strcmp(argv[i], "--overhead-check") == 0) {
      overhead_check = true;
    }
  }
  if (clients == 0) clients = 1;
  if (slots == 0) slots = 1;

  GenOptions o;
  o.scale = flags.scale;
  o.seed = flags.seed;

  blossomtree::service::CorpusOptions copts;
  copts.plan_cache.enabled = true;
  copts.result_cache.enabled = true;
  blossomtree::service::Corpus corpus(copts);
  {
    blossomtree::Status st =
        corpus.Add("dblp", GenerateDataset(Dataset::kD5Dblp, o));
    if (!st.ok()) {
      std::fprintf(stderr, "corpus: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto shared_doc = corpus.Get("dblp");

  // Serial uncached reference: the bytes every accepted service query must
  // reproduce, plus the mean serial latency the arrival cadence is derived
  // from.
  std::vector<std::string> expected(kNumQueries);
  double serial_mean_s = 0;
  for (size_t i = 0; i < kNumQueries; ++i) {
    blossomtree::engine::EngineOptions plain;
    plain.num_threads = 1;
    blossomtree::engine::BlossomTreeEngine ref(shared_doc->doc(), plain);
    blossomtree::Result<std::string> r = std::string{};
    serial_mean_s +=
        TimeSeconds([&] { r = ref.EvaluateQuery(kQueries[i].text); });
    if (!r.ok()) {
      std::fprintf(stderr, "%s reference error: %s\n", kQueries[i].id,
                   r.status().ToString().c_str());
      return 1;
    }
    expected[i] = r.MoveValue();
  }
  serial_mean_s /= kNumQueries;

  // Deterministic per-query work profiles for the gate, from a dedicated
  // serial engine outside any timed path.
  ProfileSink sink("service");
  sink.AddDatasetLabel(DatasetName(Dataset::kD5Dblp));
  sink.SetThreads(static_cast<unsigned>(slots));
  std::vector<std::string> profile_json(kNumQueries);
  for (size_t i = 0; i < kNumQueries; ++i) {
    blossomtree::engine::EngineOptions popts;
    popts.num_threads = 1;
    popts.collect_profile = true;
    blossomtree::engine::BlossomTreeEngine prof(shared_doc->doc(), popts);
    if (prof.EvaluateQuery(kQueries[i].text).ok()) {
      profile_json[i] = prof.LastProfile().ToJson();
    }
  }

  // Open-loop schedule: one arrival every serial_mean/slots seconds keeps
  // the offered load near the service's capacity without tripping
  // admission control (the queue bound absorbs the bursts).
  blossomtree::service::ServiceOptions sopts;
  sopts.slots = slots;
  sopts.max_queue = clients * per_client;
  sopts.observer.enabled = observer_on;
  // Threshold 0: every query qualifies for the slow log, so the uploaded
  // BENCH_service_slowlog.json carries real captured plans (the log is
  // bounded by slow_log_capacity; timings here are not gated).
  sopts.observer.slow_threshold_ns = 0;
  blossomtree::service::QueryService svc(&corpus, sopts);
  std::vector<std::shared_ptr<blossomtree::service::Session>> sessions;
  for (size_t c = 0; c < clients; ++c) {
    sessions.push_back(svc.CreateSession("client-" + std::to_string(c)));
  }

  const size_t total = clients * per_client;
  const auto interval = std::chrono::nanoseconds(static_cast<uint64_t>(
      serial_mean_s / static_cast<double>(slots) * 1e9));
  std::printf(
      "Service bench: %zu clients x %zu queries, %zu slots, "
      "arrival interval %.2f ms (scale=%.2f)\n\n",
      clients, per_client, slots,
      static_cast<double>(interval.count()) / 1e6, flags.scale);

  std::vector<std::pair<size_t, std::shared_ptr<
                                    blossomtree::service::QueryTicket>>>
      tickets;
  tickets.reserve(total);
  auto start = std::chrono::steady_clock::now();
  for (size_t n = 0; n < total; ++n) {
    std::this_thread::sleep_until(start + interval * n);
    size_t q = n % kNumQueries;
    tickets.emplace_back(
        q, svc.Submit(*sessions[n % clients], "dblp", kQueries[q].text));
  }
  svc.Drain();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  // Zero-wrong-results check plus per-query timing histograms for the
  // artifact.
  std::vector<blossomtree::util::Histogram> e2e(kNumQueries);
  std::vector<blossomtree::util::Histogram> qdelay(kNumQueries);
  // Ticket-side ground truth per tenant, to cross-check the observer's
  // rollups below: completed and rejected counts as the clients saw them.
  std::map<std::string, std::pair<uint64_t, uint64_t>> tenant_truth;
  size_t wrong = 0;
  size_t rejected = 0;
  size_t failed = 0;
  for (auto& [q, ticket] : tickets) {
    const auto& r = ticket->Wait();
    if (r.ok()) {
      if (*r != expected[q]) ++wrong;
      e2e[q].Record(ticket->e2e_ns());
      qdelay[q].Record(ticket->queue_delay_ns());
      ++tenant_truth[ticket->tenant()].first;
    } else if (r.status().code() ==
               blossomtree::StatusCode::kResourceExhausted) {
      ++rejected;
      ++tenant_truth[ticket->tenant()].second;
    } else {
      std::fprintf(stderr, "%s failed: %s\n", kQueries[q].id,
                   r.status().ToString().c_str());
      ++failed;
    }
  }

  std::printf("  %-3s %10s %10s %10s %10s\n", "id", "e2e_p50_ms",
              "e2e_p99_ms", "qd_p50_ms", "qd_p99_ms");
  for (size_t q = 0; q < kNumQueries; ++q) {
    auto es = e2e[q].Snapshot();
    auto qs = qdelay[q].Snapshot();
    std::printf("  %-3s %10.3f %10.3f %10.3f %10.3f\n", kQueries[q].id,
                static_cast<double>(es.Quantile(0.5)) / 1e6,
                static_cast<double>(es.Quantile(0.99)) / 1e6,
                static_cast<double>(qs.Quantile(0.5)) / 1e6,
                static_cast<double>(qs.Quantile(0.99)) / 1e6);
    if (!profile_json[q].empty()) {
      std::string context = "\"dataset\": \"" +
                            std::string(DatasetName(Dataset::kD5Dblp)) +
                            "\", \"id\": \"" + std::string(kQueries[q].id) +
                            "\", \"variant\": \"service\", \"latency_ns\": " +
                            es.ToJson() + ", \"queue_delay_ns\": " +
                            qs.ToJson();
      sink.Add(WithContext(context, profile_json[q]));
    }
  }

  std::printf(
      "\n  admitted=%llu completed=%llu rejected=%zu failed=%zu "
      "wall=%.2fs throughput=%.0f q/s\n",
      static_cast<unsigned long long>(
          svc.metrics().GetCounter("service.admitted")->value()),
      static_cast<unsigned long long>(
          svc.metrics().GetCounter("service.completed")->value()),
      rejected, failed, wall_s,
      wall_s > 0 ? static_cast<double>(total - rejected - failed) / wall_s
                 : 0.0);
  sink.WriteAndReport();

  if (wrong > 0) {
    std::printf("FAIL: %zu service results deviate from the serial "
                "reference\n",
                wrong);
    return 1;
  }
  if (failed > 0) {
    std::printf("FAIL: %zu queries failed outside admission control\n",
                failed);
    return 1;
  }

  // Observer bookkeeping must agree with the ticket-side ground truth:
  // every submission recorded, every outcome in the status-labeled rollups,
  // and the per-tenant rollup reproducing the clients' own counts.
  if (observer_on) {
    size_t obs_fail = 0;
    uint64_t recorded = svc.observer()->TotalRecorded();
    if (recorded != total) {
      std::printf("FAIL: observer recorded %llu of %zu submissions\n",
                  static_cast<unsigned long long>(recorded), total);
      ++obs_fail;
    }
    uint64_t labeled = 0;
    for (const auto& [name, value] : svc.metrics().CounterValues()) {
      if (name.rfind("service.queries{", 0) == 0) labeled += value;
    }
    if (labeled != total) {
      std::printf(
          "FAIL: status-labeled service.queries counters sum to %llu, "
          "expected %zu\n",
          static_cast<unsigned long long>(labeled), total);
      ++obs_fail;
    }
    if (total <= svc.observer()->options().recorder_capacity) {
      for (const auto& r : svc.observer()->TenantRollups()) {
        auto it = tenant_truth.find(r.tenant);
        uint64_t want_ok = it == tenant_truth.end() ? 0 : it->second.first;
        uint64_t want_rej = it == tenant_truth.end() ? 0 : it->second.second;
        if (r.completed != want_ok || r.rejected != want_rej) {
          std::printf(
              "FAIL: tenant %s rollup completed=%llu rejected=%llu, "
              "tickets say %llu/%llu\n",
              r.tenant.c_str(), static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.rejected),
              static_cast<unsigned long long>(want_ok),
              static_cast<unsigned long long>(want_rej));
          ++obs_fail;
        }
      }
    }
    if (obs_fail > 0) return 1;

    // CI artifacts: the scrapeable exposition and the slow-query log.
    blossomtree::service::ObservabilityReport report =
        svc.ObservabilityReport();
    const std::pair<const char*, const std::string*> artifacts[] = {
        {"BENCH_service_exposition.txt", &report.prometheus},
        {"BENCH_service_slowlog.json", &report.slow_json},
    };
    for (const auto& [path, text] : artifacts) {
      std::FILE* f = std::fopen(path, "w");
      if (f != nullptr) {
        std::fwrite(text->data(), 1, text->size(), f);
        std::fclose(f);
        std::printf("  wrote %s (%zu bytes)\n", path, text->size());
      }
    }
  }

  // Recorder-on vs recorder-off overhead: two fresh cold-cache passes (the
  // on-pass with threshold 0, so every query also pays the slow-log
  // capture). The bound is generous — this is a tripwire for accidental
  // per-node instrumentation, not a microbenchmark.
  if (overhead_check) {
    size_t acc_off = 0;
    size_t bad_off = 0;
    size_t acc_on = 0;
    size_t bad_on = 0;
    double off_ns = OverheadPass(false, o, clients, per_client, slots,
                                 interval, &acc_off, &bad_off);
    double on_ns = OverheadPass(true, o, clients, per_client, slots, interval,
                                &acc_on, &bad_on);
    std::printf(
        "\n  overhead: mean e2e off=%.3f ms (n=%zu) on=%.3f ms (n=%zu)\n",
        off_ns / 1e6, acc_off, on_ns / 1e6, acc_on);
    if (bad_off + bad_on > 0) {
      std::printf("FAIL: %zu queries failed during overhead passes\n",
                  bad_off + bad_on);
      return 1;
    }
    if (on_ns > off_ns * 1.5 + 20e6) {
      std::printf(
          "FAIL: observer-on mean e2e exceeds off x1.5 + 20 ms bound\n");
      return 1;
    }
    std::printf("  overhead within bound (on <= off x1.5 + 20 ms)\n");
  }

  std::printf("OK: every accepted query returned the exact serial bytes\n");
  return 0;
}
