// Multi-client service benchmark (DESIGN.md §12): drives a QueryService
// over a shared corpus with an open-loop arrival schedule — queries are
// submitted on a fixed cadence from round-robin client sessions regardless
// of completions, the way real clients load a server — and reports p50/p99
// end-to-end latency and queue delay from the service.* histograms.
//
// The BENCH_service.json artifact carries one deterministic per-operator
// profile per query, computed on a standalone serial engine (work counters
// are pure functions of the plan at a fixed seed/scale, so the perf gate
// diffs them exactly); the service run's latency and queue-delay
// histograms ride along as timing context the gate ignores.
//
// Exit status is non-zero when any service result deviates from the
// uncached serial reference (the zero-wrong-results invariant: admission
// control may reject under overload, but an accepted query must return
// exactly the serial bytes) or when any query fails for a reason other
// than admission rejection.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/engine.h"
#include "service/corpus.h"
#include "service/query_service.h"
#include "util/metrics.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::ProfileSink;
using blossomtree::bench::TimeSeconds;
using blossomtree::bench::WithContext;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;

namespace {

struct QueryCase {
  const char* id;
  const char* text;
};

// The served mix: s1 is a broad low-selectivity scan, s2/s3 hit rare tags
// (the shared result cache's sweet spot once warm), s4 exercises the
// FLWOR pipeline per tuple. All run through EvaluateQuery, the service's
// single entry point.
constexpr QueryCase kQueries[] = {
    {"s1", "//article/title"},
    {"s2", "//phdthesis/author"},
    {"s3", "//article[year = \"omega\"]/title"},
    {"s4", "for $a in //phdthesis return <hit>{$a/school}</hit>"},
};

constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.05);
  size_t clients = 4;
  size_t per_client = 16;
  size_t slots = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      clients = std::strtoul(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--per-client=", 13) == 0) {
      per_client = std::strtoul(argv[i] + 13, nullptr, 10);
    } else if (std::strncmp(argv[i], "--slots=", 8) == 0) {
      slots = std::strtoul(argv[i] + 8, nullptr, 10);
    }
  }
  if (clients == 0) clients = 1;
  if (slots == 0) slots = 1;

  GenOptions o;
  o.scale = flags.scale;
  o.seed = flags.seed;

  blossomtree::service::CorpusOptions copts;
  copts.plan_cache.enabled = true;
  copts.result_cache.enabled = true;
  blossomtree::service::Corpus corpus(copts);
  {
    blossomtree::Status st =
        corpus.Add("dblp", GenerateDataset(Dataset::kD5Dblp, o));
    if (!st.ok()) {
      std::fprintf(stderr, "corpus: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  auto shared_doc = corpus.Get("dblp");

  // Serial uncached reference: the bytes every accepted service query must
  // reproduce, plus the mean serial latency the arrival cadence is derived
  // from.
  std::vector<std::string> expected(kNumQueries);
  double serial_mean_s = 0;
  for (size_t i = 0; i < kNumQueries; ++i) {
    blossomtree::engine::EngineOptions plain;
    plain.num_threads = 1;
    blossomtree::engine::BlossomTreeEngine ref(shared_doc->doc(), plain);
    blossomtree::Result<std::string> r = std::string{};
    serial_mean_s +=
        TimeSeconds([&] { r = ref.EvaluateQuery(kQueries[i].text); });
    if (!r.ok()) {
      std::fprintf(stderr, "%s reference error: %s\n", kQueries[i].id,
                   r.status().ToString().c_str());
      return 1;
    }
    expected[i] = r.MoveValue();
  }
  serial_mean_s /= kNumQueries;

  // Deterministic per-query work profiles for the gate, from a dedicated
  // serial engine outside any timed path.
  ProfileSink sink("service");
  sink.AddDatasetLabel(DatasetName(Dataset::kD5Dblp));
  sink.SetThreads(static_cast<unsigned>(slots));
  std::vector<std::string> profile_json(kNumQueries);
  for (size_t i = 0; i < kNumQueries; ++i) {
    blossomtree::engine::EngineOptions popts;
    popts.num_threads = 1;
    popts.collect_profile = true;
    blossomtree::engine::BlossomTreeEngine prof(shared_doc->doc(), popts);
    if (prof.EvaluateQuery(kQueries[i].text).ok()) {
      profile_json[i] = prof.LastProfile().ToJson();
    }
  }

  // Open-loop schedule: one arrival every serial_mean/slots seconds keeps
  // the offered load near the service's capacity without tripping
  // admission control (the queue bound absorbs the bursts).
  blossomtree::service::ServiceOptions sopts;
  sopts.slots = slots;
  sopts.max_queue = clients * per_client;
  blossomtree::service::QueryService svc(&corpus, sopts);
  std::vector<std::shared_ptr<blossomtree::service::Session>> sessions;
  for (size_t c = 0; c < clients; ++c) {
    sessions.push_back(svc.CreateSession("client-" + std::to_string(c)));
  }

  const size_t total = clients * per_client;
  const auto interval = std::chrono::nanoseconds(static_cast<uint64_t>(
      serial_mean_s / static_cast<double>(slots) * 1e9));
  std::printf(
      "Service bench: %zu clients x %zu queries, %zu slots, "
      "arrival interval %.2f ms (scale=%.2f)\n\n",
      clients, per_client, slots,
      static_cast<double>(interval.count()) / 1e6, flags.scale);

  std::vector<std::pair<size_t, std::shared_ptr<
                                    blossomtree::service::QueryTicket>>>
      tickets;
  tickets.reserve(total);
  auto start = std::chrono::steady_clock::now();
  for (size_t n = 0; n < total; ++n) {
    std::this_thread::sleep_until(start + interval * n);
    size_t q = n % kNumQueries;
    tickets.emplace_back(
        q, svc.Submit(*sessions[n % clients], "dblp", kQueries[q].text));
  }
  svc.Drain();
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  // Zero-wrong-results check plus per-query timing histograms for the
  // artifact.
  std::vector<blossomtree::util::Histogram> e2e(kNumQueries);
  std::vector<blossomtree::util::Histogram> qdelay(kNumQueries);
  size_t wrong = 0;
  size_t rejected = 0;
  size_t failed = 0;
  for (auto& [q, ticket] : tickets) {
    const auto& r = ticket->Wait();
    if (r.ok()) {
      if (*r != expected[q]) ++wrong;
      e2e[q].Record(ticket->e2e_ns());
      qdelay[q].Record(ticket->queue_delay_ns());
    } else if (r.status().code() ==
               blossomtree::StatusCode::kResourceExhausted) {
      ++rejected;
    } else {
      std::fprintf(stderr, "%s failed: %s\n", kQueries[q].id,
                   r.status().ToString().c_str());
      ++failed;
    }
  }

  std::printf("  %-3s %10s %10s %10s %10s\n", "id", "e2e_p50_ms",
              "e2e_p99_ms", "qd_p50_ms", "qd_p99_ms");
  for (size_t q = 0; q < kNumQueries; ++q) {
    auto es = e2e[q].Snapshot();
    auto qs = qdelay[q].Snapshot();
    std::printf("  %-3s %10.3f %10.3f %10.3f %10.3f\n", kQueries[q].id,
                static_cast<double>(es.Quantile(0.5)) / 1e6,
                static_cast<double>(es.Quantile(0.99)) / 1e6,
                static_cast<double>(qs.Quantile(0.5)) / 1e6,
                static_cast<double>(qs.Quantile(0.99)) / 1e6);
    if (!profile_json[q].empty()) {
      std::string context = "\"dataset\": \"" +
                            std::string(DatasetName(Dataset::kD5Dblp)) +
                            "\", \"id\": \"" + std::string(kQueries[q].id) +
                            "\", \"variant\": \"service\", \"latency_ns\": " +
                            es.ToJson() + ", \"queue_delay_ns\": " +
                            qs.ToJson();
      sink.Add(WithContext(context, profile_json[q]));
    }
  }

  std::printf(
      "\n  admitted=%llu completed=%llu rejected=%zu failed=%zu "
      "wall=%.2fs throughput=%.0f q/s\n",
      static_cast<unsigned long long>(
          svc.metrics().GetCounter("service.admitted")->value()),
      static_cast<unsigned long long>(
          svc.metrics().GetCounter("service.completed")->value()),
      rejected, failed, wall_s,
      wall_s > 0 ? static_cast<double>(total - rejected - failed) / wall_s
                 : 0.0);
  sink.WriteAndReport();

  if (wrong > 0) {
    std::printf("FAIL: %zu service results deviate from the serial "
                "reference\n",
                wrong);
    return 1;
  }
  if (failed > 0) {
    std::printf("FAIL: %zu queries failed outside admission control\n",
                failed);
    return 1;
  }
  std::printf("OK: every accepted query returned the exact serial bytes\n");
  return 0;
}
