// Ablation for §4.3's bounded nested-loop join: the BNLJ restricts each
// inner re-scan to the outer match's subtree range (p1, p2]; the naive
// nested loop re-scans the whole document per outer match. Reports wall
// time and scan I/O for both on the recursive data sets.

#include <cstdio>

#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "workload/queries.h"
#include "xpath/parser.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::TimeCell;
using blossomtree::bench::TimeSeconds;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::opt::JoinStrategy;
using blossomtree::opt::PlanOptions;

namespace {

struct RunResult {
  std::string time;
  uint64_t nodes = 0;
  double seconds = -1;  ///< Wall time; negative on DNF.
};

RunResult Run(const blossomtree::xml::Document* doc,
              const blossomtree::pattern::BlossomTree* tree,
              JoinStrategy strategy, double dnf_seconds) {
  RunResult out;
  PlanOptions po;
  po.strategy = strategy;
  double t = TimeSeconds([&] {
    auto plan = blossomtree::opt::PlanQuery(doc, tree, po);
    if (!plan.ok()) return;
    blossomtree::nestedlist::NestedList nl;
    auto start = std::chrono::steady_clock::now();
    while (plan->trees[0].root->GetNext(&nl)) {
      double elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (elapsed > dnf_seconds) {
        out.nodes = plan->trees[0].TotalNodesScanned();
        return;
      }
    }
    out.nodes = plan->trees[0].TotalNodesScanned();
  });
  out.time = t > dnf_seconds ? "DNF" : TimeCell(t);
  out.seconds = t > dnf_seconds ? -1 : t;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.05);
  std::printf(
      "Ablation: bounded vs naive nested-loop //-join (paper 4.3)\n"
      "(scale=%.2f, recursive data sets, DNF cap=%.1fs)\n\n",
      flags.scale, flags.dnf_seconds);
  std::printf("%-4s %-3s | %9s %14s | %9s %14s\n", "set", "q", "BNLJ s",
              "BNLJ nodes", "naive s", "naive nodes");
  blossomtree::bench::ProfileSink sink("ablation_bnlj");

  for (Dataset d : {Dataset::kD1Recursive, Dataset::kD4Treebank}) {
    blossomtree::datagen::GenOptions o;
    o.scale = flags.scale;
    o.seed = flags.seed;
    auto doc = blossomtree::datagen::GenerateDataset(d, o);
    sink.AddDatasetLabel(DatasetName(d));
    for (const auto& q : blossomtree::workload::QueriesFor(d)) {
      auto path = blossomtree::xpath::ParsePath(q.xpath);
      if (!path.ok()) continue;
      auto tree = blossomtree::pattern::BuildFromPath(*path);
      if (!tree.ok()) continue;
      RunResult bounded = Run(doc.get(), &*tree,
                              JoinStrategy::kBoundedNestedLoop,
                              flags.dnf_seconds);
      RunResult naive = Run(doc.get(), &*tree,
                            JoinStrategy::kNaiveNestedLoop,
                            flags.dnf_seconds);
      std::printf("%-4s %-3s | %9s %14llu | %9s %14llu\n", DatasetName(d),
                  q.id.c_str(), bounded.time.c_str(),
                  static_cast<unsigned long long>(bounded.nodes),
                  naive.time.c_str(),
                  static_cast<unsigned long long>(naive.nodes));
      // BNLJ per-operator breakdown (rescans, buffer peaks) for the
      // artifact; the naive variant is skipped — it may DNF.
      PlanOptions po;
      po.strategy = JoinStrategy::kBoundedNestedLoop;
      blossomtree::bench::LatencyHistogram latency;
      latency.RecordSeconds(bounded.seconds);
      sink.Add(blossomtree::bench::WithContext(
          "\"dataset\": \"" + std::string(DatasetName(d)) +
              "\", \"id\": \"" + q.id + "\", \"system\": \"BNLJ\", " +
              latency.JsonField(),
          blossomtree::bench::PlanProfileJson(doc.get(), &*tree, q.xpath,
                                              po)));
    }
  }
  sink.WriteAndReport();
  std::printf(
      "\nExpected: the subtree-range restriction cuts inner scan I/O by\n"
      "orders of magnitude; the naive variant degrades toward DNF as the\n"
      "outer match count grows.\n");
  return 0;
}
