// Ablation for §4.2's "merging NoK operators": evaluating k NoK pattern
// trees over the same document in ONE sequential scan instead of k scans.
// Reports the scan I/O proxy (nodes fetched by scan drivers) and wall time
// for separate vs merged evaluation, per branching query.

#include <cstdio>

#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "workload/queries.h"
#include "xpath/parser.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::TimeSeconds;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::opt::JoinStrategy;
using blossomtree::opt::PlanOptions;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.2);
  std::printf(
      "Ablation: merged NoK scans (one pass) vs separate scans (paper "
      "4.2)\n(scale=%.2f; non-recursive data sets, pipelined joins)\n\n",
      flags.scale);
  std::printf("%-4s %-3s %12s | %12s %9s | %12s %9s | %6s\n", "set", "q",
              "#noks", "sep. nodes", "sep. s", "mrg. nodes", "mrg. s",
              "saving");

  blossomtree::bench::ProfileSink sink("ablation_merged_scan");
  for (Dataset d : {Dataset::kD2Address, Dataset::kD3Catalog,
                    Dataset::kD5Dblp}) {
    blossomtree::datagen::GenOptions o;
    o.scale = flags.scale;
    o.seed = flags.seed;
    auto doc = blossomtree::datagen::GenerateDataset(d, o);
    sink.AddDatasetLabel(DatasetName(d));
    for (const auto& q : blossomtree::workload::QueriesFor(d)) {
      auto path = blossomtree::xpath::ParsePath(q.xpath);
      if (!path.ok()) continue;
      auto tree = blossomtree::pattern::BuildFromPath(*path);
      if (!tree.ok()) continue;

      uint64_t separate_nodes = 0;
      size_t num_noks = 0;
      double separate_s = TimeSeconds([&] {
        PlanOptions po;
        po.strategy = JoinStrategy::kPipelined;
        auto plan = blossomtree::opt::PlanQuery(doc.get(), &*tree, po);
        if (!plan.ok()) return;
        num_noks = plan->trees[0].scans.size();
        blossomtree::nestedlist::NestedList nl;
        while (plan->trees[0].root->GetNext(&nl)) {
        }
        separate_nodes = plan->trees[0].TotalNodesScanned();
      });

      uint64_t merged_nodes = 0;
      double merged_s = TimeSeconds([&] {
        PlanOptions po;
        po.strategy = JoinStrategy::kPipelined;
        po.merge_nok_scans = true;
        auto plan = blossomtree::opt::PlanQuery(doc.get(), &*tree, po);
        if (!plan.ok()) return;
        blossomtree::nestedlist::NestedList nl;
        while (plan->trees[0].root->GetNext(&nl)) {
        }
        merged_nodes = plan->merged_scan->NodesScanned();
      });

      double saving = separate_nodes == 0
                          ? 0
                          : 100.0 * (1.0 - static_cast<double>(merged_nodes) /
                                               separate_nodes);
      std::printf("%-4s %-3s %12zu | %12llu %9.4f | %12llu %9.4f | %5.1f%%\n",
                  DatasetName(d), q.id.c_str(), num_noks,
                  static_cast<unsigned long long>(separate_nodes), separate_s,
                  static_cast<unsigned long long>(merged_nodes), merged_s,
                  saving);
      for (bool merged : {false, true}) {
        PlanOptions po;
        po.strategy = JoinStrategy::kPipelined;
        po.merge_nok_scans = merged;
        blossomtree::bench::LatencyHistogram latency;
        latency.RecordSeconds(merged ? merged_s : separate_s);
        sink.Add(blossomtree::bench::WithContext(
            "\"dataset\": \"" + std::string(DatasetName(d)) +
                "\", \"id\": \"" + q.id + "\", \"merged\": " +
                (merged ? "true" : "false") + ", " + latency.JsonField(),
            blossomtree::bench::PlanProfileJson(doc.get(), &*tree, q.xpath,
                                                po)));
      }
    }
  }
  sink.WriteAndReport();
  std::printf(
      "\nExpected: merged scan costs ~one document pass regardless of the\n"
      "number of NoKs; separate scans cost ~k passes (k = #noks).\n");
  return 0;
}
