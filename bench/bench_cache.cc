// Multi-level query-cache benchmark (DESIGN.md §11): times every query
// cold (first execution on a fresh engine, caches empty) and warm (repeat
// executions that hit the plan cache and the NoK sub-result cache), checks
// the warm results byte-identical to an uncached serial reference at 1/2/4
// threads, and reports the hit-path speedup. The BENCH_cache.json artifact
// carries cold AND warm per-operator profiles at one thread: the perf gate
// pins both that cold plans do no extra work and that warm scans do ZERO
// scan work (a warm nodes_scanned regression from 0 fails the gate).
//
// Exit status is non-zero when any cached result deviates from the
// reference or the geometric-mean speedup across the serial queries falls
// below --min-speedup (default 5, per the cache design target; 0 disables
// the check). Geomean is the standard aggregation for speedup ratios: a
// sum-of-latencies ratio would let the one deliberately cache-hostile
// query (c1) mask the others. Cold latencies are medians over several
// fresh engines and warm latencies medians over --runs repeats, so the
// gate is robust to scheduler noise.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "engine/engine.h"
#include "xpath/parser.h"

using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::bench::ProfileSink;
using blossomtree::bench::TimeSeconds;
using blossomtree::bench::WithContext;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;

namespace {

struct QueryCase {
  const char* id;
  const char* text;   ///< XPath (is_flwor false) or FLWOR query text.
  bool is_flwor;
};

// Mix: c1 is the worst case for the result cache (low selectivity, so the
// warm replay still materializes a large result); c2-c4 are its sweet spot
// (rare tags / value predicates: cold pays a full-document scan, warm
// replays a small sub-result). c4 keeps the selective step inside the FOR
// binding path so the NoK pattern -- and thus the cache -- covers it; the
// per-tuple FLWOR pipeline (binding enumeration, construction) is
// deliberately uncached and runs on every execution.
constexpr QueryCase kQueries[] = {
    {"c1", "//article/title", false},
    {"c2", "//phdthesis/author", false},
    {"c3", "//article[year = \"omega\"]/title", false},
    {"c4", "for $a in //phdthesis return <hit>{$a/school}</hit>", true},
};

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

blossomtree::engine::EngineOptions CachedOptions(unsigned threads,
                                                 bool collect_profile) {
  blossomtree::engine::EngineOptions opts;
  opts.num_threads = threads;
  opts.collect_profile = collect_profile;
  opts.plan_cache.enabled = true;
  opts.result_cache.enabled = true;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.05);
  double min_speedup = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    }
  }
  std::vector<unsigned> threads = flags.threads;
  if (threads.empty()) threads = {1, 2, 4};

  GenOptions o;
  o.scale = flags.scale;
  o.seed = flags.seed;
  auto doc = GenerateDataset(Dataset::kD5Dblp, o);
  ProfileSink sink("cache");
  sink.AddDatasetLabel(DatasetName(Dataset::kD5Dblp));

  std::printf("Query caches: cold vs warm (scale=%.2f, runs=%d)\n\n",
              flags.scale, flags.runs);
  std::printf("  %-3s %-10s %7s %11s %11s %9s %s\n", "id", "kind", "threads",
              "cold_ms", "warm_ms", "speedup", "identical");

  bool all_identical = true;
  std::vector<double> serial_speedups;

  for (const QueryCase& q : kQueries) {
    // Uncached serial reference: what every cached run must reproduce.
    blossomtree::engine::EngineOptions plain;
    plain.num_threads = 1;
    blossomtree::engine::BlossomTreeEngine ref(doc.get(), plain);
    blossomtree::xpath::PathExpr path;
    std::vector<blossomtree::xml::NodeId> ref_nodes;
    std::string ref_xml;
    if (q.is_flwor) {
      auto r = ref.EvaluateQuery(q.text);
      if (!r.ok()) {
        std::printf("  %-3s reference error: %s\n", q.id,
                    r.status().ToString().c_str());
        return 1;
      }
      ref_xml = r.MoveValue();
    } else {
      auto p = blossomtree::xpath::ParsePath(q.text);
      if (!p.ok()) {
        std::printf("  %-3s parse error: %s\n", q.id,
                    p.status().ToString().c_str());
        return 1;
      }
      path = p.MoveValue();
      auto r = ref.EvaluatePath(path);
      if (!r.ok()) {
        std::printf("  %-3s reference error: %s\n", q.id,
                    r.status().ToString().c_str());
        return 1;
      }
      ref_nodes = r.MoveValue();
    }

    // Cold/warm per-operator profiles from a dedicated serial engine,
    // OUTSIDE the timed loops: CollectProfile runs inside every evaluation
    // and would otherwise inflate the measured warm latencies. One-thread
    // profiles keep the sink entries deterministic (counters are
    // thread-count independent by the DESIGN.md §10 contract anyway).
    {
      blossomtree::engine::BlossomTreeEngine prof(doc.get(),
                                                  CachedOptions(1, true));
      auto profile_run = [&]() -> bool {
        if (q.is_flwor) return prof.EvaluateQuery(q.text).ok();
        return prof.EvaluatePath(path).ok();
      };
      if (profile_run()) {
        std::string cold_profile = prof.LastProfile().ToJson();
        if (profile_run()) {
          std::string warm_profile = prof.LastProfile().ToJson();
          std::string context = "\"dataset\": \"" +
                                std::string(DatasetName(Dataset::kD5Dblp)) +
                                "\", \"id\": \"" + q.id + "\"";
          sink.Add(WithContext(context + ", \"variant\": \"cold\"",
                               cold_profile));
          sink.Add(WithContext(context + ", \"variant\": \"warm\"",
                               warm_profile));
        }
      }
    }

    for (unsigned t : threads) {
      bool identical = true;
      // One execution on `eng`: returns its wall time and folds the
      // byte-identity check against the uncached serial reference into
      // `identical`.
      auto run_once =
          [&](blossomtree::engine::BlossomTreeEngine& eng) -> double {
        double seconds;
        if (q.is_flwor) {
          blossomtree::Result<std::string> r = std::string{};
          seconds = TimeSeconds([&] { r = eng.EvaluateQuery(q.text); });
          if (!r.ok() || *r != ref_xml) identical = false;
        } else {
          blossomtree::Result<std::vector<blossomtree::xml::NodeId>> r =
              std::vector<blossomtree::xml::NodeId>{};
          seconds = TimeSeconds([&] { r = eng.EvaluatePath(path); });
          if (!r.ok() || *r != ref_nodes) identical = false;
        }
        return seconds;
      };

      // Cold latency: median of first-runs on fresh engines (the caches
      // are engine-owned, so every fresh engine starts empty).
      constexpr int kColdSamples = 5;
      std::vector<double> cold_samples;
      std::unique_ptr<blossomtree::engine::BlossomTreeEngine> eng;
      for (int i = 0; i < kColdSamples; ++i) {
        eng = std::make_unique<blossomtree::engine::BlossomTreeEngine>(
            doc.get(), CachedOptions(t, false));
        cold_samples.push_back(run_once(*eng));
      }
      double cold_s = Median(cold_samples);

      // Warm latency: median of repeat runs on the last engine, whose
      // caches the cold run above just primed.
      std::vector<double> warm_samples;
      for (int run = 0; run < flags.runs; ++run) {
        warm_samples.push_back(run_once(*eng));
      }
      double warm_s = Median(warm_samples);

      all_identical = all_identical && identical;
      if (t == 1) {
        serial_speedups.push_back(warm_s > 0 ? cold_s / warm_s : 1.0);
      }
      std::printf("  %-3s %-10s %7u %11.3f %11.3f %8.1fx %s\n", q.id,
                  q.is_flwor ? "flwor" : "path", t, cold_s * 1e3,
                  warm_s * 1e3, warm_s > 0 ? cold_s / warm_s : 0.0,
                  identical ? "yes" : "NO");
    }
  }

  double log_sum = 0;
  for (double s : serial_speedups) log_sum += std::log(s);
  double speedup = serial_speedups.empty()
                       ? 0.0
                       : std::exp(log_sum / serial_speedups.size());
  std::printf("\nGeometric-mean serial speedup across queries: %.1fx\n",
              speedup);
  sink.WriteAndReport();

  if (!all_identical) {
    std::printf("FAIL: cached results deviate from the uncached reference\n");
    return 1;
  }
  if (min_speedup > 0 && speedup < min_speedup) {
    std::printf("FAIL: geomean speedup %.1fx below --min-speedup=%.1f\n",
                speedup, min_speedup);
    return 1;
  }
  std::printf("OK: cached results byte-identical at every thread count\n");
  return 0;
}
