// Reproduces Table 2 / Appendix A of the paper: the six query categories
// (selectivity {high, moderate, low} × topology {chain, branching}) per
// data set, reporting each query's measured result size and selectivity so
// the tiers can be checked against the paper's design (§5.1: high ≈ small
// result, low ≈ large result).

#include <cstdio>

#include "baseline/navigational.h"
#include "bench_profile.h"
#include "bench_util.h"
#include "datagen/datagen.h"
#include "pattern/builder.h"
#include "workload/queries.h"
#include "xpath/parser.h"

using blossomtree::baseline::NavigationalEvaluator;
using blossomtree::bench::BenchFlags;
using blossomtree::bench::ParseFlags;
using blossomtree::datagen::AllDatasets;
using blossomtree::datagen::Dataset;
using blossomtree::datagen::DatasetName;
using blossomtree::datagen::GenerateDataset;
using blossomtree::datagen::GenOptions;
using blossomtree::workload::QueriesFor;
using blossomtree::workload::QuerySpec;

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.2);
  blossomtree::bench::ProfileSink sink("table2_queries");
  std::printf("Table 2 / Appendix A: query categories (scale=%.2f)\n\n",
              flags.scale);
  for (Dataset d : AllDatasets()) {
    GenOptions o;
    o.scale = flags.scale;
    o.seed = flags.seed;
    auto doc = GenerateDataset(d, o);
    sink.AddDatasetLabel(DatasetName(d));
    std::printf("%s (%zu element nodes)\n", DatasetName(d),
                doc->NumElements());
    std::printf("  %-3s %-4s %-60s %9s %8s\n", "id", "cat", "query",
                "results", "sel.%");
    for (const QuerySpec& q : QueriesFor(d)) {
      auto path = blossomtree::xpath::ParsePath(q.xpath);
      if (!path.ok()) {
        std::printf("  %-3s parse error: %s\n", q.id.c_str(),
                    path.status().ToString().c_str());
        continue;
      }
      NavigationalEvaluator nav(doc.get());
      blossomtree::bench::LatencyHistogram latency;
      blossomtree::Result<std::vector<blossomtree::xml::NodeId>> r =
          std::vector<blossomtree::xml::NodeId>{};
      for (int run = 0; run < flags.runs; ++run) {
        latency.RecordSeconds(blossomtree::bench::TimeSeconds(
            [&] { r = nav.EvaluatePath(*path); }));
      }
      if (!r.ok()) {
        std::printf("  %-3s eval error: %s\n", q.id.c_str(),
                    r.status().ToString().c_str());
        continue;
      }
      std::printf("  %-3s %-4s %-60s %9zu %8.2f\n", q.id.c_str(),
                  q.category.c_str(), q.xpath.c_str(), r->size(),
                  100.0 * r->size() / doc->NumElements());
      auto tree = blossomtree::pattern::BuildFromPath(*path);
      if (tree.ok()) {
        sink.Add(blossomtree::bench::WithContext(
            "\"dataset\": \"" + std::string(DatasetName(d)) +
                "\", \"id\": \"" + q.id + "\", " + latency.JsonField(),
            blossomtree::bench::PlanProfileJson(doc.get(), &*tree,
                                                q.xpath)));
      }
    }
    std::printf("\n");
  }
  sink.WriteAndReport();
  return 0;
}
