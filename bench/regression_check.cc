#include "regression_check.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace blossomtree {
namespace bench {

namespace {

/// Renders a context value compactly for the query key.
std::string KeyValue(const util::JsonValue& v) {
  switch (v.kind()) {
    case util::JsonValue::Kind::kString:
      return v.AsString();
    case util::JsonValue::Kind::kNumber: {
      char buf[32];
      double d = v.AsNumber();
      if (d == std::floor(d) && std::fabs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
      } else {
        std::snprintf(buf, sizeof(buf), "%g", d);
      }
      return buf;
    }
    case util::JsonValue::Kind::kBool:
      return v.AsBool() ? "true" : "false";
    default:
      return "?";
  }
}

uint64_t SumCounter(const util::JsonValue& profile, const char* name) {
  const util::JsonValue* ops = profile.Find("operators");
  if (ops == nullptr || !ops->is_array()) return 0;
  double total = 0;
  for (const util::JsonValue& op : ops->AsArray()) {
    total += op.NumberOr(name, 0);
  }
  return static_cast<uint64_t>(total);
}

}  // namespace

std::string RegressionReport::ToString() const {
  std::string out;
  for (const std::string& f : failures) out += "FAIL: " + f + "\n";
  for (const std::string& w : warnings) out += "warn: " + w + "\n";
  char line[96];
  std::snprintf(line, sizeof(line), "%d queries compared, %zu failures\n",
                queries_compared, failures.size());
  out += line;
  return out;
}

Result<BenchRun> BenchRunFromJson(const util::JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("bench artifact is not a JSON object");
  }
  BenchRun run;
  run.bench = root.StringOr("bench", "");
  run.schema_version =
      static_cast<int>(root.NumberOr("schema_version", 1));
  const util::JsonValue* profiles = root.Find("profiles");
  if (profiles == nullptr || !profiles->is_array()) {
    return Status::InvalidArgument("bench artifact has no profiles array");
  }
  for (const util::JsonValue& entry : profiles->AsArray()) {
    if (!entry.is_object()) continue;
    const util::JsonValue* profile = entry.Find("profile");
    // Context fields (everything but the profile and the timing samples —
    // latency and, for the service bench, queue delay) identify the query
    // across runs; std::map iteration makes the key order-independent of
    // the artifact's field order.
    std::string key;
    for (const auto& [name, value] : entry.AsObject()) {
      if (name == "profile" || name == "latency_ns" ||
          name == "queue_delay_ns") {
        continue;
      }
      key += name + "=" + KeyValue(value) + " ";
    }
    QueryCounters c;
    if (profile != nullptr && profile->is_object()) {
      key += profile->StringOr("query", "");
      c.nodes_scanned = SumCounter(*profile, "nodes_scanned");
      c.index_entries = SumCounter(*profile, "index_entries");
      c.comparisons = SumCounter(*profile, "comparisons");
      c.rows = SumCounter(*profile, "rows");
      c.nl_cells = SumCounter(*profile, "nl_cells");
      c.total_wall_ms = profile->NumberOr("total_wall_ms", 0);
    }
    run.queries[key] = c;
  }
  return run;
}

Result<BenchRun> LoadBenchRun(const std::string& path) {
  BT_ASSIGN_OR_RETURN(util::JsonValue root, util::ParseJsonFile(path));
  auto run = BenchRunFromJson(root);
  if (!run.ok()) {
    return Status::InvalidArgument(path + ": " + run.status().message());
  }
  return run;
}

namespace {

void CheckCounter(const std::string& key, const char* name, uint64_t base,
                  uint64_t cur, double tolerance, RegressionReport* report) {
  double limit = static_cast<double>(base) * (1.0 + tolerance);
  if (static_cast<double>(cur) > limit) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%s %" PRIu64 " -> %" PRIu64 " (limit %.0f)", name, base,
                  cur, limit);
    report->failures.push_back(key + ": " + line);
  } else if (cur < base) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s improved %" PRIu64 " -> %" PRIu64,
                  name, base, cur);
    report->warnings.push_back(key + ": " + line);
  }
}

}  // namespace

RegressionReport CompareRuns(const BenchRun& baseline, const BenchRun& current,
                             const RegressionOptions& options) {
  RegressionReport report;
  if (baseline.bench != current.bench) {
    report.failures.push_back("bench mismatch: baseline \"" +
                              baseline.bench + "\" vs current \"" +
                              current.bench + "\"");
    return report;
  }
  if (baseline.schema_version != current.schema_version) {
    report.failures.push_back(
        "schema_version mismatch: baseline " +
        std::to_string(baseline.schema_version) + " vs current " +
        std::to_string(current.schema_version) +
        " (regenerate the baseline)");
    return report;
  }
  for (const auto& [key, base] : baseline.queries) {
    auto it = current.queries.find(key);
    if (it == current.queries.end()) {
      report.failures.push_back(key + ": missing from current run");
      continue;
    }
    ++report.queries_compared;
    const QueryCounters& cur = it->second;
    double tol = options.counter_tolerance;
    CheckCounter(key, "nodes_scanned", base.nodes_scanned, cur.nodes_scanned,
                 tol, &report);
    CheckCounter(key, "index_entries", base.index_entries, cur.index_entries,
                 tol, &report);
    CheckCounter(key, "comparisons", base.comparisons, cur.comparisons, tol,
                 &report);
    CheckCounter(key, "rows", base.rows, cur.rows, tol, &report);
    CheckCounter(key, "nl_cells", base.nl_cells, cur.nl_cells, tol, &report);
    if (options.check_latency && base.total_wall_ms > 0 &&
        cur.total_wall_ms >
            base.total_wall_ms * (1.0 + options.latency_tolerance)) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "total_wall_ms %.3f -> %.3f (tolerance %.0f%%)",
                    base.total_wall_ms, cur.total_wall_ms,
                    options.latency_tolerance * 100);
      report.failures.push_back(key + ": " + line);
    }
  }
  for (const auto& [key, cur] : current.queries) {
    if (baseline.queries.find(key) == baseline.queries.end()) {
      report.warnings.push_back(key +
                                ": new query (not in baseline; regenerate "
                                "to start tracking it)");
    }
  }
  return report;
}

}  // namespace bench
}  // namespace blossomtree
