#ifndef BLOSSOMTREE_BENCH_BENCH_PROFILE_H_
#define BLOSSOMTREE_BENCH_BENCH_PROFILE_H_

#include <string>

#include <vector>

#include "engine/query_profile.h"
#include "exec/operator.h"
#include "opt/planner.h"
#include "pattern/blossom_tree.h"
#include "util/metrics.h"
#include "xml/document.h"

namespace blossomtree {
namespace bench {

/// Per-query latency histogram for BENCH_*.json: feeds every timed run
/// into a log₂-bucketed util::Histogram and renders the summary (count,
/// min/max, p50/p90/p99 in nanoseconds) as a JSON field. One instance per
/// (query, variant) cell; runs recorded in seconds.
class LatencyHistogram {
 public:
  void RecordSeconds(double seconds) {
    if (seconds < 0) return;  // DNF runs carry no latency sample.
    hist_.Record(static_cast<uint64_t>(seconds * 1e9));
  }
  void RecordAll(const std::vector<double>& run_seconds) {
    for (double s : run_seconds) RecordSeconds(s);
  }
  bool empty() const { return hist_.Snapshot().count == 0; }

  /// `"latency_ns": {...}` — ready to splice into a context-fields string.
  std::string JsonField() const {
    return "\"latency_ns\": " + hist_.Snapshot().ToJson();
  }

 private:
  util::Histogram hist_;
};

/// Plans `tree` with cardinality estimates, runs it to completion, and
/// returns the engine::QueryProfile as a JSON object — the per-operator
/// breakdown the BENCH_*.json artifacts carry. Runs OUTSIDE the timed
/// loops: estimate collection builds tag indexes and the extra drain would
/// otherwise perturb the measured numbers. Empty string on plan failure.
inline std::string PlanProfileJson(const xml::Document* doc,
                                   const pattern::BlossomTree* tree,
                                   const std::string& query,
                                   opt::PlanOptions options = {}) {
  options.estimate_cardinalities = true;
  auto plan = opt::PlanQuery(doc, tree, options);
  if (!plan.ok()) return {};
  for (auto& tp : plan->trees) exec::Drain(tp.root.get());
  unsigned threads =
      options.pool != nullptr
          ? static_cast<unsigned>(options.pool->NumThreads())
          : 1;
  return engine::BuildQueryProfile(&*plan, query, threads).ToJson();
}

/// Wraps a profile object with leading context fields:
/// WithContext("\"dataset\": \"d1\"", json) →
/// {"dataset": "d1", "profile": <json>}.
inline std::string WithContext(const std::string& context_fields,
                               const std::string& profile_json) {
  if (profile_json.empty()) return {};
  std::string out = "{";
  if (!context_fields.empty()) {
    out += context_fields;
    out += ", ";
  }
  out += "\"profile\": ";
  out += profile_json;
  out += "}";
  return out;
}

}  // namespace bench
}  // namespace blossomtree

#endif  // BLOSSOMTREE_BENCH_BENCH_PROFILE_H_
