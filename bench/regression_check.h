#ifndef BLOSSOMTREE_BENCH_REGRESSION_CHECK_H_
#define BLOSSOMTREE_BENCH_REGRESSION_CHECK_H_

#include <map>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace blossomtree {
namespace bench {

/// One query's comparable slice of a BENCH_*.json artifact: the
/// deterministic work counters summed over the plan's operators, plus the
/// (machine-dependent) wall time kept aside for the optional latency check.
///
/// The perf gate diffs the counters, not the clock: with a fixed dataset
/// seed and scale the counters are pure functions of the plan, identical
/// across machines, compilers, and thread counts — so a checked-in baseline
/// stays green in CI until a change actually alters the work a plan does.
struct QueryCounters {
  uint64_t nodes_scanned = 0;
  uint64_t index_entries = 0;
  uint64_t comparisons = 0;
  uint64_t rows = 0;
  uint64_t nl_cells = 0;
  double total_wall_ms = 0;  ///< Clock time; only the --check-latency path.
};

/// Keyed per-query counters of one artifact, plus its header fields.
struct BenchRun {
  std::string bench;
  int schema_version = 0;
  std::map<std::string, QueryCounters> queries;
};

/// Tolerances for CompareRuns. Counters are deterministic, so the default
/// tolerance is exact; latency is off by default (CI machines are noisy).
struct RegressionOptions {
  double counter_tolerance = 0.0;  ///< Allowed relative counter growth.
  bool check_latency = false;
  double latency_tolerance = 0.5;  ///< Allowed relative wall-time growth.
};

/// Outcome of one baseline-vs-current comparison.
struct RegressionReport {
  std::vector<std::string> failures;  ///< Regressions / missing queries.
  std::vector<std::string> warnings;  ///< New queries, improvements.
  int queries_compared = 0;

  bool ok() const { return failures.empty(); }
  std::string ToString() const;
};

/// Parses a BENCH_*.json artifact into per-query counters. The key of each
/// entry is the concatenation of its context fields (dataset, id, system,
/// ... — everything except the profile itself) plus the profile's query
/// text, so any two runs of the same harness key identically.
Result<BenchRun> LoadBenchRun(const std::string& path);

/// LoadBenchRun over an already-parsed JSON value (for tests).
Result<BenchRun> BenchRunFromJson(const util::JsonValue& root);

/// Diffs `current` against `baseline` under `options`. Failures: a counter
/// above baseline * (1 + counter_tolerance); a baseline query missing from
/// the current run; a bench/schema mismatch; optionally wall time above
/// baseline * (1 + latency_tolerance). Queries only in `current` warn.
RegressionReport CompareRuns(const BenchRun& baseline, const BenchRun& current,
                             const RegressionOptions& options = {});

}  // namespace bench
}  // namespace blossomtree

#endif  // BLOSSOMTREE_BENCH_REGRESSION_CHECK_H_
