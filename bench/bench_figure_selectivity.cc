// Figure-style series for the paper's §5.2 analysis: "TwigStack is faster
// when the tag constraints in the query are selective. On the other hand,
// pipelined join algorithm does not rely on indexes, thus it resembles a
// sequential scan operator".
//
// Sweeps query selectivity over a synthetic catalog (key values with
// geometric frequencies: v0 matches ~50% of items, v1 ~25%, ... v9 ~0.1%)
// and reports the running time of all four systems per selectivity tier.
// Expected: XH/SJ/TS costs fall with selectivity (index/candidate driven),
// PL stays flat (sequential scans), with a crossover at high selectivity.

#include <cstdio>

#include "baseline/navigational.h"
#include "bench_profile.h"
#include "bench_util.h"
#include "exec/twig_semijoin.h"
#include "exec/twigstack.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "util/rng.h"
#include "xml/document.h"
#include "xpath/parser.h"

using namespace blossomtree;
using bench::BenchFlags;
using bench::ParseFlags;
using bench::TimeCell;
using bench::TimeSeconds;

namespace {

/// items with a geometric key distribution: key vK with probability 2^-K-1.
std::unique_ptr<xml::Document> Catalog(size_t items, uint64_t seed) {
  auto doc = std::make_unique<xml::Document>();
  Rng rng(seed);
  doc->BeginElement("catalog");
  for (size_t i = 0; i < items; ++i) {
    doc->BeginElement("item");
    doc->BeginElement("key");
    int k = 0;
    while (k < 9 && rng.Chance(0.5)) ++k;
    doc->AddText("v" + std::to_string(k));
    doc->EndElement();
    doc->BeginElement("payload");
    doc->AddText(std::to_string(rng.Uniform(1000)));
    doc->EndElement();
    doc->EndElement();
  }
  doc->EndElement();
  Status st = doc->Finish();
  (void)st;
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/1.0);
  size_t items = static_cast<size_t>(50000 * flags.scale);
  auto doc = Catalog(items, flags.seed);
  for (xml::TagId t = 0; t < doc->tags().size(); ++t) doc->TagIndex(t);
  std::printf(
      "Selectivity sweep: //item[key = \"vK\"]/payload over %zu items\n\n",
      items);
  std::printf("%-4s %9s %8s | %8s %8s %8s %8s\n", "key", "results", "sel.%",
              "XH s", "TS s", "SJ s", "PL s");

  bench::ProfileSink sink("figure_selectivity");
  sink.AddDatasetLabel("catalog-" + std::to_string(items));
  for (int k = 0; k <= 9; ++k) {
    std::string query =
        "//item[key = \"v" + std::to_string(k) + "\"]/payload";
    auto path = xpath::ParsePath(query);
    if (!path.ok()) return 1;
    auto tree = pattern::BuildFromPath(*path);
    if (!tree.ok()) return 1;

    size_t results = 0;
    double xh_s = TimeSeconds([&] {
      baseline::NavigationalEvaluator nav(doc.get());
      auto r = nav.EvaluatePath(*path);
      if (r.ok()) results = r->size();
    });
    double ts_s = TimeSeconds([&] {
      exec::TwigStack ts(doc.get(), &*tree);
      std::vector<xml::NodeId> out;
      Status st = ts.Run(tree->VertexOfVariable("result"), &out);
      (void)st;
    });
    double sj_s = TimeSeconds([&] {
      exec::TwigSemijoin sj(doc.get(), &*tree);
      std::vector<xml::NodeId> out;
      Status st = sj.Run(tree->VertexOfVariable("result"), &out);
      (void)st;
    });
    opt::PlanOptions po;
    po.strategy = opt::JoinStrategy::kPipelined;
    double pl_s = TimeSeconds([&] {
      auto r = opt::EvaluatePathQuery(doc.get(), &*tree, po);
      (void)r;
    });
    std::printf("v%-3d %9zu %8.3f | %8s %8s %8s %8s\n", k, results,
                100.0 * static_cast<double>(results) /
                    static_cast<double>(doc->NumElements()),
                TimeCell(xh_s).c_str(), TimeCell(ts_s).c_str(),
                TimeCell(sj_s).c_str(), TimeCell(pl_s).c_str());
    bench::LatencyHistogram latency;
    latency.RecordSeconds(pl_s);
    sink.Add(bench::WithContext(
        "\"key\": \"v" + std::to_string(k) + "\", \"system\": \"PL\", " +
            latency.JsonField(),
        bench::PlanProfileJson(doc.get(), &*tree, query, po)));
  }
  sink.WriteAndReport();
  std::printf(
      "\nExpected: PL is roughly flat (sequential-scan bound); TS/SJ track\n"
      "the candidate sizes. TwigStack's advantage appears at the selective\n"
      "end; the scan-based plan is competitive at the unselective end.\n");
  return 0;
}
