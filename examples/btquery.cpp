// btquery — command-line query driver over XML or succinct (.btsx) files.
//
// Usage:
//   btquery [options] <file.xml|file.btsx> <query>
//   options:
//     --engine=blossom|nav     evaluation engine (default blossom)
//     --strategy=auto|pl|nl    //-join strategy for blossom plans
//     --explain                print the physical plan
//     --advise                 print the cost model's recommendation
//     --save-btsx=<path>       save the parsed document in succinct form
//     --trace=<path>           record a query-lifecycle trace and export it
//                              as Chrome trace_event JSON (load the file in
//                              chrome://tracing or https://ui.perfetto.dev)
//     --metrics                print the engine's metric counters and
//                              latency histogram summaries after the query
//
// The query may be a path expression or a full FLWOR expression.

#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/navigational.h"
#include "engine/engine.h"
#include "flwor/parser.h"
#include "opt/cost_model.h"
#include "pattern/builder.h"
#include "storage/succinct.h"
#include "util/trace.h"
#include "xml/parser.h"

using namespace blossomtree;

namespace {

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine_name = "blossom";
  std::string strategy = "auto";
  bool explain = false;
  bool advise = false;
  bool metrics = false;
  std::string trace_path;
  std::string save_btsx;
  std::string file;
  std::string query;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--engine=", 9) == 0) {
      engine_name = arg + 9;
    } else if (std::strncmp(arg, "--strategy=", 11) == 0) {
      strategy = arg + 11;
    } else if (std::strcmp(arg, "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(arg, "--advise") == 0) {
      advise = true;
    } else if (std::strncmp(arg, "--save-btsx=", 12) == 0) {
      save_btsx = arg + 12;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics = true;
    } else if (file.empty()) {
      file = arg;
    } else if (query.empty()) {
      query = arg;
    }
  }
  // Start the capture before the query parse so the flwor::ParseQuery span
  // lands on the timeline; the engine leaves a running capture alone.
  if (!trace_path.empty()) util::Tracer::Get().Enable();
  if (file.empty() || query.empty()) {
    std::fprintf(stderr,
                 "usage: btquery [--engine=blossom|nav] [--strategy=auto|pl|"
                 "nl] [--explain] [--advise] [--save-btsx=p] [--trace=p] "
                 "[--metrics] <file> <query>\n");
    return 2;
  }

  // Load the document (succinct or XML by extension).
  Result<std::unique_ptr<xml::Document>> loaded =
      EndsWith(file, ".btsx") ? storage::LoadDocument(file)
                              : xml::ParseDocumentFile(file);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto doc = loaded.MoveValue();
  std::fprintf(stderr, "loaded %zu nodes (%s)\n", doc->NumNodes(),
               doc->IsRecursive() ? "recursive" : "non-recursive");

  if (!save_btsx.empty()) {
    Status st = storage::SaveDocument(*doc, save_btsx);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved succinct form to %s\n", save_btsx.c_str());
  }

  auto parsed = flwor::ParseQuery(query);
  if (!parsed.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }

  if (advise && (*parsed)->kind == flwor::Expr::Kind::kPath) {
    auto tree = pattern::BuildFromPath((*parsed)->path);
    if (tree.ok()) {
      opt::PlanAdvice a = opt::AdvisePlan(*doc, *tree);
      std::fprintf(stderr, "advice: %s\n", a.rationale.c_str());
    }
  }

  engine::EngineOptions opts;
  if (strategy == "pl") {
    opts.plan.strategy = opt::JoinStrategy::kPipelined;
  } else if (strategy == "nl") {
    opts.plan.strategy = opt::JoinStrategy::kBoundedNestedLoop;
  }
  opts.trace = !trace_path.empty();
  opts.collect_metrics = metrics;

  Result<std::string> result("");
  if (engine_name == "nav") {
    baseline::NavigationalEvaluator nav(doc.get());
    result = nav.EvaluateToXml(**parsed);
  } else {
    engine::BlossomTreeEngine engine(doc.get(), opts);
    result = engine.EvaluateToXml(**parsed);
    if (explain) {
      std::fprintf(stderr, "plan:\n%s", engine.LastExplain().c_str());
    }
    if (metrics) {
      std::fprintf(stderr, "metrics:\n%s%s\n",
                   engine.metrics().CountersText().c_str(),
                   engine.metrics().ToJson().c_str());
    }
  }
  if (!trace_path.empty()) {
    Status st = util::Tracer::Get().ExportJsonFile(trace_path);
    if (st.ok()) {
      std::fprintf(stderr, "trace written to %s (%zu events)\n",
                   trace_path.c_str(), util::Tracer::Get().EventCount());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
    }
  }
  if (!result.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", result->c_str());
  return 0;
}
