// btingest — offline BTSX v2 ingestion (DESIGN.md §13): parses an XML file
// (or generates a paper dataset) once, and persists the *decoded paged
// layout* — fixed-width node records, tag dictionary, per-tag node-id
// streams, text/attribute tables — so `btserve load-disk`, Corpus::AddDisk,
// and storage::DiskStore can later serve the document in O(open) with no
// XML parse and no index build.
//
// Usage:
//   btingest input.xml output.btsx2 [--verify] [--index]
//   btingest --gen=d5 [--scale=S] [--seed=N] output.btsx2 [--verify] [--index]
//
//   --gen=dN    generate dataset d1..d5 instead of parsing an XML file
//   --scale=S   generator size multiplier (default 1.0)
//   --seed=N    generator seed (default 42)
//   --verify    re-map the written file and run the full O(n) consistency
//               check (storage::ValidateBtsx2Deep) before declaring success
//   --index     also build the structural index (path summary, tag posting
//               lists, value index; DESIGN.md §14) and write it as the
//               output's `.btsi` sidecar. Stamped with the corpus file's
//               generation, so re-ingesting without --index leaves a stale
//               sidecar that every open correctly ignores.
//
// The output stamps the source document's generation as the on-disk
// version; every open of the file adopts it under a fresh in-process
// generation, so result-cache identities never collide across builds.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "datagen/datagen.h"
#include "index/btsi.h"
#include "index/structural_index.h"
#include "storage/btsx2.h"
#include "storage/disk_store.h"
#include "xml/parser.h"

using namespace blossomtree;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: btingest input.xml output.btsx2 [--verify] [--index]\n"
               "       btingest --gen=d1..d5 [--scale=S] [--seed=N] "
               "output.btsx2 [--verify] [--index]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::string gen;
  datagen::GenOptions gopts;
  bool verify = false;
  bool build_index = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--gen=", 6) == 0) {
      gen = arg + 6;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      gopts.scale = std::strtod(arg + 8, nullptr);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      gopts.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(arg, "--index") == 0) {
      build_index = true;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      return Usage();
    } else if (gen.empty() && input.empty() && output.empty() && i + 1 < argc) {
      input = arg;
    } else if (output.empty()) {
      output = arg;
    } else {
      return Usage();
    }
  }
  if (output.empty() || (gen.empty() == input.empty())) return Usage();

  std::unique_ptr<xml::Document> doc;
  if (!gen.empty()) {
    datagen::Dataset which;
    if (gen == "d1") {
      which = datagen::Dataset::kD1Recursive;
    } else if (gen == "d2") {
      which = datagen::Dataset::kD2Address;
    } else if (gen == "d3") {
      which = datagen::Dataset::kD3Catalog;
    } else if (gen == "d4") {
      which = datagen::Dataset::kD4Treebank;
    } else if (gen == "d5") {
      which = datagen::Dataset::kD5Dblp;
    } else {
      std::fprintf(stderr, "btingest: unknown dataset '%s'\n", gen.c_str());
      return 2;
    }
    doc = datagen::GenerateDataset(which, gopts);
  } else {
    auto parsed = xml::ParseDocumentFile(input);
    if (!parsed.ok()) {
      std::fprintf(stderr, "btingest: %s: %s\n", input.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    doc = parsed.MoveValue();
  }

  Status st = storage::WriteBtsx2(*doc, output);
  if (!st.ok()) {
    std::fprintf(stderr, "btingest: write %s: %s\n", output.c_str(),
                 st.ToString().c_str());
    return 1;
  }

  std::string sidecar;
  if (build_index) {
    auto idx = index::StructuralIndex::Build(*doc);
    sidecar = index::BtsiSidecarPath(output);
    st = index::WriteBtsi(*idx, sidecar);
    if (!st.ok()) {
      std::fprintf(stderr, "btingest: index %s: %s\n", sidecar.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  if (verify) {
    storage::DiskStoreOptions dopts;
    dopts.full_validation = true;
    auto store = storage::DiskStore::Open(output, dopts);
    if (!store.ok()) {
      std::fprintf(stderr, "btingest: verify %s: %s\n", output.c_str(),
                   store.status().ToString().c_str());
      return 1;
    }
    if (build_index && (*store)->index() == nullptr) {
      std::fprintf(stderr,
                   "btingest: verify %s: sidecar did not load back\n",
                   sidecar.c_str());
      return 1;
    }
  }

  std::fprintf(stderr,
               "btingest: %s: %zu nodes, %zu tags, generation %llu%s%s\n",
               output.c_str(), doc->NumNodes(), doc->tags().size(),
               static_cast<unsigned long long>(doc->generation()),
               build_index ? " (+index)" : "", verify ? " (verified)" : "");
  return 0;
}
