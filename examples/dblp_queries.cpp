// Runs the d5 (dblp-shaped) Appendix A workload through all four
// evaluation strategies — navigational, TwigStack, pipelined BlossomTree
// plan, and BNLJ BlossomTree plan — verifying they agree and reporting
// their times side by side. A miniature of the Table 3 experiment over one
// data set, usable as a template for custom workloads.
//
// Usage: dblp_queries [scale]   (default 0.1)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "baseline/navigational.h"
#include "datagen/datagen.h"
#include "exec/twigstack.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "workload/queries.h"
#include "xpath/parser.h"

using namespace blossomtree;

namespace {

double Time(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  datagen::GenOptions gen;
  gen.scale = scale;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, gen);
  for (xml::TagId t = 0; t < doc->tags().size(); ++t) doc->TagIndex(t);
  std::printf("dblp-shaped document: %zu elements, %zu tags\n\n",
              doc->NumElements(), doc->tags().size());
  std::printf("%-3s %-45s %8s | %8s %8s %8s %8s\n", "id", "query", "results",
              "nav s", "twig s", "pipe s", "bnlj s");

  for (const auto& q : workload::QueriesFor(datagen::Dataset::kD5Dblp)) {
    auto path = xpath::ParsePath(q.xpath);
    if (!path.ok()) continue;
    auto tree = pattern::BuildFromPath(*path);
    if (!tree.ok()) continue;

    std::vector<xml::NodeId> nav_out, twig_out, pipe_out, bnlj_out;
    double nav_s = Time([&] {
      baseline::NavigationalEvaluator nav(doc.get());
      auto r = nav.EvaluatePath(*path);
      if (r.ok()) nav_out = r.MoveValue();
    });
    double twig_s = Time([&] {
      exec::TwigStack ts(doc.get(), &*tree);
      Status st = ts.Run(tree->VertexOfVariable("result"), &twig_out);
      (void)st;
    });
    opt::PlanOptions pipe;
    pipe.strategy = opt::JoinStrategy::kPipelined;
    double pipe_s = Time([&] {
      auto r = opt::EvaluatePathQuery(doc.get(), &*tree, pipe);
      if (r.ok()) pipe_out = r.MoveValue();
    });
    opt::PlanOptions bnlj;
    bnlj.strategy = opt::JoinStrategy::kBoundedNestedLoop;
    double bnlj_s = Time([&] {
      auto r = opt::EvaluatePathQuery(doc.get(), &*tree, bnlj);
      if (r.ok()) bnlj_out = r.MoveValue();
    });

    bool agree =
        nav_out == twig_out && nav_out == pipe_out && nav_out == bnlj_out;
    std::printf("%-3s %-45s %8zu | %8.4f %8.4f %8.4f %8.4f%s\n",
                q.id.c_str(), q.xpath.c_str(), nav_out.size(), nav_s, twig_s,
                pipe_s, bnlj_s, agree ? "" : "  !!DISAGREE");
  }
  return 0;
}
