// btserve — a line-protocol REPL over the service layer (DESIGN.md §12):
// registers documents into a named Corpus and runs queries through a
// QueryService, so one process serves many documents with shared caches,
// admission control, and per-tenant limits.
//
// Usage:
//   btserve [options] [name=file.xml ...]
//   options:
//     --slots=N        concurrently running queries (default 2)
//     --max-queue=N    admission queue bound (default 64)
//     --cache          enable the corpus-wide plan + NoK result caches
//     --demo           preload a generated dblp sample as "dblp"
//
// Protocol (one command per line on stdin, responses on stdout):
//   load <name> <file>       parse an XML file into the corpus
//   load-disk <name> <file>  mmap a BTSX v2 file (examples/btingest) into
//                            the corpus without parsing — O(open)
//   drop <name>              evict a document
//   ls                       list registered documents
//   query <name> <text...>   run an XPath/FLWOR query against a document
//   tenant <name>            switch this REPL's session to another tenant
//   metrics                  dump the service.* counters and histograms
//   stats                    Prometheus text exposition (metrics + gauges)
//   top [n]                  per-tenant and top-query rollups
//   slow                     slow-query log as JSON (plans + metrics)
//   recent [n]               flight-recorder dump as JSON, newest first
//   profile <id>             one recorded query by flight-recorder id
//   window                   sample a windowed metrics snapshot (JSON)
//   quit
//
//   observability options:
//     --slow-ms=N      slow-query threshold in milliseconds (default 250)
//     --no-observer    disable the flight recorder / observability plane
//
// Example session:
//   $ build/examples/btserve --demo --cache
//   > ls
//   dblp
//   > query dblp //phdthesis/author
//   <author>...</author>
//   > metrics
//   service.admitted: 1
//   ...

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/datagen.h"
#include "service/corpus.h"
#include "service/query_service.h"
#include "xml/parser.h"

using namespace blossomtree;

int main(int argc, char** argv) {
  service::CorpusOptions copts;
  service::ServiceOptions sopts;
  sopts.slots = 2;
  bool demo = false;
  std::string preload[16];
  size_t preloads = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--slots=", 8) == 0) {
      sopts.slots = std::strtoul(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--max-queue=", 12) == 0) {
      sopts.max_queue = std::strtoul(arg + 12, nullptr, 10);
    } else if (std::strcmp(arg, "--cache") == 0) {
      copts.plan_cache.enabled = true;
      copts.result_cache.enabled = true;
    } else if (std::strncmp(arg, "--slow-ms=", 10) == 0) {
      sopts.observer.slow_threshold_ns =
          std::strtoull(arg + 10, nullptr, 10) * 1'000'000ull;
    } else if (std::strcmp(arg, "--no-observer") == 0) {
      sopts.observer.enabled = false;
    } else if (std::strcmp(arg, "--demo") == 0) {
      demo = true;
    } else if (std::strchr(arg, '=') != nullptr && preloads < 16) {
      preload[preloads++] = arg;
    } else {
      std::fprintf(stderr,
                   "usage: btserve [--slots=N] [--max-queue=N] [--cache] "
                   "[--demo] [name=file.xml ...]\n");
      return 2;
    }
  }

  service::Corpus corpus(copts);
  if (demo) {
    datagen::GenOptions gen;
    gen.scale = 0.05;
    Status st = corpus.Add(
        "dblp", datagen::GenerateDataset(datagen::Dataset::kD5Dblp, gen));
    if (!st.ok()) {
      std::fprintf(stderr, "demo load failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  for (size_t i = 0; i < preloads; ++i) {
    size_t eq = preload[i].find('=');
    std::string name = preload[i].substr(0, eq);
    std::string file = preload[i].substr(eq + 1);
    Status st;
    // name=file.btsx2 serves straight from disk; anything else parses XML.
    if (file.size() > 6 && file.rfind(".btsx2") == file.size() - 6) {
      st = corpus.AddDisk(name, file);
    } else {
      auto doc = xml::ParseDocumentFile(file);
      st = doc.ok() ? corpus.Add(name, doc.MoveValue()) : doc.status();
    }
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), st.ToString().c_str());
      return 1;
    }
  }

  service::QueryService svc(&corpus, sopts);
  auto session = svc.CreateSession("repl");
  std::fprintf(stderr, "btserve: %zu documents, %zu slots (type 'quit')\n",
               corpus.size(), svc.slots());

  std::string line;
  std::fprintf(stderr, "> ");
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      // Blank line.
    } else if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "ls") {
      for (const std::string& name : corpus.Names()) {
        std::printf("%s\n", name.c_str());
      }
    } else if (cmd == "load") {
      std::string name, file;
      in >> name >> file;
      auto doc = xml::ParseDocumentFile(file);
      Status st = doc.ok() ? corpus.Add(name, doc.MoveValue())
                           : doc.status();
      std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
    } else if (cmd == "load-disk") {
      std::string name, file;
      in >> name >> file;
      Status st = corpus.AddDisk(name, file);
      if (st.ok()) {
        auto entry = corpus.Get(name);
        bool indexed = entry != nullptr && entry->index() != nullptr;
        std::printf("ok%s\n", indexed ? " (structural index attached)" : "");
      } else {
        std::printf("%s\n", st.ToString().c_str());
      }
    } else if (cmd == "drop") {
      std::string name;
      in >> name;
      std::printf("%s\n", corpus.Evict(name) ? "ok" : "not found");
    } else if (cmd == "tenant") {
      std::string name;
      in >> name;
      session = svc.CreateSession(name);
      std::printf("ok (session %llu, tenant %s)\n",
                  static_cast<unsigned long long>(session->id()),
                  session->tenant().c_str());
    } else if (cmd == "metrics") {
      std::printf("%s", svc.metrics().CountersText().c_str());
    } else if (cmd == "stats") {
      // The scrapeable exposition: every registry series (counters +
      // histograms, labeled per tenant/status) plus point-in-time gauges.
      std::printf("%s%s", svc.metrics().PrometheusText().c_str(),
                  util::PrometheusGaugesText(svc.observer()->Gauges()).c_str());
    } else if (cmd == "top") {
      size_t n = 10;
      in >> n;
      std::printf("%s", svc.observer()->TopText(n == 0 ? 10 : n).c_str());
    } else if (cmd == "slow") {
      std::printf("%s", svc.observer()->SlowJson().c_str());
    } else if (cmd == "recent") {
      size_t n = 20;
      in >> n;
      for (const auto& s : svc.observer()->Recent(n == 0 ? 20 : n)) {
        std::printf("%s\n", s.ToLine().c_str());
      }
    } else if (cmd == "profile") {
      uint64_t id = 0;
      in >> id;
      service::SlowQueryRecord rec;
      service::QuerySummary summary;
      if (svc.observer()->FindSlow(id, &rec)) {
        // A slow-logged query has its full captured plan.
        std::printf("%s\n%s", rec.summary.ToLine().c_str(),
                    rec.explain_analyze.c_str());
      } else if (svc.observer()->FindSummary(id, &summary)) {
        std::printf("%s\n", summary.ToJson().c_str());
      } else {
        std::printf("no recorded query #%llu (recorder keeps the last %zu)\n",
                    static_cast<unsigned long long>(id),
                    svc.observer()->options().recorder_capacity);
      }
    } else if (cmd == "window") {
      std::printf("%s\n", svc.observer()->SampleWindow().ToJson().c_str());
    } else if (cmd == "query") {
      std::string name;
      in >> name;
      std::string query;
      std::getline(in, query);
      size_t first = query.find_first_not_of(" \t");
      if (first != std::string::npos) query = query.substr(first);
      auto r = svc.Execute(*session, name, query);
      if (r.ok()) {
        std::printf("%s\n", r->c_str());
      } else {
        std::printf("error: %s\n", r.status().ToString().c_str());
      }
    } else {
      std::printf(
          "commands: load <name> <file> | load-disk <name> <file> | "
          "drop <name> | ls | query <name> <text> | tenant <name> | "
          "metrics | stats | top [n] | slow | recent [n] | profile <id> | "
          "window | quit\n");
    }
    std::fprintf(stderr, "> ");
  }
  return 0;
}
