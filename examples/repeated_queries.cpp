// Repeated queries: the multi-level query caches (DESIGN.md §11).
//
// Dashboards, template expansion, and API backends evaluate the same
// handful of queries against the same document over and over. With
// EngineOptions::plan_cache and ::result_cache enabled (both are OFF by
// default), the first execution pays the full parse → compile → scan
// pipeline; repeats skip the parse (level-1 plan cache), the BlossomTree
// compilation (level-2, keyed on a whitespace-insensitive canonical form),
// and the NoK document scans (sub-result cache), while producing
// byte-identical results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/repeated_queries

#include <chrono>
#include <cstdio>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "util/cache.h"

using namespace blossomtree;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void PrintStats(const char* label, const util::CacheStats& s) {
  std::printf("  %-12s hits=%llu misses=%llu evictions=%llu entries=%llu "
              "bytes=%llu\n",
              label, static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.evictions),
              static_cast<unsigned long long>(s.entries),
              static_cast<unsigned long long>(s.bytes));
}

}  // namespace

int main() {
  // A dblp-like bibliography (~16k elements at this scale).
  datagen::GenOptions gen;
  gen.scale = 0.05;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, gen);

  engine::EngineOptions opts;
  opts.plan_cache.enabled = true;           // query text / canonical form -> plan
  opts.result_cache.enabled = true;         // (doc generation, NoK, range) -> matches
  opts.result_cache.max_bytes = 8 << 20;    // byte budget; LRU past this
  opts.collect_metrics = true;              // surfaces cache.* counters
  engine::BlossomTreeEngine engine(doc.get(), opts);

  const char* query =
      "for $t in //phdthesis return <thesis>{ $t/title }</thesis>";

  // Cold: parse + compile + full-document NoK scans.
  auto t0 = std::chrono::steady_clock::now();
  auto cold = engine.EvaluateQuery(query);
  double cold_ms = MillisSince(t0);
  if (!cold.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }

  // Warm: every level hits. Note the query text differs in whitespace —
  // the level-1 (exact text) cache misses, but the canonical-form plan
  // cache and the scan-level result cache still hit.
  const char* reformatted =
      "for   $t in //phdthesis\n  return <thesis>{ $t/title }</thesis>";
  t0 = std::chrono::steady_clock::now();
  auto warm = engine.EvaluateQuery(reformatted);
  double warm_ms = MillisSince(t0);
  if (!warm.ok()) return 1;

  std::printf("cold: %.3f ms   warm: %.3f ms   (%.1fx)\n", cold_ms, warm_ms,
              warm_ms > 0 ? cold_ms / warm_ms : 0.0);
  std::printf("results identical: %s\n\n",
              *cold == *warm ? "yes" : "NO (bug!)");

  std::printf("cache stats after two executions:\n");
  PrintStats("plan cache", engine.plan_cache()->Stats());
  PrintStats("result cache", engine.result_cache()->Stats());

  // The same numbers flow into the deterministic metrics registry as
  // cache.plan.* / cache.result.* when collect_metrics is on.
  std::printf("\nengine counters:\n%s", engine.metrics().CountersText().c_str());
  return 0;
}
