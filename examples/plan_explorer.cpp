// Shows the rule-based optimizer at work (paper §5: "an optimizer is
// responsible for choosing an appropriate physical operator based on its
// knowledge of the system environment"):
//  - the same query gets a pipelined plan on a non-recursive document and
//    a bounded-nested-loop plan on a recursive one;
//  - enabling the merged-NoK rewrite collapses k scans into one pass.
//
// Options:
//   --trace=<path>  record the whole exploration under the process tracer
//                   and export Chrome trace_event JSON (chrome://tracing)
//   --metrics       print metric counters + latency histograms at the end

#include <cstdio>
#include <cstring>
#include <string>

#include "datagen/datagen.h"
#include "exec/operator.h"
#include "opt/cost_model.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "pattern/decompose.h"
#include "storage/page_store.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "workload/queries.h"
#include "xml/parser.h"
#include "xpath/parser.h"

using namespace blossomtree;

namespace {

/// Folds a drained plan's per-operator counters (and per-operator wall
/// times) into `m`; no-op when metrics collection is off.
void FoldPlanMetrics(util::MetricsRegistry* m, opt::QueryPlan& plan) {
  if (m == nullptr) return;
  opt::ForEachOperator(
      plan, [&](const exec::NestedListOperator& op, int /*depth*/) {
        const exec::ExecStats& s = op.Stats();
        m->GetCounter("exec.rows")->Add(s.matches);
        m->GetCounter("exec.nodes_scanned")->Add(s.nodes_scanned);
        m->GetCounter("exec.comparisons")->Add(s.comparisons);
        m->GetCounter("exec.nl_cells")->Add(s.nl_cells);
        m->GetHistogram("exec.operator_wall_ns")->Record(s.wall_nanos);
      });
}

void Explore(const char* label, const char* xml, const char* query,
             util::MetricsRegistry* m) {
  auto parsed = xml::ParseDocument(xml);
  if (!parsed.ok()) return;
  auto doc = parsed.MoveValue();
  auto path = xpath::ParsePath(query);
  if (!path.ok()) return;
  auto tree = pattern::BuildFromPath(*path);
  if (!tree.ok()) return;

  std::printf("=== %s ===\n", label);
  std::printf("document: %zu nodes, max same-tag nesting %u (%s)\n",
              doc->NumNodes(), doc->MaxRecursionDegree(),
              doc->IsRecursive() ? "recursive" : "non-recursive");
  std::printf("query: %s\n", query);
  std::printf("BlossomTree:\n%s", tree->ToString().c_str());
  std::printf("decomposition:\n%s",
              pattern::Decompose(*tree).ToString(*tree).c_str());

  auto plan = opt::PlanQuery(doc.get(), &*tree);
  if (!plan.ok()) return;
  std::printf("auto plan:\n%s", plan->Explain().c_str());

  // Chosen parallelism: the engine defaults to one worker per hardware
  // thread; the document splits at top-level subtree boundaries.
  size_t threads = util::ThreadPool::DefaultThreads();
  auto parts = storage::PartitionSubtrees(*doc, threads);
  std::printf("parallelism: %zu thread(s), %zu partition(s)",
              threads, parts.size());
  for (const storage::NodeRange& r : parts) {
    std::printf(" [%u,%u]", r.begin, r.end);
  }
  std::printf("\n");
  if (threads > 1) {
    util::ThreadPool pool(threads);
    opt::PlanOptions po;
    po.pool = &pool;
    auto pplan = opt::PlanQuery(doc.get(), &*tree, po);
    if (pplan.ok()) {
      std::printf("parallel plan:\n%s", pplan->Explain().c_str());
    }
  }

  auto result = opt::EvaluatePathQuery(doc.get(), &*tree);
  if (result.ok()) {
    std::printf("results: %zu node(s)\n", result->size());
  }

  // EXPLAIN ANALYZE: execute once more with cardinality estimates on and
  // show estimated vs actual rows per operator (DESIGN.md §8).
  opt::PlanOptions eo;
  eo.estimate_cardinalities = true;
  auto aplan = opt::PlanQuery(doc.get(), &*tree, eo);
  if (aplan.ok()) {
    for (auto& tp : aplan->trees) exec::Drain(tp.root.get());
    aplan->FinishAll();
    FoldPlanMetrics(m, *aplan);
    std::printf("EXPLAIN ANALYZE:\n%s", aplan->ExplainAnalyze().c_str());
    opt::CalibrationReport cal = opt::CheckCalibration(*aplan);
    if (cal.num_flagged > 0) {
      std::printf("calibration (>10x deviations):\n%s",
                  cal.ToString().c_str());
    }
  }

  if (!doc->IsRecursive()) {
    opt::PlanOptions merged;
    merged.strategy = opt::JoinStrategy::kPipelined;
    merged.merge_nok_scans = true;
    auto mplan = opt::PlanQuery(doc.get(), &*tree, merged);
    if (mplan.ok() && mplan->merged_scan != nullptr) {
      std::printf("merged-NoK rewrite: one pass of %llu nodes for %zu NoKs\n",
                  static_cast<unsigned long long>(
                      mplan->merged_scan->NodesScanned()),
                  mplan->merged_scan->NumNoks());
    }
  }
  std::printf("\n");
}

/// EXPLAIN ANALYZE for the full workload: every query of every generated
/// data set at a small scale, est-vs-actual per operator.
void ExplainWorkload(util::MetricsRegistry* m) {
  std::printf("=== workload EXPLAIN ANALYZE (scale 0.02) ===\n\n");
  for (datagen::Dataset d : datagen::AllDatasets()) {
    datagen::GenOptions o;
    o.scale = 0.02;
    auto doc = datagen::GenerateDataset(d, o);
    for (const workload::QuerySpec& q : workload::QueriesFor(d)) {
      auto path = xpath::ParsePath(q.xpath);
      if (!path.ok()) continue;
      auto tree = pattern::BuildFromPath(*path);
      if (!tree.ok()) continue;
      opt::PlanOptions po;
      po.estimate_cardinalities = true;
      auto plan = opt::PlanQuery(doc.get(), &*tree, po);
      if (!plan.ok()) continue;
      for (auto& tp : plan->trees) exec::Drain(tp.root.get());
      plan->FinishAll();
      FoldPlanMetrics(m, *plan);
      std::printf("%s %s: %s\n%s\n", datagen::DatasetName(d),
                  q.id.c_str(), q.xpath.c_str(),
                  plan->ExplainAnalyze().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool metrics = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics = true;
    } else {
      std::fprintf(stderr,
                   "usage: plan_explorer [--trace=path] [--metrics]\n");
      return 2;
    }
  }
  if (!trace_path.empty()) util::Tracer::Get().Enable();
  util::MetricsRegistry registry;
  util::MetricsRegistry* m = metrics ? &registry : nullptr;

  const char* query = "//section[//figure]//paragraph";

  Explore("non-recursive document",
          "<doc>"
          "<section><figure/><paragraph/><paragraph/></section>"
          "<section><paragraph/></section>"
          "</doc>",
          query, m);

  Explore("recursive document (nested sections)",
          "<doc>"
          "<section><figure/><paragraph/>"
          "<section><paragraph/><section><figure/><paragraph/></section>"
          "</section></section>"
          "</doc>",
          query, m);

  ExplainWorkload(m);

  if (metrics) {
    std::printf("=== metrics ===\n%s%s\n", registry.CountersText().c_str(),
                registry.ToJson().c_str());
  }
  if (!trace_path.empty()) {
    Status st = util::Tracer::Get().ExportJsonFile(trace_path);
    if (st.ok()) {
      std::fprintf(stderr, "trace written to %s (%zu events)\n",
                   trace_path.c_str(), util::Tracer::Get().EventCount());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
    }
  }
  return 0;
}
