// Quickstart: parse an XML document, run a path query and a FLWOR query
// through the BlossomTree engine, and print the results.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "engine/engine.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

using namespace blossomtree;

int main() {
  // 1. Parse a document.
  const char* xml = R"(
    <library>
      <shelf id="s1">
        <book><title>A Memory of Whiteness</title><year>1985</year></book>
        <book><title>Red Mars</title><year>1992</year></book>
      </shelf>
      <shelf id="s2">
        <book><title>Green Mars</title><year>1993</year></book>
      </shelf>
    </library>
  )";
  auto parsed = xml::ParseDocument(xml);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  auto doc = parsed.MoveValue();
  std::printf("parsed %zu nodes, max depth %u, recursive: %s\n\n",
              doc->NumNodes(), doc->MaxDepth(),
              doc->IsRecursive() ? "yes" : "no");

  // 2. A path query evaluated via BlossomTree pattern matching.
  engine::BlossomTreeEngine engine(doc.get());
  auto path = xpath::ParsePath("//shelf[//year = 1992]//title");
  if (!path.ok()) return 1;
  auto nodes = engine.EvaluatePath(*path);
  if (!nodes.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 nodes.status().ToString().c_str());
    return 1;
  }
  std::printf("path query %s:\n", path->ToString().c_str());
  for (xml::NodeId n : *nodes) {
    std::printf("  %s\n", xml::SerializeSubtree(*doc, n).c_str());
  }
  std::printf("\nplan used:\n%s\n", engine.LastExplain().c_str());

  // 3. A FLWOR query with a constructor.
  auto result = engine.EvaluateQuery(
      "for $b in //book where not($b/year = 1985) "
      "order by $b/title return <hit>{ $b/title }</hit>");
  if (!result.ok()) {
    std::fprintf(stderr, "flwor failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("flwor result:\n%s\n", result->c_str());
  return 0;
}
