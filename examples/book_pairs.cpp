// The paper's running example, end to end: Example 1's FLWOR query over
// Example 2's bibliography. Prints every intermediate artifact the paper
// shows — the BlossomTree (Figure 1), its NoK decomposition (Algorithm 1),
// the per-NoK NestedLists with placeholders (Example 4), the chosen plan,
// and the final <book-pair> output (Example 2).

#include <cstdio>

#include "baseline/navigational.h"
#include "engine/engine.h"
#include "exec/nok_scan.h"
#include "flwor/parser.h"
#include "nestedlist/ops.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "pattern/decompose.h"
#include "xml/parser.h"

using namespace blossomtree;

namespace {

constexpr const char* kBibXml =
    "<bib>"
    "<book><title>Maximum Security</title></book>"
    "<book><title>The Art of Computer Programming</title>"
    "<author><last>Knuth</last><first>Donald</first></author></book>"
    "<book><title>Terrorist Hunter</title></book>"
    "<book><title>TeX Book</title>"
    "<author><last>Knuth</last><first>Donald</first></author></book>"
    "</bib>";

constexpr const char* kQuery = R"(
<bib>
{
for $book1 in doc("bib.xml")//book,
    $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return
  <book-pair>
    { $book1/title }
    { $book2/title }
  </book-pair>
}
</bib>
)";

}  // namespace

int main() {
  auto parsed = xml::ParseDocument(kBibXml);
  if (!parsed.ok()) return 1;
  auto doc = parsed.MoveValue();

  auto expr = flwor::ParseQuery(kQuery);
  if (!expr.ok()) {
    std::fprintf(stderr, "%s\n", expr.status().ToString().c_str());
    return 1;
  }

  // 1. The BlossomTree (paper Figure 1).
  auto tree = pattern::BuildFromQuery(**expr);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("=== BlossomTree (Figure 1) ===\n%s\n",
              tree->ToString().c_str());

  // 2. NoK decomposition (Algorithm 1).
  pattern::Decomposition decomp = pattern::Decompose(*tree);
  std::printf("=== NoK decomposition (Algorithm 1) ===\n%s\n",
              decomp.ToString(*tree).c_str());

  // 3. NoK pattern matching outputs (Example 4's NestedLists).
  std::printf("=== NoK NestedLists (Example 4) ===\n");
  nestedlist::OccurrenceLabeler label(doc.get());
  for (size_t i = 0; i < decomp.noks.size(); ++i) {
    if (tree->vertex(decomp.noks[i].root).IsVirtualRoot() &&
        decomp.noks[i].vertices.size() == 1) {
      continue;  // Trivial "~" NoK.
    }
    std::printf("NoK%zu matches:\n", i);
    exec::NokScanOperator scan(doc.get(), &*tree, &decomp.noks[i]);
    nestedlist::NestedList nl;
    while (scan.GetNext(&nl)) {
      std::printf("  %s\n", nestedlist::ToString(nl, label).c_str());
    }
  }

  // 4. The plan and the final result (Example 2's output).
  engine::BlossomTreeEngine engine(doc.get());
  auto result = engine.EvaluateToXml(**expr);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== plan ===\n%s", engine.LastExplain().c_str());
  std::printf("\n=== result (Example 2) ===\n%s\n", result->c_str());

  // 5. Cross-check with the navigational baseline.
  baseline::NavigationalEvaluator nav(doc.get());
  auto nav_result = nav.EvaluateToXml(**expr);
  std::printf("\nnavigational baseline agrees: %s\n",
              nav_result.ok() && *nav_result == *result ? "yes" : "NO");
  return 0;
}
