#include "exec/merged_scan.h"

#include <gtest/gtest.h>

#include "nestedlist/ops.h"
#include "pattern/builder.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace exec {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

struct Fixture {
  std::unique_ptr<xml::Document> doc;
  pattern::BlossomTree tree;
  pattern::Decomposition decomp;

  Fixture(const char* xml, const char* query) : doc(Parse(xml)) {
    auto p = xpath::ParsePath(query);
    EXPECT_TRUE(p.ok());
    auto tr = pattern::BuildFromPath(*p);
    EXPECT_TRUE(tr.ok());
    tree = tr.MoveValue();
    decomp = pattern::Decompose(tree);
  }

  std::vector<const pattern::NokTree*> NonTrivialNoks() const {
    std::vector<const pattern::NokTree*> out;
    for (const auto& nok : decomp.noks) {
      if (nok.vertices.size() == 1 && tree.vertex(nok.root).IsVirtualRoot()) {
        continue;
      }
      out.push_back(&nok);
    }
    return out;
  }
};

TEST(MergedScanTest, MatchesSeparateScans) {
  Fixture fx("<r><a><b/></a><b/><a><c/><b/></a></r>", "//a[//c]//b");
  auto noks = fx.NonTrivialNoks();
  MergedNokScan merged(fx.doc.get(), &fx.tree, noks);
  merged.Run();
  for (size_t i = 0; i < noks.size(); ++i) {
    auto merged_op = merged.MakeOperator(i);
    NokScanOperator separate(fx.doc.get(), &fx.tree, noks[i]);
    nestedlist::NestedList a;
    nestedlist::NestedList b;
    while (true) {
      bool ga = merged_op->GetNext(&a);
      bool gb = separate.GetNext(&b);
      ASSERT_EQ(ga, gb);
      if (!ga) break;
      ASSERT_EQ(a.tops.size(), b.tops.size());
      for (size_t t = 0; t < a.tops.size(); ++t) {
        ASSERT_EQ(a.tops[t].size(), b.tops[t].size());
        for (size_t e = 0; e < a.tops[t].size(); ++e) {
          EXPECT_EQ(a.tops[t][e].node, b.tops[t][e].node);
        }
      }
    }
  }
}

TEST(MergedScanTest, SingleSharedPass) {
  Fixture fx("<r><a/><b/><c/></r>", "//a[//b][//c]");
  auto noks = fx.NonTrivialNoks();
  ASSERT_EQ(noks.size(), 3u);
  MergedNokScan merged(fx.doc.get(), &fx.tree, noks);
  merged.Run();
  // One pass of 4 nodes — separate scans would cost 12.
  EXPECT_EQ(merged.NodesScanned(), fx.doc->NumNodes());
}

TEST(MergedScanTest, RunIsIdempotent) {
  Fixture fx("<r><a/></r>", "//a");
  auto noks = fx.NonTrivialNoks();
  MergedNokScan merged(fx.doc.get(), &fx.tree, noks);
  merged.Run();
  uint64_t scanned = merged.NodesScanned();
  merged.Run();
  EXPECT_EQ(merged.NodesScanned(), scanned);
}

TEST(MergedScanTest, HandlesVirtualRootNok) {
  Fixture fx("<a><b/></a>", "/a/b");
  // The single NoK includes the virtual root.
  std::vector<const pattern::NokTree*> noks;
  for (const auto& nok : fx.decomp.noks) noks.push_back(&nok);
  MergedNokScan merged(fx.doc.get(), &fx.tree, noks);
  merged.Run();
  auto op = merged.MakeOperator(0);
  nestedlist::NestedList nl;
  EXPECT_TRUE(op->GetNext(&nl));
  EXPECT_FALSE(op->GetNext(&nl));
}

TEST(MergedScanTest, MatchAnyRootsMatchSerialReference) {
  // Non-concrete root tags ("*" match-any, "~" virtual root) must never be
  // dispatched through tags().Lookup(), which resolves them to kNullTag and
  // silently drops the NoK. Each merged view must match the serial
  // NokScanOperator reference byte for byte.
  const char* xml = "<r><a><b/></a><b/><a><c/><b/></a></r>";
  for (const char* query : {"/r/a/b",        // "~"-rooted NoK (whole path)
                            "//*[b]",        // "*"-rooted NoK
                            "//a//*",        // "*"-rooted inner NoK
                            "//zzz[b]"}) {   // root tag absent from document
    Fixture fx(xml, query);
    std::vector<const pattern::NokTree*> noks;
    for (const auto& nok : fx.decomp.noks) noks.push_back(&nok);
    MergedNokScan merged(fx.doc.get(), &fx.tree, noks);
    merged.Run();
    for (size_t i = 0; i < noks.size(); ++i) {
      auto merged_op = merged.MakeOperator(i);
      NokScanOperator separate(fx.doc.get(), &fx.tree, noks[i]);
      nestedlist::NestedList a;
      nestedlist::NestedList b;
      while (true) {
        bool ga = merged_op->GetNext(&a);
        bool gb = separate.GetNext(&b);
        ASSERT_EQ(ga, gb) << query << " nok " << i;
        if (!ga) break;
        ASSERT_EQ(a.tops.size(), b.tops.size()) << query;
        for (size_t t = 0; t < a.tops.size(); ++t) {
          ASSERT_EQ(a.tops[t].size(), b.tops[t].size()) << query;
          for (size_t e = 0; e < a.tops[t].size(); ++e) {
            EXPECT_EQ(a.tops[t][e].node, b.tops[t][e].node) << query;
          }
        }
      }
    }
  }
}

TEST(MergedScanTest, WildcardRootFindsAllElements) {
  // A bare "*"-rooted NoK probes every element; dropping it from the
  // dispatch table would return zero matches.
  Fixture fx("<r><a/><b><c/></b></r>", "//*");
  auto noks = fx.NonTrivialNoks();
  ASSERT_EQ(noks.size(), 1u);
  MergedNokScan merged(fx.doc.get(), &fx.tree, noks);
  merged.Run();
  auto op = merged.MakeOperator(0);
  nestedlist::NestedList nl;
  size_t matches = 0;
  while (op->GetNext(&nl)) ++matches;
  EXPECT_EQ(matches, 4u);  // r, a, b, c — every element in the document
}

TEST(MergedScanTest, MatchWorkAccumulates) {
  Fixture fx("<r><a/><a/></r>", "//a[//b]");
  auto noks = fx.NonTrivialNoks();
  MergedNokScan merged(fx.doc.get(), &fx.tree, noks);
  merged.Run();
  EXPECT_GT(merged.MatchWork(), 0u);
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
