// Per-operator counters (DESIGN.md §8): exact values on hand-built
// documents, run-to-completion normalization via Finish(), and bitwise
// identity of the deterministic counters across thread counts.

#include "exec/exec_stats.h"

#include <gtest/gtest.h>

#include <string>

#include "engine/query_profile.h"
#include "exec/nok_scan.h"
#include "exec/operator.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "storage/tag_stream.h"
#include "util/thread_pool.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace exec {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

pattern::BlossomTree TreeFor(const std::string& xpath) {
  auto path = xpath::ParsePath(xpath);
  EXPECT_TRUE(path.ok()) << path.status().ToString();
  auto tree = pattern::BuildFromPath(*path);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return tree.MoveValue();
}

TEST(ExecStatsTest, MergeFromSumsAndMaxes) {
  ExecStats a;
  a.nodes_scanned = 10;
  a.comparisons = 3;
  a.matches = 2;
  a.peak_buffer_bytes = 100;
  ExecStats b;
  b.nodes_scanned = 5;
  b.index_entries = 7;
  b.peak_buffer_bytes = 40;
  a.MergeFrom(b);
  EXPECT_EQ(a.nodes_scanned, 15u);
  EXPECT_EQ(a.index_entries, 7u);
  EXPECT_EQ(a.comparisons, 3u);
  EXPECT_EQ(a.peak_buffer_bytes, 100u);  // max, not sum
}

TEST(ExecStatsTest, CountersStringIsDeterministicAndOmitsTime) {
  ExecStats s;
  s.wall_nanos = 123456789;  // Must not appear in Counters().
  s.nodes_scanned = 4;
  s.matches = 2;
  std::string c = s.Counters();
  EXPECT_EQ(c, "nodes=4 rows=2");
  EXPECT_EQ(ExecStats{}.Counters(), "rows=0");
  // Summary() appends the wall time.
  EXPECT_NE(s.Summary().find("time="), std::string::npos);
}

TEST(ExecStatsTest, NokScanExactCountersOnHandBuiltDocument) {
  // 9 nodes: a, b, c, b, d, d, c, b, d. Query //b matches the 3 <b>s.
  auto doc = Parse("<a><b/><c/><b><d/><d/></b><c/><b><d/></b></a>");
  pattern::BlossomTree tree = TreeFor("//b");
  auto plan = opt::PlanQuery(doc.get(), &tree);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<nestedlist::NestedList> lists =
      Drain(plan->trees[0].root.get());
  EXPECT_EQ(lists.size(), 3u);
  ASSERT_EQ(plan->trees[0].scans.size(), 1u);
  ExecStats s = plan->trees[0].scans[0]->Stats();
  EXPECT_EQ(s.nodes_scanned, doc->NumNodes());  // One full pass.
  EXPECT_EQ(s.matches, 3u);
  EXPECT_EQ(s.nl_cells, 3u);  // One single-entry top group per match.
  EXPECT_GE(s.comparisons, 3u);  // At least the root tests that matched.
}

TEST(ExecStatsTest, TagStreamConsumedMatchesIndexSizes) {
  auto doc = Parse("<a><b/><c/><b><d/><d/></b><c/><b><d/></b></a>");
  for (const char* tag : {"b", "c", "d"}) {
    xml::TagId t = doc->tags().Lookup(tag);
    ASSERT_NE(t, xml::kNullTag);
    storage::TagStream stream(doc.get(), t);
    while (!stream.AtEnd()) stream.Advance();
    EXPECT_EQ(stream.Consumed(), doc->TagIndex(t).size()) << tag;
    EXPECT_EQ(stream.Consumed(), stream.size()) << tag;
  }
}

TEST(ExecStatsTest, JoinOperatorCountersOnHandBuiltDocument) {
  // //a//b with a non-recursive doc: pipelined join of two NoK scans
  // (a parent-child step would stay inside one NoK).
  auto doc = Parse("<r><a><b/><b/></a><x/><a><b/></a><a><c/></a></r>");
  pattern::BlossomTree tree = TreeFor("//a//b");
  opt::PlanOptions opts;
  opts.strategy = opt::JoinStrategy::kPipelined;
  auto plan = opt::PlanQuery(doc.get(), &tree, opts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  NestedListOperator* root = plan->trees[0].root.get();
  size_t emitted = Drain(root).size();
  root->Finish();
  ExecStats s = root->Stats();
  EXPECT_STREQ(root->Name(), "PipelinedDescJoin");
  EXPECT_EQ(s.matches, emitted);
  EXPECT_EQ(emitted, 2u);  // Two <a>s have a <b> child.
  EXPECT_GT(s.nl_cells, 0u);
  // The join has two scan children, both fully drained by Finish().
  ASSERT_EQ(root->NumChildren(), 2u);
  for (size_t i = 0; i < root->NumChildren(); ++i) {
    EXPECT_EQ(root->Child(i)->Stats().nodes_scanned, doc->NumNodes());
  }
}

TEST(ExecStatsTest, BnljReportsRescans) {
  // Recursive <a>: auto strategy picks the BNLJ.
  auto doc = Parse("<r><a><a><b/></a><b/></a><a><b/></a></r>");
  pattern::BlossomTree tree = TreeFor("//a//b");
  auto plan = opt::PlanQuery(doc.get(), &tree);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  NestedListOperator* root = plan->trees[0].root.get();
  Drain(root);
  root->Finish();
  EXPECT_STREQ(root->Name(), "BoundedNestedLoopJoin");
  // One bounded inner re-scan per outer <a> entry.
  EXPECT_EQ(root->Stats().rescans, 3u);
}

/// Profile text (deterministic counters only) of one fully-drained plan.
std::string ProfileText(const xml::Document& doc, const std::string& xpath,
                        util::ThreadPool* pool) {
  pattern::BlossomTree tree = TreeFor(xpath);
  opt::PlanOptions opts;
  opts.pool = pool;
  auto plan = opt::PlanQuery(&doc, &tree, opts);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  for (auto& tp : plan->trees) Drain(tp.root.get());
  engine::QueryProfile profile = engine::BuildQueryProfile(
      &*plan, xpath, pool != nullptr ? pool->NumThreads() : 1);
  return profile.ToText();
}

TEST(ExecStatsTest, CountersIdenticalAcrossThreadCounts) {
  auto doc = Parse(
      "<r><a><a><b/></a><b/><c/></a><a><b/><a><a><b/></a></a></a>"
      "<x><a><b/><b/></a></x><a/><a><c/><b/></a></r>");
  for (const char* q : {"//b", "//a/b", "//a[/b]", "//a//b", "//a[//c]//b",
                        "//x//a/b"}) {
    std::string serial = ProfileText(*doc, q, nullptr);
    for (size_t threads : {2, 4}) {
      util::ThreadPool pool(threads);
      EXPECT_EQ(ProfileText(*doc, q, &pool), serial)
          << q << " threads=" << threads;
    }
  }
}

TEST(ExecStatsTest, FinishNormalizesPartiallyConsumedPlans) {
  // Consume only ONE result, then Finish(): totals must equal the fully
  // drained serial totals even though the parallel scan materialized
  // eagerly and the serial pipeline stopped early.
  auto doc = Parse(
      "<r><a><b/><b/></a><x/><a><b/></a><a><c/></a><a><b/><b/></a></r>");
  const std::string q = "//a//b";
  std::string full = ProfileText(*doc, q, nullptr);
  for (size_t threads : {1, 2, 4}) {
    pattern::BlossomTree tree = TreeFor(q);
    opt::PlanOptions opts;
    util::ThreadPool pool(threads);
    if (threads > 1) opts.pool = &pool;
    auto plan = opt::PlanQuery(doc.get(), &tree, opts);
    ASSERT_TRUE(plan.ok());
    nestedlist::NestedList nl;
    ASSERT_TRUE(plan->trees[0].root->GetNext(&nl));  // One row only.
    engine::QueryProfile profile =
        engine::BuildQueryProfile(&*plan, q, threads);  // Finishes.
    EXPECT_EQ(profile.ToText(), full) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace blossomtree
}  // namespace exec
