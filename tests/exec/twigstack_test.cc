#include "exec/twigstack.h"

#include <gtest/gtest.h>

#include "pattern/builder.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace exec {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

std::vector<xml::NodeId> RunTwig(const xml::Document& doc,
                                 std::string_view query) {
  auto p = xpath::ParsePath(query);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto tr = pattern::BuildFromPath(*p);
  EXPECT_TRUE(tr.ok()) << tr.status().ToString();
  TwigStack ts(&doc, &*tr);
  std::vector<xml::NodeId> out;
  Status st = ts.Run(tr->VertexOfVariable("result"), &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(TwigStackTest, SimpleDescendantChain) {
  auto doc = Parse("<r><a><b/></a><a><x><b/></x></a><b/></r>");
  auto out = RunTwig(*doc, "//a//b");
  ASSERT_EQ(out.size(), 2u);
  for (xml::NodeId n : out) EXPECT_EQ(doc->TagName(n), "b");
}

TEST(TwigStackTest, RecursiveNesting) {
  auto doc = Parse("<a><a><b/></a></a>");
  auto out = RunTwig(*doc, "//a//b");
  EXPECT_EQ(out.size(), 1u);  // Distinct b nodes.
}

TEST(TwigStackTest, BranchingTwig) {
  auto doc = Parse(
      "<r><a><b/><c/></a><a><b/></a><a><c/></a><a><x><b/></x><c/></a></r>");
  // a with both a b and a c descendant.
  auto out = RunTwig(*doc, "//a[//b][//c]");
  EXPECT_EQ(out.size(), 2u);
}

TEST(TwigStackTest, ChildEdgeChecksLevels) {
  auto doc = Parse("<r><a><b/></a><a><x><b/></x></a></r>");
  auto out = RunTwig(*doc, "//a/b");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(doc->TagName(doc->Parent(out[0])), "a");
}

TEST(TwigStackTest, MixedChildAndDescendant) {
  auto doc = Parse(
      "<r><a><b><c/></b></a><a><b/><c/></a><a><x><b><y><c/></y></b></x></a>"
      "</r>");
  // //a/b//c: b must be a child of a, c any descendant of b.
  auto out = RunTwig(*doc, "//a//b//c");
  EXPECT_EQ(out.size(), 2u);
  auto out2 = RunTwig(*doc, "//a/b//c");
  EXPECT_EQ(out2.size(), 1u);
}

TEST(TwigStackTest, RootedQuery) {
  auto doc = Parse("<a><b/><a><b/></a></a>");
  // /a/b: only the document root's direct b child.
  auto out = RunTwig(*doc, "/a/b");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(TwigStackTest, WildcardNode) {
  auto doc = Parse("<r><x><t/></x><y><t/></y><t/></r>");
  auto out = RunTwig(*doc, "//r/*/t");
  EXPECT_EQ(out.size(), 2u);
}

TEST(TwigStackTest, ValueConstraintFiltersStream) {
  auto doc = Parse("<r><k>x</k><k>y</k><k>y</k></r>");
  auto out = RunTwig(*doc, "//k[. = \"y\"]");
  EXPECT_EQ(out.size(), 2u);
}

TEST(TwigStackTest, ResultOnBranchingNode) {
  auto doc = Parse("<r><a><b/><c/></a><a><b/></a></r>");
  auto out = RunTwig(*doc, "//a[//b]//c");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(doc->TagName(out[0]), "c");
}

TEST(TwigStackTest, EmptyResult) {
  auto doc = Parse("<r><a/></r>");
  EXPECT_TRUE(RunTwig(*doc, "//a//zzz").empty());
  EXPECT_TRUE(RunTwig(*doc, "//zzz").empty());
}

TEST(TwigStackTest, StatsArePopulated) {
  auto doc = Parse("<r><a><b/></a><a><b/></a></r>");
  auto p = xpath::ParsePath("//a//b");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  TwigStack ts(&*doc, &*tr);
  std::vector<xml::NodeId> out;
  ASSERT_TRUE(ts.Run(tr->VertexOfVariable("result"), &out).ok());
  EXPECT_GT(ts.stats().stream_elements, 0u);
  EXPECT_EQ(ts.stats().path_solutions, 2u);
}

TEST(TwigStackTest, RejectsPositionalPredicate) {
  auto doc = Parse("<r><a/></r>");
  auto p = xpath::ParsePath("//a[2]");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  TwigStack ts(&*doc, &*tr);
  std::vector<xml::NodeId> out;
  Status st = ts.Run(tr->VertexOfVariable("result"), &out);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(TwigStackTest, DeepBranchingTwigAgainstKnownAnswer) {
  auto doc = Parse(
      "<r>"
      "<a><p><q/></p><s/></a>"       // Has p/q and s → match.
      "<a><p/><s/></a>"              // p without q → no match.
      "<a><p><q/></p></a>"           // No s → no match.
      "<a><z><p><q/></p><s/></z></a>"  // Nested: still descendants → match.
      "</r>");
  auto out = RunTwig(*doc, "//a[//p//q]//s");
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
