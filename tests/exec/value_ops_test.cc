#include "exec/value_ops.h"

#include <gtest/gtest.h>

#include <vector>

#include "xml/parser.h"

namespace blossomtree {
namespace exec {
namespace {

using Seq = std::vector<xml::NodeId>;

using xpath::CompareOp;

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(CompareValuesTest, StringComparisons) {
  EXPECT_TRUE(CompareValues("abc", CompareOp::kEq, "abc"));
  EXPECT_FALSE(CompareValues("abc", CompareOp::kEq, "abd"));
  EXPECT_TRUE(CompareValues("abc", CompareOp::kNeq, "abd"));
  EXPECT_TRUE(CompareValues("apple", CompareOp::kLt, "banana"));
  EXPECT_TRUE(CompareValues("b", CompareOp::kGt, "a"));
  EXPECT_TRUE(CompareValues("a", CompareOp::kLe, "a"));
  EXPECT_TRUE(CompareValues("a", CompareOp::kGe, "a"));
}

TEST(CompareValuesTest, NumericWhenBothParse) {
  // "07" == "7" numerically, though not as strings.
  EXPECT_TRUE(CompareValues("07", CompareOp::kEq, "7"));
  EXPECT_TRUE(CompareValues("2", CompareOp::kLt, "10"));
  // Lexicographic would say "2" > "10".
  EXPECT_FALSE(CompareValues("2", CompareOp::kGt, "10"));
  EXPECT_TRUE(CompareValues("3.5", CompareOp::kGt, "3.25"));
  EXPECT_TRUE(CompareValues("-1", CompareOp::kLt, "0"));
}

TEST(CompareValuesTest, MixedFallsBackToString) {
  EXPECT_FALSE(CompareValues("7x", CompareOp::kEq, "7"));
  EXPECT_TRUE(CompareValues("7x", CompareOp::kNeq, "7"));
}

TEST(GeneralCompareTest, ExistentialSemantics) {
  auto doc = Parse("<r><k>1</k><k>2</k><j>2</j><j>3</j></r>");
  auto ks = doc->TagIndex(doc->tags().Lookup("k"));
  auto js = doc->TagIndex(doc->tags().Lookup("j"));
  // Some pair equal (2 = 2).
  EXPECT_TRUE(GeneralCompare(*doc, ks, CompareOp::kEq, js));
  // Some pair unequal too — XQuery general comparison allows both.
  EXPECT_TRUE(GeneralCompare(*doc, ks, CompareOp::kNeq, js));
  // Empty sequence never compares.
  EXPECT_FALSE(GeneralCompare(*doc, Seq{}, CompareOp::kEq, js));
  EXPECT_FALSE(GeneralCompare(*doc, ks, CompareOp::kEq, Seq{}));
}

TEST(GeneralCompareTest, LiteralVariant) {
  auto doc = Parse("<r><k>a</k><k>b</k></r>");
  auto ks = doc->TagIndex(doc->tags().Lookup("k"));
  EXPECT_TRUE(GeneralCompareLiteral(*doc, ks, CompareOp::kEq, "b"));
  EXPECT_FALSE(GeneralCompareLiteral(*doc, ks, CompareOp::kEq, "c"));
  EXPECT_FALSE(GeneralCompareLiteral(*doc, {}, CompareOp::kEq, "a"));
}

TEST(GeneralCompareTest, NumericSemanticsWithHoistedRights) {
  // The hoisted right-side materialization must keep numeric comparison
  // semantics: 2 < 10 numerically even though "2" > "10" lexicographically.
  auto doc = Parse("<r><k>2</k><j>10</j><j>07</j></r>");
  auto ks = doc->TagIndex(doc->tags().Lookup("k"));
  auto js = doc->TagIndex(doc->tags().Lookup("j"));
  EXPECT_TRUE(GeneralCompare(*doc, ks, CompareOp::kLt, js));
  EXPECT_FALSE(GeneralCompare(*doc, ks, CompareOp::kGt, js));
  // "07" == "7" numerically.
  EXPECT_TRUE(GeneralCompare(*doc, js, CompareOp::kEq,
                             doc->TagIndex(doc->tags().Lookup("j"))));
}

TEST(GeneralCompareTest, ComparisonCounterParity) {
  // The perf gate pins value_comparisons: the hoisted implementation must
  // tick exactly once per (left, right) pair tried, stopping at the first
  // match — the same contract as the per-pair CompareValues loop it
  // replaced.
  auto doc = Parse("<r><k>a</k><k>b</k><j>c</j><j>d</j></r>");
  auto ks = doc->TagIndex(doc->tags().Lookup("k"));
  auto js = doc->TagIndex(doc->tags().Lookup("j"));
  uint64_t before = ValueComparisonCount();
  EXPECT_FALSE(GeneralCompare(*doc, ks, CompareOp::kEq, js));
  EXPECT_EQ(ValueComparisonCount() - before, 4u);  // All pairs tried.
  before = ValueComparisonCount();
  EXPECT_TRUE(GeneralCompare(*doc, ks, CompareOp::kNeq, js));
  EXPECT_EQ(ValueComparisonCount() - before, 1u);  // First pair matches.
  before = ValueComparisonCount();
  EXPECT_FALSE(GeneralCompareLiteral(*doc, ks, CompareOp::kEq, "z"));
  EXPECT_EQ(ValueComparisonCount() - before, 2u);  // One per left node.
}

TEST(DeepEqualTest, IdenticalSubtrees) {
  auto doc = Parse(
      "<r><a><x>1</x><y/></a><a><x>1</x><y/></a><a><x>2</x><y/></a></r>");
  auto as = doc->TagIndex(doc->tags().Lookup("a"));
  EXPECT_TRUE(DeepEqualNodes(*doc, as[0], as[1]));
  EXPECT_FALSE(DeepEqualNodes(*doc, as[0], as[2]));
  EXPECT_TRUE(DeepEqualNodes(*doc, as[0], as[0]));
}

TEST(DeepEqualTest, TagMismatch) {
  auto doc = Parse("<r><a>x</a><b>x</b></r>");
  EXPECT_FALSE(DeepEqualNodes(*doc, 1, 3));
}

TEST(DeepEqualTest, ChildCountMismatch) {
  auto doc = Parse("<r><a><x/></a><a><x/><x/></a></r>");
  auto as = doc->TagIndex(doc->tags().Lookup("a"));
  EXPECT_FALSE(DeepEqualNodes(*doc, as[0], as[1]));
}

TEST(DeepEqualTest, AttributesMatter) {
  auto doc = Parse(R"(<r><a k="1"/><a k="2"/><a k="1"/><a/></r>)");
  auto as = doc->TagIndex(doc->tags().Lookup("a"));
  EXPECT_FALSE(DeepEqualNodes(*doc, as[0], as[1]));
  EXPECT_TRUE(DeepEqualNodes(*doc, as[0], as[2]));
  EXPECT_FALSE(DeepEqualNodes(*doc, as[0], as[3]));
}

TEST(DeepEqualTest, TextExactness) {
  auto doc = Parse("<r><a>x</a><a>x </a></r>");
  auto as = doc->TagIndex(doc->tags().Lookup("a"));
  EXPECT_FALSE(DeepEqualNodes(*doc, as[0], as[1]));
}

TEST(DeepEqualTest, DeepChainsDoNotOverflowStack) {
  // DeepEqualNodes iterates an explicit stack; two parallel ~100k-deep
  // chains must compare without exhausting the thread stack.
  constexpr size_t kDepth = 100000;
  auto build = [](std::string_view leaf_text) {
    auto doc = std::make_unique<xml::Document>();
    doc->BeginElement("r");
    for (int chain = 0; chain < 2; ++chain) {
      doc->BeginElement("a");
      for (size_t i = 0; i < kDepth; ++i) doc->BeginElement("d");
      doc->AddText(chain == 0 ? "x" : leaf_text);
      for (size_t i = 0; i < kDepth; ++i) doc->EndElement();
      doc->EndElement();
    }
    doc->EndElement();
    EXPECT_TRUE(doc->Finish().ok());
    return doc;
  };
  auto equal_doc = build("x");
  auto as = equal_doc->TagIndex(equal_doc->tags().Lookup("a"));
  ASSERT_EQ(as.size(), 2u);
  EXPECT_TRUE(DeepEqualNodes(*equal_doc, as[0], as[1]));
  auto differing_doc = build("y");  // Chains differ only at the deepest leaf.
  as = differing_doc->TagIndex(differing_doc->tags().Lookup("a"));
  ASSERT_EQ(as.size(), 2u);
  EXPECT_FALSE(DeepEqualNodes(*differing_doc, as[0], as[1]));
}

TEST(DeepEqualSequencesTest, EmptyEqualsEmpty) {
  // The property paper Example 2 relies on.
  auto doc = Parse("<r/>");
  EXPECT_TRUE(DeepEqualSequences(*doc, Seq{}, Seq{}));
}

TEST(DeepEqualSequencesTest, LengthMismatch) {
  auto doc = Parse("<r><a/><a/></r>");
  auto as = doc->TagIndex(doc->tags().Lookup("a"));
  EXPECT_FALSE(DeepEqualSequences(*doc, Seq{as[0]}, Seq{}));
  EXPECT_FALSE(DeepEqualSequences(*doc, Seq{as[0]}, Seq{as[0], as[1]}));
}

TEST(DeepEqualSequencesTest, PairwiseSemantics) {
  auto doc = Parse("<r><a>1</a><a>1</a><a>2</a></r>");
  auto as = doc->TagIndex(doc->tags().Lookup("a"));
  EXPECT_TRUE(DeepEqualSequences(*doc, Seq{as[0]}, Seq{as[1]}));
  EXPECT_FALSE(DeepEqualSequences(*doc, Seq{as[0]}, Seq{as[2]}));
  EXPECT_TRUE(
      DeepEqualSequences(*doc, Seq{as[0], as[2]}, Seq{as[1], as[2]}));
  // Order matters.
  EXPECT_FALSE(
      DeepEqualSequences(*doc, Seq{as[0], as[2]}, Seq{as[2], as[1]}));
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
