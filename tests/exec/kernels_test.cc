// Parity of the SIMD inner-loop kernels (DESIGN.md §16) with their scalar
// references: FilterTagEq / FilterTagEqRecords must emit the identical
// candidate list under every backend, on every alignment (including
// deliberately misaligned record buffers), and CountLessEq must agree with
// std::upper_bound on arbitrary sorted inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "exec/kernels.h"
#include "util/rng.h"
#include "xml/document.h"

namespace blossomtree {
namespace exec {
namespace {

/// The trivially-correct reference the kernels must reproduce exactly.
std::vector<xml::NodeId> ReferenceFilter(const std::vector<xml::TagId>& tags,
                                         xml::TagId target,
                                         xml::NodeId base) {
  std::vector<xml::NodeId> out;
  for (size_t i = 0; i < tags.size(); ++i) {
    if (tags[i] == target) out.push_back(base + static_cast<xml::NodeId>(i));
  }
  return out;
}

std::vector<xml::TagId> RandomTags(Rng* rng, size_t n, uint32_t alphabet) {
  std::vector<xml::TagId> tags(n);
  for (auto& t : tags) {
    // Mix in kNullTag so text-node records appear in the stream.
    t = rng->Uniform(alphabet + 1) == alphabet
            ? xml::kNullTag
            : static_cast<xml::TagId>(rng->Uniform(alphabet));
  }
  return tags;
}

TEST(KernelsTest, BackendSelection) {
  // allow_simd=false always pins the scalar reference, whatever the build.
  EXPECT_EQ(EffectiveKernelBackend(false), KernelBackend::kScalar);
  if (!ForceScalarKernels()) {
    EXPECT_EQ(EffectiveKernelBackend(true), CompiledKernelBackend());
  } else {
    EXPECT_EQ(EffectiveKernelBackend(true), KernelBackend::kScalar);
  }
  EXPECT_STREQ(KernelBackendName(KernelBackend::kScalar), "scalar");
}

TEST(KernelsTest, FilterTagEqMatchesReferenceAtEveryLength) {
  Rng rng(41);
  // Lengths straddle every vector-width boundary: 0..4 lanes plus tails.
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u,
                   64u, 100u, 511u, 512u, 513u, 4096u}) {
    std::vector<xml::TagId> tags = RandomTags(&rng, n, 5);
    for (xml::TagId target : {xml::TagId{0}, xml::TagId{3}, xml::kNullTag,
                              xml::TagId{999}}) {
      std::vector<xml::NodeId> expected = ReferenceFilter(tags, target, 10);
      for (bool simd : {false, true}) {
        std::vector<xml::NodeId> got;
        FilterTagEq(tags.data(), n, target, 10, simd, &got);
        EXPECT_EQ(got, expected) << "n=" << n << " target=" << target
                                 << " simd=" << simd;
      }
    }
  }
}

TEST(KernelsTest, FilterTagEqAppendsWithoutClearing) {
  std::vector<xml::TagId> tags = {1, 2, 1};
  std::vector<xml::NodeId> got = {777};
  FilterTagEq(tags.data(), tags.size(), 1, 0, true, &got);
  EXPECT_EQ(got, (std::vector<xml::NodeId>{777, 0, 2}));
}

TEST(KernelsTest, FilterTagEqRecordsMatchesTagArrayKernel) {
  Rng rng(43);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 13u, 16u, 64u, 200u, 1000u}) {
    std::vector<xml::TagId> tags = RandomTags(&rng, n, 7);
    std::vector<xml::PackedNodeRecord> recs(n);
    for (size_t i = 0; i < n; ++i) {
      recs[i].tag = tags[i];
      recs[i].subtree_end = static_cast<xml::NodeId>(i);
      recs[i].level = static_cast<uint32_t>(rng.Uniform(32));
      recs[i].text_ref = UINT32_MAX;
    }
    for (xml::TagId target : {xml::TagId{0}, xml::TagId{6}, xml::kNullTag}) {
      std::vector<xml::NodeId> expected = ReferenceFilter(tags, target, 5);
      for (bool simd : {false, true}) {
        std::vector<xml::NodeId> got;
        FilterTagEqRecords(recs.data(), n, target, 5, simd, &got);
        EXPECT_EQ(got, expected) << "n=" << n << " target=" << target
                                 << " simd=" << simd;
      }
    }
  }
}

TEST(KernelsTest, FilterTagEqRecordsHandlesMisalignedBuffers) {
  // The record kernel must use unaligned loads only: feed it a stream at
  // every byte offset 1..15 off natural alignment (UBSan-clean by
  // construction — satellite (c)'s kernel half).
  Rng rng(47);
  constexpr size_t kN = 257;
  std::vector<xml::TagId> tags = RandomTags(&rng, kN, 4);
  std::vector<xml::PackedNodeRecord> recs(kN);
  for (size_t i = 0; i < kN; ++i) {
    recs[i].tag = tags[i];
    recs[i].subtree_end = static_cast<xml::NodeId>(i);
    recs[i].level = 1;
    recs[i].text_ref = UINT32_MAX;
  }
  std::vector<xml::NodeId> expected = ReferenceFilter(tags, 2, 0);
  auto raw = std::make_unique<char[]>(sizeof(recs[0]) * kN + 16);
  for (size_t offset = 1; offset < 16; ++offset) {
    char* base = raw.get() + offset;
    std::memcpy(base, recs.data(), sizeof(recs[0]) * kN);
    const auto* misaligned =
        reinterpret_cast<const xml::PackedNodeRecord*>(base);
    for (bool simd : {false, true}) {
      std::vector<xml::NodeId> got;
      FilterTagEqRecords(misaligned, kN, 2, 0, simd, &got);
      EXPECT_EQ(got, expected) << "offset=" << offset << " simd=" << simd;
    }
  }
}

TEST(KernelsTest, CountLessEqMatchesUpperBound) {
  Rng rng(53);
  for (size_t n : {0u, 1u, 2u, 3u, 5u, 8u, 16u, 100u, 1023u}) {
    std::vector<xml::NodeId> sorted(n);
    xml::NodeId v = 0;
    for (auto& x : sorted) {
      v += static_cast<xml::NodeId>(rng.Uniform(4));  // Duplicates included.
      x = v;
    }
    for (size_t probe = 0; probe < 64; ++probe) {
      xml::NodeId key = static_cast<xml::NodeId>(rng.Uniform(v + 3));
      size_t expected = static_cast<size_t>(
          std::upper_bound(sorted.begin(), sorted.end(), key) -
          sorted.begin());
      EXPECT_EQ(CountLessEq(sorted.data(), n, key), expected)
          << "n=" << n << " key=" << key;
    }
    // Boundary keys.
    EXPECT_EQ(CountLessEq(sorted.data(), n, 0),
              static_cast<size_t>(std::upper_bound(sorted.begin(),
                                                   sorted.end(), 0u) -
                                  sorted.begin()));
    EXPECT_EQ(CountLessEq(sorted.data(), n, xml::kNullNode), n);
  }
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
