// Equivalence of the partitioned parallel execution paths with their exact
// serial counterparts: the parallel NoK scan must emit the identical
// NestedList stream, and the forest-chunked structural joins must emit the
// identical pair/node sequences, on recursive and non-recursive documents.

#include <gtest/gtest.h>

#include <string>

#include "datagen/datagen.h"
#include "exec/nok_scan.h"
#include "exec/structural_join.h"
#include "pattern/builder.h"
#include "pattern/decompose.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/queries.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace exec {
namespace {

using nestedlist::NestedList;
using nestedlist::OccurrenceLabeler;

/// Drains a NokScanOperator and renders every emitted NestedList — the
/// byte-exact observable output stream.
std::string DrainToString(NokScanOperator* scan,
                          const xml::Document& doc) {
  OccurrenceLabeler label(&doc);
  std::string out;
  NestedList nl;
  while (scan->GetNext(&nl)) {
    out += nestedlist::ToString(nl, label);
    out += '\n';
  }
  return out;
}

void ExpectParallelScanMatchesSerial(const xml::Document& doc,
                                     const std::string& xpath) {
  auto path = xpath::ParsePath(xpath);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  auto tree = pattern::BuildFromPath(*path);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  pattern::Decomposition d = pattern::Decompose(*tree);
  for (size_t nok = 0; nok < d.noks.size(); ++nok) {
    NokScanOperator serial(&doc, &*tree, &d.noks[nok]);
    std::string expected = DrainToString(&serial, doc);
    for (size_t threads : {2, 3, 8}) {
      util::ThreadPool pool(threads);
      NokScanOperator parallel(&doc, &*tree, &d.noks[nok], &pool);
      EXPECT_EQ(DrainToString(&parallel, doc), expected)
          << xpath << " nok=" << nok << " threads=" << threads;
      // A rewound parallel scan replays the identical stream.
      parallel.Rewind();
      EXPECT_EQ(DrainToString(&parallel, doc), expected);
    }
  }
}

TEST(ParallelNokScanTest, FlatDocument) {
  auto doc =
      xml::ParseDocument(
          "<r><a><b/><c/></a><a><b/></a><x/><a><c/><b/><b/></a></r>")
          .MoveValue();
  ExpectParallelScanMatchesSerial(*doc, "//a[/b]");
  ExpectParallelScanMatchesSerial(*doc, "//a/b");
}

TEST(ParallelNokScanTest, RecursiveDocument) {
  // Matches nest across and inside partitions; order must still hold.
  auto doc = xml::ParseDocument(
                 "<r><a><a><b/></a><b/></a><a><b/><a><a><b/></a></a></a>"
                 "<a/></r>")
                 .MoveValue();
  ExpectParallelScanMatchesSerial(*doc, "//a[/b]");
  ExpectParallelScanMatchesSerial(*doc, "//a/a/b");
}

TEST(ParallelNokScanTest, RestrictedRangeStaysSerialAndCorrect) {
  auto doc =
      xml::ParseDocument("<r><a><b/></a><a><b/></a><a><b/></a></r>")
          .MoveValue();
  auto path = xpath::ParsePath("//a/b");
  auto tree = pattern::BuildFromPath(*path);
  ASSERT_TRUE(tree.ok());
  pattern::Decomposition d = pattern::Decompose(*tree);
  util::ThreadPool pool(4);
  // Restrict to the second <a> subtree (nodes 3..5): the BNLJ inner path.
  size_t nok_index = d.noks.size() - 1;
  NokScanOperator sref(doc.get(), &*tree, &d.noks[nok_index]);
  sref.SetRange(3, 5);
  std::string expected = DrainToString(&sref, *doc);
  NokScanOperator par(doc.get(), &*tree, &d.noks[nok_index], &pool);
  par.SetRange(3, 5);
  EXPECT_EQ(par.PartitionsUsed(), 0u);
  EXPECT_EQ(DrainToString(&par, *doc), expected);
  EXPECT_EQ(par.PartitionsUsed(), 0u);  // Serial path: no partitions.
}

TEST(ParallelNokScanTest, WorkloadQueriesOnGeneratedData) {
  for (datagen::Dataset ds :
       {datagen::Dataset::kD1Recursive, datagen::Dataset::kD5Dblp}) {
    datagen::GenOptions o;
    o.scale = 0.02;
    auto doc = datagen::GenerateDataset(ds, o);
    for (const workload::QuerySpec& q : workload::QueriesFor(ds)) {
      ExpectParallelScanMatchesSerial(*doc, q.xpath);
    }
  }
}

// -- Structural joins ---------------------------------------------------------

/// Builds a pseudo-random recursive document and two interleaved sorted
/// node lists to join.
struct JoinFixture {
  std::unique_ptr<xml::Document> doc;
  std::vector<xml::NodeId> anc;
  std::vector<xml::NodeId> desc;

  explicit JoinFixture(uint64_t seed) {
    Rng rng(seed);
    // Built in place: Document is pinned in memory (non-movable) since its
    // lazy tag index went behind a std::once_flag.
    doc = std::make_unique<xml::Document>();
    // ~200 nodes, fanout up to 4, depth up to 6, one tag so ancestor and
    // descendant lists overlap heavily.
    size_t budget = 200;
    BuildSubtree(doc.get(), &rng, &budget, 0);
    EXPECT_TRUE(doc->Finish().ok());
    for (xml::NodeId n = 0; n < doc->NumNodes(); ++n) {
      if (rng.Uniform(100) < 60) anc.push_back(n);
      if (rng.Uniform(100) < 60) desc.push_back(n);
    }
  }

  void BuildSubtree(xml::Document* d, Rng* rng, size_t* budget,
                    int depth) {
    d->BeginElement("n");
    --*budget;
    if (depth < 6) {
      size_t kids = rng->Uniform(depth == 0 ? 8 : 4);
      for (size_t i = 0; i < kids && *budget > 0; ++i) {
        BuildSubtree(d, rng, budget, depth + 1);
      }
    }
    d->EndElement();
  }
};

std::string PairsToString(const std::vector<AncDescPair>& pairs) {
  std::string s;
  for (const AncDescPair& p : pairs) {
    s += std::to_string(p.ancestor) + ">" + std::to_string(p.descendant) +
         ";";
  }
  return s;
}

std::string NodesToString(const std::vector<xml::NodeId>& nodes) {
  std::string s;
  for (xml::NodeId n : nodes) s += std::to_string(n) + ";";
  return s;
}

TEST(ParallelStructuralJoinTest, AllFormsMatchSerial) {
  for (uint64_t seed : {1u, 7u, 42u, 99u}) {
    JoinFixture fx(seed);
    for (size_t threads : {2, 3, 8}) {
      util::ThreadPool pool(threads);
      EXPECT_EQ(PairsToString(StackStructuralJoin(*fx.doc, fx.anc, fx.desc,
                                                  &pool)),
                PairsToString(StackStructuralJoin(*fx.doc, fx.anc,
                                                  fx.desc)))
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(PairsToString(StackStructuralJoinParentChild(
                    *fx.doc, fx.anc, fx.desc, &pool)),
                PairsToString(StackStructuralJoinParentChild(
                    *fx.doc, fx.anc, fx.desc)));
      EXPECT_EQ(NodesToString(DescendantsWithAncestor(*fx.doc, fx.anc,
                                                      fx.desc, &pool)),
                NodesToString(
                    DescendantsWithAncestor(*fx.doc, fx.anc, fx.desc)));
      EXPECT_EQ(NodesToString(AncestorsWithDescendant(*fx.doc, fx.anc,
                                                      fx.desc, &pool)),
                NodesToString(
                    AncestorsWithDescendant(*fx.doc, fx.anc, fx.desc)));
      EXPECT_EQ(NodesToString(
                    ChildrenWithParent(*fx.doc, fx.anc, fx.desc, &pool)),
                NodesToString(
                    ChildrenWithParent(*fx.doc, fx.anc, fx.desc)));
      EXPECT_EQ(NodesToString(
                    ParentsWithChild(*fx.doc, fx.anc, fx.desc, &pool)),
                NodesToString(ParentsWithChild(*fx.doc, fx.anc, fx.desc)));
    }
  }
}

TEST(ParallelStructuralJoinTest, EmptyInputs) {
  auto doc = xml::ParseDocument("<r><a/><b/></r>").MoveValue();
  util::ThreadPool pool(4);
  std::vector<xml::NodeId> none;
  std::vector<xml::NodeId> some = {0, 1, 2};
  EXPECT_TRUE(StackStructuralJoin(*doc, none, some, &pool).empty());
  EXPECT_TRUE(StackStructuralJoin(*doc, some, none, &pool).empty());
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
