#include "exec/twig_semijoin.h"

#include <gtest/gtest.h>

#include "baseline/navigational.h"
#include "pattern/builder.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace exec {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

std::vector<xml::NodeId> RunSemijoin(const xml::Document& doc,
                                     std::string_view query) {
  auto p = xpath::ParsePath(query);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto tr = pattern::BuildFromPath(*p);
  EXPECT_TRUE(tr.ok()) << tr.status().ToString();
  TwigSemijoin sj(&doc, &*tr);
  std::vector<xml::NodeId> out;
  Status st = sj.Run(tr->VertexOfVariable("result"), &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(TwigSemijoinTest, SimpleChain) {
  auto doc = Parse("<r><a><b/></a><a><x><b/></x></a><b/></r>");
  EXPECT_EQ(RunSemijoin(*doc, "//a//b").size(), 2u);
}

TEST(TwigSemijoinTest, ChildVsDescendant) {
  auto doc = Parse("<r><a><b/></a><a><x><b/></x></a></r>");
  EXPECT_EQ(RunSemijoin(*doc, "//a/b").size(), 1u);
  EXPECT_EQ(RunSemijoin(*doc, "//a//b").size(), 2u);
}

TEST(TwigSemijoinTest, Branching) {
  auto doc = Parse(
      "<r><a><b/><c/></a><a><b/></a><a><c/></a><a><x><b/></x><c/></a></r>");
  EXPECT_EQ(RunSemijoin(*doc, "//a[//b][//c]").size(), 2u);
}

TEST(TwigSemijoinTest, TopDownRemovesDanglingDescendants) {
  // b's outside any a must disappear even though bottom-up keeps them.
  auto doc = Parse("<r><b/><a><b/></a></r>");
  auto out = RunSemijoin(*doc, "//a//b");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(TwigSemijoinTest, ResultOnMidVertex) {
  auto doc = Parse("<r><a><b><c/></b></a><a><b/></a></r>");
  // Result = b, constrained from both sides (under a, containing c).
  auto out = RunSemijoin(*doc, "//a/b[//c]");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(doc->TagName(out[0]), "b");
}

TEST(TwigSemijoinTest, ValueConstraints) {
  auto doc = Parse("<r><k>x</k><k>y</k></r>");
  EXPECT_EQ(RunSemijoin(*doc, "//k[. = \"y\"]").size(), 1u);
}

TEST(TwigSemijoinTest, RootedQueries) {
  auto doc = Parse("<a><b/><a><b/></a></a>");
  EXPECT_EQ(RunSemijoin(*doc, "/a/b").size(), 1u);
  EXPECT_EQ(RunSemijoin(*doc, "//a/b").size(), 2u);
}

TEST(TwigSemijoinTest, RecursiveDocuments) {
  auto doc = Parse("<a><a><b/></a></a>");
  EXPECT_EQ(RunSemijoin(*doc, "//a//b").size(), 1u);
  EXPECT_EQ(RunSemijoin(*doc, "//a//a//b").size(), 1u);
  EXPECT_TRUE(RunSemijoin(*doc, "//a//a//a//b").empty());
}

TEST(TwigSemijoinTest, AgreesWithOracleOnMixedQueries) {
  auto doc = Parse(
      "<r><a><b><c/><d/></b></a><a><b><c/></b><d/></a>"
      "<x><a><b/><c/></a></x><c><a/><b/></c></r>");
  baseline::NavigationalEvaluator nav(doc.get());
  for (const char* q : {"//a//b//c", "//a/b/c", "//a[//c]//b", "//a[b]",
                        "//a[b][//d]", "//x//a//b", "/r/a//c"}) {
    auto p = xpath::ParsePath(q);
    ASSERT_TRUE(p.ok());
    auto oracle = nav.EvaluatePath(*p);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(RunSemijoin(*doc, q), *oracle) << q;
  }
}

TEST(TwigSemijoinTest, RejectsPositions) {
  auto doc = Parse("<r><a/></r>");
  auto p = xpath::ParsePath("//a[2]");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  TwigSemijoin sj(doc.get(), &*tr);
  std::vector<xml::NodeId> out;
  EXPECT_EQ(sj.Run(tr->VertexOfVariable("result"), &out).code(),
            StatusCode::kUnsupported);
}

TEST(TwigSemijoinTest, StatsPopulated) {
  auto doc = Parse("<r><a><b/></a></r>");
  auto p = xpath::ParsePath("//a//b");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  TwigSemijoin sj(doc.get(), &*tr);
  std::vector<xml::NodeId> out;
  ASSERT_TRUE(sj.Run(tr->VertexOfVariable("result"), &out).ok());
  EXPECT_GT(sj.stats().candidates_loaded, 0u);
  EXPECT_EQ(sj.stats().semijoins, 2u);  // One per pass for the single edge.
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
