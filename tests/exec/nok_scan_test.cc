#include "exec/nok_scan.h"

#include <gtest/gtest.h>

#include "nestedlist/ops.h"
#include "pattern/builder.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace exec {
namespace {

using nestedlist::NestedList;
using nestedlist::OccurrenceLabeler;
using pattern::BlossomTree;
using pattern::Decompose;
using pattern::Decomposition;
using pattern::EdgeMode;
using pattern::SlotId;
using pattern::VertexId;

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Paper Example 3: NoK a(b(d))(c), a-b mandatory, others optional.
BlossomTree Example3Pattern() {
  BlossomTree t;
  VertexId a = t.AddRoot("a");
  VertexId b = t.AddChild(a, "b", xpath::Axis::kChild, EdgeMode::kFor);
  t.AddChild(b, "d", xpath::Axis::kChild, EdgeMode::kLet);
  t.AddChild(a, "c", xpath::Axis::kChild, EdgeMode::kLet);
  for (VertexId v = 0; v < t.NumVertices(); ++v) t.MarkReturning(v);
  EXPECT_TRUE(t.Finalize().ok());
  return t;
}

TEST(NokScanTest, ReproducesExample3Figure4) {
  auto doc = Parse("<a><b/><c/><b><d/><d/></b><c/><b><d/></b></a>");
  BlossomTree t = Example3Pattern();
  Decomposition d = Decompose(t);
  ASSERT_EQ(d.noks.size(), 1u);
  NokScanOperator scan(doc.get(), &t, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  OccurrenceLabeler label(doc.get());
  EXPECT_EQ(nestedlist::ToString(out, label),
            "(a1,[(b1,()),(b2,[(d1),(d2)]),(b3,(d3))],[(c1),(c2)])");
  EXPECT_FALSE(scan.GetNext(&out));
}

TEST(NokScanTest, MandatoryChildFailsMatch) {
  // a requires a b child: the second a (no b) does not match.
  auto doc = Parse("<r><a><b/></a><a><c/></a></r>");
  BlossomTree t = Example3Pattern();
  Decomposition d = Decompose(t);
  NokScanOperator scan(doc.get(), &t, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  std::vector<SlotId> tops(scan.top_slots());
  auto as = nestedlist::Project(t, tops, out, 0);
  ASSERT_EQ(as.size(), 1u);
  EXPECT_EQ(doc->TagName(as[0]), "a");
  EXPECT_FALSE(scan.GetNext(&out));
}

TEST(NokScanTest, OptionalChildrenMayBeMissing) {
  auto doc = Parse("<a><b/></a>");
  BlossomTree t = Example3Pattern();
  Decomposition d = Decompose(t);
  NokScanOperator scan(doc.get(), &t, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  OccurrenceLabeler label(doc.get());
  EXPECT_EQ(nestedlist::ToString(out, label), "(a1,(b1,()),())");
}

TEST(NokScanTest, EmitsOneListPerRootMatchInDocOrder) {
  auto doc = Parse("<r><a><b/></a><x><a><b/><b/></a></x></r>");
  BlossomTree t = Example3Pattern();
  Decomposition d = Decompose(t);
  NokScanOperator scan(doc.get(), &t, &d.noks[0]);
  NestedList out;
  std::vector<xml::NodeId> roots;
  while (scan.GetNext(&out)) {
    auto as = nestedlist::Project(t, scan.top_slots(), out, 0);
    roots.insert(roots.end(), as.begin(), as.end());
  }
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_TRUE(roots[0] < roots[1]);
}

TEST(NokScanTest, RecursiveMatchesNestAndAllEmit) {
  // a inside a: both match (sequential scan tries every node).
  auto doc = Parse("<a><b/><a><b/></a></a>");
  BlossomTree t = Example3Pattern();
  Decomposition d = Decompose(t);
  NokScanOperator scan(doc.get(), &t, &d.noks[0]);
  NestedList out;
  int count = 0;
  while (scan.GetNext(&out)) ++count;
  EXPECT_EQ(count, 2);
}

TEST(NokScanTest, VirtualRootAnchorsAbsolutePaths) {
  auto doc = Parse("<a><b/></a>");
  auto p = xpath::ParsePath("/a/b");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  ASSERT_EQ(d.noks.size(), 1u);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  auto nodes = nestedlist::Project(*tr, scan.top_slots(), out,
                                   tr->SlotOfVariable("result"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc->TagName(nodes[0]), "b");
  EXPECT_FALSE(scan.GetNext(&out));
}

TEST(NokScanTest, AbsolutePathDoesNotMatchNonRootElements) {
  // /b must not match the nested b.
  auto doc = Parse("<a><b/></a>");
  auto p = xpath::ParsePath("/b");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  EXPECT_FALSE(scan.GetNext(&out));
}

TEST(NokScanTest, ValueConstraint) {
  auto doc = Parse("<r><k>x</k><k>y</k></r>");
  auto p = xpath::ParsePath("/r/k[. = \"y\"]");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  auto nodes = nestedlist::Project(*tr, scan.top_slots(), out,
                                   tr->SlotOfVariable("result"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc->StringValue(nodes[0]), "y");
}

TEST(NokScanTest, NumericValueConstraint) {
  auto doc = Parse("<r><k>07</k><k>8</k></r>");
  auto p = xpath::ParsePath("/r/k[. = 7]");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));  // "07" == 7 numerically.
  auto nodes = nestedlist::Project(*tr, scan.top_slots(), out,
                                   tr->SlotOfVariable("result"));
  EXPECT_EQ(doc->StringValue(nodes[0]), "07");
}

TEST(NokScanTest, PositionPredicate) {
  auto doc = Parse("<r><k>1</k><k>2</k><k>3</k></r>");
  auto p = xpath::ParsePath("/r/k[2]");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  auto nodes = nestedlist::Project(*tr, scan.top_slots(), out,
                                   tr->SlotOfVariable("result"));
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(doc->StringValue(nodes[0]), "2");
}

TEST(NokScanTest, WildcardStep) {
  auto doc = Parse("<r><x><t/></x><y><t/></y></r>");
  auto p = xpath::ParsePath("/r/*/t");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  auto nodes = nestedlist::Project(*tr, scan.top_slots(), out,
                                   tr->SlotOfVariable("result"));
  EXPECT_EQ(nodes.size(), 2u);
}

TEST(NokScanTest, ExistencePredicateSubtree) {
  auto doc = Parse("<r><a><b/><c/></a><a><c/></a></r>");
  auto p = xpath::ParsePath("/r/a[b]/c");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  auto nodes = nestedlist::Project(*tr, scan.top_slots(), out,
                                   tr->SlotOfVariable("result"));
  // Only the first a (which has a b) contributes its c.
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], 3u);
}

TEST(NokScanTest, FollowingSiblingAxis) {
  auto doc = Parse("<r><a/><x/><b/><b/></r>");
  BlossomTree t;
  VertexId r = t.AddRoot("r");
  VertexId a = t.AddChild(r, "a", xpath::Axis::kChild, EdgeMode::kFor);
  VertexId b =
      t.AddChild(a, "b", xpath::Axis::kFollowingSibling, EdgeMode::kFor);
  t.MarkReturning(b, "result");
  ASSERT_TRUE(t.Finalize().ok());
  Decomposition d = Decompose(t);
  ASSERT_EQ(d.noks.size(), 1u);
  NokScanOperator scan(doc.get(), &t, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  auto nodes =
      nestedlist::Project(t, scan.top_slots(), out, t.SlotOfVariable("result"));
  EXPECT_EQ(nodes.size(), 2u);  // Both b's follow a.
}

TEST(NokScanTest, AttributeConstraint) {
  auto doc = Parse(R"(<r><k id="1"/><k/></r>)");
  auto p = xpath::ParsePath("/r/k[@id]");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  int count = 0;
  while (scan.GetNext(&out)) ++count;
  EXPECT_EQ(count, 1);
}

TEST(NokScanTest, AttributeValueConstraint) {
  auto doc = Parse(R"(<r><k id="1"/><k id="2"/></r>)");
  auto p = xpath::ParsePath("/r/k[@id = \"2\"]");
  ASSERT_TRUE(p.ok());
  auto tr = pattern::BuildFromPath(*p);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  NokScanOperator scan(doc.get(), &*tr, &d.noks[0]);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  auto nodes = nestedlist::Project(*tr, scan.top_slots(), out,
                                   tr->SlotOfVariable("result"));
  ASSERT_EQ(nodes.size(), 1u);
  std::string_view v;
  ASSERT_TRUE(doc->AttributeValue(nodes[0], "id", &v));
  EXPECT_EQ(v, "2");
}

TEST(NokScanTest, SetRangeBoundsTheScan) {
  auto doc = Parse("<r><a><b/></a><a><b/></a></r>");
  BlossomTree t = Example3Pattern();
  Decomposition d = Decompose(t);
  NokScanOperator scan(doc.get(), &t, &d.noks[0]);
  // Restrict to the second a's subtree (nodes 3..4).
  scan.SetRange(3, 4);
  NestedList out;
  ASSERT_TRUE(scan.GetNext(&out));
  auto as = nestedlist::Project(t, scan.top_slots(), out, 0);
  EXPECT_EQ(as[0], 3u);
  EXPECT_FALSE(scan.GetNext(&out));
}

TEST(NokScanTest, RewindRestartsAndCountsWork) {
  auto doc = Parse("<r><a><b/></a></r>");
  BlossomTree t = Example3Pattern();
  Decomposition d = Decompose(t);
  NokScanOperator scan(doc.get(), &t, &d.noks[0]);
  NestedList out;
  while (scan.GetNext(&out)) {
  }
  uint64_t scanned = scan.NodesScanned();
  EXPECT_EQ(scanned, doc->NumNodes());
  scan.Rewind();
  ASSERT_TRUE(scan.GetNext(&out));
  EXPECT_GT(scan.NodesScanned(), scanned);
  EXPECT_GT(scan.MatchWork(), 0u);
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
