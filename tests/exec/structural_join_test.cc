#include "exec/structural_join.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace blossomtree {
namespace exec {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

std::vector<xml::NodeId> TagNodes(const xml::Document& doc,
                                  const std::string& tag) {
  auto index = doc.TagIndex(doc.tags().Lookup(tag));
  return {index.begin(), index.end()};
}

TEST(StructuralJoinTest, BasicAncDesc) {
  auto doc = Parse("<r><a><b/></a><b/><a><x><b/></x></a></r>");
  auto pairs = StackStructuralJoin(*doc, TagNodes(*doc, "a"),
                                   TagNodes(*doc, "b"));
  ASSERT_EQ(pairs.size(), 2u);
  for (const auto& p : pairs) {
    EXPECT_TRUE(doc->IsAncestor(p.ancestor, p.descendant));
  }
}

TEST(StructuralJoinTest, NestedAncestorsProduceAllPairs) {
  auto doc = Parse("<a><a><b/></a></a>");
  auto pairs = StackStructuralJoin(*doc, TagNodes(*doc, "a"),
                                   TagNodes(*doc, "b"));
  EXPECT_EQ(pairs.size(), 2u);  // Both a's are ancestors of b.
}

TEST(StructuralJoinTest, ExhaustiveAgainstNaive) {
  auto doc = Parse(
      "<r><a><b/><a><b/><c/></a></a><c><a/><b/></c><a><c><b/></c></a></r>");
  auto as = TagNodes(*doc, "a");
  auto bs = TagNodes(*doc, "b");
  auto pairs = StackStructuralJoin(*doc, as, bs);
  std::vector<AncDescPair> naive;
  for (xml::NodeId a : as) {
    for (xml::NodeId b : bs) {
      if (doc->IsAncestor(a, b)) naive.push_back({a, b});
    }
  }
  ASSERT_EQ(pairs.size(), naive.size());
  auto key = [](const AncDescPair& p) {
    return std::make_pair(p.ancestor, p.descendant);
  };
  std::vector<std::pair<xml::NodeId, xml::NodeId>> k1, k2;
  for (const auto& p : pairs) k1.push_back(key(p));
  for (const auto& p : naive) k2.push_back(key(p));
  std::sort(k1.begin(), k1.end());
  std::sort(k2.begin(), k2.end());
  EXPECT_EQ(k1, k2);
}

TEST(StructuralJoinTest, ParentChildVariant) {
  auto doc = Parse("<r><a><b/><x><b/></x></a></r>");
  auto pairs = StackStructuralJoinParentChild(*doc, TagNodes(*doc, "a"),
                                              TagNodes(*doc, "b"));
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(doc->Parent(pairs[0].descendant), pairs[0].ancestor);
}

TEST(StructuralJoinTest, SemiJoinDescendants) {
  auto doc = Parse("<r><a><b/></a><b/><a><b/><b/></a></r>");
  auto ds = DescendantsWithAncestor(*doc, TagNodes(*doc, "a"),
                                    TagNodes(*doc, "b"));
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ds.begin(), ds.end()));
}

TEST(StructuralJoinTest, SemiJoinAncestors) {
  auto doc = Parse("<r><a><b/></a><a><c/></a><a><b/></a></r>");
  auto as = AncestorsWithDescendant(*doc, TagNodes(*doc, "a"),
                                    TagNodes(*doc, "b"));
  EXPECT_EQ(as.size(), 2u);
}

TEST(StructuralJoinTest, EmptyInputs) {
  auto doc = Parse("<r><a/></r>");
  EXPECT_TRUE(StackStructuralJoin(*doc, {}, TagNodes(*doc, "a")).empty());
  EXPECT_TRUE(StackStructuralJoin(*doc, TagNodes(*doc, "a"), {}).empty());
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
