#include "exec/joins.h"

#include <gtest/gtest.h>

#include "exec/value_ops.h"
#include "flwor/parser.h"
#include "nestedlist/ops.h"
#include "pattern/builder.h"
#include "pattern/decompose.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace exec {
namespace {

using nestedlist::NestedList;
using nestedlist::OccurrenceLabeler;
using pattern::BlossomTree;
using pattern::Decompose;
using pattern::Decomposition;
using pattern::SlotId;
using pattern::VertexId;

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// The paper's Example 2 bibliography document (whitespace trimmed).
constexpr const char* kBibXml =
    "<bib>"
    "<book><title>Maximum Security</title></book>"
    "<book><title>The Art of Computer Programming</title>"
    "<author><last>Knuth</last><first>Donald</first></author></book>"
    "<book><title>Terrorist Hunter</title></book>"
    "<book><title>TeX Book</title>"
    "<author><last>Knuth</last><first>Donald</first></author></book>"
    "</bib>";

constexpr const char* kExample1Query = R"(
  for $book1 in doc("bib.xml")//book,
      $book2 in doc("bib.xml")//book
  let $aut1 := $book1/author
  let $aut2 := $book2/author
  where $book1 << $book2
    and not($book1/title = $book2/title)
    and deep-equal($aut1, $aut2)
  return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
)";

struct Example1Fixture {
  std::unique_ptr<xml::Document> doc;
  BlossomTree tree;
  Decomposition decomp;
  int nok_book1 = -1;
  int nok_book2 = -1;
  SlotId s_book1, s_book2, s_aut1, s_aut2, s_t1, s_t2;

  Example1Fixture() : doc(Parse(kBibXml)) {
    auto e = flwor::ParseQuery(kExample1Query);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    auto tr = pattern::BuildFromQuery(**e);
    EXPECT_TRUE(tr.ok()) << tr.status().ToString();
    tree = tr.MoveValue();
    decomp = Decompose(tree);
    VertexId b1 = tree.VertexOfVariable("book1");
    VertexId b2 = tree.VertexOfVariable("book2");
    for (size_t i = 0; i < decomp.noks.size(); ++i) {
      if (decomp.noks[i].root == b1) nok_book1 = static_cast<int>(i);
      if (decomp.noks[i].root == b2) nok_book2 = static_cast<int>(i);
    }
    s_book1 = tree.SlotOfVariable("book1");
    s_book2 = tree.SlotOfVariable("book2");
    s_aut1 = tree.SlotOfVariable("aut1");
    s_aut2 = tree.SlotOfVariable("aut2");
    s_t1 = TitleSlot(s_book1);
    s_t2 = TitleSlot(s_book2);
  }

  SlotId TitleSlot(SlotId book) const {
    for (SlotId c : tree.slot(book).children) {
      if (tree.vertex(tree.slot(c).vertex).tag == "title") return c;
    }
    return pattern::kNoSlot;
  }

  std::unique_ptr<NestedListOperator> FramedScan(int nok, size_t position) {
    auto scan = std::make_unique<NokScanOperator>(doc.get(), &tree,
                                                  &decomp.noks[nok]);
    return std::make_unique<FrameOperator>(
        &tree, tree.top_slots(), position, std::move(scan));
  }

  /// The paper abbreviates tags to their first letter (b1, t1, a1).
  std::function<std::string(xml::NodeId)> AbbrevLabeler() const {
    const xml::Document* d = doc.get();
    return [d](xml::NodeId n) {
      OccurrenceLabeler full(d);
      std::string s = full(n);
      const std::string& tag = d->TagName(n);
      return tag.substr(0, 1) + s.substr(tag.size());
    };
  }
};

TEST(NestedLoopJoinTest, Example4NoKOutputsMatchPaper) {
  Example1Fixture fx;
  ASSERT_GE(fx.nok_book1, 0);
  ASSERT_GE(fx.nok_book2, 0);
  auto op = fx.FramedScan(fx.nok_book1, 0);
  auto label = fx.AbbrevLabeler();
  NestedList nl;
  std::vector<std::string> rendered;
  while (op->GetNext(&nl)) {
    rendered.push_back(nestedlist::ToString(nl, label));
  }
  // Paper Example 4 (the NoK emits (book,(author),(title)) frames; the
  // second top group is the book2 placeholder).
  ASSERT_EQ(rendered.size(), 4u);
  EXPECT_EQ(rendered[0], "((b1,(),(t1)),((),()))");
  EXPECT_EQ(rendered[1], "((b2,(a1),(t2)),((),()))");
  EXPECT_EQ(rendered[2], "((b3,(),(t3)),((),()))");
  EXPECT_EQ(rendered[3], "((b4,(a2),(t4)),((),()))");
}

TEST(NestedLoopJoinTest, Example4JoinResultMatchesPaper) {
  Example1Fixture fx;
  const auto& tops = fx.tree.top_slots();
  auto pred = [&](const NestedList& l, const NestedList& r) {
    auto b1 = nestedlist::Project(fx.tree, tops, l, fx.s_book1);
    auto b2 = nestedlist::Project(fx.tree, tops, r, fx.s_book2);
    auto t1 = nestedlist::Project(fx.tree, tops, l, fx.s_t1);
    auto t2 = nestedlist::Project(fx.tree, tops, r, fx.s_t2);
    auto a1 = nestedlist::Project(fx.tree, tops, l, fx.s_aut1);
    auto a2 = nestedlist::Project(fx.tree, tops, r, fx.s_aut2);
    if (b1.empty() || b2.empty() || !(b1[0] < b2[0])) return false;
    if (GeneralCompare(*fx.doc, t1, xpath::CompareOp::kEq, t2)) return false;
    return DeepEqualSequences(*fx.doc, a1, a2);
  };
  NestedLoopJoin join(std::vector<SlotId>(tops),
                      fx.FramedScan(fx.nok_book1, 0),
                      fx.FramedScan(fx.nok_book2, 1), {true, false}, pred);
  auto label = fx.AbbrevLabeler();
  NestedList nl;
  std::vector<std::string> rendered;
  while (join.GetNext(&nl)) {
    rendered.push_back(nestedlist::ToString(nl, label));
  }
  // Paper Example 4's final result (canonical group order: author, title).
  ASSERT_EQ(rendered.size(), 2u);
  EXPECT_EQ(rendered[0], "((b1,(),(t1)),(b3,(),(t3)))");
  EXPECT_EQ(rendered[1], "((b2,(a1),(t2)),(b4,(a2),(t4)))");
}

TEST(NestedLoopJoinTest, Example5DocOrderCounterexample) {
  // Paper Example 5: the <<-join is not order preserving: the projection on
  // the book2 Dewey ID over the join result is [b2,b3,b4,b3,b4,b4].
  Example1Fixture fx;
  const auto& tops = fx.tree.top_slots();
  auto pred = [&](const NestedList& l, const NestedList& r) {
    auto b1 = nestedlist::Project(fx.tree, tops, l, fx.s_book1);
    auto b2 = nestedlist::Project(fx.tree, tops, r, fx.s_book2);
    return !b1.empty() && !b2.empty() && b1[0] < b2[0];
  };
  NestedLoopJoin join(std::vector<SlotId>(tops),
                      fx.FramedScan(fx.nok_book1, 0),
                      fx.FramedScan(fx.nok_book2, 1), {true, false}, pred);
  std::vector<NestedList> results = Drain(&join);
  ASSERT_EQ(results.size(), 6u);
  auto proj = nestedlist::ProjectSequence(fx.tree, tops, results, fx.s_book2);
  OccurrenceLabeler label(fx.doc.get());
  std::vector<std::string> labels;
  for (xml::NodeId n : proj) labels.push_back(label(n));
  EXPECT_EQ(labels, std::vector<std::string>(
                        {"book2", "book3", "book4", "book3", "book4",
                         "book4"}));
  EXPECT_FALSE(std::is_sorted(proj.begin(), proj.end()));
}

// -- Pipelined //-join ---------------------------------------------------------

struct DescJoinFixture {
  std::unique_ptr<xml::Document> doc;
  BlossomTree tree;
  Decomposition decomp;

  explicit DescJoinFixture(const char* xml, const char* query)
      : doc(Parse(xml)) {
    auto p = xpath::ParsePath(query);
    EXPECT_TRUE(p.ok());
    auto tr = pattern::BuildFromPath(*p);
    EXPECT_TRUE(tr.ok()) << tr.status().ToString();
    tree = tr.MoveValue();
    decomp = Decompose(tree);
  }

  int NokRootedAt(const std::string& tag) const {
    for (size_t i = 0; i < decomp.noks.size(); ++i) {
      if (tree.vertex(decomp.noks[i].root).tag == tag) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

TEST(PipelinedDescJoinTest, GraftsDescendants) {
  DescJoinFixture fx("<r><a><b/><x><b/></x></a><a><c/></a><a><b/></a></r>",
                     "//a//b");
  int na = fx.NokRootedAt("a");
  int nb = fx.NokRootedAt("b");
  ASSERT_GE(na, 0);
  ASSERT_GE(nb, 0);
  SlotId sa = fx.tree.SlotOfDewey(pattern::DeweyId({1}));
  auto outer = std::make_unique<NokScanOperator>(fx.doc.get(), &fx.tree,
                                                 &fx.decomp.noks[na]);
  auto inner = std::make_unique<NokScanOperator>(fx.doc.get(), &fx.tree,
                                                 &fx.decomp.noks[nb]);
  PipelinedDescJoin join(fx.doc.get(), &fx.tree, std::move(outer),
                         std::move(inner), sa, pattern::EdgeMode::kFor);
  std::vector<NestedList> results = Drain(&join);
  // a2 (only c child) is pruned by the mandatory //-edge.
  ASSERT_EQ(results.size(), 2u);
  SlotId sb = fx.tree.SlotOfVariable("result");
  auto bs = nestedlist::ProjectSequence(fx.tree, join.top_slots(), results,
                                        sb);
  EXPECT_EQ(bs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(bs.begin(), bs.end()));  // Theorem 2.
  for (xml::NodeId b : bs) EXPECT_EQ(fx.doc->TagName(b), "b");
}

TEST(PipelinedDescJoinTest, OptionalModeKeepsEmptyOuter) {
  DescJoinFixture fx("<r><a><b/></a><a><c/></a></r>", "//a//b");
  int na = fx.NokRootedAt("a");
  int nb = fx.NokRootedAt("b");
  SlotId sa = fx.tree.SlotOfDewey(pattern::DeweyId({1}));
  auto outer = std::make_unique<NokScanOperator>(fx.doc.get(), &fx.tree,
                                                 &fx.decomp.noks[na]);
  auto inner = std::make_unique<NokScanOperator>(fx.doc.get(), &fx.tree,
                                                 &fx.decomp.noks[nb]);
  PipelinedDescJoin join(fx.doc.get(), &fx.tree, std::move(outer),
                         std::move(inner), sa, pattern::EdgeMode::kLet);
  std::vector<NestedList> results = Drain(&join);
  EXPECT_EQ(results.size(), 2u);  // Both a's kept.
}

TEST(PipelinedDescJoinTest, InnerBeforeOuterIsDiscarded) {
  // b before any a must not crash or attach anywhere.
  DescJoinFixture fx("<r><b/><a><b/></a></r>", "//a//b");
  int na = fx.NokRootedAt("a");
  int nb = fx.NokRootedAt("b");
  SlotId sa = fx.tree.SlotOfDewey(pattern::DeweyId({1}));
  PipelinedDescJoin join(
      fx.doc.get(), &fx.tree,
      std::make_unique<NokScanOperator>(fx.doc.get(), &fx.tree,
                                        &fx.decomp.noks[na]),
      std::make_unique<NokScanOperator>(fx.doc.get(), &fx.tree,
                                        &fx.decomp.noks[nb]),
      sa, pattern::EdgeMode::kFor);
  std::vector<NestedList> results = Drain(&join);
  ASSERT_EQ(results.size(), 1u);
  SlotId sb = fx.tree.SlotOfVariable("result");
  auto bs =
      nestedlist::ProjectSequence(fx.tree, join.top_slots(), results, sb);
  ASSERT_EQ(bs.size(), 1u);
  EXPECT_EQ(bs[0], 3u);  // The nested b, not the leading one.
}

// -- Bounded nested-loop join --------------------------------------------------

TEST(BnljTest, MatchesPipelinedOnNonRecursiveDocs) {
  const char* xml = "<r><a><b/><x><b/></x></a><a><c/></a><a><b/></a></r>";
  DescJoinFixture fx1(xml, "//a//b");
  DescJoinFixture fx2(xml, "//a//b");
  SlotId sa1 = fx1.tree.SlotOfDewey(pattern::DeweyId({1}));
  SlotId sa2 = fx2.tree.SlotOfDewey(pattern::DeweyId({1}));

  PipelinedDescJoin pl(
      fx1.doc.get(), &fx1.tree,
      std::make_unique<NokScanOperator>(fx1.doc.get(), &fx1.tree,
                                        &fx1.decomp.noks[fx1.NokRootedAt("a")]),
      std::make_unique<NokScanOperator>(fx1.doc.get(), &fx1.tree,
                                        &fx1.decomp.noks[fx1.NokRootedAt("b")]),
      sa1, pattern::EdgeMode::kFor);
  BoundedNestedLoopJoin nl(
      fx2.doc.get(), &fx2.tree,
      std::make_unique<NokScanOperator>(fx2.doc.get(), &fx2.tree,
                                        &fx2.decomp.noks[fx2.NokRootedAt("a")]),
      std::make_unique<NokScanOperator>(fx2.doc.get(), &fx2.tree,
                                        &fx2.decomp.noks[fx2.NokRootedAt("b")]),
      sa2, pattern::EdgeMode::kFor);

  auto r1 = Drain(&pl);
  auto r2 = Drain(&nl);
  ASSERT_EQ(r1.size(), r2.size());
  auto p1 = nestedlist::ProjectSequence(fx1.tree, pl.top_slots(), r1,
                                        fx1.tree.SlotOfVariable("result"));
  auto p2 = nestedlist::ProjectSequence(fx2.tree, nl.top_slots(), r2,
                                        fx2.tree.SlotOfVariable("result"));
  EXPECT_EQ(p1, p2);
}

TEST(BnljTest, HandlesRecursiveDocuments) {
  // a nested in a: every a-match re-scans only its own subtree.
  const char* xml = "<a><a><b/></a></a>";
  DescJoinFixture fx(xml, "//a//b");
  SlotId sa = fx.tree.SlotOfDewey(pattern::DeweyId({1}));
  auto inner = std::make_unique<NokScanOperator>(
      fx.doc.get(), &fx.tree, &fx.decomp.noks[fx.NokRootedAt("b")]);
  NokScanOperator* inner_ptr = inner.get();
  BoundedNestedLoopJoin nl(
      fx.doc.get(), &fx.tree,
      std::make_unique<NokScanOperator>(fx.doc.get(), &fx.tree,
                                        &fx.decomp.noks[fx.NokRootedAt("a")]),
      std::move(inner), sa, pattern::EdgeMode::kFor);
  auto results = Drain(&nl);
  // Both a's contain the b.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(nl.InnerRescans(), 2u);
  EXPECT_GT(inner_ptr->NodesScanned(), 0u);
}

TEST(BnljTest, InnerScanIsRangeBounded) {
  const char* xml = "<r><a><b/></a><z><b/><b/><b/></z></r>";
  DescJoinFixture fx(xml, "//a//b");
  SlotId sa = fx.tree.SlotOfDewey(pattern::DeweyId({1}));
  auto inner = std::make_unique<NokScanOperator>(
      fx.doc.get(), &fx.tree, &fx.decomp.noks[fx.NokRootedAt("b")]);
  NokScanOperator* inner_ptr = inner.get();
  BoundedNestedLoopJoin nl(
      fx.doc.get(), &fx.tree,
      std::make_unique<NokScanOperator>(fx.doc.get(), &fx.tree,
                                        &fx.decomp.noks[fx.NokRootedAt("a")]),
      std::move(inner), sa, pattern::EdgeMode::kFor);
  auto results = Drain(&nl);
  ASSERT_EQ(results.size(), 1u);
  // Inner scanned only a's subtree (1 node: the b), not the z subtree.
  EXPECT_LE(inner_ptr->NodesScanned(), 2u);
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
