// Batch-at-a-time execution equivalence suite (DESIGN.md §16):
//  - every engine result and every deterministic counter must be bitwise-
//    identical across vectorize on/off, SIMD on/off, batch sizes
//    {1, 7, 64, 4096}, and 1/2/4 threads, on all five generated datasets;
//  - operator streams drained via GetNextBatch (any size, or mixed with
//    GetNext) must equal the node-at-a-time stream byte for byte;
//  - mid-batch cancellation: a cell budget tripping at *every* possible
//    boundary (±1 row around each batch edge) must leave
//    matches/nl_cells equal to what the consumer actually received — the
//    count-before-charge audit fix — and Finish() normalization must stay
//    safe on tripped plans.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "exec/exec_stats.h"
#include "exec/nok_scan.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "pattern/decompose.h"
#include "util/resource_guard.h"
#include "workload/queries.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace exec {
namespace {

using nestedlist::NestedList;
using nestedlist::OccurrenceLabeler;

struct EngineRun {
  std::vector<xml::NodeId> result;
  std::string counters;  ///< QueryProfile::ToText() — wall-clock-free.
};

EngineRun RunEngine(const xml::Document* doc, const xpath::PathExpr& path,
                    unsigned threads, bool vectorize, bool simd,
                    size_t batch_rows) {
  engine::EngineOptions o;
  o.num_threads = threads;
  o.collect_profile = true;
  o.plan.exec.vectorize = vectorize;
  o.plan.exec.simd = simd;
  o.plan.exec.batch_rows = batch_rows;
  engine::BlossomTreeEngine eng(doc, o);
  EngineRun run;
  auto res = eng.EvaluatePath(path);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  if (res.ok()) run.result = *res;
  run.counters = eng.LastProfile().ToText();
  return run;
}

TEST(BatchExecTest, EngineIdenticalAcrossBatchSimdAndThreads) {
  for (datagen::Dataset ds : datagen::AllDatasets()) {
    datagen::GenOptions o;
    o.scale = 0.02;
    o.seed = 7;
    auto doc = datagen::GenerateDataset(ds, o);
    for (const workload::QuerySpec& q : workload::QueriesFor(ds)) {
      auto path = xpath::ParsePath(q.xpath);
      ASSERT_TRUE(path.ok()) << q.xpath;
      // Reference: the node-at-a-time scalar path, serial.
      EngineRun ref = RunEngine(doc.get(), *path, 1, false, false, 64);
      auto check = [&](unsigned threads, bool vec, bool simd, size_t rows) {
        EngineRun got = RunEngine(doc.get(), *path, threads, vec, simd, rows);
        EXPECT_EQ(got.result, ref.result)
            << q.xpath << " threads=" << threads << " vectorize=" << vec
            << " simd=" << simd << " batch_rows=" << rows;
        EXPECT_EQ(got.counters, ref.counters)
            << q.xpath << " threads=" << threads << " vectorize=" << vec
            << " simd=" << simd << " batch_rows=" << rows;
      };
      // Batch-size sweep on the vectorized serial path.
      for (size_t rows : {1u, 7u, 64u, 4096u}) check(1, true, true, rows);
      // Thread × kernel cross at the default batch size.
      for (unsigned threads : {1u, 2u, 4u}) {
        check(threads, true, true, 64);
        check(threads, true, false, 64);
        check(threads, false, false, 64);
      }
    }
  }
}

std::string DrainNodeAtATime(NestedListOperator* op,
                             const xml::Document& doc) {
  OccurrenceLabeler label(&doc);
  std::string out;
  NestedList nl;
  while (op->GetNext(&nl)) {
    out += nestedlist::ToString(nl, label);
    out += '\n';
  }
  return out;
}

std::string DrainBatched(NestedListOperator* op, const xml::Document& doc,
                         size_t batch_rows) {
  OccurrenceLabeler label(&doc);
  std::string out;
  Batch batch;
  while (op->GetNextBatch(&batch, batch_rows) > 0) {
    EXPECT_LE(batch.rows.size(), ClampBatchRows(batch_rows));
    for (const NestedList& nl : batch.rows) {
      out += nestedlist::ToString(nl, label);
      out += '\n';
    }
  }
  EXPECT_TRUE(batch.rows.empty());  // 0 return clears the batch.
  return out;
}

opt::PlanOptions VectorizedPlan(util::ResourceGuard* guard = nullptr) {
  opt::PlanOptions po;
  po.strategy = opt::JoinStrategy::kPipelined;
  po.guard = guard;
  return po;
}

TEST(BatchExecTest, PlanRootBatchedStreamEqualsNodeAtATime) {
  // A scan → pipelined-//-join chain over a generated document, drained
  // through the plan root: the batch sizes of satellite (d) plus a mixed
  // GetNext/GetNextBatch drain must all reproduce the reference stream.
  datagen::GenOptions o;
  o.scale = 0.02;
  o.seed = 7;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  for (const char* q : {"//article/title", "//inproceedings[/year]//author"}) {
    auto path = xpath::ParsePath(q);
    ASSERT_TRUE(path.ok()) << q;
    auto tree = pattern::BuildFromPath(*path);
    ASSERT_TRUE(tree.ok()) << q;
    auto ref_plan = opt::PlanQuery(doc.get(), &*tree, VectorizedPlan());
    ASSERT_TRUE(ref_plan.ok()) << q;
    ASSERT_EQ(ref_plan->trees.size(), 1u);
    std::string expected =
        DrainNodeAtATime(ref_plan->trees[0].root.get(), *doc);
    ref_plan->FinishAll();
    std::string expected_counters =
        ref_plan->trees[0].root->Stats().Counters();
    for (size_t rows : {1u, 7u, 64u, 4096u}) {
      auto plan = opt::PlanQuery(doc.get(), &*tree, VectorizedPlan());
      ASSERT_TRUE(plan.ok());
      EXPECT_EQ(DrainBatched(plan->trees[0].root.get(), *doc, rows),
                expected)
          << q << " batch_rows=" << rows;
      plan->FinishAll();
      EXPECT_EQ(plan->trees[0].root->Stats().Counters(), expected_counters)
          << q << " batch_rows=" << rows;
    }
    // Mixed drain: one row, then one batch, alternating — both entry
    // points advance the same cursor.
    auto plan = opt::PlanQuery(doc.get(), &*tree, VectorizedPlan());
    ASSERT_TRUE(plan.ok());
    NestedListOperator* root = plan->trees[0].root.get();
    OccurrenceLabeler label(doc.get());
    std::string mixed;
    Batch batch;
    NestedList nl;
    for (;;) {
      if (!root->GetNext(&nl)) break;
      mixed += nestedlist::ToString(nl, label);
      mixed += '\n';
      if (root->GetNextBatch(&batch, 3) == 0) break;
      for (const NestedList& b : batch.rows) {
        mixed += nestedlist::ToString(b, label);
        mixed += '\n';
      }
    }
    EXPECT_EQ(mixed, expected) << q << " (mixed drain)";
  }
}

TEST(BatchExecTest, NokScanBatchedStreamEqualsNodeAtATime) {
  auto doc = xml::ParseDocument(
                 "<r><a><b/><c/></a><a><b/></a><x/><a><c/><b/><b/></a>"
                 "<a><a><b/></a></a></r>")
                 .MoveValue();
  auto path = xpath::ParsePath("//a[/b]");
  auto tree = pattern::BuildFromPath(*path);
  ASSERT_TRUE(tree.ok());
  pattern::Decomposition d = pattern::Decompose(*tree);
  for (size_t nok = 0; nok < d.noks.size(); ++nok) {
    NokScanOperator ref(doc.get(), &*tree, &d.noks[nok]);
    std::string expected = DrainNodeAtATime(&ref, *doc);
    for (size_t rows : {1u, 7u, 64u, 4096u}) {
      NokScanOperator scan(doc.get(), &*tree, &d.noks[nok]);
      EXPECT_EQ(DrainBatched(&scan, *doc, rows), expected)
          << "nok=" << nok << " batch_rows=" << rows;
      // A rewound operator replays the identical batched stream.
      scan.Rewind();
      EXPECT_EQ(DrainBatched(&scan, *doc, rows), expected);
    }
  }
}

// -- Satellite (a): stats under mid-batch budget trips ------------------------

/// Drains the plan root batched under `guard`, returning what the consumer
/// actually received.
struct GovernedDrain {
  uint64_t rows = 0;
  uint64_t cells = 0;
};

GovernedDrain DrainGoverned(NestedListOperator* root, size_t batch_rows) {
  GovernedDrain got;
  Batch batch;
  while (root->GetNextBatch(&batch, batch_rows) > 0) {
    for (const NestedList& nl : batch.rows) {
      ++got.rows;
      got.cells += CountCells(nl);
    }
  }
  return got;
}

TEST(BatchExecTest, StatsMatchDeliveryAtEveryCancellationPoint) {
  // Budget sweep over [0, total]: every cell budget in range makes the
  // trip land on a different row, covering every batch boundary ±1 row for
  // every tested batch size. The audit invariant: matches/nl_cells must
  // equal the rows/cells the consumer received — the row that tripped the
  // budget was never delivered, so it must not be counted.
  auto doc = xml::ParseDocument(
                 "<r><a><b/></a><a><b/><b/></a><a/><a><b/></a><a><b/><b/>"
                 "<b/></a><a><b/></a><a><b/></a><a><b/><b/></a></r>")
                 .MoveValue();
  auto path = xpath::ParsePath("//a//b");
  auto tree = pattern::BuildFromPath(*path);
  ASSERT_TRUE(tree.ok());

  // Total charge of an untripped run: every operator in the plan charges
  // its emissions, so the budget sweep must cover the *cumulative* charge,
  // not just the root's delivered cells.
  util::ResourceGuard unlimited;
  unlimited.Arm();
  auto full = opt::PlanQuery(doc.get(), &*tree, VectorizedPlan(&unlimited));
  ASSERT_TRUE(full.ok());
  GovernedDrain total = DrainGoverned(full->trees[0].root.get(), 64);
  ASSERT_GT(total.rows, 4u);
  const uint64_t total_charge = unlimited.CellsCharged();
  ASSERT_GE(total_charge, total.cells);

  for (bool vectorize : {true, false}) {
    for (size_t batch_rows : {1u, 7u, 64u}) {
      for (uint64_t budget = 0; budget <= total_charge; ++budget) {
        util::QueryLimits limits;
        limits.max_nl_cells = budget;
        util::ResourceGuard guard(limits);
        guard.Arm();
        opt::PlanOptions po = VectorizedPlan(&guard);
        po.exec.vectorize = vectorize;
        auto plan = opt::PlanQuery(doc.get(), &*tree, po);
        ASSERT_TRUE(plan.ok());
        NestedListOperator* root = plan->trees[0].root.get();
        GovernedDrain got = DrainGoverned(root, batch_rows);
        EXPECT_LE(got.cells, budget);
        EXPECT_EQ(guard.Tripped(), budget < total_charge)
            << "budget=" << budget;
        // Finish() on a tripped plan must be safe and must not inflate the
        // handout counters past what was delivered.
        plan->FinishAll();
        ExecStats s = plan->trees[0].root->Stats();
        EXPECT_EQ(s.matches, got.rows)
            << "vectorize=" << vectorize << " batch_rows=" << batch_rows
            << " budget=" << budget;
        EXPECT_EQ(s.nl_cells, got.cells)
            << "vectorize=" << vectorize << " batch_rows=" << batch_rows
            << " budget=" << budget;
        if (budget < total_charge) {
          EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
        } else {
          EXPECT_EQ(got.rows, total.rows);
          EXPECT_TRUE(guard.status().ok());
        }
      }
    }
  }
}

TEST(BatchExecTest, ScanStatsMatchDeliveryUnderRowBudgetTrips) {
  // The same audit at the leaf: a bare NokScanOperator under cell budgets
  // tripping on every row, on both the vectorized chunk driver and the
  // node-at-a-time reference loop.
  auto doc = xml::ParseDocument(
                 "<r><a/><b/><a/><a/><c/><a/><a/><a/><b/><a/></r>")
                 .MoveValue();
  auto path = xpath::ParsePath("//a");
  auto tree = pattern::BuildFromPath(*path);
  ASSERT_TRUE(tree.ok());
  pattern::Decomposition d = pattern::Decompose(*tree);
  const pattern::NokTree* nok = &d.noks.back();

  NokScanOperator ungoverned(doc.get(), &*tree, nok);
  uint64_t total = 0;
  NestedList nl;
  while (ungoverned.GetNext(&nl)) total += CountCells(nl);
  ASSERT_GT(total, 0u);

  for (bool vectorize : {true, false}) {
    ExecOptions eo;
    eo.vectorize = vectorize;
    for (uint64_t budget = 0; budget <= total; ++budget) {
      util::QueryLimits limits;
      limits.max_nl_cells = budget;
      util::ResourceGuard guard(limits);
      guard.Arm();
      NokScanOperator scan(doc.get(), &*tree, nok, nullptr, &guard, nullptr,
                           nullptr, eo);
      GovernedDrain got = DrainGoverned(&scan, 3);
      EXPECT_EQ(scan.Stats().matches, got.rows)
          << "vectorize=" << vectorize << " budget=" << budget;
      EXPECT_EQ(scan.Stats().nl_cells, got.cells)
          << "vectorize=" << vectorize << " budget=" << budget;
      EXPECT_EQ(guard.Tripped(), budget < total);
    }
  }
}

}  // namespace
}  // namespace exec
}  // namespace blossomtree
