#include "datagen/datagen.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace blossomtree {
namespace datagen {
namespace {

GenOptions Small() {
  GenOptions o;
  o.scale = 0.02;
  o.seed = 42;
  return o;
}

class DatagenAllTest : public ::testing::TestWithParam<Dataset> {};

TEST_P(DatagenAllTest, ProducesNonEmptyDocument) {
  auto doc = GenerateDataset(GetParam(), Small());
  ASSERT_NE(doc, nullptr);
  EXPECT_GT(doc->NumElements(), 10u);
}

TEST_P(DatagenAllTest, DeterministicForSameSeed) {
  auto a = GenerateDataset(GetParam(), Small());
  auto b = GenerateDataset(GetParam(), Small());
  EXPECT_EQ(xml::Serialize(*a), xml::Serialize(*b));
}

TEST_P(DatagenAllTest, DifferentSeedsDiffer) {
  GenOptions o1 = Small();
  GenOptions o2 = Small();
  o2.seed = 43;
  auto a = GenerateDataset(GetParam(), o1);
  auto b = GenerateDataset(GetParam(), o2);
  EXPECT_NE(xml::Serialize(*a), xml::Serialize(*b));
}

TEST_P(DatagenAllTest, SerializedFormReparses) {
  auto doc = GenerateDataset(GetParam(), Small());
  std::string text = xml::Serialize(*doc);
  auto r = xml::ParseDocument(text);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->NumElements(), doc->NumElements());
  EXPECT_EQ((*r)->MaxDepth(), doc->MaxDepth());
}

TEST_P(DatagenAllTest, ScaleGrowsSize) {
  GenOptions small = Small();
  GenOptions larger = Small();
  larger.scale = 0.08;
  auto a = GenerateDataset(GetParam(), small);
  auto b = GenerateDataset(GetParam(), larger);
  EXPECT_GT(b->NumElements(), a->NumElements() * 2);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatagenAllTest,
                         ::testing::ValuesIn(AllDatasets()),
                         [](const auto& info) {
                           return std::string(DatasetName(info.param));
                         });

TEST(DatagenShapeTest, D1MatchesTable1Shape) {
  auto doc = GenerateDataset(Dataset::kD1Recursive, Small());
  EXPECT_TRUE(doc->IsRecursive());
  EXPECT_EQ(doc->MaxDepth(), 8u);
  EXPECT_GT(doc->AvgDepth(), 6.0);
  EXPECT_LE(doc->tags().size(), 8u);
  EXPECT_GE(doc->tags().size(), 7u);
}

TEST(DatagenShapeTest, D2MatchesTable1Shape) {
  auto doc = GenerateDataset(Dataset::kD2Address, Small());
  EXPECT_FALSE(doc->IsRecursive());
  EXPECT_EQ(doc->MaxDepth(), 3u);
  EXPECT_EQ(doc->tags().size(), 7u);
}

TEST(DatagenShapeTest, D3MatchesTable1Shape) {
  GenOptions o = Small();
  o.scale = 0.1;  // Enough items for all optional blocks to occur.
  auto doc = GenerateDataset(Dataset::kD3Catalog, o);
  EXPECT_FALSE(doc->IsRecursive());
  EXPECT_EQ(doc->MaxDepth(), 8u);
  EXPECT_GT(doc->AvgDepth(), 4.0);
  EXPECT_LT(doc->AvgDepth(), 6.0);
  EXPECT_GE(doc->tags().size(), 45u);
  EXPECT_LE(doc->tags().size(), 55u);
}

TEST(DatagenShapeTest, D4MatchesTable1Shape) {
  GenOptions o = Small();
  o.scale = 0.1;
  auto doc = GenerateDataset(Dataset::kD4Treebank, o);
  EXPECT_TRUE(doc->IsRecursive());
  EXPECT_GT(doc->MaxDepth(), 15u);
  EXPECT_LE(doc->MaxDepth(), 36u);
  EXPECT_GT(doc->AvgDepth(), 5.0);
}

TEST(DatagenShapeTest, D4FullScaleTagCount) {
  GenOptions o;
  o.scale = 1.0;
  auto doc = GenerateDataset(Dataset::kD4Treebank, o);
  EXPECT_GE(doc->tags().size(), 240u);
  EXPECT_LE(doc->tags().size(), 260u);
}

TEST(DatagenShapeTest, D5MatchesTable1Shape) {
  GenOptions o = Small();
  o.scale = 0.1;
  auto doc = GenerateDataset(Dataset::kD5Dblp, o);
  EXPECT_FALSE(doc->IsRecursive());
  EXPECT_GE(doc->MaxDepth(), 3u);
  EXPECT_LE(doc->MaxDepth(), 6u);
  EXPECT_GE(doc->tags().size(), 30u);
  EXPECT_LE(doc->tags().size(), 38u);
  EXPECT_LT(doc->AvgDepth(), 4.0);
}

TEST(DatagenShapeTest, D5HasQueriedTags) {
  auto doc = GenerateDataset(Dataset::kD5Dblp, Small());
  for (const char* tag :
       {"phdthesis", "www", "proceedings", "author", "school", "editor",
        "url", "year", "title"}) {
    EXPECT_NE(doc->tags().Lookup(tag), xml::kNullTag) << tag;
  }
}

TEST(DatagenStatsTest, ComputeStatsFillsRow) {
  auto doc = GenerateDataset(Dataset::kD2Address, Small());
  DatasetStats s = ComputeStats(*doc, "d2");
  EXPECT_EQ(s.name, "d2");
  EXPECT_FALSE(s.recursive);
  EXPECT_EQ(s.num_nodes, doc->NumElements());
  EXPECT_EQ(s.max_depth, 3u);
  EXPECT_EQ(s.num_tags, 7u);
  EXPECT_GT(s.xml_bytes, 1000u);
  EXPECT_GT(s.tree_bytes, 0u);
}

TEST(DatagenStatsTest, DatasetNames) {
  EXPECT_STREQ(DatasetName(Dataset::kD1Recursive), "d1");
  EXPECT_STREQ(DatasetName(Dataset::kD5Dblp), "d5");
  EXPECT_EQ(AllDatasets().size(), 5u);
}

}  // namespace
}  // namespace datagen
}  // namespace blossomtree
