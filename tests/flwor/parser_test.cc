#include "flwor/parser.h"

#include <gtest/gtest.h>

namespace blossomtree {
namespace flwor {
namespace {

// The paper's Example 1 query, verbatim (modulo whitespace).
constexpr const char* kExample1 = R"(
<bib>
{
for $book1 in doc("bib.xml")//book,
    $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return
  <book-pair>
    { $book1/title }
    { $book2/title }
  </book-pair>
}
</bib>
)";

std::unique_ptr<Expr> Parse(std::string_view q) {
  auto r = ParseQuery(q);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : nullptr;
}

TEST(FlworParserTest, Example1Structure) {
  auto e = Parse(kExample1);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->kind, Expr::Kind::kConstructor);
  EXPECT_EQ(e->ctor->name, "bib");
  ASSERT_EQ(e->ctor->items.size(), 1u);
  ASSERT_EQ(e->ctor->items[0].kind, ConstructorItem::Kind::kExpr);

  const Expr& inner = *e->ctor->items[0].expr;
  ASSERT_EQ(inner.kind, Expr::Kind::kFlwor);
  const Flwor& f = *inner.flwor;

  ASSERT_EQ(f.bindings.size(), 4u);
  EXPECT_EQ(f.bindings[0].kind, Binding::Kind::kFor);
  EXPECT_EQ(f.bindings[0].var, "book1");
  EXPECT_EQ(f.bindings[0].path.document, "bib.xml");
  EXPECT_EQ(f.bindings[1].kind, Binding::Kind::kFor);
  EXPECT_EQ(f.bindings[1].var, "book2");
  EXPECT_EQ(f.bindings[2].kind, Binding::Kind::kLet);
  EXPECT_EQ(f.bindings[2].var, "aut1");
  EXPECT_EQ(f.bindings[2].path.variable, "book1");
  EXPECT_EQ(f.bindings[3].kind, Binding::Kind::kLet);

  ASSERT_NE(f.where, nullptr);
  ASSERT_EQ(f.where->kind, BoolExpr::Kind::kAnd);

  ASSERT_NE(f.ret, nullptr);
  ASSERT_EQ(f.ret->kind, Expr::Kind::kConstructor);
  EXPECT_EQ(f.ret->ctor->name, "book-pair");
  EXPECT_EQ(f.ret->ctor->items.size(), 2u);
}

TEST(FlworParserTest, Example1WhereConjuncts) {
  auto e = Parse(kExample1);
  const Flwor& f = *e->ctor->items[0].expr->flwor;
  // ((a << b and not(=)) and deep-equal) — left-assoc 'and'.
  const BoolExpr& top = *f.where;
  ASSERT_EQ(top.kind, BoolExpr::Kind::kAnd);
  const BoolExpr& de = *top.children[1];
  EXPECT_EQ(de.kind, BoolExpr::Kind::kCompare);
  EXPECT_EQ(de.op, WhereOp::kDeepEqual);
  EXPECT_EQ(de.left.path.variable, "aut1");
  EXPECT_EQ(de.right.path.variable, "aut2");

  const BoolExpr& left = *top.children[0];
  ASSERT_EQ(left.kind, BoolExpr::Kind::kAnd);
  const BoolExpr& lt = *left.children[0];
  EXPECT_EQ(lt.op, WhereOp::kDocBefore);
  EXPECT_EQ(lt.left.path.variable, "book1");
  const BoolExpr& nt = *left.children[1];
  ASSERT_EQ(nt.kind, BoolExpr::Kind::kNot);
  EXPECT_EQ(nt.children[0]->op, WhereOp::kEq);
  EXPECT_EQ(nt.children[0]->left.path.ToString(), "$book1/title");
}

TEST(FlworParserTest, BarePathQuery) {
  auto e = Parse("//a[//b]//c");
  ASSERT_EQ(e->kind, Expr::Kind::kPath);
  EXPECT_EQ(e->path.steps.size(), 2u);
}

TEST(FlworParserTest, SimpleForReturn) {
  auto e = Parse("for $x in /a/b return $x/c");
  ASSERT_EQ(e->kind, Expr::Kind::kFlwor);
  const Flwor& f = *e->flwor;
  ASSERT_EQ(f.bindings.size(), 1u);
  EXPECT_EQ(f.where, nullptr);
  ASSERT_EQ(f.ret->kind, Expr::Kind::kPath);
  EXPECT_EQ(f.ret->path.ToString(), "$x/c");
}

TEST(FlworParserTest, LetOnly) {
  auto e = Parse("let $x := //a return $x");
  ASSERT_EQ(e->kind, Expr::Kind::kFlwor);
  EXPECT_EQ(e->flwor->bindings[0].kind, Binding::Kind::kLet);
}

TEST(FlworParserTest, OrderBy) {
  auto e = Parse("for $x in //a order by $x/k return $x");
  ASSERT_TRUE(e->flwor->order_by.has_value());
  EXPECT_EQ(e->flwor->order_by->ToString(), "$x/k");
  EXPECT_FALSE(e->flwor->order_descending);
}

TEST(FlworParserTest, OrderByDescending) {
  auto e = Parse("for $x in //a order by $x/k descending return $x");
  EXPECT_TRUE(e->flwor->order_descending);
}

TEST(FlworParserTest, WhereLiteralComparison) {
  auto e = Parse("for $x in //a where $x/b = \"v\" return $x");
  const BoolExpr& w = *e->flwor->where;
  EXPECT_EQ(w.kind, BoolExpr::Kind::kCompare);
  EXPECT_EQ(w.op, WhereOp::kEq);
  EXPECT_EQ(w.right.kind, Operand::Kind::kLiteral);
  EXPECT_EQ(w.right.literal, "v");
}

TEST(FlworParserTest, WhereNumericLiteral) {
  auto e = Parse("for $x in //a where $x/b = 42 return $x");
  EXPECT_EQ(e->flwor->where->right.literal, "42");
}

TEST(FlworParserTest, WhereOr) {
  auto e = Parse("for $x in //a where $x/b = 1 or $x/b = 2 return $x");
  EXPECT_EQ(e->flwor->where->kind, BoolExpr::Kind::kOr);
}

TEST(FlworParserTest, WhereIsAndIsnot) {
  auto e = Parse("for $x in //a, $y in //b where $x is $y return $x");
  EXPECT_EQ(e->flwor->where->op, WhereOp::kIs);
  auto e2 = Parse("for $x in //a, $y in //b where $x isnot $y return $x");
  ASSERT_EQ(e2->flwor->where->kind, BoolExpr::Kind::kNot);
  EXPECT_EQ(e2->flwor->where->children[0]->op, WhereOp::kIs);
}

TEST(FlworParserTest, WhereDocAfter) {
  auto e = Parse("for $x in //a, $y in //a where $x >> $y return $x");
  EXPECT_EQ(e->flwor->where->op, WhereOp::kDocAfter);
}

TEST(FlworParserTest, NestedConstructors) {
  auto e = Parse("for $x in //a return <r><inner>text</inner>{ $x }</r>");
  const Constructor& c = *e->flwor->ret->ctor;
  ASSERT_EQ(c.items.size(), 2u);
  EXPECT_EQ(c.items[0].kind, ConstructorItem::Kind::kElement);
  EXPECT_EQ(c.items[0].expr->ctor->name, "inner");
  EXPECT_EQ(c.items[0].expr->ctor->items[0].kind,
            ConstructorItem::Kind::kText);
  EXPECT_EQ(c.items[0].expr->ctor->items[0].text, "text");
  EXPECT_EQ(c.items[1].kind, ConstructorItem::Kind::kExpr);
}

TEST(FlworParserTest, ConstructorWithAttributes) {
  auto e = Parse(R"(<r kind="x">{ //a }</r>)");
  ASSERT_EQ(e->kind, Expr::Kind::kConstructor);
  ASSERT_EQ(e->ctor->attributes.size(), 1u);
  EXPECT_EQ(e->ctor->attributes[0].first, "kind");
  EXPECT_EQ(e->ctor->attributes[0].second, "x");
}

TEST(FlworParserTest, SelfClosingConstructor) {
  auto e = Parse("<empty/>");
  ASSERT_EQ(e->kind, Expr::Kind::kConstructor);
  EXPECT_TRUE(e->ctor->items.empty());
}

TEST(FlworParserTest, MultipleForClauses) {
  auto e = Parse(
      "for $a in //x for $b in //y where $a << $b return <p>{ $a }</p>");
  EXPECT_EQ(e->flwor->bindings.size(), 2u);
}

// -- Errors -------------------------------------------------------------------

TEST(FlworParserTest, ErrorMissingReturn) {
  EXPECT_FALSE(ParseQuery("for $x in //a").ok());
}

TEST(FlworParserTest, ErrorMissingIn) {
  EXPECT_FALSE(ParseQuery("for $x //a return $x").ok());
}

TEST(FlworParserTest, ErrorBadVariable) {
  EXPECT_FALSE(ParseQuery("for x in //a return x").ok());
}

TEST(FlworParserTest, ErrorUnbalancedConstructor) {
  EXPECT_FALSE(ParseQuery("<a>{ //b }</c>").ok());
}

TEST(FlworParserTest, ErrorUnterminatedEmbedded) {
  EXPECT_FALSE(ParseQuery("<a>{ //b </a>").ok());
}

TEST(FlworParserTest, ErrorTrailingInput) {
  EXPECT_FALSE(ParseQuery("//a extra").ok());
}

TEST(FlworParserTest, ErrorWhereWithoutComparison) {
  EXPECT_FALSE(ParseQuery("for $x in //a where return $x").ok());
}

// Regression (fuzz corpus: flwor/deep_parens.txt): ~100k-deep nesting once
// recursed ParseBool/ParsePrimary off the stack; the depth guard now
// rejects it with a clean error.
TEST(FlworParserTest, DeeplyNestedParensRejectedNotCrash) {
  const size_t kDepth = 100'000;
  std::string q = "for $x in /a where ";
  q.append(kDepth, '(');
  q += "$x = \"1\"";
  q.append(kDepth, ')');
  q += " return $x";
  auto r = ParseQuery(q);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("depth"), std::string::npos)
      << r.status().ToString();
}

TEST(FlworParserTest, NestingWithinDepthLimitParses) {
  std::string q = "for $x in /a where ";
  q.append(50, '(');
  q += "$x = \"1\"";
  q.append(50, ')');
  q += " return $x";
  auto r = ParseQuery(q);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(FlworParserTest, InputSizeLimitRejectsOversizedQuery) {
  util::ParseLimits limits;
  limits.max_input_bytes = 8;
  auto r = ParseQuery("for $x in /a return $x", limits);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace flwor
}  // namespace blossomtree
