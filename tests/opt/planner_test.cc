#include "opt/planner.h"

#include <gtest/gtest.h>

#include "pattern/builder.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace opt {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

pattern::BlossomTree Tree(std::string_view query) {
  auto p = xpath::ParsePath(query);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto t = pattern::BuildFromPath(*p);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.MoveValue();
}

std::vector<xml::NodeId> Eval(const xml::Document& doc,
                              std::string_view query,
                              const PlanOptions& opts = {}) {
  pattern::BlossomTree t = Tree(query);
  auto r = EvaluatePathQuery(&doc, &t, opts);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status().ToString();
  return r.ok() ? r.MoveValue() : std::vector<xml::NodeId>{};
}

TEST(PlannerTest, AutoPicksPipelinedOnNonRecursive) {
  auto doc = Parse("<r><a><b/></a></r>");
  pattern::BlossomTree t = Tree("//a//b");
  auto plan = PlanQuery(doc.get(), &t);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen, JoinStrategy::kPipelined);
  EXPECT_NE(plan->Explain().find("PipelinedDescJoin"), std::string::npos);
}

TEST(PlannerTest, AutoPicksBnljOnRecursive) {
  auto doc = Parse("<r><a><a><b/></a></a></r>");
  pattern::BlossomTree t = Tree("//a//b");
  auto plan = PlanQuery(doc.get(), &t);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen, JoinStrategy::kBoundedNestedLoop);
  EXPECT_NE(plan->Explain().find("BoundedNestedLoopJoin"),
            std::string::npos);
}

TEST(PlannerTest, AutoUsesPerTagRecursion) {
  // The document is recursive (nested x's), but the queried tags a and b
  // never nest → the fine-grained rule still picks the pipelined join.
  auto doc = Parse("<r><x><x><a><b/></a></x></x><a><c/></a></r>");
  ASSERT_TRUE(doc->IsRecursive());
  pattern::BlossomTree t = Tree("//a//b");
  auto plan = PlanQuery(doc.get(), &t);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen, JoinStrategy::kPipelined);
  // And the result is still correct.
  EXPECT_EQ(Eval(*doc, "//a//b").size(), 1u);
}

TEST(PlannerTest, AutoMixedStrategies) {
  // a nests (BNLJ for a//b), but b does not (PL for b//c): a mixed plan.
  auto doc = Parse("<r><a><a><b><c/></b></a></a></r>");
  pattern::BlossomTree t = Tree("//a//b//c");
  auto plan = PlanQuery(doc.get(), &t);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->chosen, JoinStrategy::kAuto);
  EXPECT_NE(plan->Explain().find("BoundedNestedLoopJoin(a // b"),
            std::string::npos);
  EXPECT_NE(plan->Explain().find("PipelinedDescJoin(b // c"),
            std::string::npos);
  EXPECT_EQ(Eval(*doc, "//a//b//c").size(), 1u);
}

TEST(PlannerTest, AutoConservativeOnWildcards) {
  // Wildcard outer: nesting cannot be bounded per tag → BNLJ.
  auto doc = Parse("<r><x><y><b/></y></x></r>");
  pattern::BlossomTree t = Tree("//*//b");
  auto plan = PlanQuery(doc.get(), &t);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->Explain().find("BoundedNestedLoopJoin"),
            std::string::npos);
}

TEST(PlannerTest, TrivialVirtualRootIsElided) {
  auto doc = Parse("<r><a/></r>");
  pattern::BlossomTree t = Tree("//a");
  auto plan = PlanQuery(doc.get(), &t);
  ASSERT_TRUE(plan.ok());
  // One pattern tree, a single NoK scan, no joins.
  ASSERT_EQ(plan->trees.size(), 1u);
  EXPECT_EQ(plan->trees[0].scans.size(), 1u);
  EXPECT_EQ(plan->Explain().find("Join"), std::string::npos);
}

TEST(PlannerTest, LocalPathKeepsVirtualRootNok) {
  auto doc = Parse("<a><b/></a>");
  auto out = Eval(*doc, "/a/b");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(PlannerTest, ChainQuery) {
  auto doc = Parse("<r><a><b><c/></b></a><a><b/></a><c/></r>");
  auto out = Eval(*doc, "//a//b//c");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(doc->TagName(out[0]), "c");
}

TEST(PlannerTest, BranchingQuery) {
  auto doc = Parse(
      "<r><a><b/><c/><d/></a><a><b/><c/></a><a><b/><c/><x><d/></x></a></r>");
  auto out = Eval(*doc, "//a[//b][//c][//d]");
  EXPECT_EQ(out.size(), 2u);
}

TEST(PlannerTest, ForcedStrategiesAgree) {
  auto doc = Parse(
      "<r><a><b/><x><b/><c/></x></a><a><c/></a><a><b/><c/></a></r>");
  PlanOptions pl;
  pl.strategy = JoinStrategy::kPipelined;
  PlanOptions nl;
  nl.strategy = JoinStrategy::kBoundedNestedLoop;
  for (const char* q : {"//a//b", "//a[//b]//c", "//a//b[//c]"}) {
    EXPECT_EQ(Eval(*doc, q, pl), Eval(*doc, q, nl)) << q;
  }
}

TEST(PlannerTest, BnljHandlesRecursiveChains) {
  auto doc = Parse("<a><a><b><b/></b></a><b/></a>");
  auto out = Eval(*doc, "//a//b//b");
  // b@3 is the only b nested under another b (which is under an a).
  ASSERT_EQ(out.size(), 1u);
}

TEST(PlannerTest, MergedScanProducesSameResults) {
  auto doc = Parse(
      "<r><a><b/><c/></a><a><b/></a><a><x><b/></x><c/></a></r>");
  PlanOptions merged;
  merged.strategy = JoinStrategy::kPipelined;
  merged.merge_nok_scans = true;
  PlanOptions plain;
  plain.strategy = JoinStrategy::kPipelined;
  for (const char* q : {"//a//b", "//a[//b][//c]", "//a[//c]//b"}) {
    EXPECT_EQ(Eval(*doc, q, merged), Eval(*doc, q, plain)) << q;
  }
}

TEST(PlannerTest, MergedScanUsesOnePass) {
  auto doc = Parse("<r><a><b/></a><a><c/></a></r>");
  pattern::BlossomTree t = Tree("//a[//b]//c");
  PlanOptions opts;
  opts.strategy = JoinStrategy::kPipelined;
  opts.merge_nok_scans = true;
  auto plan = PlanQuery(doc.get(), &t, opts);
  ASSERT_TRUE(plan.ok());
  ASSERT_NE(plan->merged_scan, nullptr);
  // One pass over the 5 nodes, not 3 (one per NoK).
  EXPECT_EQ(plan->merged_scan->NodesScanned(), doc->NumNodes());
  EXPECT_TRUE(plan->trees[0].scans.empty());
}

TEST(PlannerTest, ScanMetricsExposed) {
  auto doc = Parse("<r><a><b/></a></r>");
  pattern::BlossomTree t = Tree("//a//b");
  auto plan = PlanQuery(doc.get(), &t);
  ASSERT_TRUE(plan.ok());
  nestedlist::NestedList nl;
  while (plan->trees[0].root->GetNext(&nl)) {
  }
  EXPECT_GT(plan->trees[0].TotalNodesScanned(), 0u);
}

TEST(PlannerTest, ValueConstraintQuery) {
  auto doc = Parse("<r><a><k>x</k></a><a><k>y</k></a></r>");
  auto out = Eval(*doc, "//a[//k = \"y\"]");
  ASSERT_EQ(out.size(), 1u);
}

TEST(PlannerTest, UnfinalizedTreeRejected) {
  auto doc = Parse("<r/>");
  pattern::BlossomTree t;
  t.AddRoot("~");
  auto plan = PlanQuery(doc.get(), &t);
  EXPECT_FALSE(plan.ok());
}

}  // namespace
}  // namespace opt
}  // namespace blossomtree
