#include "opt/cost_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "datagen/datagen.h"
#include "pattern/builder.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace opt {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

pattern::BlossomTree Tree(std::string_view query) {
  auto p = xpath::ParsePath(query);
  EXPECT_TRUE(p.ok());
  auto t = pattern::BuildFromPath(*p);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.MoveValue();
}

TEST(CostModelTest, TagCounts) {
  auto doc = Parse("<r><a/><a/><b/></r>");
  CostModel model(doc.get());
  EXPECT_DOUBLE_EQ(model.TagCount("a"), 2.0);
  EXPECT_DOUBLE_EQ(model.TagCount("b"), 1.0);
  EXPECT_DOUBLE_EQ(model.TagCount("zzz"), 0.0);
  EXPECT_DOUBLE_EQ(model.TagCount("*"), 4.0);
}

TEST(CostModelTest, AvgSubtreeSize) {
  auto doc = Parse("<r><a><x/><y/></a><a/></r>");
  CostModel model(doc.get());
  // a subtrees: 3 nodes and 1 node → avg 2.
  EXPECT_DOUBLE_EQ(model.AvgSubtreeSize("a"), 2.0);
  EXPECT_DOUBLE_EQ(model.AvgSubtreeSize("x"), 1.0);
}

TEST(CostModelTest, RareTagEstimatesLower) {
  datagen::GenOptions o;
  o.scale = 0.05;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  CostModel model(doc.get());
  pattern::BlossomTree rare = Tree("//phdthesis");
  pattern::BlossomTree common = Tree("//author");
  EXPECT_LT(model.EstimateResult(rare), model.EstimateResult(common));
}

TEST(CostModelTest, PredicateReducesEstimate) {
  datagen::GenOptions o;
  o.scale = 0.05;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  CostModel model(doc.get());
  pattern::BlossomTree plain = Tree("//www");
  pattern::BlossomTree filtered = Tree("//www[//editor]");
  EXPECT_LE(model.EstimateResult(filtered), model.EstimateResult(plain));
}

TEST(CostModelTest, AbsentTagEstimatesZero) {
  auto doc = Parse("<r><a/></r>");
  CostModel model(doc.get());
  pattern::BlossomTree t = Tree("//nothing//here");
  EXPECT_DOUBLE_EQ(model.EstimateResult(t), 0.0);
}

TEST(CostModelTest, MergedScanCheaperIo) {
  datagen::GenOptions o;
  o.scale = 0.05;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD3Catalog, o);
  CostModel model(doc.get());
  pattern::BlossomTree t = Tree("//item[//author][//publisher]//title");
  CostEstimate merged = model.EstimatePipelined(t, true);
  CostEstimate separate = model.EstimatePipelined(t, false);
  EXPECT_LT(merged.io_cost, separate.io_cost);
}

TEST(CostModelTest, AdviceGatesPipelinedOnRecursion) {
  // a nests → pipelined unsafe; advice must not pick it.
  auto doc = Parse("<r><a><a><b/></a></a></r>");
  pattern::BlossomTree t = Tree("//a//b");
  PlanAdvice advice = AdvisePlan(*doc, t);
  EXPECT_FALSE(advice.pipelined_safe);
  EXPECT_NE(advice.engine, PlanAdvice::Engine::kPipelined);
  EXPECT_NE(advice.rationale.find("unsafe"), std::string::npos);
}

TEST(CostModelTest, AdvicePrefersTwigStackForSelectiveQueries) {
  // Large document, tiny tag streams: TwigStack's indexed streams beat a
  // full sequential scan (the paper's §5.2 observation).
  datagen::GenOptions o;
  o.scale = 0.2;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  pattern::BlossomTree t = Tree("//phdthesis//school");
  PlanAdvice advice = AdvisePlan(*doc, t);
  EXPECT_EQ(advice.engine, PlanAdvice::Engine::kTwigStack)
      << advice.rationale;
}

TEST(CostModelTest, AdviceFieldsPopulated) {
  auto doc = Parse("<r><a><b/></a></r>");
  pattern::BlossomTree t = Tree("//a//b");
  PlanAdvice advice = AdvisePlan(*doc, t);
  EXPECT_GT(advice.pipelined.Total(), 0.0);
  EXPECT_GT(advice.bnlj.Total(), 0.0);
  EXPECT_GT(advice.twigstack.Total(), 0.0);
  EXPECT_FALSE(advice.rationale.empty());
  EXPECT_TRUE(advice.pipelined_safe);
}

TEST(CostModelTest, CalibrationNoEstimatesYieldsEmptyReport) {
  auto doc = Parse("<r><a><b/></a><a/></r>");
  pattern::BlossomTree t = Tree("//a/b");
  auto plan = PlanQuery(doc.get(), &t);  // estimate_cardinalities off
  ASSERT_TRUE(plan.ok());
  plan->FinishAll();
  CalibrationReport report = CheckCalibration(*plan);
  EXPECT_TRUE(report.entries.empty());
  EXPECT_EQ(report.num_flagged, 0u);
}

TEST(CostModelTest, CalibrationExactForBareTagScan) {
  // //b estimate = TagCount(b), actual = 3 → ratio 1, nothing flagged.
  auto doc = Parse("<r><b/><a><b/></a><b/><c/></r>");
  pattern::BlossomTree t = Tree("//b");
  PlanOptions opts;
  opts.estimate_cardinalities = true;
  auto plan = PlanQuery(doc.get(), &t, opts);
  ASSERT_TRUE(plan.ok());
  plan->FinishAll();
  CalibrationReport report = CheckCalibration(*plan);
  ASSERT_FALSE(report.entries.empty());
  EXPECT_EQ(report.num_flagged, 0u) << report.ToString();
  for (const CalibrationEntry& e : report.entries) {
    EXPECT_DOUBLE_EQ(e.ratio, 1.0) << e.label;
    EXPECT_FALSE(e.flagged);
  }
}

TEST(CostModelTest, CalibrationFlagsLargeDeviations) {
  // Every <b> carries the value, so the kValueSelectivity=0.1 estimate is
  // ~10x under the actual count. A tight tolerance must flag it.
  std::string xml = "<r>";
  for (int i = 0; i < 40; ++i) xml += "<b>x</b>";
  xml += "</r>";
  auto doc = Parse(xml);
  pattern::BlossomTree t = Tree("//b[.=\"x\"]");
  PlanOptions opts;
  opts.estimate_cardinalities = true;
  auto plan = PlanQuery(doc.get(), &t, opts);
  ASSERT_TRUE(plan.ok());
  plan->FinishAll();
  CalibrationReport tight = CheckCalibration(*plan, 2.0);
  EXPECT_GT(tight.num_flagged, 0u) << tight.ToString();
  EXPECT_NE(tight.ToString().find("FLAGGED"), std::string::npos);
  // Ratio semantics: symmetric, smoothed by +1 on both sides.
  const CalibrationEntry* scan = nullptr;
  for (const CalibrationEntry& e : tight.entries) {
    if (e.flagged) scan = &e;
  }
  ASSERT_NE(scan, nullptr);
  double act = static_cast<double>(scan->actual_rows);
  double expect = (std::max(scan->estimated_rows, act) + 1) /
                  (std::min(scan->estimated_rows, act) + 1);
  EXPECT_DOUBLE_EQ(scan->ratio, expect);
}

TEST(CostModelTest, EngineNames) {
  EXPECT_STREQ(EngineToString(PlanAdvice::Engine::kPipelined), "pipelined");
  EXPECT_STREQ(EngineToString(PlanAdvice::Engine::kBnlj),
               "bounded-nested-loop");
  EXPECT_STREQ(EngineToString(PlanAdvice::Engine::kTwigStack), "twigstack");
}

}  // namespace
}  // namespace opt
}  // namespace blossomtree
