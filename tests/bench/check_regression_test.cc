// Unit tests for the perf-regression gate: parsing BENCH_*.json artifacts
// into comparable per-query counters and diffing two runs.

#include "regression_check.h"

#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace blossomtree {
namespace bench {
namespace {

Result<BenchRun> RunFromString(const std::string& json) {
  auto parsed = util::ParseJson(json);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return BenchRunFromJson(*parsed);
}

/// One-query artifact with the given summed counter values.
std::string Artifact(uint64_t nodes, uint64_t rows, double wall_ms = 1.0,
                     const char* query = "//a//b") {
  return std::string("{\"bench\": \"t\", \"schema_version\": 2, ") +
         "\"environment\": {\"build\": \"Release\", \"threads\": 2}, " +
         "\"profiles\": [{\"dataset\": \"d1\", \"id\": \"q1\", " +
         "\"latency_ns\": {\"count\": 3}, " +
         "\"profile\": {\"query\": \"" + query + "\", " +
         "\"total_wall_ms\": " + std::to_string(wall_ms) + ", " +
         "\"operators\": [" +
         "{\"label\": \"A\", \"nodes_scanned\": " + std::to_string(nodes) +
         ", \"rows\": " + std::to_string(rows) + "}]}}]}";
}

TEST(BenchRunFromJsonTest, ParsesArtifactAndSumsOperators) {
  auto run = RunFromString(
      R"({"bench": "t2", "schema_version": 2, "profiles": [
            {"dataset": "d1", "id": "q1",
             "profile": {"query": "//x", "total_wall_ms": 2.5,
                         "operators": [{"nodes_scanned": 10, "rows": 3},
                                       {"nodes_scanned": 5, "rows": 2,
                                        "comparisons": 7}]}}]})");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->bench, "t2");
  EXPECT_EQ(run->schema_version, 2);
  ASSERT_EQ(run->queries.size(), 1u);
  const QueryCounters& c = run->queries.begin()->second;
  EXPECT_EQ(c.nodes_scanned, 15u);
  EXPECT_EQ(c.rows, 5u);
  EXPECT_EQ(c.comparisons, 7u);
  EXPECT_DOUBLE_EQ(c.total_wall_ms, 2.5);
  // The key carries the context fields and query text; the latency
  // histogram and profile body stay out of it.
  const std::string& key = run->queries.begin()->first;
  EXPECT_NE(key.find("dataset=d1"), std::string::npos) << key;
  EXPECT_NE(key.find("id=q1"), std::string::npos) << key;
  EXPECT_NE(key.find("//x"), std::string::npos) << key;
}

TEST(BenchRunFromJsonTest, KeyIgnoresFieldOrderAndLatency) {
  auto a = RunFromString(
      R"({"bench": "t", "schema_version": 2, "profiles": [
            {"dataset": "d1", "id": "q1", "latency_ns": {"count": 3},
             "profile": {"query": "//x", "operators": []}}]})");
  auto b = RunFromString(
      R"({"bench": "t", "schema_version": 2, "profiles": [
            {"id": "q1", "dataset": "d1",
             "profile": {"query": "//x", "operators": []}}]})");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->queries.begin()->first, b->queries.begin()->first);
}

TEST(BenchRunFromJsonTest, RejectsNonArtifacts) {
  EXPECT_FALSE(RunFromString("[1, 2]").ok());
  EXPECT_FALSE(RunFromString("{\"bench\": \"t\"}").ok());  // No profiles.
  auto missing = LoadBenchRun("/nonexistent/BENCH_x.json");
  EXPECT_FALSE(missing.ok());
}

TEST(CompareRunsTest, IdenticalRunsPass) {
  auto base = RunFromString(Artifact(100, 10));
  auto cur = RunFromString(Artifact(100, 10, 5.0));  // Wall time differs.
  ASSERT_TRUE(base.ok() && cur.ok());
  RegressionReport report = CompareRuns(*base, *cur);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.queries_compared, 1);
  EXPECT_TRUE(report.warnings.empty());
}

TEST(CompareRunsTest, CounterGrowthFailsExactlyAtZeroTolerance) {
  auto base = RunFromString(Artifact(100, 10));
  auto cur = RunFromString(Artifact(101, 10));
  ASSERT_TRUE(base.ok() && cur.ok());
  RegressionReport report = CompareRuns(*base, *cur);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].find("nodes_scanned"), std::string::npos)
      << report.ToString();
  // The same growth passes under a 5% tolerance.
  RegressionOptions tolerant;
  tolerant.counter_tolerance = 0.05;
  EXPECT_TRUE(CompareRuns(*base, *cur, tolerant).ok());
}

TEST(CompareRunsTest, ImprovementWarnsButPasses) {
  auto base = RunFromString(Artifact(100, 10));
  auto cur = RunFromString(Artifact(60, 10));
  ASSERT_TRUE(base.ok() && cur.ok());
  RegressionReport report = CompareRuns(*base, *cur);
  EXPECT_TRUE(report.ok());
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("improved"), std::string::npos);
}

TEST(CompareRunsTest, MissingQueryFailsNewQueryWarns) {
  auto base = RunFromString(Artifact(100, 10, 1.0, "//old"));
  auto cur = RunFromString(Artifact(100, 10, 1.0, "//new"));
  ASSERT_TRUE(base.ok() && cur.ok());
  RegressionReport report = CompareRuns(*base, *cur);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].find("missing from current run"),
            std::string::npos);
  ASSERT_FALSE(report.warnings.empty());
  EXPECT_NE(report.warnings[0].find("new query"), std::string::npos);
}

TEST(CompareRunsTest, BenchAndSchemaMismatchesFailFast) {
  auto base = RunFromString(Artifact(100, 10));
  ASSERT_TRUE(base.ok());
  BenchRun other = *base;
  other.bench = "different";
  EXPECT_FALSE(CompareRuns(*base, other).ok());
  BenchRun old_schema = *base;
  old_schema.schema_version = 1;
  RegressionReport report = CompareRuns(*base, old_schema);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].find("schema_version"), std::string::npos);
}

TEST(CompareRunsTest, LatencyCheckIsOptInWithOwnTolerance) {
  auto base = RunFromString(Artifact(100, 10, 10.0));
  auto cur = RunFromString(Artifact(100, 10, 100.0));
  ASSERT_TRUE(base.ok() && cur.ok());
  // Off by default: a 10x wall-time growth is not a counter regression.
  EXPECT_TRUE(CompareRuns(*base, *cur).ok());
  RegressionOptions opts;
  opts.check_latency = true;  // Default tolerance 50%.
  RegressionReport report = CompareRuns(*base, *cur, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.failures[0].find("total_wall_ms"), std::string::npos);
  opts.latency_tolerance = 20.0;  // 10x fits under 21x.
  EXPECT_TRUE(CompareRuns(*base, *cur, opts).ok());
}

}  // namespace
}  // namespace bench
}  // namespace blossomtree
