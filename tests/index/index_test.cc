// Structural-index suite (DESIGN.md §14): DataGuide / posting-list /
// value-index construction, BTSI sidecar roundtrip, and the planner's
// cost-based access-path selection — index seeks must scan far fewer nodes
// than sequential scans while producing byte-identical results at every
// thread count, and DataGuide short-circuits must run with zero scans.

#include "index/structural_index.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exec/value_ops.h"
#include "index/btsi.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "storage/btsx2.h"
#include "storage/disk_store.h"
#include "util/thread_pool.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace index {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

pattern::BlossomTree Tree(std::string_view query) {
  auto p = xpath::ParsePath(query);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto t = pattern::BuildFromPath(*p);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.MoveValue();
}

std::vector<xml::NodeId> Eval(const xml::Document& doc,
                              std::string_view query,
                              const opt::PlanOptions& opts = {}) {
  pattern::BlossomTree t = Tree(query);
  auto r = opt::EvaluatePathQuery(&doc, &t, opts);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status().ToString();
  return r.ok() ? r.MoveValue() : std::vector<xml::NodeId>{};
}

/// Brute force the index is checked against: elements of `tag` whose
/// string-value CompareValues-equals `literal`.
std::vector<xml::NodeId> BruteEq(const xml::Document& doc,
                                 const std::string& tag,
                                 std::string_view literal) {
  std::vector<xml::NodeId> out;
  xml::TagId t = doc.tags().Lookup(tag);
  if (t == xml::kNullTag) return out;
  for (xml::NodeId n : doc.TagIndex(t)) {
    if (exec::CompareValues(doc.StringValue(n), xpath::CompareOp::kEq,
                            literal)) {
      out.push_back(n);
    }
  }
  return out;
}

// -- Construction ------------------------------------------------------------

TEST(StructuralIndexTest, BuildPostingsAndGuide) {
  auto doc = Parse("<r><a><b>x</b><b>y</b></a><c><b>z</b></c></r>");
  auto idx = StructuralIndex::Build(*doc);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->generation(), doc->generation());
  EXPECT_EQ(idx->num_nodes(), doc->NumNodes());
  EXPECT_EQ(idx->num_elements(), doc->NumElements());
  EXPECT_TRUE(idx->Matches(*doc));

  xml::TagId b = doc->tags().Lookup("b");
  ASSERT_NE(b, xml::kNullTag);
  EXPECT_EQ(idx->PostingCount(b), 3u);
  auto postings = idx->Postings(b);
  ASSERT_EQ(postings.size(), 3u);
  for (size_t i = 0; i < postings.size(); ++i) {
    EXPECT_EQ(postings[i].node, doc->TagIndex(b)[i]);
    EXPECT_EQ(postings[i].subtree_end, doc->SubtreeEnd(postings[i].node));
    if (i > 0) {
      EXPECT_LT(postings[i - 1].node, postings[i].node);
    }
  }

  // Guide: distinct root-to-element paths r, r/a, r/a/b, r/c, r/c/b plus
  // the super-root.
  EXPECT_EQ(idx->guide().size(), 6u);
  EXPECT_TRUE(
      idx->CanMatchPaths({pattern::NokPath{{"a", "b"}}}));
  EXPECT_TRUE(idx->CanMatchPaths({pattern::NokPath{{"c", "b"}}}));
  EXPECT_FALSE(idx->CanMatchPaths({pattern::NokPath{{"b", "a"}}}));
  EXPECT_FALSE(idx->CanMatchPaths({pattern::NokPath{{"a", "c"}}}));
  // Anchored forms: "~" pins the document root, "*" floats.
  EXPECT_TRUE(idx->CanMatchPaths({pattern::NokPath{{"~", "r", "a"}}}));
  EXPECT_FALSE(idx->CanMatchPaths({pattern::NokPath{{"~", "a"}}}));
  EXPECT_TRUE(idx->CanMatchPaths({pattern::NokPath{{"*", "b"}}}));

  EXPECT_FALSE(idx->Matches(*Parse("<r><a/></r>")));
}

TEST(StructuralIndexTest, EqualitySeekMatchesBruteForce) {
  // "07" and "7" are numerically equal under CompareValues; "x" is string
  // collation. The index must agree with the matcher's semantics exactly.
  auto doc = Parse(
      "<r><p>7</p><p>07</p><p> 7</p><p>8</p><p>x</p><q>7</q></r>");
  auto idx = StructuralIndex::Build(*doc);
  xml::TagId p = doc->tags().Lookup("p");
  for (const char* lit : {"7", "07", "8", "x", "y", ""}) {
    EqualitySeek seek = idx->SeekEquality(p, lit);
    ASSERT_TRUE(seek.usable) << lit;
    EXPECT_EQ(seek.nodes, BruteEq(*doc, "p", lit)) << lit;
    EXPECT_EQ(idx->CountEquality(p, lit),
              static_cast<double>(seek.nodes.size()))
        << lit;
  }
  // q has no overlong values: every probe stays answerable.
  EXPECT_TRUE(idx->SeekEquality(doc->tags().Lookup("q"), "x").usable);
}

TEST(StructuralIndexTest, OverlongValuesDisableOnlyNumericSeeks) {
  // One value past the 256-byte cap: numeric probes on the tag become
  // unanswerable (the unindexed value could still compare equal
  // numerically), but byte-equality probes stay exact — equal strings need
  // equal lengths, and every over-long value out-lengths any ≤-cap literal.
  std::string big(kMaxIndexedValueBytes + 10, '0');
  big += "7";  // Numerically 7, but 267 bytes long.
  auto doc = Parse("<r><p>7</p><p>" + big + "</p><p>xx</p></r>");
  auto idx = StructuralIndex::Build(*doc);
  xml::TagId p = doc->tags().Lookup("p");
  EXPECT_EQ(idx->Stats(p).overlong_values, 1u);
  EXPECT_FALSE(idx->SeekEquality(p, "7").usable);
  EXPECT_EQ(idx->CountEquality(p, "7"), -1.0);
  EqualitySeek str = idx->SeekEquality(p, "xx");
  ASSERT_TRUE(str.usable);
  EXPECT_EQ(str.nodes, BruteEq(*doc, "p", "xx"));
  // Over-cap literals are never answerable from the index.
  EXPECT_FALSE(idx->SeekEquality(p, big).usable);
}

// -- BTSI sidecar roundtrip --------------------------------------------------

TEST(StructuralIndexTest, BtsiRoundtrip) {
  auto doc = Parse(
      "<r><a><b>x</b><b>42</b></a><c>long-ish textual value</c><a/></r>");
  auto idx = StructuralIndex::Build(*doc);
  auto encoded = EncodeBtsi(*idx);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto back = DecodeBtsi(*encoded);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ((*back)->generation(), idx->generation());
  EXPECT_EQ((*back)->num_nodes(), idx->num_nodes());
  EXPECT_EQ((*back)->num_elements(), idx->num_elements());
  EXPECT_EQ((*back)->tag_names(), idx->tag_names());
  EXPECT_TRUE((*back)->Matches(*doc));
  ASSERT_EQ((*back)->guide().size(), idx->guide().size());
  for (size_t i = 0; i < idx->guide().size(); ++i) {
    EXPECT_EQ((*back)->guide()[i].tag, idx->guide()[i].tag);
    EXPECT_EQ((*back)->guide()[i].parent, idx->guide()[i].parent);
    EXPECT_EQ((*back)->guide()[i].count, idx->guide()[i].count);
  }
  EXPECT_EQ((*back)->raw_posting_offsets(), idx->raw_posting_offsets());
  ASSERT_EQ((*back)->raw_postings().size(), idx->raw_postings().size());
  for (size_t i = 0; i < idx->raw_postings().size(); ++i) {
    EXPECT_EQ((*back)->raw_postings()[i].node, idx->raw_postings()[i].node);
    EXPECT_EQ((*back)->raw_postings()[i].subtree_end,
              idx->raw_postings()[i].subtree_end);
    EXPECT_EQ((*back)->raw_postings()[i].level, idx->raw_postings()[i].level);
  }
  EXPECT_EQ((*back)->raw_value_pool(), idx->raw_value_pool());
  ASSERT_EQ((*back)->raw_values().size(), idx->raw_values().size());
  ASSERT_EQ((*back)->raw_numerics().size(), idx->raw_numerics().size());

  // The decoded index answers probes identically.
  xml::TagId b = doc->tags().Lookup("b");
  EXPECT_EQ((*back)->SeekEquality(b, "42").nodes,
            idx->SeekEquality(b, "42").nodes);
  EXPECT_TRUE((*back)->CanMatchPaths({pattern::NokPath{{"a", "b"}}}));
  EXPECT_FALSE((*back)->CanMatchPaths({pattern::NokPath{{"c", "b"}}}));
}

TEST(StructuralIndexTest, BtsiFileRoundtrip) {
  auto doc = Parse("<r><a>v</a><b/></r>");
  auto idx = StructuralIndex::Build(*doc);
  std::string path = ::testing::TempDir() + "/bt_index_roundtrip.btsi";
  Status st = WriteBtsi(*idx, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto back = LoadBtsi(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ((*back)->generation(), idx->generation());
  EXPECT_TRUE((*back)->Matches(*doc));
  std::remove(path.c_str());
}

// -- Planner access paths ----------------------------------------------------

/// ~40 section elements, 3 of them rare `fig` leaves, one with a matching
/// value — enough volume for the ≥10× seek-vs-scan separation.
std::string WideDoc() {
  std::string xml = "<r>";
  for (int i = 0; i < 40; ++i) {
    xml += "<sec><para>text " + std::to_string(i) + "</para></sec>";
  }
  xml += "<sec><fig>one</fig></sec><sec><fig>two</fig></sec>"
         "<sec><fig>one</fig></sec></r>";
  return xml;
}

TEST(IndexAccessPathTest, SeekByteIdenticalToScanAtEveryThreadCount) {
  auto doc = Parse(WideDoc());
  auto idx = StructuralIndex::Build(*doc);
  const char* queries[] = {"//fig", "//sec/fig", "//fig[.=\"one\"]",
                           "//sec[fig]", "/r/sec/para"};
  for (const char* q : queries) {
    auto baseline = Eval(*doc, q);  // No index, serial scan.
    for (unsigned threads : {1u, 2u, 4u}) {
      util::ThreadPool pool(threads);
      opt::PlanOptions with;
      with.index = idx.get();
      with.pool = threads > 1 ? &pool : nullptr;
      EXPECT_EQ(Eval(*doc, q, with), baseline)
          << q << " @" << threads << " threads";
    }
  }
}

TEST(IndexAccessPathTest, SeekScansAtLeastTenTimesFewerNodes) {
  auto doc = Parse(WideDoc());
  auto idx = StructuralIndex::Build(*doc);
  for (const char* q : {"//fig", "//fig[.=\"one\"]"}) {
    pattern::BlossomTree t = Tree(q);
    auto scan_plan = opt::PlanQuery(doc.get(), &t);
    ASSERT_TRUE(scan_plan.ok());
    scan_plan->FinishAll();
    opt::PlanOptions with;
    with.index = idx.get();
    auto seek_plan = opt::PlanQuery(doc.get(), &t, with);
    ASSERT_TRUE(seek_plan.ok());
    seek_plan->FinishAll();
    uint64_t scanned = 0, sought = 0;
    for (const auto& tp : scan_plan->trees) scanned += tp.TotalNodesScanned();
    for (const auto& tp : seek_plan->trees) sought += tp.TotalNodesScanned();
    EXPECT_NE(seek_plan->Explain().find("IndexSeek("), std::string::npos)
        << seek_plan->Explain();
    ASSERT_GT(sought, 0u) << q;
    EXPECT_GE(scanned, 10 * sought)
        << q << ": scan=" << scanned << " seek=" << sought;
  }
}

TEST(IndexAccessPathTest, GuideShortCircuitScansNothing) {
  auto doc = Parse(WideDoc());
  auto idx = StructuralIndex::Build(*doc);
  // Both tags exist, but no para ever has a fig child: the DataGuide
  // proves emptiness and the plan must not scan a single node.
  for (const char* q : {"//para/fig", "//zzz", "//fig/sec/para"}) {
    pattern::BlossomTree t = Tree(q);
    opt::PlanOptions with;
    with.index = idx.get();
    auto plan = opt::PlanQuery(doc.get(), &t, with);
    ASSERT_TRUE(plan.ok()) << q;
    EXPECT_NE(plan->Explain().find("IndexSeek("), std::string::npos) << q;
    EXPECT_NE(plan->Explain().find("empty"), std::string::npos)
        << q << "\n" << plan->Explain();
    plan->FinishAll();
    uint64_t scanned = 0;
    for (const auto& tp : plan->trees) scanned += tp.TotalNodesScanned();
    EXPECT_EQ(scanned, 0u) << q;
    EXPECT_TRUE(Eval(*doc, q, with).empty()) << q;
  }
}

TEST(IndexAccessPathTest, ExplainAnalyzeShowsSeekCounters) {
  auto doc = Parse(WideDoc());
  auto idx = StructuralIndex::Build(*doc);
  pattern::BlossomTree t = Tree("//fig");
  opt::PlanOptions with;
  with.index = idx.get();
  with.estimate_cardinalities = true;
  auto plan = opt::PlanQuery(doc.get(), &t, with);
  ASSERT_TRUE(plan.ok());
  plan->FinishAll();
  std::string analyze = plan->ExplainAnalyze();
  EXPECT_NE(analyze.find("IndexSeek(fig)"), std::string::npos) << analyze;
  // The seek reports its probes as both nodes_scanned and index_entries.
  ASSERT_EQ(plan->trees.size(), 1u);
  ASSERT_EQ(plan->trees[0].seeks.size(), 1u);
  exec::ExecStats stats = plan->trees[0].seeks[0]->Stats();
  EXPECT_EQ(stats.nodes_scanned, 3u);
  EXPECT_EQ(stats.index_entries, 3u);
  EXPECT_EQ(stats.matches, 3u);
}

TEST(IndexAccessPathTest, StaleIndexFallsBackToScan) {
  auto doc = Parse(WideDoc());
  auto other = Parse("<r><unrelated/></r>");
  auto stale = StructuralIndex::Build(*other);
  opt::PlanOptions with;
  with.index = stale.get();  // Structurally mismatched: must be ignored.
  auto baseline = Eval(*doc, "//fig");
  EXPECT_EQ(Eval(*doc, "//fig", with), baseline);
  pattern::BlossomTree t = Tree("//fig");
  auto plan = opt::PlanQuery(doc.get(), &t, with);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Explain().find("IndexSeek("), std::string::npos);
}

TEST(IndexAccessPathTest, MergedScanExcludesSeekNoKs) {
  auto doc = Parse(WideDoc());
  auto idx = StructuralIndex::Build(*doc);
  pattern::BlossomTree t = Tree("//sec//fig");
  opt::PlanOptions with;
  with.index = idx.get();
  with.merge_nok_scans = true;
  with.strategy = opt::JoinStrategy::kPipelined;
  auto plan = opt::PlanQuery(doc.get(), &t, with);
  ASSERT_TRUE(plan.ok());
  // On this document the frequent `sec` root is cheaper to scan (and stays
  // in the merged pass) while the rare `fig` root seeks — a mixed plan
  // where the merged probe set must exclude the seek NoK.
  ASSERT_NE(plan->merged_scan, nullptr) << plan->Explain();
  EXPECT_NE(plan->Explain().find("MergedNokView(sec)"), std::string::npos)
      << plan->Explain();
  EXPECT_NE(plan->Explain().find("IndexSeek(fig)"), std::string::npos)
      << plan->Explain();
  auto baseline = Eval(*doc, "//sec//fig");
  EXPECT_EQ(Eval(*doc, "//sec//fig", with), baseline);

  // And when every NoK seeks, the merged pass is skipped outright.
  pattern::BlossomTree t2 = Tree("//fig[.=\"one\"]");
  auto plan2 = opt::PlanQuery(doc.get(), &t2, with);
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(plan2->merged_scan, nullptr) << plan2->Explain();
}

// -- DiskStore sidecar wiring ------------------------------------------------

TEST(BtsiSidecarTest, DiskStoreLoadsGenerationMatchingSidecar) {
  auto doc = Parse(WideDoc());
  std::string path = ::testing::TempDir() + "/bt_index_corpus.btsx2";
  ASSERT_TRUE(storage::WriteBtsx2(*doc, path).ok());
  auto idx = StructuralIndex::Build(*doc);
  ASSERT_TRUE(WriteBtsi(*idx, BtsiSidecarPath(path)).ok());

  auto store = storage::DiskStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_NE((*store)->index(), nullptr);
  EXPECT_EQ((*store)->index()->generation(), (*store)->on_disk_generation());
  ASSERT_NE((*store)->document(), nullptr);
  EXPECT_TRUE((*store)->index()->Matches(*(*store)->document()));

  // The facade + sidecar pair answers queries identically to in-RAM scans.
  opt::PlanOptions with;
  with.index = (*store)->index();
  EXPECT_EQ(Eval(*(*store)->document(), "//fig", with),
            Eval(*doc, "//fig"));

  // Opt-out knob.
  storage::DiskStoreOptions no_index;
  no_index.load_index = false;
  auto bare = storage::DiskStore::Open(path, no_index);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ((*bare)->index(), nullptr);

  std::remove(BtsiSidecarPath(path).c_str());
  std::remove(path.c_str());
}

TEST(BtsiSidecarTest, StaleAndMissingSidecarsAreIgnored) {
  auto doc = Parse(WideDoc());
  std::string path = ::testing::TempDir() + "/bt_index_stale.btsx2";
  ASSERT_TRUE(storage::WriteBtsx2(*doc, path).ok());

  // No sidecar at all: open succeeds, index() is null.
  auto store = storage::DiskStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->index(), nullptr);

  // Sidecar from the *old* build, corpus re-ingested from a fresh parse
  // (new generation): the stale sidecar must be ignored, not served.
  auto idx = StructuralIndex::Build(*doc);
  ASSERT_TRUE(WriteBtsi(*idx, BtsiSidecarPath(path)).ok());
  auto fresh = Parse(WideDoc());
  ASSERT_NE(fresh->generation(), doc->generation());
  ASSERT_TRUE(storage::WriteBtsx2(*fresh, path).ok());
  auto reopened = storage::DiskStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->index(), nullptr);

  std::remove(BtsiSidecarPath(path).c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace index
}  // namespace blossomtree
