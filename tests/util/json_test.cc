#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace blossomtree {
namespace util {
namespace {

TEST(JsonTest, ParsesScalars) {
  auto v = ParseJson("42");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_number());
  EXPECT_DOUBLE_EQ(v->AsNumber(), 42.0);

  v = ParseJson("-3.5e2");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsNumber(), -350.0);

  v = ParseJson("true");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_bool());
  EXPECT_TRUE(v->AsBool());

  v = ParseJson("false");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->AsBool());

  v = ParseJson("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());

  v = ParseJson("\"hi\"");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_string());
  EXPECT_EQ(v->AsString(), "hi");
}

TEST(JsonTest, ParsesStringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\nd\te")");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsString(), "a\"b\\c\nd\te");
}

TEST(JsonTest, ParsesNestedObject) {
  auto v = ParseJson(
      R"({"bench": "t2", "schema_version": 2,
          "environment": {"threads": 4, "datasets": ["d1", "d2"]},
          "profiles": [{"rows": 10}, {"rows": 20}]})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->StringOr("bench", ""), "t2");
  EXPECT_DOUBLE_EQ(v->NumberOr("schema_version", 0), 2.0);
  const JsonValue* env = v->Find("environment");
  ASSERT_NE(env, nullptr);
  EXPECT_DOUBLE_EQ(env->NumberOr("threads", 0), 4.0);
  const JsonValue* ds = env->Find("datasets");
  ASSERT_NE(ds, nullptr);
  ASSERT_TRUE(ds->is_array());
  ASSERT_EQ(ds->AsArray().size(), 2u);
  EXPECT_EQ(ds->AsArray()[1].AsString(), "d2");
  const JsonValue* profiles = v->Find("profiles");
  ASSERT_NE(profiles, nullptr);
  ASSERT_EQ(profiles->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(profiles->AsArray()[0].NumberOr("rows", 0), 10.0);
}

TEST(JsonTest, FindFallbacks) {
  auto v = ParseJson(R"({"a": 1, "s": "x"})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v->NumberOr("missing", -7), -7.0);
  EXPECT_DOUBLE_EQ(v->NumberOr("s", -7), -7.0);  // Wrong type → fallback.
  EXPECT_EQ(v->StringOr("a", "fb"), "fb");
  // Find on a non-object is a null lookup, not a crash.
  auto arr = ParseJson("[1, 2]");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ(arr->Find("a"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  // Trailing garbage after a complete document is an error, not ignored.
  EXPECT_FALSE(ParseJson("{} x").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  // Trailing whitespace is fine.
  EXPECT_TRUE(ParseJson("{}  \n").ok());
}

TEST(JsonTest, DepthLimited) {
  // A pathological nesting depth is rejected instead of overflowing the
  // stack (the parser is used on artifacts that could come from anywhere).
  std::string deep(100000, '[');
  deep += std::string(100000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, MissingFileIsError) {
  auto v = ParseJsonFile("/nonexistent/path/to/artifact.json");
  EXPECT_FALSE(v.ok());
}

}  // namespace
}  // namespace util
}  // namespace blossomtree
