#include "util/cache.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace blossomtree {
namespace util {
namespace {

std::shared_ptr<const std::string> Val(std::string s) {
  return std::make_shared<const std::string>(std::move(s));
}

TEST(ShardedLruCacheTest, HitAndMiss) {
  ShardedLruCache<std::string, std::string> cache(1 << 20, 4);
  EXPECT_EQ(cache.Get("k"), nullptr);
  cache.Put("k", Val("v"), 100);
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v");
  CacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 100u);
}

TEST(ShardedLruCacheTest, ReplaceReleasesOldFootprint) {
  ShardedLruCache<std::string, std::string> cache(1 << 20, 1);
  cache.Put("k", Val("v1"), 300);
  cache.Put("k", Val("v2"), 120);
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v2");
  CacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 120u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Single shard for a deterministic recency order.
  ShardedLruCache<std::string, std::string> cache(300, 1);
  cache.Put("a", Val("1"), 100);
  cache.Put("b", Val("2"), 100);
  cache.Put("c", Val("3"), 100);
  // Touch "a" so "b" becomes the LRU entry, then overflow the budget.
  ASSERT_NE(cache.Get("a"), nullptr);
  cache.Put("d", Val("4"), 100);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_NE(cache.Get("d"), nullptr);
  CacheStats s = cache.Stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_LE(s.bytes, 300u);
}

TEST(ShardedLruCacheTest, OversizedEntryIsNotCached) {
  ShardedLruCache<std::string, std::string> cache(100, 2);
  cache.Put("big", Val("x"), 101);
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
}

TEST(ShardedLruCacheTest, HandedOutValueSurvivesEviction) {
  ShardedLruCache<std::string, std::string> cache(100, 1);
  cache.Put("a", Val("keep"), 100);
  auto held = cache.Get("a");
  ASSERT_NE(held, nullptr);
  cache.Put("b", Val("new"), 100);  // Evicts "a".
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*held, "keep");  // The shared_ptr keeps the value alive.
}

TEST(ShardedLruCacheTest, ClearReturnsBudget) {
  ShardedLruCache<std::string, std::string> cache(1000, 4);
  for (int i = 0; i < 8; ++i) {
    cache.Put("k" + std::to_string(i), Val("v"), 100);
  }
  cache.Clear();
  CacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  // The whole budget is available again.
  cache.Put("fresh", Val("v"), 1000);
  EXPECT_NE(cache.Get("fresh"), nullptr);
}

TEST(ShardedLruCacheTest, CacheOptionsConstructor) {
  CacheOptions options;
  options.max_bytes = 512;
  options.shards = 3;
  ShardedLruCache<std::string, std::string> cache(options);
  EXPECT_EQ(cache.max_bytes(), 512u);
  EXPECT_EQ(cache.num_shards(), 3u);
}

TEST(ShardedLruCacheTest, ConcurrentMixedUse) {
  ShardedLruCache<std::string, std::string> cache(64 * 1024, 8);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "k" + std::to_string((t * 37 + i) % 256);
        if (i % 3 == 0) {
          cache.Put(key, Val("v" + key), 400);
        } else {
          auto v = cache.Get(key);
          if (v != nullptr) {
            EXPECT_EQ(*v, "v" + key);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  CacheStats s = cache.Stats();
  EXPECT_LE(s.bytes, 64u * 1024u);
  // Every non-Put iteration is exactly one Get.
  constexpr uint64_t kGetsPerThread = kOps - (kOps + 2) / 3;
  EXPECT_EQ(s.hits + s.misses, kThreads * kGetsPerThread);
}

}  // namespace
}  // namespace util
}  // namespace blossomtree
