#include "util/rng.h"

#include <gtest/gtest.h>

namespace blossomtree {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    uint64_t v = r.UniformRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Chance(0.0));
    EXPECT_TRUE(r.Chance(1.0));
  }
}

TEST(RngTest, WeightedRespectsZeros) {
  Rng r(13);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.Weighted(w), 1u);
  }
}

TEST(RngTest, WeightedRoughProportions) {
  Rng r(17);
  std::vector<double> w = {1.0, 3.0};
  int count1 = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (r.Weighted(w) == 1) ++count1;
  }
  // Expect ~75%; allow generous tolerance.
  EXPECT_GT(count1, kTrials * 0.70);
  EXPECT_LT(count1, kTrials * 0.80);
}

}  // namespace
}  // namespace blossomtree
