#include "util/strings.h"

#include <climits>

#include <gtest/gtest.h>

namespace blossomtree {
namespace {

TEST(StringsTest, SplitBasic) {
  auto parts = Split("1.2.3", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "1");
  EXPECT_EQ(parts[1], "2");
  EXPECT_EQ(parts[2], "3");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitNoSeparator) {
  auto parts = Split("abc", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitEmptyInput) {
  auto parts = Split("", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x \n"), "x");
  EXPECT_EQ(Trim("\t\r\n "), "");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, IsAllWhitespace) {
  EXPECT_TRUE(IsAllWhitespace(" \t\r\n"));
  EXPECT_TRUE(IsAllWhitespace(""));
  EXPECT_FALSE(IsAllWhitespace(" a "));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Join({}, "."), "");
  EXPECT_EQ(Join({"x"}, "."), "x");
}

TEST(StringsTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringsTest, ParseNonNegativeInt) {
  EXPECT_EQ(ParseNonNegativeInt("42"), 42);
  EXPECT_EQ(ParseNonNegativeInt(" 7 "), 7);
  EXPECT_EQ(ParseNonNegativeInt("0"), 0);
  EXPECT_EQ(ParseNonNegativeInt("-1"), -1);
  EXPECT_EQ(ParseNonNegativeInt("abc"), -1);
  EXPECT_EQ(ParseNonNegativeInt(""), -1);
}

TEST(StringsTest, ParseNonNegativeIntOverflowBoundary) {
  // LLONG_MAX itself parses; one past it must fail without the signed
  // overflow the old post-multiply check relied on (UB under UBSan).
  EXPECT_EQ(ParseNonNegativeInt("9223372036854775807"), LLONG_MAX);
  EXPECT_EQ(ParseNonNegativeInt("9223372036854775808"), -1);
  EXPECT_EQ(ParseNonNegativeInt("9223372036854775817"), -1);
  EXPECT_EQ(ParseNonNegativeInt("18446744073709551615"), -1);
  EXPECT_EQ(ParseNonNegativeInt("99999999999999999999999999"), -1);
  // Leading zeros cannot trip the guard early.
  EXPECT_EQ(ParseNonNegativeInt("0009223372036854775807"), LLONG_MAX);
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2 ", &v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_TRUE(ParseDouble("1e3", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(ParseDouble("12x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, ParseDoubleRejectsNonDecimalForms) {
  // strtod accepts all of these; XPath untyped comparison must treat them
  // as strings, so ParseDouble rejects them.
  double v = 0;
  EXPECT_FALSE(ParseDouble("inf", &v));
  EXPECT_FALSE(ParseDouble("-inf", &v));
  EXPECT_FALSE(ParseDouble("Infinity", &v));
  EXPECT_FALSE(ParseDouble("nan", &v));
  EXPECT_FALSE(ParseDouble("NaN", &v));
  EXPECT_FALSE(ParseDouble("0x10", &v));
  EXPECT_FALSE(ParseDouble("0x1p3", &v));
  // Sign/exponent characters alone are not numbers either.
  EXPECT_FALSE(ParseDouble("e", &v));
  EXPECT_FALSE(ParseDouble(".", &v));
  EXPECT_FALSE(ParseDouble("+-", &v));
}

}  // namespace
}  // namespace blossomtree
