#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace blossomtree {
namespace util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.NumThreads(), 1u);
  auto f = pool.Submit([] {});
  f.get();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  auto ok = pool.Submit([] {});
  ok.get();
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(16,
                                [&](size_t i) {
                                  ++ran;
                                  if (i % 2 == 0) {
                                    throw std::runtime_error("odd one out");
                                  }
                                }),
               std::runtime_error);
  // Every iteration still ran to completion before the rethrow.
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
    // Destructor must run all 50 queued tasks before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other can only finish if they run on
  // different workers simultaneously.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    ++arrived;
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  };
  auto a = pool.Submit(rendezvous);
  auto b = pool.Submit(rendezvous);
  a.get();
  b.get();
  EXPECT_EQ(arrived.load(), 2);
}

}  // namespace
}  // namespace util
}  // namespace blossomtree
