#include "util/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace blossomtree {
namespace util {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, RecordsBasicStats) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(7);
  h.Record(1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1008u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
  // Bucket 0 holds the zero; bucket 1 holds v == 1.
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
}

TEST(HistogramTest, QuantilesAreBucketUpperBounds) {
  Histogram h;
  // 100 values in [1, 2): all land in bucket 1, upper bound 1... actually
  // values of exactly 1 land in the v==1 bucket. Use a spread instead:
  // 90 small values (v=3, bucket upper bound 4) and 10 large (v=1000,
  // bucket upper bound 1024).
  for (int i = 0; i < 90; ++i) h.Record(3);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Quantile(0.5), 4u);
  EXPECT_EQ(s.Quantile(0.9), 4u);
  EXPECT_EQ(s.Quantile(0.99), 1024u);
  // Degenerate inputs.
  HistogramSnapshot empty;
  EXPECT_EQ(empty.Quantile(0.5), 0u);
}

TEST(HistogramTest, MergeIsOrderIndependent) {
  // The determinism contract: merging the same per-thread snapshots in any
  // order yields bitwise-identical aggregates (and hence identical JSON).
  std::vector<HistogramSnapshot> parts;
  for (int t = 0; t < 3; ++t) {
    Histogram h;
    for (int i = 0; i < 50; ++i) h.Record(static_cast<uint64_t>(t * 97 + i));
    parts.push_back(h.Snapshot());
  }
  HistogramSnapshot fwd;
  for (int t = 0; t < 3; ++t) fwd.MergeFrom(parts[t]);
  HistogramSnapshot rev;
  for (int t = 2; t >= 0; --t) rev.MergeFrom(parts[t]);
  EXPECT_EQ(fwd.count, rev.count);
  EXPECT_EQ(fwd.sum, rev.sum);
  EXPECT_EQ(fwd.min, rev.min);
  EXPECT_EQ(fwd.max, rev.max);
  EXPECT_EQ(fwd.buckets, rev.buckets);
  EXPECT_EQ(fwd.ToJson(), rev.ToJson());
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(5);
    });
  }
  for (std::thread& t : threads) t.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.sum, static_cast<uint64_t>(kThreads * kPerThread) * 5);
}

TEST(HistogramTest, ToJsonListsOccupiedBucketsOnly) {
  Histogram h;
  h.Record(3);
  std::string json = h.Snapshot().ToJson();
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("[4, 1]"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, StablePointersAndIdempotentLookup) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a.b");
  Counter* c2 = reg.GetCounter("a.b");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("lat");
  Histogram* h2 = reg.GetHistogram("lat");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, CountersTextIsSortedAndCountersOnly) {
  MetricsRegistry reg;
  reg.GetCounter("zeta")->Add(3);
  reg.GetCounter("alpha")->Add(1);
  reg.GetHistogram("latency_ns")->Record(123);
  // Sorted by name, one "name value" line each, histograms excluded: this
  // is the bitwise cross-thread identity surface, and wall times have no
  // business on it.
  EXPECT_EQ(reg.CountersText(), "alpha 1\nzeta 3\n");
}

TEST(MetricsRegistryTest, ToJsonCarriesHistograms) {
  MetricsRegistry reg;
  reg.GetCounter("queries")->Add(2);
  reg.GetHistogram("wall_ns")->Record(1 << 20);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"queries\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, MergeFromAddsAndReset) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("n")->Add(1);
  b.GetCounter("n")->Add(2);
  b.GetCounter("only_b")->Add(5);
  b.GetHistogram("h")->Record(9);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("n")->value(), 3u);
  EXPECT_EQ(a.GetCounter("only_b")->value(), 5u);
  EXPECT_EQ(a.GetHistogram("h")->Snapshot().count, 1u);
  Counter* n = a.GetCounter("n");
  a.Reset();
  EXPECT_EQ(n->value(), 0u);  // Pointers stay valid across Reset.
  EXPECT_EQ(a.GetHistogram("h")->Snapshot().count, 0u);
}

}  // namespace
}  // namespace util
}  // namespace blossomtree
