#include "util/metrics.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

namespace blossomtree {
namespace util {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, RecordsBasicStats) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(7);
  h.Record(1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1008u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
  // Bucket 0 holds the zero; bucket 1 holds v == 1.
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
}

TEST(HistogramTest, QuantilesAreBucketUpperBounds) {
  Histogram h;
  // 100 values in [1, 2): all land in bucket 1, upper bound 1... actually
  // values of exactly 1 land in the v==1 bucket. Use a spread instead:
  // 90 small values (v=3, bucket upper bound 4) and 10 large (v=1000,
  // bucket upper bound 1024).
  for (int i = 0; i < 90; ++i) h.Record(3);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Quantile(0.5), 4u);
  EXPECT_EQ(s.Quantile(0.9), 4u);
  EXPECT_EQ(s.Quantile(0.99), 1024u);
  // Degenerate inputs.
  HistogramSnapshot empty;
  EXPECT_EQ(empty.Quantile(0.5), 0u);
}

TEST(HistogramTest, MergeIsOrderIndependent) {
  // The determinism contract: merging the same per-thread snapshots in any
  // order yields bitwise-identical aggregates (and hence identical JSON).
  std::vector<HistogramSnapshot> parts;
  for (int t = 0; t < 3; ++t) {
    Histogram h;
    for (int i = 0; i < 50; ++i) h.Record(static_cast<uint64_t>(t * 97 + i));
    parts.push_back(h.Snapshot());
  }
  HistogramSnapshot fwd;
  for (int t = 0; t < 3; ++t) fwd.MergeFrom(parts[t]);
  HistogramSnapshot rev;
  for (int t = 2; t >= 0; --t) rev.MergeFrom(parts[t]);
  EXPECT_EQ(fwd.count, rev.count);
  EXPECT_EQ(fwd.sum, rev.sum);
  EXPECT_EQ(fwd.min, rev.min);
  EXPECT_EQ(fwd.max, rev.max);
  EXPECT_EQ(fwd.buckets, rev.buckets);
  EXPECT_EQ(fwd.ToJson(), rev.ToJson());
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(5);
    });
  }
  for (std::thread& t : threads) t.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.sum, static_cast<uint64_t>(kThreads * kPerThread) * 5);
}

TEST(HistogramTest, ToJsonListsOccupiedBucketsOnly) {
  Histogram h;
  h.Record(3);
  std::string json = h.Snapshot().ToJson();
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("[4, 1]"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, StablePointersAndIdempotentLookup) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a.b");
  Counter* c2 = reg.GetCounter("a.b");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("lat");
  Histogram* h2 = reg.GetHistogram("lat");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, CountersTextIsSortedAndCountersOnly) {
  MetricsRegistry reg;
  reg.GetCounter("zeta")->Add(3);
  reg.GetCounter("alpha")->Add(1);
  reg.GetHistogram("latency_ns")->Record(123);
  // Sorted by name, one "name value" line each, histograms excluded: this
  // is the bitwise cross-thread identity surface, and wall times have no
  // business on it.
  EXPECT_EQ(reg.CountersText(), "alpha 1\nzeta 3\n");
}

TEST(MetricsRegistryTest, ToJsonCarriesHistograms) {
  MetricsRegistry reg;
  reg.GetCounter("queries")->Add(2);
  reg.GetHistogram("wall_ns")->Record(1 << 20);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"queries\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_ns\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, MergeFromAddsAndReset) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("n")->Add(1);
  b.GetCounter("n")->Add(2);
  b.GetCounter("only_b")->Add(5);
  b.GetHistogram("h")->Record(9);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("n")->value(), 3u);
  EXPECT_EQ(a.GetCounter("only_b")->value(), 5u);
  EXPECT_EQ(a.GetHistogram("h")->Snapshot().count, 1u);
  Counter* n = a.GetCounter("n");
  a.Reset();
  EXPECT_EQ(n->value(), 0u);  // Pointers stay valid across Reset.
  EXPECT_EQ(a.GetHistogram("h")->Snapshot().count, 0u);
}

TEST(LabeledMetricNameTest, BuildsAndEscapesLabelValues) {
  EXPECT_EQ(LabeledMetricName("service.queries", {{"status", "ok"}}),
            "service.queries{status=\"ok\"}");
  EXPECT_EQ(LabeledMetricName("q", {{"tenant", "a"}, {"status", "ok"}}),
            "q{tenant=\"a\",status=\"ok\"}");
  // Backslash, quote, and newline in label values must be escaped — they
  // would otherwise corrupt the exposition line protocol.
  EXPECT_EQ(LabeledMetricName("q", {{"text", "a\"b\\c\nd"}}),
            "q{text=\"a\\\"b\\\\c\\nd\"}");
}

TEST(PrometheusTest, GoldenExposition) {
  MetricsRegistry reg;
  reg.GetCounter("service.queries")->Add(3);
  reg.GetCounter(LabeledMetricName("service.queries", {{"status", "ok"}}))
      ->Add(2);
  reg.GetCounter(
         LabeledMetricName("service.queries", {{"status", "rejected"}}))
      ->Add(1);
  Histogram* h = reg.GetHistogram("service.e2e_ns");
  h->Record(0);
  h->Record(3);
  h->Record(3);
  h->Record(1000);
  // One # TYPE header per family; labeled series grouped under it; dots
  // sanitized to '_'; histogram buckets cumulative over occupied
  // boundaries, closed by +Inf, _sum, and _count. The whole text is a pure
  // function of the registered names and values.
  EXPECT_EQ(reg.PrometheusText(),
            "# TYPE service_queries counter\n"
            "service_queries 3\n"
            "service_queries{status=\"ok\"} 2\n"
            "service_queries{status=\"rejected\"} 1\n"
            "# TYPE service_e2e_ns histogram\n"
            "service_e2e_ns_bucket{le=\"0\"} 1\n"
            "service_e2e_ns_bucket{le=\"4\"} 3\n"
            "service_e2e_ns_bucket{le=\"1024\"} 4\n"
            "service_e2e_ns_bucket{le=\"+Inf\"} 4\n"
            "service_e2e_ns_sum 1006\n"
            "service_e2e_ns_count 4\n");
}

TEST(PrometheusTest, LabeledHistogramCarriesLabelsOnEveryLine) {
  MetricsRegistry reg;
  reg.GetHistogram(LabeledMetricName("lat", {{"tenant", "t0"}}))->Record(3);
  EXPECT_EQ(reg.PrometheusText(),
            "# TYPE lat histogram\n"
            "lat_bucket{tenant=\"t0\",le=\"4\"} 1\n"
            "lat_bucket{tenant=\"t0\",le=\"+Inf\"} 1\n"
            "lat_sum{tenant=\"t0\"} 3\n"
            "lat_count{tenant=\"t0\"} 1\n");
}

TEST(PrometheusTest, SanitizesForeignNamesDeterministically) {
  MetricsRegistry reg;
  reg.GetCounter("3weird.name-x")->Add(7);
  EXPECT_EQ(reg.PrometheusText(),
            "# TYPE _3weird_name_x counter\n_3weird_name_x 7\n");
}

TEST(PrometheusTest, OrderIsIndependentOfRegistrationOrder) {
  // The exposition must be a pure function of the registered (name, value)
  // set — registration order (which varies with thread interleaving in the
  // service) must not leak into the text.
  MetricsRegistry a;
  MetricsRegistry b;
  const char* names[] = {"zeta", "alpha{t=\"2\"}", "alpha", "alpha{t=\"1\"}"};
  for (const char* n : names) a.GetCounter(n)->Add(1);
  for (int i = 3; i >= 0; --i) b.GetCounter(names[i])->Add(1);
  a.GetHistogram("h")->Record(5);
  b.GetHistogram("h")->Record(5);
  EXPECT_EQ(a.PrometheusText(), b.PrometheusText());
}

TEST(PrometheusTest, GaugesTextRendersWithGaugeHeaders) {
  std::map<std::string, uint64_t> gauges;
  gauges["service.queue_depth"] = 5;
  gauges[LabeledMetricName("pool.bytes", {{"pool", "intra"}})] = 1024;
  EXPECT_EQ(PrometheusGaugesText(gauges),
            "# TYPE pool_bytes gauge\n"
            "pool_bytes{pool=\"intra\"} 1024\n"
            "# TYPE service_queue_depth gauge\n"
            "service_queue_depth 5\n");
}

}  // namespace
}  // namespace util
}  // namespace blossomtree
