#include "util/status.h"

#include <gtest/gtest.h>

namespace blossomtree {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r(std::string("abc"));
  ASSERT_TRUE(r.ok());
  std::string v = r.MoveValue();
  EXPECT_EQ(v, "abc");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  BT_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace blossomtree
