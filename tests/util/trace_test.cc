#include "util/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/json.h"

namespace blossomtree {
namespace util {
namespace {

/// Every trace test owns the process-wide tracer for its duration and
/// leaves it disabled and empty, so test order cannot leak state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(Tracer::Get().enabled());
  {
    TraceSpan span("test", "ignored");
    TraceInstant("test", "ignored too");
    TraceCounter("test", "ignored as well", 42);
  }
  EXPECT_EQ(Tracer::Get().EventCount(), 0u);
}

TEST_F(TraceTest, DisableMidSpanDropsTheEnd) {
  // Record() gates on enabled(), so disabling mid-span drops the 'E'.
  // Callers therefore disable only between queries, never inside one —
  // pinned here so a change to that contract is a conscious one.
  Tracer::Get().Enable();
  {
    TraceSpan span("test", "closing");
    Tracer::Get().Disable();
  }
  EXPECT_EQ(Tracer::Get().EventCount(), 1u);
}

TEST_F(TraceTest, ExportIsWellFormedChromeTraceJson) {
  Tracer::Get().Enable();
  {
    TraceSpan outer("test", "outer");
    { TraceSpan inner("test", "inner with \"quotes\" and\nnewline"); }
    TraceInstant("test", "tick");
    TraceCounter("test", "queue_delay_ns", 1234.5);
  }
  Tracer::Get().Disable();

  std::string json = Tracer::Get().ExportJson();
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(parsed->StringOr("displayTimeUnit", ""), "ms");

  int begins = 0, ends = 0, instants = 0, counters = 0, meta = 0;
  for (const JsonValue& e : events->AsArray()) {
    // The contract every viewer relies on: ph/ts/pid/tid on every record.
    ASSERT_NE(e.Find("ph"), nullptr);
    ASSERT_NE(e.Find("ts"), nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    std::string ph = e.StringOr("ph", "");
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.StringOr("s", ""), "t");  // Thread-scoped instant.
    }
    if (ph == "C") {
      ++counters;
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->NumberOr("value", 0), 1234.5);
    }
    if (ph == "M") ++meta;
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_GE(meta, 2);  // process_name + at least one thread_name.
}

TEST_F(TraceTest, NamesEscapeAndTruncateSafely) {
  Tracer::Get().Enable();
  // Longer than the 38-char inline name capacity: must truncate, not smash.
  std::string long_name(200, 'x');
  long_name += "\"\\\n";
  TraceInstant("test", long_name);
  Tracer::Get().Disable();
  auto parsed = ParseJson(Tracer::Get().ExportJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST_F(TraceTest, EventsFromMultipleThreadsCarryDistinctTids) {
  Tracer::Get().Enable();
  TraceInstant("test", "main-thread");
  std::thread worker([] { TraceInstant("test", "worker-thread"); });
  worker.join();
  Tracer::Get().Disable();

  auto parsed = ParseJson(Tracer::Get().ExportJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::set<double> tids;
  for (const JsonValue& e : parsed->Find("traceEvents")->AsArray()) {
    if (e.StringOr("ph", "") == "i") tids.insert(e.NumberOr("tid", -1));
  }
  EXPECT_GE(tids.size(), 2u);
}

TEST_F(TraceTest, RingWrapsKeepingNewestEvents) {
  Tracer::Get().Enable();
  for (size_t i = 0; i < TraceRing::kCapacity + 100; ++i) {
    TraceInstant("test", "spin");
  }
  Tracer::Get().Disable();
  // Retention is capped at the ring capacity; overflow drops oldest.
  EXPECT_EQ(Tracer::Get().EventCount(), TraceRing::kCapacity);
  auto parsed = ParseJson(Tracer::Get().ExportJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST_F(TraceTest, DroppedEventsCountsOverflowExactly) {
  Tracer::Get().Enable();
  EXPECT_EQ(Tracer::Get().DroppedEvents(), 0u);
  // Overflow one ring by exactly 123 events: the drop counter is the exact
  // overwrite count, not a saturating flag — observability (DESIGN.md §15)
  // reports *how much* of the window was lost.
  for (size_t i = 0; i < TraceRing::kCapacity + 123; ++i) {
    TraceInstant("test", "spin");
  }
  Tracer::Get().Disable();
  EXPECT_EQ(Tracer::Get().DroppedEvents(), 123u);

  // The export carries the count, so a truncated capture is self-declaring.
  auto parsed = ParseJson(Tracer::Get().ExportJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->NumberOr("droppedEvents", -1), 123.0);

  Tracer::Get().Clear();
  EXPECT_EQ(Tracer::Get().DroppedEvents(), 0u);
}

TEST_F(TraceTest, EnableRestartsCapture) {
  Tracer::Get().Enable();
  TraceInstant("test", "first capture");
  Tracer::Get().Enable();  // Re-enable = fresh capture.
  EXPECT_EQ(Tracer::Get().EventCount(), 0u);
  TraceInstant("test", "second capture");
  EXPECT_EQ(Tracer::Get().EventCount(), 1u);
}

}  // namespace
}  // namespace util
}  // namespace blossomtree
