#include "util/varint.h"

#include <gtest/gtest.h>

namespace blossomtree {
namespace {

TEST(VarintTest, RoundTripValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             0xFFFFFFFFULL,
                             0xFFFFFFFFFFFFFFFFULL};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint(buf, &pos, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, EncodingSizes) {
  std::string buf;
  PutVarint(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint(&buf, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(buf.size(), 10u);
}

TEST(VarintTest, SequentialDecode) {
  std::string buf;
  PutVarint(&buf, 5);
  PutVarint(&buf, 70000);
  PutVarint(&buf, 0);
  size_t pos = 0;
  uint64_t v = 0;
  ASSERT_TRUE(GetVarint(buf, &pos, &v));
  EXPECT_EQ(v, 5u);
  ASSERT_TRUE(GetVarint(buf, &pos, &v));
  EXPECT_EQ(v, 70000u);
  ASSERT_TRUE(GetVarint(buf, &pos, &v));
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncatedFails) {
  std::string buf;
  PutVarint(&buf, 1ULL << 40);
  for (size_t len = 0; len + 1 < buf.size(); ++len) {
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(GetVarint(std::string_view(buf).substr(0, len), &pos, &v));
  }
}

TEST(VarintTest, OverlongFails) {
  // 11 continuation bytes exceed 64 bits.
  std::string buf(10, static_cast<char>(0xFF));
  buf.push_back(0x7F);
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint(buf, &pos, &v));
}

TEST(VarintTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'x'));
  size_t pos = 0;
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s.size(), 300u);
}

TEST(VarintTest, LengthPrefixedTruncatedFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  size_t pos = 0;
  std::string_view s;
  EXPECT_FALSE(
      GetLengthPrefixed(std::string_view(buf).substr(0, 3), &pos, &s));
}

TEST(VarintTest, LengthPrefixedHugeLengthFails) {
  // A hostile length near UINT64_MAX used to wrap `*pos + len` back into
  // range and hand out an out-of-bounds view.
  std::string buf;
  PutVarint(&buf, 0xFFFFFFFFFFFFFFFFULL);
  buf += "payload";
  size_t pos = 0;
  std::string_view s;
  EXPECT_FALSE(GetLengthPrefixed(buf, &pos, &s));
}

TEST(VarintTest, LengthPrefixedWrapAroundLengthsFail) {
  // Every length that would wrap `pos + len` past zero must fail, not just
  // UINT64_MAX itself.
  for (uint64_t len :
       {0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFEULL,
        0xFFFFFFFFFFFFFFFFULL - 16, 0x8000000000000000ULL}) {
    std::string buf;
    PutVarint(&buf, len);
    buf += "abcdefgh";
    size_t pos = 0;
    std::string_view s;
    EXPECT_FALSE(GetLengthPrefixed(buf, &pos, &s)) << len;
  }
}

TEST(VarintTest, LengthPrefixedLengthJustPastEndFails) {
  // Length one byte past the available payload: off-by-one boundary.
  std::string buf;
  PutVarint(&buf, 6);
  buf += "hello";  // Only 5 bytes follow.
  size_t pos = 0;
  std::string_view s;
  EXPECT_FALSE(GetLengthPrefixed(buf, &pos, &s));
  // Exactly the available payload still decodes.
  buf.clear();
  PutVarint(&buf, 5);
  buf += "hello";
  pos = 0;
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, LengthPrefixedAtEndOfBuffer) {
  // Varint decodes, then *pos == data.size(): `data.size() - *pos` is 0,
  // so any nonzero length must fail and a zero length must succeed.
  std::string buf;
  PutVarint(&buf, 1);
  size_t pos = 0;
  std::string_view s;
  EXPECT_FALSE(GetLengthPrefixed(buf, &pos, &s));
  buf.clear();
  PutVarint(&buf, 0);
  pos = 0;
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "");
}

}  // namespace
}  // namespace blossomtree
