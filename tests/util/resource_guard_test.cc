#include "util/resource_guard.h"

#include <thread>

#include <gtest/gtest.h>

namespace blossomtree {
namespace util {
namespace {

TEST(ResourceGuardTest, UnlimitedByDefault) {
  ResourceGuard guard;
  guard.Arm();
  EXPECT_TRUE(guard.Check());
  EXPECT_TRUE(guard.ChargeCells(1'000'000, 64'000'000));
  EXPECT_TRUE(guard.ChargeRows(1'000'000));
  EXPECT_FALSE(guard.Tripped());
  EXPECT_TRUE(guard.status().ok());
  EXPECT_EQ(guard.CellsCharged(), 1'000'000u);
  EXPECT_EQ(guard.RowsCharged(), 1'000'000u);
}

TEST(ResourceGuardTest, ZeroCellBudgetRejectsFirstCharge) {
  QueryLimits limits;
  limits.max_nl_cells = 0;
  ResourceGuard guard(limits);
  guard.Arm();
  EXPECT_FALSE(guard.ChargeCells(1, 32));
  EXPECT_TRUE(guard.Tripped());
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, CellBudgetTripsExactlyAboveLimit) {
  QueryLimits limits;
  limits.max_nl_cells = 100;
  ResourceGuard guard(limits);
  guard.Arm();
  EXPECT_TRUE(guard.ChargeCells(100, 0));  // Exactly at budget: allowed.
  EXPECT_FALSE(guard.ChargeCells(1, 0));   // One over: trips.
  EXPECT_TRUE(guard.Tripped());
}

TEST(ResourceGuardTest, ByteBudgetTripsIndependently) {
  QueryLimits limits;
  limits.max_nl_bytes = 64;
  ResourceGuard guard(limits);
  guard.Arm();
  EXPECT_TRUE(guard.ChargeCells(2, 64));
  EXPECT_FALSE(guard.ChargeCells(2, 64));
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, RowBudgetTrips) {
  QueryLimits limits;
  limits.max_result_rows = 10;
  ResourceGuard guard(limits);
  guard.Arm();
  EXPECT_TRUE(guard.ChargeRows(10));
  EXPECT_FALSE(guard.ChargeRows(1));
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, ZeroDeadlineTripsOnFirstCheck) {
  QueryLimits limits;
  limits.deadline_millis = 0;
  ResourceGuard guard(limits);
  guard.Arm();
  EXPECT_FALSE(guard.Check());
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, DeadlineTripsAfterItPasses) {
  QueryLimits limits;
  limits.deadline_millis = 5;
  ResourceGuard guard(limits);
  guard.Arm();
  EXPECT_TRUE(guard.Check());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(guard.Check());
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, CancellationTokenTripsAsCancelled) {
  ResourceGuard guard;
  guard.Arm();
  guard.token()->Cancel();
  EXPECT_FALSE(guard.Check());
  EXPECT_EQ(guard.status().code(), StatusCode::kCancelled);
}

TEST(ResourceGuardTest, FirstTripWins) {
  ResourceGuard guard;
  guard.Arm();
  guard.Trip(StatusCode::kResourceExhausted, "first");
  guard.Trip(StatusCode::kCancelled, "second");
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(guard.status().message(), "first");
}

TEST(ResourceGuardTest, ArmResetsCountersAndTripButNotToken) {
  QueryLimits limits;
  limits.max_nl_cells = 1;
  ResourceGuard guard(limits);
  guard.Arm();
  EXPECT_FALSE(guard.ChargeCells(5, 0));
  EXPECT_TRUE(guard.Tripped());
  guard.Arm();
  EXPECT_FALSE(guard.Tripped());
  EXPECT_EQ(guard.CellsCharged(), 0u);
  EXPECT_TRUE(guard.status().ok());
  // A cancelled token survives re-arming until the owner resets it.
  guard.token()->Cancel();
  guard.Arm();
  EXPECT_FALSE(guard.Check());
  EXPECT_EQ(guard.status().code(), StatusCode::kCancelled);
  guard.token()->Reset();
  guard.Arm();
  EXPECT_TRUE(guard.Check());
}

TEST(ResourceGuardTest, ConcurrentChargesTripOnce) {
  QueryLimits limits;
  limits.max_nl_cells = 10'000;
  ResourceGuard guard(limits);
  guard.Arm();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&guard] {
      for (int i = 0; i < 10'000; ++i) guard.ChargeCells(1, 0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_TRUE(guard.Tripped());
  EXPECT_EQ(guard.status().code(), StatusCode::kResourceExhausted);
  // Charging stops once tripped, so the counter lands past the budget but
  // (far) below the total offered work.
  EXPECT_GT(guard.CellsCharged(), 10'000u);
  EXPECT_LE(guard.CellsCharged(), 40'000u);
}

TEST(ResourceGuardTest, ToParseLimitsClampsToSizeT) {
  QueryLimits limits;
  limits.max_parse_depth = 64;
  limits.max_query_bytes = 1024;
  ParseLimits p = limits.ToParseLimits();
  EXPECT_EQ(p.max_depth, 64u);
  EXPECT_EQ(p.max_input_bytes, 1024u);
}

}  // namespace
}  // namespace util
}  // namespace blossomtree
