// Tests for the service observability plane (DESIGN.md §15): the query
// flight recorder, slow-query log, per-tenant labeled metrics, windowed
// snapshots, and the determinism contract (recorder on never perturbs the
// deterministic counter surface). Suite names stay under the Service*
// prefix so CI's TSan stress step picks them up via --gtest_filter.

#include "service/observer.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "service/corpus.h"
#include "service/query_service.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/status.h"

namespace blossomtree {
namespace service {
namespace {

std::unique_ptr<xml::Document> DblpDoc(double scale = 0.02) {
  datagen::GenOptions o;
  o.scale = scale;
  o.seed = 7;
  return datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
}

constexpr char kArticles[] = "for $a in //article return $a/title";

/// The served mix the determinism test replays at several slot counts.
constexpr const char* kMix[] = {
    "//article/title",
    "//phdthesis/author",
    "//article[year = \"omega\"]/title",
    "for $a in //phdthesis return <hit>{$a/school}</hit>",
};

TEST(ServiceObserverTest, FingerprintIsStableFnv1a) {
  // Pinned constants: fingerprints land in logs and dashboards, so the
  // hash must never drift across builds or platforms.
  EXPECT_EQ(FingerprintQuery(""), 14695981039346656037ull);
  EXPECT_EQ(FingerprintQuery("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(FingerprintQuery("//a"), FingerprintQuery("//b"));
}

TEST(ServiceObserverTest, RecordsEveryTerminalOutcomeWithStatusLabels) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("dblp", DblpDoc()).ok());
  ServiceOptions sopts;
  sopts.slots = 1;
  sopts.max_queue = 2;
  QueryService svc(&corpus, sopts);
  auto session = svc.CreateSession("alice");

  // Unknown document: a terminal not_found outcome, recorded like any
  // other completion.
  EXPECT_EQ(svc.Execute(*session, "nope", "//a").status().code(),
            StatusCode::kNotFound);

  // Burst past the queue bound: some submissions are rejected with
  // kResourceExhausted (same setup the admission tests rely on).
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 64; ++i) {
    tickets.push_back(svc.Submit(*session, "dblp", kArticles));
  }
  uint64_t ok = 0;
  uint64_t rejected = 0;
  for (auto& t : tickets) {
    if (t->Wait().ok()) {
      ++ok;
    } else {
      ASSERT_EQ(t->Wait().status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0u);

  // Status-labeled counters reproduce the ticket-side truth exactly —
  // including rejections, which never reach RunQuery.
  auto counters = svc.metrics().CounterValues();
  EXPECT_EQ(counters["service.queries{status=\"ok\"}"], ok);
  EXPECT_EQ(counters["service.queries{status=\"rejected\"}"], rejected);
  EXPECT_EQ(counters["service.queries{status=\"not_found\"}"], 1u);

  // Rejected submissions land in the service.e2e_ns rollups under their
  // status label (the unlabeled histogram stays queries-that-ran only).
  auto hists = svc.metrics().HistogramSnapshots();
  EXPECT_EQ(hists["service.e2e_ns{status=\"rejected\"}"].count, rejected);
  EXPECT_EQ(hists["service.e2e_ns{status=\"ok\"}"].count, ok);

  // Per-tenant labeled series carry the same split.
  EXPECT_EQ(
      counters["service.tenant.queries{tenant=\"alice\",status=\"ok\"}"], ok);
  EXPECT_EQ(counters["service.tenant.rejected{tenant=\"alice\"}"],
            rejected + 1);  // not_found is an admission-time rejection too.

  // The flight recorder retained every outcome (65 <= default capacity)
  // and the rollup over its window agrees.
  EXPECT_EQ(svc.observer()->TotalRecorded(), 65u);
  auto rollups = svc.observer()->TenantRollups();
  ASSERT_EQ(rollups.size(), 1u);
  EXPECT_EQ(rollups[0].tenant, "alice");
  EXPECT_EQ(rollups[0].completed, ok);
  EXPECT_EQ(rollups[0].rejected, rejected);
  EXPECT_EQ(rollups[0].not_found, 1u);
  EXPECT_EQ(rollups[0].admitted, ok);

  // Summaries are retrievable by id, carry the query fingerprint, and an
  // admission-time rejection is marked not-admitted.
  bool saw_rejected = false;
  for (const QuerySummary& s : svc.observer()->Recent(65)) {
    EXPECT_EQ(s.fingerprint, FingerprintQuery(s.query));
    QuerySummary by_id;
    ASSERT_TRUE(svc.observer()->FindSummary(s.id, &by_id));
    EXPECT_EQ(by_id.StatusLabel(), s.StatusLabel());
    if (s.StatusLabel() == "rejected") {
      saw_rejected = true;
      EXPECT_FALSE(s.admitted);
    }
  }
  EXPECT_TRUE(saw_rejected);
}

TEST(ServiceObserverTest, SlowLogCapturesGroundTruthPlans) {
  Corpus corpus;  // No caches: work counters match a standalone engine.
  ASSERT_TRUE(corpus.Add("dblp", DblpDoc()).ok());
  ServiceOptions sopts;
  sopts.slots = 1;
  sopts.collect_profile = true;
  sopts.observer.slow_threshold_ns = 0;  // Every query is "slow".
  QueryService svc(&corpus, sopts);
  auto session = svc.CreateSession("t");
  ASSERT_TRUE(svc.Execute(*session, "dblp", kArticles).ok());

  // Ground truth: a standalone serial profiling engine over an identical
  // build (profiles' deterministic text is a pure function of doc + plan).
  auto ref_doc = DblpDoc();
  engine::EngineOptions eo;
  eo.num_threads = 1;
  eo.collect_profile = true;
  engine::BlossomTreeEngine ref(ref_doc.get(), eo);
  ASSERT_TRUE(ref.EvaluateQuery(kArticles).ok());
  WorkCounters want = WorkCounters::FromProfile(ref.LastProfile());

  auto slow = svc.observer()->SlowLog();
  ASSERT_EQ(slow.size(), 1u);
  const SlowQueryRecord& rec = slow[0];
  EXPECT_EQ(rec.summary.work.nodes_scanned, want.nodes_scanned);
  EXPECT_EQ(rec.summary.work.comparisons, want.comparisons);
  EXPECT_EQ(rec.summary.work.matches, want.matches);
  EXPECT_EQ(rec.summary.work.nl_cells, want.nl_cells);
  EXPECT_FALSE(rec.explain_analyze.empty());
  EXPECT_NE(rec.explain_analyze.find("Nok"), std::string::npos)
      << rec.explain_analyze;
  EXPECT_FALSE(rec.profile_json.empty());
  EXPECT_FALSE(rec.metrics_json.empty());

  // FindSlow resolves the same record by recorder id, and the JSON dump of
  // the log is well-formed despite embedded plan text.
  SlowQueryRecord by_id;
  ASSERT_TRUE(svc.observer()->FindSlow(rec.summary.id, &by_id));
  EXPECT_EQ(by_id.explain_analyze, rec.explain_analyze);
  auto parsed = util::ParseJson(svc.observer()->SlowJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // The recorded access-path mix matches the reference engine's plan too:
  // the forced profiling the observer relies on is the same profile a
  // client with collect_profile sees.
  AccessPathMix want_paths = AccessPathMix::FromProfile(ref.LastProfile());
  const AccessPathMix& got_paths = rec.summary.paths;
  EXPECT_EQ(got_paths.scan_ops, want_paths.scan_ops);
  EXPECT_EQ(got_paths.merged_views, want_paths.merged_views);
  EXPECT_EQ(got_paths.seek_ops, want_paths.seek_ops);
}

TEST(ServiceObserverTest, DeterministicCountersIdenticalAcrossSlots) {
  // The acceptance contract: with the observer on at defaults, per-query
  // deterministic work counters are bitwise-identical at 1, 2, and 4 slots
  // (caches off so warmth cannot vary the work).
  std::map<uint64_t, std::vector<uint64_t>> per_slots_work;
  for (size_t slots : {1u, 2u, 4u}) {
    Corpus corpus;
    ASSERT_TRUE(corpus.Add("dblp", DblpDoc()).ok());
    ServiceOptions sopts;
    sopts.slots = slots;
    sopts.max_queue = 64;
    QueryService svc(&corpus, sopts);
    auto session = svc.CreateSession("t");
    std::vector<std::shared_ptr<QueryTicket>> tickets;
    for (int rep = 0; rep < 4; ++rep) {
      for (const char* q : kMix) {
        tickets.push_back(svc.Submit(*session, "dblp", q));
      }
    }
    for (auto& t : tickets) ASSERT_TRUE(t->Wait().ok());

    // Aggregate recorded work per query fingerprint; the map must be
    // identical at every slot count.
    std::map<uint64_t, std::vector<uint64_t>> work;
    for (const QuerySummary& s : svc.observer()->Recent(64)) {
      auto& w = work[s.fingerprint];
      if (w.empty()) w.resize(7, 0);
      w[0] += s.work.nodes_scanned;
      w[1] += s.work.index_entries;
      w[2] += s.work.comparisons;
      w[3] += s.work.matches;
      w[4] += s.work.nl_cells;
      w[5] += s.paths.scan_ops;
      w[6] += s.paths.seek_ops;
    }
    if (per_slots_work.empty()) {
      per_slots_work = work;
      ASSERT_EQ(work.size(), 4u);  // One fingerprint per mix entry.
    } else {
      EXPECT_EQ(work, per_slots_work) << "slots=" << slots;
    }
  }
}

TEST(ServiceObserverTest, RecorderOverflowIsBoundedAndCountsDrops) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("dblp", DblpDoc(0.01)).ok());
  ServiceOptions sopts;
  sopts.slots = 2;
  sopts.observer.recorder_capacity = 8;
  sopts.observer.recorder_shards = 2;
  sopts.observer.slow_log_capacity = 3;
  sopts.observer.slow_threshold_ns = 0;
  QueryService svc(&corpus, sopts);
  auto session = svc.CreateSession("t");
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(svc.Execute(*session, "dblp", "//phdthesis/author").ok());
  }
  EXPECT_EQ(svc.observer()->TotalRecorded(), 30u);
  // Ids 1..30 split evenly over 2 shards of 4 slots each: 8 retained, the
  // overwritten remainder counted exactly.
  EXPECT_EQ(svc.observer()->Recent(100).size(), 8u);
  EXPECT_EQ(svc.observer()->RecorderDropped(), 22u);
  // The slow log is bounded separately and keeps the newest entries.
  auto slow = svc.observer()->SlowLog();
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_GT(slow[0].summary.id, slow[1].summary.id);
  EXPECT_GT(slow[1].summary.id, slow[2].summary.id);
}

TEST(ServiceObserverTest, QueryTextIsTruncatedToBound) {
  util::MetricsRegistry reg;
  ObserverOptions oo;
  oo.max_recorded_query_bytes = 8;
  ServiceObserver obs(&reg, oo);
  QuerySummary s;
  s.id = obs.NextId();
  s.query = "0123456789abcdef";
  obs.RecordCompletion(std::move(s));
  EXPECT_EQ(obs.Recent(1)[0].query, "01234567");
}

TEST(ServiceObserverTest, DisabledObserverRecordsNothing) {
  util::MetricsRegistry reg;
  ObserverOptions oo;
  oo.enabled = false;
  ServiceObserver obs(&reg, oo);
  QuerySummary s;
  s.id = 1;
  s.tenant = "t";
  obs.RecordCompletion(std::move(s));
  EXPECT_TRUE(obs.Recent(10).empty());
  EXPECT_TRUE(reg.CounterValues().empty());
}

TEST(ServiceObserverTest, WindowMergeIsOrderIndependent) {
  util::MetricsRegistry reg;
  ObserverOptions oo;
  ServiceObserver obs(&reg, oo);
  uint64_t gauge_value = 0;
  obs.set_gauge_sampler([&gauge_value] {
    std::map<std::string, uint64_t> g;
    g["g.depth"] = gauge_value;
    return g;
  });

  // Three windows with distinct counter deltas, histogram deltas, and
  // gauge values.
  std::vector<MetricsWindow> windows;
  for (uint64_t i = 1; i <= 3; ++i) {
    reg.GetCounter("c.total")->Add(i);
    reg.GetCounter("c.only_" + std::to_string(i))->Add(7);
    reg.GetHistogram("h.lat")->Record(i * 100);
    gauge_value = i * 10;
    windows.push_back(obs.SampleWindow());
  }
  // Each window carries only its own delta.
  EXPECT_EQ(windows[1].counters.at("c.total"), 2u);
  EXPECT_EQ(windows[1].histograms.at("h.lat").count, 1u);
  EXPECT_EQ(windows[2].gauges.at("g.depth"), 30u);
  EXPECT_EQ(windows[0].counters.count("c.only_3"), 0u);

  // Merging any permutation yields identical JSON: counters/histograms
  // sum, the span takes the outer bounds, gauges come from the newest
  // constituent window.
  const int perms[][3] = {{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}};
  std::string expected;
  for (const auto& perm : perms) {
    MetricsWindow merged = windows[perm[0]];
    merged.MergeFrom(windows[perm[1]]);
    merged.MergeFrom(windows[perm[2]]);
    EXPECT_EQ(merged.counters.at("c.total"), 6u);
    EXPECT_EQ(merged.histograms.at("h.lat").count, 3u);
    EXPECT_EQ(merged.gauges.at("g.depth"), 30u);
    EXPECT_EQ(merged.seq, 3u);
    if (expected.empty()) {
      expected = merged.ToJson();
    } else {
      EXPECT_EQ(merged.ToJson(), expected);
    }
  }

  // The ring retains all three windows and the dump is well-formed.
  EXPECT_EQ(obs.Windows().size(), 3u);
  auto parsed = util::ParseJson(obs.WindowsJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(ServiceObserverTest, ObservabilityReportRendersEverySurface) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("dblp", DblpDoc(0.01)).ok());
  ServiceOptions sopts;
  sopts.slots = 2;
  sopts.observer.slow_threshold_ns = 0;
  QueryService svc(&corpus, sopts);
  auto a = svc.CreateSession("alice");
  auto b = svc.CreateSession("bob");
  ASSERT_TRUE(svc.Execute(*a, "dblp", "//article/title").ok());
  ASSERT_TRUE(svc.Execute(*b, "dblp", "//phdthesis/author").ok());
  svc.observer()->SampleWindow();

  service::ObservabilityReport report = svc.ObservabilityReport();
  EXPECT_NE(report.prometheus.find("# TYPE service_queries counter"),
            std::string::npos);
  EXPECT_NE(report.prometheus.find("service_queries{status=\"ok\"} 2"),
            std::string::npos);
  EXPECT_NE(
      report.prometheus.find("service_tenant_queries{tenant=\"alice\","),
      std::string::npos);
  EXPECT_NE(report.prometheus.find("# TYPE service_slots gauge"),
            std::string::npos);
  EXPECT_NE(report.prometheus.find("trace_dropped_events"),
            std::string::npos);
  EXPECT_NE(report.top_text.find("alice"), std::string::npos);
  EXPECT_NE(report.top_text.find("bob"), std::string::npos);

  // Every JSON surface parses, queries-with-quotes and plan text included.
  for (const std::string* json :
       {&report.recent_json, &report.slow_json, &report.windows_json}) {
    auto parsed = util::ParseJson(*json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << *json;
  }

  // The flight-recorder dump reproduces both queries, newest first.
  auto recent = util::ParseJson(report.recent_json);
  const util::JsonValue* arr = recent->Find("recent");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->AsArray().size(), 2u);
  EXPECT_EQ(arr->AsArray()[0].StringOr("tenant", ""), "bob");
  EXPECT_EQ(arr->AsArray()[1].StringOr("tenant", ""), "alice");
}

}  // namespace
}  // namespace service
}  // namespace blossomtree
