// The service-level determinism contract (DESIGN.md §12): N sessions firing
// M queries each over a shared corpus get results byte-identical to a
// standalone serial engine over the same documents — at 1, 2, and 4
// execution-pool threads, with and without the corpus-wide shared caches,
// and with intra-query parallelism layered underneath. Concurrency and
// caching may change latency, never bytes.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "service/corpus.h"
#include "service/query_service.h"

namespace blossomtree {
namespace service {
namespace {

struct Workload {
  std::string document;
  std::string query;
};

std::vector<Workload> MixedWorkload() {
  return {
      {"dblp", "for $a in //article return $a/title"},
      {"dblp",
       "for $a in //article where exists($a/year) return "
       "<hit>{$a/title}</hit>"},
      {"catalog", "for $i in //item return $i/title"},
      {"catalog",
       "for $i in //item where exists($i/attributes) return "
       "<n>{$i/title}</n>"},
  };
}

/// Builds the two-document corpus every case here shares.
void FillCorpus(Corpus* corpus) {
  datagen::GenOptions gen;
  gen.scale = 0.02;
  gen.seed = 7;
  ASSERT_TRUE(
      corpus
          ->Add("dblp",
                datagen::GenerateDataset(datagen::Dataset::kD5Dblp, gen))
          .ok());
  ASSERT_TRUE(
      corpus
          ->Add("catalog",
                datagen::GenerateDataset(datagen::Dataset::kD3Catalog, gen))
          .ok());
}

/// Serial single-engine reference results, computed on fresh engines with
/// every cache and parallel path disabled.
std::map<std::string, std::string> SerialReference(const Corpus& corpus) {
  std::map<std::string, std::string> expected;
  for (const Workload& w : MixedWorkload()) {
    auto doc = corpus.Get(w.document);
    EXPECT_NE(doc, nullptr);
    engine::EngineOptions serial;
    serial.num_threads = 1;
    engine::BlossomTreeEngine ref(doc->doc(), serial);
    auto r = ref.EvaluateQuery(w.query);
    EXPECT_TRUE(r.ok()) << w.query << ": " << r.status().ToString();
    expected[w.document + "|" + w.query] = *r;
  }
  return expected;
}

/// Runs N sessions x M rounds of the mixed workload through a service and
/// checks every ticket against the reference, byte for byte.
void RunAndCompare(Corpus* corpus, const ServiceOptions& opts,
                   const std::map<std::string, std::string>& expected,
                   const std::string& label) {
  constexpr int kSessions = 3;
  constexpr int kRounds = 4;
  QueryService svc(corpus, opts);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(svc.CreateSession("tenant-" + std::to_string(s)));
  }
  std::vector<std::pair<const Workload*, std::shared_ptr<QueryTicket>>>
      tickets;
  const std::vector<Workload> workload = MixedWorkload();
  for (const Workload& w : workload) {
    for (int s = 0; s < kSessions; ++s) {
      for (int m = 0; m < kRounds; ++m) {
        tickets.emplace_back(&w, svc.Submit(*sessions[s], w.document,
                                            w.query));
      }
    }
  }
  for (auto& [w, ticket] : tickets) {
    const auto& r = ticket->Wait();
    ASSERT_TRUE(r.ok()) << label << " " << w->query << ": "
                        << r.status().ToString();
    EXPECT_EQ(*r, expected.at(w->document + "|" + w->query))
        << label << " " << w->document << " " << w->query;
  }
}

TEST(ServiceDeterminismTest, SharedCorpusMatchesSerialAcrossPoolSizes) {
  Corpus corpus;
  FillCorpus(&corpus);
  auto expected = SerialReference(corpus);
  for (size_t slots : {1u, 2u, 4u}) {
    ServiceOptions opts;
    opts.slots = slots;
    opts.max_queue = 256;
    RunAndCompare(&corpus, opts, expected,
                  "slots=" + std::to_string(slots) + " caches=off");
  }
}

TEST(ServiceDeterminismTest, SharedCachesMatchSerialAcrossPoolSizes) {
  CorpusOptions copts;
  copts.plan_cache.enabled = true;
  copts.result_cache.enabled = true;
  Corpus corpus(copts);
  FillCorpus(&corpus);
  auto expected = SerialReference(corpus);
  for (size_t slots : {1u, 2u, 4u}) {
    ServiceOptions opts;
    opts.slots = slots;
    opts.max_queue = 256;
    RunAndCompare(&corpus, opts, expected,
                  "slots=" + std::to_string(slots) + " caches=on");
  }
}

TEST(ServiceDeterminismTest, IntraQueryParallelismUnderneathStaysExact) {
  // Both concurrency layers at once: 4 inter-query slots, each query
  // fanning its partitioned scans onto a shared 2-worker intra pool.
  CorpusOptions copts;
  copts.plan_cache.enabled = true;
  copts.result_cache.enabled = true;
  Corpus corpus(copts);
  FillCorpus(&corpus);
  auto expected = SerialReference(corpus);
  ServiceOptions opts;
  opts.slots = 4;
  opts.max_queue = 256;
  opts.intra_query_threads = 2;
  RunAndCompare(&corpus, opts, expected, "slots=4 intra=2 caches=on");
}

TEST(ServiceDeterminismTest, RepeatedRunsAreBitwiseStable) {
  // Two complete service lifetimes over one corpus (second run hits the
  // shared caches warm) — the bytes must not care.
  CorpusOptions copts;
  copts.plan_cache.enabled = true;
  copts.result_cache.enabled = true;
  Corpus corpus(copts);
  FillCorpus(&corpus);
  auto expected = SerialReference(corpus);
  for (int run = 0; run < 2; ++run) {
    ServiceOptions opts;
    opts.slots = 4;
    opts.max_queue = 256;
    RunAndCompare(&corpus, opts, expected, "run=" + std::to_string(run));
  }
}

}  // namespace
}  // namespace service
}  // namespace blossomtree
