// Fairness and bounding of the service admission queue, pinned without
// threads: AdmissionQueue is externally synchronized, so Pop order is a
// pure function of the Push/Pop history and every case here is exact.

#include "service/admission_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "service/query_service.h"
#include "util/resource_guard.h"

namespace blossomtree {
namespace service {

/// Mints bare tickets (QueryTicket's constructor is private; the queue
/// treats them as opaque handles).
struct QueryTicketTestPeer {
  static std::shared_ptr<QueryTicket> Make(std::string tenant,
                                           std::string query) {
    return std::shared_ptr<QueryTicket>(new QueryTicket(
        std::move(tenant), "doc", std::move(query), util::QueryLimits{}));
  }
};

namespace {

std::shared_ptr<QueryTicket> Ticket(const std::string& tenant,
                                    const std::string& query) {
  return QueryTicketTestPeer::Make(tenant, query);
}

TEST(AdmissionQueueTest, FifoWithinOneTenant) {
  AdmissionQueue q(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Push("a", Ticket("a", "q" + std::to_string(i))));
  }
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto t = q.Pop();
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->query(), "q" + std::to_string(i));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.Pop(), nullptr);
}

TEST(AdmissionQueueTest, RoundRobinAcrossTenantsInFirstSeenOrder) {
  AdmissionQueue q(16);
  // b floods four queries before a and c submit one each; round-robin
  // means a and c each wait at most one dispatch, not four.
  ASSERT_TRUE(q.Push("b", Ticket("b", "b0")));
  ASSERT_TRUE(q.Push("b", Ticket("b", "b1")));
  ASSERT_TRUE(q.Push("b", Ticket("b", "b2")));
  ASSERT_TRUE(q.Push("b", Ticket("b", "b3")));
  ASSERT_TRUE(q.Push("a", Ticket("a", "a0")));
  ASSERT_TRUE(q.Push("c", Ticket("c", "c0")));

  std::vector<std::string> order;
  while (auto t = q.Pop()) order.push_back(t->query());
  EXPECT_EQ(order, (std::vector<std::string>{"b0", "a0", "c0", "b1", "b2",
                                             "b3"}));
}

TEST(AdmissionQueueTest, CursorIsStableAcrossEmptyTransitions) {
  AdmissionQueue q(16);
  ASSERT_TRUE(q.Push("a", Ticket("a", "a0")));
  ASSERT_TRUE(q.Push("b", Ticket("b", "b0")));
  EXPECT_EQ(q.Pop()->query(), "a0");
  // a's FIFO is now empty but its round-robin slot persists: when a
  // re-queues, dispatch continues from b (the cursor), not from a again.
  ASSERT_TRUE(q.Push("a", Ticket("a", "a1")));
  EXPECT_EQ(q.Pop()->query(), "b0");
  EXPECT_EQ(q.Pop()->query(), "a1");
  EXPECT_TRUE(q.empty());
}

TEST(AdmissionQueueTest, GlobalBoundRefusesPushFromAnyTenant) {
  AdmissionQueue q(2);
  EXPECT_TRUE(q.Push("a", Ticket("a", "a0")));
  EXPECT_TRUE(q.Push("a", Ticket("a", "a1")));
  // The bound is a total-queue property: a fresh tenant is refused too.
  EXPECT_FALSE(q.Push("b", Ticket("b", "b0")));
  EXPECT_FALSE(q.Push("a", Ticket("a", "a2")));
  EXPECT_EQ(q.size(), 2u);
  // Draining one slot re-admits exactly one.
  EXPECT_NE(q.Pop(), nullptr);
  EXPECT_TRUE(q.Push("b", Ticket("b", "b0")));
  EXPECT_FALSE(q.Push("b", Ticket("b", "b1")));
}

TEST(AdmissionQueueTest, ZeroCapacityRefusesEverything) {
  AdmissionQueue q(0);
  EXPECT_FALSE(q.Push("a", Ticket("a", "a0")));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.Pop(), nullptr);
}

TEST(AdmissionQueueTest, DrainAllReturnsPopOrderAndEmptiesQueue) {
  AdmissionQueue q(16);
  ASSERT_TRUE(q.Push("b", Ticket("b", "b0")));
  ASSERT_TRUE(q.Push("b", Ticket("b", "b1")));
  ASSERT_TRUE(q.Push("a", Ticket("a", "a0")));
  auto drained = q.DrainAll();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0]->query(), "b0");
  EXPECT_EQ(drained[1]->query(), "a0");
  EXPECT_EQ(drained[2]->query(), "b1");
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueueTest, PopIsDeterministicForAFixedHistory) {
  // Same interleaved Push/Pop script twice — identical dispatch order.
  auto run = [] {
    AdmissionQueue q(16);
    std::vector<std::string> order;
    q.Push("x", Ticket("x", "x0"));
    q.Push("y", Ticket("y", "y0"));
    order.push_back(q.Pop()->query());
    q.Push("x", Ticket("x", "x1"));
    q.Push("z", Ticket("z", "z0"));
    while (auto t = q.Pop()) order.push_back(t->query());
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace service
}  // namespace blossomtree
