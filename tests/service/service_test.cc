// Unit and concurrency tests for the src/service/ layer: Corpus registry
// semantics, QueryService execution / admission / cancellation / shutdown,
// and service.* metrics. Suite names stay under the Service* / Admission*
// prefixes so CI's TSan stress step picks them up via --gtest_filter.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "service/corpus.h"
#include "storage/btsx2.h"
#include "service/query_service.h"
#include "util/status.h"

namespace blossomtree {
namespace service {
namespace {

/// A small three-book library, built fresh (documents are non-movable).
std::unique_ptr<xml::Document> LibraryDoc() {
  auto d = std::make_unique<xml::Document>();
  d->BeginElement("lib");
  for (int i = 0; i < 3; ++i) {
    d->BeginElement("book");
    d->BeginElement("title");
    d->AddText("t" + std::to_string(i));
    d->EndElement();
    d->EndElement();
  }
  d->EndElement();
  EXPECT_TRUE(d->Finish().ok());
  return d;
}

constexpr char kTitles[] = "for $b in //book return $b/title";

// -- Corpus -------------------------------------------------------------------

TEST(ServiceCorpusTest, AddGetEvictNames) {
  Corpus corpus;
  EXPECT_EQ(corpus.size(), 0u);
  EXPECT_EQ(corpus.Get("lib"), nullptr);

  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  ASSERT_TRUE(corpus.Add("other", LibraryDoc()).ok());
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.Names(), (std::vector<std::string>{"lib", "other"}));

  auto doc = corpus.Get("lib");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->name(), "lib");
  EXPECT_NE(doc->generation(), 0u);

  EXPECT_TRUE(corpus.Evict("lib"));
  EXPECT_FALSE(corpus.Evict("lib"));
  EXPECT_EQ(corpus.Get("lib"), nullptr);
  EXPECT_EQ(corpus.size(), 1u);
}

TEST(ServiceCorpusTest, RejectsEmptyNameAndUnfinishedDocument) {
  Corpus corpus;
  EXPECT_FALSE(corpus.Add("", LibraryDoc()).ok());
  auto unfinished = std::make_unique<xml::Document>();
  unfinished->BeginElement("root");
  unfinished->EndElement();  // Never Finish()ed: generation stays 0.
  EXPECT_FALSE(corpus.Add("u", std::move(unfinished)).ok());
  EXPECT_EQ(corpus.size(), 0u);
}

TEST(ServiceCorpusTest, ReplaceBumpsGenerationAndKeepsOldHandleAlive) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  auto old_handle = corpus.Get("lib");
  uint64_t old_gen = old_handle->generation();

  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  auto new_handle = corpus.Get("lib");
  EXPECT_NE(new_handle->generation(), old_gen);
  EXPECT_EQ(corpus.size(), 1u);
  // The displaced document stays usable through the old shared handle —
  // the replacement-mid-traffic contract.
  EXPECT_EQ(old_handle->generation(), old_gen);
  EXPECT_EQ(old_handle->doc()->NumElements(), 7u);
}

TEST(ServiceCorpusTest, SharedPageStoreIsBuiltOnceAndCarriesGeneration) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  auto doc = corpus.Get("lib");
  const storage::NodeStore& s1 = doc->store();
  const storage::NodeStore& s2 = doc->store();
  EXPECT_EQ(&s1, &s2);
  EXPECT_EQ(s1.generation(), doc->generation());
  EXPECT_EQ(s1.NumNodes(), doc->doc()->NumNodes());
}

TEST(ServiceCorpusTest, CachesAreOffByDefaultAndOnWhenConfigured) {
  Corpus plain;
  EXPECT_EQ(plain.plan_cache(), nullptr);
  EXPECT_EQ(plain.result_cache(), nullptr);

  CorpusOptions opts;
  opts.plan_cache.enabled = true;
  opts.result_cache.enabled = true;
  Corpus cached(opts);
  EXPECT_NE(cached.plan_cache(), nullptr);
  EXPECT_NE(cached.result_cache(), nullptr);
}

TEST(ServiceCorpusTest, AddDiskServesBtsx2WithoutParsing) {
  // Ingest once, register the file, and the disk-backed document answers
  // queries byte-identically to the in-RAM build it came from.
  auto ram = LibraryDoc();
  std::string path = ::testing::TempDir() + "/bt_service_disk.btsx2";
  ASSERT_TRUE(storage::WriteBtsx2(*ram, path).ok());

  Corpus corpus;
  ASSERT_TRUE(corpus.AddDisk("lib", path).ok());
  auto doc = corpus.Get("lib");
  ASSERT_NE(doc, nullptr);
  EXPECT_TRUE(doc->disk_backed());
  EXPECT_EQ(doc->doc()->NumNodes(), ram->NumNodes());
  EXPECT_EQ(doc->generation(), doc->doc()->generation());
  EXPECT_NE(doc->generation(), 0u);
  // The store() substrate is the DiskStore itself.
  EXPECT_EQ(doc->store().NumNodes(), ram->NumNodes());

  QueryService svc(&corpus, {});
  auto session = svc.CreateSession("tenant-a");
  auto got = svc.Execute(*session, "lib", kTitles);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  engine::BlossomTreeEngine ref(ram.get());
  auto expected = ref.EvaluateQuery(kTitles);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*got, *expected);
  std::remove(path.c_str());
}

TEST(ServiceCorpusTest, AddDiskRejectsMissingFileAndPreadMode) {
  Corpus corpus;
  EXPECT_FALSE(corpus.AddDisk("x", "/nonexistent/f.btsx2").ok());
  auto ram = LibraryDoc();
  std::string path = ::testing::TempDir() + "/bt_service_pread.btsx2";
  ASSERT_TRUE(storage::WriteBtsx2(*ram, path).ok());
  storage::DiskStoreOptions opts;
  opts.use_mmap = false;  // No document facade: nothing to query.
  EXPECT_FALSE(corpus.AddDisk("x", path, opts).ok());
  std::remove(path.c_str());
}

// -- QueryService: execution --------------------------------------------------

TEST(ServiceQueryTest, ExecuteMatchesStandaloneSerialEngine) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());

  auto reference_doc = LibraryDoc();
  engine::EngineOptions serial;
  serial.num_threads = 1;
  engine::BlossomTreeEngine ref(reference_doc.get(), serial);
  auto expected = ref.EvaluateQuery(kTitles);
  ASSERT_TRUE(expected.ok());

  ServiceOptions opts;
  opts.slots = 2;
  QueryService svc(&corpus, opts);
  auto session = svc.CreateSession("tenant-a");
  auto got = svc.Execute(*session, "lib", kTitles);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);
}

TEST(ServiceQueryTest, UnknownDocumentRejectsWithNotFound) {
  Corpus corpus;
  QueryService svc(&corpus);
  auto session = svc.CreateSession("t");
  auto ticket = svc.Submit(*session, "nope", kTitles);
  ASSERT_NE(ticket, nullptr);
  const auto& r = ticket->Wait();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(ticket->done());
}

TEST(ServiceQueryTest, MalformedQuerySurfacesParseErrorOnTicket) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  QueryService svc(&corpus);
  auto session = svc.CreateSession("t");
  auto r = svc.Execute(*session, "lib", "for $b in ((( oops");
  ASSERT_FALSE(r.ok());
}

TEST(ServiceQueryTest, TicketCarriesSubmitMetadataAndTimings) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  QueryService svc(&corpus);
  auto session = svc.CreateSession("tenant-a");
  auto ticket = svc.Submit(*session, "lib", kTitles);
  ticket->Wait();
  EXPECT_EQ(ticket->tenant(), "tenant-a");
  EXPECT_EQ(ticket->document(), "lib");
  EXPECT_EQ(ticket->query(), kTitles);
  EXPECT_GT(ticket->e2e_ns(), 0u);
  EXPECT_LE(ticket->queue_delay_ns(), ticket->e2e_ns());
}

TEST(ServiceQueryTest, ProfileIsAttachedWhenRequested) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  ServiceOptions opts;
  opts.collect_profile = true;
  QueryService svc(&corpus, opts);
  auto session = svc.CreateSession("t");
  auto ticket = svc.Submit(*session, "lib", kTitles);
  ASSERT_TRUE(ticket->Wait().ok());
  EXPECT_FALSE(ticket->profile().operators.empty());
}

TEST(ServiceQueryTest, SessionLimitsGovernSubmittedQueries) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  QueryService svc(&corpus);

  util::QueryLimits tight;
  tight.max_result_rows = 1;  // The library has three matching titles.
  svc.DefineTenant("tight", tight);
  auto session = svc.CreateSession("tight");
  EXPECT_EQ(session->limits().max_result_rows, 1u);

  auto r = svc.Execute(*session, "lib", kTitles);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  // A per-session override lifts the inherited cap.
  session->set_limits(util::QueryLimits{});
  EXPECT_TRUE(svc.Execute(*session, "lib", kTitles).ok());
}

TEST(ServiceQueryTest, SessionsGetDistinctIdsAndKeepTenantName) {
  Corpus corpus;
  QueryService svc(&corpus);
  auto s1 = svc.CreateSession("a");
  auto s2 = svc.CreateSession("a");
  EXPECT_NE(s1->id(), s2->id());
  EXPECT_EQ(s1->tenant(), "a");
}

// -- QueryService: concurrency, admission, cancellation -----------------------

TEST(ServiceConcurrencyTest, ManyConcurrentQueriesAllSucceedIdentically) {
  datagen::GenOptions gen;
  gen.scale = 0.02;
  gen.seed = 7;
  Corpus corpus;
  ASSERT_TRUE(
      corpus.Add("dblp", datagen::GenerateDataset(datagen::Dataset::kD5Dblp,
                                                  gen))
          .ok());

  auto handle = corpus.Get("dblp");
  engine::EngineOptions serial;
  serial.num_threads = 1;
  engine::BlossomTreeEngine ref(handle->doc(), serial);
  const char* q = "for $a in //article return $a/title";
  auto expected = ref.EvaluateQuery(q);
  ASSERT_TRUE(expected.ok());

  ServiceOptions opts;
  opts.slots = 4;
  opts.max_queue = 256;
  QueryService svc(&corpus, opts);
  auto session = svc.CreateSession("t");
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(svc.Submit(*session, "dblp", q));
  }
  for (auto& t : tickets) {
    const auto& r = t->Wait();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, *expected);
  }
  EXPECT_EQ(svc.metrics().GetCounter("service.admitted")->value(), 32u);
  EXPECT_EQ(svc.metrics().GetCounter("service.completed")->value(), 32u);
  EXPECT_EQ(svc.metrics().GetCounter("service.rejected")->value(), 0u);
}

TEST(ServiceConcurrencyTest, SharedCachesPreserveResultsUnderConcurrency) {
  datagen::GenOptions gen;
  gen.scale = 0.02;
  gen.seed = 7;
  CorpusOptions copts;
  copts.plan_cache.enabled = true;
  copts.result_cache.enabled = true;
  Corpus corpus(copts);
  ASSERT_TRUE(
      corpus.Add("dblp", datagen::GenerateDataset(datagen::Dataset::kD5Dblp,
                                                  gen))
          .ok());

  auto handle = corpus.Get("dblp");
  engine::EngineOptions serial;
  serial.num_threads = 1;
  engine::BlossomTreeEngine ref(handle->doc(), serial);
  const char* queries[] = {
      "for $a in //article return $a/title",
      "for $a in //article where exists($a/year) return <hit>{$a/title}</hit>",
  };

  ServiceOptions opts;
  opts.slots = 4;
  QueryService svc(&corpus, opts);
  auto session = svc.CreateSession("t");
  for (const char* q : queries) {
    auto expected = ref.EvaluateQuery(q);
    ASSERT_TRUE(expected.ok());
    std::vector<std::shared_ptr<QueryTicket>> tickets;
    for (int i = 0; i < 16; ++i) {
      tickets.push_back(svc.Submit(*session, "dblp", q));
    }
    for (auto& t : tickets) {
      const auto& r = t->Wait();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(*r, *expected);
    }
  }
  // Sixteen identical queries through one shared plan cache: the plan is
  // compiled far fewer times than it is used.
  ASSERT_NE(corpus.plan_cache(), nullptr);
}

TEST(AdmissionControlTest, OverloadRejectsWithResourceExhausted) {
  datagen::GenOptions gen;
  gen.scale = 0.02;
  gen.seed = 7;
  Corpus corpus;
  ASSERT_TRUE(
      corpus.Add("dblp", datagen::GenerateDataset(datagen::Dataset::kD5Dblp,
                                                  gen))
          .ok());

  ServiceOptions opts;
  opts.slots = 1;
  opts.max_queue = 2;
  QueryService svc(&corpus, opts);
  auto session = svc.CreateSession("t");

  // One slot + two waiters against a fast submit loop: the 64-query burst
  // must overflow the bound. Every outcome is still accounted for exactly.
  constexpr int kBurst = 64;
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < kBurst; ++i) {
    tickets.push_back(
        svc.Submit(*session, "dblp", "for $a in //article return $a/title"));
  }
  int rejected = 0;
  for (auto& t : tickets) {
    const auto& r = t->Wait();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(svc.metrics().GetCounter("service.rejected")->value(),
            static_cast<uint64_t>(rejected));
  EXPECT_EQ(svc.metrics().GetCounter("service.admitted")->value(),
            static_cast<uint64_t>(kBurst - rejected));
}

TEST(AdmissionControlTest, ZeroQueueEitherRunsImmediatelyOrRejects) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  ServiceOptions opts;
  opts.slots = 1;
  opts.max_queue = 0;
  QueryService svc(&corpus, opts);
  auto session = svc.CreateSession("t");
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(svc.Submit(*session, "lib", kTitles));
  }
  for (auto& t : tickets) {
    const auto& r = t->Wait();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(t->queue_delay_ns(), 0u);
    }
  }
}

TEST(ServiceCancelTest, QueuedQueriesCancelWithoutRunning) {
  datagen::GenOptions gen;
  gen.scale = 0.02;
  gen.seed = 7;
  Corpus corpus;
  ASSERT_TRUE(
      corpus.Add("dblp", datagen::GenerateDataset(datagen::Dataset::kD5Dblp,
                                                  gen))
          .ok());
  ServiceOptions opts;
  opts.slots = 1;
  opts.max_queue = 64;
  QueryService svc(&corpus, opts);
  auto session = svc.CreateSession("t");

  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(
        svc.Submit(*session, "dblp", "for $a in //article return $a/title"));
  }
  for (auto& t : tickets) t->Cancel();
  svc.Drain();
  int cancelled = 0;
  for (auto& t : tickets) {
    ASSERT_TRUE(t->done());
    const auto& r = t->Wait();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
      ++cancelled;
    }
  }
  // The burst outruns the single slot, so cancellation must catch at least
  // the tail of the queue; completed-before-cancel is also legal.
  EXPECT_GT(cancelled, 0);
  EXPECT_EQ(svc.metrics().GetCounter("service.cancelled")->value(),
            static_cast<uint64_t>(cancelled));
}

TEST(ServiceCancelTest, CancelAfterCompletionIsANoOp) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  QueryService svc(&corpus);
  auto session = svc.CreateSession("t");
  auto ticket = svc.Submit(*session, "lib", kTitles);
  ASSERT_TRUE(ticket->Wait().ok());
  ticket->Cancel();
  EXPECT_TRUE(ticket->Wait().ok());
}

TEST(ServiceShutdownTest, DestructorCancelsQueuedAndCompletesEveryTicket) {
  datagen::GenOptions gen;
  gen.scale = 0.02;
  gen.seed = 7;
  Corpus corpus;
  ASSERT_TRUE(
      corpus.Add("dblp", datagen::GenerateDataset(datagen::Dataset::kD5Dblp,
                                                  gen))
          .ok());
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  {
    ServiceOptions opts;
    opts.slots = 1;
    opts.max_queue = 64;
    QueryService svc(&corpus, opts);
    auto session = svc.CreateSession("t");
    for (int i = 0; i < 16; ++i) {
      tickets.push_back(
          svc.Submit(*session, "dblp", "for $a in //article return $a/title"));
    }
    // Destroyed with most of the burst still queued.
  }
  for (auto& t : tickets) {
    ASSERT_TRUE(t->done());
    const auto& r = t->Wait();
    EXPECT_TRUE(r.ok() || r.status().code() == StatusCode::kCancelled)
        << r.status().ToString();
  }
}

TEST(ServiceMetricsTest, LatencyHistogramsCountCompletedQueries) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  QueryService svc(&corpus);
  auto session = svc.CreateSession("t");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(svc.Execute(*session, "lib", kTitles).ok());
  }
  EXPECT_EQ(svc.metrics().GetHistogram("service.e2e_ns")->Snapshot().count,
            8u);
  EXPECT_EQ(svc.metrics().GetHistogram("service.run_ns")->Snapshot().count,
            8u);
  EXPECT_EQ(svc.metrics().GetCounter("service.completed")->value(), 8u);
}

TEST(ServiceMetricsTest, MetricsCanBeDisabled) {
  Corpus corpus;
  ASSERT_TRUE(corpus.Add("lib", LibraryDoc()).ok());
  ServiceOptions opts;
  opts.collect_metrics = false;
  QueryService svc(&corpus, opts);
  auto session = svc.CreateSession("t");
  ASSERT_TRUE(svc.Execute(*session, "lib", kTitles).ok());
  EXPECT_EQ(svc.metrics().GetCounter("service.admitted")->value(), 0u);
}

}  // namespace
}  // namespace service
}  // namespace blossomtree
