#include "engine/plan_cache.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "flwor/parser.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace engine {
namespace {

std::unique_ptr<xml::Document> ParseDoc(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

const flwor::Flwor& AsFlwor(const flwor::Expr& expr) {
  EXPECT_EQ(expr.kind, flwor::Expr::Kind::kFlwor);
  return *expr.flwor;
}

TEST(CanonicalKeyTest, WhitespaceInsensitiveFlworKey) {
  auto a = flwor::ParseQuery("for $x in //book return $x/title");
  auto b = flwor::ParseQuery("for   $x   in //book\n  return $x/title");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalFlworKey(AsFlwor(**a)), CanonicalFlworKey(AsFlwor(**b)));
}

TEST(CanonicalKeyTest, DistinctQueriesDistinctKeys) {
  const char* queries[] = {
      "for $x in //book return $x/title",
      "for $x in //book return $x/author",
      "for $y in //book return $y/title",  // Variable names are part of
                                           // bindings, hence of the key.
      "for $x in //book where exists($x/year) return $x/title",
      "for $x in //book[year = \"2003\"] return $x/title",
  };
  std::vector<std::string> keys;
  for (const char* q : queries) {
    auto e = flwor::ParseQuery(q);
    ASSERT_TRUE(e.ok()) << q;
    keys.push_back(CanonicalFlworKey(AsFlwor(**e)));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << queries[i] << " vs " << queries[j];
    }
  }
}

TEST(CanonicalKeyTest, PathKeyDistinguishesPredicates) {
  auto a = xpath::ParsePath("//book/title");
  auto b = xpath::ParsePath("//book[year = \"2003\"]/title");
  auto c = xpath::ParsePath("//book[2]/title");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(CanonicalPathKey(*a), CanonicalPathKey(*b));
  EXPECT_NE(CanonicalPathKey(*a), CanonicalPathKey(*c));
  EXPECT_NE(CanonicalPathKey(*b), CanonicalPathKey(*c));
}

TEST(PlanCacheTest, HitsOnRepeatedQuery) {
  auto doc = ParseDoc(
      "<bib><book><title>A</title><year>2003</year></book>"
      "<book><title>B</title><year>1999</year></book></bib>");
  EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_cache.enabled = true;
  BlossomTreeEngine eng(doc.get(), opts);
  ASSERT_NE(eng.plan_cache(), nullptr);

  const char* q = "for $b in //book where $b/year = \"2003\" "
                  "return <hit>{$b/title}</hit>";
  auto cold = eng.EvaluateQuery(q);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  util::CacheStats after_cold = eng.plan_cache()->Stats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_GE(after_cold.misses, 2u);  // Parsed level + compiled level.
  EXPECT_GE(after_cold.entries, 2u);

  auto warm = eng.EvaluateQuery(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*warm, *cold);
  util::CacheStats after_warm = eng.plan_cache()->Stats();
  EXPECT_GE(after_warm.hits, after_cold.hits + 2);  // Text hit + FLWOR hit.
  EXPECT_EQ(after_warm.misses, after_cold.misses);

  // A formatting variant misses level 1 (different text) but hits level 2
  // (same canonical FLWOR).
  auto variant = eng.EvaluateQuery(
      "for $b in //book\n  where $b/year = \"2003\"\n  "
      "return <hit>{$b/title}</hit>");
  ASSERT_TRUE(variant.ok());
  EXPECT_EQ(*variant, *cold);
  util::CacheStats after_variant = eng.plan_cache()->Stats();
  EXPECT_GE(after_variant.hits, after_warm.hits + 1);
}

TEST(PlanCacheTest, PathPlansAreCached) {
  auto doc = ParseDoc("<bib><book><title>A</title></book></bib>");
  EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_cache.enabled = true;
  BlossomTreeEngine eng(doc.get(), opts);
  auto path = xpath::ParsePath("//book/title");
  ASSERT_TRUE(path.ok());
  auto cold = eng.EvaluatePath(*path);
  ASSERT_TRUE(cold.ok());
  util::CacheStats after_cold = eng.plan_cache()->Stats();
  EXPECT_EQ(after_cold.hits, 0u);
  auto warm = eng.EvaluatePath(*path);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*warm, *cold);
  EXPECT_GE(eng.plan_cache()->Stats().hits, 1u);
}

TEST(PlanCacheTest, EvictsUnderTinyBudget) {
  auto doc = ParseDoc("<bib><book><title>A</title></book></bib>");
  EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_cache.enabled = true;
  opts.plan_cache.max_bytes = 2048;  // A handful of compiled plans at most.
  opts.plan_cache.shards = 1;
  BlossomTreeEngine eng(doc.get(), opts);
  for (int i = 0; i < 64; ++i) {
    std::string q = "for $x in //book return <e" + std::to_string(i) +
                    ">{$x/title}</e" + std::to_string(i) + ">";
    auto r = eng.EvaluateQuery(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  util::CacheStats s = eng.plan_cache()->Stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, 2048u);
  EXPECT_LT(s.entries, 64u);
}

TEST(ResultCacheTest, HitsSkipRescanning) {
  datagen::GenOptions o;
  o.scale = 0.01;
  o.seed = 7;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  EngineOptions opts;
  opts.num_threads = 1;
  opts.result_cache.enabled = true;
  BlossomTreeEngine eng(doc.get(), opts);
  ASSERT_NE(eng.result_cache(), nullptr);
  auto path = xpath::ParsePath("//article/title");
  ASSERT_TRUE(path.ok());

  auto cold = eng.EvaluatePath(*path);
  ASSERT_TRUE(cold.ok());
  util::CacheStats after_cold = eng.result_cache()->Stats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_GT(after_cold.entries, 0u);

  auto warm = eng.EvaluatePath(*path);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*warm, *cold);
  util::CacheStats after_warm = eng.result_cache()->Stats();
  EXPECT_GT(after_warm.hits, 0u);
  EXPECT_EQ(after_warm.misses, after_cold.misses);
}

TEST(ResultCacheTest, DocumentGenerationInvalidates) {
  // Two builds of byte-identical XML get distinct generations, so a result
  // cache shared across engines can never serve one document's matches for
  // the other.
  const char* xml = "<bib><book><title>A</title></book></bib>";
  auto doc1 = ParseDoc(xml);
  auto doc2 = ParseDoc(xml);
  ASSERT_NE(doc1->generation(), 0u);
  ASSERT_NE(doc2->generation(), 0u);
  ASSERT_NE(doc1->generation(), doc2->generation());

  util::CacheOptions cache_opts;
  cache_opts.enabled = true;
  exec::NokResultCache shared(cache_opts);
  auto path = xpath::ParsePath("//book/title");
  ASSERT_TRUE(path.ok());

  EngineOptions opts;
  opts.num_threads = 1;
  opts.result_cache.enabled = true;
  opts.plan.result_cache = &shared;  // Injected: both engines share it.

  BlossomTreeEngine eng1(doc1.get(), opts);
  auto r1 = eng1.EvaluatePath(*path);
  ASSERT_TRUE(r1.ok());
  util::CacheStats after_first = shared.Stats();
  EXPECT_GT(after_first.entries, 0u);

  BlossomTreeEngine eng2(doc2.get(), opts);
  auto r2 = eng2.EvaluatePath(*path);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, *r1);  // Same content, same node ids.
  util::CacheStats after_second = shared.Stats();
  // The second engine's scan keyed on a new generation: misses, no hits.
  EXPECT_EQ(after_second.hits, after_first.hits);
  EXPECT_GT(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.entries, after_first.entries);

  // Same engine again: now it hits its own generation's entries.
  auto r1b = eng1.EvaluatePath(*path);
  ASSERT_TRUE(r1b.ok());
  EXPECT_EQ(*r1b, *r1);
  EXPECT_GT(shared.Stats().hits, after_second.hits);
}

TEST(ResultCacheTest, ByteBudgetEvictionUnderPressure) {
  datagen::GenOptions o;
  o.scale = 0.02;
  o.seed = 7;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  EngineOptions opts;
  opts.num_threads = 1;
  opts.result_cache.enabled = true;
  opts.result_cache.max_bytes = 4096;  // Far below one article scan's cells.
  opts.result_cache.shards = 2;
  BlossomTreeEngine eng(doc.get(), opts);

  // Uncached reference for correctness under eviction churn.
  BlossomTreeEngine ref(doc.get(), [] {
    EngineOptions plain;
    plain.num_threads = 1;
    return plain;
  }());

  const char* paths[] = {"//article/title", "//article/year",
                         "//article/author", "//inproceedings/title"};
  for (int round = 0; round < 2; ++round) {
    for (const char* p : paths) {
      auto path = xpath::ParsePath(p);
      ASSERT_TRUE(path.ok()) << p;
      auto got = eng.EvaluatePath(*path);
      auto expected = ref.EvaluatePath(*path);
      ASSERT_TRUE(got.ok() && expected.ok()) << p;
      EXPECT_EQ(*got, *expected) << p;
    }
  }
  util::CacheStats s = eng.result_cache()->Stats();
  EXPECT_LE(s.bytes, 4096u);
  // Either entries were evicted to make room, or every scan was too big to
  // cache at all — both keep the budget; the churn must not corrupt results.
  EXPECT_TRUE(s.evictions > 0 || s.entries == 0) << s.evictions;
}

TEST(ResultCacheTest, CachedRunsBitwiseIdenticalAcrossThreadCounts) {
  datagen::GenOptions o;
  o.scale = 0.02;
  o.seed = 7;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  const char* queries[] = {
      "for $a in //article return $a/title",
      "for $a in //article where exists($a/year) return <hit>{$a/title}</hit>",
  };
  for (const char* q : queries) {
    EngineOptions serial;
    serial.num_threads = 1;
    BlossomTreeEngine ref(doc.get(), serial);
    auto expected = ref.EvaluateQuery(q);
    ASSERT_TRUE(expected.ok()) << q;
    for (unsigned t : {1u, 2u, 4u}) {
      EngineOptions opts;
      opts.num_threads = t;
      opts.plan_cache.enabled = true;
      opts.result_cache.enabled = true;
      BlossomTreeEngine eng(doc.get(), opts);
      auto cold = eng.EvaluateQuery(q);
      ASSERT_TRUE(cold.ok()) << q << " threads=" << t;
      EXPECT_EQ(*cold, *expected) << q << " cold, threads=" << t;
      auto warm = eng.EvaluateQuery(q);
      ASSERT_TRUE(warm.ok()) << q << " threads=" << t;
      EXPECT_EQ(*warm, *expected) << q << " warm, threads=" << t;
      if (t > 1) {
        EXPECT_GT(eng.result_cache()->Stats().hits, 0u) << q;
      }
    }
  }
}

TEST(CacheMetricsTest, CountersAppearOnlyWhenCachesEnabled) {
  auto doc = ParseDoc("<bib><book><title>A</title></book></bib>");
  auto path = xpath::ParsePath("//book/title");
  ASSERT_TRUE(path.ok());

  EngineOptions off;
  off.num_threads = 1;
  off.collect_metrics = true;
  BlossomTreeEngine plain(doc.get(), off);
  ASSERT_TRUE(plain.EvaluatePath(*path).ok());
  EXPECT_EQ(plain.metrics().CountersText().find("cache."), std::string::npos);

  EngineOptions on;
  on.num_threads = 1;
  on.collect_metrics = true;
  on.plan_cache.enabled = true;
  on.result_cache.enabled = true;
  BlossomTreeEngine cached(doc.get(), on);
  ASSERT_TRUE(cached.EvaluatePath(*path).ok());
  ASSERT_TRUE(cached.EvaluatePath(*path).ok());
  std::string text = cached.metrics().CountersText();
  EXPECT_NE(text.find("cache.plan.hits"), std::string::npos) << text;
  EXPECT_NE(text.find("cache.result.hits"), std::string::npos) << text;
}

TEST(CacheMetricsTest, DisabledCachesLeaveCounterSurfaceIdentical) {
  // EngineOptions with default-initialized cache knobs must produce the
  // exact counter text of an engine that predates the caches — the perf
  // gate's baselines pin this.
  auto doc = ParseDoc(
      "<bib><book><title>A</title><year>2003</year></book></bib>");
  const char* q = "for $b in //book return $b/title";
  EngineOptions a;
  a.num_threads = 1;
  a.collect_metrics = true;
  BlossomTreeEngine e1(doc.get(), a);
  ASSERT_TRUE(e1.EvaluateQuery(q).ok());

  EngineOptions b;
  b.num_threads = 1;
  b.collect_metrics = true;
  b.plan_cache = util::CacheOptions{};   // Explicitly default: disabled.
  b.result_cache = util::CacheOptions{};
  BlossomTreeEngine e2(doc.get(), b);
  ASSERT_TRUE(e2.EvaluateQuery(q).ok());
  EXPECT_EQ(e1.metrics().CountersText(), e2.metrics().CountersText());
  EXPECT_EQ(e1.plan_cache(), nullptr);
  EXPECT_EQ(e1.result_cache(), nullptr);
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
