// Resource-limit semantics end to end (DESIGN.md §9): deadlines, cell/row
// budgets, cancellation, and parser caps through EngineOptions::limits.
#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace engine {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t MillisSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

std::unique_ptr<xml::Document> RecursiveDoc(double scale) {
  datagen::GenOptions o;
  o.scale = scale;
  o.seed = 7;
  return datagen::GenerateDataset(datagen::Dataset::kD1Recursive, o);
}

xpath::PathExpr MustParsePath(std::string_view s) {
  auto r = xpath::ParsePath(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

// The ISSUE's acceptance scenario: a same-tag-nested D1 query forced onto
// the naive O(n^2) join runs for seconds unlimited, but a 10ms deadline
// returns kResourceExhausted promptly — the guard is sampled inside the
// joins and scans, not just between queries.
TEST(EngineLimitsTest, DeadlineExceededPromptlyOnLongQuery) {
  // ~2200 nodes: the naive join's full-document re-scans make the
  // unlimited run a few seconds, so the 10ms deadline interrupts it six
  // orders of magnitude before completion.
  auto doc = RecursiveDoc(/*scale=*/0.015);
  xpath::PathExpr path = MustParsePath("//b1//c2//b1");

  EngineOptions slow;
  slow.plan.strategy = opt::JoinStrategy::kNaiveNestedLoop;
  slow.num_threads = 1;
  BlossomTreeEngine unlimited(doc.get(), slow);
  Clock::time_point t0 = Clock::now();
  auto full = unlimited.EvaluatePath(path);
  uint64_t unlimited_millis = MillisSince(t0);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full.value().empty());
  // The dataset must be big enough that the deadline actually interrupts
  // mid-query rather than racing query completion.
  EXPECT_GT(unlimited_millis, 1000u) << "dataset too small for the scenario";

  EngineOptions capped = slow;
  capped.limits.deadline_millis = 10;
  BlossomTreeEngine engine(doc.get(), capped);
  t0 = Clock::now();
  auto r = engine.EvaluatePath(path);
  uint64_t capped_millis = MillisSince(t0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // "Promptly": orders of magnitude under the unlimited runtime. The slack
  // over the 10ms budget absorbs scheduler noise on loaded CI machines.
  EXPECT_LT(capped_millis, 500u);
  EXPECT_LT(capped_millis, unlimited_millis / 2);
}

TEST(EngineLimitsTest, ZeroCellBudgetRejectsImmediately) {
  auto doc = RecursiveDoc(/*scale=*/0.05);
  EngineOptions options;
  options.num_threads = 1;
  options.limits.max_nl_cells = 0;
  BlossomTreeEngine engine(doc.get(), options);
  auto r = engine.EvaluatePath(MustParsePath("//b1"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineLimitsTest, ZeroRowBudgetRejectsImmediately) {
  auto doc = RecursiveDoc(/*scale=*/0.05);
  EngineOptions options;
  options.num_threads = 1;
  options.limits.max_result_rows = 0;
  BlossomTreeEngine engine(doc.get(), options);
  auto r = engine.EvaluatePath(MustParsePath("//b1"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineLimitsTest, HugeBudgetsBehaveAsUnlimited) {
  auto doc = RecursiveDoc(/*scale=*/0.05);
  xpath::PathExpr path = MustParsePath("//b1//c2");

  BlossomTreeEngine plain(doc.get(), {});
  auto expected = plain.EvaluatePath(path);
  ASSERT_TRUE(expected.ok());

  EngineOptions options;
  options.limits.deadline_millis = 1000 * 60 * 60;
  options.limits.max_nl_cells = 1ull << 60;
  options.limits.max_nl_bytes = 1ull << 60;
  options.limits.max_result_rows = 1ull << 60;
  BlossomTreeEngine capped(doc.get(), options);
  auto r = capped.EvaluatePath(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), expected.value());
}

// Theorem-1 determinism survives governance: limits that are never hit must
// not perturb results at any thread count (charging happens in the same
// order everywhere; checks never mutate state).
TEST(EngineLimitsTest, UnhitLimitsBitwiseIdenticalAcrossThreads) {
  auto doc = RecursiveDoc(/*scale=*/0.1);
  const char* query =
      "for $b in //b1 let $c := $b//c2 where exists($b//c1) "
      "return <hit>{$c}</hit>";

  BlossomTreeEngine plain(doc.get(), {});
  auto expected = plain.EvaluateQuery(query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (unsigned threads : {1u, 2u, 4u}) {
    EngineOptions options;
    options.num_threads = threads;
    options.limits.deadline_millis = 1000 * 60 * 60;
    options.limits.max_nl_cells = 1ull << 40;
    options.limits.max_nl_bytes = 1ull << 50;
    options.limits.max_result_rows = 1ull << 40;
    BlossomTreeEngine engine(doc.get(), options);
    auto r = engine.EvaluateQuery(query);
    ASSERT_TRUE(r.ok()) << "threads=" << threads << ": "
                        << r.status().ToString();
    EXPECT_EQ(r.value(), expected.value()) << "threads=" << threads;
  }
}

TEST(EngineLimitsTest, DeadlineAppliesToFlworQueries) {
  auto doc = RecursiveDoc(/*scale=*/0.5);
  EngineOptions options;
  options.plan.strategy = opt::JoinStrategy::kNaiveNestedLoop;
  options.num_threads = 1;
  options.limits.deadline_millis = 0;  // Trips on the first check.
  BlossomTreeEngine engine(doc.get(), options);
  auto r = engine.EvaluateQuery("for $b in //b1//c2//b1 return <r>{$b}</r>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(EngineLimitsTest, CancelReturnsCancelled) {
  auto doc = RecursiveDoc(/*scale=*/0.05);
  BlossomTreeEngine engine(doc.get(), {});
  engine.Cancel();
  auto r = engine.EvaluatePath(MustParsePath("//b1"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  // Re-arming does not clear external cancellation...
  r = engine.EvaluatePath(MustParsePath("//b1"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(EngineLimitsTest, QuerySizeAndDepthLimitsApplyToParsing) {
  auto doc = RecursiveDoc(/*scale=*/0.02);
  EngineOptions options;
  options.limits.max_query_bytes = 16;
  BlossomTreeEngine tiny(doc.get(), options);
  auto r = tiny.EvaluateQuery("for $b in //b1 return <r>{$b}</r>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  EngineOptions shallow;
  shallow.limits.max_parse_depth = 4;
  BlossomTreeEngine engine(doc.get(), shallow);
  r = engine.EvaluateQuery(
      "for $b in //b1 where ((((((($b = \"x\"))))))) return <r/>");
  EXPECT_FALSE(r.ok());
}

// The cell budget caps intermediate NestedList materialization, and a trip
// must not poison the engine: each evaluation re-arms the guard, so the
// same engine keeps returning the same clean verdict instead of corrupt
// state, and the query still runs fine ungoverned.
TEST(EngineLimitsTest, CellBudgetTripsAndEngineRecovers) {
  auto doc = RecursiveDoc(/*scale=*/0.2);
  EngineOptions options;
  options.num_threads = 1;
  options.limits.max_nl_cells = 8;
  BlossomTreeEngine engine(doc.get(), options);
  for (int round = 0; round < 2; ++round) {
    auto r = engine.EvaluatePath(MustParsePath("//b1//c2"));
    ASSERT_FALSE(r.ok()) << "round " << round;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_GT(engine.guard().CellsCharged(), 8u);
  }

  EngineOptions unlimited;
  unlimited.num_threads = 1;
  BlossomTreeEngine fresh(doc.get(), unlimited);
  auto expected = fresh.EvaluatePath(MustParsePath("//b1//c2"));
  ASSERT_TRUE(expected.ok());
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
