// Reverse axes (parent::, ancestor::, ..) — outside the BlossomTree subset
// (pattern edges point downward), evaluated navigationally with a graceful
// engine fallback.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/path_eval.h"
#include "pattern/builder.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace engine {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

std::vector<xml::NodeId> Eval(const xml::Document& doc,
                              std::string_view query) {
  auto p = xpath::ParsePath(query);
  EXPECT_TRUE(p.ok()) << query << ": " << p.status().ToString();
  PathEvaluator ev(&doc);
  auto r = ev.Evaluate(*p);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : std::vector<xml::NodeId>{};
}

TEST(ReverseAxesTest, ParserAcceptsNamedAxes) {
  auto p = xpath::ParsePath("//b/parent::a");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->steps[1].axis, xpath::Axis::kParent);
  EXPECT_EQ(p->steps[1].name, "a");
  auto a = xpath::ParsePath("//b/ancestor::a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->steps[1].axis, xpath::Axis::kAncestor);
  auto c = xpath::ParsePath("//b/child::c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->steps[1].axis, xpath::Axis::kChild);
  auto s = xpath::ParsePath("//b/self::b");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->steps[1].axis, xpath::Axis::kSelf);
  EXPECT_FALSE(xpath::ParsePath("//b/sideways::a").ok());
}

TEST(ReverseAxesTest, DotDotShorthand) {
  auto p = xpath::ParsePath("//b/..");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->steps.size(), 2u);
  EXPECT_EQ(p->steps[1].axis, xpath::Axis::kParent);
  EXPECT_EQ(p->steps[1].name, "*");
}

TEST(ReverseAxesTest, ToStringRoundTrip) {
  for (const char* q :
       {"//b/parent::a", "//b/ancestor::a/c", "//b/self::b"}) {
    auto p = xpath::ParsePath(q);
    ASSERT_TRUE(p.ok()) << q;
    auto again = xpath::ParsePath(p->ToString());
    ASSERT_TRUE(again.ok()) << p->ToString();
    EXPECT_EQ(again->ToString(), p->ToString());
  }
}

TEST(ReverseAxesTest, ParentEvaluation) {
  auto doc = Parse("<r><a><b/></a><x><b/></x></r>");
  auto out = Eval(*doc, "//b/parent::a");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(doc->TagName(out[0]), "a");
  EXPECT_EQ(Eval(*doc, "//b/..").size(), 2u);
}

TEST(ReverseAxesTest, AncestorEvaluation) {
  auto doc = Parse("<a><x><a><b/></a></x></a>");
  auto out = Eval(*doc, "//b/ancestor::a");
  EXPECT_EQ(out.size(), 2u);
  // Positional counts outward from the context.
  auto nearest = Eval(*doc, "//b/ancestor::a[1]");
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0], 2u);  // The inner a.
}

TEST(ReverseAxesTest, SelfWithNameFilters) {
  auto doc = Parse("<r><a/><b/></r>");
  EXPECT_EQ(Eval(*doc, "/r/*/self::a").size(), 1u);
}

TEST(ReverseAxesTest, ParentRootHasNoParent) {
  auto doc = Parse("<a><b/></a>");
  EXPECT_TRUE(Eval(*doc, "/a/..").empty());
}

TEST(ReverseAxesTest, BuilderRejectsReverseAxes) {
  auto p = xpath::ParsePath("//b/parent::a");
  ASSERT_TRUE(p.ok());
  auto t = pattern::BuildFromPath(*p);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kUnsupported);
}

TEST(ReverseAxesTest, EngineFallsBackNavigationally) {
  auto doc = Parse("<r><a><b/></a><x><b/></x></r>");
  BlossomTreeEngine engine(doc.get());
  auto p = xpath::ParsePath("//b/parent::a");
  ASSERT_TRUE(p.ok());
  auto r = engine.EvaluatePath(*p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 1u);
  EXPECT_NE(engine.LastExplain().find("navigational fallback"),
            std::string::npos);
}

TEST(ReverseAxesTest, FlworWithReverseAxisBinding) {
  auto doc = Parse("<r><a><b>1</b></a><a><b>2</b></a></r>");
  BlossomTreeEngine engine(doc.get());
  auto out = engine.EvaluateQuery(
      "for $b in //b for $a in $b/parent::a return <p>{ $b }</p>");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, "<p><b>1</b></p><p><b>2</b></p>");
}

TEST(ReverseAxesTest, FollowingAxis) {
  auto doc = Parse("<r><a><x/></a><b/><a/><b/></r>");
  // following::b from the first a: both b's (the x inside a is skipped).
  auto out = Eval(*doc, "/r/a[1]/following::b");
  EXPECT_EQ(out.size(), 2u);
  // following from the last b: nothing.
  EXPECT_TRUE(Eval(*doc, "/r/b[2]/following::a").empty());
}

TEST(ReverseAxesTest, PrecedingAxisExcludesAncestors) {
  auto doc = Parse("<a><b/><a><c/></a></a>");
  // preceding::a from c: the outer a is an ancestor → excluded.
  EXPECT_TRUE(Eval(*doc, "//c/preceding::a").empty());
  // preceding::b from c: the earlier sibling-subtree b.
  EXPECT_EQ(Eval(*doc, "//c/preceding::b").size(), 1u);
}

TEST(ReverseAxesTest, PrecedingPositionalCountsBackward) {
  auto doc = Parse("<r><k>1</k><k>2</k><k>3</k><z/></r>");
  auto out = Eval(*doc, "//z/preceding::k[1]");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(doc->StringValue(out[0]), "3");  // Nearest preceding first.
}

TEST(ReverseAxesTest, FollowingVsDocOrderEquivalence) {
  // following::x == all x after the subtree; cross-check by region labels.
  auto doc = Parse("<r><a><x/><y/></a><x/><y><x/></y></r>");
  auto out = Eval(*doc, "//a/following::x");
  for (xml::NodeId n : out) {
    EXPECT_GT(n, doc->SubtreeEnd(1));
  }
  EXPECT_EQ(out.size(), 2u);
}

TEST(ReverseAxesTest, PredicateWithReverseAxis) {
  auto doc = Parse("<r><a><b/></a><x><b/></x></r>");
  // b's whose parent is an a.
  auto out = Eval(*doc, "//b[parent::a]");
  ASSERT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
