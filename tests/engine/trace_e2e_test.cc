// End-to-end tracing and metrics: a FLWOR query executed with intra-query
// parallelism exports a Chrome trace that actually parses and covers the
// whole lifecycle (parse, plan, every plan operator, pool tasks), and the
// deterministic metric/profile text surfaces are bitwise-identical across
// thread counts (DESIGN.md §10).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "util/json.h"
#include "util/trace.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace engine {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Enough top-level subtrees that a 4-thread engine actually partitions.
std::string BigBibXml() {
  std::string xml = "<bib>";
  for (int i = 0; i < 40; ++i) {
    xml += "<book><title>t" + std::to_string(i) + "</title>";
    if (i % 2 == 0) {
      xml += "<author><last>l" + std::to_string(i % 7) + "</last></author>";
    }
    xml += "</book>";
  }
  xml += "</bib>";
  return xml;
}

constexpr const char* kFlworQuery =
    "for $b in //book[//author] return <o>{ $b/title }</o>";

/// The tracer is process-wide: make each test hermetic.
class TraceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Tracer::Get().Disable();
    util::Tracer::Get().Clear();
  }
  void TearDown() override {
    util::Tracer::Get().Disable();
    util::Tracer::Get().Clear();
  }
};

TEST_F(TraceE2eTest, FlworTraceCoversWholeLifecycleAtFourThreads) {
  auto doc = Parse(BigBibXml());
  EngineOptions opts;
  opts.trace = true;
  opts.num_threads = 4;
  opts.collect_profile = true;
  BlossomTreeEngine engine(doc.get(), opts);
  ASSERT_EQ(engine.EffectiveThreads(), 4u);
  auto r = engine.EvaluateQuery(kFlworQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // The query has returned, so all pool futures are joined and the export
  // cannot race recording.
  std::string json = util::Tracer::Get().ExportJson();
  auto parsed = util::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::set<std::string> span_names;  // 'B' events only.
  int pool_tasks = 0;
  for (const util::JsonValue& e : events->AsArray()) {
    if (e.StringOr("ph", "") != "B") continue;
    std::string name = e.StringOr("name", "");
    span_names.insert(name);
    if (e.StringOr("cat", "") == "pool" && name == "task") ++pool_tasks;
  }

  EXPECT_TRUE(span_names.count("flwor::ParseQuery")) << json;
  EXPECT_TRUE(span_names.count("opt::PlanQuery")) << json;
  EXPECT_TRUE(span_names.count("query")) << json;
  EXPECT_GE(pool_tasks, 1) << json;

  // Every operator of the executed plan shows up on the timeline. Span
  // names are truncated to the ring slot's inline capacity; a profile-only
  // "MergedNokScan" entry matches its "MergedNokScan.run" span by prefix.
  const QueryProfile& prof = engine.LastProfile();
  ASSERT_FALSE(prof.operators.empty());
  for (const OperatorProfile& op : prof.operators) {
    std::string want = op.label.substr(0, 38);
    bool found = false;
    for (const std::string& name : span_names) {
      if (name == want || name.rfind(op.label + ".", 0) == 0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no span for operator: " << op.label;
  }
}

TEST_F(TraceE2eTest, CounterTextAndProfileTextIdenticalAcrossThreadCounts) {
  auto doc = Parse(BigBibXml());
  auto path = xpath::ParsePath("//book[//author]//title");
  ASSERT_TRUE(path.ok());

  std::vector<std::string> counter_texts;
  std::vector<std::string> profile_texts;
  std::vector<std::string> explain_analyze_texts;
  for (unsigned threads : {1u, 2u, 4u}) {
    EngineOptions opts;
    opts.num_threads = threads;
    opts.collect_profile = true;
    opts.collect_metrics = true;
    BlossomTreeEngine engine(doc.get(), opts);
    ASSERT_TRUE(engine.EvaluatePath(*path).ok());
    ASSERT_TRUE(engine.EvaluateQuery(kFlworQuery).ok());
    counter_texts.push_back(engine.metrics().CountersText());
    profile_texts.push_back(engine.LastProfile().ToText());
    explain_analyze_texts.push_back(engine.LastExplainAnalyze());
  }
  // Bitwise identity: latencies live only in histograms, never in these
  // surfaces, and the counters themselves are schedule-independent.
  EXPECT_EQ(counter_texts[0], counter_texts[1]);
  EXPECT_EQ(counter_texts[0], counter_texts[2]);
  EXPECT_FALSE(counter_texts[0].empty());
  EXPECT_EQ(profile_texts[0], profile_texts[1]);
  EXPECT_EQ(profile_texts[0], profile_texts[2]);

  // EXPLAIN ANALYZE carries wall times, so no cross-thread equality — but
  // its "(actual: ...)" column must align on every line.
  for (const std::string& text : explain_analyze_texts) {
    size_t column = std::string::npos;
    size_t pos = 0, lines = 0;
    for (size_t nl = text.find('\n'); nl != std::string::npos;
         pos = nl + 1, nl = text.find('\n', pos)) {
      std::string line = text.substr(pos, nl - pos);
      size_t at = line.find("(actual:");
      if (at == std::string::npos) continue;
      if (column == std::string::npos) column = at;
      EXPECT_EQ(at, column) << text;
      ++lines;
    }
    EXPECT_GT(lines, 0u);
  }
}

TEST_F(TraceE2eTest, MetricsJsonAttachesToProfileAndParses) {
  auto doc = Parse(BigBibXml());
  EngineOptions opts;
  opts.collect_profile = true;
  opts.collect_metrics = true;
  BlossomTreeEngine engine(doc.get(), opts);
  ASSERT_TRUE(engine.EvaluateQuery(kFlworQuery).ok());
  std::string json = engine.LastProfile().ToJson();
  auto parsed = util::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  const util::JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr) << json;
  const util::JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->NumberOr("engine.queries", 0), 1.0);
  const util::JsonValue* hists = metrics->Find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_NE(hists->Find("query.wall_ns"), nullptr);
}

TEST_F(TraceE2eTest, TracingOffRecordsNothingAndResultsMatch) {
  auto doc = Parse(BigBibXml());
  // Traced and untraced runs return byte-identical results.
  EngineOptions traced;
  traced.trace = true;
  std::string with_trace;
  {
    BlossomTreeEngine engine(doc.get(), traced);
    auto r = engine.EvaluateQuery(kFlworQuery);
    ASSERT_TRUE(r.ok());
    with_trace = *r;
  }
  util::Tracer::Get().Disable();
  util::Tracer::Get().Clear();
  {
    BlossomTreeEngine engine(doc.get());
    auto r = engine.EvaluateQuery(kFlworQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, with_trace);
  }
  // The default path never touches the rings.
  EXPECT_EQ(util::Tracer::Get().EventCount(), 0u);
}

TEST_F(TraceE2eTest, ProfileToTextAlignsSevenDigitCounters) {
  // Golden rendering: the counter column starts at one offset even when a
  // deep, long-labelled operator carries 7-digit counters (the layout used
  // to shear once counters outgrew their neighbors).
  QueryProfile profile;
  profile.strategy = "pipelined";
  exec::ExecStats root;
  root.matches = 2;
  exec::ExecStats scan;
  scan.nodes_scanned = 1234567;
  scan.matches = 7;
  profile.AddOperator("Root", 0, root);
  profile.AddOperator("NokScanVeryLongLabel", 1, scan);
  EXPECT_EQ(profile.ToText(),
            "strategy: pipelined\n"
            "Root                    rows=2\n"
            "  NokScanVeryLongLabel  nodes=1234567 rows=7\n");
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
