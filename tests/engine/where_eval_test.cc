#include "engine/where_eval.h"

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "flwor/parser.h"
#include "xml/parser.h"

namespace blossomtree {
namespace engine {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Parses a query "for $x in //x where <CLAUSE> return $x" and extracts the
/// where expression.
struct WhereFixture {
  std::unique_ptr<flwor::Expr> expr;
  const flwor::BoolExpr* where = nullptr;

  explicit WhereFixture(const std::string& clause) {
    auto r = flwor::ParseQuery("for $q in //q where " + clause +
                               " return $q");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) {
      expr = r.MoveValue();
      where = expr->flwor->where.get();
    }
  }
};

bool Eval(const xml::Document& doc, const flwor::BoolExpr& where,
          const Env& env) {
  PathEvaluator ev(&doc);
  auto r = EvalWhere(where, env, doc, &ev);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() && *r;
}

TEST(WhereEvalTest, DocOrderComparisons) {
  auto doc = Parse("<r><a/><b/></r>");
  Env env;
  env["x"] = {1};
  env["y"] = {2};
  WhereFixture lt("$x << $y");
  EXPECT_TRUE(Eval(*doc, *lt.where, env));
  WhereFixture gt("$x >> $y");
  EXPECT_FALSE(Eval(*doc, *gt.where, env));
  // Empty operand → false.
  env["y"] = {};
  EXPECT_FALSE(Eval(*doc, *lt.where, env));
}

TEST(WhereEvalTest, IsIdentity) {
  auto doc = Parse("<r><a/><a/></r>");
  Env env;
  env["x"] = {1};
  env["y"] = {1};
  WhereFixture is("$x is $y");
  EXPECT_TRUE(Eval(*doc, *is.where, env));
  env["y"] = {2};
  EXPECT_FALSE(Eval(*doc, *is.where, env));
}

TEST(WhereEvalTest, GeneralEqOverPaths) {
  auto doc = Parse("<r><g><v>1</v><v>2</v></g><g><v>2</v></g></r>");
  Env env;
  env["x"] = {1};  // First g.
  env["y"] = {6};  // Second g (nodes: r=0 g=1 v=2 t=3 v=4 t=5 g=6 ...).
  WhereFixture eq("$x/v = $y/v");
  EXPECT_TRUE(Eval(*doc, *eq.where, env));  // 2 = 2.
  WhereFixture neq("$x/v != $y/v");
  EXPECT_TRUE(Eval(*doc, *neq.where, env));  // 1 != 2.
}

TEST(WhereEvalTest, LiteralComparisons) {
  auto doc = Parse("<r><g><v>7</v></g></r>");
  Env env;
  env["x"] = {1};
  WhereFixture eq("$x/v = 7");
  EXPECT_TRUE(Eval(*doc, *eq.where, env));
  WhereFixture eq2("$x/v = \"7\"");
  EXPECT_TRUE(Eval(*doc, *eq2.where, env));
  WhereFixture eq3("$x/v = 8");
  EXPECT_FALSE(Eval(*doc, *eq3.where, env));
}

TEST(WhereEvalTest, DeepEqualOnSequences) {
  auto doc = Parse(
      "<r><g><a><n>k</n></a></g><g><a><n>k</n></a></g><g/></r>");
  auto gs = doc->TagIndex(doc->tags().Lookup("g"));
  Env env;
  env["x"] = {gs[0]};
  env["y"] = {gs[1]};
  WhereFixture de("deep-equal($x/a, $y/a)");
  EXPECT_TRUE(Eval(*doc, *de.where, env));
  env["y"] = {gs[2]};
  EXPECT_FALSE(Eval(*doc, *de.where, env));
  // Both empty → deep-equal((), ()) is true (Example 2's key case).
  env["x"] = {gs[2]};
  EXPECT_TRUE(Eval(*doc, *de.where, env));
}

TEST(WhereEvalTest, BooleanConnectives) {
  auto doc = Parse("<r><a/><b/></r>");
  Env env;
  env["x"] = {1};
  env["y"] = {2};
  WhereFixture both("$x << $y and $x is $x");
  EXPECT_TRUE(Eval(*doc, *both.where, env));
  WhereFixture either("$x >> $y or $x << $y");
  EXPECT_TRUE(Eval(*doc, *either.where, env));
  WhereFixture neither("$x >> $y or $y << $x");
  EXPECT_FALSE(Eval(*doc, *neither.where, env));
  WhereFixture negated("not($x >> $y)");
  EXPECT_TRUE(Eval(*doc, *negated.where, env));
}

TEST(WhereEvalTest, ExistsAndEmpty) {
  auto doc = Parse("<r><g><v/></g><g/></r>");
  auto gs = doc->TagIndex(doc->tags().Lookup("g"));
  Env env;
  env["x"] = {gs[0]};
  WhereFixture ex("exists($x/v)");
  EXPECT_TRUE(Eval(*doc, *ex.where, env));
  WhereFixture em("empty($x/v)");
  EXPECT_FALSE(Eval(*doc, *em.where, env));
  env["x"] = {gs[1]};
  EXPECT_FALSE(Eval(*doc, *ex.where, env));
  EXPECT_TRUE(Eval(*doc, *em.where, env));
}

TEST(WhereEvalTest, CountComparisons) {
  auto doc = Parse("<r><g><v/><v/></g><g><v/></g></r>");
  auto gs = doc->TagIndex(doc->tags().Lookup("g"));
  Env env;
  env["x"] = {gs[0]};
  WhereFixture two("count($x/v) = 2");
  EXPECT_TRUE(Eval(*doc, *two.where, env));
  env["x"] = {gs[1]};
  EXPECT_FALSE(Eval(*doc, *two.where, env));
  WhereFixture pair("count($x/v) = count($x/v)");
  EXPECT_TRUE(Eval(*doc, *pair.where, env));
}

TEST(WhereEvalTest, EndToEndExistsAndCountInQueries) {
  auto doc = Parse("<r><g><v/><v/></g><g/></r>");
  BlossomTreeEngine engine(doc.get());
  auto r1 = engine.EvaluateQuery(
      "for $g in //g where exists($g/v) return <hit/>");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(*r1, "<hit/>");
  auto r2 = engine.EvaluateQuery(
      "for $g in //g where empty($g/v) return <none/>");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(*r2, "<none/>");
  auto r3 = engine.EvaluateQuery(
      "for $g in //g where count($g/v) = 2 return <two/>");
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(*r3, "<two/>");
}

TEST(WhereEvalTest, ErrorsOnNonSingletonDocOrder) {
  auto doc = Parse("<r><a/><a/><b/></r>");
  Env env;
  env["x"] = {1, 2};
  env["y"] = {3};
  WhereFixture lt("$x << $y");
  PathEvaluator ev(doc.get());
  auto r = EvalWhere(*lt.where, env, *doc, &ev);
  EXPECT_FALSE(r.ok());
}

TEST(WhereEvalTest, UnboundVariableErrors) {
  auto doc = Parse("<r/>");
  WhereFixture eq("$missing = 1");
  PathEvaluator ev(doc.get());
  auto r = EvalWhere(*eq.where, Env{}, *doc, &ev);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
