#include "engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/navigational.h"
#include "flwor/parser.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace engine {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Paper Example 2's input document.
constexpr const char* kBibXml =
    "<bib>"
    "<book><title>Maximum Security</title></book>"
    "<book><title>The Art of Computer Programming</title>"
    "<author><last>Knuth</last><first>Donald</first></author></book>"
    "<book><title>Terrorist Hunter</title></book>"
    "<book><title>TeX Book</title>"
    "<author><last>Knuth</last><first>Donald</first></author></book>"
    "</bib>";

/// Paper Example 1's query.
constexpr const char* kExample1Query = R"(
<bib>
{
for $book1 in doc("bib.xml")//book,
    $book2 in doc("bib.xml")//book
let $aut1 := $book1/author
let $aut2 := $book2/author
where $book1 << $book2
  and not($book1/title = $book2/title)
  and deep-equal($aut1, $aut2)
return
  <book-pair>
    { $book1/title }
    { $book2/title }
  </book-pair>
}
</bib>
)";

/// Paper Example 2's expected output (the original has a "Hunger" typo for
/// the copied title; the correct echo of the input is "Hunter").
constexpr const char* kExample2Output =
    "<bib>"
    "<book-pair>"
    "<title>Maximum Security</title>"
    "<title>Terrorist Hunter</title>"
    "</book-pair>"
    "<book-pair>"
    "<title>The Art of Computer Programming</title>"
    "<title>TeX Book</title>"
    "</book-pair>"
    "</bib>";

TEST(EngineTest, Example1ProducesExample2Output) {
  auto doc = Parse(kBibXml);
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(kExample1Query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, kExample2Output);
}

TEST(EngineTest, NavigationalBaselineAgreesOnExample1) {
  auto doc = Parse(kBibXml);
  baseline::NavigationalEvaluator nav(doc.get());
  auto r = nav.EvaluateQuery(kExample1Query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, kExample2Output);
  EXPECT_GT(nav.NodesVisited(), 0u);
}

TEST(EngineTest, SimpleForReturn) {
  auto doc = Parse("<r><k>1</k><k>2</k></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery("for $x in //k return <v>{ $x }</v>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<v><k>1</k></v><v><k>2</k></v>");
}

TEST(EngineTest, LetBindsWholeSequence) {
  auto doc = Parse("<r><g><k>1</k><k>2</k></g><g><k>3</k></g></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(
      "for $g in //g let $ks := $g/k return <n>{ $ks }</n>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<n><k>1</k><k>2</k></n><n><k>3</k></n>");
}

TEST(EngineTest, LetOverEmptyIsEmptySequence) {
  auto doc = Parse("<r><g><k>1</k></g><g/></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(
      "for $g in //g let $ks := $g/k return <n>{ $ks }</n>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<n><k>1</k></n><n/>");
}

TEST(EngineTest, WhereValueFilter) {
  auto doc = Parse("<r><k>1</k><k>2</k><k>3</k></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(
      "for $x in //k where $x = 2 return <hit>{ $x }</hit>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<hit><k>2</k></hit>");
}

TEST(EngineTest, OrderBy) {
  auto doc = Parse("<r><k>b</k><k>a</k><k>c</k></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery("for $x in //k order by $x return $x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<k>a</k><k>b</k><k>c</k>");
  auto r2 = engine.EvaluateQuery(
      "for $x in //k order by $x descending return $x");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, "<k>c</k><k>b</k><k>a</k>");
}

TEST(EngineTest, ChainedForVariables) {
  auto doc = Parse("<r><b><t>x</t><t>y</t></b><b><t>z</t></b></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(
      "for $b in //b for $t in $b/t return <p>{ $t }</p>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<p><t>x</t></p><p><t>y</t></p><p><t>z</t></p>");
}

TEST(EngineTest, CrossProductOfTwoTrees) {
  auto doc = Parse("<r><a>1</a><a>2</a><c>9</c></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(
      "for $x in //a, $y in //c return <p>{ $x }{ $y }</p>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<p><a>1</a><c>9</c></p><p><a>2</a><c>9</c></p>");
}

TEST(EngineTest, IsComparison) {
  auto doc = Parse("<r><a/><a/></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(
      "for $x in //a, $y in //a where $x is $y return <same/>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<same/><same/>");  // Two of four pairs are identical.
}

TEST(EngineTest, PathQueryThroughEngine) {
  auto doc = Parse("<r><a><b/></a><a/></r>");
  BlossomTreeEngine engine(doc.get());
  auto p = xpath::ParsePath("//a[//b]");
  ASSERT_TRUE(p.ok());
  auto r = engine.EvaluatePath(*p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 1u);
  EXPECT_FALSE(engine.LastExplain().empty());
}

TEST(EngineTest, CollectProfileExposesExplainAnalyzeAndJson) {
  auto doc = Parse("<r><a><b/></a><a/><a><b/><b/></a></r>");
  EngineOptions opts;
  opts.collect_profile = true;
  BlossomTreeEngine engine(doc.get(), opts);
  // Off until the first query.
  EXPECT_TRUE(engine.LastExplainAnalyze().empty());

  auto p = xpath::ParsePath("//a[//b]");
  ASSERT_TRUE(p.ok());
  auto r = engine.EvaluatePath(*p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(engine.LastExplainAnalyze().find("actual:"), std::string::npos);
  const QueryProfile& prof = engine.LastProfile();
  EXPECT_FALSE(prof.operators.empty());
  uint64_t rows = 0;
  for (const OperatorProfile& op : prof.operators) rows += op.stats.matches;
  EXPECT_GT(rows, 0u);
  // JSON export parses structurally: balanced braces, expected keys.
  std::string json = prof.ToJson();
  EXPECT_NE(json.find("\"operators\":"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  // FLWOR queries refresh the profile too.
  auto q = engine.EvaluateQuery("for $a in //a return <o>{ $a }</o>");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(engine.LastProfile().query, "flwor");
}

TEST(EngineTest, ProfileOffByDefault) {
  auto doc = Parse("<r><a/></r>");
  BlossomTreeEngine engine(doc.get());
  auto p = xpath::ParsePath("//a");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(engine.EvaluatePath(*p).ok());
  EXPECT_TRUE(engine.LastExplainAnalyze().empty());
  EXPECT_TRUE(engine.LastProfile().operators.empty());
}

TEST(EngineTest, ConstructorWithAttributesAndText) {
  auto doc = Parse("<r><k>v</k></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(
      R"(<out kind="test">prefix { //k } suffix</out>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, R"(<out kind="test">prefix<k>v</k>suffix</out>)");
}

TEST(EngineTest, NestedFlworWithFreeVariable) {
  auto doc = Parse("<r><g><k>1</k><k>2</k></g></r>");
  BlossomTreeEngine engine(doc.get());
  auto r = engine.EvaluateQuery(
      "for $g in //g return <o>{ for $k in $g/k return <i>{ $k }</i> }</o>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "<o><i><k>1</k></i><i><k>2</k></i></o>");
}

TEST(EngineTest, EnginesAgreeOnFlworSuite) {
  auto doc = Parse(
      "<lib><shelf><book><t>b</t><y>2</y></book>"
      "<book><t>a</t><y>1</y></book></shelf>"
      "<shelf><book><t>c</t></book></shelf></lib>");
  const char* queries[] = {
      "for $b in //book return <t>{ $b/t }</t>",
      "for $s in //shelf for $b in $s/book return <p>{ $b/t }</p>",
      "for $b in //book where $b/y = 1 return $b/t",
      "for $b in //book let $y := $b/y return <e>{ $y }</e>",
      "for $b in //book order by $b/t return $b/t",
      "for $a in //book, $b in //book where $a << $b and "
      "deep-equal($a/y, $b/y) return <pair/>",
  };
  for (const char* q : queries) {
    BlossomTreeEngine engine(doc.get());
    baseline::NavigationalEvaluator nav(doc.get());
    auto r1 = engine.EvaluateQuery(q);
    auto r2 = nav.EvaluateQuery(q);
    ASSERT_TRUE(r1.ok()) << q << ": " << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << q << ": " << r2.status().ToString();
    EXPECT_EQ(*r1, *r2) << q;
  }
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
