#include "engine/binder.h"

#include <gtest/gtest.h>

#include "exec/operator.h"
#include "flwor/parser.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "xml/parser.h"

namespace blossomtree {
namespace engine {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Runs the full NestedList pipeline for a FLWOR's pattern trees and
/// enumerates the environments.
struct BinderFixture {
  std::unique_ptr<xml::Document> doc;
  std::unique_ptr<flwor::Expr> expr;
  pattern::BlossomTree tree;
  std::vector<Env> envs;

  BinderFixture(const char* xml, const char* query) : doc(Parse(xml)) {
    auto e = flwor::ParseQuery(query);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    expr = e.MoveValue();
    auto t = pattern::BuildFromQuery(*expr);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    tree = t.MoveValue();
    auto plan = opt::PlanQuery(doc.get(), &tree);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto bindings = ComputeSlotBindings(tree, *expr->flwor);
    std::vector<std::vector<Env>> per_tree;
    for (auto& tp : plan->trees) {
      auto lists = exec::Drain(tp.root.get());
      per_tree.push_back(EnumerateBindings(tree, tp.tops, lists, bindings));
    }
    envs = CrossEnvs(per_tree);
  }
};

TEST(BinderTest, ForBindingBranchesPerMatch) {
  BinderFixture fx("<r><k>1</k><k>2</k></r>", "for $x in //k return $x");
  ASSERT_EQ(fx.envs.size(), 2u);
  for (const Env& e : fx.envs) {
    ASSERT_EQ(e.count("x"), 1u);
    EXPECT_EQ(e.at("x").size(), 1u);
  }
}

TEST(BinderTest, LetBindingCollectsSequence) {
  BinderFixture fx("<r><g><k/><k/></g></r>",
                   "for $g in //g let $ks := $g/k return $g");
  ASSERT_EQ(fx.envs.size(), 1u);
  EXPECT_EQ(fx.envs[0].at("ks").size(), 2u);
}

TEST(BinderTest, LetOverEmptyBindsEmptySequence) {
  BinderFixture fx("<r><g/></r>", "for $g in //g let $ks := $g/k return $g");
  ASSERT_EQ(fx.envs.size(), 1u);
  EXPECT_TRUE(fx.envs[0].at("ks").empty());
}

TEST(BinderTest, NestedForMultiplies) {
  BinderFixture fx("<r><g><k/><k/></g><g><k/></g></r>",
                   "for $g in //g for $k in $g/k return $k");
  // (g1,k1),(g1,k2),(g2,k3).
  ASSERT_EQ(fx.envs.size(), 3u);
}

TEST(BinderTest, ForOverEmptyYieldsNoTuples) {
  BinderFixture fx("<r><g/></r>", "for $g in //g for $k in $g/k return $k");
  EXPECT_TRUE(fx.envs.empty());
}

TEST(BinderTest, CrossProductOfTrees) {
  BinderFixture fx("<r><a/><a/><b/></r>",
                   "for $x in //a, $y in //b return $x");
  EXPECT_EQ(fx.envs.size(), 2u);  // 2 a's × 1 b.
}

TEST(BinderTest, DedupOnRecursiveEmbeddings) {
  // The same k is reachable under two nested g's; $k must bind once per
  // distinct (g, k) pair — and //g//k's k under both g's gives 2 pairs.
  BinderFixture fx("<r><g><g><k/></g></g></r>",
                   "for $k in //g//k return $k");
  // $k binds the single distinct k node once.
  ASSERT_EQ(fx.envs.size(), 1u);
}

TEST(BinderTest, ComputeSlotBindingsMarksKinds) {
  BinderFixture fx("<r><g><k/></g></r>",
                   "for $g in //g let $ks := $g/k return $g");
  auto bindings = ComputeSlotBindings(fx.tree, *fx.expr->flwor);
  pattern::SlotId sg = fx.tree.SlotOfVariable("g");
  pattern::SlotId sk = fx.tree.SlotOfVariable("ks");
  ASSERT_NE(sg, pattern::kNoSlot);
  ASSERT_NE(sk, pattern::kNoSlot);
  EXPECT_EQ(bindings[sg].variable, "g");
  EXPECT_FALSE(bindings[sg].is_let);
  EXPECT_TRUE(bindings[sk].is_let);
}

TEST(BinderTest, CrossEnvsMergesDisjointKeys) {
  std::vector<std::vector<Env>> per_tree(2);
  Env a1;
  a1["x"] = {1};
  Env a2;
  a2["x"] = {2};
  per_tree[0] = {a1, a2};
  Env b1;
  b1["y"] = {9};
  per_tree[1] = {b1};
  auto out = CrossEnvs(per_tree);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].at("x")[0], 1u);
  EXPECT_EQ(out[0].at("y")[0], 9u);
  EXPECT_EQ(out[1].at("x")[0], 2u);
}

TEST(BinderTest, CrossEnvsWithEmptyTreeIsEmpty) {
  std::vector<std::vector<Env>> per_tree(2);
  per_tree[0] = {Env{}};
  per_tree[1] = {};
  EXPECT_TRUE(CrossEnvs(per_tree).empty());
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
