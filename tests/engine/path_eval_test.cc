#include "engine/path_eval.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace engine {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

std::vector<xml::NodeId> Eval(const xml::Document& doc,
                              std::string_view query) {
  auto p = xpath::ParsePath(query);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  PathEvaluator ev(&doc);
  auto r = ev.Evaluate(*p);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : std::vector<xml::NodeId>{};
}

TEST(PathEvalTest, RootChild) {
  auto doc = Parse("<a><b/><b/><c/></a>");
  EXPECT_EQ(Eval(*doc, "/a/b").size(), 2u);
  EXPECT_EQ(Eval(*doc, "/a").size(), 1u);
  EXPECT_TRUE(Eval(*doc, "/b").empty());
}

TEST(PathEvalTest, DescendantFromRoot) {
  auto doc = Parse("<a><b/><x><b/></x></a>");
  EXPECT_EQ(Eval(*doc, "//b").size(), 2u);
  // Descendant-or-self: //a matches the root itself.
  EXPECT_EQ(Eval(*doc, "//a").size(), 1u);
}

TEST(PathEvalTest, ResultsAreDocOrderedAndDistinct) {
  auto doc = Parse("<a><x><b/><b/></x><x><b/></x></a>");
  auto out = Eval(*doc, "//x//b");
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(PathEvalTest, RecursiveDedup) {
  // b under two nested x's must appear once.
  auto doc = Parse("<a><x><x><b/></x></x></a>");
  EXPECT_EQ(Eval(*doc, "//x//b").size(), 1u);
}

TEST(PathEvalTest, ExistencePredicate) {
  auto doc = Parse("<r><a><b/></a><a><c/></a></r>");
  auto out = Eval(*doc, "//a[b]");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(PathEvalTest, NestedDescendantPredicate) {
  auto doc = Parse("<r><a><x><b/></x></a><a><b/></a><a><c/></a></r>");
  EXPECT_EQ(Eval(*doc, "//a[//b]").size(), 2u);
}

TEST(PathEvalTest, ValuePredicate) {
  auto doc = Parse("<r><k><v>x</v></k><k><v>y</v></k></r>");
  auto out = Eval(*doc, "//k[v = \"y\"]");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(doc->StringValue(out[0]), "y");
}

TEST(PathEvalTest, SelfValuePredicate) {
  auto doc = Parse("<r><k>x</k><k>y</k></r>");
  EXPECT_EQ(Eval(*doc, "//k[. = \"x\"]").size(), 1u);
}

TEST(PathEvalTest, PositionPredicate) {
  auto doc = Parse("<r><k>1</k><k>2</k><k>3</k></r>");
  auto out = Eval(*doc, "/r/k[2]");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(doc->StringValue(out[0]), "2");
}

TEST(PathEvalTest, Wildcard) {
  auto doc = Parse("<r><x><t/></x><y><t/></y></r>");
  EXPECT_EQ(Eval(*doc, "/r/*/t").size(), 2u);
  EXPECT_EQ(Eval(*doc, "/r/*").size(), 2u);
}

TEST(PathEvalTest, VariableStart) {
  auto doc = Parse("<r><a><t/></a><a><t/><t/></a></r>");
  auto p = xpath::ParsePath("$v/t");
  ASSERT_TRUE(p.ok());
  PathEvaluator ev(doc.get());
  Env env;
  env["v"] = {3};  // Second a.
  auto r = ev.EvaluateWith(*p, env, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(PathEvalTest, UnboundVariableErrors) {
  auto doc = Parse("<r/>");
  auto p = xpath::ParsePath("$v/t");
  ASSERT_TRUE(p.ok());
  PathEvaluator ev(doc.get());
  Env env;
  auto r = ev.EvaluateWith(*p, env, {});
  EXPECT_FALSE(r.ok());
}

TEST(PathEvalTest, FollowingSibling) {
  auto doc = Parse("<r><a/><x/><b/><b/></r>");
  auto out = Eval(*doc, "/r/a/following-sibling::b");
  EXPECT_EQ(out.size(), 2u);
}

TEST(PathEvalTest, NodesVisitedGrows) {
  auto doc = Parse("<r><a><b/></a><a><b/></a></r>");
  auto p = xpath::ParsePath("//b");
  ASSERT_TRUE(p.ok());
  PathEvaluator ev(doc.get());
  ASSERT_TRUE(ev.Evaluate(*p).ok());
  EXPECT_GE(ev.NodesVisited(), doc->NumNodes() - 1);
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
