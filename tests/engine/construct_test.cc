#include "engine/construct.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace blossomtree {
namespace engine {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(ConstructTest, BuildElementWithText) {
  auto src = Parse("<r/>");
  ResultBuilder b(src.get());
  b.BeginElement("out");
  b.AddText("hello");
  b.EndElement();
  auto xml = b.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, "<out>hello</out>");
}

TEST(ConstructTest, TopLevelSequence) {
  auto src = Parse("<r/>");
  ResultBuilder b(src.get());
  b.BeginElement("a");
  b.EndElement();
  b.BeginElement("b");
  b.AddText("x");
  b.EndElement();
  auto xml = b.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, "<a/><b>x</b>");
}

TEST(ConstructTest, CopySubtreePreservesEverything) {
  auto src = Parse(R"(<r><k id="7">te<b/>xt</k></r>)");
  ResultBuilder b(src.get());
  b.CopyNode(1);
  auto xml = b.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, R"(<k id="7">te<b/>xt</k>)");
}

TEST(ConstructTest, CopyTextNode) {
  auto src = Parse("<r>hello</r>");
  ResultBuilder b(src.get());
  b.CopyNode(1);  // The text node.
  auto xml = b.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, "hello");
}

TEST(ConstructTest, NestedConstructionAroundCopies) {
  auto src = Parse("<r><k>v</k></r>");
  ResultBuilder b(src.get());
  b.BeginElement("wrap");
  b.AddAttribute("n", "1");
  b.CopyNode(1);
  b.CopyNode(1);
  b.EndElement();
  auto xml = b.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, R"(<wrap n="1"><k>v</k><k>v</k></wrap>)");
}

TEST(ConstructTest, EscapingInConstructedText) {
  auto src = Parse("<r/>");
  ResultBuilder b(src.get());
  b.BeginElement("o");
  b.AddText("a<b>&c");
  b.EndElement();
  auto xml = b.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, "<o>a&lt;b&gt;&amp;c</o>");
}

TEST(ConstructTest, EmptyResult) {
  auto src = Parse("<r/>");
  ResultBuilder b(src.get());
  auto xml = b.ToXml();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, "");
}

}  // namespace
}  // namespace engine
}  // namespace blossomtree
