// Replays the checked-in fuzz crash corpus (fuzz/regressions/) through the
// same entry points the libFuzzer harnesses drive, on every toolchain — the
// fuzzers themselves are Clang-only, but a crash must stay fixed everywhere.
// Each input once crashed, hung, or invoked UB; the assertions pin the clean
// behavior that replaced it.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flwor/parser.h"
#include "index/btsi.h"
#include "index/structural_index.h"
#include "storage/btsx2.h"
#include "storage/succinct.h"
#include "util/resource_guard.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<fs::path> InputsIn(const std::string& subdir) {
  fs::path dir = fs::path(BLOSSOMTREE_FUZZ_DIR) / "regressions" / subdir;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Mirror of the harness configurations in fuzz/*.cc.
xml::ParseOptions XmlFuzzOptions() {
  xml::ParseOptions options;
  options.max_depth = 512;
  options.max_input_bytes = 1 << 20;
  return options;
}

util::ParseLimits QueryFuzzLimits() {
  util::ParseLimits limits;
  limits.max_depth = 256;
  limits.max_input_bytes = 1 << 20;
  return limits;
}

TEST(FuzzRegressionTest, CorpusIsNonEmpty) {
  EXPECT_FALSE(InputsIn("xml").empty());
  EXPECT_FALSE(InputsIn("xpath").empty());
  EXPECT_FALSE(InputsIn("flwor").empty());
  EXPECT_FALSE(InputsIn("btsx").empty());
}

// Every input must come back with a Status — OK or error — and never crash.
TEST(FuzzRegressionTest, ReplayAllXmlInputs) {
  for (const fs::path& p : InputsIn("xml")) {
    SCOPED_TRACE(p.filename().string());
    auto doc = xml::ParseDocument(ReadFile(p), XmlFuzzOptions());
    if (doc.ok()) {
      EXPECT_GE(doc.value()->NumNodes(), 1u);
    }
  }
}

TEST(FuzzRegressionTest, ReplayAllXpathInputs) {
  for (const fs::path& p : InputsIn("xpath")) {
    SCOPED_TRACE(p.filename().string());
    auto path = xpath::ParsePath(ReadFile(p), /*max_depth=*/256);
    if (path.ok()) {
      EXPECT_FALSE(path.value().ToString().empty());
    }
  }
}

TEST(FuzzRegressionTest, ReplayAllFlworInputs) {
  for (const fs::path& p : InputsIn("flwor")) {
    SCOPED_TRACE(p.filename().string());
    auto expr = flwor::ParseQuery(ReadFile(p), QueryFuzzLimits());
    (void)expr;
  }
}

// Mirror of fuzz_btsx.cc: every input through the BTSX family's decoders.
// Inputs that decode must re-encode stably; v2 images that pass deep
// validation must adopt and serialize; accepted .btsi index images must
// re-encode byte-identically (the decoder pins the canonical layout).
TEST(FuzzRegressionTest, ReplayAllBtsxInputs) {
  for (const fs::path& p : InputsIn("btsx")) {
    SCOPED_TRACE(p.filename().string());
    std::string input = ReadFile(p);
    auto v1 = storage::DecodeSuccinct(input);
    if (v1.ok()) {
      std::string first = xml::Serialize(**v1);
      auto again = storage::DecodeSuccinct(storage::EncodeSuccinct(**v1));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(xml::Serialize(**again), first);
    }
    auto v2 = storage::MapBtsx2(input);
    if (v2.ok() && storage::ValidateBtsx2Deep(*v2).ok()) {
      xml::Document adopted;
      ASSERT_TRUE(adopted.AdoptExternal(v2->ToLayout()).ok());
      EXPECT_FALSE(xml::Serialize(adopted).empty());
    }
    auto idx = index::DecodeBtsi(input);
    if (idx.ok()) {
      auto bytes = index::EncodeBtsi(**idx);
      ASSERT_TRUE(bytes.ok());
      EXPECT_EQ(*bytes, input);
    }
  }
}

// The v1 decoder once accepted arbitrary bytes after the event payloads,
// so a corrupt or concatenated file round-tripped silently as a prefix
// document.
TEST(FuzzRegressionTest, BtsxTrailingGarbageRejected) {
  auto r = storage::DecodeSuccinct(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/btsx/v1_trailing_garbage.btsx"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// A 2^64-ish tag count once reached vector::reserve and threw
// std::length_error instead of returning a Status.
TEST(FuzzRegressionTest, BtsxHostileTagCountRejected) {
  auto r = storage::DecodeSuccinct(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/btsx/v1_hostile_tag_count.btsx"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// (num_events + 3) / 4 once overflowed for a 64-bit event count, passing
// the bounds check with a tiny byte length.
TEST(FuzzRegressionTest, BtsxEventCountOverflowRejected) {
  auto r = storage::DecodeSuccinct(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/btsx/v1_event_count_overflow.btsx"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// MapBtsx2 once ignored bytes after the last section, accepting
// concatenated images.
TEST(FuzzRegressionTest, Btsx2TrailingBytesRejected) {
  auto r = storage::MapBtsx2(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/btsx/v2_trailing_bytes.btsx2"));
  EXPECT_FALSE(r.ok());
}

// A stray ']' in the internal subset once drove the bracket counter
// negative, so the following '>' never terminated the DOCTYPE and parsing
// ran off the end of the declaration.
TEST(FuzzRegressionTest, DoctypeStrayBracketParses) {
  auto doc = xml::ParseDocument(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/xml/doctype_stray_bracket.xml"),
      XmlFuzzOptions());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value()->NumNodes(), 1u);
}

// '>' inside a quoted SYSTEM literal once terminated the DOCTYPE early,
// leaving `b">` to be mis-parsed as content before the root element.
TEST(FuzzRegressionTest, DoctypeQuotedGtParses) {
  auto doc = xml::ParseDocument(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/xml/doctype_quoted_gt.xml"),
      XmlFuzzOptions());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value()->NumNodes(), 1u);
}

// The hex character-reference accumulator once overflowed (signed, UB);
// now any code point above 0x10FFFF is rejected as soon as it is exceeded.
TEST(FuzzRegressionTest, HexCharRefOverflowRejected) {
  auto doc = xml::ParseDocument(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/xml/charref_overflow.xml"),
      XmlFuzzOptions());
  EXPECT_FALSE(doc.ok());
}

TEST(FuzzRegressionTest, DeepXmlNestingResourceExhausted) {
  auto doc = xml::ParseDocument(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/xml/deep_nesting.xml"),
      XmlFuzzOptions());
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
}

// Deep mixed content once hit two serializer bugs at once: indentation
// whitespace was injected around every text child of an element that also
// had element children, and the recursive walk burned one stack frame per
// document level. The round trip through indented serialization must
// preserve the document exactly.
TEST(FuzzRegressionTest, DeepMixedContentSerializeRoundTrip) {
  auto doc = xml::ParseDocument(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/xml/deep_mixed_content.xml"),
      XmlFuzzOptions());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  xml::SerializeOptions opts;
  opts.indent = true;
  std::string pretty = xml::Serialize(*doc.value(), opts);
  auto doc2 = xml::ParseDocument(pretty, XmlFuzzOptions());
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  EXPECT_EQ(xml::Serialize(*doc2.value()), xml::Serialize(*doc.value()));
}

// 100k nested predicates once recursed the parser off the stack.
TEST(FuzzRegressionTest, DeepXpathPredicatesRejected) {
  auto path = xpath::ParsePath(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/xpath/deep_predicates.txt"),
      /*max_depth=*/256);
  EXPECT_FALSE(path.ok());
}

// 100k nested parentheses in a where clause once recursed ParseBool /
// ParsePrimary off the stack.
TEST(FuzzRegressionTest, DeepFlworParensRejected) {
  auto expr = flwor::ParseQuery(
      ReadFile(fs::path(BLOSSOMTREE_FUZZ_DIR) /
               "regressions/flwor/deep_parens.txt"),
      QueryFuzzLimits());
  EXPECT_FALSE(expr.ok());
}

}  // namespace
}  // namespace blossomtree
