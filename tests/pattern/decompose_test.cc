#include "pattern/decompose.h"

#include <gtest/gtest.h>

#include "flwor/parser.h"
#include "pattern/builder.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace pattern {
namespace {

BlossomTree FromPath(std::string_view path) {
  auto p = xpath::ParsePath(path);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto t = BuildFromPath(*p);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.MoveValue();
}

std::string TagOf(const BlossomTree& t, VertexId v) {
  return t.vertex(v).tag;
}

TEST(DecomposeTest, LocalOnlyPathIsOneNok) {
  BlossomTree t = FromPath("/a/b/c");
  Decomposition d = Decompose(t);
  ASSERT_EQ(d.noks.size(), 1u);
  EXPECT_TRUE(d.connections.empty());
  EXPECT_EQ(d.noks[0].vertices.size(), 4u);  // ~, a, b, c.
}

TEST(DecomposeTest, DescendantEdgeCutsTree) {
  // The paper's §2.1 example: /book[//author="Smith"]/title decomposes into
  // {book, title} and {author}.
  BlossomTree t = FromPath("/book[//author = \"Smith\"]/title");
  Decomposition d = Decompose(t);
  ASSERT_EQ(d.noks.size(), 2u);
  ASSERT_EQ(d.connections.size(), 1u);
  EXPECT_EQ(TagOf(t, d.connections[0].from), "book");
  EXPECT_EQ(TagOf(t, d.connections[0].to), "author");
  EXPECT_EQ(d.connections[0].axis, xpath::Axis::kDescendant);
  // First NoK: ~, book, title. Second: author.
  EXPECT_EQ(d.noks[0].vertices.size(), 3u);
  EXPECT_EQ(d.noks[1].vertices.size(), 1u);
  EXPECT_EQ(TagOf(t, d.noks[1].root), "author");
}

TEST(DecomposeTest, ChainOfDescendants) {
  BlossomTree t = FromPath("//a//b//c");
  Decomposition d = Decompose(t);
  // {~}, {a}, {b}, {c}.
  ASSERT_EQ(d.noks.size(), 4u);
  ASSERT_EQ(d.connections.size(), 3u);
  EXPECT_EQ(TagOf(t, d.connections[0].from), "~");
  EXPECT_EQ(TagOf(t, d.connections[0].to), "a");
  EXPECT_EQ(TagOf(t, d.connections[1].from), "a");
  EXPECT_EQ(TagOf(t, d.connections[1].to), "b");
  EXPECT_EQ(TagOf(t, d.connections[2].from), "b");
  EXPECT_EQ(TagOf(t, d.connections[2].to), "c");
}

TEST(DecomposeTest, BranchingQuery) {
  // Q4-style: //a/b[//c][//d][//e] → NoKs {~}, {a,b}, {c}, {d}, {e}.
  BlossomTree t = FromPath("//a/b[//c][//d][//e]");
  Decomposition d = Decompose(t);
  ASSERT_EQ(d.noks.size(), 5u);
  ASSERT_EQ(d.connections.size(), 4u);
  // b is the 'from' of three connections.
  int from_b = 0;
  for (const Connection& c : d.connections) {
    if (TagOf(t, c.from) == "b") ++from_b;
  }
  EXPECT_EQ(from_b, 3);
}

TEST(DecomposeTest, MixedAxesKeepLocalSubtrees) {
  BlossomTree t = FromPath("/a/b//c/d/e");
  Decomposition d = Decompose(t);
  ASSERT_EQ(d.noks.size(), 2u);
  EXPECT_EQ(d.noks[0].vertices.size(), 3u);  // ~, a, b.
  EXPECT_EQ(d.noks[1].vertices.size(), 3u);  // c, d, e.
  EXPECT_EQ(TagOf(t, d.noks[1].root), "c");
}

TEST(DecomposeTest, NokOfVertexIndex) {
  BlossomTree t = FromPath("/a//b");
  Decomposition d = Decompose(t);
  ASSERT_EQ(d.noks.size(), 2u);
  for (size_t i = 0; i < d.noks.size(); ++i) {
    for (VertexId v : d.noks[i].vertices) {
      EXPECT_EQ(d.NokOf(v), i);
    }
  }
}

TEST(DecomposeTest, FlworWithTwoTrees) {
  auto e = flwor::ParseQuery(
      "for $a in //x, $b in //y where $a << $b return $a");
  ASSERT_TRUE(e.ok());
  auto tr = BuildFromQuery(**e);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  // Two pattern trees, each {~} + {tag} → 4 NoKs, 2 // connections; the
  // crossing edge << is not a tree edge and produces no connection.
  EXPECT_EQ(d.noks.size(), 4u);
  EXPECT_EQ(d.connections.size(), 2u);
}

TEST(DecomposeTest, ConnectionModePropagatesLet) {
  auto e = flwor::ParseQuery("for $a in //x let $c := $a//z return $a");
  ASSERT_TRUE(e.ok());
  auto tr = BuildFromQuery(**e);
  ASSERT_TRUE(tr.ok());
  Decomposition d = Decompose(*tr);
  bool found = false;
  for (const Connection& c : d.connections) {
    if (tr->vertex(c.to).tag == "z") {
      EXPECT_EQ(c.mode, EdgeMode::kLet);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DecomposeTest, ToStringListsNoKsAndConnections) {
  BlossomTree t = FromPath("/a//b");
  Decomposition d = Decompose(t);
  std::string s = d.ToString(t);
  EXPECT_NE(s.find("NoK0"), std::string::npos);
  EXPECT_NE(s.find("NoK1"), std::string::npos);
  EXPECT_NE(s.find("conn: a // b"), std::string::npos);
}

}  // namespace
}  // namespace pattern
}  // namespace blossomtree
