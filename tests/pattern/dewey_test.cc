#include "pattern/dewey.h"

#include <gtest/gtest.h>

namespace blossomtree {
namespace pattern {
namespace {

TEST(DeweyTest, ParseAndToString) {
  auto r = DeweyId::Parse("1.1.2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "1.1.2");
  EXPECT_EQ(r->depth(), 3u);
}

TEST(DeweyTest, ParseSingle) {
  auto r = DeweyId::Parse("1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->components(), std::vector<uint32_t>({1}));
}

TEST(DeweyTest, ParseErrors) {
  EXPECT_FALSE(DeweyId::Parse("").ok());
  EXPECT_FALSE(DeweyId::Parse("1..2").ok());
  EXPECT_FALSE(DeweyId::Parse("1.0").ok());
  EXPECT_FALSE(DeweyId::Parse("a.b").ok());
  EXPECT_FALSE(DeweyId::Parse("1.-2").ok());
}

TEST(DeweyTest, EmptyInputIsItsOwnError) {
  // "" used to report the generic "bad Dewey ID"; the empty input is a
  // distinct, explicitly diagnosed case.
  auto r = DeweyId::Parse("");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("empty Dewey ID"), std::string::npos)
      << r.status().ToString();
}

TEST(DeweyTest, EmptyComponentIsItsOwnError) {
  for (std::string_view text : {"1..2", "1.", ".1", "."}) {
    auto r = DeweyId::Parse(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_NE(r.status().message().find("empty component"), std::string::npos)
        << text << ": " << r.status().ToString();
  }
}

TEST(DeweyTest, NonPositiveComponentStaysBadDeweyId) {
  for (std::string_view text : {"0", "1.0", "a.b"}) {
    auto r = DeweyId::Parse(text);
    ASSERT_FALSE(r.ok()) << text;
    EXPECT_NE(r.status().message().find("bad Dewey ID"), std::string::npos)
        << text << ": " << r.status().ToString();
  }
}

TEST(DeweyTest, ComponentOverflowRejected) {
  // Components are uint32_t; 4294967297 (2^32 + 1) used to be cast straight
  // from long long and silently wrap to 1, so "4294967297" and "1" parsed to
  // IDs that compared equal. Out-of-range components are now rejected.
  auto r = DeweyId::Parse("4294967297");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos)
      << r.status().ToString();
  EXPECT_FALSE(DeweyId::Parse("4294967296").ok());
  EXPECT_FALSE(DeweyId::Parse("1.4294967297.2").ok());
  // The boundary value itself is representable and must keep parsing.
  auto boundary = DeweyId::Parse("4294967295");
  ASSERT_TRUE(boundary.ok()) << boundary.status().ToString();
  EXPECT_EQ(boundary->components(), std::vector<uint32_t>({4294967295u}));
  EXPECT_FALSE(*boundary == *DeweyId::Parse("1"));
}

TEST(DeweyTest, ParentAndChild) {
  DeweyId id({1, 2, 3});
  EXPECT_EQ(id.Parent().ToString(), "1.2");
  EXPECT_EQ(id.Child(4).ToString(), "1.2.3.4");
  EXPECT_TRUE(DeweyId({1}).Parent().empty());
}

TEST(DeweyTest, Ancestry) {
  DeweyId root({1});
  DeweyId a({1, 1});
  DeweyId b({1, 1, 2});
  DeweyId c({1, 2});
  EXPECT_TRUE(root.IsAncestorOf(a));
  EXPECT_TRUE(root.IsAncestorOf(b));
  EXPECT_TRUE(a.IsAncestorOf(b));
  EXPECT_FALSE(a.IsAncestorOf(c));
  EXPECT_FALSE(a.IsAncestorOf(a));
  EXPECT_FALSE(b.IsAncestorOf(a));
}

TEST(DeweyTest, Ordering) {
  EXPECT_TRUE(DeweyId({1, 1}) < DeweyId({1, 2}));
  EXPECT_TRUE(DeweyId({1}) < DeweyId({1, 1}));
  EXPECT_TRUE(DeweyId({1, 1}) == DeweyId({1, 1}));
}

}  // namespace
}  // namespace pattern
}  // namespace blossomtree
