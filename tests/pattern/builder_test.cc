#include "pattern/builder.h"

#include <gtest/gtest.h>

#include "flwor/parser.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace pattern {
namespace {

BlossomTree FromPath(std::string_view path) {
  auto p = xpath::ParsePath(path);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto t = BuildFromPath(*p);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.MoveValue();
}

BlossomTree FromQuery(std::string_view q) {
  auto e = flwor::ParseQuery(q);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  auto t = BuildFromQuery(**e);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.MoveValue();
}

TEST(BuilderTest, SimplePath) {
  BlossomTree t = FromPath("/a/b");
  // Vertices: ~, a, b.
  ASSERT_EQ(t.NumVertices(), 3u);
  EXPECT_EQ(t.roots().size(), 1u);
  EXPECT_TRUE(t.vertex(t.roots()[0]).IsVirtualRoot());
  VertexId b = t.VertexOfVariable("result");
  ASSERT_NE(b, kNoVertex);
  EXPECT_EQ(t.vertex(b).tag, "b");
  EXPECT_EQ(t.vertex(b).axis, xpath::Axis::kChild);
  // Only b is returning.
  EXPECT_EQ(t.NumSlots(), 1u);
  EXPECT_EQ(t.slot(t.SlotOfVertex(b)).dewey.ToString(), "1");
}

TEST(BuilderTest, DescendantEdgesMarkEndpointsReturning) {
  BlossomTree t = FromPath("//a//b");
  // ~, a, b; a and b returning (global-edge endpoints; b also the result).
  ASSERT_EQ(t.NumVertices(), 3u);
  EXPECT_EQ(t.NumSlots(), 2u);
  SlotId sa = t.SlotOfDewey(DeweyId({1}));
  SlotId sb = t.SlotOfDewey(DeweyId({1, 1}));
  ASSERT_NE(sa, kNoSlot);
  ASSERT_NE(sb, kNoSlot);
  EXPECT_EQ(t.vertex(t.slot(sa).vertex).tag, "a");
  EXPECT_EQ(t.vertex(t.slot(sb).vertex).tag, "b");
  EXPECT_EQ(t.slot(sb).parent, sa);
}

TEST(BuilderTest, PredicateSubtreeIsNotReturning) {
  BlossomTree t = FromPath("/a[b]/c");
  // ~, a, b(predicate), c. Only c returning.
  ASSERT_EQ(t.NumVertices(), 4u);
  EXPECT_EQ(t.NumSlots(), 1u);
  VertexId c = t.VertexOfVariable("result");
  EXPECT_EQ(t.vertex(c).tag, "c");
}

TEST(BuilderTest, PredicateWithDescendantCreatesSlots) {
  BlossomTree t = FromPath("//a[//b]/c");
  // a//b cut edge: a and b returning; c result.
  EXPECT_EQ(t.NumSlots(), 3u);
  SlotId sa = t.SlotOfDewey(DeweyId({1}));
  ASSERT_NE(sa, kNoSlot);
  EXPECT_EQ(t.slot(sa).children.size(), 2u);  // b and c below a.
}

TEST(BuilderTest, ValuePredicate) {
  BlossomTree t = FromPath("/book[author = \"Smith\"]/title");
  VertexId author = kNoVertex;
  for (VertexId v = 0; v < t.NumVertices(); ++v) {
    if (t.vertex(v).tag == "author") author = v;
  }
  ASSERT_NE(author, kNoVertex);
  ASSERT_TRUE(t.vertex(author).value.has_value());
  EXPECT_EQ(t.vertex(author).value->literal, "Smith");
  EXPECT_EQ(t.vertex(author).value->op, xpath::CompareOp::kEq);
}

TEST(BuilderTest, SelfValuePredicate) {
  BlossomTree t = FromPath("//author[. = \"Smith\"]");
  VertexId a = t.VertexOfVariable("result");
  ASSERT_TRUE(t.vertex(a).value.has_value());
  EXPECT_EQ(t.vertex(a).value->literal, "Smith");
}

TEST(BuilderTest, PositionPredicate) {
  BlossomTree t = FromPath("//book[2]");
  VertexId b = t.VertexOfVariable("result");
  EXPECT_EQ(t.vertex(b).position, 2);
}

TEST(BuilderTest, Example1Blossoms) {
  constexpr const char* kExample1 = R"(
    for $book1 in doc("bib.xml")//book,
        $book2 in doc("bib.xml")//book
    let $aut1 := $book1/author
    let $aut2 := $book2/author
    where $book1 << $book2
      and not($book1/title = $book2/title)
      and deep-equal($aut1, $aut2)
    return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
  )";
  BlossomTree t = FromQuery(kExample1);

  // Two pattern-tree roots (two doc()-anchored for-clauses).
  EXPECT_EQ(t.roots().size(), 2u);

  // Blossoms: book1, book2, aut1, aut2, plus title vertices from where.
  VertexId b1 = t.VertexOfVariable("book1");
  VertexId b2 = t.VertexOfVariable("book2");
  VertexId a1 = t.VertexOfVariable("aut1");
  VertexId a2 = t.VertexOfVariable("aut2");
  ASSERT_NE(b1, kNoVertex);
  ASSERT_NE(b2, kNoVertex);
  ASSERT_NE(a1, kNoVertex);
  ASSERT_NE(a2, kNoVertex);

  // let-edges are l-annotated.
  EXPECT_EQ(t.vertex(a1).mode, EdgeMode::kLet);
  EXPECT_EQ(t.vertex(a2).mode, EdgeMode::kLet);
  EXPECT_EQ(t.vertex(b1).mode, EdgeMode::kFor);

  // Dewey IDs per paper §3.3: super-root with book1 = 1.1, book2 = 1.2.
  EXPECT_EQ(t.slot(t.SlotOfVariable("book1")).dewey.ToString(), "1.1");
  EXPECT_EQ(t.slot(t.SlotOfVariable("book2")).dewey.ToString(), "1.2");
  // aut1 and the book1/title vertex are 1.1.x.
  EXPECT_TRUE(
      t.slot(t.SlotOfVariable("book1"))
          .dewey.IsAncestorOf(t.slot(t.SlotOfVariable("aut1")).dewey));

  // Crossing edges: <<, not(=) on titles, deep-equal on authors.
  ASSERT_EQ(t.cross_edges().size(), 3u);
  EXPECT_EQ(t.cross_edges()[0].kind, CrossKind::kDocBefore);
  EXPECT_FALSE(t.cross_edges()[0].negated);
  EXPECT_EQ(t.cross_edges()[1].kind, CrossKind::kValueEq);
  EXPECT_TRUE(t.cross_edges()[1].negated);
  EXPECT_EQ(t.cross_edges()[2].kind, CrossKind::kDeepEqual);
  EXPECT_EQ(t.cross_edges()[2].left, a1);
  EXPECT_EQ(t.cross_edges()[2].right, a2);

  // The slot mode of aut1 is l (let-bound).
  EXPECT_EQ(t.slot(t.SlotOfVariable("aut1")).mode, EdgeMode::kLet);
  EXPECT_EQ(t.slot(t.SlotOfVariable("book1")).mode, EdgeMode::kFor);
}

TEST(BuilderTest, WhereTitleVerticesAreShared) {
  // $b/title referenced twice (where + another comparison) creates one
  // vertex.
  BlossomTree t = FromQuery(
      "for $a in //x, $b in //y where $a/t = $b/t and $a/t != $b/t "
      "return $a");
  size_t t_under_a = 0;
  VertexId a = t.VertexOfVariable("a");
  for (VertexId c : t.vertex(a).children) {
    if (t.vertex(c).tag == "t") ++t_under_a;
  }
  EXPECT_EQ(t_under_a, 1u);
}

TEST(BuilderTest, VariableChainExtendsVertex) {
  BlossomTree t = FromQuery(
      "for $a in //x for $b in $a/y/z return $b");
  VertexId b = t.VertexOfVariable("b");
  ASSERT_NE(b, kNoVertex);
  EXPECT_EQ(t.vertex(b).tag, "z");
  // Chain: x <- y <- z through one pattern tree; single root.
  EXPECT_EQ(t.roots().size(), 1u);
}

TEST(BuilderTest, DocAfterSwapsOperands) {
  BlossomTree t = FromQuery(
      "for $a in //x, $b in //y where $a >> $b return $a");
  ASSERT_EQ(t.cross_edges().size(), 1u);
  EXPECT_EQ(t.cross_edges()[0].kind, CrossKind::kDocBefore);
  EXPECT_EQ(t.cross_edges()[0].left, t.VertexOfVariable("b"));
  EXPECT_EQ(t.cross_edges()[0].right, t.VertexOfVariable("a"));
}

TEST(BuilderTest, OrBranchesProduceNoCrossEdges) {
  BlossomTree t = FromQuery(
      "for $a in //x, $b in //y where $a = $b or $a << $b return $a");
  EXPECT_TRUE(t.cross_edges().empty());
}

TEST(BuilderTest, ErrorUnboundVariable) {
  auto e = flwor::ParseQuery("for $a in $nope/x return $a");
  ASSERT_TRUE(e.ok());
  auto t = BuildFromQuery(**e);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, ErrorReboundVariable) {
  auto e = flwor::ParseQuery("for $a in //x for $a in //y return $a");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(BuildFromQuery(**e).ok());
}

TEST(BuilderTest, ToStringMentionsStructure) {
  BlossomTree t = FromPath("//a[//b]/c");
  std::string s = t.ToString();
  EXPECT_NE(s.find("~"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("($result)"), std::string::npos);
}

}  // namespace
}  // namespace pattern
}  // namespace blossomtree
