#include "nestedlist/nested_list.h"

#include <gtest/gtest.h>

#include "nestedlist/ops.h"
#include "xml/parser.h"

namespace blossomtree {
namespace nestedlist {
namespace {

using pattern::BlossomTree;
using pattern::DeweyId;
using pattern::EdgeMode;
using pattern::SlotId;
using pattern::VertexId;

/// Builds the paper's Example 3 NoK pattern tree: a(1) with children b(1.1)
/// and c(1.2), b with child d(1.1.1); a-b mandatory, b-d and a-c optional.
BlossomTree Example3Pattern() {
  BlossomTree t;
  VertexId a = t.AddRoot("a");
  VertexId b = t.AddChild(a, "b", xpath::Axis::kChild, EdgeMode::kFor);
  VertexId d = t.AddChild(b, "d", xpath::Axis::kChild, EdgeMode::kLet);
  VertexId c = t.AddChild(a, "c", xpath::Axis::kChild, EdgeMode::kLet);
  t.MarkReturning(a);
  t.MarkReturning(b);
  t.MarkReturning(d);
  t.MarkReturning(c);
  EXPECT_TRUE(t.Finalize().ok());
  return t;
}

TEST(NestedListTest, Example3DeweyIds) {
  BlossomTree t = Example3Pattern();
  ASSERT_EQ(t.NumSlots(), 4u);
  EXPECT_EQ(t.slot(0).dewey.ToString(), "1");      // a
  EXPECT_EQ(t.slot(1).dewey.ToString(), "1.1");    // b
  EXPECT_EQ(t.slot(2).dewey.ToString(), "1.1.1");  // d
  EXPECT_EQ(t.slot(3).dewey.ToString(), "1.2");    // c
}

/// Hand-builds the Figure 4 NestedList:
/// (a1,[(b1,()),(b2,[(d1),(d2)]),(b3,(d3))],[(c1),(c2)])
/// over the document <a><b/><c/><b><d/><d/></b><c/><b><d/></b></a>
/// whose node ids are a=0 b=1 c=2 b=3 d=4 d=5 c=6 b=7 d=8.
NestedList Figure4List() {
  auto leaf = [](xml::NodeId n) {
    Entry e;
    e.node = n;
    return e;
  };
  Entry b1 = leaf(1);
  b1.groups.resize(1);
  Entry b2 = leaf(3);
  b2.groups.resize(1);
  b2.groups[0].push_back(leaf(4));
  b2.groups[0].push_back(leaf(5));
  Entry b3 = leaf(7);
  b3.groups.resize(1);
  b3.groups[0].push_back(leaf(8));
  Entry a1 = leaf(0);
  a1.groups.resize(2);
  a1.groups[0] = {b1, b2, b3};
  a1.groups[1] = {leaf(2), leaf(6)};
  NestedList out;
  out.tops.push_back(Group{a1});
  return out;
}

std::unique_ptr<xml::Document> Figure3Document() {
  auto r = xml::ParseDocument("<a><b/><c/><b><d/><d/></b><c/><b><d/></b></a>");
  EXPECT_TRUE(r.ok());
  return r.MoveValue();
}

TEST(NestedListTest, Figure4Serialization) {
  auto doc = Figure3Document();
  NestedList list = Figure4List();
  OccurrenceLabeler label(doc.get());
  EXPECT_EQ(ToString(list, label),
            "(a1,[(b1,()),(b2,[(d1),(d2)]),(b3,(d3))],[(c1),(c2)])");
}

TEST(NestedListTest, PlaceholderSerialization) {
  BlossomTree t = Example3Pattern();
  auto doc = Figure3Document();
  // Placeholder entry for slot a has two empty child groups.
  Entry p = MakePlaceholderEntry(t, 0);
  OccurrenceLabeler label(doc.get());
  EXPECT_EQ(EntryToString(p, label), "((),())");
  NestedList ph = MakePlaceholder(t, {0});
  EXPECT_EQ(ToString(ph, label), "((),())");
}

TEST(NestedListTest, ProjectionExample) {
  // Paper §3.3: π_{1.1}(t) = [b1, b2, b3].
  BlossomTree t = Example3Pattern();
  NestedList list = Figure4List();
  std::vector<SlotId> tops = {0};
  SlotId b = t.SlotOfDewey(DeweyId({1, 1}));
  auto nodes = Project(t, tops, list, b);
  EXPECT_EQ(nodes, std::vector<xml::NodeId>({1, 3, 7}));
}

TEST(NestedListTest, ProjectionDeepSlot) {
  BlossomTree t = Example3Pattern();
  NestedList list = Figure4List();
  SlotId d = t.SlotOfDewey(DeweyId({1, 1, 1}));
  auto nodes = Project(t, {0}, list, d);
  EXPECT_EQ(nodes, std::vector<xml::NodeId>({4, 5, 8}));
}

TEST(NestedListTest, ProjectionIsDocumentOrder) {
  // Theorem 1 at the data-structure level: projections come out sorted.
  BlossomTree t = Example3Pattern();
  NestedList list = Figure4List();
  for (SlotId s = 0; s < t.NumSlots(); ++s) {
    auto nodes = Project(t, {0}, list, s);
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()))
        << "slot " << t.slot(s).dewey.ToString();
  }
}

TEST(NestedListTest, ProjectionUnreachableSlotIsEmpty) {
  BlossomTree t = Example3Pattern();
  NestedList list = Figure4List();
  // Project d but with tops claiming only slot 3 (c): unreachable.
  auto nodes = Project(t, {3}, list, 2);
  EXPECT_TRUE(nodes.empty());
}

TEST(NestedListTest, SelectionByPosition) {
  // Paper §3.3: σ_{position(1.1)=2} = [b2].
  BlossomTree t = Example3Pattern();
  NestedList list = Figure4List();
  SlotId b = t.SlotOfDewey(DeweyId({1, 1}));
  ASSERT_TRUE(SelectPosition(t, {0}, &list, b, 2));
  auto nodes = Project(t, {0}, list, b);
  EXPECT_EQ(nodes, std::vector<xml::NodeId>({3}));  // b2 only.
  // d-children of the removed b's disappear with them.
  auto ds = Project(t, {0}, list, 2);
  EXPECT_EQ(ds, std::vector<xml::NodeId>({4, 5}));
}

TEST(NestedListTest, SelectionInvalidatesMandatory) {
  // Removing all b's empties a mandatory (f) group → invalid list.
  BlossomTree t = Example3Pattern();
  NestedList list = Figure4List();
  SlotId b = t.SlotOfDewey(DeweyId({1, 1}));
  EXPECT_FALSE(
      Select(t, {0}, &list, b, [](xml::NodeId, size_t) { return false; }));
}

TEST(NestedListTest, SelectionOnOptionalGroupStaysValid) {
  // Removing all c's empties an optional (l) group → still valid.
  BlossomTree t = Example3Pattern();
  NestedList list = Figure4List();
  SlotId c = t.SlotOfDewey(DeweyId({1, 2}));
  EXPECT_TRUE(
      Select(t, {0}, &list, c, [](xml::NodeId, size_t) { return false; }));
  EXPECT_TRUE(Project(t, {0}, list, c).empty());
  EXPECT_EQ(Project(t, {0}, list, 0).size(), 1u);  // a survives.
}

TEST(NestedListTest, EnforceMandatoryPrunesEntriesWithEmptyGroup) {
  BlossomTree t = Example3Pattern();
  // Make b-d mandatory for this test by rebuilding: a(b(d-f))(c).
  BlossomTree t2;
  VertexId a = t2.AddRoot("a");
  VertexId b = t2.AddChild(a, "b", xpath::Axis::kChild, EdgeMode::kFor);
  t2.AddChild(b, "d", xpath::Axis::kChild, EdgeMode::kFor);
  t2.AddChild(a, "c", xpath::Axis::kChild, EdgeMode::kLet);
  for (VertexId v = 0; v < t2.NumVertices(); ++v) t2.MarkReturning(v);
  ASSERT_TRUE(t2.Finalize().ok());
  NestedList list = Figure4List();
  SlotId b_slot = t2.SlotOfDewey(DeweyId({1, 1}));
  // b1 has an empty d-group → pruned; b2, b3 remain.
  ASSERT_TRUE(EnforceMandatory(t2, {0}, &list, b_slot, 0));
  auto nodes = Project(t2, {0}, list, b_slot);
  EXPECT_EQ(nodes, std::vector<xml::NodeId>({3, 7}));
}

TEST(NestedListTest, CombineFillsPlaceholders) {
  BlossomTree t = Example3Pattern();
  NestedList filled = Figure4List();
  NestedList ph = MakePlaceholder(t, {0});
  // Pretend two top groups: left owns 0.
  NestedList l;
  l.tops = {filled.tops[0], ph.tops[0]};
  NestedList r;
  r.tops = {ph.tops[0], filled.tops[0]};
  NestedList combined = Combine(l, r, {true, false});
  EXPECT_EQ(combined.tops[0].size(), 1u);
  EXPECT_FALSE(combined.tops[0][0].IsPlaceholder());
  EXPECT_FALSE(combined.tops[1][0].IsPlaceholder());
}

TEST(NestedListTest, SlotChainAndChildIndex) {
  BlossomTree t = Example3Pattern();
  auto chain = SlotChain(t, {0}, 2);  // d
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], 0u);
  EXPECT_EQ(chain[1], 1u);
  EXPECT_EQ(chain[2], 2u);
  EXPECT_EQ(ChildIndex(t, 0, 1), 0u);  // b is a's first child slot.
  EXPECT_EQ(ChildIndex(t, 0, 3), 1u);  // c is a's second child slot.
}

TEST(NestedListTest, OccurrenceLabelerCountsPerTag) {
  auto doc = Figure3Document();
  OccurrenceLabeler label(doc.get());
  EXPECT_EQ(label(0), "a1");
  EXPECT_EQ(label(1), "b1");
  EXPECT_EQ(label(3), "b2");
  EXPECT_EQ(label(7), "b3");
  EXPECT_EQ(label(2), "c1");
  EXPECT_EQ(label(6), "c2");
  EXPECT_EQ(label(8), "d3");
}

}  // namespace
}  // namespace nestedlist
}  // namespace blossomtree
