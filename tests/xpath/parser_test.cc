#include "xpath/parser.h"

#include <gtest/gtest.h>

namespace blossomtree {
namespace xpath {
namespace {

PathExpr Parse(std::string_view s) {
  auto r = ParsePath(s);
  EXPECT_TRUE(r.ok()) << s << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : PathExpr{};
}

TEST(XPathParserTest, SimpleAbsolutePath) {
  PathExpr p = Parse("/a/b");
  EXPECT_EQ(p.start, PathExpr::StartKind::kRoot);
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[0].name, "a");
  EXPECT_EQ(p.steps[1].name, "b");
}

TEST(XPathParserTest, DescendantAxis) {
  PathExpr p = Parse("//a//b");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
}

TEST(XPathParserTest, MixedAxes) {
  PathExpr p = Parse("/a//b/c");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[2].axis, Axis::kChild);
}

TEST(XPathParserTest, DocFunction) {
  PathExpr p = Parse("doc(\"bib.xml\")//book");
  EXPECT_EQ(p.start, PathExpr::StartKind::kRoot);
  EXPECT_EQ(p.document, "bib.xml");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].name, "book");
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);
}

TEST(XPathParserTest, VariableStart) {
  PathExpr p = Parse("$book1/title");
  EXPECT_EQ(p.start, PathExpr::StartKind::kVariable);
  EXPECT_EQ(p.variable, "book1");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].name, "title");
}

TEST(XPathParserTest, BareVariable) {
  PathExpr p = Parse("$aut1");
  EXPECT_EQ(p.start, PathExpr::StartKind::kVariable);
  EXPECT_EQ(p.variable, "aut1");
  EXPECT_TRUE(p.steps.empty());
}

TEST(XPathParserTest, ExistencePredicate) {
  PathExpr p = Parse("//a[//b]/c");
  ASSERT_EQ(p.steps.size(), 2u);
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  const Predicate& pred = p.steps[0].predicates[0];
  EXPECT_EQ(pred.kind, Predicate::Kind::kExists);
  ASSERT_EQ(pred.path->steps.size(), 1u);
  EXPECT_EQ(pred.path->start, PathExpr::StartKind::kContext);
  EXPECT_EQ(pred.path->steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(pred.path->steps[0].name, "b");
}

TEST(XPathParserTest, MultiplePredicates) {
  PathExpr p = Parse("//a[//b][//c][//d]/e");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].predicates.size(), 3u);
}

TEST(XPathParserTest, ValuePredicate) {
  PathExpr p = Parse("/book[author = \"Smith\"]/title");
  const Predicate& pred = p.steps[0].predicates[0];
  EXPECT_EQ(pred.kind, Predicate::Kind::kValueCompare);
  EXPECT_EQ(pred.op, CompareOp::kEq);
  EXPECT_EQ(pred.literal, "Smith");
  EXPECT_EQ(pred.path->steps[0].name, "author");
}

TEST(XPathParserTest, SelfValuePredicate) {
  PathExpr p = Parse("//author[.=\"Smith\"]");
  const Predicate& pred = p.steps[0].predicates[0];
  EXPECT_EQ(pred.kind, Predicate::Kind::kValueCompare);
  ASSERT_EQ(pred.path->steps.size(), 1u);
  EXPECT_EQ(pred.path->steps[0].axis, Axis::kSelf);
}

TEST(XPathParserTest, ComparisonOperators) {
  EXPECT_EQ(Parse("//a[b != \"x\"]").steps[0].predicates[0].op,
            CompareOp::kNeq);
  EXPECT_EQ(Parse("//a[b < 5]").steps[0].predicates[0].op, CompareOp::kLt);
  EXPECT_EQ(Parse("//a[b <= 5]").steps[0].predicates[0].op, CompareOp::kLe);
  EXPECT_EQ(Parse("//a[b > 5]").steps[0].predicates[0].op, CompareOp::kGt);
  EXPECT_EQ(Parse("//a[b >= 5]").steps[0].predicates[0].op, CompareOp::kGe);
}

TEST(XPathParserTest, NumericLiteral) {
  PathExpr p = Parse("//a[b = 42]");
  EXPECT_EQ(p.steps[0].predicates[0].literal, "42");
}

TEST(XPathParserTest, PositionPredicate) {
  PathExpr p = Parse("//book[2]");
  const Predicate& pred = p.steps[0].predicates[0];
  EXPECT_EQ(pred.kind, Predicate::Kind::kPosition);
  EXPECT_EQ(pred.position, 2);
}

TEST(XPathParserTest, WildcardStep) {
  PathExpr p = Parse("//*/b");
  EXPECT_EQ(p.steps[0].name, "*");
}

TEST(XPathParserTest, WildcardWithPredicateOnly) {
  // Paper Table 2 Q1 for d1: "/a/b//[c/d//e]".
  PathExpr p = Parse("/a/b//[c/d//e]");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[2].name, "*");
  EXPECT_EQ(p.steps[2].axis, Axis::kDescendant);
  ASSERT_EQ(p.steps[2].predicates.size(), 1u);
  EXPECT_EQ(p.steps[2].predicates[0].path->steps.size(), 3u);
}

TEST(XPathParserTest, NestedPredicates) {
  // Paper Appendix Q4 for d1: //a//c2//b1/c2[//c2[b1]]/b1//c3
  PathExpr p = Parse("//a//c2//b1/c2[//c2[b1]]/b1//c3");
  ASSERT_EQ(p.steps.size(), 6u);
  const Predicate& outer = p.steps[3].predicates[0];
  EXPECT_EQ(outer.kind, Predicate::Kind::kExists);
  ASSERT_EQ(outer.path->steps.size(), 1u);
  EXPECT_EQ(outer.path->steps[0].predicates.size(), 1u);
}

TEST(XPathParserTest, FollowingSiblingAxis) {
  PathExpr p = Parse("/a/following-sibling::b");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, Axis::kFollowingSibling);
  EXPECT_EQ(p.steps[1].name, "b");
}

TEST(XPathParserTest, AttributeStep) {
  PathExpr p = Parse("//book/@id");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, Axis::kAttribute);
  EXPECT_EQ(p.steps[1].name, "id");
}

TEST(XPathParserTest, UnderscoreNames) {
  PathExpr p = Parse("//name_of_state");
  EXPECT_EQ(p.steps[0].name, "name_of_state");
}

TEST(XPathParserTest, ContextDot) {
  PathExpr p = Parse(".");
  EXPECT_EQ(p.start, PathExpr::StartKind::kContext);
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].axis, Axis::kSelf);
}

TEST(XPathParserTest, ContextRelativeDescendant) {
  PathExpr p = Parse(".//name");
  EXPECT_EQ(p.start, PathExpr::StartKind::kContext);
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);
}

TEST(XPathParserTest, ToStringRoundTrip) {
  const char* queries[] = {
      "/a/b",
      "//a//b",
      "//a[//b][//c]//e",
      "//book[2]",
      "$v/title",
      "//author[. = \"Smith\"]",
      "doc(\"bib.xml\")//book/title",
  };
  for (const char* q : queries) {
    PathExpr p = Parse(q);
    // Round-trip: parse(ToString(parse(q))) == ToString(parse(q)).
    std::string s1 = p.ToString();
    PathExpr p2 = Parse(s1);
    EXPECT_EQ(p2.ToString(), s1) << "query: " << q;
  }
}

TEST(XPathParserTest, ClonePathIsDeep) {
  PathExpr p = Parse("//a[b = \"x\"]/c");
  PathExpr q = ClonePath(p);
  EXPECT_EQ(q.ToString(), p.ToString());
  q.steps[0].predicates[0].literal = "y";
  EXPECT_EQ(p.steps[0].predicates[0].literal, "x");
}

// -- Errors -------------------------------------------------------------------

TEST(XPathParserTest, ErrorTrailingInput) {
  auto r = ParsePath("/a/b garbage");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(XPathParserTest, ErrorEmpty) {
  EXPECT_FALSE(ParsePath("").ok());
}

TEST(XPathParserTest, ErrorUnclosedPredicate) {
  EXPECT_FALSE(ParsePath("//a[b").ok());
}

TEST(XPathParserTest, ErrorBadPosition) {
  EXPECT_FALSE(ParsePath("//a[0]").ok());
}

TEST(XPathParserTest, ErrorUnterminatedString) {
  EXPECT_FALSE(ParsePath("//a[b = \"x]").ok());
}

TEST(XPathParserTest, ErrorLoneSlash) {
  EXPECT_FALSE(ParsePath("/").ok());
}

TEST(XPathParserTest, PrefixParsingStopsAtComma) {
  size_t pos = 0;
  auto r = ParsePathPrefix("$a/b, $c/d", &pos);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "$a/b");
  EXPECT_EQ(pos, 4u);
}

// Regression (fuzz corpus: xpath/deep_predicates.txt): ~100k nested
// predicates once recursed ParsePredicate -> ParsePathPrefix off the stack.
TEST(XPathParserTest, DeeplyNestedPredicatesRejectedNotCrash) {
  std::string q = "//a";
  for (size_t i = 0; i < 100'000; ++i) q += "[//a";
  auto r = ParsePath(q);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("depth"), std::string::npos)
      << r.status().ToString();
}

TEST(XPathParserTest, PredicateNestingWithinLimitParses) {
  std::string q = "//a";
  for (size_t i = 0; i < 50; ++i) q += "[b";
  q.append(50, ']');
  auto r = ParsePath(q);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

}  // namespace
}  // namespace xpath
}  // namespace blossomtree
