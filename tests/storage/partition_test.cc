#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "storage/page_store.h"
#include "xml/parser.h"

namespace blossomtree {
namespace storage {
namespace {

std::unique_ptr<xml::Document> Doc(const char* text) {
  auto parsed = xml::ParseDocument(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.MoveValue();
}

/// Every partitioning must tile [0, N-1] with contiguous ascending ranges.
void ExpectTiles(const xml::Document& doc,
                 const std::vector<NodeRange>& parts) {
  ASSERT_FALSE(parts.empty());
  EXPECT_EQ(parts.front().begin, 0u);
  EXPECT_EQ(parts.back().end, doc.NumNodes() - 1);
  for (size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].begin, parts[i - 1].end + 1);
  }
}

/// Cuts must fall at top-level subtree boundaries: every partition start
/// (except node 0) is a child of the root.
void ExpectTopLevelCuts(const xml::Document& doc,
                        const std::vector<NodeRange>& parts) {
  for (size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(doc.Parent(parts[i].begin), doc.Root())
        << "partition " << i << " starts mid-subtree";
  }
}

TEST(PartitionTest, EmptyDocument) {
  xml::Document doc;
  ASSERT_TRUE(doc.Finish().ok());
  EXPECT_TRUE(PartitionSubtrees(doc, 4).empty());
}

TEST(PartitionTest, SingleNode) {
  auto doc = Doc("<a/>");
  auto parts = PartitionSubtrees(*doc, 4);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (NodeRange{0, 0}));
}

TEST(PartitionTest, OnePartitionIsFullRange) {
  auto doc = Doc("<a><b/><c/><d/></a>");
  auto parts = PartitionSubtrees(*doc, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (NodeRange{0, 3}));
}

TEST(PartitionTest, SplitsAtTopLevelChildren) {
  // Root + 4 children of 3 nodes each: 13 nodes total.
  auto doc = Doc(
      "<r>"
      "<a><x/><y/></a><b><x/><y/></b>"
      "<c><x/><y/></c><d><x/><y/></d>"
      "</r>");
  ASSERT_EQ(doc->NumNodes(), 13u);
  auto parts = PartitionSubtrees(*doc, 2);
  ASSERT_EQ(parts.size(), 2u);
  ExpectTiles(*doc, parts);
  ExpectTopLevelCuts(*doc, parts);
  // Balanced: 7 + 6 nodes.
  EXPECT_EQ(parts[0].size(), 7u);
  EXPECT_EQ(parts[1].size(), 6u);
}

TEST(PartitionTest, MorePartitionsThanChildren) {
  auto doc = Doc("<r><a/><b/></r>");
  auto parts = PartitionSubtrees(*doc, 8);
  EXPECT_LE(parts.size(), 3u);  // At most root-group + 2 subtrees.
  ExpectTiles(*doc, parts);
  ExpectTopLevelCuts(*doc, parts);
}

TEST(PartitionTest, SkewedSubtreesStayWhole) {
  // One huge first child: it cannot be split, so it dominates partition 1.
  auto doc = Doc(
      "<r><big><a/><b/><c/><d/><e/><f/><g/><h/></big><s1/><s2/><s3/></r>");
  auto parts = PartitionSubtrees(*doc, 4);
  ExpectTiles(*doc, parts);
  ExpectTopLevelCuts(*doc, parts);
  // The big subtree (nodes 1..9) is never cut.
  for (const NodeRange& p : parts) {
    EXPECT_FALSE(p.begin > 1 && p.begin <= 9);
  }
}

TEST(PartitionTest, GeneratedDatasetsTileCorrectly) {
  for (datagen::Dataset d : datagen::AllDatasets()) {
    datagen::GenOptions o;
    o.scale = 0.02;
    auto doc = datagen::GenerateDataset(d, o);
    for (size_t k : {2, 3, 4, 8, 16}) {
      auto parts = PartitionSubtrees(*doc, k);
      EXPECT_LE(parts.size(), k);
      ExpectTiles(*doc, parts);
      ExpectTopLevelCuts(*doc, parts);
    }
  }
}

TEST(PartitionTest, PageStorePartitionMatchesDocumentPartition) {
  for (datagen::Dataset d : datagen::AllDatasets()) {
    datagen::GenOptions o;
    o.scale = 0.02;
    auto doc = datagen::GenerateDataset(d, o);
    PageStore store(*doc);
    for (size_t k : {1, 2, 4, 8}) {
      EXPECT_EQ(store.Partition(k), PartitionSubtrees(*doc, k))
          << datagen::DatasetName(d) << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace storage
}  // namespace blossomtree
