#include "storage/tag_stream.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace blossomtree {
namespace storage {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(TagStreamTest, IteratesInDocumentOrder) {
  auto doc = Parse("<a><b/><c><b/></c><b/></a>");
  TagStream s(doc.get(), doc->tags().Lookup("b"));
  ASSERT_EQ(s.size(), 3u);
  xml::NodeId prev = 0;
  int count = 0;
  while (!s.AtEnd()) {
    EXPECT_GE(s.Node(), prev);
    prev = s.Node();
    s.Advance();
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.Consumed(), 3u);
}

TEST(TagStreamTest, RegionLabels) {
  auto doc = Parse("<a><b><c/></b></a>");
  TagStream s(doc.get(), doc->tags().Lookup("b"));
  ASSERT_FALSE(s.AtEnd());
  EXPECT_EQ(s.Start(), 1u);
  EXPECT_EQ(s.End(), 2u);
  EXPECT_EQ(s.Level(), 1u);
}

TEST(TagStreamTest, SkipToSeeks) {
  auto doc = Parse("<a><b/><b/><b/><c/><b/></a>");
  TagStream s(doc.get(), doc->tags().Lookup("b"));
  s.SkipTo(3);
  ASSERT_FALSE(s.AtEnd());
  EXPECT_GE(s.Node(), 3u);
  s.SkipTo(100);
  EXPECT_TRUE(s.AtEnd());
}

TEST(TagStreamTest, SkipToCurrentPositionIsNoMove) {
  auto doc = Parse("<a><b/><b/></a>");
  TagStream s(doc.get(), doc->tags().Lookup("b"));
  xml::NodeId first = s.Node();
  s.SkipTo(first);
  EXPECT_EQ(s.Node(), first);
}

TEST(TagStreamTest, UnknownTagIsEmpty) {
  auto doc = Parse("<a/>");
  TagStream s(doc.get(), doc->tags().Lookup("zzz"));
  EXPECT_TRUE(s.AtEnd());
  EXPECT_EQ(s.size(), 0u);
}

TEST(TagStreamTest, RewindRestarts) {
  auto doc = Parse("<a><b/><b/></a>");
  TagStream s(doc.get(), doc->tags().Lookup("b"));
  s.Advance();
  s.Advance();
  EXPECT_TRUE(s.AtEnd());
  s.Rewind();
  EXPECT_FALSE(s.AtEnd());
}

}  // namespace
}  // namespace storage
}  // namespace blossomtree
