#include "storage/page_store.h"

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "xml/parser.h"

namespace blossomtree {
namespace storage {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(PageStoreTest, RecordsMirrorDocument) {
  auto doc = Parse("<a><b><d/></b><c/></a>");
  PageStore store(*doc);
  ScanCursor cur;
  ASSERT_EQ(store.NumNodes(), 4u);
  EXPECT_EQ(store.Get(0, &cur).subtree_end, doc->SubtreeEnd(0));
  EXPECT_EQ(store.Get(1, &cur).level, 1u);
  EXPECT_EQ(store.Get(0, &cur).tag, doc->Tag(0));
}

TEST(PageStoreTest, NavigationMatchesDocument) {
  auto doc = Parse("<a><b><d/><e/></b><c/></a>");
  PageStore store(*doc);
  ScanCursor cur;
  for (xml::NodeId n = 0; n < doc->NumNodes(); ++n) {
    EXPECT_EQ(store.FirstChild(n, &cur), doc->FirstChild(n)) << "node " << n;
    EXPECT_EQ(store.NextSibling(n, &cur), doc->NextSibling(n))
        << "node " << n;
  }
}

TEST(PageStoreTest, NavigationWithTextNodes) {
  auto doc = Parse("<a><b>t1</b>t2<c/></a>");
  PageStore store(*doc);
  ScanCursor cur;
  for (xml::NodeId n = 0; n < doc->NumNodes(); ++n) {
    EXPECT_EQ(store.FirstChild(n, &cur), doc->FirstChild(n)) << "node " << n;
    EXPECT_EQ(store.NextSibling(n, &cur), doc->NextSibling(n))
        << "node " << n;
  }
}

TEST(PageStoreTest, SequentialScanCostsOnePassOfPages) {
  // 64-byte pages => 4 records per page.
  auto doc = Parse("<a><b/><b/><b/><b/><b/><b/><b/></a>");
  PageStore store(*doc, /*page_bytes=*/64);
  ASSERT_EQ(store.NodesPerPage(), 4u);
  ASSERT_EQ(store.NumPages(), 2u);
  store.ResetCounters();
  ScanCursor cur;
  for (xml::NodeId n = 0; n < store.NumNodes(); ++n) {
    store.Get(n, &cur);
  }
  EXPECT_EQ(store.PageReads(), 2u);
  EXPECT_EQ(cur.reads, 2u);
}

TEST(PageStoreTest, RandomAccessCostsPerJump) {
  auto doc = Parse("<a><b/><b/><b/><b/><b/><b/><b/></a>");
  PageStore store(*doc, 64);
  store.ResetCounters();
  ScanCursor cur;
  store.Get(0, &cur);  // page 0
  store.Get(7, &cur);  // page 1
  store.Get(0, &cur);  // page 0 again
  EXPECT_EQ(store.PageReads(), 3u);
}

TEST(PageStoreTest, NavigationMatchesDocumentOnGeneratedData) {
  // Property: the paged store's derived navigation (from subtree extents
  // and levels alone) equals the DOM pointers on every dataset shape.
  for (blossomtree::datagen::Dataset d : blossomtree::datagen::AllDatasets()) {
    blossomtree::datagen::GenOptions o;
    o.scale = 0.01;
    auto doc = blossomtree::datagen::GenerateDataset(d, o);
    PageStore store(*doc);
    ScanCursor cur;
    for (xml::NodeId n = 0; n < doc->NumNodes(); ++n) {
      ASSERT_EQ(store.FirstChild(n, &cur), doc->FirstChild(n))
          << blossomtree::datagen::DatasetName(d) << " node " << n;
      ASSERT_EQ(store.NextSibling(n, &cur), doc->NextSibling(n))
          << blossomtree::datagen::DatasetName(d) << " node " << n;
    }
  }
}

TEST(PageStoreTest, RepeatedSamePageIsCached) {
  auto doc = Parse("<a><b/><b/></a>");
  PageStore store(*doc, 4096);
  store.ResetCounters();
  ScanCursor cur;
  store.Get(0, &cur);
  store.Get(1, &cur);
  store.Get(2, &cur);
  EXPECT_EQ(store.PageReads(), 1u);
}

TEST(PageStoreTest, ConcurrentScansCountReadsIndependently) {
  // Two interleaved sequential readers each pay one pass of page reads:
  // the one-page "current page" state is per-cursor, not shared store
  // state, so the aggregate is exactly the sum of the per-scan counts no
  // matter how the reads interleave.
  auto doc = Parse("<a><b/><b/><b/><b/><b/><b/><b/></a>");
  PageStore store(*doc, /*page_bytes=*/64);
  ASSERT_EQ(store.NumPages(), 2u);
  store.ResetCounters();
  ScanCursor c1;
  ScanCursor c2;
  for (xml::NodeId n = 0; n < store.NumNodes(); ++n) {
    store.Get(n, &c1);
    store.Get(n, &c2);
  }
  EXPECT_EQ(c1.reads, 2u);
  EXPECT_EQ(c2.reads, 2u);
  EXPECT_EQ(store.PageReads(), c1.reads + c2.reads);
}

TEST(PageStoreTest, PartitionEmptyDocumentIsSafe) {
  xml::Document doc;  // Empty (e.g. a failed parse left nothing behind).
  PageStore store(doc);
  EXPECT_TRUE(store.Partition(4).empty());
}

TEST(PageStoreTest, PartitionUnterminatedDocumentStaysInBounds) {
  // A document abandoned mid-build (BeginElement without EndElement) can
  // carry a root subtree_end pointing past the record array; Partition must
  // clamp its walk instead of indexing out of bounds.
  xml::Document doc;
  doc.BeginElement("a");
  doc.BeginElement("b");
  PageStore store(doc);
  std::vector<NodeRange> ranges = store.Partition(4);
  for (const NodeRange& r : ranges) {
    EXPECT_LE(r.begin, r.end);
    EXPECT_LT(r.end, store.NumNodes());  // Ranges are inclusive.
  }
}

TEST(PageStoreTest, PartitionSingleNodeDocument) {
  auto doc = Parse("<a/>");
  PageStore store(*doc);
  std::vector<NodeRange> ranges = store.Partition(4);
  size_t covered = 0;
  for (const NodeRange& r : ranges) covered += r.end - r.begin + 1;
  EXPECT_EQ(covered, 1u);
}

}  // namespace
}  // namespace storage
}  // namespace blossomtree
