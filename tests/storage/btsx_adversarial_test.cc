// Adversarial decode suite for both BTSX generations (satellite of the
// out-of-core PR): hostile inputs — truncations at every byte offset,
// oversized varint lengths, trailing bytes, unbalanced event streams,
// concatenated files — must produce clean InvalidArgument errors, never
// crashes, hangs, or silently wrong documents.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "index/btsi.h"
#include "index/structural_index.h"
#include "storage/btsx2.h"
#include "storage/disk_store.h"
#include "storage/succinct.h"
#include "util/varint.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace blossomtree {
namespace storage {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

// -- BTSX v1 (succinct event stream) -----------------------------------------

TEST(BtsxAdversarialTest, V1TruncationAtEveryOffset) {
  auto doc = Parse("<a k=\"v\"><b>text</b><c/><b>more</b></a>");
  std::string encoded = EncodeSuccinct(*doc);
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto r = DecodeSuccinct(std::string_view(encoded).substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(BtsxAdversarialTest, V1TrailingGarbageRejected) {
  auto doc = Parse("<a><b>x</b></a>");
  std::string encoded = EncodeSuccinct(*doc);
  // Regression: the decoder used to stop at event exhaustion and silently
  // ignore anything after the payload.
  using namespace std::string_literals;
  for (const std::string& tail : {"\x00"s, "Z"s, "garbage-bytes"s}) {
    auto r = DecodeSuccinct(encoded + tail);
    ASSERT_FALSE(r.ok()) << "tail of " << tail.size() << " bytes accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(BtsxAdversarialTest, V1ConcatenatedFilesRejected) {
  auto doc = Parse("<a><b/></a>");
  std::string encoded = EncodeSuccinct(*doc);
  EXPECT_FALSE(DecodeSuccinct(encoded + encoded).ok());
}

TEST(BtsxAdversarialTest, V1HostileVarintLengths) {
  // Magic + version, then a tag count far past any plausible allocation —
  // the decoder must fail on exhausted input, not attempt the reserve.
  std::string hostile = "BTSX";
  PutVarint(&hostile, 1);                      // version
  PutVarint(&hostile, 0xFFFFFFFFFFFFFFFFull);  // num_tags
  EXPECT_FALSE(DecodeSuccinct(hostile).ok());

  // A tag whose length prefix runs past the buffer.
  std::string bad_name = "BTSX";
  PutVarint(&bad_name, 1);
  PutVarint(&bad_name, 1);          // one tag
  PutVarint(&bad_name, 1u << 30);   // name length: 1 GiB
  bad_name += "abc";
  EXPECT_FALSE(DecodeSuccinct(bad_name).ok());

  // An event count far beyond the bytes that follow.
  std::string truncated_events = "BTSX";
  PutVarint(&truncated_events, 1);
  PutVarint(&truncated_events, 0);                     // no tags
  PutVarint(&truncated_events, 0xFFFFFFFFull);         // events
  EXPECT_FALSE(DecodeSuccinct(truncated_events).ok());
}

TEST(BtsxAdversarialTest, V1UnbalancedEventStreams) {
  // Open without close: depth stays positive at the end.
  std::string open_only = "BTSX";
  PutVarint(&open_only, 1);
  PutVarint(&open_only, 1);
  PutLengthPrefixed(&open_only, "a");
  PutVarint(&open_only, 1);     // one event
  open_only.push_back(0);       // kOpen
  PutVarint(&open_only, 0);     // tag 0
  PutVarint(&open_only, 0);     // no attrs
  EXPECT_FALSE(DecodeSuccinct(open_only).ok());

  // Close without open: depth would go negative.
  std::string close_only = "BTSX";
  PutVarint(&close_only, 1);
  PutVarint(&close_only, 0);
  PutVarint(&close_only, 1);    // one event
  close_only.push_back(2);      // kClose
  EXPECT_FALSE(DecodeSuccinct(close_only).ok());
}

TEST(BtsxAdversarialTest, V1ByteFlipsNeverCrash) {
  auto doc = Parse("<r><a x=\"1\">t</a><b/><a>u</a></r>");
  std::string encoded = EncodeSuccinct(*doc);
  std::string original = xml::Serialize(*doc);
  for (size_t i = 0; i < encoded.size(); ++i) {
    for (uint8_t flip : {0x01, 0x80, 0xFF}) {
      std::string corrupt = encoded;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      auto r = DecodeSuccinct(corrupt);
      // Either a clean error or a well-formed (possibly different)
      // document; round-tripping whatever decoded must be stable.
      if (r.ok()) {
        std::string reserialized = xml::Serialize(**r);
        auto again = DecodeSuccinct(EncodeSuccinct(**r));
        ASSERT_TRUE(again.ok());
        EXPECT_EQ(xml::Serialize(**again), reserialized);
      }
    }
  }
}

// -- BTSX v2 (paged layout) ---------------------------------------------------

TEST(BtsxAdversarialTest, V2TruncationAtEveryOffset) {
  auto doc = Parse("<a k=\"v\"><b>text</b><c/></a>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok());
  for (size_t len = 0; len < encoded->size(); ++len) {
    std::string_view prefix(*encoded);
    auto r = MapBtsx2(prefix.substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes mapped";
  }
}

TEST(BtsxAdversarialTest, V2TrailingBytesRejected) {
  auto doc = Parse("<a><b/></a>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(MapBtsx2(*encoded + "x").ok());
  EXPECT_FALSE(MapBtsx2(*encoded + *encoded).ok());
}

TEST(BtsxAdversarialTest, V2HeaderFieldCorruption) {
  auto doc = Parse("<a><b>t</b></a>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok());
  // Every header byte flipped: either rejected by MapBtsx2 or (if the flip
  // lands in padding) mapped identically. Deep validation must also hold.
  for (size_t i = 0; i < kBtsx2HeaderBytes && i < encoded->size(); ++i) {
    std::string corrupt = *encoded;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    auto r = MapBtsx2(corrupt);
    if (r.ok()) {
      Status deep = ValidateBtsx2Deep(*r);
      if (deep.ok()) {
        EXPECT_EQ(r->num_nodes, doc->NumNodes()) << "header byte " << i;
      }
    }
  }
}

TEST(BtsxAdversarialTest, V2BodyBitFlipsCaughtOrHarmless) {
  auto doc = Parse("<r><a x=\"1\">t</a><b/><a>u</a></r>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok());
  for (size_t i = kBtsx2HeaderBytes; i < encoded->size(); ++i) {
    std::string corrupt = *encoded;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    auto r = MapBtsx2(corrupt);
    if (!r.ok()) continue;
    // MapBtsx2 is O(header + #tags) by design, so body corruption may get
    // through it — ValidateBtsx2Deep is the backstop; a flip it accepts
    // must be confined to opaque payload bytes (text/attribute pools),
    // which cannot break navigation.
    Status deep = ValidateBtsx2Deep(*r);
    if (deep.ok()) {
      EXPECT_EQ(r->num_nodes, doc->NumNodes()) << "byte " << i;
    }
  }
}

TEST(BtsxAdversarialTest, V2EmptyAndTinyInputs) {
  EXPECT_FALSE(MapBtsx2("").ok());
  EXPECT_FALSE(MapBtsx2("BTSX2").ok());
  EXPECT_FALSE(MapBtsx2(std::string(kBtsx2HeaderBytes - 1, '\0')).ok());
  EXPECT_FALSE(MapBtsx2(std::string(kBtsx2HeaderBytes, '\0')).ok());
}

TEST(BtsxAdversarialTest, V2RoundTripSurvivesDeepValidation) {
  auto doc = Parse(
      "<lib><book id=\"1\"><t>A</t>mix</book><book id=\"2\"/></lib>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok());
  auto view = MapBtsx2(*encoded);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(ValidateBtsx2Deep(*view).ok());
  xml::Document adopted;
  ASSERT_TRUE(adopted.AdoptExternal(view->ToLayout()).ok());
  EXPECT_EQ(xml::Serialize(adopted), xml::Serialize(*doc));
}

// -- BTSI structural-index sidecar (DESIGN.md §14) ---------------------------

std::string EncodedBtsi() {
  auto doc = Parse(
      "<lib><book><t>Alpha</t><n>7</n></book><book><t>Beta</t><n>42</n>"
      "</book><shelf id=\"x\"/></lib>");
  auto idx = index::StructuralIndex::Build(*doc);
  auto encoded = index::EncodeBtsi(*idx);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  return encoded.ok() ? *encoded : std::string();
}

TEST(BtsxAdversarialTest, BtsiTruncationAtEveryOffset) {
  std::string encoded = EncodedBtsi();
  ASSERT_FALSE(encoded.empty());
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto r = index::DecodeBtsi(std::string_view(encoded).substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(BtsxAdversarialTest, BtsiTrailingBytesRejected) {
  std::string encoded = EncodedBtsi();
  using namespace std::string_literals;
  for (const std::string& tail : {"\x00"s, "Z"s, "junk"s}) {
    EXPECT_FALSE(index::DecodeBtsi(encoded + tail).ok());
  }
  EXPECT_FALSE(index::DecodeBtsi(encoded + encoded).ok());
}

TEST(BtsxAdversarialTest, BtsiByteFlipsNeverCrashOrMisdecode) {
  // Every single-byte corruption must either be rejected outright or decode
  // cleanly without crashing or hanging. All section shapes derive from the
  // header counts, so a flip in the body can never shift structure — assert
  // exact shape identity for every accepted body flip. Header count fields
  // (e.g. num_nodes, which only upper-bounds entry values) carry no
  // invariant the decoder can re-derive; those flips may decode with a
  // different count, and Corpus attachment gates on Matches(doc) instead.
  std::string encoded = EncodedBtsi();
  auto pristine = index::DecodeBtsi(encoded);
  ASSERT_TRUE(pristine.ok());
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string corrupt = encoded;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    auto r = index::DecodeBtsi(corrupt);
    if (!r.ok()) continue;
    if (i < index::kBtsiHeaderBytes) continue;
    EXPECT_EQ((*r)->num_nodes(), (*pristine)->num_nodes()) << "byte " << i;
    EXPECT_EQ((*r)->raw_postings().size(),
              (*pristine)->raw_postings().size())
        << "byte " << i;
    EXPECT_EQ((*r)->guide().size(), (*pristine)->guide().size())
        << "byte " << i;
  }
}

TEST(BtsxAdversarialTest, BtsiEmptyAndTinyInputs) {
  EXPECT_FALSE(index::DecodeBtsi("").ok());
  EXPECT_FALSE(index::DecodeBtsi("BTSI").ok());
  EXPECT_FALSE(
      index::DecodeBtsi(std::string(index::kBtsiHeaderBytes, '\0')).ok());
}

TEST(BtsxAdversarialTest, BtsiSidecarCorruptionIsToleratedAtOpen) {
  // A corrupt sidecar must never fail the corpus open — the store comes up
  // index-less and plans fall back to scans.
  auto doc = Parse("<lib><book><t>A</t></book></lib>");
  std::string path = ::testing::TempDir() + "/bt_adv_sidecar.btsx2";
  ASSERT_TRUE(WriteBtsx2(*doc, path).ok());
  auto idx = index::StructuralIndex::Build(*doc);
  std::string sidecar = index::BtsiSidecarPath(path);
  ASSERT_TRUE(index::WriteBtsi(*idx, sidecar).ok());
  {
    std::ofstream out(sidecar, std::ios::binary | std::ios::app);
    out << "trailing garbage";
  }
  auto store = DiskStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->index(), nullptr);
  std::remove(sidecar.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace blossomtree
