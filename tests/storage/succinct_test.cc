#include "storage/succinct.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "datagen/datagen.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace blossomtree {
namespace storage {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

void ExpectRoundTrip(const xml::Document& doc) {
  std::string encoded = EncodeSuccinct(doc);
  auto decoded = DecodeSuccinct(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(xml::Serialize(**decoded), xml::Serialize(doc));
  EXPECT_EQ((*decoded)->NumNodes(), doc.NumNodes());
  EXPECT_EQ((*decoded)->MaxDepth(), doc.MaxDepth());
}

TEST(SuccinctTest, RoundTripSimple) {
  ExpectRoundTrip(*Parse("<a><b>text</b><c x=\"1\"/></a>"));
}

TEST(SuccinctTest, RoundTripMixedContent) {
  ExpectRoundTrip(*Parse("<a>x<b>y</b>z<b/>w</a>"));
}

TEST(SuccinctTest, RoundTripDeepNesting) {
  std::string in;
  for (int i = 0; i < 64; ++i) in += "<n>";
  in += "leaf";
  for (int i = 0; i < 64; ++i) in += "</n>";
  ExpectRoundTrip(*Parse(in));
}

TEST(SuccinctTest, RoundTripAttributes) {
  ExpectRoundTrip(*Parse(R"(<a k1="v1" k2="v&amp;2"><b k3=""/></a>)"));
}

TEST(SuccinctTest, RoundTripEmptyDocument) {
  xml::Document doc;
  ASSERT_TRUE(doc.Finish().ok());
  ExpectRoundTrip(doc);
}

class SuccinctDatasetTest : public ::testing::TestWithParam<datagen::Dataset> {
};

TEST_P(SuccinctDatasetTest, RoundTripsGeneratedData) {
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(GetParam(), o);
  ExpectRoundTrip(*doc);
}

TEST_P(SuccinctDatasetTest, EncodingIsCompact) {
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(GetParam(), o);
  std::string xml_text = xml::Serialize(*doc);
  std::string encoded = EncodeSuccinct(*doc);
  // The succinct form should beat the textual form (tags are dictionary
  // coded, structure is 2 bits per event).
  EXPECT_LT(encoded.size(), xml_text.size());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, SuccinctDatasetTest,
                         ::testing::ValuesIn(datagen::AllDatasets()),
                         [](const auto& info) {
                           return std::string(
                               datagen::DatasetName(info.param));
                         });

TEST(SuccinctTest, SaveAndLoadFile) {
  auto doc = Parse("<a><b>x</b></a>");
  std::string path = ::testing::TempDir() + "/bt_succinct_test.btsx";
  ASSERT_TRUE(SaveDocument(*doc, path).ok());
  auto loaded = LoadDocument(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(xml::Serialize(**loaded), "<a><b>x</b></a>");
  std::remove(path.c_str());
}

TEST(SuccinctTest, LoadMissingFileFails) {
  auto r = LoadDocument("/nonexistent/path/file.btsx");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

// -- Corruption handling -------------------------------------------------------

TEST(SuccinctTest, RejectsBadMagic) {
  EXPECT_FALSE(DecodeSuccinct("NOPE rest").ok());
  EXPECT_FALSE(DecodeSuccinct("").ok());
}

TEST(SuccinctTest, RejectsTruncation) {
  auto doc = Parse("<a><b>text</b><c/></a>");
  std::string encoded = EncodeSuccinct(*doc);
  // Every strict prefix must fail cleanly, not crash.
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto r = DecodeSuccinct(std::string_view(encoded).substr(0, len));
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(SuccinctTest, RejectsTrailingGarbage) {
  // Regression: DecodeSuccinct used to stop at event exhaustion and accept
  // any trailing bytes, so corrupt or concatenated files round-tripped
  // silently as a prefix document.
  auto doc = Parse("<a><b>text</b><c/></a>");
  std::string encoded = EncodeSuccinct(*doc);
  auto r = DecodeSuccinct(encoded + "junk");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(DecodeSuccinct(encoded + std::string(1, '\0')).ok());
  EXPECT_FALSE(DecodeSuccinct(encoded + encoded).ok());
  // The exact encoding still round-trips.
  EXPECT_TRUE(DecodeSuccinct(encoded).ok());
}

TEST(SuccinctTest, LoadRejectsFileWithTrailingGarbage) {
  auto doc = Parse("<a><b>x</b></a>");
  std::string path = ::testing::TempDir() + "/bt_succinct_trailing.btsx";
  ASSERT_TRUE(SaveDocument(*doc, path).ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "trailing";
  }
  auto r = LoadDocument(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SuccinctTest, RejectsCorruptTagId) {
  auto doc = Parse("<a><b/></a>");
  std::string encoded = EncodeSuccinct(*doc);
  // Flip bytes one at a time; decoding must either fail or produce some
  // well-formed document — never crash.
  for (size_t i = 4; i < encoded.size(); ++i) {
    std::string corrupt = encoded;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    auto r = DecodeSuccinct(corrupt);
    if (r.ok()) {
      EXPECT_TRUE((*r)->NumNodes() > 0 || (*r)->empty());
    }
  }
}

}  // namespace
}  // namespace storage
}  // namespace blossomtree
