#include "storage/disk_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "storage/btsx2.h"
#include "storage/page_store.h"
#include "util/thread_pool.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace blossomtree {
namespace storage {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Writes `doc` as BTSX v2 into TempDir and returns the path.
std::string WriteTemp(const xml::Document& doc, const std::string& tag) {
  std::string path = ::testing::TempDir() + "/bt_disk_" + tag + ".btsx2";
  Status st = WriteBtsx2(doc, path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

/// Exhaustive facade comparison: every accessor the engine reads, at every
/// node, must agree between the in-RAM build and the mapped view.
void ExpectFacadeParity(const xml::Document& ram, const xml::Document& disk) {
  ASSERT_EQ(disk.NumNodes(), ram.NumNodes());
  ASSERT_EQ(disk.NumElements(), ram.NumElements());
  EXPECT_EQ(disk.MaxDepth(), ram.MaxDepth());
  EXPECT_EQ(disk.tags().size(), ram.tags().size());
  for (xml::NodeId n = 0; n < ram.NumNodes(); ++n) {
    ASSERT_EQ(disk.Kind(n), ram.Kind(n)) << "node " << n;
    ASSERT_EQ(disk.Parent(n), ram.Parent(n)) << "node " << n;
    ASSERT_EQ(disk.FirstChild(n), ram.FirstChild(n)) << "node " << n;
    ASSERT_EQ(disk.NextSibling(n), ram.NextSibling(n)) << "node " << n;
    ASSERT_EQ(disk.SubtreeEnd(n), ram.SubtreeEnd(n)) << "node " << n;
    ASSERT_EQ(disk.Level(n), ram.Level(n)) << "node " << n;
    if (ram.IsElement(n)) {
      ASSERT_EQ(disk.Tag(n), ram.Tag(n)) << "node " << n;
      ASSERT_EQ(disk.TagName(n), ram.TagName(n)) << "node " << n;
      auto da = disk.Attributes(n);
      auto ra = ram.Attributes(n);
      ASSERT_EQ(da.size(), ra.size()) << "node " << n;
      for (size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(da[i].first, ra[i].first) << "node " << n;
        EXPECT_EQ(da[i].second, ra[i].second) << "node " << n;
      }
    } else {
      ASSERT_EQ(disk.Text(n), ram.Text(n)) << "node " << n;
    }
  }
  for (xml::TagId t = 0; t < ram.tags().size(); ++t) {
    auto di = disk.TagIndex(t);
    auto ri = ram.TagIndex(t);
    ASSERT_EQ(di.size(), ri.size()) << "tag " << t;
    for (size_t i = 0; i < ri.size(); ++i) {
      ASSERT_EQ(di[i], ri[i]) << "tag " << t << " entry " << i;
    }
    EXPECT_EQ(disk.TagRecursionDegree(t), ram.TagRecursionDegree(t));
  }
  // Serialization is the end-to-end identity check: byte-identical XML.
  EXPECT_EQ(xml::Serialize(disk), xml::Serialize(ram));
}

TEST(DiskStoreTest, OpensAndServesFacade) {
  auto doc = Parse(
      "<lib genre=\"all\"><book id=\"1\"><t>A</t></book>mixed"
      "<book id=\"2\"><t>B</t><t>C</t></book></lib>");
  std::string path = WriteTemp(*doc, "facade");
  DiskStoreOptions opts;
  opts.full_validation = true;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_NE((*store)->document(), nullptr);
  EXPECT_TRUE((*store)->document()->external());
  ExpectFacadeParity(*doc, *(*store)->document());
  // The on-disk stamp is the ingest-time generation; the adopted facade
  // carries a fresh one (cache identities never collide across opens).
  EXPECT_EQ((*store)->on_disk_generation(), doc->generation());
  EXPECT_NE((*store)->generation(), doc->generation());
  std::remove(path.c_str());
}

class DiskStoreDatasetTest
    : public ::testing::TestWithParam<datagen::Dataset> {};

TEST_P(DiskStoreDatasetTest, FacadeParityOnGeneratedData) {
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(GetParam(), o);
  std::string path =
      WriteTemp(*doc, std::string("ds_") + datagen::DatasetName(GetParam()));
  DiskStoreOptions opts;
  opts.full_validation = true;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectFacadeParity(*doc, *(*store)->document());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DiskStoreDatasetTest,
                         ::testing::ValuesIn(datagen::AllDatasets()),
                         [](const auto& info) {
                           return std::string(
                               datagen::DatasetName(info.param));
                         });

TEST(DiskStoreTest, QueriesAreByteIdenticalToRam) {
  datagen::GenOptions o;
  o.scale = 0.05;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  std::string path = WriteTemp(*doc, "queries");
  auto store = DiskStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const char* queries[] = {
      "//article/author",
      "//phdthesis[year]/title",
      "for $a in //article where exists($a/year) return "
      "<hit>{$a/title}</hit>",
  };
  for (const char* q : queries) {
    engine::BlossomTreeEngine ram_engine(doc.get());
    engine::EngineOptions eo;
    eo.plan.store = store->get();
    engine::BlossomTreeEngine disk_engine((*store)->document(), eo);
    auto ram_r = ram_engine.EvaluateQuery(q);
    auto disk_r = disk_engine.EvaluateQuery(q);
    ASSERT_TRUE(ram_r.ok()) << ram_r.status().ToString();
    ASSERT_TRUE(disk_r.ok()) << disk_r.status().ToString();
    EXPECT_EQ(*disk_r, *ram_r) << q;
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, RecordsMatchPageStoreBitForBit) {
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD1Recursive, o);
  std::string path = WriteTemp(*doc, "records");
  DiskStoreOptions opts;
  opts.block_bytes = 4096;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  PageStore pages(*doc, /*page_bytes=*/4096);
  ASSERT_EQ((*store)->NumNodes(), pages.NumNodes());
  ASSERT_EQ((*store)->NumPages(), pages.NumPages());
  ASSERT_EQ((*store)->NodesPerPage(), pages.NodesPerPage());
  ScanCursor dc;
  ScanCursor pc;
  for (xml::NodeId n = 0; n < pages.NumNodes(); ++n) {
    NodeRecord a = (*store)->Get(n, &dc);
    NodeRecord b = pages.Get(n, &pc);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0) << "node " << n;
  }
  // Identical access pattern at identical granularity: identical reads.
  EXPECT_EQ(dc.reads, pc.reads);
  EXPECT_EQ(dc.reads, (*store)->NumPages());
  // Partitioning decisions go through the same subtree-cut grouping.
  for (size_t k : {1u, 2u, 4u, 7u}) {
    auto dparts = (*store)->Partition(k);
    auto pparts = pages.Partition(k);
    ASSERT_EQ(dparts.size(), pparts.size()) << "k=" << k;
    for (size_t i = 0; i < pparts.size(); ++i) {
      EXPECT_TRUE(dparts[i] == pparts[i]) << "k=" << k << " part " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, PreadModeServesScansWithoutMapping) {
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD2Address, o);
  std::string path = WriteTemp(*doc, "pread");
  DiskStoreOptions opts;
  opts.use_mmap = false;
  opts.block_bytes = 4096;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->document(), nullptr);
  EXPECT_FALSE((*store)->mmap_backed());
  // The scan API still serves exact records, block by block.
  PageStore pages(*doc, 4096);
  ScanCursor dc;
  ScanCursor pc;
  for (xml::NodeId n = 0; n < pages.NumNodes(); ++n) {
    NodeRecord a = (*store)->Get(n, &dc);
    NodeRecord b = pages.Get(n, &pc);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0) << "node " << n;
  }
  // Derived navigation works straight off the record stream.
  ScanCursor nav;
  for (xml::NodeId n = 0; n < doc->NumNodes(); ++n) {
    ASSERT_EQ((*store)->FirstChild(n, &nav), doc->FirstChild(n));
    ASSERT_EQ((*store)->NextSibling(n, &nav), doc->NextSibling(n));
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, BlockCacheRespectsBudget) {
  datagen::GenOptions o;
  o.scale = 0.05;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  std::string path = WriteTemp(*doc, "budget");
  DiskStoreOptions opts;
  opts.use_mmap = false;  // pread mode: cached blocks are real heap bytes.
  opts.block_bytes = 4096;
  // A budget far below the record section: eviction must kick in.
  opts.cache_budget_bytes = 4 * 4096;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_GT((*store)->RecordBytes(), opts.cache_budget_bytes);
  ScanCursor cur;
  for (xml::NodeId n = 0; n < (*store)->NumNodes(); ++n) {
    (*store)->Get(n, &cur);
    util::CacheStats stats = (*store)->BlockCacheStats();
    ASSERT_LE(stats.bytes, (*store)->budget_bytes());
  }
  util::CacheStats stats = (*store)->BlockCacheStats();
  EXPECT_GT(stats.evictions, 0u);
  // One sequential pass over more blocks than fit: every block was read.
  EXPECT_EQ(cur.reads, (*store)->NumPages());
  std::remove(path.c_str());
}

TEST(DiskStoreTest, ProgressesWithBudgetSmallerThanOneBlock) {
  auto doc = Parse("<a><b/><b/><b/><b/></a>");
  std::string path = WriteTemp(*doc, "tiny_budget");
  DiskStoreOptions opts;
  opts.use_mmap = false;
  opts.cache_budget_bytes = 1;  // Nothing can stay resident.
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ScanCursor cur;
  for (xml::NodeId n = 0; n < (*store)->NumNodes(); ++n) {
    NodeRecord r = (*store)->Get(n, &cur);
    EXPECT_EQ(r.subtree_end, doc->SubtreeEnd(n));
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, OpenRejectsMissingAndGarbageFiles) {
  EXPECT_FALSE(DiskStore::Open("/nonexistent/corpus.btsx2").ok());

  std::string path = ::testing::TempDir() + "/bt_disk_garbage.btsx2";
  std::ofstream(path, std::ios::binary) << "this is not a BTSX2 file";
  EXPECT_FALSE(DiskStore::Open(path).ok());
  DiskStoreOptions pread;
  pread.use_mmap = false;
  EXPECT_FALSE(DiskStore::Open(path, pread).ok());
  std::remove(path.c_str());
}

TEST(DiskStoreTest, OpenRejectsTruncatedFile) {
  auto doc = Parse("<a><b>text</b><c x=\"1\"/></a>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  std::string path = ::testing::TempDir() + "/bt_disk_trunc.btsx2";
  // Cut the file short of the last section: Open must fail cleanly.
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << encoded->substr(0, encoded->size() - 8);
  auto r = DiskStore::Open(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(DiskStoreTest, DeepValidationCatchesBitFlips) {
  auto doc = Parse("<a><b>t</b><c k=\"v\"/><b/></a>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok());
  // Flipping any byte must never crash Open: it either fails validation or
  // yields some self-consistent view (flips in text payloads, say).
  std::string path = ::testing::TempDir() + "/bt_disk_flip.btsx2";
  DiskStoreOptions opts;
  opts.full_validation = true;
  for (size_t i = 0; i < encoded->size(); i += 3) {
    std::string corrupt = *encoded;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    std::ofstream(path, std::ios::binary | std::ios::trunc) << corrupt;
    auto r = DiskStore::Open(path, opts);
    if (r.ok()) {
      EXPECT_EQ((*r)->NumNodes(), (*r)->document()->NumNodes());
    }
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, EmptyDocumentRoundTrips) {
  xml::Document doc;
  ASSERT_TRUE(doc.Finish().ok());
  std::string path = WriteTemp(doc, "empty");
  DiskStoreOptions opts;
  opts.full_validation = true;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->NumNodes(), 0u);
  EXPECT_TRUE((*store)->document()->empty());
  std::remove(path.c_str());
}

TEST(DiskStoreTest, ConcurrentScansSeeIdenticalRecords) {
  datagen::GenOptions o;
  o.scale = 0.03;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD4Treebank, o);
  std::string path = WriteTemp(*doc, "concurrent");
  DiskStoreOptions opts;
  opts.use_mmap = false;
  opts.block_bytes = 4096;
  opts.cache_budget_bytes = 8 * 4096;  // Force churn under contention.
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  PageStore pages(*doc, 4096);
  util::ThreadPool pool(4);
  std::vector<int> ok(4, 0);
  std::vector<uint64_t> reads(4, 0);
  pool.ParallelFor(4, [&](size_t t) {
    ScanCursor cur;
    ScanCursor pc;
    bool good = true;
    for (xml::NodeId n = 0; n < (*store)->NumNodes(); ++n) {
      NodeRecord a = (*store)->Get(n, &cur);
      NodeRecord b = pages.Get(n, &pc);
      if (std::memcmp(&a, &b, sizeof a) != 0) good = false;
    }
    ok[t] = good ? 1 : 0;
    reads[t] = cur.reads;
  });
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(ok[t], 1) << "thread " << t;
    // Per-scan read accounting is interleaving-independent: every reader
    // pays exactly one pass regardless of who else is scanning.
    EXPECT_EQ(reads[t], (*store)->NumPages()) << "thread " << t;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace blossomtree
