#include "storage/disk_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "storage/btsx2.h"
#include "storage/page_store.h"
#include "util/thread_pool.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace blossomtree {
namespace storage {
namespace {

std::unique_ptr<xml::Document> Parse(std::string_view s) {
  auto r = xml::ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

/// Writes `doc` as BTSX v2 into TempDir and returns the path.
std::string WriteTemp(const xml::Document& doc, const std::string& tag) {
  std::string path = ::testing::TempDir() + "/bt_disk_" + tag + ".btsx2";
  Status st = WriteBtsx2(doc, path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

/// Exhaustive facade comparison: every accessor the engine reads, at every
/// node, must agree between the in-RAM build and the mapped view.
void ExpectFacadeParity(const xml::Document& ram, const xml::Document& disk) {
  ASSERT_EQ(disk.NumNodes(), ram.NumNodes());
  ASSERT_EQ(disk.NumElements(), ram.NumElements());
  EXPECT_EQ(disk.MaxDepth(), ram.MaxDepth());
  EXPECT_EQ(disk.tags().size(), ram.tags().size());
  for (xml::NodeId n = 0; n < ram.NumNodes(); ++n) {
    ASSERT_EQ(disk.Kind(n), ram.Kind(n)) << "node " << n;
    ASSERT_EQ(disk.Parent(n), ram.Parent(n)) << "node " << n;
    ASSERT_EQ(disk.FirstChild(n), ram.FirstChild(n)) << "node " << n;
    ASSERT_EQ(disk.NextSibling(n), ram.NextSibling(n)) << "node " << n;
    ASSERT_EQ(disk.SubtreeEnd(n), ram.SubtreeEnd(n)) << "node " << n;
    ASSERT_EQ(disk.Level(n), ram.Level(n)) << "node " << n;
    if (ram.IsElement(n)) {
      ASSERT_EQ(disk.Tag(n), ram.Tag(n)) << "node " << n;
      ASSERT_EQ(disk.TagName(n), ram.TagName(n)) << "node " << n;
      auto da = disk.Attributes(n);
      auto ra = ram.Attributes(n);
      ASSERT_EQ(da.size(), ra.size()) << "node " << n;
      for (size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(da[i].first, ra[i].first) << "node " << n;
        EXPECT_EQ(da[i].second, ra[i].second) << "node " << n;
      }
    } else {
      ASSERT_EQ(disk.Text(n), ram.Text(n)) << "node " << n;
    }
  }
  for (xml::TagId t = 0; t < ram.tags().size(); ++t) {
    auto di = disk.TagIndex(t);
    auto ri = ram.TagIndex(t);
    ASSERT_EQ(di.size(), ri.size()) << "tag " << t;
    for (size_t i = 0; i < ri.size(); ++i) {
      ASSERT_EQ(di[i], ri[i]) << "tag " << t << " entry " << i;
    }
    EXPECT_EQ(disk.TagRecursionDegree(t), ram.TagRecursionDegree(t));
  }
  // Serialization is the end-to-end identity check: byte-identical XML.
  EXPECT_EQ(xml::Serialize(disk), xml::Serialize(ram));
}

TEST(DiskStoreTest, OpensAndServesFacade) {
  auto doc = Parse(
      "<lib genre=\"all\"><book id=\"1\"><t>A</t></book>mixed"
      "<book id=\"2\"><t>B</t><t>C</t></book></lib>");
  std::string path = WriteTemp(*doc, "facade");
  DiskStoreOptions opts;
  opts.full_validation = true;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_NE((*store)->document(), nullptr);
  EXPECT_TRUE((*store)->document()->external());
  ExpectFacadeParity(*doc, *(*store)->document());
  // The on-disk stamp is the ingest-time generation; the adopted facade
  // carries a fresh one (cache identities never collide across opens).
  EXPECT_EQ((*store)->on_disk_generation(), doc->generation());
  EXPECT_NE((*store)->generation(), doc->generation());
  std::remove(path.c_str());
}

class DiskStoreDatasetTest
    : public ::testing::TestWithParam<datagen::Dataset> {};

TEST_P(DiskStoreDatasetTest, FacadeParityOnGeneratedData) {
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(GetParam(), o);
  std::string path =
      WriteTemp(*doc, std::string("ds_") + datagen::DatasetName(GetParam()));
  DiskStoreOptions opts;
  opts.full_validation = true;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectFacadeParity(*doc, *(*store)->document());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DiskStoreDatasetTest,
                         ::testing::ValuesIn(datagen::AllDatasets()),
                         [](const auto& info) {
                           return std::string(
                               datagen::DatasetName(info.param));
                         });

TEST(DiskStoreTest, QueriesAreByteIdenticalToRam) {
  datagen::GenOptions o;
  o.scale = 0.05;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  std::string path = WriteTemp(*doc, "queries");
  auto store = DiskStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const char* queries[] = {
      "//article/author",
      "//phdthesis[year]/title",
      "for $a in //article where exists($a/year) return "
      "<hit>{$a/title}</hit>",
  };
  for (const char* q : queries) {
    engine::BlossomTreeEngine ram_engine(doc.get());
    engine::EngineOptions eo;
    eo.plan.store = store->get();
    engine::BlossomTreeEngine disk_engine((*store)->document(), eo);
    auto ram_r = ram_engine.EvaluateQuery(q);
    auto disk_r = disk_engine.EvaluateQuery(q);
    ASSERT_TRUE(ram_r.ok()) << ram_r.status().ToString();
    ASSERT_TRUE(disk_r.ok()) << disk_r.status().ToString();
    EXPECT_EQ(*disk_r, *ram_r) << q;
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, RecordsMatchPageStoreBitForBit) {
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD1Recursive, o);
  std::string path = WriteTemp(*doc, "records");
  DiskStoreOptions opts;
  opts.block_bytes = 4096;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  PageStore pages(*doc, /*page_bytes=*/4096);
  ASSERT_EQ((*store)->NumNodes(), pages.NumNodes());
  ASSERT_EQ((*store)->NumPages(), pages.NumPages());
  ASSERT_EQ((*store)->NodesPerPage(), pages.NodesPerPage());
  ScanCursor dc;
  ScanCursor pc;
  for (xml::NodeId n = 0; n < pages.NumNodes(); ++n) {
    NodeRecord a = (*store)->Get(n, &dc);
    NodeRecord b = pages.Get(n, &pc);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0) << "node " << n;
  }
  // Identical access pattern at identical granularity: identical reads.
  EXPECT_EQ(dc.reads, pc.reads);
  EXPECT_EQ(dc.reads, (*store)->NumPages());
  // Partitioning decisions go through the same subtree-cut grouping.
  for (size_t k : {1u, 2u, 4u, 7u}) {
    auto dparts = (*store)->Partition(k);
    auto pparts = pages.Partition(k);
    ASSERT_EQ(dparts.size(), pparts.size()) << "k=" << k;
    for (size_t i = 0; i < pparts.size(); ++i) {
      EXPECT_TRUE(dparts[i] == pparts[i]) << "k=" << k << " part " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, PreadModeServesScansWithoutMapping) {
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD2Address, o);
  std::string path = WriteTemp(*doc, "pread");
  DiskStoreOptions opts;
  opts.use_mmap = false;
  opts.block_bytes = 4096;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->document(), nullptr);
  EXPECT_FALSE((*store)->mmap_backed());
  // The scan API still serves exact records, block by block.
  PageStore pages(*doc, 4096);
  ScanCursor dc;
  ScanCursor pc;
  for (xml::NodeId n = 0; n < pages.NumNodes(); ++n) {
    NodeRecord a = (*store)->Get(n, &dc);
    NodeRecord b = pages.Get(n, &pc);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof a), 0) << "node " << n;
  }
  // Derived navigation works straight off the record stream.
  ScanCursor nav;
  for (xml::NodeId n = 0; n < doc->NumNodes(); ++n) {
    ASSERT_EQ((*store)->FirstChild(n, &nav), doc->FirstChild(n));
    ASSERT_EQ((*store)->NextSibling(n, &nav), doc->NextSibling(n));
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, BlockCacheRespectsBudget) {
  datagen::GenOptions o;
  o.scale = 0.05;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  std::string path = WriteTemp(*doc, "budget");
  DiskStoreOptions opts;
  opts.use_mmap = false;  // pread mode: cached blocks are real heap bytes.
  opts.block_bytes = 4096;
  // A budget far below the record section: eviction must kick in.
  opts.cache_budget_bytes = 4 * 4096;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_GT((*store)->RecordBytes(), opts.cache_budget_bytes);
  ScanCursor cur;
  for (xml::NodeId n = 0; n < (*store)->NumNodes(); ++n) {
    (*store)->Get(n, &cur);
    util::CacheStats stats = (*store)->BlockCacheStats();
    ASSERT_LE(stats.bytes, (*store)->budget_bytes());
  }
  util::CacheStats stats = (*store)->BlockCacheStats();
  EXPECT_GT(stats.evictions, 0u);
  // One sequential pass over more blocks than fit: every block was read.
  EXPECT_EQ(cur.reads, (*store)->NumPages());
  std::remove(path.c_str());
}

TEST(DiskStoreTest, ProgressesWithBudgetSmallerThanOneBlock) {
  auto doc = Parse("<a><b/><b/><b/><b/></a>");
  std::string path = WriteTemp(*doc, "tiny_budget");
  DiskStoreOptions opts;
  opts.use_mmap = false;
  opts.cache_budget_bytes = 1;  // Nothing can stay resident.
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ScanCursor cur;
  for (xml::NodeId n = 0; n < (*store)->NumNodes(); ++n) {
    NodeRecord r = (*store)->Get(n, &cur);
    EXPECT_EQ(r.subtree_end, doc->SubtreeEnd(n));
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, OpenRejectsMissingAndGarbageFiles) {
  EXPECT_FALSE(DiskStore::Open("/nonexistent/corpus.btsx2").ok());

  std::string path = ::testing::TempDir() + "/bt_disk_garbage.btsx2";
  std::ofstream(path, std::ios::binary) << "this is not a BTSX2 file";
  EXPECT_FALSE(DiskStore::Open(path).ok());
  DiskStoreOptions pread;
  pread.use_mmap = false;
  EXPECT_FALSE(DiskStore::Open(path, pread).ok());
  std::remove(path.c_str());
}

TEST(DiskStoreTest, OpenRejectsTruncatedFile) {
  auto doc = Parse("<a><b>text</b><c x=\"1\"/></a>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  std::string path = ::testing::TempDir() + "/bt_disk_trunc.btsx2";
  // Cut the file short of the last section: Open must fail cleanly.
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << encoded->substr(0, encoded->size() - 8);
  auto r = DiskStore::Open(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(DiskStoreTest, DeepValidationCatchesBitFlips) {
  auto doc = Parse("<a><b>t</b><c k=\"v\"/><b/></a>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok());
  // Flipping any byte must never crash Open: it either fails validation or
  // yields some self-consistent view (flips in text payloads, say).
  std::string path = ::testing::TempDir() + "/bt_disk_flip.btsx2";
  DiskStoreOptions opts;
  opts.full_validation = true;
  for (size_t i = 0; i < encoded->size(); i += 3) {
    std::string corrupt = *encoded;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    std::ofstream(path, std::ios::binary | std::ios::trunc) << corrupt;
    auto r = DiskStore::Open(path, opts);
    if (r.ok()) {
      EXPECT_EQ((*r)->NumNodes(), (*r)->document()->NumNodes());
    }
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, EmptyDocumentRoundTrips) {
  xml::Document doc;
  ASSERT_TRUE(doc.Finish().ok());
  std::string path = WriteTemp(doc, "empty");
  DiskStoreOptions opts;
  opts.full_validation = true;
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->NumNodes(), 0u);
  EXPECT_TRUE((*store)->document()->empty());
  std::remove(path.c_str());
}

/// Drains [begin, end] through NextBlock spans, asserting every span stays
/// inside the range and inside one block, and that every record matches the
/// in-RAM document. Returns the cursor's block reads.
uint64_t DrainRangeBatched(const NodeStore& store, const xml::Document& doc,
                           xml::NodeId begin, xml::NodeId end) {
  ScanCursor cur;
  size_t npp = store.NodesPerPage();
  xml::NodeId n = begin;
  while (n <= end) {
    std::span<const NodeRecord> block = store.NextBlock(n, end, &cur);
    EXPECT_GE(block.size(), 1u);
    EXPECT_LE(n + block.size() - 1, end);
    // A span never crosses its block boundary.
    EXPECT_EQ(n / npp, (n + block.size() - 1) / npp);
    for (size_t i = 0; i < block.size(); ++i) {
      xml::NodeId id = n + static_cast<xml::NodeId>(i);
      EXPECT_EQ(block[i].subtree_end, doc.SubtreeEnd(id)) << "node " << id;
      EXPECT_EQ(block[i].level, doc.Level(id)) << "node " << id;
    }
    n += static_cast<xml::NodeId>(block.size());
  }
  return cur.reads;
}

TEST(DiskStoreTest, NextBlockBoundarySweepPreadVsMmap) {
  // Satellite (b): ranges ending one record before / on / one record after
  // every block boundary — including a final partial block — must serve
  // exact records with exactly ceil(range / nodes_per_block) block reads,
  // identically in pread mode, mmap mode, and the in-RAM PageStore. The
  // final short block in particular must be entered (and counted) once.
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD2Address, o);
  std::string path = WriteTemp(*doc, "boundary");
  DiskStoreOptions mopts;
  mopts.block_bytes = 4096;
  auto mstore = DiskStore::Open(path, mopts);
  ASSERT_TRUE(mstore.ok()) << mstore.status().ToString();
  DiskStoreOptions popts;
  popts.use_mmap = false;
  popts.block_bytes = 4096;
  auto pstore = DiskStore::Open(path, popts);
  ASSERT_TRUE(pstore.ok()) << pstore.status().ToString();
  PageStore pages(*doc, 4096);

  const xml::NodeId total = static_cast<xml::NodeId>(doc->NumNodes());
  const size_t npp = pages.NodesPerPage();
  ASSERT_EQ((*mstore)->NodesPerPage(), npp);
  ASSERT_EQ((*pstore)->NodesPerPage(), npp);
  // More than one block, and a final block that is genuinely short.
  ASSERT_GT((*mstore)->NumPages(), 2u);
  ASSERT_NE(total % npp, 0u);

  std::vector<xml::NodeId> edges;
  for (xml::NodeId b = static_cast<xml::NodeId>(npp); b < total;
       b += static_cast<xml::NodeId>(npp)) {
    edges.push_back(b - 1);  // Last record of a block.
    edges.push_back(b);      // First record of the next.
    if (b + 1 < total) edges.push_back(b + 1);
  }
  edges.push_back(total - 1);  // End of the final short block.
  for (xml::NodeId end : edges) {
    uint64_t expected_reads = end / npp + 1;  // Blocks 0..end/npp, once each.
    EXPECT_EQ(DrainRangeBatched(**mstore, *doc, 0, end), expected_reads)
        << "mmap end=" << end;
    EXPECT_EQ(DrainRangeBatched(**pstore, *doc, 0, end), expected_reads)
        << "pread end=" << end;
    EXPECT_EQ(DrainRangeBatched(pages, *doc, 0, end), expected_reads)
        << "pages end=" << end;
    // Mid-range starts around the same edge: begin inside a block.
    xml::NodeId begin = end / 2;
    uint64_t mid_reads = end / npp - begin / npp + 1;
    EXPECT_EQ(DrainRangeBatched(**mstore, *doc, begin, end), mid_reads);
    EXPECT_EQ(DrainRangeBatched(**pstore, *doc, begin, end), mid_reads);
    EXPECT_EQ(DrainRangeBatched(pages, *doc, begin, end), mid_reads);
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, PartitionBoundariesInsideFinalBlockScanExactly) {
  // Partition ranges cut wherever subtree boundaries fall — including
  // inside the final short block. Scanning each range batched must count
  // the same block reads as a Get-per-node scan of the same range, and
  // partitioning itself must count nothing (a planning walk, not scan I/O).
  datagen::GenOptions o;
  o.scale = 0.02;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD3Catalog, o);
  std::string path = WriteTemp(*doc, "partition_blocks");
  for (bool use_mmap : {true, false}) {
    DiskStoreOptions opts;
    opts.use_mmap = use_mmap;
    opts.block_bytes = 4096;
    auto store = DiskStore::Open(path, opts);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    (*store)->ResetCounters();
    auto parts = (*store)->Partition(4);
    EXPECT_EQ((*store)->PageReads(), 0u) << "use_mmap=" << use_mmap;
    ASSERT_FALSE(parts.empty());
    for (const NodeRange& r : parts) {
      uint64_t batched = DrainRangeBatched(**store, *doc, r.begin, r.end);
      ScanCursor one;
      for (xml::NodeId n = r.begin; n <= r.end; ++n) (*store)->Get(n, &one);
      EXPECT_EQ(batched, one.reads)
          << "use_mmap=" << use_mmap << " range [" << r.begin << ", "
          << r.end << "]";
    }
  }
  std::remove(path.c_str());
}

TEST(DiskStoreTest, MapRejectsMisalignedImage) {
  // Satellite (c): the BTSX2 mapper serves typed section views, so it must
  // refuse an image whose base is not 16-byte aligned instead of handing
  // out misaligned PackedNodeRecord pointers (UB under UBSan).
  auto doc = Parse("<a><b>text</b><c x=\"1\"/></a>");
  auto encoded = EncodeBtsx2(*doc);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  auto raw = std::make_unique<char[]>(encoded->size() + 16);
  char* aligned = raw.get();
  aligned += 16 - reinterpret_cast<uintptr_t>(aligned) % 16;
  ASSERT_EQ(reinterpret_cast<uintptr_t>(aligned) % 16, 0u);
  std::memcpy(aligned, encoded->data(), encoded->size());
  EXPECT_TRUE(MapBtsx2(std::string_view(aligned, encoded->size())).ok());
  // The same bytes one past alignment must be rejected up front.
  char* misaligned = aligned + 1;
  std::memmove(misaligned, aligned, encoded->size());
  auto r = MapBtsx2(std::string_view(misaligned, encoded->size()));
  EXPECT_FALSE(r.ok());
}

TEST(DiskStoreTest, ConcurrentScansSeeIdenticalRecords) {
  datagen::GenOptions o;
  o.scale = 0.03;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD4Treebank, o);
  std::string path = WriteTemp(*doc, "concurrent");
  DiskStoreOptions opts;
  opts.use_mmap = false;
  opts.block_bytes = 4096;
  opts.cache_budget_bytes = 8 * 4096;  // Force churn under contention.
  auto store = DiskStore::Open(path, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  PageStore pages(*doc, 4096);
  util::ThreadPool pool(4);
  std::vector<int> ok(4, 0);
  std::vector<uint64_t> reads(4, 0);
  pool.ParallelFor(4, [&](size_t t) {
    ScanCursor cur;
    ScanCursor pc;
    bool good = true;
    for (xml::NodeId n = 0; n < (*store)->NumNodes(); ++n) {
      NodeRecord a = (*store)->Get(n, &cur);
      NodeRecord b = pages.Get(n, &pc);
      if (std::memcmp(&a, &b, sizeof a) != 0) good = false;
    }
    ok[t] = good ? 1 : 0;
    reads[t] = cur.reads;
  });
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(ok[t], 1) << "thread " << t;
    // Per-scan read accounting is interleaving-independent: every reader
    // pays exactly one pass regardless of who else is scanning.
    EXPECT_EQ(reads[t], (*store)->NumPages()) << "thread " << t;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace blossomtree
