#include <gtest/gtest.h>

#include "baseline/navigational.h"
#include "datagen/datagen.h"
#include "exec/twig_semijoin.h"
#include "exec/twigstack.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "workload/queries.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace {

/// Cross-engine consistency: the central correctness property of the
/// reproduction. For every dataset × Appendix-A query, every evaluation
/// strategy must return exactly the same node set:
///   - navigational baseline (XH stand-in),
///   - BlossomTree plan with pipelined joins (non-recursive data only),
///   - BlossomTree plan with bounded nested-loop joins,
///   - BlossomTree plan with the merged single-scan optimization,
///   - TwigStack.
struct Case {
  datagen::Dataset dataset;
  workload::QuerySpec query;
};

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (datagen::Dataset d : datagen::AllDatasets()) {
    for (const workload::QuerySpec& q : workload::QueriesFor(d)) {
      cases.push_back({d, q});
    }
  }
  return cases;
}

class ConsistencyTest : public ::testing::TestWithParam<Case> {
 protected:
  static std::unique_ptr<xml::Document> MakeDoc(datagen::Dataset d) {
    datagen::GenOptions o;
    o.scale = 0.02;
    o.seed = 7;
    return datagen::GenerateDataset(d, o);
  }
};

TEST_P(ConsistencyTest, AllStrategiesAgree) {
  const Case& c = GetParam();
  auto doc = MakeDoc(c.dataset);
  auto path = xpath::ParsePath(c.query.xpath);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  auto tree = pattern::BuildFromPath(*path);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  // Reference: navigational.
  baseline::NavigationalEvaluator nav(doc.get());
  auto expected = nav.EvaluatePath(*path);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // BNLJ plan: always applicable.
  {
    opt::PlanOptions o;
    o.strategy = opt::JoinStrategy::kBoundedNestedLoop;
    auto got = opt::EvaluatePathQuery(doc.get(), &*tree, o);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "BNLJ mismatch on " << c.query.xpath;
  }
  // Pipelined plan: only on non-recursive documents (Theorem 2).
  if (!doc->IsRecursive()) {
    opt::PlanOptions o;
    o.strategy = opt::JoinStrategy::kPipelined;
    auto got = opt::EvaluatePathQuery(doc.get(), &*tree, o);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "PL mismatch on " << c.query.xpath;

    o.merge_nok_scans = true;
    auto merged = opt::EvaluatePathQuery(doc.get(), &*tree, o);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(*merged, *expected)
        << "merged-scan mismatch on " << c.query.xpath;
  }
  // Auto plan.
  {
    auto got = opt::EvaluatePathQuery(doc.get(), &*tree);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, *expected) << "auto mismatch on " << c.query.xpath;
  }
  // TwigStack (skip queries outside its class).
  {
    exec::TwigStack ts(doc.get(), &*tree);
    std::vector<xml::NodeId> got;
    Status st = ts.Run(tree->VertexOfVariable("result"), &got);
    if (st.ok()) {
      EXPECT_EQ(got, *expected) << "TwigStack mismatch on " << c.query.xpath;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kUnsupported) << st.ToString();
    }
  }
  // Join-based semijoin evaluation.
  {
    exec::TwigSemijoin sj(doc.get(), &*tree);
    std::vector<xml::NodeId> got;
    Status st = sj.Run(tree->VertexOfVariable("result"), &got);
    if (st.ok()) {
      EXPECT_EQ(got, *expected) << "semijoin mismatch on " << c.query.xpath;
    } else {
      EXPECT_EQ(st.code(), StatusCode::kUnsupported) << st.ToString();
    }
  }
}

TEST_P(ConsistencyTest, QueriesHaveResultsAtBenchScale) {
  // Guard against degenerate workloads: at a moderate scale each query
  // should return something on its dataset (selectivity tiers are relative,
  // but zero-result benches would be meaningless).
  const Case& c = GetParam();
  datagen::GenOptions o;
  o.scale = 0.05;
  o.seed = 7;
  auto doc = datagen::GenerateDataset(c.dataset, o);
  baseline::NavigationalEvaluator nav(doc.get());
  auto path = xpath::ParsePath(c.query.xpath);
  ASSERT_TRUE(path.ok());
  auto r = nav.EvaluatePath(*path);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->empty()) << c.query.xpath << " on "
                           << datagen::DatasetName(c.dataset);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasetsAllQueries, ConsistencyTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(datagen::DatasetName(info.param.dataset)) + "_" +
             info.param.query.id;
    });

}  // namespace
}  // namespace blossomtree
