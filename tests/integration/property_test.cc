// Property-based testing: random documents × random path queries, with the
// navigational evaluator as the oracle. Every strategy (BNLJ always;
// pipelined + merged scan on non-recursive documents; TwigStack when the
// query is in its class) must return the oracle's node set.

#include <gtest/gtest.h>

#include "baseline/navigational.h"
#include "engine/engine.h"
#include "exec/twig_semijoin.h"
#include "exec/twigstack.h"
#include "opt/planner.h"
#include "pattern/builder.h"
#include "storage/succinct.h"
#include "util/rng.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace {

/// Random tree generator: small tag alphabet to force recursion and dense
/// matches; some nodes carry text for value predicates.
std::unique_ptr<xml::Document> RandomDoc(Rng* rng, size_t target_nodes) {
  static const char* kTags[] = {"a", "b", "c", "d", "e"};
  auto doc = std::make_unique<xml::Document>();
  size_t budget = target_nodes;
  std::function<void(uint32_t)> emit = [&](uint32_t depth) {
    if (budget == 0) return;
    --budget;
    doc->BeginElement(kTags[rng->Uniform(5)]);
    if (rng->Chance(0.2)) {
      doc->AddText(std::to_string(rng->Uniform(4)));
    }
    if (depth < 12) {
      size_t fanout = rng->Uniform(4);  // 0..3 children.
      for (size_t i = 0; i < fanout && budget > 0; ++i) emit(depth + 1);
    }
    doc->EndElement();
  };
  doc->BeginElement("r");
  while (budget > 0) emit(1);
  doc->EndElement();
  EXPECT_TRUE(doc->Finish().ok());
  return doc;
}

/// Random path query over the same alphabet: 1-4 steps, mixed axes,
/// occasional predicates (existence, value, position).
std::string RandomQuery(Rng* rng) {
  static const char* kTags[] = {"a", "b", "c", "d", "e", "r", "*"};
  std::string q;
  size_t steps = 1 + rng->Uniform(4);
  for (size_t i = 0; i < steps; ++i) {
    q += (i == 0 || rng->Chance(0.6)) ? "//" : "/";
    q += kTags[rng->Uniform(7)];
    if (rng->Chance(0.3)) {
      double r = rng->NextDouble();
      if (r < 0.5) {
        q += std::string("[") + (rng->Chance(0.5) ? "//" : "") +
             kTags[rng->Uniform(6)] + "]";
      } else if (r < 0.8) {
        q += std::string("[. = ") + std::to_string(rng->Uniform(4)) + "]";
      } else {
        q += std::string("[") + std::to_string(1 + rng->Uniform(3)) + "]";
      }
    }
  }
  return q;
}

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, RandomQueriesAgreeWithOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  auto doc = RandomDoc(&rng, 120 + rng.Uniform(150));
  for (int qi = 0; qi < 12; ++qi) {
    std::string query = RandomQuery(&rng);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " query=" + query +
                 " doc=" + xml::Serialize(*doc).substr(0, 400));
    auto path = xpath::ParsePath(query);
    ASSERT_TRUE(path.ok()) << path.status().ToString();
    auto tree = pattern::BuildFromPath(*path);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();

    baseline::NavigationalEvaluator nav(doc.get());
    auto oracle = nav.EvaluatePath(*path);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    {
      opt::PlanOptions o;
      o.strategy = opt::JoinStrategy::kBoundedNestedLoop;
      auto got = opt::EvaluatePathQuery(doc.get(), &*tree, o);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, *oracle) << "BNLJ";
    }
    {
      auto got = opt::EvaluatePathQuery(doc.get(), &*tree);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, *oracle) << "auto";
    }
    if (!doc->IsRecursive()) {
      opt::PlanOptions o;
      o.strategy = opt::JoinStrategy::kPipelined;
      o.merge_nok_scans = true;
      auto got = opt::EvaluatePathQuery(doc.get(), &*tree, o);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, *oracle) << "PL+merged";
    }
    {
      exec::TwigStack ts(doc.get(), &*tree);
      std::vector<xml::NodeId> got;
      Status st = ts.Run(tree->VertexOfVariable("result"), &got);
      if (st.ok()) {
        EXPECT_EQ(got, *oracle) << "TwigStack";
      } else {
        EXPECT_EQ(st.code(), StatusCode::kUnsupported);
      }
    }
    {
      exec::TwigSemijoin sj(doc.get(), &*tree);
      std::vector<xml::NodeId> got;
      Status st = sj.Run(tree->VertexOfVariable("result"), &got);
      if (st.ok()) {
        EXPECT_EQ(got, *oracle) << "TwigSemijoin";
      } else {
        EXPECT_EQ(st.code(), StatusCode::kUnsupported);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(0, 20));

/// Random FLWOR queries: for/let bindings over random paths with simple
/// where-clauses — BlossomTree engine vs the navigational baseline.
class FlworPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlworPropertyTest, RandomFlworsAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  auto doc = RandomDoc(&rng, 60 + rng.Uniform(60));
  static const char* kTags[] = {"a", "b", "c", "d", "e"};
  for (int qi = 0; qi < 6; ++qi) {
    std::string t1 = kTags[rng.Uniform(5)];
    std::string t2 = kTags[rng.Uniform(5)];
    std::string t3 = kTags[rng.Uniform(5)];
    std::string query;
    double shape = rng.NextDouble();
    if (shape < 0.35) {
      query = "for $x in //" + t1 + " let $y := $x/" + t2 +
              " return <o>{ $y }</o>";
    } else if (shape < 0.7) {
      query = "for $x in //" + t1 + " for $y in $x//" + t2 +
              " return <o>{ $y }</o>";
    } else {
      query = "for $x in //" + t1 + ", $y in //" + t2 +
              " where $x << $y and deep-equal($x/" + t3 + ", $y/" + t3 +
              ") return <p/>";
    }
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " query=" + query);
    engine::BlossomTreeEngine engine(doc.get());
    baseline::NavigationalEvaluator nav(doc.get());
    auto r1 = engine.EvaluateQuery(query);
    auto r2 = nav.EvaluateQuery(query);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_EQ(*r1, *r2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlworPropertyTest, ::testing::Range(0, 12));

/// Fuzz-lite robustness: byte-mutated XML never crashes the parser, and
/// whatever still parses serializes to a re-parsable document; the succinct
/// codec round-trips every random document.
class RobustnessTest : public ::testing::TestWithParam<int> {};

TEST_P(RobustnessTest, MutatedXmlNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  auto doc = RandomDoc(&rng, 60);
  std::string text = xml::Serialize(*doc);
  for (int i = 0; i < 60; ++i) {
    std::string mutated = text;
    size_t pos = rng.Uniform(mutated.size());
    double r = rng.NextDouble();
    if (r < 0.4) {
      mutated[pos] = static_cast<char>(rng.Uniform(256));
    } else if (r < 0.7) {
      mutated.erase(pos, 1 + rng.Uniform(4));
    } else {
      mutated.insert(pos, std::string(1 + rng.Uniform(3),
                                      static_cast<char>(rng.Uniform(128))));
    }
    auto parsed = xml::ParseDocument(mutated);
    if (parsed.ok()) {
      std::string again = xml::Serialize(**parsed);
      auto reparsed = xml::ParseDocument(again);
      EXPECT_TRUE(reparsed.ok())
          << "serialize produced unparsable output: " << again;
    }
  }
}

TEST_P(RobustnessTest, SuccinctRoundTripOnRandomDocs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 65537 + 11);
  auto doc = RandomDoc(&rng, 50 + rng.Uniform(200));
  std::string encoded = storage::EncodeSuccinct(*doc);
  auto decoded = storage::DecodeSuccinct(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(xml::Serialize(**decoded), xml::Serialize(*doc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace blossomtree
