#include "workload/queries.h"

#include <gtest/gtest.h>

#include <set>

#include "pattern/builder.h"
#include "pattern/decompose.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace workload {
namespace {

TEST(WorkloadTest, SixQueriesPerDataset) {
  for (datagen::Dataset d : datagen::AllDatasets()) {
    auto qs = QueriesFor(d);
    ASSERT_EQ(qs.size(), 6u) << datagen::DatasetName(d);
    std::set<std::string> ids;
    std::set<std::string> cats;
    for (const QuerySpec& q : qs) {
      ids.insert(q.id);
      cats.insert(q.category);
    }
    EXPECT_EQ(ids.size(), 6u);
    // The 3x2 category grid of Table 2.
    EXPECT_EQ(cats, std::set<std::string>({"hc", "hb", "mc", "mb", "lc",
                                           "lb"}));
  }
}

TEST(WorkloadTest, CategoriesMatchTopology) {
  // Chain categories (xc) must have no branching (every BlossomTree vertex
  // has at most one child); branching categories (xb) must branch.
  for (datagen::Dataset d : datagen::AllDatasets()) {
    for (const QuerySpec& q : QueriesFor(d)) {
      auto p = xpath::ParsePath(q.xpath);
      ASSERT_TRUE(p.ok()) << q.xpath;
      auto t = pattern::BuildFromPath(*p);
      ASSERT_TRUE(t.ok()) << q.xpath;
      bool branches = false;
      for (pattern::VertexId v = 0; v < t->NumVertices(); ++v) {
        if (t->vertex(v).children.size() > 1) branches = true;
      }
      if (q.category[1] == 'b') {
        EXPECT_TRUE(branches) << q.xpath;
      } else {
        EXPECT_FALSE(branches) << q.xpath;
      }
    }
  }
}

TEST(WorkloadTest, AllQueriesParseAndDecompose) {
  for (datagen::Dataset d : datagen::AllDatasets()) {
    for (const QuerySpec& q : QueriesFor(d)) {
      auto p = xpath::ParsePath(q.xpath);
      ASSERT_TRUE(p.ok()) << q.xpath << ": " << p.status().ToString();
      auto t = pattern::BuildFromPath(*p);
      ASSERT_TRUE(t.ok()) << q.xpath;
      // Every workload query has at least two NoK subtrees (the paper's
      // topology requirement in §5.1).
      auto decomp = pattern::Decompose(*t);
      size_t nontrivial = 0;
      for (const auto& nok : decomp.noks) {
        if (!(nok.vertices.size() == 1 &&
              t->vertex(nok.root).IsVirtualRoot())) {
          ++nontrivial;
        }
      }
      EXPECT_GE(nontrivial, 2u) << q.xpath;
    }
  }
}

}  // namespace
}  // namespace workload
}  // namespace blossomtree
