// Engine-level determinism of intra-query parallelism: for every dataset
// and every workload query, the engine must produce byte-identical results
// at num_threads in {1, 2, 4, 8}. num_threads == 1 is the exact serial code
// path, so this pins the parallel subsystem against the serial semantics.

#include <gtest/gtest.h>

#include <string>

#include "datagen/datagen.h"
#include "engine/engine.h"
#include "workload/queries.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace {

TEST(ParallelDeterminismTest, WorkloadPathsIdenticalAcrossThreadCounts) {
  for (datagen::Dataset ds : datagen::AllDatasets()) {
    datagen::GenOptions o;
    o.scale = 0.02;
    o.seed = 7;
    auto doc = datagen::GenerateDataset(ds, o);
    for (const workload::QuerySpec& q : workload::QueriesFor(ds)) {
      auto path = xpath::ParsePath(q.xpath);
      ASSERT_TRUE(path.ok()) << q.xpath;

      engine::EngineOptions serial;
      serial.num_threads = 1;
      engine::BlossomTreeEngine ref(doc.get(), serial);
      auto expected = ref.EvaluatePath(*path);
      ASSERT_TRUE(expected.ok()) << q.xpath;
      EXPECT_EQ(ref.EffectiveThreads(), 1u);

      for (unsigned t : {2u, 4u, 8u}) {
        engine::EngineOptions opts;
        opts.num_threads = t;
        engine::BlossomTreeEngine eng(doc.get(), opts);
        EXPECT_EQ(eng.EffectiveThreads(), t);
        auto got = eng.EvaluatePath(*path);
        ASSERT_TRUE(got.ok()) << q.xpath << " threads=" << t;
        EXPECT_EQ(*got, *expected)
            << datagen::DatasetName(ds) << " " << q.id << " threads=" << t;
      }
    }
  }
}

TEST(ParallelDeterminismTest, FlworQueriesIdenticalAcrossThreadCounts) {
  datagen::GenOptions o;
  o.scale = 0.02;
  o.seed = 7;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD5Dblp, o);
  const char* queries[] = {
      "for $a in //article return $a/title",
      "for $a in //article where exists($a/year) return <hit>{$a/title}</hit>",
  };
  for (const char* q : queries) {
    engine::EngineOptions serial;
    serial.num_threads = 1;
    engine::BlossomTreeEngine ref(doc.get(), serial);
    auto expected = ref.EvaluateQuery(q);
    ASSERT_TRUE(expected.ok()) << q << ": " << expected.status().ToString();
    for (unsigned t : {2u, 4u, 8u}) {
      engine::EngineOptions opts;
      opts.num_threads = t;
      engine::BlossomTreeEngine eng(doc.get(), opts);
      auto got = eng.EvaluateQuery(q);
      ASSERT_TRUE(got.ok()) << q << " threads=" << t;
      EXPECT_EQ(*got, *expected) << q << " threads=" << t;
    }
  }
}

TEST(ParallelDeterminismTest, DefaultThreadsResolvesHardwareConcurrency) {
  datagen::GenOptions o;
  o.scale = 0.01;
  auto doc = datagen::GenerateDataset(datagen::Dataset::kD3Catalog, o);
  engine::BlossomTreeEngine eng(doc.get());  // num_threads = 0 (auto).
  EXPECT_GE(eng.EffectiveThreads(), 1u);
}

}  // namespace
}  // namespace blossomtree
