#include "xml/parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace blossomtree {
namespace xml {
namespace {

TEST(ParserTest, MinimalDocument) {
  auto r = ParseDocument("<a/>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->NumNodes(), 1u);
  EXPECT_EQ((*r)->TagName(0), "a");
}

TEST(ParserTest, NestedElementsAndText) {
  auto r = ParseDocument("<a><b>x</b><c>y</c></a>");
  ASSERT_TRUE(r.ok());
  auto& doc = **r;
  EXPECT_EQ(doc.NumNodes(), 5u);
  EXPECT_EQ(doc.StringValue(0), "xy");
}

TEST(ParserTest, SkipsWhitespaceTextByDefault) {
  auto r = ParseDocument("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->NumNodes(), 3u);
}

TEST(ParserTest, KeepsWhitespaceWhenAsked) {
  ParseOptions opts;
  opts.skip_whitespace_text = false;
  auto r = ParseDocument("<a> <b/> </a>", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->NumNodes(), 4u);
}

TEST(ParserTest, EntityDecoding) {
  auto r = ParseDocument("<a>&lt;x&gt; &amp; &quot;q&quot; &apos;s&apos;</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->StringValue(0), "<x> & \"q\" 's'");
}

TEST(ParserTest, NumericCharacterReferences) {
  auto r = ParseDocument("<a>&#65;&#x42;&#x4E2D;</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->StringValue(0), "AB\xE4\xB8\xAD");
}

TEST(ParserTest, AttributesWithEntities) {
  auto r = ParseDocument(R"(<a t="x &amp; y"/>)");
  ASSERT_TRUE(r.ok());
  std::string_view v;
  ASSERT_TRUE((*r)->AttributeValue(0, "t", &v));
  EXPECT_EQ(v, "x & y");
}

TEST(ParserTest, SingleQuotedAttributes) {
  auto r = ParseDocument("<a t='v'/>");
  ASSERT_TRUE(r.ok());
  std::string_view v;
  ASSERT_TRUE((*r)->AttributeValue(0, "t", &v));
  EXPECT_EQ(v, "v");
}

TEST(ParserTest, CommentsAndPIsSkipped) {
  auto r = ParseDocument(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- in --><b/><?pi data?></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->NumNodes(), 2u);
}

TEST(ParserTest, CdataSection) {
  auto r = ParseDocument("<a><![CDATA[<not> & markup]]></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->StringValue(0), "<not> & markup");
}

TEST(ParserTest, DoctypeSkipped) {
  auto r = ParseDocument(
      "<!DOCTYPE a [ <!ELEMENT a (b*)> ]><a><b/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->NumNodes(), 2u);
}

TEST(ParserTest, CommentSplitsTextNodes) {
  auto r = ParseDocument("<a>x<!-- c -->y</a>");
  ASSERT_TRUE(r.ok());
  // Two separate text nodes.
  EXPECT_EQ((*r)->NumNodes(), 3u);
  EXPECT_EQ((*r)->StringValue(0), "xy");
}

// -- Error cases --------------------------------------------------------------

TEST(ParserTest, ErrorMismatchedTags) {
  auto r = ParseDocument("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("mismatched"), std::string::npos);
}

TEST(ParserTest, ErrorUnclosedElement) {
  auto r = ParseDocument("<a><b>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unclosed"), std::string::npos);
}

TEST(ParserTest, ErrorMultipleRoots) {
  auto r = ParseDocument("<a/><b/>");
  ASSERT_FALSE(r.ok());
}

TEST(ParserTest, ErrorNoRoot) {
  auto r = ParseDocument("   ");
  ASSERT_FALSE(r.ok());
}

TEST(ParserTest, ErrorTextOutsideRoot) {
  auto r = ParseDocument("hello<a/>");
  ASSERT_FALSE(r.ok());
}

TEST(ParserTest, ErrorBadEntity) {
  auto r = ParseDocument("<a>&nope;</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("entity"), std::string::npos);
}

TEST(ParserTest, ErrorUnterminatedComment) {
  auto r = ParseDocument("<a><!-- oops</a>");
  ASSERT_FALSE(r.ok());
}

TEST(ParserTest, ErrorAngleInAttribute) {
  auto r = ParseDocument("<a t\"<\"/>");
  ASSERT_FALSE(r.ok());
}

TEST(ParserTest, ErrorReportsLineNumbers) {
  auto r = ParseDocument("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(ParserTest, SelfClosingWithSpace) {
  auto r = ParseDocument("<a><b /></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->NumNodes(), 2u);
}

TEST(ParserTest, ParseDocumentFile) {
  std::string path = ::testing::TempDir() + "/bt_parser_test.xml";
  {
    std::ofstream out(path);
    out << "<a><b>file</b></a>";
  }
  auto r = ParseDocumentFile(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->StringValue(0), "file");
  std::remove(path.c_str());
}

TEST(ParserTest, ParseDocumentFileMissing) {
  auto r = ParseDocumentFile("/nonexistent/file.xml");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ParserTest, RoundTripDepth) {
  // Deep nesting should not blow up (iterative text handling, recursion only
  // in serializer).
  std::string in;
  const int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) in += "<n>";
  in += "x";
  for (int i = 0; i < kDepth; ++i) in += "</n>";
  auto r = ParseDocument(in);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->MaxDepth(), static_cast<uint32_t>(kDepth));
  EXPECT_TRUE((*r)->IsRecursive());
  EXPECT_EQ((*r)->MaxRecursionDegree(), static_cast<uint32_t>(kDepth));
}

// Regression: a stray ']' in the internal subset once drove the bracket
// counter negative, so the terminating '>' was never honored.
TEST(ParserTest, DoctypeStrayClosingBracket) {
  auto r = ParseDocument("<!DOCTYPE r ]><r/>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->NumNodes(), 1u);
  EXPECT_EQ((*r)->TagName(0), "r");
}

// Regression: '>' inside a quoted SYSTEM/PUBLIC literal once terminated the
// DOCTYPE early, mis-parsing the literal's tail as document content.
TEST(ParserTest, DoctypeQuotedGreaterThan) {
  auto r = ParseDocument("<!DOCTYPE r SYSTEM \"a>b\"><r/>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->NumNodes(), 1u);
  auto r2 = ParseDocument("<!DOCTYPE r [<!ENTITY gt \"]>\">]><r/>");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ((*r2)->NumNodes(), 1u);
}

TEST(ParserTest, DoctypeUnterminatedIsError) {
  EXPECT_FALSE(ParseDocument("<!DOCTYPE r [").ok());
  EXPECT_FALSE(ParseDocument("<!DOCTYPE r SYSTEM \"a>").ok());
}

// Regression: the hex character-reference accumulator once overflowed
// (signed arithmetic, UB); overlong references now fail fast.
TEST(ParserTest, HexCharRefOverflowRejected) {
  EXPECT_FALSE(ParseDocument("<r>&#x11111111111111111;</r>").ok());
  EXPECT_FALSE(ParseDocument("<r>&#x110000;</r>").ok());
  auto ok = ParseDocument("<r>&#x10FFFF;</r>");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(ParserTest, DepthLimitRejectsPathologicalNesting) {
  ParseOptions options;
  options.max_depth = 64;
  std::string in;
  for (int i = 0; i < 65; ++i) in += "<n>";
  for (int i = 0; i < 65; ++i) in += "</n>";
  auto r = ParseDocument(in, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // One level under the cap is fine.
  std::string ok;
  for (int i = 0; i < 64; ++i) ok += "<n>";
  for (int i = 0; i < 64; ++i) ok += "</n>";
  EXPECT_TRUE(ParseDocument(ok, options).ok());
}

TEST(ParserTest, InputSizeLimitRejectsOversizedDocument) {
  ParseOptions options;
  options.max_input_bytes = 4;
  auto r = ParseDocument("<root/>", options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace xml
}  // namespace blossomtree
