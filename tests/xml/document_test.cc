#include "xml/document.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace blossomtree {
namespace xml {
namespace {

std::unique_ptr<Document> Parse(std::string_view s) {
  auto r = ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(TagDictionaryTest, InternIsIdempotent) {
  TagDictionary d;
  TagId a = d.Intern("book");
  TagId b = d.Intern("title");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("book"), a);
  EXPECT_EQ(d.Name(a), "book");
  EXPECT_EQ(d.Lookup("title"), b);
  EXPECT_EQ(d.Lookup("nope"), kNullTag);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DocumentTest, BuilderBasicStructure) {
  Document doc;
  NodeId a = doc.BeginElement("a");
  NodeId b = doc.BeginElement("b");
  doc.EndElement();
  NodeId c = doc.BeginElement("c");
  doc.EndElement();
  doc.EndElement();
  ASSERT_TRUE(doc.Finish().ok());

  EXPECT_EQ(doc.Root(), a);
  EXPECT_EQ(doc.FirstChild(a), b);
  EXPECT_EQ(doc.NextSibling(b), c);
  EXPECT_EQ(doc.NextSibling(c), kNullNode);
  EXPECT_EQ(doc.Parent(b), a);
  EXPECT_EQ(doc.Parent(c), a);
  EXPECT_EQ(doc.Parent(a), kNullNode);
}

TEST(DocumentTest, PreorderIdsAreDocumentOrder) {
  auto doc = Parse("<a><b><d/></b><c/></a>");
  // Preorder: a=0, b=1, d=2, c=3.
  EXPECT_EQ(doc->TagName(0), "a");
  EXPECT_EQ(doc->TagName(1), "b");
  EXPECT_EQ(doc->TagName(2), "d");
  EXPECT_EQ(doc->TagName(3), "c");
}

TEST(DocumentTest, SubtreeEndBoundsSubtree) {
  auto doc = Parse("<a><b><d/><e/></b><c/></a>");
  // a=0 b=1 d=2 e=3 c=4
  EXPECT_EQ(doc->SubtreeEnd(0), 4u);
  EXPECT_EQ(doc->SubtreeEnd(1), 3u);
  EXPECT_EQ(doc->SubtreeEnd(2), 2u);
  EXPECT_EQ(doc->SubtreeEnd(4), 4u);
}

TEST(DocumentTest, IsAncestor) {
  auto doc = Parse("<a><b><d/></b><c/></a>");
  EXPECT_TRUE(doc->IsAncestor(0, 1));
  EXPECT_TRUE(doc->IsAncestor(0, 2));
  EXPECT_TRUE(doc->IsAncestor(1, 2));
  EXPECT_FALSE(doc->IsAncestor(1, 3));
  EXPECT_FALSE(doc->IsAncestor(2, 1));
  EXPECT_FALSE(doc->IsAncestor(1, 1));
  EXPECT_TRUE(doc->IsAncestorOrSelf(1, 1));
}

TEST(DocumentTest, Levels) {
  auto doc = Parse("<a><b><d/></b><c/></a>");
  EXPECT_EQ(doc->Level(0), 0u);
  EXPECT_EQ(doc->Level(1), 1u);
  EXPECT_EQ(doc->Level(2), 2u);
  EXPECT_EQ(doc->Level(3), 1u);
}

TEST(DocumentTest, TextAndStringValue) {
  auto doc = Parse("<a><b>hello</b><c>wo<d>r</d>ld</c></a>");
  // a=0 b=1 "hello"=2 c=3 "wo"=4 d=5 "r"=6 "ld"=7
  EXPECT_TRUE(doc->IsElement(1));
  EXPECT_FALSE(doc->IsElement(2));
  EXPECT_EQ(doc->Text(2), "hello");
  EXPECT_EQ(doc->StringValue(1), "hello");
  EXPECT_EQ(doc->StringValue(3), "world");
  EXPECT_EQ(doc->StringValue(0), "helloworld");
}

TEST(DocumentTest, Attributes) {
  auto doc = Parse(R"(<a x="1" y="two"><b z="3"/></a>)");
  auto attrs = doc->Attributes(0);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].first, "x");
  EXPECT_EQ(attrs[0].second, "1");
  EXPECT_EQ(attrs[1].first, "y");
  EXPECT_EQ(attrs[1].second, "two");
  std::string_view v;
  EXPECT_TRUE(doc->AttributeValue(1, "z", &v));
  EXPECT_EQ(v, "3");
  EXPECT_FALSE(doc->AttributeValue(1, "w", &v));
  EXPECT_TRUE(doc->Attributes(1).size() == 1);
}

TEST(DocumentTest, TagIndexIsDocumentOrder) {
  auto doc = Parse("<a><b/><c><b/></c><b/></a>");
  TagId b = doc->tags().Lookup("b");
  const auto& idx = doc->TagIndex(b);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_TRUE(idx[0] < idx[1] && idx[1] < idx[2]);
  EXPECT_EQ(doc->TagName(idx[0]), "b");
}

TEST(DocumentTest, TagIndexUnknownTagEmpty) {
  auto doc = Parse("<a/>");
  EXPECT_TRUE(doc->TagIndex(kNullTag).empty());
}

TEST(DocumentTest, StatsNonRecursive) {
  auto doc = Parse("<a><b><d/></b><c/></a>");
  EXPECT_EQ(doc->NumElements(), 4u);
  EXPECT_EQ(doc->MaxDepth(), 3u);  // Root counted as depth 1.
  EXPECT_FALSE(doc->IsRecursive());
  EXPECT_EQ(doc->MaxRecursionDegree(), 1u);
  // Depths: a=1 b=2 d=3 c=2 → avg = 2.
  EXPECT_DOUBLE_EQ(doc->AvgDepth(), 2.0);
}

TEST(DocumentTest, StatsRecursive) {
  auto doc = Parse("<a><a><b><a/></b></a></a>");
  EXPECT_TRUE(doc->IsRecursive());
  EXPECT_EQ(doc->MaxRecursionDegree(), 3u);
}

TEST(DocumentTest, RecursionCountsOnlyAncestry) {
  // Two sibling b's are not recursion.
  auto doc = Parse("<a><b/><b/></a>");
  EXPECT_FALSE(doc->IsRecursive());
}

TEST(DocumentTest, PerTagRecursionDegrees) {
  auto doc = Parse("<r><x><x><a/></x></x><a/><b><b><b/></b></b></r>");
  EXPECT_EQ(doc->TagRecursionDegree(doc->tags().Lookup("x")), 2u);
  EXPECT_EQ(doc->TagRecursionDegree(doc->tags().Lookup("a")), 1u);
  EXPECT_EQ(doc->TagRecursionDegree(doc->tags().Lookup("b")), 3u);
  EXPECT_EQ(doc->TagRecursionDegree(doc->tags().Lookup("r")), 1u);
  EXPECT_EQ(doc->MaxRecursionDegree(), 3u);
}

TEST(DocumentTest, SiblingRank) {
  auto doc = Parse("<r><a/><b/><a/>text<a/></r>");
  // Element nodes: r=0 a=1 b=2 a=3 (text=4) a=5.
  EXPECT_EQ(xml::SiblingRank(*doc, 1, "a"), 1u);
  EXPECT_EQ(xml::SiblingRank(*doc, 3, "a"), 2u);
  EXPECT_EQ(xml::SiblingRank(*doc, 5, "a"), 3u);
  EXPECT_EQ(xml::SiblingRank(*doc, 2, "b"), 1u);
  // Wildcard counts all element siblings.
  EXPECT_EQ(xml::SiblingRank(*doc, 2, "*"), 2u);
  EXPECT_EQ(xml::SiblingRank(*doc, 5, "*"), 4u);
  // The root has rank 1.
  EXPECT_EQ(xml::SiblingRank(*doc, 0, "r"), 1u);
}

TEST(DocumentTest, EmptyDocumentAccessors) {
  Document doc;
  EXPECT_TRUE(doc.empty());
  EXPECT_EQ(doc.Root(), kNullNode);
  ASSERT_TRUE(doc.Finish().ok());
  EXPECT_EQ(doc.NumElements(), 0u);
}

}  // namespace
}  // namespace xml
}  // namespace blossomtree
