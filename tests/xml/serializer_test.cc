#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace blossomtree {
namespace xml {
namespace {

std::unique_ptr<Document> Parse(std::string_view s) {
  auto r = ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(SerializerTest, RoundTripSimple) {
  auto doc = Parse("<a><b>x</b><c/></a>");
  EXPECT_EQ(Serialize(*doc), "<a><b>x</b><c/></a>");
}

TEST(SerializerTest, EscapesText) {
  auto doc = Parse("<a>&lt;&amp;&gt;</a>");
  EXPECT_EQ(Serialize(*doc), "<a>&lt;&amp;&gt;</a>");
}

TEST(SerializerTest, Attributes) {
  auto doc = Parse(R"(<a x="1" y="a&amp;b"><c/></a>)");
  EXPECT_EQ(Serialize(*doc), R"(<a x="1" y="a&amp;b"><c/></a>)");
}

TEST(SerializerTest, SubtreeOnly) {
  auto doc = Parse("<a><b>x</b><c>y</c></a>");
  EXPECT_EQ(SerializeSubtree(*doc, 1), "<b>x</b>");
}

TEST(SerializerTest, IndentedOutput) {
  auto doc = Parse("<a><b>x</b><c/></a>");
  SerializeOptions opts;
  opts.indent = true;
  EXPECT_EQ(Serialize(*doc, opts), "<a>\n  <b>x</b>\n  <c/>\n</a>");
}

TEST(SerializerTest, ReparseRoundTripIsStable) {
  std::string original = "<bib><book id=\"1\"><title>T&amp;A</title>"
                         "<author><last>K</last></author></book></bib>";
  auto doc = Parse(original);
  std::string once = Serialize(*doc);
  auto doc2 = Parse(once);
  EXPECT_EQ(Serialize(*doc2), once);
}

TEST(SerializerTest, EmptyDocument) {
  Document doc;
  ASSERT_TRUE(doc.Finish().ok());
  EXPECT_EQ(Serialize(doc), "");
}

TEST(SerializerTest, IndentPreservesMixedContent) {
  // Indented serialization once injected newline + indentation around the
  // text children of any element that also had an element child, so mixed
  // content came back from a parse → serialize(indent) → parse round trip
  // with corrupted text.
  std::string original = "<p>hello <b>world</b> tail</p>";
  auto doc = Parse(original);
  SerializeOptions opts;
  opts.indent = true;
  std::string pretty = Serialize(*doc, opts);
  auto doc2 = Parse(pretty);
  EXPECT_EQ(doc2->StringValue(doc2->Root()), doc->StringValue(doc->Root()));
  EXPECT_EQ(Serialize(*doc2), original);
}

TEST(SerializerTest, IndentRoundTripNestedMixedContent) {
  // Mixed content stays inline while the element-only levels around it
  // still pretty-print.
  std::string original = "<a><b>x<c>y</c>z</b><d><e>q</e></d></a>";
  auto doc = Parse(original);
  SerializeOptions opts;
  opts.indent = true;
  std::string pretty = Serialize(*doc, opts);
  EXPECT_EQ(pretty,
            "<a>\n  <b>x<c>y</c>z</b>\n  <d>\n    <e>q</e>\n  </d>\n</a>");
  auto doc2 = Parse(pretty);
  EXPECT_EQ(Serialize(*doc2), original);
}

TEST(SerializerTest, DeepDocumentDoesNotOverflowStack) {
  // The serializer walks an explicit stack, so document depth must not be
  // bounded by the thread stack.
  constexpr size_t kDepth = 200000;
  Document doc;
  doc.BeginElement("r");
  for (size_t i = 0; i < kDepth; ++i) doc.BeginElement("d");
  doc.AddText("x");
  for (size_t i = 0; i < kDepth; ++i) doc.EndElement();
  doc.EndElement();
  ASSERT_TRUE(doc.Finish().ok());
  std::string out = Serialize(doc);
  // "<r>" + kDepth * "<d>" + "x" + kDepth * "</d>" + "</r>".
  EXPECT_EQ(out.size(), 3 + kDepth * 3 + 1 + kDepth * 4 + 4);
  EXPECT_EQ(out.substr(0, 9), "<r><d><d>");
}

}  // namespace
}  // namespace xml
}  // namespace blossomtree
