#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace blossomtree {
namespace xml {
namespace {

std::unique_ptr<Document> Parse(std::string_view s) {
  auto r = ParseDocument(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(SerializerTest, RoundTripSimple) {
  auto doc = Parse("<a><b>x</b><c/></a>");
  EXPECT_EQ(Serialize(*doc), "<a><b>x</b><c/></a>");
}

TEST(SerializerTest, EscapesText) {
  auto doc = Parse("<a>&lt;&amp;&gt;</a>");
  EXPECT_EQ(Serialize(*doc), "<a>&lt;&amp;&gt;</a>");
}

TEST(SerializerTest, Attributes) {
  auto doc = Parse(R"(<a x="1" y="a&amp;b"><c/></a>)");
  EXPECT_EQ(Serialize(*doc), R"(<a x="1" y="a&amp;b"><c/></a>)");
}

TEST(SerializerTest, SubtreeOnly) {
  auto doc = Parse("<a><b>x</b><c>y</c></a>");
  EXPECT_EQ(SerializeSubtree(*doc, 1), "<b>x</b>");
}

TEST(SerializerTest, IndentedOutput) {
  auto doc = Parse("<a><b>x</b><c/></a>");
  SerializeOptions opts;
  opts.indent = true;
  EXPECT_EQ(Serialize(*doc, opts), "<a>\n  <b>x</b>\n  <c/>\n</a>");
}

TEST(SerializerTest, ReparseRoundTripIsStable) {
  std::string original = "<bib><book id=\"1\"><title>T&amp;A</title>"
                         "<author><last>K</last></author></book></bib>";
  auto doc = Parse(original);
  std::string once = Serialize(*doc);
  auto doc2 = Parse(once);
  EXPECT_EQ(Serialize(*doc2), once);
}

TEST(SerializerTest, EmptyDocument) {
  Document doc;
  ASSERT_TRUE(doc.Finish().ok());
  EXPECT_EQ(Serialize(doc), "");
}

}  // namespace
}  // namespace xml
}  // namespace blossomtree
