// libFuzzer harness for the XML parser: any input must either parse into a
// well-formed Document or fail with a clean Status — never crash, leak, or
// trip ASan/UBSan. Depth and size limits are set low enough that the fuzzer
// spends its budget on the grammar, not on giant inputs.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "xml/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  blossomtree::xml::ParseOptions options;
  options.max_depth = 512;
  options.max_input_bytes = 1 << 20;
  auto doc = blossomtree::xml::ParseDocument(input, options);
  if (doc.ok()) {
    // Touch the document so latent index corruption surfaces under ASan.
    volatile size_t n = doc.value()->NumNodes();
    (void)n;
  }
  return 0;
}
