// libFuzzer harness for the XPath parser: every input must produce either a
// PathExpr (whose ToString round-trip is then exercised) or a clean error.
// The depth limit keeps deeply nested predicates from exhausting the stack —
// exactly the guard the crash-regression corpus pins.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "xpath/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  auto path = blossomtree::xpath::ParsePath(input, /*max_depth=*/256);
  if (path.ok()) {
    volatile size_t n = path.value().ToString().size();
    (void)n;
  }
  return 0;
}
