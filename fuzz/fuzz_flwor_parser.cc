// libFuzzer harness for the FLWOR parser: queries must parse into an Expr or
// fail with a clean Status. ParseLimits bounds both recursion depth (the
// parser is recursive-descent) and input size so the harness never dies on
// resource exhaustion instead of real bugs.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "flwor/parser.h"
#include "util/resource_guard.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  blossomtree::util::ParseLimits limits;
  limits.max_depth = 256;
  limits.max_input_bytes = 1 << 20;
  auto expr = blossomtree::flwor::ParseQuery(input, limits);
  (void)expr;
  return 0;
}
