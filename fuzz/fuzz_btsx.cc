// libFuzzer harness for the BTSX file family's decoders: any input must
// either decode into a well-formed document (or structural index) or fail
// with a clean Status — never crash, throw, leak, or trip ASan/UBSan.
// Inputs that decode must re-encode stably (decode → encode → decode
// reproduces the same serialization), and a v2 image that passes deep
// validation must adopt into a document whose serialization round-trips.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "index/btsi.h"
#include "index/structural_index.h"
#include "storage/btsx2.h"
#include "storage/succinct.h"
#include "xml/document.h"
#include "xml/serializer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) return 0;  // Spend the budget on structure.
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // BTSX v1: succinct event stream.
  auto v1 = blossomtree::storage::DecodeSuccinct(input);
  if (v1.ok()) {
    std::string first = blossomtree::xml::Serialize(**v1);
    auto again = blossomtree::storage::DecodeSuccinct(
        blossomtree::storage::EncodeSuccinct(**v1));
    if (!again.ok() || blossomtree::xml::Serialize(**again) != first) {
      __builtin_trap();  // Round-trip instability is a bug.
    }
  }

  // BTSX v2: paged layout. MapBtsx2 is the O(header) gate; ValidateBtsx2Deep
  // is the O(n) backstop a DiskStore runs for untrusted files.
  auto v2 = blossomtree::storage::MapBtsx2(input);
  if (v2.ok()) {
    if (blossomtree::storage::ValidateBtsx2Deep(*v2).ok()) {
      blossomtree::xml::Document adopted;
      if (adopted.AdoptExternal(v2->ToLayout()).ok()) {
        volatile size_t n = adopted.NumNodes();
        (void)n;
        std::string text = blossomtree::xml::Serialize(adopted);
        (void)text;
      }
    }
  }

  // BTSI: the structural-index sidecar. An accepted image must re-encode
  // to the identical byte string — the encoder is canonical, so any
  // accepted-but-unstable input means the validator missed a degree of
  // freedom it should have pinned.
  auto idx = blossomtree::index::DecodeBtsi(input);
  if (idx.ok()) {
    auto bytes = blossomtree::index::EncodeBtsi(**idx);
    if (!bytes.ok() || *bytes != input) {
      __builtin_trap();  // Round-trip instability is a bug.
    }
  }
  return 0;
}
