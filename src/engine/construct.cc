#include "engine/construct.h"

#include "xml/serializer.h"

namespace blossomtree {
namespace engine {

ResultBuilder::ResultBuilder(const xml::Document* source) : source_(source) {
  out_.BeginElement("#seq");
}

void ResultBuilder::BeginElement(std::string_view name) {
  out_.BeginElement(name);
}

void ResultBuilder::AddAttribute(std::string_view name,
                                 std::string_view value) {
  out_.AddAttribute(name, value);
}

void ResultBuilder::AddText(std::string_view text) { out_.AddText(text); }

void ResultBuilder::EndElement() { out_.EndElement(); }

void ResultBuilder::CopyNode(xml::NodeId n) { CopyRec(n); }

void ResultBuilder::CopyRec(xml::NodeId n) {
  if (!source_->IsElement(n)) {
    out_.AddText(source_->Text(n));
    return;
  }
  out_.BeginElement(source_->TagName(n));
  for (const auto& [name, value] : source_->Attributes(n)) {
    out_.AddAttribute(name, value);
  }
  for (xml::NodeId c = source_->FirstChild(n); c != xml::kNullNode;
       c = source_->NextSibling(c)) {
    CopyRec(c);
  }
  out_.EndElement();
}

Result<std::string> ResultBuilder::ToXml() {
  if (!finished_) {
    out_.EndElement();  // #seq wrapper.
    BT_RETURN_NOT_OK(out_.Finish());
    finished_ = true;
  }
  std::string result;
  for (xml::NodeId c = out_.FirstChild(out_.Root()); c != xml::kNullNode;
       c = out_.NextSibling(c)) {
    result += xml::SerializeSubtree(out_, c);
  }
  return result;
}

}  // namespace engine
}  // namespace blossomtree
