#ifndef BLOSSOMTREE_ENGINE_ENGINE_H_
#define BLOSSOMTREE_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/construct.h"
#include "engine/path_eval.h"
#include "engine/plan_cache.h"
#include "engine/query_profile.h"
#include "exec/result_cache.h"
#include "flwor/ast.h"
#include "opt/planner.h"
#include "util/cache.h"
#include "util/metrics.h"
#include "util/resource_guard.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace blossomtree {
namespace engine {

/// \brief Options for the BlossomTree engine.
struct EngineOptions {
  opt::PlanOptions plan;
  /// Intra-query parallelism: worker threads for partitioned NoK scans and
  /// structural joins. 0 = hardware concurrency; 1 = the exact serial code
  /// path (no thread pool is created — the configuration bitwise-comparison
  /// tests pin against). Results are byte-identical at every setting.
  unsigned num_threads = 0;
  /// Collect a per-operator QueryProfile (and EXPLAIN ANALYZE text) for
  /// every planned query. Profiling runs every plan to completion after the
  /// result is drained, so enabling it changes timings but never results.
  bool collect_profile = false;
  /// Enable query-lifecycle tracing (DESIGN.md §10): the engine turns on
  /// the process-wide util::Tracer at construction, so every span from
  /// parse to per-operator GetNext batches is recorded and exportable as
  /// Chrome trace_event JSON via util::Tracer::ExportJsonFile(). When off
  /// (the default) every instrumentation point reduces to one relaxed
  /// atomic load. Tracing never changes results.
  bool trace = false;
  /// Populate the engine's MetricsRegistry with per-query counters and
  /// latency histograms (query.wall_ns, query.parse_ns, ...), and attach a
  /// registry snapshot to QueryProfile::ToJson(). Counter text
  /// (MetricsRegistry::CountersText) stays bitwise-identical across thread
  /// counts; wall-clock values live only in histograms. Like
  /// collect_profile, this runs every plan to completion after the result
  /// is drained (so exec.* totals are consumption-independent) — timings
  /// change, results never do.
  bool collect_metrics = false;
  /// Per-query resource limits (DESIGN.md §9): wall-clock deadline,
  /// NestedList cell/byte budget, result-row cap, and parser depth / input
  /// size caps. The engine arms its guard with these at the start of every
  /// top-level evaluation; an over-limit query returns kResourceExhausted
  /// (kCancelled for Cancel()) instead of a truncated result. Defaults are
  /// unlimited, which preserves the exact ungoverned behavior.
  util::QueryLimits limits;
  /// Plan cache (DESIGN.md §11): query text → parsed AST and canonical
  /// FLWOR/path fingerprint → compiled BlossomTree + decomposition +
  /// bindings. OFF by default — with it off every code path, counter, and
  /// profile is bitwise-identical to the pre-cache engine. Caching never
  /// changes results: cached artifacts are pure functions of the query.
  util::CacheOptions plan_cache;
  /// NoK sub-result cache (DESIGN.md §11): (document generation, canonical
  /// NoK, node range) → materialized match NestedLists, shared by every
  /// full-document NoK scan the engine plans. OFF by default. A hit replays
  /// exactly what a cold scan of the same range would emit, so results stay
  /// byte-identical at every thread count.
  util::CacheOptions result_cache;
  /// Corpus-scope plan cache (DESIGN.md §12), borrowed and shared across
  /// engines: when non-null the engine uses it instead of creating its own
  /// from `plan_cache` above (which is then ignored). Compiled plans are
  /// pure functions of the query text, so sharing one cache across every
  /// session and document of a service is sound; PlanCache is thread-safe.
  /// The corpus-scope NoK result cache has no separate knob — it rides the
  /// existing borrowed `plan.result_cache` pointer the same way.
  PlanCache* shared_plan_cache = nullptr;
};

/// \brief End-to-end query evaluation via BlossomTree pattern matching:
/// FLWOR → BlossomTree → NoK decomposition → (merged) NoK scans +
/// structural joins → NestedLists → variable binding (Env) → where
/// filtering → ordering → result construction.
class BlossomTreeEngine {
 public:
  explicit BlossomTreeEngine(const xml::Document* doc,
                             EngineOptions options = {});

  /// \brief Evaluates a parsed query expression to serialized XML (a
  /// sequence of elements / copied nodes).
  Result<std::string> EvaluateToXml(const flwor::Expr& expr);

  /// \brief Parses and evaluates a query string.
  Result<std::string> EvaluateQuery(std::string_view query);

  /// \brief Evaluates a path query to its distinct document-ordered node
  /// matches via the BlossomTree plan.
  Result<std::vector<xml::NodeId>> EvaluatePath(const xpath::PathExpr& path);

  /// \brief EXPLAIN text of the most recent FLWOR/path plan.
  const std::string& LastExplain() const { return last_explain_; }

  /// \brief EXPLAIN ANALYZE text of the most recent plan (empty unless
  /// EngineOptions::collect_profile): the plan tree annotated with each
  /// operator's estimated and actual cardinalities and counters.
  const std::string& LastExplainAnalyze() const {
    return last_explain_analyze_;
  }

  /// \brief Per-operator profile of the most recent plan (empty unless
  /// EngineOptions::collect_profile).
  const QueryProfile& LastProfile() const { return last_profile_; }

  /// \brief The resolved degree of intra-query parallelism (1 = serial).
  unsigned EffectiveThreads() const {
    return pool_ != nullptr ? static_cast<unsigned>(pool_->NumThreads()) : 1;
  }

  /// \brief Requests cooperative cancellation of the in-flight query (safe
  /// from any thread). Operators observe the token at their next batch
  /// boundary and the query returns kCancelled. The flag is cleared when
  /// the next top-level evaluation arms the guard.
  void Cancel() { guard_.token()->Cancel(); }

  /// \brief The engine's per-query resource guard (counters, trip status).
  const util::ResourceGuard& guard() const { return guard_; }

  /// \brief The engine's metrics registry (counters + latency histograms).
  /// Populated only when EngineOptions::collect_metrics; always readable.
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

  /// \brief The effective plan cache (owned or shared); nullptr when
  /// caching is off.
  PlanCache* plan_cache() { return active_plan_cache_; }

  /// \brief The effective NoK sub-result cache (owned or shared); nullptr
  /// when caching is off.
  exec::NokResultCache* result_cache() { return options_.plan.result_cache; }

 private:
  /// EvaluatePath minus the guard arming: used for top-level paths and for
  /// paths nested inside an already-armed evaluation (re-arming would
  /// restart the deadline mid-query).
  Result<std::vector<xml::NodeId>> EvalPathPlan(const xpath::PathExpr& path);
  Status EvalExpr(const flwor::Expr& expr, const Env& env,
                  ResultBuilder* out);
  Status EvalFlwor(const flwor::Flwor& flwor, const Env& env,
                   ResultBuilder* out);
  Result<std::vector<Env>> FlworTuples(const flwor::Flwor& flwor);
  Status EmitTuples(const flwor::Flwor& flwor, std::vector<Env> tuples,
                    ResultBuilder* out);
  /// Finishes the executed plan and snapshots last_profile_ /
  /// last_explain_analyze_ (no-op unless collect_profile).
  void CollectProfile(opt::QueryPlan* plan, const std::string& label);
  /// Compiles `flwor` (BlossomTree + decomposition + slot bindings) through
  /// the plan cache when enabled, building uncached otherwise.
  Result<std::shared_ptr<const CompiledFlwor>> CompileFlwor(
      const flwor::Flwor& flwor);
  /// Folds cache counters into the metrics registry: hits/misses/evictions
  /// as deltas since the last fold, bytes/entries as gauges (no-op unless
  /// collect_metrics and at least one cache is enabled).
  void FoldCacheMetrics();

  const xml::Document* doc_;
  EngineOptions options_;
  /// Engine-owned guard; options_.plan.guard borrows it so every physical
  /// operator in every plan samples the same trip flag.
  util::ResourceGuard guard_;
  /// Owned worker pool when num_threads resolves above 1; options_.plan.pool
  /// borrows it for the lifetime of the engine.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Engine-owned metrics: deterministic counters plus latency histograms
  /// (DESIGN.md §10). Snapshotted into QueryProfile when collect_metrics.
  util::MetricsRegistry metrics_;
  /// Owned caches (DESIGN.md §11), created only when the corresponding
  /// EngineOptions knob is enabled and no shared instance was borrowed;
  /// options_.plan.result_cache borrows result_cache_ so every planned NoK
  /// scan shares it.
  std::unique_ptr<PlanCache> plan_cache_;
  std::unique_ptr<exec::NokResultCache> result_cache_;
  /// The cache every lookup goes through: the borrowed corpus-scope cache
  /// when EngineOptions::shared_plan_cache is set, else plan_cache_.get().
  PlanCache* active_plan_cache_ = nullptr;
  /// Stats snapshots at the last FoldCacheMetrics, for delta folding of the
  /// monotonic cache counters.
  util::CacheStats folded_plan_stats_;
  util::CacheStats folded_result_stats_;
  std::string last_explain_;
  std::string last_explain_analyze_;
  QueryProfile last_profile_;
};

/// \brief FLWOR tuple enumeration by naive per-iteration path evaluation —
/// the semantics-following strategy the paper's introduction warns about.
/// Used by the navigational baseline and for nested FLWORs with free
/// variables.
Result<std::vector<Env>> NaiveFlworTuples(const flwor::Flwor& flwor,
                                          const Env& base_env,
                                          PathEvaluator* evaluator,
                                          util::ResourceGuard* guard = nullptr);

}  // namespace engine
}  // namespace blossomtree

#endif  // BLOSSOMTREE_ENGINE_ENGINE_H_
