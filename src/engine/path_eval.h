#ifndef BLOSSOMTREE_ENGINE_PATH_EVAL_H_
#define BLOSSOMTREE_ENGINE_PATH_EVAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"
#include "xml/document.h"
#include "xpath/ast.h"

namespace blossomtree {
namespace engine {

/// \brief A variable environment: each variable is bound to a node sequence
/// (singleton for for-bound variables, any length for let-bound ones).
/// This is the paper's `Env` abstract data type (§3.2, Figure 2).
using Env = std::map<std::string, std::vector<xml::NodeId>>;

/// \brief Navigational XPath evaluation over the DOM: every step traverses
/// the tree directly, with no indexes and no sharing — the per-step
/// semantics a navigational engine (the paper's X-Hive comparator) uses.
///
/// Also serves as the engine's utility for where-clause operands and
/// return-clause paths, which are evaluated from variable bindings.
class PathEvaluator {
 public:
  explicit PathEvaluator(const xml::Document* doc) : doc_(doc) {}

  /// \brief Evaluates an absolute path (start kRoot). Result is a
  /// document-ordered set of nodes.
  Result<std::vector<xml::NodeId>> Evaluate(const xpath::PathExpr& path);

  /// \brief Evaluates a path whose start may be a variable (resolved in
  /// `env`) or the context node(s).
  Result<std::vector<xml::NodeId>> EvaluateWith(
      const xpath::PathExpr& path, const Env& env,
      const std::vector<xml::NodeId>& context);

  /// \brief Evaluates path steps from a set of context nodes.
  Result<std::vector<xml::NodeId>> EvaluateSteps(
      const std::vector<xpath::Step>& steps, size_t first,
      const std::vector<xml::NodeId>& context);

  /// \brief Tree nodes touched (the navigational work metric).
  uint64_t NodesVisited() const { return nodes_visited_; }

  const xml::Document* doc() const { return doc_; }

 private:
  Result<std::vector<xml::NodeId>> ApplyStep(
      const xpath::Step& step, const std::vector<xml::NodeId>& context);
  Result<bool> EvalPredicate(const xpath::Predicate& pred, xml::NodeId node);
  void CollectDescendants(xml::NodeId n, const std::string& tag,
                          std::vector<xml::NodeId>* out);

  const xml::Document* doc_;
  uint64_t nodes_visited_ = 0;
};

}  // namespace engine
}  // namespace blossomtree

#endif  // BLOSSOMTREE_ENGINE_PATH_EVAL_H_
