#include "engine/engine.h"

#include <algorithm>
#include <chrono>

#include "engine/binder.h"
#include "engine/where_eval.h"
#include "nestedlist/ops.h"
#include "exec/operator.h"
#include "flwor/parser.h"
#include "pattern/builder.h"
#include "pattern/decompose.h"
#include "util/trace.h"

namespace blossomtree {
namespace engine {

BlossomTreeEngine::BlossomTreeEngine(const xml::Document* doc,
                                     EngineOptions options)
    : doc_(doc), options_(std::move(options)), guard_(options_.limits) {
  options_.plan.guard = &guard_;
  unsigned threads = options_.num_threads == 0
                         ? static_cast<unsigned>(
                               util::ThreadPool::DefaultThreads())
                         : options_.num_threads;
  if (threads > 1 && options_.plan.pool == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(threads);
    options_.plan.pool = pool_.get();
  }
  if (options_.shared_plan_cache != nullptr) {
    // Borrowed corpus-scope cache (DESIGN.md §12): shared across engines,
    // so this engine creates none of its own.
    active_plan_cache_ = options_.shared_plan_cache;
  } else if (options_.plan_cache.enabled) {
    plan_cache_ = std::make_unique<PlanCache>(options_.plan_cache);
    active_plan_cache_ = plan_cache_.get();
  }
  if (options_.result_cache.enabled && options_.plan.result_cache == nullptr) {
    result_cache_ = std::make_unique<exec::NokResultCache>(
        options_.result_cache);
    options_.plan.result_cache = result_cache_.get();
  }
  // Tracing is process-wide (spans land in per-thread rings regardless of
  // which engine issued them); any engine asking for it turns it on. An
  // already-running capture is left alone — Enable() restarts the capture,
  // which would drop spans a caller recorded before constructing the
  // engine (e.g. a CLI tracing its own query parse).
  if (options_.trace && !util::Tracer::Get().enabled()) {
    util::Tracer::Get().Enable();
  }
}

namespace {

/// Wall-clock nanoseconds since `start` — histogram fodder, never part of
/// the deterministic counter surface.
uint64_t NanosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Result<std::string> BlossomTreeEngine::EvaluateQuery(std::string_view query) {
  // Plan-cache level 1: verbatim query text → parsed AST. A hit skips the
  // parser entirely (and records no query.parse_ns sample — there was no
  // parse). Parse failures are never cached: the error re-surfaces each time.
  std::shared_ptr<const flwor::Expr> expr;
  if (active_plan_cache_ != nullptr) {
    util::TraceSpan lookup("cache", "plan.parsed.lookup");
    expr = active_plan_cache_->GetParsed(std::string(query));
  }
  if (expr == nullptr) {
    auto parse_start = std::chrono::steady_clock::now();
    BT_ASSIGN_OR_RETURN(
        std::unique_ptr<flwor::Expr> parsed,
        flwor::ParseQuery(query, options_.limits.ToParseLimits()));
    if (options_.collect_metrics) {
      metrics_.GetHistogram("query.parse_ns")->Record(NanosSince(parse_start));
    }
    expr = std::shared_ptr<const flwor::Expr>(std::move(parsed));
    if (active_plan_cache_ != nullptr) {
      active_plan_cache_->PutParsed(std::string(query), expr);
    }
  }
  return EvaluateToXml(*expr);
}

Result<std::string> BlossomTreeEngine::EvaluateToXml(
    const flwor::Expr& expr) {
  util::TraceSpan span("engine", "query");
  auto start = std::chrono::steady_clock::now();
  guard_.Arm();  // The deadline clock starts here, not at construction.
  ResultBuilder out(doc_);
  BT_RETURN_NOT_OK(EvalExpr(expr, Env{}, &out));
  if (guard_.Tripped()) return guard_.status();
  Result<std::string> xml = out.ToXml();
  if (options_.collect_metrics) {
    FoldCacheMetrics();
    metrics_.GetCounter("engine.queries")->Increment();
    metrics_.GetHistogram("query.wall_ns")->Record(NanosSince(start));
    // Re-snapshot so the profile's embedded registry includes the
    // query-level counters recorded just now, not only the per-operator
    // ones folded in by CollectProfile.
    if (options_.collect_profile) last_profile_.metrics_json = metrics_.ToJson();
  }
  return xml;
}

Result<std::vector<xml::NodeId>> BlossomTreeEngine::EvaluatePath(
    const xpath::PathExpr& path) {
  util::TraceSpan span("engine", "path");
  auto start = std::chrono::steady_clock::now();
  guard_.Arm();
  BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> out, EvalPathPlan(path));
  if (guard_.Tripped()) return guard_.status();
  if (options_.collect_metrics) {
    FoldCacheMetrics();
    metrics_.GetCounter("engine.path_queries")->Increment();
    metrics_.GetCounter("engine.path_result_nodes")
        ->Add(static_cast<uint64_t>(out.size()));
    metrics_.GetHistogram("query.wall_ns")->Record(NanosSince(start));
    if (options_.collect_profile) last_profile_.metrics_json = metrics_.ToJson();
  }
  return out;
}

Result<std::vector<xml::NodeId>> BlossomTreeEngine::EvalPathPlan(
    const xpath::PathExpr& path) {
  // Plan-cache level 2: canonical path fingerprint → compiled BlossomTree +
  // decomposition. The navigational fallback below produces no compiled
  // artifact and is never cached.
  std::shared_ptr<const CompiledPath> compiled;
  std::string key;
  if (active_plan_cache_ != nullptr) {
    key = CanonicalPathKey(path);
    util::TraceSpan lookup("cache", "plan.path.lookup");
    compiled = active_plan_cache_->GetPath(key);
  }
  if (compiled == nullptr) {
    auto built = pattern::BuildFromPath(path);
    if (!built.ok()) {
      if (built.status().code() == StatusCode::kUnsupported) {
        // Constructs outside the BlossomTree subset (e.g. reverse axes)
        // degrade gracefully to navigational evaluation.
        PathEvaluator ev(doc_);
        last_explain_ =
            "navigational fallback (" + built.status().message() + ")\n";
        return ev.Evaluate(path);
      }
      return built.status();
    }
    auto fresh = std::make_shared<CompiledPath>();
    fresh->tree = built.MoveValue();
    fresh->decomposition = pattern::Decompose(fresh->tree);
    if (active_plan_cache_ != nullptr) active_plan_cache_->PutPath(key, fresh);
    compiled = std::move(fresh);
  }
  const pattern::BlossomTree& tree = compiled->tree;
  BT_ASSIGN_OR_RETURN(opt::QueryPlan plan,
                      opt::PlanQuery(doc_, &tree, options_.plan,
                                     &compiled->decomposition));
  last_explain_ = plan.Explain();
  pattern::SlotId result = tree.SlotOfVariable("result");
  std::vector<xml::NodeId> out;
  // Batch-at-a-time drain (DESIGN.md §16): one virtual call and one trace
  // span per batch instead of per row.
  exec::Batch batch;
  size_t batch_rows = exec::ClampBatchRows(options_.plan.exec.batch_rows);
  while (plan.trees[0].root->GetNextBatch(&batch, batch_rows) > 0) {
    for (const nestedlist::NestedList& nl : batch.rows) {
      auto part = nestedlist::Project(tree, plan.trees[0].tops, nl, result);
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  // Tripped operators end their streams early; refuse to pass the partial
  // result off as complete.
  if (guard_.Tripped()) return guard_.status();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (!guard_.ChargeRows(out.size())) return guard_.status();
  CollectProfile(&plan, path.ToString());
  return out;
}

void BlossomTreeEngine::CollectProfile(opt::QueryPlan* plan,
                                       const std::string& label) {
  if (!options_.collect_profile && !options_.collect_metrics) return;
  QueryProfile profile = BuildQueryProfile(plan, label, EffectiveThreads());
  if (options_.collect_metrics) {
    // Fold deterministic per-operator counters into the registry — with or
    // without profile collection, so `--metrics` alone sees exec.* totals.
    for (const OperatorProfile& op : profile.operators) {
      metrics_.GetCounter("exec.rows")->Add(op.stats.matches);
      metrics_.GetCounter("exec.nodes_scanned")->Add(op.stats.nodes_scanned);
      metrics_.GetCounter("exec.comparisons")->Add(op.stats.comparisons);
      metrics_.GetCounter("exec.nl_cells")->Add(op.stats.nl_cells);
    }
  }
  if (!options_.collect_profile) return;
  last_profile_ = std::move(profile);
  last_explain_analyze_ = plan->ExplainAnalyze();
  if (options_.collect_metrics) {
    // Attach a registry snapshot (histogram summaries included) to the
    // profile's JSON form.
    last_profile_.metrics_json = metrics_.ToJson();
  }
}

Status BlossomTreeEngine::EvalExpr(const flwor::Expr& expr, const Env& env,
                                   ResultBuilder* out) {
  switch (expr.kind) {
    case flwor::Expr::Kind::kPath: {
      std::vector<xml::NodeId> nodes;
      if (env.empty() &&
          expr.path.start == xpath::PathExpr::StartKind::kRoot) {
        // Free-standing absolute path: use the BlossomTree plan. The guard
        // is already armed by the top-level entry point — EvaluatePath
        // would restart the deadline mid-query.
        BT_ASSIGN_OR_RETURN(nodes, EvalPathPlan(expr.path));
      } else {
        // Variable-/context-rooted paths are evaluated from the bindings.
        PathEvaluator ev(doc_);
        BT_ASSIGN_OR_RETURN(nodes, ev.EvaluateWith(expr.path, env, {}));
      }
      for (xml::NodeId n : nodes) out->CopyNode(n);
      return Status::OK();
    }
    case flwor::Expr::Kind::kConstructor: {
      out->BeginElement(expr.ctor->name);
      for (const auto& [name, value] : expr.ctor->attributes) {
        out->AddAttribute(name, value);
      }
      for (const flwor::ConstructorItem& item : expr.ctor->items) {
        if (item.kind == flwor::ConstructorItem::Kind::kText) {
          out->AddText(item.text);
        } else {
          BT_RETURN_NOT_OK(EvalExpr(*item.expr, env, out));
        }
      }
      out->EndElement();
      return Status::OK();
    }
    case flwor::Expr::Kind::kFlwor:
      return EvalFlwor(*expr.flwor, env, out);
  }
  return Status::Internal("unhandled expression kind");
}

Status BlossomTreeEngine::EvalFlwor(const flwor::Flwor& flwor, const Env& env,
                                    ResultBuilder* out) {
  std::vector<Env> tuples;
  if (env.empty()) {
    auto r = FlworTuples(flwor);
    if (!r.ok() && r.status().code() == StatusCode::kUnsupported) {
      // Bindings outside the BlossomTree subset (e.g. reverse axes):
      // degrade to per-iteration evaluation.
      PathEvaluator ev(doc_);
      BT_ASSIGN_OR_RETURN(tuples, NaiveFlworTuples(flwor, env, &ev, &guard_));
    } else {
      BT_RETURN_NOT_OK(r.status());
      tuples = r.MoveValue();
    }
  } else {
    // Nested FLWOR with free variables from the enclosing scope: fall back
    // to per-iteration evaluation under the outer bindings.
    PathEvaluator ev(doc_);
    BT_ASSIGN_OR_RETURN(tuples, NaiveFlworTuples(flwor, env, &ev, &guard_));
  }
  return EmitTuples(flwor, std::move(tuples), out);
}

Result<std::shared_ptr<const CompiledFlwor>> BlossomTreeEngine::CompileFlwor(
    const flwor::Flwor& flwor) {
  // Plan-cache level 2: canonical FLWOR fingerprint → BlossomTree +
  // decomposition + slot bindings. Build failures (e.g. kUnsupported, which
  // FlworTuples' caller turns into the naive fallback) are never cached.
  std::string key;
  if (active_plan_cache_ != nullptr) {
    key = CanonicalFlworKey(flwor);
    util::TraceSpan lookup("cache", "plan.flwor.lookup");
    std::shared_ptr<const CompiledFlwor> hit = active_plan_cache_->GetFlwor(key);
    if (hit != nullptr) return hit;
  }
  auto compiled = std::make_shared<CompiledFlwor>();
  BT_ASSIGN_OR_RETURN(compiled->tree, pattern::BuildFromFlwor(flwor));
  compiled->decomposition = pattern::Decompose(compiled->tree);
  compiled->bindings = ComputeSlotBindings(compiled->tree, flwor);
  if (active_plan_cache_ != nullptr) active_plan_cache_->PutFlwor(key, compiled);
  return std::shared_ptr<const CompiledFlwor>(std::move(compiled));
}

void BlossomTreeEngine::FoldCacheMetrics() {
  auto fold = [this](const char* which, const util::CacheStats& now,
                     util::CacheStats* last) {
    std::string prefix = std::string("cache.") + which;
    metrics_.GetCounter(prefix + ".hits")->Add(now.hits - last->hits);
    metrics_.GetCounter(prefix + ".misses")->Add(now.misses - last->misses);
    metrics_.GetCounter(prefix + ".evictions")
        ->Add(now.evictions - last->evictions);
    // Occupancy is a gauge, not a monotonic counter: overwrite in place.
    util::Counter* bytes = metrics_.GetCounter(prefix + ".bytes");
    bytes->Reset();
    bytes->Add(now.bytes);
    util::Counter* entries = metrics_.GetCounter(prefix + ".entries");
    entries->Reset();
    entries->Add(now.entries);
    *last = now;
  };
  if (active_plan_cache_ != nullptr) {
    fold("plan", active_plan_cache_->Stats(), &folded_plan_stats_);
  }
  if (options_.plan.result_cache != nullptr) {
    // The effective cache: owned or borrowed (corpus-scope). With a shared
    // cache the deltas cover all engines' activity since this engine's
    // last fold — corpus-wide totals, which is what a service wants.
    fold("result", options_.plan.result_cache->Stats(), &folded_result_stats_);
  }
}

Result<std::vector<Env>> BlossomTreeEngine::FlworTuples(
    const flwor::Flwor& flwor) {
  util::TraceSpan span("engine", "flwor-tuples");
  BT_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledFlwor> compiled,
                      CompileFlwor(flwor));
  const pattern::BlossomTree& tree = compiled->tree;
  BT_ASSIGN_OR_RETURN(opt::QueryPlan plan,
                      opt::PlanQuery(doc_, &tree, options_.plan,
                                     &compiled->decomposition));
  last_explain_ = plan.Explain();
  const std::vector<SlotBinding>& bindings = compiled->bindings;
  // Per pattern tree: drain the plan, expand bindings.
  std::vector<std::vector<Env>> per_tree;
  for (opt::PatternTreePlan& tp : plan.trees) {
    std::vector<nestedlist::NestedList> lists = exec::Drain(tp.root.get());
    if (guard_.Tripped()) return guard_.status();
    per_tree.push_back(EnumerateBindings(tree, tp.tops, lists, bindings));
  }
  CollectProfile(&plan, "flwor");
  // Crossing edges (<<, value joins, deep-equal) are evaluated by the
  // naive nested loop over the per-tree tuple sets (paper §4.3), as the
  // where-clause filter below.
  std::vector<Env> tuples = CrossEnvs(per_tree);
  if (!guard_.ChargeRows(tuples.size())) return guard_.status();
  if (flwor.where != nullptr) {
    PathEvaluator ev(doc_);
    std::vector<Env> kept;
    uint64_t filtered = 0;
    for (Env& t : tuples) {
      if ((++filtered & 0x1FF) == 0 && !guard_.Check()) {
        return guard_.status();
      }
      BT_ASSIGN_OR_RETURN(bool ok, EvalWhere(*flwor.where, t, *doc_, &ev));
      if (ok) kept.push_back(std::move(t));
    }
    tuples = std::move(kept);
  }
  return tuples;
}

Status BlossomTreeEngine::EmitTuples(const flwor::Flwor& flwor,
                                     std::vector<Env> tuples,
                                     ResultBuilder* out) {
  util::TraceSpan span("engine", "emit");
  if (options_.collect_metrics) {
    metrics_.GetCounter("engine.flwor_tuples")
        ->Add(static_cast<uint64_t>(tuples.size()));
  }
  if (flwor.order_by.has_value()) {
    PathEvaluator ev(doc_);
    std::vector<std::pair<std::string, size_t>> keys;
    keys.reserve(tuples.size());
    for (size_t i = 0; i < tuples.size(); ++i) {
      BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                          ev.EvaluateWith(*flwor.order_by, tuples[i], {}));
      keys.emplace_back(nodes.empty() ? "" : doc_->StringValue(nodes[0]), i);
    }
    std::stable_sort(keys.begin(), keys.end(),
                     [&](const auto& a, const auto& b) {
                       return flwor.order_descending ? a.first > b.first
                                                     : a.first < b.first;
                     });
    std::vector<Env> ordered;
    ordered.reserve(tuples.size());
    for (const auto& [key, idx] : keys) ordered.push_back(tuples[idx]);
    tuples = std::move(ordered);
  }
  uint64_t emitted = 0;
  for (const Env& t : tuples) {
    if ((++emitted & 0xFF) == 0 && !guard_.Check()) return guard_.status();
    BT_RETURN_NOT_OK(EvalExpr(*flwor.ret, t, out));
  }
  return Status::OK();
}

Result<std::vector<Env>> NaiveFlworTuples(const flwor::Flwor& flwor,
                                          const Env& base_env,
                                          PathEvaluator* evaluator,
                                          util::ResourceGuard* guard) {
  std::vector<Env> tuples = {base_env};
  for (const flwor::Binding& b : flwor.bindings) {
    std::vector<Env> next;
    for (const Env& t : tuples) {
      // Each iteration re-runs a full path evaluation, so one guard sample
      // per iteration is already amortized.
      if (guard != nullptr && !guard->Check()) return guard->status();
      // The path expression is re-evaluated for every iteration of the
      // enclosing loop — the inefficiency BlossomTree eliminates.
      BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                          evaluator->EvaluateWith(b.path, t, {}));
      if (b.kind == flwor::Binding::Kind::kLet) {
        Env env = t;
        env[b.var] = std::move(nodes);
        next.push_back(std::move(env));
      } else {
        for (xml::NodeId n : nodes) {
          Env env = t;
          env[b.var] = {n};
          next.push_back(std::move(env));
        }
      }
    }
    tuples = std::move(next);
  }
  if (flwor.where != nullptr) {
    std::vector<Env> kept;
    for (Env& t : tuples) {
      BT_ASSIGN_OR_RETURN(
          bool ok, EvalWhere(*flwor.where, t, *evaluator->doc(), evaluator));
      if (ok) kept.push_back(std::move(t));
    }
    tuples = std::move(kept);
  }
  return tuples;
}

}  // namespace engine
}  // namespace blossomtree
