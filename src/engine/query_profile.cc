#include "engine/query_profile.h"

#include <algorithm>
#include <cstdio>

namespace blossomtree {
namespace engine {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MsString(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nanos) / 1e6);
  return buf;
}

}  // namespace

void QueryProfile::AddOperator(std::string label, int depth,
                               const exec::ExecStats& s,
                               double estimated_rows) {
  OperatorProfile op;
  op.label = std::move(label);
  op.depth = depth;
  op.estimated_rows = estimated_rows;
  op.stats = s;
  operators.push_back(std::move(op));
}

std::string QueryProfile::ToJson() const {
  std::string out = "{";
  out += "\"query\": \"" + EscapeJson(query) + "\", ";
  out += "\"strategy\": \"" + EscapeJson(strategy) + "\", ";
  out += "\"threads\": " + std::to_string(threads) + ", ";
  out += "\"total_wall_ms\": " + MsString(total_wall_nanos) + ", ";
  out += "\"operators\": [";
  for (size_t i = 0; i < operators.size(); ++i) {
    const OperatorProfile& op = operators[i];
    if (i > 0) out += ", ";
    out += "{\"label\": \"" + EscapeJson(op.label) + "\"";
    out += ", \"depth\": " + std::to_string(op.depth);
    if (op.estimated_rows >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", op.estimated_rows);
      out += ", \"estimated_rows\": ";
      out += buf;
    }
    const exec::ExecStats& s = op.stats;
    out += ", \"wall_ms\": " + MsString(s.wall_nanos);
    out += ", \"nodes_scanned\": " + std::to_string(s.nodes_scanned);
    out += ", \"index_entries\": " + std::to_string(s.index_entries);
    out += ", \"comparisons\": " + std::to_string(s.comparisons);
    out += ", \"rows\": " + std::to_string(s.matches);
    out += ", \"nl_cells\": " + std::to_string(s.nl_cells);
    out += ", \"peak_buffer_bytes\": " +
           std::to_string(s.peak_buffer_bytes);
    out += ", \"rescans\": " + std::to_string(s.rescans);
    out += "}";
  }
  out += "]";
  if (!metrics_json.empty()) out += ", \"metrics\": " + metrics_json;
  out += "}";
  return out;
}

std::string QueryProfile::ToText() const {
  std::string out = "strategy: " + strategy + "\n";
  // Two passes: size the label column first, so the counter column starts
  // at one fixed offset whatever the tree depth, label length, or counter
  // magnitude (7+-digit counters used to shear the layout).
  size_t width = 0;
  for (const OperatorProfile& op : operators) {
    width = std::max(width,
                     static_cast<size_t>(op.depth) * 2 + op.label.size());
  }
  for (const OperatorProfile& op : operators) {
    std::string line(static_cast<size_t>(op.depth) * 2, ' ');
    line += op.label;
    line.append(width - line.size() + 2, ' ');
    out += line + op.stats.Counters() + "\n";
  }
  return out;
}

QueryProfile BuildQueryProfile(opt::QueryPlan* plan, std::string query,
                               unsigned threads) {
  QueryProfile profile;
  profile.query = std::move(query);
  profile.strategy = opt::JoinStrategyToString(plan->chosen);
  profile.threads = threads;
  plan->FinishAll();
  if (plan->merged_scan != nullptr) {
    profile.AddOperator("MergedNokScan", 0, plan->merged_scan->ScanStats());
  }
  opt::ForEachOperator(
      *plan, [&](const exec::NestedListOperator& op, int depth) {
        profile.AddOperator(op.Label(), depth, op.Stats(),
                            op.estimated_rows());
      });
  for (const opt::PatternTreePlan& tp : plan->trees) {
    if (tp.root != nullptr) {
      profile.total_wall_nanos += tp.root->Stats().wall_nanos;
    }
  }
  if (plan->merged_scan != nullptr) {
    profile.total_wall_nanos += plan->merged_scan->ScanStats().wall_nanos;
  }
  return profile;
}

}  // namespace engine
}  // namespace blossomtree
