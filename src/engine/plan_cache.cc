#include "engine/plan_cache.h"

namespace blossomtree {
namespace engine {

namespace {

/// Budget split: level 1 (parsed ASTs, small) gets a quarter; the compiled
/// FLWOR and path caches split the rest. Separate ledgers keep a flood of
/// distinct query texts from evicting compiled trees.
util::CacheOptions Fraction(const util::CacheOptions& options,
                            uint64_t num, uint64_t den) {
  util::CacheOptions out = options;
  out.max_bytes = options.max_bytes * num / den;
  if (out.max_bytes == 0) out.max_bytes = 1;
  return out;
}

/// Injective string field: "<len>:<bytes>".
void AppendString(const std::string& s, std::string* out) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

/// Canonical path rendering with length-prefixed literals. Unlike
/// PathExpr::ToString (a display form), this stays injective even when a
/// literal contains quotes or bracket characters.
void AppendPath(const xpath::PathExpr& path, std::string* out) {
  out->push_back('p');
  out->push_back('{');
  switch (path.start) {
    case xpath::PathExpr::StartKind::kRoot:
      out->push_back('/');
      AppendString(path.document, out);
      break;
    case xpath::PathExpr::StartKind::kVariable:
      out->push_back('$');
      AppendString(path.variable, out);
      break;
    case xpath::PathExpr::StartKind::kContext:
      out->push_back('.');
      break;
  }
  for (const xpath::Step& step : path.steps) {
    out->push_back(';');
    out->append(std::to_string(static_cast<int>(step.axis)));
    AppendString(step.name, out);
    for (const xpath::Predicate& p : step.predicates) {
      out->push_back('[');
      switch (p.kind) {
        case xpath::Predicate::Kind::kExists:
          out->push_back('e');
          if (p.path != nullptr) AppendPath(*p.path, out);
          break;
        case xpath::Predicate::Kind::kValueCompare:
          out->append(xpath::CompareOpToString(p.op));
          if (p.path != nullptr) AppendPath(*p.path, out);
          AppendString(p.literal, out);
          break;
        case xpath::Predicate::Kind::kPosition:
          out->push_back('#');
          out->append(std::to_string(p.position));
          break;
      }
      out->push_back(']');
    }
  }
  out->push_back('}');
}

void AppendOperand(const flwor::Operand& operand, std::string* out) {
  switch (operand.kind) {
    case flwor::Operand::Kind::kPath:
      AppendPath(operand.path, out);
      break;
    case flwor::Operand::Kind::kLiteral:
      out->push_back('l');
      AppendString(operand.literal, out);
      break;
    case flwor::Operand::Kind::kCount:
      out->append("cnt");
      AppendPath(operand.path, out);
      break;
  }
}

void AppendBool(const flwor::BoolExpr& b, std::string* out) {
  switch (b.kind) {
    case flwor::BoolExpr::Kind::kAnd:
    case flwor::BoolExpr::Kind::kOr:
    case flwor::BoolExpr::Kind::kNot:
      out->append(b.kind == flwor::BoolExpr::Kind::kAnd
                      ? "and("
                      : b.kind == flwor::BoolExpr::Kind::kOr ? "or("
                                                             : "not(");
      for (const auto& child : b.children) AppendBool(*child, out);
      out->push_back(')');
      break;
    case flwor::BoolExpr::Kind::kCompare:
      out->append(flwor::WhereOpToString(b.op));
      out->push_back('(');
      AppendOperand(b.left, out);
      out->push_back(',');
      AppendOperand(b.right, out);
      out->push_back(')');
      break;
  }
}

void AppendExpr(const flwor::Expr& expr, std::string* out);

void AppendFlwor(const flwor::Flwor& flwor, std::string* out) {
  out->append("flwor{");
  for (const flwor::Binding& b : flwor.bindings) {
    out->append(b.kind == flwor::Binding::Kind::kFor ? "for$" : "let$");
    AppendString(b.var, out);
    AppendPath(b.path, out);
    out->push_back(';');
  }
  if (flwor.where != nullptr) {
    out->append("where{");
    AppendBool(*flwor.where, out);
    out->push_back('}');
  }
  if (flwor.order_by.has_value()) {
    out->append(flwor.order_descending ? "order-d{" : "order-a{");
    AppendPath(*flwor.order_by, out);
    out->push_back('}');
  }
  out->append("return{");
  if (flwor.ret != nullptr) AppendExpr(*flwor.ret, out);
  out->push_back('}');
  out->push_back('}');
}

void AppendExpr(const flwor::Expr& expr, std::string* out) {
  switch (expr.kind) {
    case flwor::Expr::Kind::kPath:
      AppendPath(expr.path, out);
      break;
    case flwor::Expr::Kind::kFlwor:
      AppendFlwor(*expr.flwor, out);
      break;
    case flwor::Expr::Kind::kConstructor: {
      out->append("ctor{");
      AppendString(expr.ctor->name, out);
      for (const auto& [name, value] : expr.ctor->attributes) {
        out->push_back('@');
        AppendString(name, out);
        AppendString(value, out);
      }
      for (const flwor::ConstructorItem& item : expr.ctor->items) {
        if (item.kind == flwor::ConstructorItem::Kind::kText) {
          out->push_back('t');
          AppendString(item.text, out);
        } else {
          out->push_back('e');
          out->push_back('(');
          if (item.expr != nullptr) AppendExpr(*item.expr, out);
          out->push_back(')');
        }
      }
      out->push_back('}');
      break;
    }
  }
}

/// Rough per-entry footprints. The cache budget is approximate by design
/// (DESIGN.md §9): these scale with the real allocation sizes without
/// walking every vector.
uint64_t ParsedBytes(const std::string& text) {
  return text.size() * 3 + 128;
}

uint64_t TreeBytes(const pattern::BlossomTree& tree,
                   const pattern::Decomposition& decomposition) {
  return tree.NumVertices() * 160 + tree.NumSlots() * 96 +
         decomposition.noks.size() * 64 +
         decomposition.nok_of_vertex.size() * 4 + 256;
}

}  // namespace

PlanCache::PlanCache(const util::CacheOptions& options)
    : parsed_(Fraction(options, 1, 4)),
      flwor_(Fraction(options, 3, 8)),
      path_(Fraction(options, 3, 8)) {}

std::shared_ptr<const flwor::Expr> PlanCache::GetParsed(
    const std::string& text) {
  return parsed_.Get(text);
}

void PlanCache::PutParsed(const std::string& text,
                          std::shared_ptr<const flwor::Expr> expr) {
  parsed_.Put(text, std::move(expr), ParsedBytes(text));
}

std::shared_ptr<const CompiledFlwor> PlanCache::GetFlwor(
    const std::string& key) {
  return flwor_.Get(key);
}

void PlanCache::PutFlwor(const std::string& key,
                         std::shared_ptr<const CompiledFlwor> compiled) {
  uint64_t bytes = TreeBytes(compiled->tree, compiled->decomposition) +
                   compiled->bindings.size() * 48 + key.size();
  flwor_.Put(key, std::move(compiled), bytes);
}

std::shared_ptr<const CompiledPath> PlanCache::GetPath(
    const std::string& key) {
  return path_.Get(key);
}

void PlanCache::PutPath(const std::string& key,
                        std::shared_ptr<const CompiledPath> compiled) {
  uint64_t bytes =
      TreeBytes(compiled->tree, compiled->decomposition) + key.size();
  path_.Put(key, std::move(compiled), bytes);
}

util::CacheStats PlanCache::Stats() const {
  util::CacheStats total;
  for (const util::CacheStats& s :
       {parsed_.Stats(), flwor_.Stats(), path_.Stats()}) {
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.insertions += s.insertions;
    total.entries += s.entries;
    total.bytes += s.bytes;
  }
  return total;
}

std::string CanonicalFlworKey(const flwor::Flwor& flwor) {
  std::string out;
  out.reserve(256);
  AppendFlwor(flwor, &out);
  return out;
}

std::string CanonicalPathKey(const xpath::PathExpr& path) {
  std::string out;
  out.reserve(128);
  out.append("path:");
  AppendPath(path, &out);
  return out;
}

}  // namespace engine
}  // namespace blossomtree
