#include "engine/where_eval.h"

#include "exec/value_ops.h"

namespace blossomtree {
namespace engine {

Result<std::vector<xml::NodeId>> EvalOperand(const flwor::Operand& op,
                                             const Env& env,
                                             PathEvaluator* evaluator,
                                             bool* is_literal,
                                             std::string* literal_out) {
  if (op.kind == flwor::Operand::Kind::kLiteral) {
    *is_literal = true;
    *literal_out = op.literal;
    return std::vector<xml::NodeId>{};
  }
  if (op.kind == flwor::Operand::Kind::kCount) {
    BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                        evaluator->EvaluateWith(op.path, env, {}));
    *is_literal = true;
    *literal_out = std::to_string(nodes.size());
    return std::vector<xml::NodeId>{};
  }
  *is_literal = false;
  return evaluator->EvaluateWith(op.path, env, {});
}

namespace {

Result<bool> EvalCompare(const flwor::BoolExpr& expr, const Env& env,
                         const xml::Document& doc,
                         PathEvaluator* evaluator) {
  if (expr.op == flwor::WhereOp::kExists) {
    if (expr.left.kind != flwor::Operand::Kind::kPath) {
      return Status::InvalidArgument("exists() requires a path operand");
    }
    BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                        evaluator->EvaluateWith(expr.left.path, env, {}));
    return !nodes.empty();
  }
  bool l_lit = false;
  bool r_lit = false;
  std::string l_str;
  std::string r_str;
  BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> lhs,
                      EvalOperand(expr.left, env, evaluator, &l_lit, &l_str));
  BT_ASSIGN_OR_RETURN(
      std::vector<xml::NodeId> rhs,
      EvalOperand(expr.right, env, evaluator, &r_lit, &r_str));

  switch (expr.op) {
    case flwor::WhereOp::kEq:
    case flwor::WhereOp::kNeq: {
      xpath::CompareOp op = expr.op == flwor::WhereOp::kEq
                                ? xpath::CompareOp::kEq
                                : xpath::CompareOp::kNeq;
      if (l_lit && r_lit) {
        return exec::CompareValues(l_str, op, r_str);
      }
      if (l_lit) {
        return exec::GeneralCompareLiteral(doc, rhs, op, l_str);
      }
      if (r_lit) {
        return exec::GeneralCompareLiteral(doc, lhs, op, r_str);
      }
      return exec::GeneralCompare(doc, lhs, op, rhs);
    }
    case flwor::WhereOp::kDocBefore:
    case flwor::WhereOp::kDocAfter: {
      if (l_lit || r_lit) {
        return Status::InvalidArgument("'<<' requires node operands");
      }
      if (lhs.empty() || rhs.empty()) return false;
      if (lhs.size() != 1 || rhs.size() != 1) {
        return Status::InvalidArgument("'<<' requires singleton operands");
      }
      return expr.op == flwor::WhereOp::kDocBefore ? lhs[0] < rhs[0]
                                                   : lhs[0] > rhs[0];
    }
    case flwor::WhereOp::kIs: {
      if (l_lit || r_lit) {
        return Status::InvalidArgument("'is' requires node operands");
      }
      if (lhs.empty() || rhs.empty()) return false;
      if (lhs.size() != 1 || rhs.size() != 1) {
        return Status::InvalidArgument("'is' requires singleton operands");
      }
      return lhs[0] == rhs[0];
    }
    case flwor::WhereOp::kDeepEqual: {
      if (l_lit || r_lit) {
        return Status::InvalidArgument("deep-equal requires node operands");
      }
      return exec::DeepEqualSequences(doc, lhs, rhs);
    }
    case flwor::WhereOp::kExists:
      break;  // Handled above.
  }
  return Status::Internal("unhandled comparison operator");
}

}  // namespace

Result<bool> EvalWhere(const flwor::BoolExpr& expr, const Env& env,
                       const xml::Document& doc, PathEvaluator* evaluator) {
  switch (expr.kind) {
    case flwor::BoolExpr::Kind::kAnd:
      for (const auto& c : expr.children) {
        BT_ASSIGN_OR_RETURN(bool v, EvalWhere(*c, env, doc, evaluator));
        if (!v) return false;
      }
      return true;
    case flwor::BoolExpr::Kind::kOr:
      for (const auto& c : expr.children) {
        BT_ASSIGN_OR_RETURN(bool v, EvalWhere(*c, env, doc, evaluator));
        if (v) return true;
      }
      return false;
    case flwor::BoolExpr::Kind::kNot: {
      BT_ASSIGN_OR_RETURN(bool v,
                          EvalWhere(*expr.children[0], env, doc, evaluator));
      return !v;
    }
    case flwor::BoolExpr::Kind::kCompare:
      return EvalCompare(expr, env, doc, evaluator);
  }
  return Status::Internal("unhandled boolean kind");
}

}  // namespace engine
}  // namespace blossomtree
