#include "engine/path_eval.h"

#include <algorithm>

#include "exec/value_ops.h"

namespace blossomtree {
namespace engine {

namespace {

bool TagTest(const xml::Document& doc, xml::NodeId n, const std::string& tag) {
  if (!doc.IsElement(n)) return false;
  return tag == "*" || doc.TagName(n) == tag;
}

void SortDedup(std::vector<xml::NodeId>* nodes) {
  std::sort(nodes->begin(), nodes->end());
  nodes->erase(std::unique(nodes->begin(), nodes->end()), nodes->end());
}

}  // namespace

Result<std::vector<xml::NodeId>> PathEvaluator::Evaluate(
    const xpath::PathExpr& path) {
  static const Env kEmptyEnv;
  return EvaluateWith(path, kEmptyEnv, {});
}

Result<std::vector<xml::NodeId>> PathEvaluator::EvaluateWith(
    const xpath::PathExpr& path, const Env& env,
    const std::vector<xml::NodeId>& context) {
  std::vector<xml::NodeId> start;
  switch (path.start) {
    case xpath::PathExpr::StartKind::kRoot:
      // The "virtual root" context: the first step's child axis reaches the
      // document root element, '//' reaches every element.
      if (path.steps.empty()) {
        return Status::InvalidArgument("absolute path with no steps");
      }
      if (doc_->empty()) return std::vector<xml::NodeId>{};
      {
        const xpath::Step& s0 = path.steps[0];
        std::vector<xml::NodeId> first;
        ++nodes_visited_;
        if (s0.axis == xpath::Axis::kChild) {
          if (TagTest(*doc_, doc_->Root(), s0.name)) {
            first.push_back(doc_->Root());
          }
        } else if (s0.axis == xpath::Axis::kDescendant) {
          CollectDescendants(doc_->Root(), s0.name, &first);
          if (TagTest(*doc_, doc_->Root(), s0.name)) {
            first.insert(first.begin(), doc_->Root());
          }
        } else {
          return Status::Unsupported("absolute path must start with / or //");
        }
        // Apply the first step's predicates.
        std::vector<xml::NodeId> kept;
        for (xml::NodeId n : first) {
          bool ok = true;
          for (const xpath::Predicate& p : s0.predicates) {
            if (p.kind == xpath::Predicate::Kind::kPosition) {
              if (SiblingRank(*doc_, n, s0.name) !=
                  static_cast<uint32_t>(p.position)) {
                ok = false;
                break;
              }
              continue;
            }
            BT_ASSIGN_OR_RETURN(bool pv, EvalPredicate(p, n));
            if (!pv) {
              ok = false;
              break;
            }
          }
          if (ok) kept.push_back(n);
        }
        return EvaluateSteps(path.steps, 1, kept);
      }
    case xpath::PathExpr::StartKind::kVariable: {
      auto it = env.find(path.variable);
      if (it == env.end()) {
        return Status::InvalidArgument("unbound variable $" + path.variable);
      }
      start = it->second;
      break;
    }
    case xpath::PathExpr::StartKind::kContext:
      start = context;
      break;
  }
  return EvaluateSteps(path.steps, 0, start);
}

Result<std::vector<xml::NodeId>> PathEvaluator::EvaluateSteps(
    const std::vector<xpath::Step>& steps, size_t first,
    const std::vector<xml::NodeId>& context) {
  std::vector<xml::NodeId> cur = context;
  for (size_t i = first; i < steps.size(); ++i) {
    BT_ASSIGN_OR_RETURN(cur, ApplyStep(steps[i], cur));
  }
  return cur;
}

Result<std::vector<xml::NodeId>> PathEvaluator::ApplyStep(
    const xpath::Step& step, const std::vector<xml::NodeId>& context) {
  std::vector<xml::NodeId> out;
  for (xml::NodeId ctx : context) {
    if (step.axis == xpath::Axis::kSelf) {
      ++nodes_visited_;
      if (!step.name.empty() && !TagTest(*doc_, ctx, step.name)) continue;
      bool ok = true;
      for (const xpath::Predicate& p : step.predicates) {
        if (p.kind == xpath::Predicate::Kind::kPosition) {
          return Status::Unsupported("position predicate on self step");
        }
        BT_ASSIGN_OR_RETURN(bool pv, EvalPredicate(p, ctx));
        if (!pv) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(ctx);
      continue;
    }
    if (step.axis == xpath::Axis::kAttribute) {
      // Attribute steps surface the owning element when the attribute
      // exists (matching the pattern engine's convention; see DESIGN.md).
      ++nodes_visited_;
      std::string_view v;
      if (doc_->AttributeValue(ctx, step.name, &v)) out.push_back(ctx);
      continue;
    }
    // Candidate nodes by axis.
    std::vector<xml::NodeId> candidates;
    switch (step.axis) {
      case xpath::Axis::kChild:
        for (xml::NodeId c = doc_->FirstChild(ctx); c != xml::kNullNode;
             c = doc_->NextSibling(c)) {
          ++nodes_visited_;
          if (TagTest(*doc_, c, step.name)) candidates.push_back(c);
        }
        break;
      case xpath::Axis::kDescendant:
        CollectDescendants(ctx, step.name, &candidates);
        break;
      case xpath::Axis::kFollowingSibling:
        for (xml::NodeId c = doc_->NextSibling(ctx); c != xml::kNullNode;
             c = doc_->NextSibling(c)) {
          ++nodes_visited_;
          if (TagTest(*doc_, c, step.name)) candidates.push_back(c);
        }
        break;
      case xpath::Axis::kParent: {
        xml::NodeId p = doc_->Parent(ctx);
        ++nodes_visited_;
        if (p != xml::kNullNode && TagTest(*doc_, p, step.name)) {
          candidates.push_back(p);
        }
        break;
      }
      case xpath::Axis::kAncestor:
        // Candidates in reverse document order (nearest first): positional
        // predicates on reverse axes count outward from the context.
        for (xml::NodeId p = doc_->Parent(ctx); p != xml::kNullNode;
             p = doc_->Parent(p)) {
          ++nodes_visited_;
          if (TagTest(*doc_, p, step.name)) candidates.push_back(p);
        }
        break;
      case xpath::Axis::kFollowing:
        // Everything after this subtree in document order.
        for (xml::NodeId n = doc_->SubtreeEnd(ctx) + 1; n < doc_->NumNodes();
             ++n) {
          ++nodes_visited_;
          if (TagTest(*doc_, n, step.name)) candidates.push_back(n);
        }
        break;
      case xpath::Axis::kPreceding:
        // Everything strictly before the context, excluding its ancestors,
        // in reverse document order (the axis direction).
        for (xml::NodeId n = ctx; n-- > 0;) {
          ++nodes_visited_;
          if (doc_->SubtreeEnd(n) >= ctx) continue;  // Ancestor of ctx.
          if (TagTest(*doc_, n, step.name)) candidates.push_back(n);
        }
        break;
      default:
        return Status::Unsupported("unsupported axis");
    }
    int axis_rank = 0;
    for (xml::NodeId n : candidates) {
      ++axis_rank;
      bool ok = true;
      for (const xpath::Predicate& p : step.predicates) {
        if (p.kind == xpath::Predicate::Kind::kPosition) {
          // Positions count per parent for / and // steps (XPath: the
          // predicate binds to the child step), and along the axis for
          // following-sibling and the reverse axes.
          long long rank =
              step.axis == xpath::Axis::kFollowingSibling ||
                      xpath::IsNavigationalOnlyAxis(step.axis)
                  ? axis_rank
                  : static_cast<long long>(
                        xml::SiblingRank(*doc_, n, step.name));
          if (rank != p.position) {
            ok = false;
            break;
          }
          continue;
        }
        BT_ASSIGN_OR_RETURN(bool pv, EvalPredicate(p, n));
        if (!pv) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(n);
    }
  }
  SortDedup(&out);
  return out;
}

Result<bool> PathEvaluator::EvalPredicate(const xpath::Predicate& pred,
                                          xml::NodeId node) {
  static const Env kEmptyEnv;
  BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                      EvaluateWith(*pred.path, kEmptyEnv, {node}));
  if (pred.kind == xpath::Predicate::Kind::kExists) {
    return !nodes.empty();
  }
  // Value comparison (general comparison semantics: some item matches).
  return exec::GeneralCompareLiteral(*doc_, nodes, pred.op, pred.literal);
}

void PathEvaluator::CollectDescendants(xml::NodeId n, const std::string& tag,
                                       std::vector<xml::NodeId>* out) {
  xml::NodeId end = doc_->SubtreeEnd(n);
  for (xml::NodeId i = n + 1; i <= end && i < doc_->NumNodes(); ++i) {
    ++nodes_visited_;
    if (TagTest(*doc_, i, tag)) out->push_back(i);
  }
}

}  // namespace engine
}  // namespace blossomtree
