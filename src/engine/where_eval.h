#ifndef BLOSSOMTREE_ENGINE_WHERE_EVAL_H_
#define BLOSSOMTREE_ENGINE_WHERE_EVAL_H_

#include "engine/path_eval.h"
#include "flwor/ast.h"
#include "util/status.h"

namespace blossomtree {
namespace engine {

/// \brief Evaluates a where-clause boolean expression under a variable
/// environment. Operand paths are evaluated navigationally from the bound
/// nodes; comparison semantics:
///  - `=` / `!=`: XQuery general comparison (some pair satisfies the op);
///  - `<<` / `>>`: document order on singleton nodes (empty → false);
///  - `is`: node identity on singletons;
///  - `deep-equal`: sequence deep equality (deep-equal((),()) is true,
///    which Example 2 of the paper relies on).
Result<bool> EvalWhere(const flwor::BoolExpr& expr, const Env& env,
                       const xml::Document& doc, PathEvaluator* evaluator);

/// \brief Evaluates one operand to a node sequence; literals yield an empty
/// node list plus `*literal_out` set.
Result<std::vector<xml::NodeId>> EvalOperand(const flwor::Operand& op,
                                             const Env& env,
                                             PathEvaluator* evaluator,
                                             bool* is_literal,
                                             std::string* literal_out);

}  // namespace engine
}  // namespace blossomtree

#endif  // BLOSSOMTREE_ENGINE_WHERE_EVAL_H_
