#ifndef BLOSSOMTREE_ENGINE_PLAN_CACHE_H_
#define BLOSSOMTREE_ENGINE_PLAN_CACHE_H_

#include <memory>
#include <string>

#include "engine/binder.h"
#include "flwor/ast.h"
#include "pattern/blossom_tree.h"
#include "pattern/decompose.h"
#include "util/cache.h"
#include "xpath/ast.h"

namespace blossomtree {
namespace engine {

/// \brief Everything FlworTuples needs short of physical operators: the
/// finalized BlossomTree, its NoK decomposition (Algorithm 1), and the
/// per-slot binding metadata. All three are pure functions of the FLWOR
/// AST, so they are shared read-only across repeat executions (physical
/// operators are rebuilt per query — they are stateful iterators).
struct CompiledFlwor {
  pattern::BlossomTree tree;
  pattern::Decomposition decomposition;
  std::vector<SlotBinding> bindings;
};

/// \brief The compiled form of an absolute path query (result bound to the
/// "result" variable by pattern::BuildFromPath).
struct CompiledPath {
  pattern::BlossomTree tree;
  pattern::Decomposition decomposition;
};

/// \brief The engine's plan cache (DESIGN.md §11): two levels over
/// util::ShardedLruCache.
///
/// Level 1 maps verbatim query text to the parsed flwor::Expr (skips the
/// parser). Level 2 maps a *canonical fingerprint* of the FLWOR or path —
/// whitespace- and formatting-insensitive, injective over every field the
/// compilation consumes — to the compiled artifacts (skips BuildFromFlwor /
/// BuildFromPath, Algorithm 1, and the binder). Each level has its own
/// byte budget carved from CacheOptions::max_bytes, so a flood of distinct
/// query texts cannot evict every compiled tree.
class PlanCache {
 public:
  explicit PlanCache(const util::CacheOptions& options);

  // -- Level 1: query text -> parsed AST -------------------------------------
  std::shared_ptr<const flwor::Expr> GetParsed(const std::string& text);
  void PutParsed(const std::string& text,
                 std::shared_ptr<const flwor::Expr> expr);

  // -- Level 2: canonical fingerprint -> compiled artifacts ------------------
  std::shared_ptr<const CompiledFlwor> GetFlwor(const std::string& key);
  void PutFlwor(const std::string& key,
                std::shared_ptr<const CompiledFlwor> compiled);
  std::shared_ptr<const CompiledPath> GetPath(const std::string& key);
  void PutPath(const std::string& key,
               std::shared_ptr<const CompiledPath> compiled);

  /// \brief Merged counters across the three internal caches.
  util::CacheStats Stats() const;

 private:
  util::ShardedLruCache<std::string, flwor::Expr> parsed_;
  util::ShardedLruCache<std::string, CompiledFlwor> flwor_;
  util::ShardedLruCache<std::string, CompiledPath> path_;
};

/// \brief Canonical fingerprint of a FLWOR: every binding, the where tree,
/// ordering, and the return expression, with literals length-prefixed so
/// the encoding is injective. Two query texts with equal keys compile to
/// identical BlossomTrees, decompositions, and slot bindings.
std::string CanonicalFlworKey(const flwor::Flwor& flwor);

/// \brief Canonical fingerprint of an absolute path query.
std::string CanonicalPathKey(const xpath::PathExpr& path);

}  // namespace engine
}  // namespace blossomtree

#endif  // BLOSSOMTREE_ENGINE_PLAN_CACHE_H_
