#ifndef BLOSSOMTREE_ENGINE_CONSTRUCT_H_
#define BLOSSOMTREE_ENGINE_CONSTRUCT_H_

#include <memory>
#include <string>

#include "util/status.h"
#include "xml/document.h"

namespace blossomtree {
namespace engine {

/// \brief Builds the query result: a sequence of constructed elements /
/// copied source subtrees (the paper's "construction" arrow out of Env in
/// Figure 2). One-shot: build, then ToXml().
class ResultBuilder {
 public:
  explicit ResultBuilder(const xml::Document* source);

  void BeginElement(std::string_view name);
  void AddAttribute(std::string_view name, std::string_view value);
  void AddText(std::string_view text);
  void EndElement();

  /// \brief Deep-copies the subtree of source node `n` at the current
  /// position.
  void CopyNode(xml::NodeId n);

  /// \brief Serializes the constructed top-level sequence (no wrapper).
  Result<std::string> ToXml();

 private:
  void CopyRec(xml::NodeId n);

  const xml::Document* source_;
  xml::Document out_;
  bool finished_ = false;
};

}  // namespace engine
}  // namespace blossomtree

#endif  // BLOSSOMTREE_ENGINE_CONSTRUCT_H_
