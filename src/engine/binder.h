#ifndef BLOSSOMTREE_ENGINE_BINDER_H_
#define BLOSSOMTREE_ENGINE_BINDER_H_

#include <vector>

#include "engine/path_eval.h"
#include "flwor/ast.h"
#include "nestedlist/nested_list.h"
#include "pattern/blossom_tree.h"

namespace blossomtree {
namespace engine {

/// \brief Variable-binding metadata per slot (derived from the FLWOR
/// bindings): whether the slot's blossom is for-bound (one tuple per match)
/// or let-bound (the whole match sequence in one binding).
struct SlotBinding {
  std::string variable;  ///< Empty for non-blossom slots.
  bool is_let = false;
};

/// \brief Computes per-slot binding metadata from the FLWOR clause list.
std::vector<SlotBinding> ComputeSlotBindings(const pattern::BlossomTree& tree,
                                             const flwor::Flwor& flwor);

/// \brief The variable-binding step of Figure 2 (NestedList → Env): expands
/// one pattern tree's NestedList sequence into the environments its blossoms
/// induce — for-bound blossoms branch per match, let-bound blossoms bind
/// their whole group (possibly empty), non-blossom returning slots are
/// traversed without branching.
///
/// Environments are deduplicated on their for-bound node assignments (path
/// expressions bind node *sets*, so a node reachable through two embeddings
/// still yields one binding).
std::vector<Env> EnumerateBindings(
    const pattern::BlossomTree& tree,
    const std::vector<pattern::SlotId>& tops,
    const std::vector<nestedlist::NestedList>& lists,
    const std::vector<SlotBinding>& bindings);

/// \brief Cross product of environment lists from independent pattern
/// trees (the naive nested-loop the paper prescribes for crossing edges).
std::vector<Env> CrossEnvs(const std::vector<std::vector<Env>>& per_tree);

}  // namespace engine
}  // namespace blossomtree

#endif  // BLOSSOMTREE_ENGINE_BINDER_H_
