#include "engine/binder.h"

#include <algorithm>
#include <set>

#include "util/trace.h"

namespace blossomtree {
namespace engine {

using nestedlist::Entry;
using nestedlist::Group;
using nestedlist::NestedList;
using pattern::SlotId;

std::vector<SlotBinding> ComputeSlotBindings(const pattern::BlossomTree& tree,
                                             const flwor::Flwor& flwor) {
  util::TraceSpan span("engine", "bind");
  std::vector<SlotBinding> out(tree.NumSlots());
  for (const flwor::Binding& b : flwor.bindings) {
    SlotId s = tree.SlotOfVariable(b.var);
    if (s == pattern::kNoSlot) continue;
    out[s].variable = b.var;
    out[s].is_let = b.kind == flwor::Binding::Kind::kLet;
  }
  return out;
}

namespace {

/// Merges two env lists as a cross product.
std::vector<Env> Cross(const std::vector<Env>& a, const std::vector<Env>& b) {
  std::vector<Env> out;
  out.reserve(a.size() * b.size());
  for (const Env& x : a) {
    for (const Env& y : b) {
      Env merged = x;
      for (const auto& [k, v] : y) merged[k] = v;
      out.push_back(std::move(merged));
    }
  }
  return out;
}

class Expander {
 public:
  Expander(const pattern::BlossomTree& tree,
           const std::vector<SlotBinding>& bindings)
      : tree_(tree), bindings_(bindings) {}

  /// Envs induced by group `g` of slot `s`.
  std::vector<Env> ExpandSlot(SlotId s, const Group& g) {
    const SlotBinding& sb = bindings_[s];
    if (!sb.variable.empty() && sb.is_let) {
      // let-binding: the whole (possibly empty) sequence in one env.
      Env env;
      std::vector<xml::NodeId>& seq = env[sb.variable];
      for (const Entry& e : g) {
        if (!e.IsPlaceholder()) seq.push_back(e.node);
      }
      // Variables nested below a let-binding would require sequence-valued
      // iteration; the supported FLWOR subset never produces them.
      return {std::move(env)};
    }
    if (!sb.variable.empty()) {
      // for-binding: one branch per match.
      std::vector<Env> out;
      for (const Entry& e : g) {
        if (e.IsPlaceholder()) continue;
        std::vector<Env> below = ExpandChildren(s, e);
        for (Env& env : below) {
          env[sb.variable] = {e.node};
          out.push_back(std::move(env));
        }
      }
      return out;
    }
    // Non-blossom returning slot (join endpoint): no branching — union the
    // environments contributed by every match.
    if (!SubtreeHasVariable(s)) {
      return {Env{}};
    }
    std::vector<Env> out;
    for (const Entry& e : g) {
      if (e.IsPlaceholder()) continue;
      std::vector<Env> below = ExpandChildren(s, e);
      out.insert(out.end(), std::make_move_iterator(below.begin()),
                 std::make_move_iterator(below.end()));
    }
    return out;
  }

 private:
  std::vector<Env> ExpandChildren(SlotId s, const Entry& e) {
    std::vector<Env> result = {Env{}};
    const auto& kids = tree_.slot(s).children;
    for (size_t i = 0; i < kids.size() && i < e.groups.size(); ++i) {
      if (!SubtreeHasVariable(kids[i])) continue;
      std::vector<Env> branch = ExpandSlot(kids[i], e.groups[i]);
      if (branch.empty()) {
        // No matches below. If everything down there is let-bound, the
        // bindings are empty sequences; a for-bound variable means zero
        // iterations, killing this entry's contribution.
        Env lets;
        if (!BindAllLetsEmpty(kids[i], &lets)) return {};
        branch.push_back(std::move(lets));
      }
      result = Cross(result, branch);
    }
    return result;
  }

  /// Binds every variable under `s` (inclusive) to the empty sequence;
  /// returns false if any of them is for-bound.
  bool BindAllLetsEmpty(SlotId s, Env* env) {
    const SlotBinding& sb = bindings_[s];
    if (!sb.variable.empty()) {
      if (!sb.is_let) return false;
      (*env)[sb.variable] = {};
    }
    for (SlotId c : tree_.slot(s).children) {
      if (!BindAllLetsEmpty(c, env)) return false;
    }
    return true;
  }

  bool SubtreeHasVariable(SlotId s) {
    if (!bindings_[s].variable.empty()) return true;
    for (SlotId c : tree_.slot(s).children) {
      if (SubtreeHasVariable(c)) return true;
    }
    return false;
  }

  const pattern::BlossomTree& tree_;
  const std::vector<SlotBinding>& bindings_;
};

}  // namespace

std::vector<Env> EnumerateBindings(const pattern::BlossomTree& tree,
                                   const std::vector<SlotId>& tops,
                                   const std::vector<NestedList>& lists,
                                   const std::vector<SlotBinding>& bindings) {
  Expander expander(tree, bindings);
  std::vector<Env> out;
  for (const NestedList& nl : lists) {
    std::vector<Env> per_list = {Env{}};
    for (size_t t = 0; t < tops.size() && t < nl.tops.size(); ++t) {
      std::vector<Env> branch = expander.ExpandSlot(tops[t], nl.tops[t]);
      if (branch.empty()) {
        per_list.clear();
        break;
      }
      per_list = Cross(per_list, branch);
    }
    out.insert(out.end(), std::make_move_iterator(per_list.begin()),
               std::make_move_iterator(per_list.end()));
  }
  // Dedup on for-bound assignments: the same node reachable through two
  // embeddings (recursive documents) binds once.
  std::set<std::vector<std::pair<std::string, std::vector<xml::NodeId>>>>
      seen;
  std::vector<Env> deduped;
  for (Env& env : out) {
    std::vector<std::pair<std::string, std::vector<xml::NodeId>>> key(
        env.begin(), env.end());
    if (seen.insert(key).second) deduped.push_back(std::move(env));
  }
  return deduped;
}

std::vector<Env> CrossEnvs(const std::vector<std::vector<Env>>& per_tree) {
  std::vector<Env> out = {Env{}};
  for (const auto& envs : per_tree) {
    out = Cross(out, envs);
  }
  return out;
}

}  // namespace engine
}  // namespace blossomtree
