#ifndef BLOSSOMTREE_ENGINE_QUERY_PROFILE_H_
#define BLOSSOMTREE_ENGINE_QUERY_PROFILE_H_

#include <string>
#include <vector>

#include "exec/exec_stats.h"
#include "opt/planner.h"

namespace blossomtree {
namespace engine {

/// \brief One operator's slice of a query profile.
struct OperatorProfile {
  std::string label;           ///< Planner label, e.g. "NokScan(a,b)".
  int depth = 0;               ///< Depth in the operator tree (0 = root).
  double estimated_rows = -1;  ///< Planner estimate; < 0 when not planned
                               ///< with estimate_cardinalities.
  exec::ExecStats stats;
};

/// \brief Per-operator execution profile of one query (DESIGN.md §8).
///
/// Counters come from run-to-completion totals (QueryPlan::FinishAll), so
/// ToText() — which renders only the deterministic counters — is identical
/// at every thread count; ToJson() additionally carries wall times.
struct QueryProfile {
  std::string query;     ///< The query text (or a bench label).
  std::string strategy;  ///< Join strategy of the executed plan.
  unsigned threads = 1;  ///< Resolved intra-query parallelism.
  uint64_t total_wall_nanos = 0;  ///< Wall time of the plan roots.
  std::vector<OperatorProfile> operators;
  /// Snapshot of the engine's MetricsRegistry as a JSON object (empty
  /// unless EngineOptions::collect_metrics): counters plus histogram
  /// summaries with p50/p90/p99. Embedded verbatim by ToJson(); excluded
  /// from ToText(), which stays wall-clock-free.
  std::string metrics_json;

  void AddOperator(std::string label, int depth, const exec::ExecStats& s,
                   double estimated_rows = -1);

  /// \brief JSON object: {"query":..., "strategy":..., "threads":...,
  /// "total_wall_ms":..., "operators":[{...}, ...]}.
  std::string ToJson() const;

  /// \brief Deterministic text form (labels + Counters(), no wall times)
  /// — the cross-thread bitwise-identity surface.
  std::string ToText() const;
};

/// \brief Collects the profile of an executed plan: finishes every operator
/// tree (run-to-completion normalization), then walks the trees recording
/// labels, estimates, and counters; a merged shared scan contributes one
/// extra "MergedNokScan" entry. `query` labels the profile.
QueryProfile BuildQueryProfile(opt::QueryPlan* plan, std::string query,
                               unsigned threads);

}  // namespace engine
}  // namespace blossomtree

#endif  // BLOSSOMTREE_ENGINE_QUERY_PROFILE_H_
