#ifndef BLOSSOMTREE_INDEX_STRUCTURAL_INDEX_H_
#define BLOSSOMTREE_INDEX_STRUCTURAL_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pattern/paths.h"
#include "util/status.h"
#include "xml/document.h"

namespace blossomtree {
namespace index {

/// \brief One entry of a per-tag posting list: the region label of one
/// element with that tag, in document order. Carrying (SubtreeEnd, level)
/// alongside the NodeId lets index-driven structural joins run containment
/// tests without touching the node records at all.
struct PostingEntry {
  xml::NodeId node = 0;
  xml::NodeId subtree_end = 0;
  uint32_t level = 0;
};

/// \brief Per-tag statistics persisted with the index so access-path
/// costing never needs a document pass.
struct TagStats {
  /// Average subtree size (in nodes) of elements with this tag.
  double avg_subtree = 1.0;
  /// Elements of this tag whose string-value exceeded kMaxIndexedValueBytes
  /// and were therefore left out of the value index. A nonzero count
  /// disables *numeric* equality seeks on the tag (an unindexed over-long
  /// value such as "000...07" can still compare numerically equal), while
  /// byte-equality seeks stay exact: string equality needs equal lengths,
  /// and every over-long value is longer than any indexable literal.
  uint64_t overlong_values = 0;
};

/// \brief One node of the path summary (DataGuide): a distinct root-to-
/// element tag path in the document, with the number of elements sharing
/// it. Node 0 is the super-root — the virtual node "~" above the document
/// root that anchors absolute paths.
struct GuideNode {
  xml::TagId tag = xml::kNullTag;  ///< kNullTag only for the super-root.
  uint32_t parent = 0;             ///< kNoGuideNode for the super-root.
  uint64_t count = 0;              ///< Elements with this path (1 for "~").
  std::vector<uint32_t> children;  ///< Rebuilt after decode, not persisted.
};

inline constexpr uint32_t kNoGuideNode = static_cast<uint32_t>(-1);

/// \brief String-value size cap of the value index. Elements whose value
/// exceeds it are counted in TagStats::overlong_values instead of indexed.
inline constexpr size_t kMaxIndexedValueBytes = 256;

/// \brief An equality-seek answer: whether the value index can answer the
/// probe *exactly* under exec::CompareValues semantics, and if so the
/// matching elements in document order.
struct EqualitySeek {
  bool usable = false;
  std::vector<xml::NodeId> nodes;
};

/// \brief Persistent secondary index over one document (DESIGN.md §14):
///  - a path summary (DataGuide) of every distinct root-to-element tag
///    path, for provably-empty short-circuits,
///  - per-tag posting lists of (NodeId, SubtreeEnd, level) region entries,
///    the substrate of index-driven scans and structural joins,
///  - a sorted value index (byte order + numeric order views) answering
///    equality predicates exactly and sizing range predicates.
///
/// Built in one pass by Build(), persisted as a `.btsi` sidecar
/// (index/btsi.h), and attached to plans through opt::PlanOptions::index.
/// The index is immutable after construction and safe to share across
/// concurrent queries.
class StructuralIndex {
 public:
  /// \brief Builds the index from a finished document (one preorder pass
  /// plus value/posting sorts).
  static std::unique_ptr<StructuralIndex> Build(const xml::Document& doc);

  // -- Identity --------------------------------------------------------------

  /// \brief Generation stamp of the source document at build time. For a
  /// sidecar this is compared against the BTSX2 file's on-disk generation:
  /// replacing the corpus file changes the stamp and auto-invalidates the
  /// index (DESIGN.md §14).
  uint64_t generation() const { return generation_; }
  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_elements() const { return num_elements_; }
  const std::vector<std::string>& tag_names() const { return tag_names_; }

  /// \brief True iff this index structurally describes `doc`: node/element
  /// counts and the tag dictionary (names in TagId order) match. The
  /// attach-time compatibility check — TagIds in the index are only
  /// meaningful against a matching dictionary.
  bool Matches(const xml::Document& doc) const;

  // -- Tag postings ----------------------------------------------------------

  /// \brief Region entries of every element with tag `t`, document order.
  std::span<const PostingEntry> Postings(xml::TagId t) const;

  /// \brief Posting-list cardinality of `t` (0 for out-of-range ids).
  uint64_t PostingCount(xml::TagId t) const;

  const TagStats& Stats(xml::TagId t) const;

  // -- Value index -----------------------------------------------------------

  /// \brief Answers `string-value(element with tag t) = literal` from the
  /// value index. `usable` is false when the probe cannot be answered
  /// exactly (over-long literal, or a numeric literal on a tag with
  /// over-long values); callers must then fall back to scanning.
  EqualitySeek SeekEquality(xml::TagId t, std::string_view literal) const;

  /// \brief Exact match count of an equality probe; -1.0 when not exactly
  /// answerable. The cost model's replacement for the fixed 0.1 guess.
  double CountEquality(xml::TagId t, std::string_view literal) const;

  /// \brief Estimated fraction of tag-`t` elements satisfying `op literal`,
  /// in (0, 1]: exact for answerable equality probes, bounded by the
  /// numeric-view order statistics for range operators, 0.1 otherwise.
  double EstimateValueSelectivity(xml::TagId t, xpath::CompareOp op,
                                  std::string_view literal) const;

  // -- Path summary (DataGuide) ----------------------------------------------

  const std::vector<GuideNode>& guide() const { return guide_; }

  /// \brief True iff some document path could satisfy every mandatory path
  /// of a NoK (all anchored at one guide node whose tag matches the shared
  /// first step; "~" anchors at the super-root, "*" anywhere). False is a
  /// *proof* of emptiness; true proves nothing (value/positional
  /// constraints and cross-NoK joins still apply).
  bool CanMatchPaths(const std::vector<pattern::NokPath>& paths) const;

  // -- Persistence raw views (used by index/btsi.cc) -------------------------

  /// One value-index entry: `tag`'s element `node` has the string-value at
  /// [offset, offset+len) of the value pool. Sorted by (tag, bytes, node).
  struct ValueEntry {
    xml::TagId tag;
    xml::NodeId node;
    uint32_t offset;
    uint32_t len;
  };
  /// Numeric view: entries whose value parses as a double, sorted by
  /// (tag, key, node) — the exact-seek substrate for numeric literals.
  struct NumericEntry {
    xml::TagId tag;
    xml::NodeId node;
    double key;
  };

  const std::vector<PostingEntry>& raw_postings() const { return postings_; }
  const std::vector<uint64_t>& raw_posting_offsets() const {
    return posting_offsets_;
  }
  const std::vector<TagStats>& raw_stats() const { return stats_; }
  const std::vector<ValueEntry>& raw_values() const { return values_; }
  const std::vector<NumericEntry>& raw_numerics() const { return numerics_; }
  const std::string& raw_value_pool() const { return value_pool_; }

  /// \brief Assembles an index from decoded parts (index/btsi.cc only;
  /// trusts the caller to have validated them — DecodeBtsi does).
  static std::unique_ptr<StructuralIndex> FromParts(
      uint64_t generation, uint64_t num_nodes, uint64_t num_elements,
      std::vector<std::string> tag_names, std::vector<GuideNode> guide,
      std::vector<uint64_t> posting_offsets,
      std::vector<PostingEntry> postings, std::vector<TagStats> stats,
      std::vector<ValueEntry> values, std::vector<NumericEntry> numerics,
      std::string value_pool);

 private:
  StructuralIndex() = default;

  std::string_view ValueOf(const ValueEntry& e) const {
    return std::string_view(value_pool_).substr(e.offset, e.len);
  }

  /// Rebuilds guide children lists and the per-tag guide-node lists.
  void LinkGuide();

  bool EmbedFrom(uint32_t g, const std::vector<std::string>& steps,
                 size_t i) const;

  uint64_t generation_ = 0;
  uint64_t num_nodes_ = 0;
  uint64_t num_elements_ = 0;
  std::vector<std::string> tag_names_;

  std::vector<GuideNode> guide_;
  std::vector<std::vector<uint32_t>> guide_by_tag_;  ///< Per TagId.

  std::vector<uint64_t> posting_offsets_;  ///< num_tags + 1 prefix offsets.
  std::vector<PostingEntry> postings_;     ///< num_elements entries.
  std::vector<TagStats> stats_;            ///< Per TagId.

  std::vector<ValueEntry> values_;
  std::vector<NumericEntry> numerics_;
  std::string value_pool_;
};

}  // namespace index
}  // namespace blossomtree

#endif  // BLOSSOMTREE_INDEX_STRUCTURAL_INDEX_H_
