#ifndef BLOSSOMTREE_INDEX_BTSI_H_
#define BLOSSOMTREE_INDEX_BTSI_H_

#include <memory>
#include <string>
#include <string_view>

#include "index/structural_index.h"
#include "util/status.h"

namespace blossomtree {
namespace index {

/// BTSI: the structural-index member of the BTSX file family (DESIGN.md
/// §14). A `.btsi` file is a *sidecar* of a BTSX v2 corpus file — written
/// by `btingest --index` next to the `.btsx2`, loaded by storage::DiskStore
/// on open — carrying the path summary (DataGuide), the per-tag posting
/// lists, and the sorted value index of index/structural_index.h.
///
/// The format follows the family's 256-byte header discipline: magic,
/// version, endianness probe, the *source document's generation stamp*
/// (equal to the `.btsx2` file's on-disk generation, so replacing the
/// corpus file auto-invalidates every stale sidecar), counts, and a
/// fixed-size section table. All integers little-endian; sections 16-byte
/// aligned; the image must end exactly at the last section.
///
/// Sections, in file order:
///   0 tag dictionary   u32 length + bytes per name, in TagId order
///   1 guide nodes      num_guide × 16 B {tag u32, parent u32, count u64};
///                      node 0 is the super-root {kNullTag, kNoGuideNode, 1}
///   2 posting offsets  (num_tags + 1) × 8 B prefix offsets
///   3 postings         num_elements × 12 B {node, subtree_end, level}
///   4 tag stats        num_tags × 16 B {avg_subtree f64, overlong u64}
///   5 value entries    num_values × 16 B {tag, node, offset, len},
///                      sorted by (tag, value bytes, node)
///   6 numeric entries  num_numerics × 16 B {tag u32, node u32, key f64},
///                      sorted by (tag, key, node)
///   7 value pool       concatenated value bytes
///
/// Unlike the `.btsx2` (which is mmap'd and served zero-copy), the decoder
/// validates and *copies* the image into an owned StructuralIndex: the
/// index is small relative to its corpus, and owning the arrays keeps the
/// sidecar file unpinned after open.

inline constexpr char kBtsiMagic[8] = {'B', 'T', 'S', 'I', 0, 0, 0, 0};
inline constexpr uint32_t kBtsiVersion = 1;
inline constexpr uint32_t kBtsiEndianProbe = 0x01020304u;
inline constexpr size_t kBtsiHeaderBytes = 256;
inline constexpr size_t kBtsiNumSections = 8;

enum BtsiSection : size_t {
  kBtsiTagDict = 0,
  kBtsiGuide = 1,
  kBtsiPostingOffsets = 2,
  kBtsiPostings = 3,
  kBtsiTagStats = 4,
  kBtsiValueEntries = 5,
  kBtsiNumericEntries = 6,
  kBtsiValuePool = 7,
};

/// \brief Serializes an index into BTSI bytes.
Result<std::string> EncodeBtsi(const StructuralIndex& index);

/// \brief Writes the BTSI encoding to `path`.
Status WriteBtsi(const StructuralIndex& index, const std::string& path);

/// \brief Parses and fully validates a BTSI image (header, section table,
/// dictionary, guide shape, posting monotonicity, value-entry order and
/// pool bounds), returning an owned index. InvalidArgument on any
/// corruption — adversarial inputs must never yield a partially valid
/// index.
Result<std::unique_ptr<StructuralIndex>> DecodeBtsi(std::string_view image);

/// \brief Reads and decodes `path`.
Result<std::unique_ptr<StructuralIndex>> LoadBtsi(const std::string& path);

/// \brief Sidecar naming convention: "<corpus file>.btsi".
std::string BtsiSidecarPath(const std::string& corpus_path);

}  // namespace index
}  // namespace blossomtree

#endif  // BLOSSOMTREE_INDEX_BTSI_H_
