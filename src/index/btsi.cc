#include "index/btsi.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace blossomtree {
namespace index {

namespace {

constexpr uint32_t kU32Max = static_cast<uint32_t>(-1);

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

double GetF64(const char* p) {
  uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

uint64_t Align16(uint64_t v) { return (v + 15) & ~uint64_t{15}; }

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("BTSI: " + what);
}

}  // namespace

Result<std::string> EncodeBtsi(const StructuralIndex& index) {
  if (index.generation() == 0) {
    return Status::InvalidArgument("BTSI: index has no generation stamp");
  }

  std::string tag_dict;
  for (const std::string& name : index.tag_names()) {
    PutU32(&tag_dict, static_cast<uint32_t>(name.size()));
    tag_dict.append(name);
  }

  std::string guide;
  for (const GuideNode& g : index.guide()) {
    PutU32(&guide, g.tag);
    PutU32(&guide, g.parent);
    PutU64(&guide, g.count);
  }

  std::string posting_offsets;
  for (uint64_t off : index.raw_posting_offsets()) {
    PutU64(&posting_offsets, off);
  }

  std::string postings;
  for (const PostingEntry& e : index.raw_postings()) {
    PutU32(&postings, e.node);
    PutU32(&postings, e.subtree_end);
    PutU32(&postings, e.level);
  }

  std::string stats;
  for (const TagStats& s : index.raw_stats()) {
    PutF64(&stats, s.avg_subtree);
    PutU64(&stats, s.overlong_values);
  }

  std::string values;
  for (const StructuralIndex::ValueEntry& e : index.raw_values()) {
    PutU32(&values, e.tag);
    PutU32(&values, e.node);
    PutU32(&values, e.offset);
    PutU32(&values, e.len);
  }

  std::string numerics;
  for (const StructuralIndex::NumericEntry& e : index.raw_numerics()) {
    PutU32(&numerics, e.tag);
    PutU32(&numerics, e.node);
    PutF64(&numerics, e.key);
  }

  const std::string& pool = index.raw_value_pool();
  if (pool.size() > static_cast<size_t>(kU32Max)) {
    return Status::InvalidArgument("BTSI: value pool exceeds 32-bit offsets");
  }

  const std::string* sections[kBtsiNumSections] = {
      &tag_dict, &guide,    &posting_offsets, &postings,
      &stats,    &values,   &numerics,        &pool};
  uint64_t offsets[kBtsiNumSections];
  uint64_t pos = kBtsiHeaderBytes;
  for (size_t i = 0; i < kBtsiNumSections; ++i) {
    pos = Align16(pos);
    offsets[i] = pos;
    pos += sections[i]->size();
  }

  std::string out;
  out.reserve(static_cast<size_t>(pos));
  out.append(kBtsiMagic, sizeof kBtsiMagic);
  PutU32(&out, kBtsiVersion);
  PutU32(&out, kBtsiEndianProbe);
  PutU64(&out, index.generation());
  PutU64(&out, index.num_nodes());
  PutU64(&out, index.num_elements());
  PutU64(&out, index.tag_names().size());
  PutU64(&out, index.guide().size());
  PutU64(&out, index.raw_values().size());
  PutU64(&out, index.raw_numerics().size());
  for (size_t i = 0; i < kBtsiNumSections; ++i) {
    PutU64(&out, offsets[i]);
    PutU64(&out, sections[i]->size());
  }
  out.resize(kBtsiHeaderBytes, '\0');
  for (size_t i = 0; i < kBtsiNumSections; ++i) {
    out.resize(static_cast<size_t>(offsets[i]), '\0');
    out.append(*sections[i]);
  }
  return out;
}

Status WriteBtsi(const StructuralIndex& index, const std::string& path) {
  Result<std::string> encoded = EncodeBtsi(index);
  BT_RETURN_NOT_OK(encoded.status());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  out.write(encoded->data(), static_cast<std::streamsize>(encoded->size()));
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<StructuralIndex>> DecodeBtsi(std::string_view image) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Unsupported("BTSI: requires a little-endian host");
  }
  if (image.size() < kBtsiHeaderBytes) {
    return Corrupt("image smaller than the header");
  }
  const char* p = image.data();
  if (std::memcmp(p, kBtsiMagic, sizeof kBtsiMagic) != 0) {
    return Corrupt("bad magic");
  }
  if (GetU32(p + 8) != kBtsiVersion) return Corrupt("unsupported version");
  if (GetU32(p + 12) != kBtsiEndianProbe) {
    return Corrupt("endianness probe mismatch");
  }

  const uint64_t generation = GetU64(p + 16);
  const uint64_t num_nodes = GetU64(p + 24);
  const uint64_t num_elements = GetU64(p + 32);
  const uint64_t num_tags = GetU64(p + 40);
  const uint64_t num_guide = GetU64(p + 48);
  const uint64_t num_values = GetU64(p + 56);
  const uint64_t num_numerics = GetU64(p + 64);

  if (generation == 0) return Corrupt("zero generation stamp");
  if (num_nodes >= kU32Max || num_tags >= kU32Max || num_guide >= kU32Max) {
    return Corrupt("counts exceed 32-bit ids");
  }
  if (num_elements > num_nodes || num_values > num_elements ||
      num_numerics > num_values || num_guide > num_elements + 1 ||
      num_guide == 0) {
    return Corrupt("implausible counts");
  }

  uint64_t offs[kBtsiNumSections];
  uint64_t sizes[kBtsiNumSections];
  for (size_t i = 0; i < kBtsiNumSections; ++i) {
    offs[i] = GetU64(p + 72 + i * 16);
    sizes[i] = GetU64(p + 72 + i * 16 + 8);
    if (offs[i] < kBtsiHeaderBytes || offs[i] > image.size() ||
        sizes[i] > image.size() - offs[i]) {
      return Corrupt("section out of bounds");
    }
    if (offs[i] % 16 != 0) return Corrupt("misaligned section");
  }
  const uint64_t expect[kBtsiNumSections] = {
      sizes[kBtsiTagDict],  // free-form, validated by parsing below
      num_guide * 16,
      (num_tags + 1) * 8,
      num_elements * 12,
      num_tags * 16,
      num_values * 16,
      num_numerics * 16,
      sizes[kBtsiValuePool]};  // free-form
  for (size_t i = 0; i < kBtsiNumSections; ++i) {
    if (sizes[i] != expect[i]) return Corrupt("section size mismatch");
  }
  if (sizes[kBtsiValuePool] > kU32Max) {
    return Corrupt("value pool exceeds 32-bit offsets");
  }
  // The encoder is canonical: sections in table order, each at the first
  // 16-aligned position after its predecessor, zero padding between them
  // and in the reserved header tail, and the image ending exactly at the
  // last section. Pinning all of that here means every accepted image
  // re-encodes byte-identically — corruption cannot hide in slack bytes.
  uint64_t pos = kBtsiHeaderBytes;
  for (size_t i = 0; i < kBtsiNumSections; ++i) {
    pos = Align16(pos);
    if (offs[i] != pos) return Corrupt("non-canonical section layout");
    pos += sizes[i];
  }
  if (image.size() != pos) return Corrupt("trailing bytes after last section");
  for (size_t i = 72 + kBtsiNumSections * 16; i < kBtsiHeaderBytes; ++i) {
    if (p[i] != 0) return Corrupt("nonzero reserved header bytes");
  }
  uint64_t prev_end = kBtsiHeaderBytes;
  for (size_t i = 0; i < kBtsiNumSections; ++i) {
    for (uint64_t b = prev_end; b < offs[i]; ++b) {
      if (p[b] != 0) return Corrupt("nonzero section padding");
    }
    prev_end = offs[i] + sizes[i];
  }

  // Tag dictionary: names must consume the section exactly.
  std::vector<std::string> tag_names;
  {
    const char* d = p + offs[kBtsiTagDict];
    uint64_t remaining = sizes[kBtsiTagDict];
    tag_names.reserve(static_cast<size_t>(num_tags));
    for (uint64_t t = 0; t < num_tags; ++t) {
      if (remaining < 4) return Corrupt("truncated tag dictionary");
      uint32_t len = GetU32(d);
      d += 4;
      remaining -= 4;
      if (len > remaining) return Corrupt("tag name out of bounds");
      tag_names.emplace_back(d, len);
      d += len;
      remaining -= len;
    }
    if (remaining != 0) return Corrupt("trailing bytes in tag dictionary");
  }

  // Guide: node 0 is the super-root; every other node names an earlier
  // parent and a valid tag, and no parent has two same-tag children (a
  // path summary keys children by tag).
  std::vector<GuideNode> guide;
  {
    const char* d = p + offs[kBtsiGuide];
    guide.reserve(static_cast<size_t>(num_guide));
    std::unordered_map<uint64_t, bool> seen_child;
    for (uint64_t g = 0; g < num_guide; ++g, d += 16) {
      GuideNode node;
      node.tag = GetU32(d);
      node.parent = GetU32(d + 4);
      node.count = GetU64(d + 8);
      if (g == 0) {
        if (node.tag != xml::kNullTag || node.parent != kNoGuideNode) {
          return Corrupt("guide super-root malformed");
        }
      } else {
        if (node.tag >= num_tags) return Corrupt("guide tag out of range");
        if (node.parent >= g) return Corrupt("guide parent not an ancestor");
        if (node.count == 0) return Corrupt("guide node with zero count");
        uint64_t key = (static_cast<uint64_t>(node.parent) << 32) | node.tag;
        if (!seen_child.emplace(key, true).second) {
          return Corrupt("duplicate guide child tag");
        }
      }
      guide.push_back(std::move(node));
    }
  }

  // Posting offsets: monotone prefix sums covering every element.
  std::vector<uint64_t> posting_offsets;
  {
    const char* d = p + offs[kBtsiPostingOffsets];
    posting_offsets.reserve(static_cast<size_t>(num_tags) + 1);
    for (uint64_t t = 0; t <= num_tags; ++t, d += 8) {
      posting_offsets.push_back(GetU64(d));
    }
    if (posting_offsets.front() != 0 || posting_offsets.back() != num_elements) {
      return Corrupt("posting offsets do not cover the elements");
    }
    for (uint64_t t = 0; t < num_tags; ++t) {
      if (posting_offsets[t] > posting_offsets[t + 1]) {
        return Corrupt("posting offsets not monotone");
      }
    }
  }

  // Postings: per-tag strictly ascending NodeIds with sane region labels.
  std::vector<PostingEntry> postings;
  {
    const char* d = p + offs[kBtsiPostings];
    postings.reserve(static_cast<size_t>(num_elements));
    for (uint64_t i = 0; i < num_elements; ++i, d += 12) {
      PostingEntry e;
      e.node = GetU32(d);
      e.subtree_end = GetU32(d + 4);
      e.level = GetU32(d + 8);
      if (e.node >= num_nodes || e.subtree_end >= num_nodes ||
          e.subtree_end < e.node || e.level >= num_nodes) {
        return Corrupt("posting entry out of range");
      }
      postings.push_back(e);
    }
    for (uint64_t t = 0; t < num_tags; ++t) {
      for (uint64_t i = posting_offsets[t] + 1; i < posting_offsets[t + 1];
           ++i) {
        if (postings[i - 1].node >= postings[i].node) {
          return Corrupt("posting list not ascending");
        }
      }
    }
  }

  std::vector<TagStats> stats;
  {
    const char* d = p + offs[kBtsiTagStats];
    stats.reserve(static_cast<size_t>(num_tags));
    for (uint64_t t = 0; t < num_tags; ++t, d += 16) {
      TagStats s;
      s.avg_subtree = GetF64(d);
      s.overlong_values = GetU64(d + 8);
      if (!std::isfinite(s.avg_subtree) || s.avg_subtree < 0) {
        return Corrupt("non-finite tag statistics");
      }
      stats.push_back(s);
    }
  }

  // Value entries: in-bounds pool slices, sorted by (tag, bytes, node).
  const char* pool = p + offs[kBtsiValuePool];
  const uint64_t pool_bytes = sizes[kBtsiValuePool];
  std::vector<StructuralIndex::ValueEntry> values;
  {
    const char* d = p + offs[kBtsiValueEntries];
    values.reserve(static_cast<size_t>(num_values));
    for (uint64_t i = 0; i < num_values; ++i, d += 16) {
      StructuralIndex::ValueEntry e;
      e.tag = GetU32(d);
      e.node = GetU32(d + 4);
      e.offset = GetU32(d + 8);
      e.len = GetU32(d + 12);
      if (e.tag >= num_tags || e.node >= num_nodes) {
        return Corrupt("value entry out of range");
      }
      if (static_cast<uint64_t>(e.offset) + e.len > pool_bytes) {
        return Corrupt("value entry outside the pool");
      }
      if (i > 0) {
        const StructuralIndex::ValueEntry& prev = values.back();
        std::string_view pv(pool + prev.offset, prev.len);
        std::string_view ev(pool + e.offset, e.len);
        bool ordered =
            prev.tag < e.tag ||
            (prev.tag == e.tag &&
             (pv < ev || (pv == ev && prev.node < e.node)));
        if (!ordered) return Corrupt("value entries not sorted");
      }
      values.push_back(e);
    }
  }

  // Numeric entries: finite keys, sorted by (tag, key, node).
  std::vector<StructuralIndex::NumericEntry> numerics;
  {
    const char* d = p + offs[kBtsiNumericEntries];
    numerics.reserve(static_cast<size_t>(num_numerics));
    for (uint64_t i = 0; i < num_numerics; ++i, d += 16) {
      StructuralIndex::NumericEntry e;
      e.tag = GetU32(d);
      e.node = GetU32(d + 4);
      e.key = GetF64(d + 8);
      if (e.tag >= num_tags || e.node >= num_nodes) {
        return Corrupt("numeric entry out of range");
      }
      if (std::isnan(e.key)) return Corrupt("NaN numeric key");
      if (i > 0) {
        const StructuralIndex::NumericEntry& prev = numerics.back();
        bool ordered =
            prev.tag < e.tag ||
            (prev.tag == e.tag &&
             (prev.key < e.key ||
              (!(e.key < prev.key) && prev.node < e.node)));
        if (!ordered) return Corrupt("numeric entries not sorted");
      }
      numerics.push_back(e);
    }
  }

  return StructuralIndex::FromParts(
      generation, num_nodes, num_elements, std::move(tag_names),
      std::move(guide), std::move(posting_offsets), std::move(postings),
      std::move(stats), std::move(values), std::move(numerics),
      std::string(pool, static_cast<size_t>(pool_bytes)));
}

Result<std::unique_ptr<StructuralIndex>> LoadBtsi(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failed for '" + path + "'");
  }
  return DecodeBtsi(buf.str());
}

std::string BtsiSidecarPath(const std::string& corpus_path) {
  return corpus_path + ".btsi";
}

}  // namespace index
}  // namespace blossomtree
