#include "index/structural_index.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace blossomtree {
namespace index {

namespace {

constexpr uint32_t kU32Max = static_cast<uint32_t>(-1);

uint64_t GuideChildKey(uint32_t parent, xml::TagId tag) {
  return (static_cast<uint64_t>(parent) << 32) | tag;
}

}  // namespace

std::unique_ptr<StructuralIndex> StructuralIndex::Build(
    const xml::Document& doc) {
  auto idx = std::unique_ptr<StructuralIndex>(new StructuralIndex());
  idx->generation_ = doc.generation();
  idx->num_nodes_ = doc.NumNodes();
  idx->num_elements_ = doc.NumElements();
  const size_t num_tags = doc.tags().size();
  idx->tag_names_.reserve(num_tags);
  for (xml::TagId t = 0; t < num_tags; ++t) {
    idx->tag_names_.push_back(doc.tags().Name(t));
  }

  // Postings + per-tag average subtree sizes, from the tag streams.
  idx->posting_offsets_.assign(num_tags + 1, 0);
  idx->postings_.reserve(doc.NumElements());
  idx->stats_.assign(num_tags, TagStats{});
  for (xml::TagId t = 0; t < num_tags; ++t) {
    std::span<const xml::NodeId> nodes = doc.TagIndex(t);
    double total = 0;
    for (xml::NodeId n : nodes) {
      xml::NodeId end = doc.SubtreeEnd(n);
      idx->postings_.push_back(PostingEntry{n, end, doc.Level(n)});
      total += static_cast<double>(end - n + 1);
    }
    idx->posting_offsets_[t + 1] = idx->postings_.size();
    if (!nodes.empty()) {
      idx->stats_[t].avg_subtree = total / static_cast<double>(nodes.size());
    }
  }

  // One preorder pass builds the DataGuide and accumulates every element's
  // string-value (capped): each text node appends to all open ancestors,
  // matching Document::StringValue's document-order concatenation.
  idx->guide_.push_back(GuideNode{xml::kNullTag, kNoGuideNode, 1, {}});
  std::unordered_map<uint64_t, uint32_t> guide_child;
  struct Open {
    xml::NodeId subtree_end;
    uint32_t guide;
    xml::TagId tag;
    xml::NodeId node;
    std::string accum;
    bool overlong = false;
  };
  std::vector<Open> stack;
  auto close_one = [&](Open& o) {
    if (o.overlong ||
        idx->value_pool_.size() + o.accum.size() >
            static_cast<size_t>(kU32Max)) {
      ++idx->stats_[o.tag].overlong_values;
      return;
    }
    idx->values_.push_back(
        ValueEntry{o.tag, o.node, static_cast<uint32_t>(idx->value_pool_.size()),
                   static_cast<uint32_t>(o.accum.size())});
    idx->value_pool_.append(o.accum);
  };
  for (xml::NodeId n = 0; n < doc.NumNodes(); ++n) {
    while (!stack.empty() && n > stack.back().subtree_end) {
      close_one(stack.back());
      stack.pop_back();
    }
    if (doc.IsElement(n)) {
      uint32_t parent_guide = stack.empty() ? 0 : stack.back().guide;
      xml::TagId t = doc.Tag(n);
      uint64_t key = GuideChildKey(parent_guide, t);
      auto [it, inserted] = guide_child.try_emplace(
          key, static_cast<uint32_t>(idx->guide_.size()));
      if (inserted) {
        idx->guide_.push_back(GuideNode{t, parent_guide, 0, {}});
      }
      ++idx->guide_[it->second].count;
      stack.push_back(Open{doc.SubtreeEnd(n), it->second, t, n, {}, false});
    } else {
      std::string_view text = doc.Text(n);
      for (Open& o : stack) {
        if (o.overlong) continue;
        if (o.accum.size() + text.size() > kMaxIndexedValueBytes) {
          o.overlong = true;
          o.accum.clear();
          o.accum.shrink_to_fit();
          continue;
        }
        o.accum.append(text);
      }
    }
  }
  while (!stack.empty()) {
    close_one(stack.back());
    stack.pop_back();
  }

  // Sorted views: byte order for string probes, numeric order for numeric
  // ones. Ties break on NodeId so every equality run is in document order.
  std::sort(idx->values_.begin(), idx->values_.end(),
            [&](const ValueEntry& a, const ValueEntry& b) {
              if (a.tag != b.tag) return a.tag < b.tag;
              std::string_view av = idx->ValueOf(a);
              std::string_view bv = idx->ValueOf(b);
              if (av != bv) return av < bv;
              return a.node < b.node;
            });
  idx->numerics_.reserve(idx->values_.size() / 4);
  for (const ValueEntry& e : idx->values_) {
    double d;
    if (ParseDouble(idx->ValueOf(e), &d)) {
      idx->numerics_.push_back(NumericEntry{e.tag, e.node, d});
    }
  }
  std::sort(idx->numerics_.begin(), idx->numerics_.end(),
            [](const NumericEntry& a, const NumericEntry& b) {
              if (a.tag != b.tag) return a.tag < b.tag;
              if (a.key < b.key) return true;
              if (b.key < a.key) return false;
              return a.node < b.node;
            });

  idx->LinkGuide();
  return idx;
}

std::unique_ptr<StructuralIndex> StructuralIndex::FromParts(
    uint64_t generation, uint64_t num_nodes, uint64_t num_elements,
    std::vector<std::string> tag_names, std::vector<GuideNode> guide,
    std::vector<uint64_t> posting_offsets, std::vector<PostingEntry> postings,
    std::vector<TagStats> stats, std::vector<ValueEntry> values,
    std::vector<NumericEntry> numerics, std::string value_pool) {
  auto idx = std::unique_ptr<StructuralIndex>(new StructuralIndex());
  idx->generation_ = generation;
  idx->num_nodes_ = num_nodes;
  idx->num_elements_ = num_elements;
  idx->tag_names_ = std::move(tag_names);
  idx->guide_ = std::move(guide);
  idx->posting_offsets_ = std::move(posting_offsets);
  idx->postings_ = std::move(postings);
  idx->stats_ = std::move(stats);
  idx->values_ = std::move(values);
  idx->numerics_ = std::move(numerics);
  idx->value_pool_ = std::move(value_pool);
  idx->LinkGuide();
  return idx;
}

void StructuralIndex::LinkGuide() {
  guide_by_tag_.assign(tag_names_.size(), {});
  for (uint32_t g = 0; g < guide_.size(); ++g) {
    guide_[g].children.clear();
  }
  for (uint32_t g = 1; g < guide_.size(); ++g) {
    guide_[guide_[g].parent].children.push_back(g);
    if (guide_[g].tag < guide_by_tag_.size()) {
      guide_by_tag_[guide_[g].tag].push_back(g);
    }
  }
}

bool StructuralIndex::Matches(const xml::Document& doc) const {
  if (doc.NumNodes() != num_nodes_) return false;
  if (doc.NumElements() != num_elements_) return false;
  if (doc.tags().size() != tag_names_.size()) return false;
  for (xml::TagId t = 0; t < tag_names_.size(); ++t) {
    if (doc.tags().Name(t) != tag_names_[t]) return false;
  }
  return true;
}

std::span<const PostingEntry> StructuralIndex::Postings(xml::TagId t) const {
  if (t >= tag_names_.size()) return {};
  return std::span<const PostingEntry>(postings_)
      .subspan(posting_offsets_[t], posting_offsets_[t + 1] -
                                        posting_offsets_[t]);
}

uint64_t StructuralIndex::PostingCount(xml::TagId t) const {
  if (t >= tag_names_.size()) return 0;
  return posting_offsets_[t + 1] - posting_offsets_[t];
}

const TagStats& StructuralIndex::Stats(xml::TagId t) const {
  static const TagStats kEmpty;
  return t < stats_.size() ? stats_[t] : kEmpty;
}

EqualitySeek StructuralIndex::SeekEquality(xml::TagId t,
                                           std::string_view literal) const {
  EqualitySeek out;
  if (t >= tag_names_.size()) {
    // Unknown tag: provably zero matches.
    out.usable = true;
    return out;
  }
  double d;
  if (ParseDouble(literal, &d)) {
    // Numeric probe: CompareValues compares numerically whenever the
    // element value parses too, so the answer is the numeric-view run — but
    // only if every value of the tag made it into the index (an over-long
    // numeric value would be missed).
    if (stats_[t].overlong_values != 0) return out;
    auto lo = std::lower_bound(
        numerics_.begin(), numerics_.end(), std::make_pair(t, d),
        [](const NumericEntry& e, const std::pair<xml::TagId, double>& p) {
          if (e.tag != p.first) return e.tag < p.first;
          return e.key < p.second;
        });
    for (auto it = lo; it != numerics_.end() && it->tag == t &&
                       !(d < it->key) && !(it->key < d);
         ++it) {
      out.nodes.push_back(it->node);
    }
    out.usable = true;
    return out;
  }
  // String probe: byte equality (a non-numeric literal never compares
  // numerically). Values longer than the cap are unindexed, and a literal
  // longer than the cap could equal one of them — fall back in that case.
  if (literal.size() > kMaxIndexedValueBytes) return out;
  auto lo = std::lower_bound(
      values_.begin(), values_.end(), std::make_pair(t, literal),
      [this](const ValueEntry& e,
             const std::pair<xml::TagId, std::string_view>& p) {
        if (e.tag != p.first) return e.tag < p.first;
        return ValueOf(e) < p.second;
      });
  for (auto it = lo;
       it != values_.end() && it->tag == t && ValueOf(*it) == literal; ++it) {
    out.nodes.push_back(it->node);
  }
  out.usable = true;
  return out;
}

double StructuralIndex::CountEquality(xml::TagId t,
                                      std::string_view literal) const {
  EqualitySeek seek = SeekEquality(t, literal);
  if (!seek.usable) return -1.0;
  return static_cast<double>(seek.nodes.size());
}

double StructuralIndex::EstimateValueSelectivity(
    xml::TagId t, xpath::CompareOp op, std::string_view literal) const {
  double total = static_cast<double>(PostingCount(t));
  if (total <= 0) return 1.0;
  switch (op) {
    case xpath::CompareOp::kEq: {
      double c = CountEquality(t, literal);
      return c < 0 ? 0.1 : c / total;
    }
    case xpath::CompareOp::kNeq: {
      double c = CountEquality(t, literal);
      return c < 0 ? 0.9 : (total - c) / total;
    }
    case xpath::CompareOp::kLt:
    case xpath::CompareOp::kLe:
    case xpath::CompareOp::kGt:
    case xpath::CompareOp::kGe: {
      double d;
      if (!ParseDouble(literal, &d)) return 0.1;
      // Order statistics over the numeric view: the fraction of numeric
      // values on the satisfying side of the literal. Non-numeric values
      // (string-compared against the number) are approximated as
      // non-matching — an estimate, not an answer.
      auto lo = std::lower_bound(
          numerics_.begin(), numerics_.end(), std::make_pair(t, d),
          [](const NumericEntry& e, const std::pair<xml::TagId, double>& p) {
            if (e.tag != p.first) return e.tag < p.first;
            return e.key < p.second;
          });
      auto tag_begin = std::lower_bound(
          numerics_.begin(), numerics_.end(), t,
          [](const NumericEntry& e, xml::TagId tag) { return e.tag < tag; });
      auto tag_end = std::lower_bound(
          numerics_.begin(), numerics_.end(),
          static_cast<xml::TagId>(t + 1),
          [](const NumericEntry& e, xml::TagId tag) { return e.tag < tag; });
      double below = static_cast<double>(lo - tag_begin);
      double eq = 0;
      for (auto it = lo; it != tag_end && !(d < it->key) && !(it->key < d);
           ++it) {
        ++eq;
      }
      double above = static_cast<double>(tag_end - lo) - eq;
      double hit = 0;
      if (op == xpath::CompareOp::kLt) hit = below;
      if (op == xpath::CompareOp::kLe) hit = below + eq;
      if (op == xpath::CompareOp::kGt) hit = above;
      if (op == xpath::CompareOp::kGe) hit = above + eq;
      return std::min(1.0, std::max(hit / total, 1.0 / (total + 1.0)));
    }
  }
  return 0.1;
}

bool StructuralIndex::EmbedFrom(uint32_t g,
                                const std::vector<std::string>& steps,
                                size_t i) const {
  if (i >= steps.size()) return true;
  for (uint32_t c : guide_[g].children) {
    if (steps[i] != "*" && tag_names_[guide_[c].tag] != steps[i]) continue;
    if (EmbedFrom(c, steps, i + 1)) return true;
  }
  return false;
}

bool StructuralIndex::CanMatchPaths(
    const std::vector<pattern::NokPath>& paths) const {
  if (paths.empty()) return true;
  // All paths of a NoK share steps[0] (the NoK root); anchor candidates are
  // the guide nodes matching it, and every path must embed from the *same*
  // anchor.
  const std::string& root_tag = paths[0].steps[0];
  std::vector<uint32_t> anchors;
  if (root_tag == "~") {
    anchors.push_back(0);
  } else if (root_tag == "*") {
    anchors.reserve(guide_.size() - 1);
    for (uint32_t g = 1; g < guide_.size(); ++g) anchors.push_back(g);
  } else {
    for (xml::TagId t = 0; t < tag_names_.size(); ++t) {
      if (tag_names_[t] == root_tag) {
        anchors = guide_by_tag_[t];
        break;
      }
    }
  }
  for (uint32_t g : anchors) {
    bool all = true;
    for (const pattern::NokPath& p : paths) {
      if (!EmbedFrom(g, p.steps, 1)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace index
}  // namespace blossomtree
