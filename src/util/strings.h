#ifndef BLOSSOMTREE_UTIL_STRINGS_H_
#define BLOSSOMTREE_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace blossomtree {

/// \brief Splits `s` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// \brief Removes leading and trailing XML whitespace (space, tab, CR, LF).
std::string_view Trim(std::string_view s);

/// \brief True if `s` consists only of XML whitespace.
bool IsAllWhitespace(std::string_view s);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Escapes &, <, >, ", ' for inclusion in XML text/attributes.
std::string XmlEscape(std::string_view s);

/// \brief Parses a non-negative decimal integer; returns -1 on failure.
long long ParseNonNegativeInt(std::string_view s);

/// \brief Attempts to parse `s` as a double (XPath number()); returns
/// true and sets *out on success.
bool ParseDouble(std::string_view s, double* out);

}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_STRINGS_H_
