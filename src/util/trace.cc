#include "util/trace.h"

#include <cstdio>

namespace blossomtree {
namespace util {

namespace {

/// Minimal JSON string escaping for event names (categories are static
/// identifiers and need none).
void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

std::vector<TraceEvent> TraceRing::Snapshot() const {
  uint64_t count = count_.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  if (count == 0) return out;
  uint64_t n = count < kCapacity ? count : kCapacity;
  out.reserve(n);
  uint64_t start = count - n;  // Oldest retained event.
  for (uint64_t i = start; i < count; ++i) {
    out.push_back(events_[i % kCapacity]);
  }
  return out;
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // Leaked: outlives exiting threads.
  return *tracer;
}

std::shared_ptr<TraceRing> Tracer::RegisterRing() {
  std::lock_guard<std::mutex> lock(mu_);
  auto ring = std::make_shared<TraceRing>(next_tid_++);
  rings_.push_back(ring);
  return ring;
}

TraceRing* Tracer::Ring() {
  // The registry keeps a shared_ptr, so a ring written by a pool worker
  // remains exportable after that worker exits.
  thread_local std::shared_ptr<TraceRing> ring = RegisterRing();
  return ring.get();
}

void Tracer::Enable() {
  Clear();
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Record(char ph, const char* cat, std::string_view name,
                    double value) {
  if (!enabled()) return;
  uint64_t ts = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  Ring()->Record(ph, cat, name, value, ts);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) ring->Clear();
}

uint64_t Tracer::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->DroppedCount();
  return total;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& ring : rings_) {
    uint64_t n = ring->TotalRecorded();
    total += n < TraceRing::kCapacity ? n : TraceRing::kCapacity;
  }
  return total;
}

std::string Tracer::ExportJson() const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::string out = "{\"traceEvents\": [\n";
  out +=
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0, \"pid\": 1, "
      "\"tid\": 0, \"args\": {\"name\": \"blossomtree\"}}";
  for (const auto& ring : rings) {
    char meta[128];
    std::snprintf(meta, sizeof(meta),
                  ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"ts\": 0, "
                  "\"pid\": 1, \"tid\": %u, \"args\": {\"name\": \"%s%u\"}}",
                  ring->tid(), ring->tid() == 0 ? "main/" : "thread/",
                  ring->tid());
    out += meta;
    for (const TraceEvent& e : ring->Snapshot()) {
      char buf[96];
      // Chrome "ts" is in microseconds; fractional values are accepted.
      std::snprintf(buf, sizeof(buf),
                    ",\n  {\"ph\": \"%c\", \"ts\": %.3f, \"pid\": 1, "
                    "\"tid\": %u, \"cat\": \"%s\", \"name\": \"",
                    e.ph, static_cast<double>(e.ts_nanos) / 1e3, ring->tid(),
                    e.cat != nullptr ? e.cat : "");
      out += buf;
      AppendEscaped(&out, e.name);
      out += '"';
      if (e.ph == 'C') {
        std::snprintf(buf, sizeof(buf), ", \"args\": {\"value\": %.3f}",
                      e.value);
        out += buf;
      } else if (e.ph == 'i') {
        out += ", \"s\": \"t\"";  // Thread-scoped instant.
      }
      out += '}';
    }
  }
  uint64_t dropped = 0;
  for (const auto& ring : rings) dropped += ring->DroppedCount();
  out += "\n], \"droppedEvents\": " + std::to_string(dropped) +
         ", \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Status Tracer::ExportJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  std::string json = ExportJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace util
}  // namespace blossomtree
