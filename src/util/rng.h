#ifndef BLOSSOMTREE_UTIL_RNG_H_
#define BLOSSOMTREE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace blossomtree {

/// \brief Deterministic, fast pseudo-random generator (xorshift128+).
///
/// Used by the synthetic data generators so that a (kind, scale, seed)
/// triple always yields byte-identical documents — tests and benches rely
/// on that reproducibility.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding to avoid correlated low-entropy states.
    state_[0] = SplitMix(&seed);
    state_[1] = SplitMix(&seed);
  }

  /// \brief Next raw 64-bit value.
  uint64_t Next() {
    uint64_t x = state_[0];
    const uint64_t y = state_[1];
    state_[0] = y;
    x ^= x << 23;
    state_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state_[1] + y;
  }

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// \brief Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// \brief Bernoulli trial with probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// \brief Samples an index according to non-negative `weights`.
  ///
  /// Returns weights.size() - 1 if all weights are zero.
  size_t Weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

 private:
  static uint64_t SplitMix(uint64_t* s) {
    uint64_t z = (*s += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  uint64_t state_[2];
};

}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_RNG_H_
