#ifndef BLOSSOMTREE_UTIL_CACHE_H_
#define BLOSSOMTREE_UTIL_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/resource_guard.h"

namespace blossomtree {
namespace util {

/// \brief Configuration knob for one cache level (EngineOptions::plan_cache
/// / EngineOptions::result_cache). Disabled by default so every existing
/// counter, profile, and perf-gate baseline stays bitwise-identical unless a
/// caller opts in (DESIGN.md §11).
struct CacheOptions {
  bool enabled = false;
  /// Byte budget for the cache's entries (approximate, charged through a
  /// util::ResourceGuard byte budget). Inserting past the budget evicts
  /// least-recently-used entries first.
  uint64_t max_bytes = 64ull << 20;
  /// Number of independently locked shards; 1 = a single LRU list.
  size_t shards = 8;
};

/// \brief Point-in-time counters of one cache (monotonic except `entries`
/// and `bytes`, which are gauges).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

/// \brief A sharded, thread-safe LRU cache with a byte budget (DESIGN.md
/// §11). Values are immutable and handed out as shared_ptr<const Value>, so
/// a hit stays valid even if the entry is evicted concurrently. The byte
/// budget is accounted through an internal util::ResourceGuard via the
/// non-tripping TryReserveBytes/ReleaseBytes protocol: an insert that does
/// not fit evicts LRU entries (its own shard first, then the other shards
/// round-robin) until the reservation succeeds, and is dropped on the floor
/// if the budget cannot be met even with an empty cache.
///
/// Recency is tracked per shard, so eviction order is LRU within a shard
/// and approximately LRU globally — the standard sharded-LRU trade for not
/// serializing every Get on one lock.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(uint64_t max_bytes, size_t shards = 8)
      : budget_(BudgetLimits(max_bytes)),
        max_bytes_(max_bytes),
        shards_(shards == 0 ? 1 : shards) {}

  explicit ShardedLruCache(const CacheOptions& options)
      : ShardedLruCache(options.max_bytes, options.shards) {}

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// \brief Looks up `key`, refreshing its recency. Returns nullptr on miss.
  std::shared_ptr<const Value> Get(const Key& key) {
    Shard& shard = shards_[ShardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// \brief Inserts (or replaces) `key` at a cost of `bytes`, evicting LRU
  /// entries as needed. An entry larger than the whole budget is not cached.
  void Put(const Key& key, std::shared_ptr<const Value> value,
           uint64_t bytes) {
    if (bytes > max_bytes_) return;
    size_t target = ShardOf(key);
    // Replace: drop any existing entry for the key before reserving, so the
    // old footprint does not count against the new reservation.
    {
      Shard& shard = shards_[target];
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) EraseLocked(&shard, it);
    }
    // Reserve the footprint, evicting round-robin from this shard outwards.
    // At most one shard lock is held at a time (inside EvictOneFrom), so
    // concurrent Puts on different shards cannot deadlock.
    size_t scan = target;
    size_t empty_streak = 0;
    while (!budget_.TryReserveBytes(bytes)) {
      if (EvictOneFrom(&shards_[scan])) {
        empty_streak = 0;
      } else if (++empty_streak >= shards_.size()) {
        return;  // Nothing left to evict and still over budget: give up.
      } else {
        scan = (scan + 1) % shards_.size();
      }
    }
    Shard& shard = shards_[target];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Lost a same-key race while unlocked; keep the incumbent.
      budget_.ReleaseBytes(bytes);
      return;
    }
    shard.lru.push_front(Node{key, std::move(value), bytes});
    shard.map.emplace(shard.lru.front().key, shard.lru.begin());
    insertions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// \brief Removes every entry and returns the whole byte budget.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const Node& node : shard.lru) budget_.ReleaseBytes(node.bytes);
      entries_.fetch_sub(shard.lru.size(), std::memory_order_relaxed);
      shard.map.clear();
      shard.lru.clear();
    }
  }

  CacheStats Stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    s.bytes = budget_.BytesCharged();
    return s;
  }

  uint64_t max_bytes() const { return max_bytes_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Node {
    Key key;
    std::shared_ptr<const Value> value;
    uint64_t bytes;
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Node> lru;
    std::unordered_map<Key, typename std::list<Node>::iterator, Hash> map;
  };

  static QueryLimits BudgetLimits(uint64_t max_bytes) {
    QueryLimits limits;
    limits.max_nl_bytes = max_bytes;
    return limits;
  }

  size_t ShardOf(const Key& key) const {
    return Hash{}(key) % shards_.size();
  }

  /// Erases `it` from `shard` (lock held) and returns its bytes.
  void EraseLocked(Shard* shard,
                   typename std::unordered_map<
                       Key, typename std::list<Node>::iterator, Hash>::iterator
                       it) {
    budget_.ReleaseBytes(it->second->bytes);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    shard->lru.erase(it->second);
    shard->map.erase(it);
  }

  /// Evicts the least-recently-used entry of `shard`; false when empty.
  bool EvictOneFrom(Shard* shard) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->lru.empty()) return false;
    const Node& victim = shard->lru.back();
    budget_.ReleaseBytes(victim.bytes);
    shard->map.erase(victim.key);
    shard->lru.pop_back();
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Byte-budget ledger: max_nl_bytes = the cache budget, reserved and
  /// returned via the non-tripping TryReserveBytes/ReleaseBytes protocol.
  ResourceGuard budget_;
  const uint64_t max_bytes_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> entries_{0};
};

}  // namespace util
}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_CACHE_H_
