#ifndef BLOSSOMTREE_UTIL_STATUS_H_
#define BLOSSOMTREE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace blossomtree {

/// \brief Error categories used across the library.
///
/// Follows the RocksDB/Arrow convention of a lightweight status object
/// returned by fallible operations instead of throwing exceptions across
/// the public API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed (bad query, ...).
  kParseError,        ///< XML / XPath / FLWOR input failed to parse.
  kNotFound,          ///< A referenced entity (tag, variable, file) is absent.
  kOutOfRange,        ///< An index (Dewey ID, position) is out of bounds.
  kUnsupported,       ///< Construct is outside the implemented subset.
  kInternal,          ///< Invariant violation inside the library.
  kIOError,           ///< Filesystem-level failure.
  kResourceExhausted, ///< A configured limit (memory, DNF time) was hit.
  kCancelled,         ///< The caller cancelled the operation cooperatively.
};

/// \brief Human-readable name of a status code (e.g. "ParseError").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus a contextual message.
///
/// `Status` is cheap to copy when OK (no allocation) and carries an
/// explanatory message otherwise. Use the factory functions
/// (`Status::ParseError(...)` etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Formats as "Code: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-error container, analogous to arrow::Result.
///
/// Holds either a `T` or a non-OK `Status`. Access the value only after
/// checking `ok()`; `ValueOrDie()` asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit conversion from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }
  const T& ValueOrDie() const& { return value(); }

  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Propagates a non-OK Status out of the enclosing function.
#define BT_RETURN_NOT_OK(expr)            \
  do {                                    \
    ::blossomtree::Status _st = (expr);   \
    if (!_st.ok()) return _st;            \
  } while (0)

/// \brief Assigns a Result's value to `lhs` or propagates its error.
#define BT_ASSIGN_OR_RETURN(lhs, rexpr)         \
  auto BT_CONCAT_(_res, __LINE__) = (rexpr);    \
  if (!BT_CONCAT_(_res, __LINE__).ok())         \
    return BT_CONCAT_(_res, __LINE__).status(); \
  lhs = BT_CONCAT_(_res, __LINE__).MoveValue()

#define BT_CONCAT_IMPL_(a, b) a##b
#define BT_CONCAT_(a, b) BT_CONCAT_IMPL_(a, b)

}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_STATUS_H_
