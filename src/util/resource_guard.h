#ifndef BLOSSOMTREE_UTIL_RESOURCE_GUARD_H_
#define BLOSSOMTREE_UTIL_RESOURCE_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>

#include "util/status.h"

namespace blossomtree {
namespace util {

/// \brief Default recursion-depth cap for the FLWOR/XPath recursive-descent
/// parsers. Hostile inputs like `not((((…))))` or `a[a[a[…]]]` recurse once
/// per nesting level; without a cap a ~100k-deep input overflows the stack.
/// 256 levels is far beyond any legitimate query in the paper's workload
/// while keeping the worst-case parser stack a few hundred KiB.
constexpr size_t kDefaultMaxParseDepth = 256;

/// \brief Input-size/depth budgets for the three front-door parsers.
struct ParseLimits {
  /// Maximum recursion depth (expression/predicate/constructor nesting).
  size_t max_depth = kDefaultMaxParseDepth;
  /// Maximum input size in bytes; SIZE_MAX = unlimited.
  size_t max_input_bytes = std::numeric_limits<size_t>::max();
};

/// \brief Per-query resource budgets (DESIGN.md §9). Every limit defaults to
/// `kUnlimited`; a limit of 0 is an explicit zero budget and rejects the
/// first unit of consumption ("reject immediately"), it does NOT mean
/// unlimited.
struct QueryLimits {
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  /// Wall-clock budget for one query, measured from ResourceGuard::Arm().
  uint64_t deadline_millis = kUnlimited;
  /// Budget on NestedList cells materialized across all operators of the
  /// query (the paper's intermediate-result memory metric).
  uint64_t max_nl_cells = kUnlimited;
  /// Budget on approximate NestedList bytes (cells costed at the fixed
  /// per-entry footprint by the charging operator).
  uint64_t max_nl_bytes = kUnlimited;
  /// Budget on result rows (FLWOR tuples emitted / path matches returned).
  uint64_t max_result_rows = kUnlimited;
  /// Parser recursion-depth cap for EvaluateQuery's FLWOR/XPath parsing.
  uint64_t max_parse_depth = kDefaultMaxParseDepth;
  /// Maximum query-text size in bytes accepted by EvaluateQuery.
  uint64_t max_query_bytes = kUnlimited;

  ParseLimits ToParseLimits() const {
    ParseLimits p;
    p.max_depth = max_parse_depth > std::numeric_limits<size_t>::max()
                      ? std::numeric_limits<size_t>::max()
                      : static_cast<size_t>(max_parse_depth);
    p.max_input_bytes = max_query_bytes > std::numeric_limits<size_t>::max()
                            ? std::numeric_limits<size_t>::max()
                            : static_cast<size_t>(max_query_bytes);
    return p;
  }
};

/// \brief A thread-safe cooperative cancellation flag. Cancel() may be
/// called from any thread (e.g. a deadline watchdog or a client
/// disconnect); workers observe it at batch boundaries via Cancelled().
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief Shared per-query governor: carries the limits, the cancellation
/// token, and the consumption counters, and latches the first violation as
/// a Status (DESIGN.md §9).
///
/// The protocol is *cooperative*: operators, the NoK matcher, and thread-
/// pool workers call the charge/check methods at batch boundaries. Once any
/// limit trips (or the token is cancelled) every subsequent check returns
/// false, so iterators drain to a clean end-of-stream, partial buffers are
/// freed by normal destruction, and the engine surfaces `status()` —
/// `kResourceExhausted` for budget violations, `kCancelled` for external
/// cancellation — instead of a partial result. Checks never mutate results:
/// a run whose limits are not hit is bitwise-identical to an unguarded run
/// at every thread count.
class ResourceGuard {
 public:
  explicit ResourceGuard(QueryLimits limits = {});

  /// \brief Starts a new query: resets counters and the tripped state and
  /// stamps the wall-clock deadline from "now". Does NOT reset the
  /// cancellation token — an externally cancelled engine stays cancelled
  /// until the owner calls token()->Reset().
  void Arm();

  /// \brief Replaces the limits (effective from the next Arm()).
  void set_limits(const QueryLimits& limits) { limits_ = limits; }
  const QueryLimits& limits() const { return limits_; }

  CancellationToken* token() { return &token_; }

  /// \brief Cheap tripped-state probe (one relaxed atomic load) for hot
  /// inner loops that cannot afford a clock sample per iteration.
  bool Tripped() const { return tripped_.load(std::memory_order_acquire); }

  /// \brief Full batch-boundary check: cancellation token, then deadline
  /// (samples the steady clock). Returns true while the query may proceed.
  bool Check();

  /// \brief Charges `cells` NestedList cells / `bytes` approximate bytes
  /// against the budgets. Returns false (and trips) when over budget.
  bool ChargeCells(uint64_t cells, uint64_t bytes);

  /// \brief Charges emitted result rows. Returns false when over budget.
  bool ChargeRows(uint64_t rows);

  /// \brief Non-tripping byte reservation against `max_nl_bytes`, for
  /// long-lived consumers (the util/cache LRU budgets) that respond to
  /// refusal by evicting and retrying rather than failing a query. Returns
  /// false when the reservation would exceed the budget; the guard is NOT
  /// tripped and no bytes are charged in that case.
  bool TryReserveBytes(uint64_t bytes);

  /// \brief Returns bytes taken with TryReserveBytes (eviction / clear).
  void ReleaseBytes(uint64_t bytes);

  /// \brief OK until tripped; afterwards the latched first violation.
  Status status() const;

  uint64_t CellsCharged() const {
    return cells_.load(std::memory_order_relaxed);
  }
  uint64_t BytesCharged() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  uint64_t RowsCharged() const {
    return rows_.load(std::memory_order_relaxed);
  }

  /// \brief Trips the guard with an explicit status (used by the engine to
  /// latch `kCancelled` and by tests). First trip wins; later calls no-op.
  void Trip(StatusCode code, std::string msg);

 private:
  QueryLimits limits_;
  CancellationToken token_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<uint64_t> cells_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<bool> tripped_{false};
  mutable std::mutex mu_;
  Status status_;  ///< Guarded by mu_; set once when tripped_ flips.
};

}  // namespace util
}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_RESOURCE_GUARD_H_
