#include "util/strings.h"

#include <cctype>
#include <climits>
#include <cstdlib>

namespace blossomtree {

namespace {
bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsXmlSpace(s[b])) ++b;
  while (e > b && IsXmlSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!IsXmlSpace(c)) return false;
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

long long ParseNonNegativeInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return -1;
  long long v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return -1;
    int d = c - '0';
    // Guard before multiplying: signed overflow is UB, so the old
    // post-hoc `v < 0` check was itself undefined.
    if (v > (LLONG_MAX - d) / 10) return -1;
    v = v * 10 + d;
  }
  return v;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // XPath numeric literals are plain decimal/scientific forms. strtod also
  // accepts "inf", "nan", and hex floats ("0x1p3"), which must compare as
  // strings instead — reject any character outside the decimal grammar,
  // and require at least one digit ("e" or "." alone parse as 0 otherwise).
  bool has_digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      has_digit = true;
    } else if (c != '+' && c != '-' && c != '.' && c != 'e' && c != 'E') {
      return false;
    }
  }
  if (!has_digit) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace blossomtree
