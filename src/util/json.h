#ifndef BLOSSOMTREE_UTIL_JSON_H_
#define BLOSSOMTREE_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace blossomtree {
namespace util {

/// \brief A parsed JSON value — the minimal reader the tracing tests and
/// the bench regression gate need (objects, arrays, strings, numbers,
/// booleans, null). Not a serializer: the repo's JSON *writers* stay
/// hand-rolled per artifact.
///
/// Numbers are stored as double (sufficient for the counters and
/// timestamps the artifacts carry; 2^53 exceeds every counter we emit).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const {
    return object_;
  }

  /// \brief Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// \brief Convenience: Find(key) if it is a number, else `fallback`.
  double NumberOr(std::string_view key, double fallback) const;

  /// \brief Convenience: Find(key) if it is a string, else `fallback`.
  std::string StringOr(std::string_view key, std::string fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// \brief Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Depth-limited against hostile input.
Result<JsonValue> ParseJson(std::string_view input);

/// \brief ParseJson over a file's contents.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace util
}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_JSON_H_
