#include "util/json.h"

#include <cstdio>
#include <cstdlib>

namespace blossomtree {
namespace util {

namespace {
constexpr size_t kMaxJsonDepth = 128;
}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString()
                                        : std::move(fallback);
}

/// Recursive-descent JSON reader (depth-capped; see kMaxJsonDepth).
class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : input_(input) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    BT_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError("json: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (input_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxJsonDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= input_.size()) return Error("unexpected end of input");
    char c = input_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->kind_ = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    Consume('{');
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      BT_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      BT_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object_.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    Consume('[');
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      BT_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    Consume('"');
    out->clear();
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) break;
      char esc = input_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = input_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are stored as
          // two 3-byte sequences — fine for the identifiers we read).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= input_.size() ||
        !(input_[pos_] >= '0' && input_[pos_] <= '9')) {
      return Error("invalid number");
    }
    while (pos_ < input_.size() && input_[pos_] >= '0' &&
           input_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= input_.size() ||
          !(input_[pos_] >= '0' && input_[pos_] <= '9')) {
        return Error("invalid number");
      }
      while (pos_ < input_.size() && input_[pos_] >= '0' &&
             input_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < input_.size() &&
        (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < input_.size() &&
          (input_[pos_] == '+' || input_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= input_.size() ||
          !(input_[pos_] >= '0' && input_[pos_] <= '9')) {
        return Error("invalid number");
      }
      while (pos_ < input_.size() && input_[pos_] >= '0' &&
             input_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The span [start, pos_) is a validated JSON number, so strtod cannot
    // wander past it (JSON number grammar is a strtod prefix).
    std::string text(input_.substr(start, pos_ - start));
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = std::strtod(text.c_str(), nullptr);
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

Result<JsonValue> ParseJson(std::string_view input) {
  return JsonParser(input).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open json file: " + path);
  }
  std::string contents;
  char buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read failed for json file: " + path);
  }
  return ParseJson(contents);
}

}  // namespace util
}  // namespace blossomtree
