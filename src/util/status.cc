#include "util/status.h"

namespace blossomtree {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace blossomtree
