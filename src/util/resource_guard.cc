#include "util/resource_guard.h"

#include <utility>

#include "util/trace.h"

namespace blossomtree {
namespace util {

ResourceGuard::ResourceGuard(QueryLimits limits) : limits_(limits) {}

void ResourceGuard::Arm() {
  cells_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  rows_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    status_ = Status::OK();
  }
  has_deadline_ = limits_.deadline_millis != QueryLimits::kUnlimited;
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_millis);
  }
  // Release: a worker that observes tripped_ == false afterwards also
  // observes the reset counters and deadline above.
  tripped_.store(false, std::memory_order_release);
}

void ResourceGuard::Trip(StatusCode code, std::string msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tripped_.load(std::memory_order_relaxed)) return;  // First trip wins.
  // The first trip lands on the query timeline as an instant event, so a
  // trace shows exactly which operator span the budget ran out under.
  if (Tracer::Get().enabled()) TraceInstant("guard", "trip: " + msg);
  status_ = code == StatusCode::kCancelled
                ? Status::Cancelled(std::move(msg))
                : Status::ResourceExhausted(std::move(msg));
  tripped_.store(true, std::memory_order_release);
}

bool ResourceGuard::Check() {
  if (Tripped()) return false;
  if (token_.Cancelled()) {
    Trip(StatusCode::kCancelled, "query cancelled");
    return false;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Trip(StatusCode::kResourceExhausted,
         "deadline of " + std::to_string(limits_.deadline_millis) +
             "ms exceeded");
    return false;
  }
  return true;
}

bool ResourceGuard::ChargeCells(uint64_t cells, uint64_t bytes) {
  if (Tripped()) return false;
  if (limits_.max_nl_cells != QueryLimits::kUnlimited) {
    uint64_t total =
        cells_.fetch_add(cells, std::memory_order_relaxed) + cells;
    if (total > limits_.max_nl_cells) {
      Trip(StatusCode::kResourceExhausted,
           "NestedList cell budget of " +
               std::to_string(limits_.max_nl_cells) + " cells exceeded");
      return false;
    }
  } else {
    cells_.fetch_add(cells, std::memory_order_relaxed);
  }
  if (limits_.max_nl_bytes != QueryLimits::kUnlimited) {
    uint64_t total =
        bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (total > limits_.max_nl_bytes) {
      Trip(StatusCode::kResourceExhausted,
           "NestedList byte budget of " +
               std::to_string(limits_.max_nl_bytes) + " bytes exceeded");
      return false;
    }
  } else {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  return true;
}

bool ResourceGuard::ChargeRows(uint64_t rows) {
  if (Tripped()) return false;
  if (limits_.max_result_rows != QueryLimits::kUnlimited) {
    uint64_t total = rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
    if (total > limits_.max_result_rows) {
      Trip(StatusCode::kResourceExhausted,
           "result-row budget of " +
               std::to_string(limits_.max_result_rows) + " rows exceeded");
      return false;
    }
  } else {
    rows_.fetch_add(rows, std::memory_order_relaxed);
  }
  return true;
}

bool ResourceGuard::TryReserveBytes(uint64_t bytes) {
  uint64_t cur = bytes_.load(std::memory_order_relaxed);
  do {
    if (limits_.max_nl_bytes != QueryLimits::kUnlimited &&
        cur + bytes > limits_.max_nl_bytes) {
      return false;
    }
  } while (!bytes_.compare_exchange_weak(cur, cur + bytes,
                                         std::memory_order_relaxed));
  return true;
}

void ResourceGuard::ReleaseBytes(uint64_t bytes) {
  bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status ResourceGuard::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace util
}  // namespace blossomtree
