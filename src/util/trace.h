#ifndef BLOSSOMTREE_UTIL_TRACE_H_
#define BLOSSOMTREE_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace blossomtree {
namespace util {

/// \brief One timeline event, 64 bytes so a ring slot is one cache line.
///
/// `ph` follows the Chrome trace_event phase alphabet: 'B'/'E' span
/// begin/end (matched per-thread by nesting), 'i' instant, 'C' counter.
/// `cat` must point at a string with static storage duration (it is not
/// copied); `name` is copied inline and truncated to fit the slot.
struct TraceEvent {
  uint64_t ts_nanos = 0;       ///< Nanoseconds since the tracer epoch.
  const char* cat = nullptr;   ///< Static category string ("engine", ...).
  double value = 0;            ///< Counter value for 'C' events.
  char ph = 0;                 ///< 'B', 'E', 'i', or 'C'.
  char name[39] = {};          ///< NUL-terminated, truncated.
};
static_assert(sizeof(TraceEvent) == 64, "one cache line per event");

/// \brief A per-thread ring of trace events. Exactly one thread writes
/// (lock-free: a plain slot store plus one relaxed counter increment);
/// the exporter reads it only after that writing has happened-before the
/// export (e.g. queries finished, pool futures joined).
class TraceRing {
 public:
  /// ~64 B * 16384 = 1 MiB per recording thread.
  static constexpr size_t kCapacity = 16384;

  explicit TraceRing(uint32_t tid) : tid_(tid), events_(kCapacity) {}

  uint32_t tid() const { return tid_; }

  void Record(char ph, const char* cat, std::string_view name, double value,
              uint64_t ts_nanos) {
    TraceEvent& e = events_[count_.load(std::memory_order_relaxed) %
                            kCapacity];
    e.ts_nanos = ts_nanos;
    e.cat = cat;
    e.value = value;
    e.ph = ph;
    size_t n = name.size() < sizeof(e.name) - 1 ? name.size()
                                                : sizeof(e.name) - 1;
    name.copy(e.name, n);
    e.name[n] = '\0';
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Oldest-first snapshot of the retained window (at most kCapacity; older
  /// events are overwritten once the ring wraps).
  std::vector<TraceEvent> Snapshot() const;

  /// Total events ever recorded (not capped at the capacity).
  uint64_t TotalRecorded() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// \brief Events this ring has overwritten (recorded but no longer
  /// retained): the ring drops the *oldest* events once it wraps, and this
  /// is the exact count of how many — the `trace.dropped_events` surface
  /// (DESIGN.md §15) that turns silent truncation into a visible number.
  uint64_t DroppedCount() const {
    uint64_t c = count_.load(std::memory_order_relaxed);
    return c > kCapacity ? c - kCapacity : 0;
  }

  void Clear() { count_.store(0, std::memory_order_relaxed); }

 private:
  uint32_t tid_;
  std::atomic<uint64_t> count_{0};
  std::vector<TraceEvent> events_;
};

/// \brief Process-wide query-lifecycle tracer (DESIGN.md §10).
///
/// Disabled (the default) it costs one relaxed atomic load per probe — the
/// hot paths check `enabled()` before building span names. Enabled, every
/// thread records into its own TraceRing; ExportJson() serializes all rings
/// as Chrome trace_event JSON loadable in chrome://tracing or Perfetto.
///
/// Export is snapshot-based and must not race active recording: callers
/// export after the traced query has completed (pool futures joined), which
/// establishes the needed happens-before edge.
class Tracer {
 public:
  static Tracer& Get();

  /// \brief Starts (or restarts) a capture: clears all rings and stamps the
  /// time epoch. Idempotent only in the sense that re-enabling resets.
  void Enable();
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Records one event on the calling thread's ring (no-op when
  /// disabled). `cat` must have static storage duration.
  void Record(char ph, const char* cat, std::string_view name,
              double value = 0);

  /// \brief Discards all recorded events (rings stay registered).
  void Clear();

  /// \brief Events currently retained across all rings.
  size_t EventCount() const;

  /// \brief Events recorded but overwritten (ring wrap) across all rings —
  /// non-zero means the JSON export is a truncated window. Exposed in the
  /// trace export itself ("droppedEvents") and as a service observability
  /// gauge (`trace.dropped_events`, DESIGN.md §15).
  uint64_t DroppedEvents() const;

  /// \brief Chrome trace_event JSON: {"traceEvents": [...],
  /// "displayTimeUnit": "ms"} with process/thread metadata records. Every
  /// event object carries "ph", "ts" (microseconds), "pid", and "tid".
  std::string ExportJson() const;

  /// \brief ExportJson() to a file.
  Status ExportJsonFile(const std::string& path) const;

 private:
  Tracer() = default;

  TraceRing* Ring();
  std::shared_ptr<TraceRing> RegisterRing();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};

  mutable std::mutex mu_;  ///< Guards rings_ registration and next_tid_.
  std::vector<std::shared_ptr<TraceRing>> rings_;
  uint32_t next_tid_ = 0;
};

/// \brief RAII span: 'B' at construction, 'E' at destruction, both elided
/// when the tracer is disabled at construction time. Callers building
/// expensive names should gate on Tracer::Get().enabled() first.
class TraceSpan {
 public:
  TraceSpan(const char* cat, std::string_view name) {
    Tracer& t = Tracer::Get();
    if (t.enabled()) {
      cat_ = cat;
      t.Record('B', cat, name);
    }
  }
  ~TraceSpan() {
    if (cat_ != nullptr) Tracer::Get().Record('E', cat_, {});
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* cat_ = nullptr;
};

/// \brief Instant event ('i') — e.g. a resource-guard trip.
inline void TraceInstant(const char* cat, std::string_view name) {
  Tracer& t = Tracer::Get();
  if (t.enabled()) t.Record('i', cat, name);
}

/// \brief Counter sample ('C') — e.g. a thread-pool queueing delay.
inline void TraceCounter(const char* cat, std::string_view name,
                         double value) {
  Tracer& t = Tracer::Get();
  if (t.enabled()) t.Record('C', cat, name, value);
}

}  // namespace util
}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_TRACE_H_
