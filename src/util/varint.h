#ifndef BLOSSOMTREE_UTIL_VARINT_H_
#define BLOSSOMTREE_UTIL_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace blossomtree {

/// \brief LEB128 variable-length encoding of unsigned integers, used by the
/// succinct document storage format.
inline void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

/// \brief Decodes a varint at `*pos`, advancing it. Returns false on
/// truncated or oversized input.
inline bool GetVarint(std::string_view data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size()) {
    uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    if (shift >= 63 && byte > 1) return false;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// \brief Appends a length-prefixed string.
inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s);
}

/// \brief Reads a length-prefixed string as a view into `data`.
inline bool GetLengthPrefixed(std::string_view data, size_t* pos,
                              std::string_view* out) {
  uint64_t len = 0;
  if (!GetVarint(data, pos, &len)) return false;
  // Compare against the remaining bytes: `*pos + len` would wrap for a
  // hostile len near UINT64_MAX and admit an out-of-range view.
  if (len > data.size() - *pos) return false;
  *out = data.substr(*pos, len);
  *pos += len;
  return true;
}

}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_VARINT_H_
