#ifndef BLOSSOMTREE_UTIL_METRICS_H_
#define BLOSSOMTREE_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace blossomtree {
namespace util {

/// \brief A monotonically increasing named counter (relaxed atomics: totals
/// are exact, ordering is irrelevant).
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Plain-value snapshot of a Histogram: copyable, mergeable, and the
/// surface quantiles/JSON render from. Merging sums buckets (commutative and
/// associative), so any merge order over the same snapshots yields the same
/// result — the determinism contract the 1/2/4-thread tests pin.
struct HistogramSnapshot {
  /// Bucket i counts values v with 2^(i-1) <= v < 2^i (bucket 0: v == 0).
  static constexpr int kNumBuckets = 65;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< Meaningful only when count > 0.
  uint64_t max = 0;
  std::array<uint64_t, kNumBuckets> buckets{};

  void MergeFrom(const HistogramSnapshot& o);

  /// \brief Upper bound of the bucket containing the q-quantile (q in
  /// [0,1]); 0 when empty. Deterministic (pure function of the buckets).
  uint64_t Quantile(double q) const;

  /// \brief {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,
  /// "p99":..,"buckets":[[upper_bound,count],...]} — only occupied buckets
  /// are listed.
  std::string ToJson() const;
};

/// \brief Log₂-bucketed latency histogram. Record() is thread-safe and
/// lock-free; read through Snapshot().
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;
  /// \brief Folds a snapshot in (bucket-wise addition — same commutative
  /// merge as HistogramSnapshot::MergeFrom).
  void MergeSnapshot(const HistogramSnapshot& s);
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, HistogramSnapshot::kNumBuckets>
      buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// \brief One key="value" pair of a labeled metric name (DESIGN.md §15).
struct MetricLabel {
  std::string_view key;
  std::string_view value;
};

/// \brief Builds the registry name of a labeled series:
/// `base{k1="v1",k2="v2"}`. Label values are escaped (backslash, double
/// quote, newline) so the stored name is already exposition-safe; labels
/// render in the order given (callers use one fixed order per family, which
/// keeps the exposition deterministic). `base` must not contain '{'.
std::string LabeledMetricName(std::string_view base,
                              std::initializer_list<MetricLabel> labels);

/// \brief A registry of named counters and latency histograms (DESIGN.md
/// §10). Lookup is mutex-guarded and returns stable pointers (hot paths
/// look up once and cache); recording through the returned objects is
/// lock-free.
///
/// Series names may carry labels via LabeledMetricName: the registry treats
/// the full string as the key, and the exposition surfaces split it back
/// into family + labels.
///
/// Three render surfaces with different contracts:
///  - CountersText(): counters only, sorted by name — deterministic for
///    deterministic counter values (the cross-thread bitwise-identity
///    surface; latency histograms are excluded by design).
///  - ToJson(): counters + full histogram summaries (quantiles are wall
///    time, so this surface is NOT cross-run comparable).
///  - PrometheusText(): the scrapeable text exposition (DESIGN.md §15) —
///    counters and full cumulative-bucket histograms with # TYPE headers,
///    names sanitized to the Prometheus charset, label sets preserved.
///    Line order is a pure function of the registered names.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// \brief Zeroes every registered counter and histogram (pointers handed
  /// out stay valid).
  void Reset();

  /// \brief Folds another registry in: counters add, histograms merge.
  void MergeFrom(const MetricsRegistry& other);

  std::string CountersText() const;
  std::string ToJson() const;
  std::string PrometheusText() const;

  /// \brief Plain-value snapshots of every registered series, for windowed
  /// delta computation and merge-order-independence tests: counters by full
  /// (possibly labeled) name, histograms likewise.
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// \brief Renders a gauge map (point-in-time values sampled outside the
/// registry, e.g. queue depths and resident bytes) in the same Prometheus
/// text format, with `# TYPE <family> gauge` headers. Names may be labeled
/// via LabeledMetricName; ordering follows the (sorted) map.
std::string PrometheusGaugesText(const std::map<std::string, uint64_t>& gauges);

}  // namespace util
}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_METRICS_H_
