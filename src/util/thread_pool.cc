#include "util/thread_pool.h"

#include <chrono>

#include "util/trace.h"

namespace blossomtree {
namespace util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

size_t ThreadPool::NumPending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  if (Tracer::Get().enabled()) {
    // Timeline instrumentation (DESIGN.md §10): an 'i' event marks the
    // enqueue on the submitting thread; the worker records the
    // enqueue→start queueing delay as a counter and wraps the body in a
    // "pool.task" span. Captured only when tracing is on, so the default
    // path submits the bare callable.
    Tracer::Get().Record('i', "pool", "enqueue");
    auto enqueue = std::chrono::steady_clock::now();
    fn = [body = std::move(fn), enqueue] {
      auto start = std::chrono::steady_clock::now();
      TraceCounter("pool", "queue_delay_ns",
                   static_cast<double>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           start - enqueue)
                           .count()));
      TraceSpan span("pool", "task");
      body();
    };
  }
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-before-stop: only exit once the queue is empty, so every
      // submitted task runs even when the pool is being torn down.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // Exceptions land in the task's shared state.
  }
}

}  // namespace util
}  // namespace blossomtree
