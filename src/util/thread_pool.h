#ifndef BLOSSOMTREE_UTIL_THREAD_POOL_H_
#define BLOSSOMTREE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/resource_guard.h"

namespace blossomtree {
namespace util {

/// \brief A fixed-size thread pool for intra-query parallelism.
///
/// Deliberately work-stealing-free: tasks run in FIFO submission order on a
/// fixed set of workers, so a partitioned scan's per-partition tasks start in
/// partition order and the caller reassembles results by partition index —
/// no scheduling decision can reorder the output (determinism first, then
/// speed). Submitted tasks always run: destruction drains the queue before
/// joining the workers.
///
/// Exceptions thrown by a task are captured in its future (Submit) or
/// rethrown to the caller (ParallelFor); they never escape a worker thread.
class ThreadPool {
 public:
  /// \brief Starts `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// \brief Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumThreads() const { return workers_.size(); }

  /// \brief Tasks submitted but not yet started (a point-in-time snapshot;
  /// the service layer reads it for queue-depth metrics).
  size_t NumPending() const;

  /// \brief Enqueues `fn`; the returned future completes when it has run
  /// (rethrowing from get() if the task threw).
  std::future<void> Submit(std::function<void()> fn);

  /// \brief Runs fn(0) .. fn(n-1) on the pool and blocks until all have
  /// finished. The first exception thrown by any iteration is rethrown
  /// after every iteration has completed.
  ///
  /// With a non-null `guard`, each worker re-checks the guard before
  /// starting its iteration and skips the body once the guard has tripped
  /// (queued-but-unstarted work is abandoned, in-flight iterations finish
  /// cooperatively). The caller must treat any output produced after a trip
  /// as garbage — check guard->status() after ParallelFor returns.
  template <typename Fn>
  void ParallelFor(size_t n, Fn&& fn, ResourceGuard* guard = nullptr) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(Submit([&fn, i, guard] {
        if (guard != nullptr && !guard->Check()) return;
        fn(i);
      }));
    }
    std::exception_ptr first;
    for (std::future<void>& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  /// \brief The default worker count: hardware concurrency, or 1 when the
  /// runtime cannot report it.
  static size_t DefaultThreads() {
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<size_t>(n);
  }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace util
}  // namespace blossomtree

#endif  // BLOSSOMTREE_UTIL_THREAD_POOL_H_
