#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <utility>
#include <vector>

namespace blossomtree {
namespace util {

namespace {

/// Bucket index for a value: 0 for 0, else floor(log2(v)) + 1, so bucket i
/// (i >= 1) covers [2^(i-1), 2^i).
int BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  return 64 - std::countl_zero(v);
}

/// Inclusive-exclusive upper bound of bucket i (the value Quantile reports).
uint64_t BucketUpperBound(int i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return uint64_t{1} << i;
}

void AppendKeyValue(std::string* out, const char* key, uint64_t v,
                    bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += std::to_string(v);
}

/// Maps a registry family name onto the Prometheus metric-name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: dots (the registry's namespacing convention)
/// and any other foreign byte become '_', and a leading digit gets a '_'
/// prefix. Purely syntactic, so equal inputs always render equal.
std::string SanitizeFamily(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

/// Splits a registry name into (sanitized family, raw label body). The
/// label body is the text between the outer braces, already escaped by
/// LabeledMetricName; empty when the name is unlabeled.
std::pair<std::string, std::string> SplitSeriesName(const std::string& name) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return {SanitizeFamily(name), ""};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {SanitizeFamily(std::string_view(name).substr(0, brace)), labels};
}

void AppendSeriesLine(std::string* out, const std::string& family,
                      const std::string& suffix, const std::string& labels,
                      const std::string& extra_label, uint64_t value) {
  *out += family;
  *out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    *out += '{';
    *out += labels;
    if (!labels.empty() && !extra_label.empty()) *out += ',';
    *out += extra_label;
    *out += '}';
  }
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

void AppendTypeHeader(std::string* out, const std::string& family,
                      const char* type, std::string* last_family) {
  if (family == *last_family) return;
  *last_family = family;
  *out += "# TYPE ";
  *out += family;
  *out += ' ';
  *out += type;
  *out += '\n';
}

}  // namespace

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = min < o.min ? min : o.min;
    max = max > o.max ? max : o.max;
  }
  count += o.count;
  sum += o.sum;
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += o.buckets[i];
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return max;
}

std::string HistogramSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendKeyValue(&out, "count", count, &first);
  AppendKeyValue(&out, "sum", sum, &first);
  AppendKeyValue(&out, "min", count == 0 ? 0 : min, &first);
  AppendKeyValue(&out, "max", max, &first);
  AppendKeyValue(&out, "p50", Quantile(0.50), &first);
  AppendKeyValue(&out, "p90", Quantile(0.90), &first);
  AppendKeyValue(&out, "p99", Quantile(0.99), &first);
  out += ", \"buckets\": [";
  bool first_bucket = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (!first_bucket) out += ", ";
    first_bucket = false;
    out += '[';
    out += std::to_string(BucketUpperBound(i));
    out += ", ";
    out += std::to_string(buckets[i]);
    out += ']';
  }
  out += "]}";
  return out;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = mn == UINT64_MAX ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::MergeSnapshot(const HistogramSnapshot& s) {
  if (s.count == 0) return;
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    if (s.buckets[i] != 0) {
      buckets_[i].fetch_add(s.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(s.count, std::memory_order_relaxed);
  sum_.fetch_add(s.sum, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (s.min < cur &&
         !min_.compare_exchange_weak(cur, s.min,
                                     std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (s.max > cur &&
         !max_.compare_exchange_weak(cur, s.max,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot the other side first so self-merge or concurrent recording
  // cannot deadlock (lock order: other.mu_ released before mu_ is taken via
  // GetCounter/GetHistogram).
  std::map<std::string, uint64_t> counter_values;
  std::map<std::string, HistogramSnapshot> hist_snapshots;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_) {
      counter_values[name] = c->value();
    }
    for (const auto& [name, h] : other.histograms_) {
      hist_snapshots[name] = h->Snapshot();
    }
  }
  for (const auto& [name, v] : counter_values) GetCounter(name)->Add(v);
  for (const auto& [name, s] : hist_snapshots) {
    GetHistogram(name)->MergeSnapshot(s);
  }
}

std::string LabeledMetricName(std::string_view base,
                              std::initializer_list<MetricLabel> labels) {
  std::string out(base);
  out += '{';
  bool first = true;
  for (const MetricLabel& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    for (char c : l.value) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->Snapshot();
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  // Snapshot, then render outside the lock: sanitizing may reorder series
  // relative to the raw registry order, so sort by (family, labels) first —
  // exposition order must be a pure function of the registered names.
  std::map<std::string, uint64_t> counters = CounterValues();
  std::map<std::string, HistogramSnapshot> hists = HistogramSnapshots();

  std::vector<std::pair<std::pair<std::string, std::string>, uint64_t>> cs;
  cs.reserve(counters.size());
  for (const auto& [name, v] : counters) {
    cs.emplace_back(SplitSeriesName(name), v);
  }
  std::sort(cs.begin(), cs.end());

  std::string out;
  std::string last_family;
  for (const auto& [key, value] : cs) {
    AppendTypeHeader(&out, key.first, "counter", &last_family);
    AppendSeriesLine(&out, key.first, "", key.second, "", value);
  }

  std::vector<std::pair<std::pair<std::string, std::string>,
                        const HistogramSnapshot*>>
      hs;
  hs.reserve(hists.size());
  for (const auto& [name, snap] : hists) {
    hs.emplace_back(SplitSeriesName(name), &snap);
  }
  std::sort(hs.begin(), hs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  last_family.clear();
  for (const auto& [key, snap] : hs) {
    AppendTypeHeader(&out, key.first, "histogram", &last_family);
    // Cumulative buckets over the occupied boundaries plus +Inf, the
    // Prometheus histogram contract.
    uint64_t cumulative = 0;
    for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      if (snap->buckets[i] == 0) continue;
      cumulative += snap->buckets[i];
      AppendSeriesLine(&out, key.first, "_bucket", key.second,
                       "le=\"" + std::to_string(BucketUpperBound(i)) + "\"",
                       cumulative);
    }
    AppendSeriesLine(&out, key.first, "_bucket", key.second, "le=\"+Inf\"",
                     snap->count);
    AppendSeriesLine(&out, key.first, "_sum", key.second, "", snap->sum);
    AppendSeriesLine(&out, key.first, "_count", key.second, "", snap->count);
  }
  return out;
}

std::string PrometheusGaugesText(
    const std::map<std::string, uint64_t>& gauges) {
  std::vector<std::pair<std::pair<std::string, std::string>, uint64_t>> gs;
  gs.reserve(gauges.size());
  for (const auto& [name, v] : gauges) {
    gs.emplace_back(SplitSeriesName(name), v);
  }
  std::sort(gs.begin(), gs.end());
  std::string out;
  std::string last_family;
  for (const auto& [key, value] : gs) {
    AppendTypeHeader(&out, key.first, "gauge", &last_family);
    AppendSeriesLine(&out, key.first, "", key.second, "", value);
  }
  return out;
}

std::string MetricsRegistry::CountersText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {  // std::map: sorted by name.
    out += name;
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + name + "\": " + std::to_string(c->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + name + "\": " + h->Snapshot().ToJson();
  }
  out += "}}";
  return out;
}

}  // namespace util
}  // namespace blossomtree
