#include "util/metrics.h"

#include <bit>

namespace blossomtree {
namespace util {

namespace {

/// Bucket index for a value: 0 for 0, else floor(log2(v)) + 1, so bucket i
/// (i >= 1) covers [2^(i-1), 2^i).
int BucketIndex(uint64_t v) {
  if (v == 0) return 0;
  return 64 - std::countl_zero(v);
}

/// Inclusive-exclusive upper bound of bucket i (the value Quantile reports).
uint64_t BucketUpperBound(int i) {
  if (i == 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return uint64_t{1} << i;
}

void AppendKeyValue(std::string* out, const char* key, uint64_t v,
                    bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += std::to_string(v);
}

}  // namespace

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = min < o.min ? min : o.min;
    max = max > o.max ? max : o.max;
  }
  count += o.count;
  sum += o.sum;
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += o.buckets[i];
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target observation, 1-based: ceil(q * count), at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  return max;
}

std::string HistogramSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  AppendKeyValue(&out, "count", count, &first);
  AppendKeyValue(&out, "sum", sum, &first);
  AppendKeyValue(&out, "min", count == 0 ? 0 : min, &first);
  AppendKeyValue(&out, "max", max, &first);
  AppendKeyValue(&out, "p50", Quantile(0.50), &first);
  AppendKeyValue(&out, "p90", Quantile(0.90), &first);
  AppendKeyValue(&out, "p99", Quantile(0.99), &first);
  out += ", \"buckets\": [";
  bool first_bucket = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (!first_bucket) out += ", ";
    first_bucket = false;
    out += '[';
    out += std::to_string(BucketUpperBound(i));
    out += ", ";
    out += std::to_string(buckets[i]);
    out += ']';
  }
  out += "]}";
  return out;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = mn == UINT64_MAX ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::MergeSnapshot(const HistogramSnapshot& s) {
  if (s.count == 0) return;
  for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    if (s.buckets[i] != 0) {
      buckets_[i].fetch_add(s.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(s.count, std::memory_order_relaxed);
  sum_.fetch_add(s.sum, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (s.min < cur &&
         !min_.compare_exchange_weak(cur, s.min,
                                     std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (s.max > cur &&
         !max_.compare_exchange_weak(cur, s.max,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot the other side first so self-merge or concurrent recording
  // cannot deadlock (lock order: other.mu_ released before mu_ is taken via
  // GetCounter/GetHistogram).
  std::map<std::string, uint64_t> counter_values;
  std::map<std::string, HistogramSnapshot> hist_snapshots;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_) {
      counter_values[name] = c->value();
    }
    for (const auto& [name, h] : other.histograms_) {
      hist_snapshots[name] = h->Snapshot();
    }
  }
  for (const auto& [name, v] : counter_values) GetCounter(name)->Add(v);
  for (const auto& [name, s] : hist_snapshots) {
    GetHistogram(name)->MergeSnapshot(s);
  }
}

std::string MetricsRegistry::CountersText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {  // std::map: sorted by name.
    out += name;
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + name + "\": " + std::to_string(c->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    out += '"' + name + "\": " + h->Snapshot().ToJson();
  }
  out += "}}";
  return out;
}

}  // namespace util
}  // namespace blossomtree
