#ifndef BLOSSOMTREE_STORAGE_NODE_STORE_H_
#define BLOSSOMTREE_STORAGE_NODE_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "xml/document.h"

namespace blossomtree {
namespace storage {

/// \brief The fixed-width node record every store serves — the decoded
/// paged form of the paper's succinct storage, shared with the external
/// document layout (xml::PackedNodeRecord) so BTSX v2 files persist it
/// byte-for-byte.
using NodeRecord = xml::PackedNodeRecord;

/// \brief A contiguous, inclusive range [begin, end] of NodeIds — one
/// partition of a document for intra-query parallel scanning.
struct NodeRange {
  xml::NodeId begin;
  xml::NodeId end;

  size_t size() const { return static_cast<size_t>(end) - begin + 1; }
  bool operator==(const NodeRange& o) const {
    return begin == o.begin && end == o.end;
  }
};

/// \brief Per-scan sequential-reader state: which page/block the scan is
/// currently on, how many it has fetched, and a pin keeping the current
/// block resident (DiskStore parks the shared_ptr of the cached block here
/// so eviction can never pull bytes out from under an in-progress read).
///
/// One cursor belongs to exactly one scan (one thread); concurrent scans
/// over a shared store each carry their own. That is what makes page-read
/// accounting deterministic again under the service's concurrent readers —
/// the pre-cursor design kept this state in one shared atomic, so totals
/// depended on how scans interleaved.
struct ScanCursor {
  size_t page = static_cast<size_t>(-1);
  uint64_t reads = 0;
  std::shared_ptr<const void> pin;
  /// False for planning-time walks (PartitionFromRecords): the cursor
  /// still pins and pages normally, but neither the cursor's `reads` nor
  /// the store-wide aggregate is incremented — partitioning is planning,
  /// not scan I/O, on every store (PageStore always behaved this way;
  /// DiskStore used to count its partition walk, diverging from it).
  bool count_reads = true;
  /// Staging slot for the base-class NextBlock fallback (stores without a
  /// native block span serve batched scans one record at a time).
  NodeRecord staged{};
};

/// \brief Abstract document-order node store with page/block-granular
/// access counting — the secondary-storage substrate the NoK scanners and
/// joins run over. Two implementations: PageStore (in-RAM, built from a
/// parsed document) and DiskStore (BTSX v2 file, mmap or pread + block
/// cache). Thread-safe for concurrent readers; all mutable state is either
/// atomic (aggregate counters) or caller-owned (ScanCursor).
class NodeStore {
 public:
  virtual ~NodeStore() = default;

  virtual size_t NumNodes() const = 0;
  virtual size_t NumPages() const = 0;
  virtual size_t NodesPerPage() const = 0;

  /// \brief Generation stamp of the document this store serves (see
  /// xml::Document::generation()): result-cache keys derived from a store
  /// carry the same invalidation identity as ones derived from the
  /// document itself.
  virtual uint64_t generation() const = 0;

  /// \brief Fetches the record for `n` through `cursor`, counting a page
  /// (or block) read when the cursor moves onto a new page. Returned by
  /// value: 16 bytes, and the backing block may be evicted after the
  /// cursor moves on.
  virtual NodeRecord Get(xml::NodeId n, ScanCursor* cursor) const = 0;

  /// \brief Batched sequential read (DESIGN.md §16): returns a span of
  /// consecutive records starting at `n`, extending no further than `last`
  /// (inclusive) and never past the page/block `n` lives on. Read
  /// accounting is identical to fetching the same records one Get() at a
  /// time — one page read per block entered — so batched and
  /// node-at-a-time scans report bitwise-identical counters. The span
  /// stays valid until the next call through the same cursor (the
  /// cursor's pin keeps the backing block resident).
  virtual std::span<const NodeRecord> NextBlock(xml::NodeId n,
                                                xml::NodeId last,
                                                ScanCursor* cursor) const {
    (void)last;
    cursor->staged = Get(n, cursor);
    return {&cursor->staged, 1};
  }

  /// \brief Partitions the stored document into at most `max_partitions`
  /// contiguous node ranges cut at top-level subtree boundaries (the
  /// parallel-scan contract of PartitionSubtrees; see DESIGN.md §7).
  virtual std::vector<NodeRange> Partition(size_t max_partitions) const = 0;

  /// \brief Aggregate page/block reads across all cursors since the last
  /// ResetCounters — the I/O proxy metric. Per-cursor totals (exact and
  /// deterministic per scan) are on the cursors themselves.
  virtual uint64_t PageReads() const = 0;
  virtual void ResetCounters() const = 0;

  // -- Navigation derived from subtree extents (shared by both stores) ------

  /// \brief First child is n+1 when the subtree extends past n.
  xml::NodeId FirstChild(xml::NodeId n, ScanCursor* cursor) const {
    NodeRecord r = Get(n, cursor);
    return r.subtree_end > n ? n + 1 : xml::kNullNode;
  }

  /// \brief Following sibling = node just past this subtree, iff it sits
  /// at the same level.
  xml::NodeId NextSibling(xml::NodeId n, ScanCursor* cursor) const {
    NodeRecord r = Get(n, cursor);
    xml::NodeId next = r.subtree_end + 1;
    if (next >= NumNodes()) return xml::kNullNode;
    NodeRecord nr = Get(next, cursor);
    return nr.level == r.level ? next : xml::kNullNode;
  }

 protected:
  /// Generic Partition implementation: walks top-level subtree boundaries
  /// through Get() with a private cursor (bounds-checked, so a corrupt
  /// record array degrades to one whole-store range instead of reading out
  /// of bounds), then groups them greedily by node count.
  std::vector<NodeRange> PartitionFromRecords(size_t max_partitions) const;
};

/// \brief Greedy balanced grouping of consecutive top-level subtrees
/// [cuts[i], cuts[i+1]) into at most `max_partitions` contiguous ranges.
/// `cuts` holds the NodeId where each top-level subtree starts (the first
/// entry is the document root itself, which precedes its first child), and
/// `total` is the number of nodes in the document.
std::vector<NodeRange> GroupSubtreeCuts(const std::vector<xml::NodeId>& cuts,
                                        size_t total, size_t max_partitions);

}  // namespace storage
}  // namespace blossomtree

#endif  // BLOSSOMTREE_STORAGE_NODE_STORE_H_
