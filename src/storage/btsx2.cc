#include "storage/btsx2.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <vector>

namespace blossomtree {
namespace storage {

namespace {

constexpr uint32_t kU32Max = static_cast<uint32_t>(-1);

void PutU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

double GetF64(const char* p) {
  uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

uint64_t Align16(uint64_t v) { return (v + 15) & ~uint64_t{15}; }

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("BTSX2: " + what);
}

}  // namespace

xml::ExternalLayout Btsx2View::ToLayout() const {
  xml::ExternalLayout layout;
  layout.num_nodes = static_cast<size_t>(num_nodes);
  layout.records = records;
  layout.parent = parent;
  layout.text_spans = text_spans;
  layout.num_text_spans = static_cast<size_t>(num_text_spans);
  layout.text_pool = text_pool;
  layout.text_pool_bytes = static_cast<size_t>(text_pool_bytes);
  layout.attr_owners = attr_owners;
  layout.num_attr_owners = static_cast<size_t>(num_attr_owners);
  layout.attrs = attrs;
  layout.num_attrs = static_cast<size_t>(num_attrs);
  layout.tag_recursion = tag_recursion;
  layout.tag_stream_offsets = tag_stream_offsets;
  layout.tag_streams = tag_streams;
  layout.tag_names = tag_names;
  layout.num_elements = static_cast<size_t>(num_elements);
  layout.max_depth = max_depth;
  layout.avg_depth = avg_depth;
  layout.max_recursion = max_recursion;
  return layout;
}

Result<std::string> EncodeBtsx2(const xml::Document& doc) {
  if (doc.generation() == 0) {
    return Status::InvalidArgument(
        "BTSX2: document must be Finish()ed before encoding");
  }
  const size_t num_nodes = doc.NumNodes();
  if (num_nodes >= static_cast<size_t>(kU32Max)) {
    return Status::InvalidArgument("BTSX2: too many nodes for 32-bit ids");
  }

  // Section bodies, assembled in one document-order pass. The text pool
  // interleaves text-node payloads with attribute strings; offsets are
  // recorded as the pool grows, so everything stays a single pass.
  std::string tag_dict;
  for (xml::TagId t = 0; t < doc.tags().size(); ++t) {
    const std::string& name = doc.tags().Name(t);
    PutU32(&tag_dict, static_cast<uint32_t>(name.size()));
    tag_dict.append(name);
  }

  std::string records;
  std::string parent;
  std::string text_spans;
  std::string text_pool;
  std::string attr_owners;
  std::string attrs;
  uint32_t num_text_spans = 0;
  uint32_t num_attrs = 0;
  uint32_t num_attr_owners = 0;
  for (xml::NodeId n = 0; n < num_nodes; ++n) {
    bool elem = doc.IsElement(n);
    uint32_t text_ref = kU32Max;
    if (!elem) {
      std::string_view text = doc.Text(n);
      text_ref = num_text_spans++;
      PutU32(&text_spans, static_cast<uint32_t>(text_pool.size()));
      PutU32(&text_spans, static_cast<uint32_t>(text.size()));
      text_pool.append(text);
    }
    PutU32(&records, elem ? doc.Tag(n) : xml::kNullTag);
    PutU32(&records, doc.SubtreeEnd(n));
    PutU32(&records, doc.Level(n));
    PutU32(&records, text_ref);
    PutU32(&parent, doc.Parent(n));
    if (elem) {
      auto node_attrs = doc.Attributes(n);
      if (!node_attrs.empty()) {
        ++num_attr_owners;
        PutU32(&attr_owners, n);
        PutU32(&attr_owners, num_attrs);
        PutU32(&attr_owners,
               num_attrs + static_cast<uint32_t>(node_attrs.size()));
        for (const auto& [name, value] : node_attrs) {
          PutU32(&attrs, static_cast<uint32_t>(text_pool.size()));
          PutU32(&attrs, static_cast<uint32_t>(name.size()));
          text_pool.append(name);
          PutU32(&attrs, static_cast<uint32_t>(text_pool.size()));
          PutU32(&attrs, static_cast<uint32_t>(value.size()));
          text_pool.append(value);
          ++num_attrs;
        }
      }
    }
    if (text_pool.size() > static_cast<size_t>(kU32Max)) {
      return Status::InvalidArgument(
          "BTSX2: text pool exceeds 32-bit offsets");
    }
  }

  std::string tag_recursion;
  std::string tag_stream_offsets;
  std::string tag_streams;
  uint64_t stream_off = 0;
  PutU64(&tag_stream_offsets, 0);
  for (xml::TagId t = 0; t < doc.tags().size(); ++t) {
    PutU32(&tag_recursion, doc.TagRecursionDegree(t));
    auto index = doc.TagIndex(t);
    for (xml::NodeId n : index) PutU32(&tag_streams, n);
    stream_off += index.size();
    PutU64(&tag_stream_offsets, stream_off);
  }

  // Lay the sections out 16-byte aligned and assemble the header.
  const std::string* sections[kBtsx2NumSections] = {
      &tag_dict, &records,      &parent,
      &text_spans, &text_pool,  &attr_owners,
      &attrs,    &tag_recursion, &tag_stream_offsets,
      &tag_streams};
  uint64_t offsets[kBtsx2NumSections];
  uint64_t pos = kBtsx2HeaderBytes;
  for (size_t i = 0; i < kBtsx2NumSections; ++i) {
    pos = Align16(pos);
    offsets[i] = pos;
    pos += sections[i]->size();
  }

  std::string out;
  out.reserve(static_cast<size_t>(pos));
  out.append(kBtsx2Magic, sizeof kBtsx2Magic);
  PutU32(&out, kBtsx2Version);
  PutU32(&out, kBtsx2EndianProbe);
  PutU64(&out, doc.generation());
  PutU64(&out, num_nodes);
  PutU64(&out, doc.NumElements());
  PutU64(&out, doc.tags().size());
  PutU64(&out, num_text_spans);
  PutU64(&out, num_attr_owners);
  PutU64(&out, num_attrs);
  PutU32(&out, doc.MaxDepth());
  PutU32(&out, doc.MaxRecursionDegree());
  PutF64(&out, doc.AvgDepth());
  for (size_t i = 0; i < kBtsx2NumSections; ++i) {
    PutU64(&out, offsets[i]);
    PutU64(&out, sections[i]->size());
  }
  out.resize(kBtsx2HeaderBytes, '\0');
  for (size_t i = 0; i < kBtsx2NumSections; ++i) {
    out.resize(static_cast<size_t>(offsets[i]), '\0');
    out.append(*sections[i]);
  }
  return out;
}

Status WriteBtsx2(const xml::Document& doc, const std::string& path) {
  Result<std::string> encoded = EncodeBtsx2(doc);
  BT_RETURN_NOT_OK(encoded.status());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  out.write(encoded->data(), static_cast<std::streamsize>(encoded->size()));
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<Btsx2View> MapBtsx2(std::string_view image) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Unsupported(
        "BTSX2: zero-copy mapping requires a little-endian host");
  }
  if (image.size() < kBtsx2HeaderBytes) {
    return Corrupt("image smaller than the header");
  }
  const char* p = image.data();
  // The section-offset alignment checks below are relative to the image
  // base; the typed views handed out only stay aligned if the base itself
  // is 16-byte aligned. mmap'd images always are (page-aligned) and the
  // heap/pread fallbacks allocate with operator new[]; reject anything
  // else cleanly instead of handing out misaligned typed pointers (UB).
  if (reinterpret_cast<uintptr_t>(p) % 16 != 0) {
    return Corrupt("image base not 16-byte aligned");
  }
  if (std::memcmp(p, kBtsx2Magic, sizeof kBtsx2Magic) != 0) {
    return Corrupt("bad magic");
  }
  if (GetU32(p + 8) != kBtsx2Version) return Corrupt("unsupported version");
  if (GetU32(p + 12) != kBtsx2EndianProbe) {
    return Corrupt("endianness probe mismatch");
  }

  Btsx2View view;
  view.generation = GetU64(p + 16);
  view.num_nodes = GetU64(p + 24);
  view.num_elements = GetU64(p + 32);
  view.num_tags = GetU64(p + 40);
  view.num_text_spans = GetU64(p + 48);
  view.num_attr_owners = GetU64(p + 56);
  view.num_attrs = GetU64(p + 64);
  view.max_depth = GetU32(p + 72);
  view.max_recursion = GetU32(p + 76);
  view.avg_depth = GetF64(p + 80);

  if (view.generation == 0) return Corrupt("zero generation stamp");
  if (view.num_nodes >= kU32Max || view.num_tags >= kU32Max ||
      view.num_attrs >= kU32Max) {
    return Corrupt("counts exceed 32-bit ids");
  }
  // Every attr owner owns at least one attribute, so owners <= attrs.
  if (view.num_elements > view.num_nodes ||
      view.num_text_spans > view.num_nodes ||
      view.num_attr_owners > view.num_nodes ||
      view.num_attr_owners > view.num_attrs) {
    return Corrupt("implausible counts");
  }

  // Section table: offsets in bounds, aligned, and sized exactly as the
  // counts dictate (the text pool and tag dictionary are free-form; their
  // sizes come from the table itself).
  uint64_t offs[kBtsx2NumSections];
  uint64_t sizes[kBtsx2NumSections];
  for (size_t i = 0; i < kBtsx2NumSections; ++i) {
    offs[i] = GetU64(p + 88 + i * 16);
    sizes[i] = GetU64(p + 88 + i * 16 + 8);
    if (offs[i] < kBtsx2HeaderBytes || offs[i] > image.size() ||
        sizes[i] > image.size() - offs[i]) {
      return Corrupt("section out of bounds");
    }
    if (offs[i] % 16 != 0) return Corrupt("misaligned section");
  }
  const uint64_t expect[kBtsx2NumSections] = {
      sizes[kSecTagDict],  // free-form, validated by parsing below
      view.num_nodes * sizeof(xml::PackedNodeRecord),
      view.num_nodes * sizeof(xml::NodeId),
      view.num_text_spans * sizeof(xml::ExternalTextSpan),
      sizes[kSecTextPool],  // free-form
      view.num_attr_owners * sizeof(xml::ExternalAttrOwner),
      view.num_attrs * sizeof(xml::Attribute),
      view.num_tags * sizeof(uint32_t),
      (view.num_tags + 1) * sizeof(uint64_t),
      view.num_elements * sizeof(xml::NodeId)};
  for (size_t i = 0; i < kBtsx2NumSections; ++i) {
    if (sizes[i] != expect[i]) return Corrupt("section size mismatch");
  }
  if (sizes[kSecTextPool] > kU32Max) {
    return Corrupt("text pool exceeds 32-bit offsets");
  }
  // The image must end exactly where the last section does — trailing bytes
  // mean a concatenated or corrupt file, not padding.
  uint64_t end = kBtsx2HeaderBytes;
  for (size_t i = 0; i < kBtsx2NumSections; ++i) {
    end = std::max(end, offs[i] + sizes[i]);
  }
  if (image.size() != end) return Corrupt("trailing bytes after last section");

  // Tag dictionary: names must consume the section exactly.
  {
    const char* d = p + offs[kSecTagDict];
    uint64_t remaining = sizes[kSecTagDict];
    view.tag_names.reserve(static_cast<size_t>(view.num_tags));
    for (uint64_t t = 0; t < view.num_tags; ++t) {
      if (remaining < 4) return Corrupt("truncated tag dictionary");
      uint32_t len = GetU32(d);
      d += 4;
      remaining -= 4;
      if (len > remaining) return Corrupt("tag name out of bounds");
      view.tag_names.emplace_back(d, len);
      d += len;
      remaining -= len;
    }
    if (remaining != 0) return Corrupt("trailing bytes in tag dictionary");
  }

  view.records =
      reinterpret_cast<const xml::PackedNodeRecord*>(p + offs[kSecRecords]);
  view.parent = reinterpret_cast<const xml::NodeId*>(p + offs[kSecParent]);
  view.text_spans =
      reinterpret_cast<const xml::ExternalTextSpan*>(p + offs[kSecTextSpans]);
  view.text_pool = p + offs[kSecTextPool];
  view.text_pool_bytes = sizes[kSecTextPool];
  view.attr_owners =
      reinterpret_cast<const xml::ExternalAttrOwner*>(p + offs[kSecAttrOwners]);
  view.attrs = reinterpret_cast<const xml::Attribute*>(p + offs[kSecAttrs]);
  view.tag_recursion =
      reinterpret_cast<const uint32_t*>(p + offs[kSecTagRecursion]);
  view.tag_stream_offsets =
      reinterpret_cast<const uint64_t*>(p + offs[kSecTagStreamOffsets]);
  view.tag_streams =
      reinterpret_cast<const xml::NodeId*>(p + offs[kSecTagStreams]);
  view.records_offset = offs[kSecRecords];
  view.records_bytes = sizes[kSecRecords];

  // Tag-stream prefix offsets: monotone and exhaustive. O(#tags), so still
  // O(open); everything O(n) is deferred to ValidateBtsx2Deep.
  if (view.tag_stream_offsets[0] != 0 ||
      view.tag_stream_offsets[view.num_tags] != view.num_elements) {
    return Corrupt("tag stream offsets do not cover the elements");
  }
  for (uint64_t t = 0; t < view.num_tags; ++t) {
    if (view.tag_stream_offsets[t] > view.tag_stream_offsets[t + 1]) {
      return Corrupt("tag stream offsets not monotone");
    }
  }
  return view;
}

Status ValidateBtsx2Deep(const Btsx2View& v) {
  const size_t n = static_cast<size_t>(v.num_nodes);
  if (n == 0) {
    if (v.num_elements != 0 || v.num_text_spans != 0 || v.num_attrs != 0 ||
        v.num_attr_owners != 0) {
      return Corrupt("empty document with non-empty tables");
    }
    return Status::OK();
  }

  // One preorder pass over the records with an explicit ancestor stack:
  // verifies nesting, levels, parents, text refs, and element/tag counts.
  if (v.records[0].level != 0 || v.records[0].tag == xml::kNullTag ||
      v.records[0].subtree_end != n - 1) {
    return Corrupt("root record malformed");
  }
  std::vector<xml::NodeId> stack;
  uint64_t elements = 0;
  uint32_t text_refs = 0;
  uint32_t max_depth = 0;
  for (size_t i = 0; i < n; ++i) {
    const xml::PackedNodeRecord& r = v.records[i];
    xml::NodeId id = static_cast<xml::NodeId>(i);
    while (!stack.empty() && v.records[stack.back()].subtree_end < id) {
      stack.pop_back();
    }
    xml::NodeId expect_parent =
        stack.empty() ? xml::kNullNode : stack.back();
    if (v.parent[i] != expect_parent) return Corrupt("parent mismatch");
    if (r.level != stack.size()) return Corrupt("level mismatch");
    if (r.subtree_end < id || r.subtree_end >= n) {
      return Corrupt("subtree extent out of bounds");
    }
    if (!stack.empty() &&
        r.subtree_end > v.records[stack.back()].subtree_end) {
      return Corrupt("subtree extents not nested");
    }
    if (r.tag == xml::kNullTag) {
      // Text node: a leaf whose text_ref numbers text nodes in document
      // order (the invariant PageStore mirrors).
      if (r.subtree_end != id) return Corrupt("text node with children");
      if (r.text_ref != text_refs || r.text_ref >= v.num_text_spans) {
        return Corrupt("text ref out of order");
      }
      ++text_refs;
      const xml::ExternalTextSpan& s = v.text_spans[r.text_ref];
      if (static_cast<uint64_t>(s.offset) + s.length > v.text_pool_bytes) {
        return Corrupt("text span out of bounds");
      }
    } else {
      if (r.tag >= v.num_tags) return Corrupt("tag id out of bounds");
      if (r.text_ref != static_cast<uint32_t>(-1)) {
        return Corrupt("element with text ref");
      }
      ++elements;
      max_depth = std::max(max_depth, r.level + 1);
      stack.push_back(id);
    }
  }
  if (elements != v.num_elements) return Corrupt("element count mismatch");
  if (text_refs != v.num_text_spans) return Corrupt("text span count mismatch");
  if (max_depth != v.max_depth) return Corrupt("max depth mismatch");

  // Attribute tables: owners strictly ascending element ids, ranges
  // contiguous and exhaustive, strings inside the pool.
  uint32_t next_attr = 0;
  for (uint64_t i = 0; i < v.num_attr_owners; ++i) {
    const xml::ExternalAttrOwner& o = v.attr_owners[i];
    if (o.node >= n || v.records[o.node].tag == xml::kNullTag) {
      return Corrupt("attr owner is not an element");
    }
    if (i > 0 && o.node <= v.attr_owners[i - 1].node) {
      return Corrupt("attr owners not sorted");
    }
    if (o.first != next_attr || o.last <= o.first || o.last > v.num_attrs) {
      return Corrupt("attr ranges not contiguous");
    }
    next_attr = o.last;
  }
  if (next_attr != v.num_attrs) return Corrupt("attr count mismatch");
  for (uint64_t i = 0; i < v.num_attrs; ++i) {
    const xml::Attribute& a = v.attrs[i];
    if (static_cast<uint64_t>(a.name_offset) + a.name_len >
            v.text_pool_bytes ||
        static_cast<uint64_t>(a.value_offset) + a.value_len >
            v.text_pool_bytes) {
      return Corrupt("attribute string out of bounds");
    }
  }

  // Per-tag streams: each sorted, each entry an element of that tag. The
  // offsets were bounds-checked by MapBtsx2.
  for (uint64_t t = 0; t < v.num_tags; ++t) {
    for (uint64_t i = v.tag_stream_offsets[t]; i < v.tag_stream_offsets[t + 1];
         ++i) {
      xml::NodeId id = v.tag_streams[i];
      if (id >= n || v.records[id].tag != t) {
        return Corrupt("tag stream entry mismatch");
      }
      if (i > v.tag_stream_offsets[t] && id <= v.tag_streams[i - 1]) {
        return Corrupt("tag stream not sorted");
      }
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace blossomtree
