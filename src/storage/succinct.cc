#include "storage/succinct.h"

#include <fstream>
#include <string>
#include <vector>

#include "util/varint.h"

namespace blossomtree {
namespace storage {

namespace {

constexpr char kMagic[] = "BTSX";
constexpr uint64_t kVersion = 1;

enum Event : uint8_t {
  kOpen = 0,
  kText = 1,
  kClose = 2,
};

/// Packs 2-bit events into bytes, 4 per byte.
class EventWriter {
 public:
  void Add(Event e) {
    if (count_ % 4 == 0) bytes_.push_back(0);
    bytes_.back() |= static_cast<char>(e << ((count_ % 4) * 2));
    ++count_;
  }
  const std::string& bytes() const { return bytes_; }
  uint64_t count() const { return count_; }

 private:
  std::string bytes_;
  uint64_t count_ = 0;
};

class EventReader {
 public:
  EventReader(std::string_view bytes, uint64_t count)
      : bytes_(bytes), count_(count) {}
  bool AtEnd() const { return pos_ >= count_; }
  Event Next() {
    uint8_t byte = static_cast<uint8_t>(bytes_[pos_ / 4]);
    Event e = static_cast<Event>((byte >> ((pos_ % 4) * 2)) & 0x3);
    ++pos_;
    return e;
  }

 private:
  std::string_view bytes_;
  uint64_t count_;
  uint64_t pos_ = 0;
};

}  // namespace

std::string EncodeSuccinct(const xml::Document& doc) {
  std::string out;
  out.append(kMagic, 4);
  PutVarint(&out, kVersion);

  // Tag dictionary.
  PutVarint(&out, doc.tags().size());
  for (xml::TagId t = 0; t < doc.tags().size(); ++t) {
    PutLengthPrefixed(&out, doc.tags().Name(t));
  }

  // Build the balanced-parentheses event stream plus payloads by walking
  // nodes in document order with an explicit close stack.
  EventWriter events;
  std::string payload;
  std::vector<xml::NodeId> open;
  for (xml::NodeId n = 0; n < doc.NumNodes(); ++n) {
    while (!open.empty() && doc.SubtreeEnd(open.back()) < n) {
      events.Add(kClose);
      open.pop_back();
    }
    if (doc.IsElement(n)) {
      events.Add(kOpen);
      PutVarint(&payload, doc.Tag(n));
      auto attrs = doc.Attributes(n);
      PutVarint(&payload, attrs.size());
      for (const auto& [name, value] : attrs) {
        PutLengthPrefixed(&payload, name);
        PutLengthPrefixed(&payload, value);
      }
      open.push_back(n);
    } else {
      events.Add(kText);
      PutLengthPrefixed(&payload, doc.Text(n));
    }
  }
  while (!open.empty()) {
    events.Add(kClose);
    open.pop_back();
  }

  PutVarint(&out, events.count());
  out.append(events.bytes());
  out.append(payload);
  return out;
}

Result<std::unique_ptr<xml::Document>> DecodeSuccinct(std::string_view data) {
  size_t pos = 0;
  if (data.size() < 4 || data.substr(0, 4) != kMagic) {
    return Status::InvalidArgument("not a BTSX document (bad magic)");
  }
  pos = 4;
  uint64_t version = 0;
  if (!GetVarint(data, &pos, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported BTSX version");
  }
  uint64_t num_tags = 0;
  if (!GetVarint(data, &pos, &num_tags)) {
    return Status::InvalidArgument("truncated tag dictionary");
  }
  // Each tag costs at least one byte of length prefix, so a count beyond
  // the remaining input is hostile — reject it before reserving.
  if (num_tags > data.size() - pos) {
    return Status::InvalidArgument("implausible tag count");
  }
  std::vector<std::string> tags;
  tags.reserve(num_tags);
  for (uint64_t i = 0; i < num_tags; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(data, &pos, &name)) {
      return Status::InvalidArgument("truncated tag name");
    }
    tags.emplace_back(name);
  }
  uint64_t num_events = 0;
  if (!GetVarint(data, &pos, &num_events)) {
    return Status::InvalidArgument("truncated event count");
  }
  // Events pack four to a byte; this ceiling form cannot overflow for
  // adversarial 64-bit event counts the way (num_events + 3) / 4 can.
  uint64_t event_bytes = num_events / 4 + (num_events % 4 != 0 ? 1 : 0);
  if (event_bytes > data.size() - pos) {
    return Status::InvalidArgument("truncated event stream");
  }
  EventReader events(data.substr(pos, event_bytes), num_events);
  pos += event_bytes;

  auto doc = std::make_unique<xml::Document>();
  int depth = 0;
  while (!events.AtEnd()) {
    switch (events.Next()) {
      case kOpen: {
        uint64_t tag = 0;
        uint64_t num_attrs = 0;
        if (!GetVarint(data, &pos, &tag) || tag >= tags.size() ||
            !GetVarint(data, &pos, &num_attrs)) {
          return Status::InvalidArgument("truncated element payload");
        }
        doc->BeginElement(tags[tag]);
        for (uint64_t a = 0; a < num_attrs; ++a) {
          std::string_view name;
          std::string_view value;
          if (!GetLengthPrefixed(data, &pos, &name) ||
              !GetLengthPrefixed(data, &pos, &value)) {
            return Status::InvalidArgument("truncated attribute");
          }
          doc->AddAttribute(name, value);
        }
        ++depth;
        break;
      }
      case kText: {
        std::string_view text;
        if (!GetLengthPrefixed(data, &pos, &text)) {
          return Status::InvalidArgument("truncated text payload");
        }
        if (depth == 0) {
          return Status::InvalidArgument("text outside any element");
        }
        doc->AddText(text);
        break;
      }
      case kClose:
        if (depth == 0) {
          return Status::InvalidArgument("unbalanced close event");
        }
        doc->EndElement();
        --depth;
        break;
      default:
        return Status::InvalidArgument("corrupt event stream");
    }
  }
  if (depth != 0) {
    return Status::InvalidArgument("unbalanced event stream");
  }
  // Every payload byte must be consumed. Trailing bytes mean a corrupt or
  // concatenated file, which used to "round-trip" silently — the decoder
  // would hand back a valid-looking document built from a prefix.
  if (pos != data.size()) {
    return Status::InvalidArgument(
        "trailing garbage after BTSX payload (" +
        std::to_string(data.size() - pos) + " bytes)");
  }
  BT_RETURN_NOT_OK(doc->Finish());
  return doc;
}

Status SaveDocument(const xml::Document& doc, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  std::string encoded = EncodeSuccinct(doc);
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<xml::Document>> LoadDocument(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  // Size the buffer up front and read once. The previous rdbuf()-into-
  // ostringstream route buffered the file twice (stream buffer + final
  // string), doubling peak memory on large documents, and could not tell a
  // short read from success.
  in.seekg(0, std::ios::end);
  std::streamoff len = in.tellg();
  if (len < 0) {
    return Status::IOError("cannot determine size of '" + path + "'");
  }
  in.seekg(0, std::ios::beg);
  std::string data(static_cast<size_t>(len), '\0');
  in.read(data.data(), len);
  if (in.gcount() != len) {
    return Status::IOError("short read from '" + path + "': got " +
                           std::to_string(in.gcount()) + " of " +
                           std::to_string(len) + " bytes");
  }
  return DecodeSuccinct(data);
}

}  // namespace storage
}  // namespace blossomtree
