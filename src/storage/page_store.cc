#include "storage/page_store.h"

#include "util/trace.h"

namespace blossomtree {
namespace storage {

std::vector<NodeRange> PartitionSubtrees(const xml::Document& doc,
                                         size_t max_partitions) {
  util::TraceSpan span("storage", "PartitionSubtrees");
  std::vector<xml::NodeId> cuts;
  if (!doc.empty()) {
    cuts.push_back(doc.Root());
    for (xml::NodeId c = doc.FirstChild(doc.Root()); c != xml::kNullNode;
         c = doc.NextSibling(c)) {
      cuts.push_back(c);
    }
  }
  return GroupSubtreeCuts(cuts, doc.NumNodes(), max_partitions);
}

std::vector<NodeRange> PageStore::Partition(size_t max_partitions) const {
  util::TraceSpan span("storage", "PageStore::Partition");
  std::vector<xml::NodeId> cuts;
  if (!records_.empty()) {
    cuts.push_back(0);
    // Children of the root are the level-1 records; each one's subtree_end
    // jumps to the next. A store built from an empty or failed document can
    // carry a root whose subtree_end points past the record array, so every
    // index is bounds-checked: out-of-range walks terminate (yielding the
    // single whole-store range) instead of reading out of bounds.
    xml::NodeId c = (records_[0].subtree_end > 0 && records_.size() > 1)
                        ? 1
                        : xml::kNullNode;
    while (c != xml::kNullNode && c < records_.size()) {
      cuts.push_back(c);
      xml::NodeId next = records_[c].subtree_end + 1;
      c = (next > c && next < records_.size() && records_[next].level == 1)
              ? next
              : xml::kNullNode;
    }
  }
  return GroupSubtreeCuts(cuts, records_.size(), max_partitions);
}

PageStore::PageStore(const xml::Document& doc, size_t page_bytes) {
  generation_ = doc.generation();
  nodes_per_page_ = page_bytes / sizeof(NodeRecord);
  if (nodes_per_page_ == 0) nodes_per_page_ = 1;
  records_.reserve(doc.NumNodes());
  uint32_t text_ref = 0;
  for (xml::NodeId n = 0; n < doc.NumNodes(); ++n) {
    NodeRecord r;
    r.tag = doc.IsElement(n) ? doc.Tag(n) : xml::kNullTag;
    r.subtree_end = doc.SubtreeEnd(n);
    r.level = doc.Level(n);
    // Text refs number the text nodes in document order — the same
    // numbering the BTSX v2 writer persists, so records from a PageStore
    // and a DiskStore over the same document are bit-identical.
    r.text_ref =
        doc.IsElement(n) ? static_cast<uint32_t>(-1) : text_ref++;
    records_.push_back(r);
  }
  num_pages_ = (records_.size() + nodes_per_page_ - 1) / nodes_per_page_;
}

}  // namespace storage
}  // namespace blossomtree
