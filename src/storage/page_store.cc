#include "storage/page_store.h"

#include "util/trace.h"

namespace blossomtree {
namespace storage {

namespace {

/// Greedy balanced grouping of consecutive top-level subtrees
/// [cuts[i], cuts[i+1]) into at most `max_partitions` contiguous ranges.
/// `cuts` holds the NodeId where each top-level subtree starts (the first
/// entry is the document root itself, which precedes its first child), and
/// `total` is the number of nodes in the document.
std::vector<NodeRange> GroupCuts(const std::vector<xml::NodeId>& cuts,
                                 size_t total, size_t max_partitions) {
  std::vector<NodeRange> out;
  if (total == 0) return out;
  xml::NodeId last = static_cast<xml::NodeId>(total - 1);
  if (max_partitions <= 1 || cuts.size() <= 1) {
    out.push_back({0, last});
    return out;
  }
  size_t target = (total + max_partitions - 1) / max_partitions;
  xml::NodeId begin = 0;
  for (size_t i = 1; i < cuts.size(); ++i) {
    // cuts[i] starts a new top-level subtree: a legal cut point.
    size_t acc = cuts[i] - begin;
    if (acc >= target && out.size() + 1 < max_partitions) {
      out.push_back({begin, static_cast<xml::NodeId>(cuts[i] - 1)});
      begin = cuts[i];
    }
  }
  out.push_back({begin, last});
  return out;
}

}  // namespace

std::vector<NodeRange> PartitionSubtrees(const xml::Document& doc,
                                         size_t max_partitions) {
  util::TraceSpan span("storage", "PartitionSubtrees");
  std::vector<xml::NodeId> cuts;
  if (!doc.empty()) {
    cuts.push_back(doc.Root());
    for (xml::NodeId c = doc.FirstChild(doc.Root()); c != xml::kNullNode;
         c = doc.NextSibling(c)) {
      cuts.push_back(c);
    }
  }
  return GroupCuts(cuts, doc.NumNodes(), max_partitions);
}

std::vector<NodeRange> PageStore::Partition(size_t max_partitions) const {
  util::TraceSpan span("storage", "PageStore::Partition");
  std::vector<xml::NodeId> cuts;
  if (!records_.empty()) {
    cuts.push_back(0);
    // Children of the root are the level-1 records; each one's subtree_end
    // jumps to the next. A store built from an empty or failed document can
    // carry a root whose subtree_end points past the record array, so every
    // index is bounds-checked: out-of-range walks terminate (yielding the
    // single whole-store range) instead of reading out of bounds.
    xml::NodeId c = (records_[0].subtree_end > 0 && records_.size() > 1)
                        ? 1
                        : xml::kNullNode;
    while (c != xml::kNullNode && c < records_.size()) {
      cuts.push_back(c);
      xml::NodeId next = records_[c].subtree_end + 1;
      c = (next > c && next < records_.size() && records_[next].level == 1)
              ? next
              : xml::kNullNode;
    }
  }
  return GroupCuts(cuts, records_.size(), max_partitions);
}

PageStore::PageStore(const xml::Document& doc, size_t page_bytes) {
  generation_ = doc.generation();
  nodes_per_page_ = page_bytes / sizeof(NodeRecord);
  if (nodes_per_page_ == 0) nodes_per_page_ = 1;
  records_.reserve(doc.NumNodes());
  for (xml::NodeId n = 0; n < doc.NumNodes(); ++n) {
    NodeRecord r;
    r.tag = doc.IsElement(n) ? doc.Tag(n) : xml::kNullTag;
    r.subtree_end = doc.SubtreeEnd(n);
    r.level = doc.Level(n);
    r.text_ref = static_cast<uint32_t>(-1);
    records_.push_back(r);
  }
  num_pages_ = (records_.size() + nodes_per_page_ - 1) / nodes_per_page_;
}

}  // namespace storage
}  // namespace blossomtree
