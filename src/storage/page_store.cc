#include "storage/page_store.h"

namespace blossomtree {
namespace storage {

PageStore::PageStore(const xml::Document& doc, size_t page_bytes) {
  nodes_per_page_ = page_bytes / sizeof(NodeRecord);
  if (nodes_per_page_ == 0) nodes_per_page_ = 1;
  records_.reserve(doc.NumNodes());
  for (xml::NodeId n = 0; n < doc.NumNodes(); ++n) {
    NodeRecord r;
    r.tag = doc.IsElement(n) ? doc.Tag(n) : xml::kNullTag;
    r.subtree_end = doc.SubtreeEnd(n);
    r.level = doc.Level(n);
    r.text_ref = static_cast<uint32_t>(-1);
    records_.push_back(r);
  }
  num_pages_ = (records_.size() + nodes_per_page_ - 1) / nodes_per_page_;
}

}  // namespace storage
}  // namespace blossomtree
