#ifndef BLOSSOMTREE_STORAGE_TAG_STREAM_H_
#define BLOSSOMTREE_STORAGE_TAG_STREAM_H_

#include <cstdint>
#include <span>

#include "xml/document.h"

namespace blossomtree {
namespace storage {

/// \brief A cursor over all elements with one tag, in document order, with
/// region labels — the input streams of the join-based approaches
/// (structural merge join, TwigStack).
///
/// The stream counts elements consumed so benches can report index I/O.
class TagStream {
 public:
  TagStream(const xml::Document* doc, xml::TagId tag)
      : doc_(doc), nodes_(doc->TagIndex(tag)) {}

  bool AtEnd() const { return pos_ >= nodes_.size(); }

  /// \brief Current node. Undefined when AtEnd().
  xml::NodeId Node() const { return nodes_[pos_]; }
  xml::NodeId Start() const { return Node(); }
  xml::NodeId End() const { return doc_->SubtreeEnd(Node()); }
  uint32_t Level() const { return doc_->Level(Node()); }

  void Advance() {
    ++pos_;
    ++consumed_;
  }

  /// \brief Skips forward to the first node with id >= target (binary
  /// search; models an index seek). Counts one consumed entry.
  void SkipTo(xml::NodeId target) {
    size_t lo = pos_;
    size_t hi = nodes_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (nodes_[mid] < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    pos_ = lo;
    ++consumed_;
  }

  void Rewind() { pos_ = 0; }
  size_t size() const { return nodes_.size(); }
  uint64_t Consumed() const { return consumed_; }

 private:
  const xml::Document* doc_;
  std::span<const xml::NodeId> nodes_;
  size_t pos_ = 0;
  uint64_t consumed_ = 0;
};

}  // namespace storage
}  // namespace blossomtree

#endif  // BLOSSOMTREE_STORAGE_TAG_STREAM_H_
