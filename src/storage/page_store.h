#ifndef BLOSSOMTREE_STORAGE_PAGE_STORE_H_
#define BLOSSOMTREE_STORAGE_PAGE_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "storage/node_store.h"
#include "xml/document.h"

namespace blossomtree {
namespace storage {

/// \brief Splits a document into at most `max_partitions` contiguous node
/// ranges, cutting only at *top-level subtree boundaries* — the subtrees
/// rooted at the children of the document root — balanced by node count.
///
/// Every match of a NoK rooted inside a partition lies entirely within one
/// top-level subtree, so per-partition matching is independent, and the
/// partitions' ascending NodeId ranges mean concatenating per-partition
/// results in partition order yields exact document order (Theorem 1's
/// Dewey-order argument; see DESIGN.md §7). The root node itself falls in
/// the first partition. Returns an empty vector for an empty document and a
/// single full-document range when no useful cut exists.
std::vector<NodeRange> PartitionSubtrees(const xml::Document& doc,
                                         size_t max_partitions);

/// \brief A document-order, page-partitioned in-RAM node store with access
/// counting.
///
/// Models the paper's secondary-storage scans: every page touched is counted,
/// so benches can report scan/I-O proxies (e.g. merged-NoK saves scans;
/// BNLJ touches only the outer match's subtree range). The one-page
/// sequential-reader cache lives in the caller's ScanCursor — one per scan —
/// so a linear scan of N nodes costs ~N / nodes_per_page page reads, random
/// re-reads cost a page each, and concurrent scans over one shared store
/// (the service::CorpusDocument regime) each account their own reads
/// exactly: totals are the interleaving-independent sum of per-cursor
/// counts, not a function of how readers happened to ping-pong one shared
/// "current page" slot.
class PageStore : public NodeStore {
 public:
  /// \brief Builds the store from a finished document.
  /// \param page_bytes page size in bytes (default 4 KiB).
  explicit PageStore(const xml::Document& doc, size_t page_bytes = 4096);

  size_t NumNodes() const override { return records_.size(); }
  size_t NumPages() const override { return num_pages_; }
  size_t NodesPerPage() const override { return nodes_per_page_; }
  uint64_t generation() const override { return generation_; }

  /// \brief Fetches the record for `n`, counting a page read on the
  /// cursor's page switch (aggregated into the store-wide total).
  NodeRecord Get(xml::NodeId n, ScanCursor* cursor) const override {
    Page(n, cursor);
    return records_[n];
  }

  /// \brief Zero-copy span over the records of n's page, clipped to
  /// `last`; same per-page read accounting as sequential Gets.
  std::span<const NodeRecord> NextBlock(xml::NodeId n, xml::NodeId last,
                                        ScanCursor* cursor) const override {
    size_t page = Page(n, cursor);
    size_t end = std::min<size_t>(
        {static_cast<size_t>(last), (page + 1) * nodes_per_page_ - 1,
         records_.size() - 1});
    return {records_.data() + n, end - n + 1};
  }

  // -- I/O accounting --------------------------------------------------------

  uint64_t PageReads() const override {
    return page_reads_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const override {
    page_reads_.store(0, std::memory_order_relaxed);
  }

  /// \brief Partitions the stored document into at most `max_partitions`
  /// contiguous node ranges cut at top-level subtree boundaries (see
  /// PartitionSubtrees above), using the store's own records. Does not
  /// count page reads: partitioning is planning, not scan I/O.
  std::vector<NodeRange> Partition(size_t max_partitions) const override;

 private:
  /// Moves the cursor onto n's page, counting the switch (unless the
  /// cursor is a non-counting planning walk); returns the page index.
  size_t Page(xml::NodeId n, ScanCursor* cursor) const {
    size_t page = n / nodes_per_page_;
    if (page != cursor->page) {
      cursor->page = page;
      if (cursor->count_reads) {
        ++cursor->reads;
        page_reads_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return page;
  }

  std::vector<NodeRecord> records_;
  size_t nodes_per_page_;
  size_t num_pages_;
  mutable std::atomic<uint64_t> page_reads_{0};
  uint64_t generation_ = 0;  ///< Copied from the source document.
};

}  // namespace storage
}  // namespace blossomtree

#endif  // BLOSSOMTREE_STORAGE_PAGE_STORE_H_
