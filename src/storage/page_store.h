#ifndef BLOSSOMTREE_STORAGE_PAGE_STORE_H_
#define BLOSSOMTREE_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "xml/document.h"

namespace blossomtree {
namespace storage {

/// \brief One fixed-width node record in the paged store.
///
/// The NoK paper's succinct storage keeps the tree as a document-order
/// sequence with subtree extents; this record is the decoded equivalent:
/// everything a sequential-scan NoK matcher needs to navigate via
/// first-child / following-sibling without touching the DOM.
struct NodeRecord {
  xml::TagId tag;          ///< kNullTag for text nodes.
  xml::NodeId subtree_end; ///< Largest NodeId in this node's subtree.
  uint32_t level;          ///< Depth (root = 0).
  uint32_t text_ref;       ///< Index into the text table, or UINT32_MAX.
};

/// \brief A contiguous, inclusive range [begin, end] of NodeIds — one
/// partition of a document for intra-query parallel scanning.
struct NodeRange {
  xml::NodeId begin;
  xml::NodeId end;

  size_t size() const { return static_cast<size_t>(end) - begin + 1; }
  bool operator==(const NodeRange& o) const {
    return begin == o.begin && end == o.end;
  }
};

/// \brief Splits a document into at most `max_partitions` contiguous node
/// ranges, cutting only at *top-level subtree boundaries* — the subtrees
/// rooted at the children of the document root — balanced by node count.
///
/// Every match of a NoK rooted inside a partition lies entirely within one
/// top-level subtree, so per-partition matching is independent, and the
/// partitions' ascending NodeId ranges mean concatenating per-partition
/// results in partition order yields exact document order (Theorem 1's
/// Dewey-order argument; see DESIGN.md §7). The root node itself falls in
/// the first partition. Returns an empty vector for an empty document and a
/// single full-document range when no useful cut exists.
std::vector<NodeRange> PartitionSubtrees(const xml::Document& doc,
                                         size_t max_partitions);

/// \brief A document-order, page-partitioned node store with access counting.
///
/// Models the paper's secondary-storage scans: every page touched is counted,
/// so benches can report scan/I-O proxies (e.g. merged-NoK saves scans;
/// BNLJ touches only the outer match's subtree range). A one-page "current
/// page" cache mimics a sequential reader: a linear scan of N nodes costs
/// ~N / nodes_per_page page reads, while random re-reads cost a page each.
class PageStore {
 public:
  /// \brief Builds the store from a finished document.
  /// \param page_bytes page size in bytes (default 4 KiB).
  explicit PageStore(const xml::Document& doc, size_t page_bytes = 4096);

  size_t NumNodes() const { return records_.size(); }
  size_t NumPages() const { return num_pages_; }
  size_t NodesPerPage() const { return nodes_per_page_; }

  /// \brief Generation of the source document at construction time (see
  /// xml::Document::generation()): result-cache keys derived from a store
  /// carry the same invalidation identity as ones derived from the
  /// document itself.
  uint64_t generation() const { return generation_; }

  /// \brief Fetches the record for `n`, counting a page read on page switch.
  ///
  /// The counters are relaxed atomics so one store can be shared read-only
  /// across a service's concurrent queries (service::CorpusDocument): the
  /// single-reader page-read totals stay exact and deterministic, while
  /// concurrent readers get a race-free (if interleaving-dependent)
  /// aggregate — acceptable for an I/O *proxy* metric.
  const NodeRecord& Get(xml::NodeId n) const {
    size_t page = n / nodes_per_page_;
    if (page != current_page_.load(std::memory_order_relaxed)) {
      current_page_.store(page, std::memory_order_relaxed);
      page_reads_.fetch_add(1, std::memory_order_relaxed);
    }
    return records_[n];
  }

  /// \brief Navigation in document order, derived from subtree extents.
  /// First child is n+1 when the subtree extends past n.
  xml::NodeId FirstChild(xml::NodeId n) const {
    const NodeRecord& r = Get(n);
    return r.subtree_end > n ? n + 1 : xml::kNullNode;
  }

  /// \brief Following sibling = node just past this subtree, if it is deeper
  /// than or at the same level under the same parent.
  xml::NodeId NextSibling(xml::NodeId n) const {
    const NodeRecord& r = Get(n);
    xml::NodeId next = r.subtree_end + 1;
    if (next >= records_.size()) return xml::kNullNode;
    const NodeRecord& nr = Get(next);
    return nr.level == r.level ? next : xml::kNullNode;
  }

  // -- I/O accounting --------------------------------------------------------

  uint64_t PageReads() const {
    return page_reads_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const {
    page_reads_.store(0, std::memory_order_relaxed);
    current_page_.store(static_cast<size_t>(-1), std::memory_order_relaxed);
  }

  /// \brief Partitions the stored document into at most `max_partitions`
  /// contiguous node ranges cut at top-level subtree boundaries (see
  /// PartitionSubtrees below), using the store's own records.
  std::vector<NodeRange> Partition(size_t max_partitions) const;

 private:
  std::vector<NodeRecord> records_;
  size_t nodes_per_page_;
  size_t num_pages_;
  mutable std::atomic<size_t> current_page_{static_cast<size_t>(-1)};
  mutable std::atomic<uint64_t> page_reads_{0};
  uint64_t generation_ = 0;  ///< Copied from the source document.
};

}  // namespace storage
}  // namespace blossomtree

#endif  // BLOSSOMTREE_STORAGE_PAGE_STORE_H_
