#include "storage/node_store.h"

namespace blossomtree {
namespace storage {

std::vector<NodeRange> GroupSubtreeCuts(const std::vector<xml::NodeId>& cuts,
                                        size_t total, size_t max_partitions) {
  std::vector<NodeRange> out;
  if (total == 0) return out;
  xml::NodeId last = static_cast<xml::NodeId>(total - 1);
  if (max_partitions <= 1 || cuts.size() <= 1) {
    out.push_back({0, last});
    return out;
  }
  size_t target = (total + max_partitions - 1) / max_partitions;
  xml::NodeId begin = 0;
  for (size_t i = 1; i < cuts.size(); ++i) {
    // cuts[i] starts a new top-level subtree: a legal cut point.
    size_t acc = cuts[i] - begin;
    if (acc >= target && out.size() + 1 < max_partitions) {
      out.push_back({begin, static_cast<xml::NodeId>(cuts[i] - 1)});
      begin = cuts[i];
    }
  }
  out.push_back({begin, last});
  return out;
}

std::vector<NodeRange> NodeStore::PartitionFromRecords(
    size_t max_partitions) const {
  size_t total = NumNodes();
  std::vector<xml::NodeId> cuts;
  if (total > 0) {
    ScanCursor cursor;
    // Planning walk: pages through the store without counting reads, so
    // DiskStore::Partition matches PageStore::Partition's accounting (a
    // scan's records_read covers scan I/O only, on every store).
    cursor.count_reads = false;
    cuts.push_back(0);
    // Children of the root are the level-1 records; each one's subtree_end
    // jumps to the next. A store built from an empty or failed document can
    // carry a root whose subtree_end points past the record array, so every
    // index is bounds-checked: out-of-range walks terminate (yielding the
    // single whole-store range) instead of reading out of bounds.
    xml::NodeId c =
        (Get(0, &cursor).subtree_end > 0 && total > 1) ? 1 : xml::kNullNode;
    while (c != xml::kNullNode && c < total) {
      cuts.push_back(c);
      xml::NodeId next = Get(c, &cursor).subtree_end + 1;
      c = (next > c && next < total && Get(next, &cursor).level == 1)
              ? next
              : xml::kNullNode;
    }
  }
  return GroupSubtreeCuts(cuts, total, max_partitions);
}

}  // namespace storage
}  // namespace blossomtree
