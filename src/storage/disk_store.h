#ifndef BLOSSOMTREE_STORAGE_DISK_STORE_H_
#define BLOSSOMTREE_STORAGE_DISK_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "index/structural_index.h"
#include "storage/btsx2.h"
#include "storage/node_store.h"
#include "util/cache.h"
#include "util/status.h"
#include "xml/document.h"

namespace blossomtree {
namespace storage {

/// \brief Open-time knobs for a DiskStore.
struct DiskStoreOptions {
  /// Map the file read-only (MAP_SHARED) and serve everything zero-copy;
  /// when mapping fails the store falls back to reading the image onto the
  /// heap. false = explicit pread block I/O: nothing is mapped, only the
  /// header is read eagerly, and record blocks are fetched on demand into
  /// the cache — the mode for files larger than address-space comfort, at
  /// the price of serving only the NodeStore scan API (no document()).
  bool use_mmap = true;
  /// Block granularity of the record-section cache; rounded up to a 4 KiB
  /// multiple (which is also a record multiple, so records never straddle
  /// blocks).
  size_t block_bytes = 64 << 10;
  /// ResourceGuard byte budget for resident record blocks (the
  /// ShardedLruCache charges every cached block against it and evicts LRU
  /// to stay under). Pinned blocks of in-flight cursors live outside the
  /// budget, so a scan always makes progress even with a budget smaller
  /// than one block.
  uint64_t cache_budget_bytes = 8ull << 20;
  size_t cache_shards = 8;
  /// Run ValidateBtsx2Deep (O(n)) at open — for untrusted files and tests.
  /// Off by default: trusted reopen stays O(open).
  bool full_validation = false;
  /// Load the `.btsi` structural-index sidecar next to the corpus file
  /// (DESIGN.md §14), mapped modes only. A missing sidecar is fine (the
  /// store just serves scans); a sidecar is *ignored* — never an open
  /// error — when its generation stamp differs from the file's on-disk
  /// generation (the corpus was re-ingested without `--index`) or when it
  /// fails structural validation against the adopted document.
  bool load_index = true;
};

/// \brief A NodeStore served straight from a BTSX v2 file (DESIGN.md §13):
/// opening is O(open) — header parse, map, adopt — with no XML parse and no
/// index build. Resident record blocks are charged against a ResourceGuard
/// byte budget with LRU replacement (util::ShardedLruCache), so a corpus
/// larger than the budget stays queryable: blocks fall out and re-fault on
/// demand (mmap residency is released with madvise(MADV_DONTNEED); pread
/// blocks are simply freed).
///
/// In the mapped modes the store also exposes a full xml::Document facade
/// (AdoptExternal over the image) — the engine runs on it unchanged, and
/// results are byte-identical to the in-RAM path. Thread-safe for
/// concurrent readers: per-scan state lives in caller-owned ScanCursors.
class DiskStore : public NodeStore {
 public:
  static Result<std::unique_ptr<DiskStore>> Open(const std::string& path,
                                                 DiskStoreOptions options = {});

  ~DiskStore() override;
  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  // -- NodeStore -------------------------------------------------------------

  size_t NumNodes() const override { return num_nodes_; }
  size_t NumPages() const override { return num_blocks_; }
  size_t NodesPerPage() const override { return nodes_per_block_; }

  /// \brief The adopted document's (fresh, process-unique) generation in
  /// the mapped modes; the on-disk ingest stamp in pread mode (which has no
  /// document and must not be used as a result-cache identity).
  uint64_t generation() const override { return generation_; }

  NodeRecord Get(xml::NodeId n, ScanCursor* cursor) const override {
    const Block* b = PageTo(n, cursor);
    // memcpy load: block buffers are 16-byte aligned (below), but the
    // copy keeps this path correct for any buffer.
    NodeRecord r;
    std::memcpy(&r,
                b->data + (static_cast<size_t>(n) * sizeof(NodeRecord) -
                           cursor->page * block_bytes_),
                sizeof r);
    return r;
  }

  /// \brief Zero-copy span over the resident block holding `n`, clipped
  /// to `last`; same per-block read accounting as sequential Gets. The
  /// typed view is well-formed in every mode: mmap images are
  /// page-aligned with 16-byte-aligned section offsets, and heap/pread
  /// buffers come from operator new[] (16-byte aligned by
  /// __STDCPP_DEFAULT_NEW_ALIGNMENT__).
  std::span<const NodeRecord> NextBlock(xml::NodeId n, xml::NodeId last,
                                        ScanCursor* cursor) const override {
    const Block* b = PageTo(n, cursor);
    size_t first = cursor->page * block_bytes_ / sizeof(NodeRecord);
    size_t end = std::min<size_t>(
        {static_cast<size_t>(last), first + b->size / sizeof(NodeRecord) - 1,
         num_nodes_ - 1});
    const NodeRecord* records = reinterpret_cast<const NodeRecord*>(b->data);
    return {records + (n - first), end - n + 1};
  }

  std::vector<NodeRange> Partition(size_t max_partitions) const override {
    return PartitionFromRecords(max_partitions);
  }

  uint64_t PageReads() const override {
    return block_reads_.load(std::memory_order_relaxed);
  }
  void ResetCounters() const override {
    block_reads_.store(0, std::memory_order_relaxed);
  }

  // -- Document facade (mapped modes only) -----------------------------------

  /// \brief The zero-copy document view over the mapped image — hand it to
  /// the engine like any parsed document. nullptr in pread mode.
  const xml::Document* document() const { return doc_.get(); }

  /// \brief The generation the source document carried when `btingest`
  /// wrote the file — the on-disk version stamp.
  uint64_t on_disk_generation() const { return on_disk_generation_; }

  /// \brief The `.btsi` structural index loaded alongside the corpus file;
  /// nullptr when there was no valid generation-matching sidecar (plans
  /// then fall back to sequential scans). Immutable and safe to share
  /// across concurrent queries.
  const index::StructuralIndex* index() const { return index_.get(); }

  // -- Introspection ---------------------------------------------------------

  uint64_t FileBytes() const { return file_bytes_; }
  uint64_t RecordBytes() const { return records_bytes_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  bool mmap_backed() const { return mode_ == Mode::kMmap; }
  util::CacheStats BlockCacheStats() const { return cache_->Stats(); }

 private:
  enum class Mode { kMmap, kHeap, kPread };

  /// One cached record block. Mapped modes: `data` points into the image
  /// and eviction (the last shared_ptr dropping) releases the pages'
  /// residency via madvise. Pread mode: `owned` holds the bytes —
  /// operator new[] storage so the record stream is 16-byte aligned (a
  /// std::string buffer carries no alignment guarantee; the typed
  /// NextBlock span and the SIMD scan kernels want an aligned base).
  struct Block {
    ~Block();
    const char* data = nullptr;
    size_t size = 0;
    std::unique_ptr<char[]> owned;
    const char* advise_base = nullptr;  ///< mmap mode: eviction hint range.
    size_t advise_len = 0;
  };

  DiskStore() = default;

  /// Moves the cursor onto n's block — pinning it and counting the switch
  /// (unless the cursor is a non-counting planning walk) — and returns
  /// the pinned block.
  const Block* PageTo(xml::NodeId n, ScanCursor* cursor) const {
    size_t block = static_cast<size_t>(n) * sizeof(NodeRecord) / block_bytes_;
    if (block != cursor->page) {
      cursor->pin = PinBlock(block);
      cursor->page = block;
      if (cursor->count_reads) {
        ++cursor->reads;
        block_reads_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return static_cast<const Block*>(cursor->pin.get());
  }

  /// Returns the cached block, loading + inserting on miss. The returned
  /// pin keeps the block alive even if the cache refuses it (budget smaller
  /// than one block) or evicts it concurrently.
  std::shared_ptr<const Block> PinBlock(size_t index) const;

  Status LoadImage(const std::string& path, const DiskStoreOptions& options);
  Status LoadPreadHeader(const std::string& path);

  Mode mode_ = Mode::kMmap;
  int fd_ = -1;
  const char* image_ = nullptr;
  size_t image_bytes_ = 0;  ///< Mapped length (0 when nothing is mapped).
  /// kHeap fallback storage: operator new[] so the image base is 16-byte
  /// aligned like an mmap'd one — MapBtsx2 rejects misaligned bases.
  std::unique_ptr<char[]> heap_image_;
  uint64_t file_bytes_ = 0;

  uint64_t records_offset_ = 0;
  uint64_t records_bytes_ = 0;
  size_t num_nodes_ = 0;
  size_t block_bytes_ = 0;
  size_t nodes_per_block_ = 0;
  size_t num_blocks_ = 0;
  uint64_t generation_ = 0;
  uint64_t on_disk_generation_ = 0;
  uint64_t budget_bytes_ = 0;

  mutable std::unique_ptr<util::ShardedLruCache<uint64_t, Block>> cache_;
  mutable std::atomic<uint64_t> block_reads_{0};

  Btsx2View view_;
  /// Declared after the image members: destroyed before munmap runs.
  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<index::StructuralIndex> index_;
};

}  // namespace storage
}  // namespace blossomtree

#endif  // BLOSSOMTREE_STORAGE_DISK_STORE_H_
