#ifndef BLOSSOMTREE_STORAGE_SUCCINCT_H_
#define BLOSSOMTREE_STORAGE_SUCCINCT_H_

#include <memory>
#include <string>

#include "util/status.h"
#include "xml/document.h"

namespace blossomtree {
namespace storage {

/// \brief The succinct physical storage scheme of the NoK paper (the
/// paper's reference [22], "A Succinct Physical Storage Scheme for
/// Efficient Evaluation of Path Queries in XML"): the tree structure is a
/// balanced-parentheses event stream (2 bits per event), tags are
/// dictionary-coded integers, and text/attribute payloads are
/// length-prefixed, all in document order — the layout a single sequential
/// scan (the NoK matcher's access pattern) reads optimally.
///
/// Format (all integers LEB128 varints):
///   magic "BTSX", version
///   tag dictionary: count, then names
///   event stream length, then 2-bit events (kOpen/kText/kClose),
///   per-event payloads in document order:
///     kOpen → tag id, attribute count, (name, value)*
///     kText → text bytes
///     kClose → (nothing)
///
/// \return the encoded bytes.
std::string EncodeSuccinct(const xml::Document& doc);

/// \brief Decodes a document from EncodeSuccinct's output.
Result<std::unique_ptr<xml::Document>> DecodeSuccinct(std::string_view data);

/// \brief Writes the succinct encoding to a file.
Status SaveDocument(const xml::Document& doc, const std::string& path);

/// \brief Reads a document previously written by SaveDocument.
Result<std::unique_ptr<xml::Document>> LoadDocument(const std::string& path);

}  // namespace storage
}  // namespace blossomtree

#endif  // BLOSSOMTREE_STORAGE_SUCCINCT_H_
