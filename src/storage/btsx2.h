#ifndef BLOSSOMTREE_STORAGE_BTSX2_H_
#define BLOSSOMTREE_STORAGE_BTSX2_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/document.h"

namespace blossomtree {
namespace storage {

/// BTSX v2: the out-of-core successor of the v1 succinct encoding
/// (storage/succinct.h). Where v1 persists a *compressed* event stream that
/// must be decoded node-by-node into a fresh Document (O(parse) on open),
/// v2 persists the *decoded paged layout* itself — the fixed-width
/// NodeRecord stream plus every side table the engine reads — so a file
/// can be mmap'd and served directly (O(open)). See DESIGN.md §13.
///
/// Layout (all integers little-endian, fixed width; sections 16-byte
/// aligned so typed pointers into the mapping are well-aligned):
///   header (256 bytes): magic "BTSX2", version, endianness probe,
///     generation stamp (the source document's generation at ingest time),
///     counts + statistics, and a 10-entry section table {offset, bytes}.
///   sections, in file order:
///     0 tag dictionary   u32 length + bytes per name, in TagId order
///     1 node records     num_nodes × 16 B xml::PackedNodeRecord
///     2 parent ids       num_nodes × 4 B
///     3 text spans       num_text_spans × 8 B (offset, length into pool)
///     4 text pool        text-node payloads + attribute strings
///     5 attr owners      num_attr_owners × 12 B, sorted by NodeId
///     6 attrs            num_attrs × 16 B xml::Attribute
///     7 tag recursion    num_tags × 4 B per-tag nesting degree
///     8 tag stream offs  (num_tags + 1) × 8 B prefix offsets
///     9 tag streams      num_elements × 4 B NodeIds, per tag, doc order

inline constexpr char kBtsx2Magic[8] = {'B', 'T', 'S', 'X', '2', 0, 0, 0};
inline constexpr uint32_t kBtsx2Version = 2;
/// Written as 0x01020304 in little-endian byte order: a file produced by a
/// (hypothetical) big-endian writer would read back scrambled and be
/// rejected before any typed pointer is formed.
inline constexpr uint32_t kBtsx2EndianProbe = 0x01020304u;
inline constexpr size_t kBtsx2HeaderBytes = 256;
inline constexpr size_t kBtsx2NumSections = 10;

enum Btsx2Section : size_t {
  kSecTagDict = 0,
  kSecRecords = 1,
  kSecParent = 2,
  kSecTextSpans = 3,
  kSecTextPool = 4,
  kSecAttrOwners = 5,
  kSecAttrs = 6,
  kSecTagRecursion = 7,
  kSecTagStreamOffsets = 8,
  kSecTagStreams = 9,
};

/// \brief A validated, typed view over one BTSX v2 image. The pointers
/// borrow the image bytes; the view is only valid while they stay mapped.
struct Btsx2View {
  uint64_t generation = 0;  ///< Ingest-time document generation stamp.
  uint64_t num_nodes = 0;
  uint64_t num_elements = 0;
  uint64_t num_tags = 0;
  uint64_t num_text_spans = 0;
  uint64_t num_attr_owners = 0;
  uint64_t num_attrs = 0;
  uint32_t max_depth = 0;
  uint32_t max_recursion = 0;
  double avg_depth = 0;

  const xml::PackedNodeRecord* records = nullptr;
  const xml::NodeId* parent = nullptr;
  const xml::ExternalTextSpan* text_spans = nullptr;
  const char* text_pool = nullptr;
  uint64_t text_pool_bytes = 0;
  const xml::ExternalAttrOwner* attr_owners = nullptr;
  const xml::Attribute* attrs = nullptr;
  const uint32_t* tag_recursion = nullptr;
  const uint64_t* tag_stream_offsets = nullptr;
  const xml::NodeId* tag_streams = nullptr;
  std::vector<std::string> tag_names;

  /// Byte extent of the record section within the image — the block cache's
  /// substrate (DiskStore reads records block-at-a-time through it).
  uint64_t records_offset = 0;
  uint64_t records_bytes = 0;

  /// \brief Borrows this view's arrays as a Document external layout
  /// (copies the tag names; everything else stays zero-copy).
  xml::ExternalLayout ToLayout() const;
};

/// \brief Serializes a finished document into BTSX v2 bytes. Fails
/// (InvalidArgument) on documents whose text pool or node count exceeds
/// the format's 32-bit offsets, and on unfinished documents.
Result<std::string> EncodeBtsx2(const xml::Document& doc);

/// \brief Writes the BTSX v2 encoding to `path` (the `btingest` backend).
Status WriteBtsx2(const xml::Document& doc, const std::string& path);

/// \brief Parses and *structurally* validates a BTSX v2 image: header
/// fields, exact section sizes and bounds, alignment, the tag dictionary,
/// and tag-stream offset monotonicity — O(header + #tags), which is what
/// keeps opening O(open). Does NOT prove the node arrays are internally
/// consistent; run ValidateBtsx2Deep before trusting an untrusted file.
Result<Btsx2View> MapBtsx2(std::string_view image);

/// \brief Full O(n) consistency check of a mapped view: record extents
/// properly nested with consistent levels and parents, text refs/spans in
/// bounds, attribute tables contiguous and sorted, per-tag streams sorted
/// and exhaustive, statistics consistent. Everything AdoptExternal's
/// zero-copy accessors rely on.
Status ValidateBtsx2Deep(const Btsx2View& view);

}  // namespace storage
}  // namespace blossomtree

#endif  // BLOSSOMTREE_STORAGE_BTSX2_H_
