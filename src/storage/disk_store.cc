#include "storage/disk_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "index/btsi.h"

namespace blossomtree {
namespace storage {

namespace {

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

/// pread that retries short reads; false on EOF-before-done or error.
bool ReadFully(int fd, char* dst, size_t len, uint64_t offset) {
  while (len > 0) {
    ssize_t got = ::pread(fd, dst, len, static_cast<off_t>(offset));
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;
    }
    dst += got;
    len -= static_cast<size_t>(got);
    offset += static_cast<uint64_t>(got);
  }
  return true;
}

constexpr size_t kPageBytes = 4096;

}  // namespace

DiskStore::Block::~Block() {
  // Best-effort residency release for evicted mmap-backed blocks: the
  // mapping is read-only and file-backed, so MADV_DONTNEED only drops the
  // resident pages — a later touch faults them back in, it never loses
  // data. Shrink to whole pages inside the block so pinned neighbors keep
  // their edge pages.
  if (advise_base != nullptr && advise_len > 0) {
    uintptr_t begin = reinterpret_cast<uintptr_t>(advise_base);
    uintptr_t end = begin + advise_len;
    uintptr_t aligned_begin = (begin + kPageBytes - 1) & ~(kPageBytes - 1);
    uintptr_t aligned_end = end & ~(kPageBytes - 1);
    if (aligned_end > aligned_begin) {
      ::madvise(reinterpret_cast<void*>(aligned_begin),
                aligned_end - aligned_begin, MADV_DONTNEED);
    }
  }
}

DiskStore::~DiskStore() {
  doc_.reset();  // The facade views the image; drop it before unmapping.
  if (mode_ == Mode::kMmap && image_ != nullptr && image_bytes_ > 0) {
    ::munmap(const_cast<char*>(image_), image_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

std::shared_ptr<const DiskStore::Block> DiskStore::PinBlock(
    size_t index) const {
  if (std::shared_ptr<const Block> hit = cache_->Get(index)) return hit;
  auto block = std::make_shared<Block>();
  uint64_t offset = static_cast<uint64_t>(index) * block_bytes_;
  size_t len = static_cast<size_t>(
      std::min<uint64_t>(block_bytes_, records_bytes_ - offset));
  if (mode_ == Mode::kPread) {
    block->owned.reset(new char[len]);
    if (!ReadFully(fd_, block->owned.get(), len, records_offset_ + offset)) {
      // A read error mid-scan has no status channel through Get(); serve
      // zeroed records (subtree_end 0 terminates walks) rather than UB.
      std::memset(block->owned.get(), 0, len);
    }
    block->data = block->owned.get();
  } else {
    block->data = image_ + records_offset_ + offset;
    if (mode_ == Mode::kMmap) {
      block->advise_base = block->data;
      block->advise_len = len;
    }
  }
  block->size = len;
  // Charge the block against the ResourceGuard budget; the cache evicts
  // LRU blocks round-robin until the reservation fits and drops the entry
  // entirely if it never can — our shared_ptr still pins it for the
  // caller's cursor either way, so budget < block_bytes degrades to
  // "nothing stays resident between cursor moves", not a failure.
  cache_->Put(index, block, len);
  return block;
}

Status DiskStore::LoadPreadHeader(const std::string& path) {
  char header[kBtsx2HeaderBytes];
  if (!ReadFully(fd_, header, sizeof header, 0)) {
    return Status::IOError("BTSX2: short header read from '" + path + "'");
  }
  if (std::memcmp(header, kBtsx2Magic, sizeof kBtsx2Magic) != 0) {
    return Status::InvalidArgument("BTSX2: bad magic in '" + path + "'");
  }
  if (GetU32(header + 8) != kBtsx2Version) {
    return Status::InvalidArgument("BTSX2: unsupported version");
  }
  if (GetU32(header + 12) != kBtsx2EndianProbe) {
    return Status::InvalidArgument("BTSX2: endianness probe mismatch");
  }
  on_disk_generation_ = GetU64(header + 16);
  uint64_t num_nodes = GetU64(header + 24);
  records_offset_ = GetU64(header + 88 + kSecRecords * 16);
  records_bytes_ = GetU64(header + 88 + kSecRecords * 16 + 8);
  if (num_nodes >= static_cast<uint32_t>(-1) ||
      records_bytes_ != num_nodes * sizeof(NodeRecord) ||
      records_offset_ < kBtsx2HeaderBytes ||
      records_offset_ > file_bytes_ ||
      records_bytes_ > file_bytes_ - records_offset_) {
    return Status::InvalidArgument("BTSX2: record section out of bounds");
  }
  num_nodes_ = static_cast<size_t>(num_nodes);
  // No document facade in pread mode; the scan API keys off the on-disk
  // stamp (see generation()).
  generation_ = on_disk_generation_;
  return Status::OK();
}

Status DiskStore::LoadImage(const std::string& path,
                            const DiskStoreOptions& options) {
  if (file_bytes_ < kBtsx2HeaderBytes) {
    return Status::InvalidArgument("BTSX2: '" + path +
                                   "' is smaller than the header");
  }
  void* map = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_SHARED, fd_, 0);
  if (map != MAP_FAILED) {
    mode_ = Mode::kMmap;
    image_ = static_cast<const char*>(map);
    image_bytes_ = file_bytes_;
  } else {
    // No mapping available (exotic filesystems, sandboxes): fall back to an
    // in-core image — everything still works, just not out-of-core.
    mode_ = Mode::kHeap;
    heap_image_.reset(new char[file_bytes_]);
    if (!ReadFully(fd_, heap_image_.get(), file_bytes_, 0)) {
      return Status::IOError("BTSX2: short read from '" + path + "'");
    }
    image_ = heap_image_.get();
    ::close(fd_);
    fd_ = -1;
  }

  Result<Btsx2View> view = MapBtsx2(std::string_view(image_, file_bytes_));
  BT_RETURN_NOT_OK(view.status());
  view_ = view.MoveValue();
  if (options.full_validation) {
    BT_RETURN_NOT_OK(ValidateBtsx2Deep(view_));
  }
  records_offset_ = view_.records_offset;
  records_bytes_ = view_.records_bytes;
  num_nodes_ = static_cast<size_t>(view_.num_nodes);
  on_disk_generation_ = view_.generation;

  doc_ = std::make_unique<xml::Document>();
  BT_RETURN_NOT_OK(doc_->AdoptExternal(view_.ToLayout()));
  generation_ = doc_->generation();
  return Status::OK();
}

Result<std::unique_ptr<DiskStore>> DiskStore::Open(const std::string& path,
                                                   DiskStoreOptions options) {
  auto store = std::unique_ptr<DiskStore>(new DiskStore());

  // Blocks are whole pages (and therefore whole records): madvise ranges
  // stay page-aligned and no record straddles a block boundary.
  size_t block = options.block_bytes;
  block = std::max<size_t>(block, kPageBytes);
  block = (block + kPageBytes - 1) & ~(kPageBytes - 1);
  store->block_bytes_ = block;
  store->nodes_per_block_ = block / sizeof(NodeRecord);
  store->budget_bytes_ = std::max<uint64_t>(options.cache_budget_bytes, 1);
  store->cache_ = std::make_unique<util::ShardedLruCache<uint64_t, Block>>(
      store->budget_bytes_, options.cache_shards);

  store->fd_ = ::open(path.c_str(), O_RDONLY);
  if (store->fd_ < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(store->fd_, &st) != 0) {
    return Status::IOError("cannot stat '" + path +
                           "': " + std::strerror(errno));
  }
  store->file_bytes_ = static_cast<uint64_t>(st.st_size);

  if (options.use_mmap) {
    BT_RETURN_NOT_OK(store->LoadImage(path, options));
  } else {
    store->mode_ = Mode::kPread;
    if (store->file_bytes_ < kBtsx2HeaderBytes) {
      return Status::InvalidArgument("BTSX2: '" + path +
                                     "' is smaller than the header");
    }
    BT_RETURN_NOT_OK(store->LoadPreadHeader(path));
  }
  store->num_blocks_ =
      static_cast<size_t>((store->records_bytes_ + block - 1) / block);

  // The `.btsi` sidecar rides along in the mapped modes. Best-effort on
  // open: a missing, stale (generation mismatch after re-ingest), or
  // corrupt sidecar leaves index() null — plans fall back to scans.
  if (options.load_index && store->doc_ != nullptr) {
    auto loaded = index::LoadBtsi(index::BtsiSidecarPath(path));
    if (loaded.ok() &&
        (*loaded)->generation() == store->on_disk_generation_ &&
        (*loaded)->Matches(*store->doc_)) {
      store->index_ = std::move(*loaded);
    }
  }
  return store;
}

}  // namespace storage
}  // namespace blossomtree
