#ifndef BLOSSOMTREE_OPT_PLANNER_H_
#define BLOSSOMTREE_OPT_PLANNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/index_seek.h"
#include "exec/merged_scan.h"
#include "exec/nok_scan.h"
#include "exec/operator.h"
#include "exec/result_cache.h"
#include "index/structural_index.h"
#include "pattern/decompose.h"
#include "util/resource_guard.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace blossomtree {
namespace opt {

/// \brief Physical join strategy for the //-connections between NoKs.
enum class JoinStrategy {
  kAuto,             ///< Recursion-aware choice (paper §4.2/§4.3 and §5.2).
  kPipelined,        ///< Pipelined merge join — non-recursive documents only.
  kBoundedNestedLoop,///< BNLJ — correct everywhere, repeated bounded scans.
  kNaiveNestedLoop,  ///< Unbounded nested loop (full re-scan per outer
                     ///< match) — the strawman the BNLJ ablation compares
                     ///< against.
};

const char* JoinStrategyToString(JoinStrategy s);

struct PlanOptions {
  JoinStrategy strategy = JoinStrategy::kAuto;
  /// Evaluate all NoK scans of one document in a single merged pass
  /// (§4.2's merged-NoK optimization). Only applies with kPipelined /
  /// non-recursive kAuto plans (the BNLJ's inner must re-scan on demand).
  bool merge_nok_scans = false;
  /// Worker pool for intra-query parallelism (borrowed, not owned):
  /// full-document NoK scans run partitioned across it. nullptr = serial
  /// plan, bitwise-identical results either way.
  util::ThreadPool* pool = nullptr;
  /// Per-query resource guard (borrowed, not owned): when set, every
  /// physical operator in the plan samples it at batch boundaries and ends
  /// its stream early once it trips (DESIGN.md §9). Callers must check
  /// guard->status() after draining the plan; nullptr = ungoverned.
  util::ResourceGuard* guard = nullptr;
  /// Annotate every operator with a CostModel cardinality estimate (for
  /// EXPLAIN ANALYZE's est-vs-actual and the calibration check). Off by
  /// default: building the model forces tag-index construction, which would
  /// perturb benchmark timings.
  bool estimate_cardinalities = false;
  /// NoK sub-result cache (borrowed, not owned; DESIGN.md §11): when set,
  /// every full-document NokScanOperator in the plan probes it before
  /// scanning and fills it after a complete cold scan. nullptr = uncached
  /// (the exact pre-cache behavior, counters included).
  exec::NokResultCache* result_cache = nullptr;
  /// Paged node store backing `doc` (borrowed, not owned): an in-RAM
  /// storage::PageStore or an out-of-core storage::DiskStore. When set,
  /// every NoK scan in the plan touches visited nodes through it (per-scan
  /// cursors), so block residency and page-read counters reflect the
  /// query's real access pattern; scan partitioning also goes through the
  /// store. nullptr = scans run purely over the document.
  const storage::NodeStore* store = nullptr;
  /// Structural index over `doc` (borrowed, not owned; DESIGN.md §14): when
  /// set and structurally matching the document, the planner costs an
  /// index-seek access path against the sequential scan per NoK root using
  /// the index's real posting-list cardinalities, short-circuits NoKs whose
  /// mandatory paths the DataGuide proves absent to empty streams (zero
  /// nodes scanned), and feeds the value index's selectivities into
  /// cardinality estimation. Access-path changes never change results:
  /// seeks re-verify every candidate and emit the scan's exact stream.
  /// nullptr = every NoK scans (the exact pre-index behavior).
  const index::StructuralIndex* index = nullptr;
  /// Batched/vectorized execution knobs (DESIGN.md §16): batch size for
  /// GetNextBatch exchanges, the chunked+SIMD scan drivers
  /// (`exec.vectorize`, on by default), and the SIMD kernel toggle
  /// (`exec.simd`). Every combination produces byte-identical results and
  /// bitwise-identical deterministic counters; vectorize=false pins the
  /// node-at-a-time reference path.
  exec::ExecOptions exec;
};

/// \brief A compiled plan for one pattern tree of a BlossomTree.
///
/// Owns the operator tree. `root` emits the pattern tree's NestedLists;
/// `tops` is their slot context; `scans` exposes the underlying NoK scan
/// drivers for I/O metrics.
struct PatternTreePlan {
  std::unique_ptr<exec::NestedListOperator> root;
  std::vector<pattern::SlotId> tops;
  std::vector<exec::NokScanOperator*> scans;  ///< Borrowed from `root`.
  std::vector<exec::IndexSeekOperator*> seeks;  ///< Borrowed from `root`.
  std::string explain;

  uint64_t TotalNodesScanned() const {
    uint64_t total = 0;
    for (const auto* s : scans) total += s->NodesScanned();
    for (const auto* s : seeks) total += s->NodesScanned();
    return total;
  }
};

/// \brief The plan for a whole BlossomTree: one PatternTreePlan per pattern
/// tree (FLWOR queries have several; path queries exactly one).
struct QueryPlan {
  const pattern::BlossomTree* tree = nullptr;
  pattern::Decomposition decomposition;
  std::vector<PatternTreePlan> trees;
  JoinStrategy chosen = JoinStrategy::kPipelined;
  /// Set when merge_nok_scans produced a shared single-scan (its
  /// NodesScanned() is the plan's scan I/O in that case).
  std::unique_ptr<exec::MergedNokScan> merged_scan;

  std::string Explain() const;

  /// \brief Runs every operator tree to completion (children included).
  /// Call before reading counters: it normalizes lazy serial pipelines and
  /// eagerly-materializing parallel scans to the same run-to-completion
  /// totals (DESIGN.md §8), so profiles are identical at every thread
  /// count. Idempotent on drained plans; invalidates further GetNext use.
  void FinishAll();

  /// \brief EXPLAIN ANALYZE rendering: the Explain() tree re-annotated with
  /// each operator's estimated cardinality (when planned with
  /// estimate_cardinalities) and actual counters. Call after FinishAll()
  /// for complete totals.
  std::string ExplainAnalyze() const;
};

/// \brief Depth-first pre-order walk over every operator of every pattern
/// tree in the plan.
void ForEachOperator(
    const QueryPlan& plan,
    const std::function<void(const exec::NestedListOperator&, int depth)>&
        fn);

/// \brief The rule-based optimizer (paper §5: "the optimizer needs to have
/// the knowledge of how recursive the input XML document is"):
///  - decomposes the BlossomTree into NoKs (Algorithm 1),
///  - drops the trivial virtual-root NoKs and their //-connections (a full
///    sequential scan subsumes them),
///  - for each remaining //-connection picks the join: pipelined on
///    non-recursive documents, bounded nested-loop otherwise,
///  - optionally merges all root NoK scans into one pass.
/// \param precomputed optional Decomposition of `tree` (e.g. from the plan
///        cache): copied into the plan instead of re-running Algorithm 1.
///        Must have been produced by pattern::Decompose(*tree).
Result<QueryPlan> PlanQuery(const xml::Document* doc,
                            const pattern::BlossomTree* tree,
                            const PlanOptions& options = {},
                            const pattern::Decomposition* precomputed =
                                nullptr);

/// \brief Convenience for path queries (single pattern tree, result bound
/// to the "result" variable): plans, executes, and returns the distinct
/// document-ordered matches.
Result<std::vector<xml::NodeId>> EvaluatePathQuery(
    const xml::Document* doc, const pattern::BlossomTree* tree,
    const PlanOptions& options = {});

}  // namespace opt
}  // namespace blossomtree

#endif  // BLOSSOMTREE_OPT_PLANNER_H_
