#ifndef BLOSSOMTREE_OPT_COST_MODEL_H_
#define BLOSSOMTREE_OPT_COST_MODEL_H_

#include <string>
#include <vector>

#include "opt/planner.h"
#include "pattern/blossom_tree.h"
#include "pattern/decompose.h"
#include "xml/document.h"

namespace blossomtree {
namespace opt {

/// \brief Estimated cost of a physical alternative, in abstract units
/// (node fetches + constraint checks).
struct CostEstimate {
  double cardinality = 0;  ///< Estimated result size.
  double io_cost = 0;      ///< Node/stream-entry fetches.
  double cpu_cost = 0;     ///< Constraint checks, merges, joins.

  double Total() const { return io_cost + cpu_cost; }
};

/// \brief Cardinality and cost estimation from document statistics —
/// the paper's §6 future work ("To choose an optimal plan automatically,
/// the optimizer needs a cost model or similar mechanism").
///
/// Estimation uses per-tag counts, per-tag average subtree sizes, and the
/// classic independence/containment assumptions; it is deliberately simple
/// and fast (one pass over the tag indexes at construction).
class CostModel {
 public:
  /// \param index optional structural index over `doc` (DESIGN.md §14):
  ///        when set, value-constraint selectivities come from the value
  ///        index (exact counts for answerable equality probes, order
  ///        statistics for ranges) instead of the fixed 0.1 guess.
  explicit CostModel(const xml::Document* doc,
                     const index::StructuralIndex* index = nullptr);

  /// \brief Elements matching a tag test ("*" = all elements).
  double TagCount(const std::string& tag) const;

  /// \brief Average subtree size (in nodes) of elements with this tag.
  double AvgSubtreeSize(const std::string& tag) const;

  /// \brief Selectivity of a vertex's value constraint, in (0, 1]: from the
  /// attached index when it can size the probe, 0.1 otherwise (the
  /// pre-index fixed factor). 1.0 for unconstrained vertices.
  double ValueSelectivity(const pattern::Vertex& v) const;

  /// \brief Estimated matches of the pattern subtree rooted at `v`
  /// (existence predicates reduce by containment selectivity; value
  /// constraints by a fixed factor).
  double EstimateVertexMatches(const pattern::BlossomTree& tree,
                               pattern::VertexId v) const;

  /// \brief Estimated result cardinality of a single-pattern-tree query.
  double EstimateResult(const pattern::BlossomTree& tree) const;

  /// \brief Cost of the pipelined-NoK plan: one scan per NoK (or one
  /// merged pass) + linear merges.
  CostEstimate EstimatePipelined(const pattern::BlossomTree& tree,
                                 bool merged_scan) const;

  /// \brief Cost of the BNLJ plan: outer scans plus per-outer-match bounded
  /// re-scans.
  CostEstimate EstimateBnlj(const pattern::BlossomTree& tree) const;

  /// \brief Cost of TwigStack: the tag-index streams plus solution
  /// expansion/merge.
  CostEstimate EstimateTwigStack(const pattern::BlossomTree& tree) const;

 private:
  const xml::Document* doc_;
  const index::StructuralIndex* index_;  ///< Optional, borrowed.
  std::vector<double> avg_subtree_;      ///< Per TagId.
};

/// \brief The optimizer's recommendation for a path query.
struct PlanAdvice {
  enum class Engine { kPipelined, kBnlj, kTwigStack };
  Engine engine = Engine::kPipelined;
  CostEstimate pipelined;
  CostEstimate bnlj;
  CostEstimate twigstack;
  bool pipelined_safe = true;  ///< Theorem-2 precondition holds.
  std::string rationale;
};

const char* EngineToString(PlanAdvice::Engine engine);

/// \brief Compares the estimated costs of the three physical alternatives
/// and recommends one, honoring the correctness constraint that the
/// pipelined join requires non-nesting joined tags.
PlanAdvice AdvisePlan(const xml::Document& doc,
                      const pattern::BlossomTree& tree);

/// \brief One operator's estimate-vs-actual cardinality comparison.
struct CalibrationEntry {
  std::string label;
  double estimated_rows = 0;
  uint64_t actual_rows = 0;
  /// Smoothed deviation factor: (max(est, act) + 1) / (min(est, act) + 1),
  /// so zero-row operators do not divide by zero.
  double ratio = 1.0;
  bool flagged = false;  ///< ratio exceeded the tolerance.
};

/// \brief Estimate-vs-actual report over a whole executed plan.
struct CalibrationReport {
  std::vector<CalibrationEntry> entries;
  size_t num_flagged = 0;

  std::string ToString() const;
};

/// \brief Compares every annotated operator's estimated cardinality with
/// its observed Stats().matches, flagging deviations beyond `tolerance`×
/// (the cost-model regression check). The plan must have been built with
/// PlanOptions::estimate_cardinalities and executed (FinishAll()) first;
/// operators without an estimate are skipped.
CalibrationReport CheckCalibration(const QueryPlan& plan,
                                   double tolerance = 10.0);

}  // namespace opt
}  // namespace blossomtree

#endif  // BLOSSOMTREE_OPT_COST_MODEL_H_
