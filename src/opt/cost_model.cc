#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>

namespace blossomtree {
namespace opt {

namespace {

/// Selectivity of a value constraint (no value histograms yet; a fixed
/// factor keeps estimates order-of-magnitude sane).
constexpr double kValueSelectivity = 0.1;

bool IsConcreteTag(const pattern::Vertex& v) {
  return !v.IsVirtualRoot() && !v.MatchesAnyTag() &&
         (v.tag.empty() || v.tag[0] != '@');
}

}  // namespace

CostModel::CostModel(const xml::Document* doc,
                     const index::StructuralIndex* index)
    : doc_(doc), index_(index) {
  // A structurally stale index would size probes against the wrong
  // dictionary; fall back to the fixed selectivity rather than misestimate.
  if (index_ != nullptr && !index_->Matches(*doc)) index_ = nullptr;
  avg_subtree_.assign(doc->tags().size(), 1.0);
  for (xml::TagId t = 0; t < doc->tags().size(); ++t) {
    const auto& nodes = doc->TagIndex(t);
    if (nodes.empty()) continue;
    double total = 0;
    for (xml::NodeId n : nodes) {
      total += static_cast<double>(doc->SubtreeEnd(n) - n + 1);
    }
    avg_subtree_[t] = total / static_cast<double>(nodes.size());
  }
}

double CostModel::TagCount(const std::string& tag) const {
  if (tag == "*" || tag == "~") {
    return static_cast<double>(doc_->NumElements());
  }
  xml::TagId t = doc_->tags().Lookup(tag);
  if (t == xml::kNullTag) return 0;
  return static_cast<double>(doc_->TagIndex(t).size());
}

double CostModel::AvgSubtreeSize(const std::string& tag) const {
  if (tag == "*" || tag == "~") {
    return doc_->NumElements() == 0
               ? 1.0
               : static_cast<double>(doc_->NumNodes()) /
                     static_cast<double>(doc_->NumElements());
  }
  xml::TagId t = doc_->tags().Lookup(tag);
  if (t == xml::kNullTag || t >= avg_subtree_.size()) return 1.0;
  return avg_subtree_[t];
}

double CostModel::ValueSelectivity(const pattern::Vertex& v) const {
  if (!v.value) return 1.0;
  if (index_ != nullptr && IsConcreteTag(v)) {
    xml::TagId t = doc_->tags().Lookup(v.tag);
    if (t != xml::kNullTag) {
      return index_->EstimateValueSelectivity(t, v.value->op,
                                              v.value->literal);
    }
  }
  return kValueSelectivity;
}

double CostModel::EstimateVertexMatches(const pattern::BlossomTree& tree,
                                        pattern::VertexId v) const {
  const pattern::Vertex& vx = tree.vertex(v);
  double base = vx.IsVirtualRoot() ? 1.0 : TagCount(vx.tag);
  if (base == 0) return 0;
  double selectivity = 1.0;
  if (vx.value) selectivity *= ValueSelectivity(vx);
  if (vx.position > 0) selectivity *= 0.5;
  double n = std::max<double>(1.0, static_cast<double>(doc_->NumElements()));
  for (pattern::VertexId c : vx.children) {
    const pattern::Vertex& cx = tree.vertex(c);
    if (cx.mode == pattern::EdgeMode::kLet) continue;  // Optional.
    double child_matches = EstimateVertexMatches(tree, c);
    // Containment: the probability that a given v-subtree holds one of the
    // child matches ≈ child_matches × (avg subtree of v) / N, capped at 1.
    double scope = vx.IsVirtualRoot() ? n : AvgSubtreeSize(vx.tag);
    double p = std::min(1.0, child_matches * scope / n);
    selectivity *= p;
  }
  return base * selectivity;
}

double CostModel::EstimateResult(const pattern::BlossomTree& tree) const {
  pattern::VertexId result = tree.VertexOfVariable("result");
  if (result == pattern::kNoVertex) {
    if (tree.roots().empty()) return 0;
    result = tree.roots()[0];
  }
  // Result nodes must match their own subtree and lie under a chain of
  // matching ancestors; approximate with the result vertex's own matches
  // scaled by each ancestor's existence probability.
  double estimate = EstimateVertexMatches(tree, result);
  double n = std::max<double>(1.0, static_cast<double>(doc_->NumElements()));
  for (pattern::VertexId a = tree.vertex(result).parent;
       a != pattern::kNoVertex; a = tree.vertex(a).parent) {
    const pattern::Vertex& ax = tree.vertex(a);
    if (ax.IsVirtualRoot()) break;
    double anc = EstimateVertexMatches(tree, a);
    double cover = std::min(1.0, anc * AvgSubtreeSize(ax.tag) / n);
    estimate *= cover;
  }
  return estimate;
}

CostEstimate CostModel::EstimatePipelined(const pattern::BlossomTree& tree,
                                          bool merged_scan) const {
  CostEstimate out;
  out.cardinality = EstimateResult(tree);
  pattern::Decomposition d = pattern::Decompose(tree);
  double n = static_cast<double>(doc_->NumNodes());
  size_t scans = 0;
  for (const pattern::NokTree& nok : d.noks) {
    if (nok.vertices.size() == 1 && tree.vertex(nok.root).IsVirtualRoot()) {
      continue;
    }
    ++scans;
    // Matching work ≈ one constraint check per scanned node per root
    // candidate, plus subtree work on root hits.
    out.cpu_cost += n + EstimateVertexMatches(tree, nok.root) *
                            AvgSubtreeSize(tree.vertex(nok.root).tag);
  }
  out.io_cost = merged_scan ? n : n * static_cast<double>(scans);
  // Pipelined merges are linear in their inputs.
  for (const pattern::Connection& c : d.connections) {
    out.cpu_cost += EstimateVertexMatches(tree, c.from) +
                    EstimateVertexMatches(tree, c.to);
  }
  return out;
}

CostEstimate CostModel::EstimateBnlj(const pattern::BlossomTree& tree) const {
  CostEstimate out;
  out.cardinality = EstimateResult(tree);
  pattern::Decomposition d = pattern::Decompose(tree);
  double n = static_cast<double>(doc_->NumNodes());
  bool outer_scanned = false;
  for (const pattern::NokTree& nok : d.noks) {
    if (nok.vertices.size() == 1 && tree.vertex(nok.root).IsVirtualRoot()) {
      continue;
    }
    if (!outer_scanned) {
      out.io_cost += n;  // The base NoK scans the document once.
      outer_scanned = true;
    }
  }
  for (const pattern::Connection& c : d.connections) {
    if (tree.vertex(c.from).IsVirtualRoot()) continue;
    // Each outer match triggers a bounded inner re-scan of its subtree.
    double outer = EstimateVertexMatches(tree, c.from);
    double range = AvgSubtreeSize(tree.vertex(c.from).tag);
    out.io_cost += outer * range;
    out.cpu_cost += outer * range;
  }
  return out;
}

CostEstimate CostModel::EstimateTwigStack(
    const pattern::BlossomTree& tree) const {
  CostEstimate out;
  out.cardinality = EstimateResult(tree);
  // Streams: one entry per element of each query tag.
  for (pattern::VertexId v = 0; v < tree.NumVertices(); ++v) {
    const pattern::Vertex& vx = tree.vertex(v);
    if (vx.IsVirtualRoot()) continue;
    out.io_cost += IsConcreteTag(vx)
                       ? TagCount(vx.tag)
                       : static_cast<double>(doc_->NumElements());
  }
  // Solution expansion + merge ≈ path solutions (≥ result size).
  out.cpu_cost = out.io_cost + out.cardinality * 4;
  return out;
}

const char* EngineToString(PlanAdvice::Engine engine) {
  switch (engine) {
    case PlanAdvice::Engine::kPipelined:
      return "pipelined";
    case PlanAdvice::Engine::kBnlj:
      return "bounded-nested-loop";
    case PlanAdvice::Engine::kTwigStack:
      return "twigstack";
  }
  return "?";
}

PlanAdvice AdvisePlan(const xml::Document& doc,
                      const pattern::BlossomTree& tree) {
  CostModel model(&doc);
  PlanAdvice advice;
  advice.pipelined = model.EstimatePipelined(tree, /*merged_scan=*/true);
  advice.bnlj = model.EstimateBnlj(tree);
  advice.twigstack = model.EstimateTwigStack(tree);

  // Correctness gate: pipelined joins need every join's outer tag to be
  // non-nesting (Theorem 2 per tag).
  advice.pipelined_safe = true;
  pattern::Decomposition d = pattern::Decompose(tree);
  for (const pattern::Connection& c : d.connections) {
    const pattern::Vertex& from = tree.vertex(c.from);
    if (from.IsVirtualRoot()) continue;
    if (!IsConcreteTag(from)) {
      advice.pipelined_safe = false;
      break;
    }
    xml::TagId t = doc.tags().Lookup(from.tag);
    if (t != xml::kNullTag && doc.TagRecursionDegree(t) > 1) {
      advice.pipelined_safe = false;
      break;
    }
  }

  double best = advice.twigstack.Total();
  advice.engine = PlanAdvice::Engine::kTwigStack;
  if (advice.pipelined_safe && advice.pipelined.Total() < best) {
    best = advice.pipelined.Total();
    advice.engine = PlanAdvice::Engine::kPipelined;
  }
  if (advice.bnlj.Total() < best) {
    best = advice.bnlj.Total();
    advice.engine = PlanAdvice::Engine::kBnlj;
  }
  advice.rationale =
      std::string("estimated totals: pipelined=") +
      std::to_string(advice.pipelined.Total()) +
      (advice.pipelined_safe ? "" : " (unsafe: nesting outer tag)") +
      ", bnlj=" + std::to_string(advice.bnlj.Total()) +
      ", twigstack=" + std::to_string(advice.twigstack.Total()) +
      " -> " + EngineToString(advice.engine);
  return advice;
}

std::string CalibrationReport::ToString() const {
  std::string out;
  for (const CalibrationEntry& e : entries) {
    out += e.label + ": est=" + std::to_string(e.estimated_rows) +
           " actual=" + std::to_string(e.actual_rows) +
           " ratio=" + std::to_string(e.ratio) +
           (e.flagged ? " FLAGGED" : "") + "\n";
  }
  out += std::to_string(num_flagged) + "/" +
         std::to_string(entries.size()) + " operators flagged\n";
  return out;
}

CalibrationReport CheckCalibration(const QueryPlan& plan, double tolerance) {
  CalibrationReport report;
  ForEachOperator(plan, [&](const exec::NestedListOperator& op, int) {
    double est = op.estimated_rows();
    if (est < 0) return;  // Planned without estimate_cardinalities.
    CalibrationEntry e;
    e.label = op.Label();
    e.estimated_rows = est;
    e.actual_rows = op.Stats().matches;
    double act = static_cast<double>(e.actual_rows);
    e.ratio = (std::max(est, act) + 1.0) / (std::min(est, act) + 1.0);
    e.flagged = e.ratio > tolerance;
    if (e.flagged) ++report.num_flagged;
    report.entries.push_back(std::move(e));
  });
  return report;
}

}  // namespace opt
}  // namespace blossomtree
