#include "opt/planner.h"

#include <algorithm>
#include <unordered_set>

#include "exec/joins.h"
#include "nestedlist/ops.h"
#include "opt/cost_model.h"
#include "pattern/paths.h"
#include "util/trace.h"

namespace blossomtree {
namespace opt {

using exec::NestedListOperator;
using exec::NokScanOperator;
using pattern::Connection;
using pattern::Decomposition;
using pattern::VertexId;

const char* JoinStrategyToString(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kAuto:
      return "auto";
    case JoinStrategy::kPipelined:
      return "pipelined";
    case JoinStrategy::kBoundedNestedLoop:
      return "bounded-nested-loop";
    case JoinStrategy::kNaiveNestedLoop:
      return "naive-nested-loop";
  }
  return "?";
}

namespace {

bool IsTrivialRootNok(const pattern::BlossomTree& tree,
                      const pattern::NokTree& nok) {
  return nok.vertices.size() == 1 && tree.vertex(nok.root).IsVirtualRoot();
}

/// NoK-local cardinality estimate: EstimateVertexMatches restricted to the
/// NoK's own vertices — a bare scan does not enforce the //-connected
/// subtrees hanging off the NoK, so those children must not filter here.
double EstimateNokMatches(const CostModel& model,
                          const pattern::BlossomTree& tree,
                          const pattern::NokTree& nok, double num_elements,
                          pattern::VertexId v) {
  std::unordered_set<pattern::VertexId> members(nok.vertices.begin(),
                                                nok.vertices.end());
  std::function<double(pattern::VertexId)> est =
      [&](pattern::VertexId u) -> double {
    const pattern::Vertex& ux = tree.vertex(u);
    double base = ux.IsVirtualRoot() ? 1.0 : model.TagCount(ux.tag);
    if (base == 0) return 0;
    double selectivity = 1.0;
    if (ux.value) selectivity *= model.ValueSelectivity(ux);
    if (ux.position > 0) selectivity *= 0.5;
    double n = std::max(1.0, num_elements);
    for (pattern::VertexId c : ux.children) {
      if (members.count(c) == 0) continue;  // Cut //-edge: joined later.
      const pattern::Vertex& cx = tree.vertex(c);
      if (cx.mode == pattern::EdgeMode::kLet) continue;
      double scope = ux.IsVirtualRoot() ? n : model.AvgSubtreeSize(ux.tag);
      selectivity *= std::min(1.0, est(c) * scope / n);
    }
    return base * selectivity;
  };
  return est(v);
}

/// The planner's access-path decision for one NoK (DESIGN.md §14).
struct NokAccessPath {
  enum class Kind {
    kScan,  ///< Sequential (or merged) NoK scan — the default.
    kSeek,  ///< IndexSeek over a candidate list from the structural index.
    kEmpty  ///< Provably empty (DataGuide / absent tag): seek zero
            ///< candidates, scan nothing.
  };
  Kind kind = Kind::kScan;
  std::vector<xml::NodeId> candidates;  ///< For kSeek; empty for kEmpty.
  std::string detail;                   ///< EXPLAIN annotation.
};

/// Costs index-seek against sequential scan per NoK root using the index's
/// real posting-list cardinalities, and short-circuits NoKs whose mandatory
/// paths the DataGuide rules out. Every choice is result-preserving: seeks
/// re-verify candidates with the full matcher, and kEmpty is only chosen on
/// a structural *proof* of emptiness.
std::vector<NokAccessPath> ChooseAccessPaths(
    const xml::Document* doc, const pattern::BlossomTree* tree,
    const Decomposition& d, const index::StructuralIndex* index) {
  std::vector<NokAccessPath> out(d.noks.size());
  if (index == nullptr || !index->Matches(*doc)) return out;
  for (size_t i = 0; i < d.noks.size(); ++i) {
    const pattern::NokTree& nok = d.noks[i];
    const pattern::Vertex& root = tree->vertex(nok.root);
    NokAccessPath& ap = out[i];
    bool attr_root = !root.tag.empty() && root.tag[0] == '@';
    // DataGuide short-circuit: if the NoK's mandatory child-axis paths
    // cannot all embed at one guide node, no document node matches —
    // whatever the value or positional constraints say. Attribute-rooted
    // NoKs bypass the guide (attributes are element side data, not paths).
    if (!attr_root &&
        !index->CanMatchPaths(pattern::ExtractMandatoryPaths(*tree, nok))) {
      ap.kind = NokAccessPath::Kind::kEmpty;
      ap.detail = "guide: no such path";
      continue;
    }
    if (root.IsVirtualRoot() || root.MatchesAnyTag() || attr_root) {
      continue;  // No posting list to seek ("~" matches at most once).
    }
    xml::TagId t = doc->tags().Lookup(root.tag);
    if (t == xml::kNullTag) {
      ap.kind = NokAccessPath::Kind::kEmpty;
      ap.detail = "tag absent";
      continue;
    }
    // Candidate set: an exact value-index equality run when the root
    // carries an answerable `= literal` predicate, else the tag's posting
    // list. Both are provable supersets of the NoK's match roots.
    std::vector<xml::NodeId> candidates;
    std::string source;
    if (root.value && root.value->op == xpath::CompareOp::kEq) {
      index::EqualitySeek seek = index->SeekEquality(t, root.value->literal);
      if (seek.usable) {
        candidates = std::move(seek.nodes);
        source = "value-eq";
      }
    }
    if (source.empty()) {
      auto postings = index->Postings(t);
      candidates.reserve(postings.size());
      for (const index::PostingEntry& e : postings) {
        candidates.push_back(e.node);
      }
      source = "postings";
    }
    // Seek cost: each probe verifies one candidate subtree (~avg_subtree
    // node visits). Scan cost: one root test per document node. Real
    // cardinalities on both sides — no fixed selectivity guess.
    double probe = 1.0 + index->Stats(t).avg_subtree;
    double seek_cost = static_cast<double>(candidates.size()) * probe;
    double scan_cost = static_cast<double>(doc->NumNodes());
    if (seek_cost < scan_cost) {
      ap.kind = NokAccessPath::Kind::kSeek;
      ap.candidates = std::move(candidates);
      ap.detail =
          source + ", " + std::to_string(ap.candidates.size()) + " candidates";
    }
  }
  return out;
}

/// Recursive plan builder for the NoK-join tree under `nok_index`.
class TreePlanner {
 public:
  TreePlanner(const xml::Document* doc, const pattern::BlossomTree* tree,
              const Decomposition* decomp, JoinStrategy strategy,
              exec::MergedNokScan* merged,
              const std::vector<int>* merged_index,
              const std::vector<NokAccessPath>* access,
              PatternTreePlan* plan,
              bool* used_pipelined, bool* used_bnlj,
              util::ThreadPool* pool, util::ResourceGuard* guard,
              const CostModel* cost, exec::NokResultCache* result_cache,
              const storage::NodeStore* store, exec::ExecOptions exec)
      : doc_(doc),
        tree_(tree),
        decomp_(decomp),
        strategy_(strategy),
        merged_(merged),
        merged_index_(merged_index),
        access_(access),
        plan_(plan),
        used_pipelined_(used_pipelined),
        used_bnlj_(used_bnlj),
        pool_(pool),
        guard_(guard),
        cost_(cost),
        result_cache_(result_cache),
        store_(store),
        exec_(exec) {}

  /// True when matches of `v`'s tag can never nest — the precondition for
  /// the pipelined join's merge discipline (Theorem 2 holds per tag: a
  /// //-join whose outer tag has nesting degree 1 behaves as on a
  /// non-recursive document, even if other tags recurse).
  bool NonNesting(VertexId v) const {
    const pattern::Vertex& vx = tree_->vertex(v);
    if (vx.IsVirtualRoot()) return true;
    if (vx.MatchesAnyTag()) return false;
    std::string tag = vx.tag;
    if (!tag.empty() && tag[0] == '@') return false;
    xml::TagId t = doc_->tags().Lookup(tag);
    if (t == xml::kNullTag) return true;  // Tag absent: zero matches.
    return doc_->TagRecursionDegree(t) <= 1;
  }

  /// Per-connection strategy under kAuto (paper §5: the optimizer chooses
  /// using its knowledge of document recursion — here per tag).
  JoinStrategy Pick(const Connection& c, uint32_t outer_nok) const {
    if (strategy_ != JoinStrategy::kAuto) return strategy_;
    bool safe = NonNesting(decomp_->noks[outer_nok].root) && NonNesting(c.from);
    return safe ? JoinStrategy::kPipelined
                : JoinStrategy::kBoundedNestedLoop;
  }

  Result<std::unique_ptr<NestedListOperator>> Build(uint32_t nok_index,
                                                    int depth) {
    std::unique_ptr<NestedListOperator> op;
    double est = -1.0;
    if (cost_ != nullptr) {
      est = EstimateNokMatches(
          *cost_, *tree_, decomp_->noks[nok_index],
          static_cast<double>(doc_->NumElements()),
          decomp_->noks[nok_index].root);
    }
    const NokAccessPath& ap = (*access_)[nok_index];
    if (ap.kind != NokAccessPath::Kind::kScan) {
      auto seek = std::make_unique<exec::IndexSeekOperator>(
          doc_, tree_, &decomp_->noks[nok_index], ap.candidates, guard_,
          store_);
      plan_->seeks.push_back(seek.get());
      std::string label = "IndexSeek(" + NokLabel(nok_index) + ")";
      seek->set_label(label);
      Indent(depth);
      plan_->explain += label + " [";
      plan_->explain +=
          ap.kind == NokAccessPath::Kind::kEmpty ? "empty: " : "";
      plan_->explain += ap.detail + "]\n";
      op = std::move(seek);
    } else if (merged_ != nullptr && (*merged_index_)[nok_index] >= 0) {
      op = merged_->MakeOperator(
          static_cast<size_t>((*merged_index_)[nok_index]));
      op->set_label("MergedNokView(" + NokLabel(nok_index) + ")");
      Indent(depth);
      plan_->explain += "MergedNokView(" + NokLabel(nok_index) + ")\n";
    } else {
      auto scan = std::make_unique<NokScanOperator>(
          doc_, tree_, &decomp_->noks[nok_index], pool_, guard_,
          result_cache_, store_, exec_);
      plan_->scans.push_back(scan.get());
      scan->set_label("NokScan(" + NokLabel(nok_index) + ")");
      Indent(depth);
      plan_->explain += "NokScan(" + NokLabel(nok_index) + ")";
      if (pool_ != nullptr && pool_->NumThreads() > 1) {
        plan_->explain +=
            " [parallel x" + std::to_string(pool_->NumThreads()) + "]";
      }
      plan_->explain += "\n";
      op = std::move(scan);
    }
    if (cost_ != nullptr) op->set_estimated_rows(est);
    for (const Connection& c : decomp_->connections) {
      if (decomp_->NokOf(c.from) != nok_index) continue;
      pattern::SlotId from_slot = tree_->SlotOfVertex(c.from);
      if (from_slot == pattern::kNoSlot) {
        return Status::Internal("connection endpoint has no slot");
      }
      JoinStrategy join = Pick(c, nok_index);
      const char* join_name = "BoundedNestedLoopJoin";
      if (join == JoinStrategy::kPipelined) {
        join_name = "PipelinedDescJoin";
        *used_pipelined_ = true;
      } else if (join == JoinStrategy::kNaiveNestedLoop) {
        join_name = "NaiveNestedLoopJoin";
        *used_bnlj_ = true;
      } else {
        *used_bnlj_ = true;
      }
      Indent(depth);
      plan_->explain += std::string(join_name) + "(" +
                        tree_->vertex(c.from).tag + " // " +
                        tree_->vertex(c.to).tag +
                        (c.mode == pattern::EdgeMode::kLet ? ", l)\n"
                                                           : ", f)\n");
      BT_ASSIGN_OR_RETURN(auto inner,
                          Build(decomp_->NokOf(c.to), depth + 1));
      std::string join_label = std::string(join_name) + "(" +
                               tree_->vertex(c.from).tag + " // " +
                               tree_->vertex(c.to).tag + ")";
      if (join == JoinStrategy::kPipelined) {
        op = std::make_unique<exec::PipelinedDescJoin>(
            doc_, tree_, std::move(op), std::move(inner), from_slot, c.mode,
            guard_, exec_);
      } else {
        op = std::make_unique<exec::BoundedNestedLoopJoin>(
            doc_, tree_, std::move(op), std::move(inner), from_slot, c.mode,
            /*bounded=*/join != JoinStrategy::kNaiveNestedLoop, guard_);
      }
      op->set_label(std::move(join_label));
      if (cost_ != nullptr) {
        // A mandatory //-edge keeps the outer entries whose subtree holds
        // an inner match (containment assumption, as in the cost model);
        // optional edges never filter.
        if (c.mode != pattern::EdgeMode::kLet) {
          double n = std::max(
              1.0, static_cast<double>(doc_->NumElements()));
          double inner_est = cost_->EstimateVertexMatches(*tree_, c.to);
          double scope =
              tree_->vertex(c.from).IsVirtualRoot()
                  ? n
                  : cost_->AvgSubtreeSize(tree_->vertex(c.from).tag);
          est *= std::min(1.0, inner_est * scope / n);
        }
        op->set_estimated_rows(est);
      }
    }
    return op;
  }

 private:
  void Indent(int depth) {
    plan_->explain.append(static_cast<size_t>(depth) * 2, ' ');
  }

  std::string NokLabel(uint32_t nok_index) const {
    std::string out;
    for (size_t i = 0; i < decomp_->noks[nok_index].vertices.size(); ++i) {
      if (i > 0) out += ",";
      out += tree_->vertex(decomp_->noks[nok_index].vertices[i]).tag;
    }
    return out;
  }

  const xml::Document* doc_;
  const pattern::BlossomTree* tree_;
  const Decomposition* decomp_;
  JoinStrategy strategy_;
  exec::MergedNokScan* merged_;
  const std::vector<int>* merged_index_;
  const std::vector<NokAccessPath>* access_;
  PatternTreePlan* plan_;
  bool* used_pipelined_;
  bool* used_bnlj_;
  util::ThreadPool* pool_;
  util::ResourceGuard* guard_;
  const CostModel* cost_;
  exec::NokResultCache* result_cache_;
  const storage::NodeStore* store_;
  exec::ExecOptions exec_;
};

}  // namespace

std::string QueryPlan::Explain() const {
  std::string out = "strategy: ";
  out += JoinStrategyToString(chosen);
  out += "\n";
  for (size_t i = 0; i < trees.size(); ++i) {
    out += "pattern tree " + std::to_string(i) + ":\n";
    out += trees[i].explain;
  }
  return out;
}

void QueryPlan::FinishAll() {
  for (PatternTreePlan& tp : trees) {
    if (tp.root != nullptr) tp.root->Finish();
  }
}

std::string QueryPlan::ExplainAnalyze() const {
  std::string out = "strategy: ";
  out += JoinStrategyToString(chosen);
  out += "\n";
  if (merged_scan != nullptr) {
    out += "merged scan: " + merged_scan->ScanStats().Summary() + "\n";
  }
  for (size_t i = 0; i < trees.size(); ++i) {
    out += "pattern tree " + std::to_string(i) + ":\n";
    if (trees[i].root != nullptr) {
      out += exec::ExplainAnalyzeTree(*trees[i].root, 1);
    }
  }
  return out;
}

void ForEachOperator(
    const QueryPlan& plan,
    const std::function<void(const exec::NestedListOperator&, int depth)>&
        fn) {
  std::function<void(const exec::NestedListOperator&, int)> walk =
      [&](const exec::NestedListOperator& op, int depth) {
        fn(op, depth);
        for (size_t i = 0; i < op.NumChildren(); ++i) {
          if (op.Child(i) != nullptr) walk(*op.Child(i), depth + 1);
        }
      };
  for (const PatternTreePlan& tp : plan.trees) {
    if (tp.root != nullptr) walk(*tp.root, 0);
  }
}

Result<QueryPlan> PlanQuery(const xml::Document* doc,
                            const pattern::BlossomTree* tree,
                            const PlanOptions& options,
                            const pattern::Decomposition* precomputed) {
  util::TraceSpan span("plan", "opt::PlanQuery");
  if (!tree->finalized()) {
    return Status::InvalidArgument("BlossomTree must be finalized");
  }
  QueryPlan plan;
  plan.tree = tree;
  // Decompose is deterministic, so a plan built from a cached decomposition
  // is identical to one that re-runs Algorithm 1 here.
  plan.decomposition =
      precomputed != nullptr ? *precomputed : pattern::Decompose(*tree);
  const Decomposition& d = plan.decomposition;

  // Rule: pipelined joins need document-order preservation (Theorem 2).
  // Under kAuto that is decided *per connection* using the per-tag nesting
  // statistics (TreePlanner::Pick); forced strategies apply uniformly.
  JoinStrategy strategy = options.strategy;

  // Find each pattern tree's base NoK: the root NoK itself, or — when the
  // root NoK is the bare virtual root "~" connected by // — its single
  // connection target (the sequential scan subsumes the trivial //-join
  // from the document root).
  std::vector<uint32_t> bases;
  std::vector<bool> is_base_or_inner(d.noks.size(), true);
  for (VertexId r : tree->roots()) {
    uint32_t root_nok = d.NokOf(r);
    if (IsTrivialRootNok(*tree, d.noks[root_nok])) {
      is_base_or_inner[root_nok] = false;
      uint32_t target = static_cast<uint32_t>(-1);
      for (const Connection& c : d.connections) {
        if (d.NokOf(c.from) == root_nok) {
          if (target != static_cast<uint32_t>(-1)) {
            return Status::Unsupported(
                "virtual root with multiple //-connections");
          }
          target = d.NokOf(c.to);
        }
      }
      if (target == static_cast<uint32_t>(-1)) {
        return Status::Unsupported("pattern tree with no matchable NoK");
      }
      bases.push_back(target);
    } else {
      bases.push_back(root_nok);
    }
  }

  // Per-NoK access paths: the cost-based seek-vs-scan choice plus DataGuide
  // emptiness proofs, decided before the merged scan so indexed NoKs never
  // join (or pay for) the eager merged pass.
  std::vector<NokAccessPath> access =
      ChooseAccessPaths(doc, tree, d, options.index);

  // Emptiness composes: a mandatory (kFor) //-edge to a provably-empty
  // inner NoK empties the join, so an empty proof anywhere below the base
  // empties the whole pattern tree — mark every reachable NoK kEmpty and
  // the plan runs with zero scanned nodes.
  {
    std::function<bool(uint32_t)> composed_empty = [&](uint32_t n) -> bool {
      if (access[n].kind == NokAccessPath::Kind::kEmpty) return true;
      for (const Connection& c : d.connections) {
        if (d.NokOf(c.from) != n) continue;
        if (c.mode != pattern::EdgeMode::kLet &&
            composed_empty(d.NokOf(c.to))) {
          return true;
        }
      }
      return false;
    };
    std::function<void(uint32_t)> mark_empty = [&](uint32_t n) {
      if (access[n].kind != NokAccessPath::Kind::kEmpty) {
        access[n].kind = NokAccessPath::Kind::kEmpty;
        access[n].candidates.clear();
        access[n].detail = "short-circuit: empty subplan";
      }
      for (const Connection& c : d.connections) {
        if (d.NokOf(c.from) == n) mark_empty(d.NokOf(c.to));
      }
    };
    for (uint32_t base : bases) {
      if (composed_empty(base)) mark_empty(base);
    }
  }

  // Optional merged single scan across every still-scanning NoK in the
  // plan (NoKs routed to index seeks or proven empty stay out of the
  // merged probe set — and out of its scan cost).
  std::unique_ptr<exec::MergedNokScan> merged;
  std::vector<int> merged_index(d.noks.size(), -1);
  if (options.merge_nok_scans &&
      strategy == JoinStrategy::kPipelined) {
    std::vector<const pattern::NokTree*> noks;
    for (size_t i = 0; i < d.noks.size(); ++i) {
      if (!is_base_or_inner[i]) continue;
      if (access[i].kind != NokAccessPath::Kind::kScan) continue;
      merged_index[i] = static_cast<int>(noks.size());
      noks.push_back(&d.noks[i]);
    }
    if (!noks.empty()) {
      merged = std::make_unique<exec::MergedNokScan>(doc, tree,
                                                     std::move(noks),
                                                     options.guard,
                                                     options.exec);
      merged->Run();
      // A trip during the eager merged scan leaves partial match lists;
      // surface it now rather than handing out a truncated plan.
      if (options.guard != nullptr && options.guard->Tripped()) {
        return options.guard->status();
      }
    }
  }

  bool used_pipelined = false;
  bool used_bnlj = false;
  std::unique_ptr<CostModel> cost;
  if (options.estimate_cardinalities) {
    cost = std::make_unique<CostModel>(doc, options.index);
  }
  for (uint32_t base : bases) {
    PatternTreePlan tp;
    TreePlanner builder(doc, tree, &plan.decomposition, strategy,
                        merged.get(), &merged_index, &access, &tp,
                        &used_pipelined, &used_bnlj, options.pool,
                        options.guard, cost.get(), options.result_cache,
                        options.store, options.exec);
    BT_ASSIGN_OR_RETURN(tp.root, builder.Build(base, 1));
    tp.tops = tp.root->top_slots();
    plan.trees.push_back(std::move(tp));
  }
  plan.merged_scan = std::move(merged);
  // Summarize: the single strategy used, or kAuto for mixed plans.
  if (used_pipelined && used_bnlj) {
    plan.chosen = JoinStrategy::kAuto;
  } else if (used_bnlj) {
    plan.chosen = strategy == JoinStrategy::kNaiveNestedLoop
                      ? JoinStrategy::kNaiveNestedLoop
                      : JoinStrategy::kBoundedNestedLoop;
  } else {
    plan.chosen = JoinStrategy::kPipelined;
  }
  return plan;
}

Result<std::vector<xml::NodeId>> EvaluatePathQuery(
    const xml::Document* doc, const pattern::BlossomTree* tree,
    const PlanOptions& options) {
  BT_ASSIGN_OR_RETURN(QueryPlan plan, PlanQuery(doc, tree, options));
  if (plan.trees.size() != 1) {
    return Status::InvalidArgument("path queries have one pattern tree");
  }
  pattern::SlotId result = tree->SlotOfVariable("result");
  if (result == pattern::kNoSlot) {
    return Status::InvalidArgument("no result slot; not a path query");
  }
  PatternTreePlan& tp = plan.trees[0];
  std::vector<xml::NodeId> out;
  nestedlist::NestedList nl;
  while (tp.root->GetNext(&nl)) {
    auto part = nestedlist::Project(*tree, tp.tops, nl, result);
    out.insert(out.end(), part.begin(), part.end());
  }
  // Operators end their streams early when the guard trips; distinguish
  // that from genuine exhaustion before claiming a complete result.
  if (options.guard != nullptr && options.guard->Tripped()) {
    return options.guard->status();
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace opt
}  // namespace blossomtree
