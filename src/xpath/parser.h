#ifndef BLOSSOMTREE_XPATH_PARSER_H_
#define BLOSSOMTREE_XPATH_PARSER_H_

#include <cstddef>
#include <string_view>

#include "util/resource_guard.h"
#include "util/status.h"
#include "xpath/ast.h"

namespace blossomtree {
namespace xpath {

/// \brief Parses a complete path expression (the whole input must be
/// consumed, modulo surrounding whitespace).
///
/// Accepted forms (paper §3.1 and the Appendix A test queries):
///   /a/b[c/d = "x"]//e   //a[2]/b[.="v"]   doc("bib.xml")//book/title
///   $v/author            .//name           following-sibling::b
///
/// `max_depth` caps predicate-nesting recursion (`a[a[a[…]]]`); deeper
/// inputs return a ParseError instead of overflowing the stack.
Result<PathExpr> ParsePath(std::string_view input,
                           size_t max_depth = util::kDefaultMaxParseDepth);

/// \brief Parses the longest path expression starting at `*pos` and leaves
/// `*pos` just past it. Used by the FLWOR parser, whose grammar embeds paths
/// terminated by keywords / punctuation.
///
/// Stops (without error) at top-level whitespace, ',', '{', '}', ')',
/// comparison characters and end of input.
Result<PathExpr> ParsePathPrefix(std::string_view input, size_t* pos,
                                 size_t max_depth =
                                     util::kDefaultMaxParseDepth);

}  // namespace xpath
}  // namespace blossomtree

#endif  // BLOSSOMTREE_XPATH_PARSER_H_
