#include "xpath/ast.h"

namespace blossomtree {
namespace xpath {

const char* AxisToString(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "/";
    case Axis::kDescendant:
      return "//";
    case Axis::kFollowingSibling:
      return "following-sibling::";
    case Axis::kSelf:
      return ".";
    case Axis::kAttribute:
      return "@";
    case Axis::kParent:
      return "parent::";
    case Axis::kAncestor:
      return "ancestor::";
    case Axis::kFollowing:
      return "following::";
    case Axis::kPreceding:
      return "preceding::";
  }
  return "?";
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNeq:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

void AppendStep(const Step& step, bool first, bool context_start,
                std::string* out) {
  switch (step.axis) {
    case Axis::kChild:
      if (!(first && context_start)) *out += "/";
      break;
    case Axis::kDescendant:
      *out += "//";
      break;
    case Axis::kFollowingSibling:
      if (!(first && context_start)) *out += "/";
      *out += "following-sibling::";
      break;
    case Axis::kSelf:
      if (step.name.empty()) {
        *out += ".";
        return;  // Bare context step.
      }
      if (!(first && context_start)) *out += "/";
      *out += "self::";
      break;
    case Axis::kAttribute:
      if (!(first && context_start)) *out += "/";
      *out += "@";
      break;
    case Axis::kParent:
      if (!(first && context_start)) *out += "/";
      *out += "parent::";
      break;
    case Axis::kAncestor:
      if (!(first && context_start)) *out += "/";
      *out += "ancestor::";
      break;
    case Axis::kFollowing:
      if (!(first && context_start)) *out += "/";
      *out += "following::";
      break;
    case Axis::kPreceding:
      if (!(first && context_start)) *out += "/";
      *out += "preceding::";
      break;
  }
  *out += step.name;
  for (const Predicate& p : step.predicates) {
    *out += "[";
    switch (p.kind) {
      case Predicate::Kind::kExists:
        *out += p.path->ToString();
        break;
      case Predicate::Kind::kValueCompare:
        *out += p.path->ToString();
        *out += " ";
        *out += CompareOpToString(p.op);
        *out += " \"";
        *out += p.literal;
        *out += "\"";
        break;
      case Predicate::Kind::kPosition:
        *out += std::to_string(p.position);
        break;
    }
    *out += "]";
  }
}

}  // namespace

std::string PathExpr::ToString() const {
  std::string out;
  bool context_start = false;
  switch (start) {
    case StartKind::kRoot:
      if (!document.empty()) {
        out += "doc(\"" + document + "\")";
      }
      break;
    case StartKind::kVariable:
      out += "$" + variable;
      break;
    case StartKind::kContext:
      context_start = true;
      break;
  }
  if (steps.empty() && context_start) return ".";
  for (size_t i = 0; i < steps.size(); ++i) {
    AppendStep(steps[i], i == 0, context_start, &out);
  }
  return out;
}

PathExpr ClonePath(const PathExpr& path) {
  PathExpr out;
  out.start = path.start;
  out.document = path.document;
  out.variable = path.variable;
  out.steps.reserve(path.steps.size());
  for (const Step& s : path.steps) {
    Step copy;
    copy.axis = s.axis;
    copy.name = s.name;
    for (const Predicate& p : s.predicates) {
      Predicate pc;
      pc.kind = p.kind;
      pc.op = p.op;
      pc.literal = p.literal;
      pc.position = p.position;
      if (p.path) {
        pc.path = std::make_unique<PathExpr>(ClonePath(*p.path));
      }
      copy.predicates.push_back(std::move(pc));
    }
    out.steps.push_back(std::move(copy));
  }
  return out;
}

}  // namespace xpath
}  // namespace blossomtree
