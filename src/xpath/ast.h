#ifndef BLOSSOMTREE_XPATH_AST_H_
#define BLOSSOMTREE_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace blossomtree {
namespace xpath {

/// \brief Navigation axes of the supported XPath subset.
///
/// `/` and `following-sibling::` are the *local* axes (NoK pattern trees may
/// only contain these); `//` is the *global* axis on which BlossomTrees are
/// cut into NoK pieces (paper §2.1, Algorithm 1).
enum class Axis {
  kChild,             ///< `/`
  kDescendant,        ///< `//` (descendant-or-self::node()/child:: shorthand)
  kFollowingSibling,  ///< `following-sibling::`
  kSelf,              ///< `.`
  kAttribute,         ///< `@`
  kParent,            ///< `parent::` / `..` — reverse axis; navigational only.
  kAncestor,          ///< `ancestor::` — reverse axis; navigational only.
  kFollowing,         ///< `following::` — document-order axis (§4.3's
                      ///< following-join); navigational only.
  kPreceding,         ///< `preceding::` — reverse document-order axis.
};

/// \brief Returns the surface syntax of an axis ("/", "//", ...).
const char* AxisToString(Axis axis);

/// \brief True for the axes a NoK pattern tree may contain.
inline bool IsLocalAxis(Axis axis) {
  return axis == Axis::kChild || axis == Axis::kFollowingSibling ||
         axis == Axis::kSelf || axis == Axis::kAttribute;
}

/// \brief Reverse axes cannot appear in BlossomTrees at all (pattern edges
/// point downward); queries using them are evaluated navigationally.
inline bool IsReverseAxis(Axis axis) {
  return axis == Axis::kParent || axis == Axis::kAncestor ||
         axis == Axis::kPreceding;
}

/// \brief Axes outside the BlossomTree pattern subset (reverse axes plus
/// `following::`, which relates nodes across subtrees).
inline bool IsNavigationalOnlyAxis(Axis axis) {
  return IsReverseAxis(axis) || axis == Axis::kFollowing;
}

/// \brief Value comparison operators usable in predicates.
enum class CompareOp {
  kEq,   ///< `=`
  kNeq,  ///< `!=`
  kLt,   ///< `<`
  kLe,   ///< `<=`
  kGt,   ///< `>`
  kGe,   ///< `>=`
};

const char* CompareOpToString(CompareOp op);

struct PathExpr;

/// \brief A step predicate `[...]`.
///
/// Three forms are supported, mirroring the paper's query classes:
///  - existence:   `[rel/path]`
///  - value:       `[rel/path = "literal"]` (any CompareOp; `.` allowed)
///  - positional:  `[i]` (1-based, as in `//book[2]`)
struct Predicate {
  enum class Kind { kExists, kValueCompare, kPosition };

  Kind kind;
  std::unique_ptr<PathExpr> path;  ///< Relative path (kExists/kValueCompare).
  CompareOp op = CompareOp::kEq;   ///< kValueCompare only.
  std::string literal;             ///< kValueCompare only.
  long long position = 0;          ///< kPosition only (1-based).
};

/// \brief One location step: axis + node test + predicates.
struct Step {
  Axis axis = Axis::kChild;
  /// Element tag name, attribute name (axis kAttribute), or "*".
  std::string name;
  std::vector<Predicate> predicates;
};

/// \brief A parsed path expression.
///
/// Paths start at the document root (`/a`, `//a`, `doc("f.xml")//a`), at a
/// variable binding (`$v/a`), or at the context node (relative paths inside
/// predicates, including the bare `.`).
struct PathExpr {
  enum class StartKind { kRoot, kVariable, kContext };

  StartKind start = StartKind::kRoot;
  std::string document;  ///< doc("...") argument; may be empty.
  std::string variable;  ///< For kVariable: name without '$'.
  std::vector<Step> steps;

  /// \brief Serializes back to XPath surface syntax (for tests/EXPLAIN).
  std::string ToString() const;
};

/// \brief Deep copy (Predicate holds a unique_ptr, so PathExpr is move-only
/// by default).
PathExpr ClonePath(const PathExpr& path);

}  // namespace xpath
}  // namespace blossomtree

#endif  // BLOSSOMTREE_XPATH_AST_H_
