#include "xpath/parser.h"

#include <cctype>

#include "util/strings.h"

namespace blossomtree {
namespace xpath {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

/// Recursive-descent parser over a flat character buffer.
class PathParser {
 public:
  PathParser(std::string_view input, size_t pos, size_t max_depth)
      : input_(input), pos_(pos), max_depth_(max_depth) {}

  size_t pos() const { return pos_; }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XPath parse error at offset " +
                              std::to_string(pos_) + ": " + msg);
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return AtEnd() ? '\0' : input_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  Status ParseName(std::string* out) {
    if (!IsNameStart(Peek()) && Peek() != '*') {
      return Error("expected a name");
    }
    if (Peek() == '*') {
      ++pos_;
      out->assign(1, '*');
      return Status::OK();
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    // A trailing '.' is never part of a name in our grammar (it would begin
    // a context step); names like "following-sibling" keep internal dashes.
    *out = std::string(input_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParseStringLiteral(std::string* out) {
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Error("expected string literal");
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated string literal");
    *out = std::string(input_.substr(start, pos_ - start));
    ++pos_;
    return Status::OK();
  }

  /// Parses a full path expression: start spec + steps.
  Status ParsePathExpr(PathExpr* out, bool inside_predicate) {
    SkipSpace();
    if (Peek() == '$') {
      ++pos_;
      out->start = PathExpr::StartKind::kVariable;
      BT_RETURN_NOT_OK(ParseName(&out->variable));
      if (out->variable == "*") return Error("'*' is not a variable name");
      if (AtEnd() || (Peek() != '/' )) {
        return Status::OK();  // Bare variable reference: "$v".
      }
      return ParseSteps(out);
    }
    if (input_.substr(pos_).starts_with("doc(")) {
      pos_ += 4;
      SkipSpace();
      out->start = PathExpr::StartKind::kRoot;
      BT_RETURN_NOT_OK(ParseStringLiteral(&out->document));
      SkipSpace();
      if (Peek() != ')') return Error("expected ')' after doc(...)");
      ++pos_;
      if (Peek() != '/') return Error("expected '/' or '//' after doc(...)");
      return ParseSteps(out);
    }
    if (Peek() == '/') {
      // Inside a predicate, "[//c]" and "[/c]" are relative to the context
      // node (the paper's Appendix A queries use "[//c]" as ".//c").
      out->start = inside_predicate ? PathExpr::StartKind::kContext
                                    : PathExpr::StartKind::kRoot;
      return ParseSteps(out);
    }
    // Context-relative (only meaningful inside predicates / FLWOR bodies).
    out->start = PathExpr::StartKind::kContext;
    if (Peek() == '.') {
      ++pos_;
      if (Peek() == '/') {
        // "./a" or ".//a" — the leading self step is a no-op; "//" keeps
        // descendant semantics via ParseSteps.
        return ParseSteps(out);
      }
      Step self;
      self.axis = Axis::kSelf;
      out->steps.push_back(std::move(self));
      return Status::OK();
    }
    if (!IsNameStart(Peek()) && Peek() != '*' && Peek() != '@') {
      return Error("expected a path expression");
    }
    BT_RETURN_NOT_OK(ParseOneStep(out, Axis::kChild));
    return ParseStepsContinuation(out, inside_predicate);
  }

  /// Parses "/step" and "//step" sequences (cursor is at '/').
  Status ParseSteps(PathExpr* out) {
    while (Peek() == '/') {
      Axis axis = Axis::kChild;
      ++pos_;
      if (Peek() == '/') {
        axis = Axis::kDescendant;
        ++pos_;
      }
      BT_RETURN_NOT_OK(ParseOneStep(out, axis));
    }
    return Status::OK();
  }

  Status ParseStepsContinuation(PathExpr* out, bool /*inside_predicate*/) {
    return ParseSteps(out);
  }

  /// Parses one step (name test, optional axis prefix, predicates).
  Status ParseOneStep(PathExpr* out, Axis axis) {
    Step step;
    step.axis = axis;
    if (Peek() == '@') {
      ++pos_;
      step.axis = Axis::kAttribute;
      BT_RETURN_NOT_OK(ParseName(&step.name));
      out->steps.push_back(std::move(step));
      return Status::OK();
    }
    if (Peek() == '.' && PeekAt(1) == '.') {
      // ".." is parent::*.
      pos_ += 2;
      step.axis = Axis::kParent;
      step.name = "*";
      out->steps.push_back(std::move(step));
      return Status::OK();
    }
    if (Peek() == '[') {
      // "//[c/d]" appears in the paper's Q1 for d1 — a wildcard step with a
      // predicate. Treat the missing name test as '*'.
      step.name = "*";
    } else {
      std::string name;
      BT_RETURN_NOT_OK(ParseName(&name));
      if (Peek() == ':' && PeekAt(1) == ':') {
        if (axis == Axis::kDescendant) {
          return Error("'//' cannot combine with a named axis");
        }
        pos_ += 2;
        if (name == "following-sibling") {
          step.axis = Axis::kFollowingSibling;
        } else if (name == "parent") {
          step.axis = Axis::kParent;
        } else if (name == "ancestor") {
          step.axis = Axis::kAncestor;
        } else if (name == "following") {
          step.axis = Axis::kFollowing;
        } else if (name == "preceding") {
          step.axis = Axis::kPreceding;
        } else if (name == "child") {
          step.axis = Axis::kChild;
        } else if (name == "self") {
          step.axis = Axis::kSelf;
        } else {
          return Error("unsupported axis '" + name + "::'");
        }
        BT_RETURN_NOT_OK(ParseName(&step.name));
      } else {
        step.name = std::move(name);
      }
    }
    while (Peek() == '[') {
      Predicate pred;
      BT_RETURN_NOT_OK(ParsePredicate(&pred));
      step.predicates.push_back(std::move(pred));
    }
    out->steps.push_back(std::move(step));
    return Status::OK();
  }

  Status ParsePredicate(Predicate* out) {
    // The only recursion cycle in this parser runs through predicates
    // (ParsePredicate → ParsePathExpr → ParseOneStep → ParsePredicate), so
    // guarding the depth here bounds the whole parse: `a[a[a[…]]]` at
    // ~100k levels would otherwise overflow the stack.
    if (++depth_ > max_depth_) {
      return Error("predicate nesting depth exceeds limit of " +
                   std::to_string(max_depth_));
    }
    Status st = ParsePredicateNoGuard(out);
    --depth_;
    return st;
  }

  Status ParsePredicateNoGuard(Predicate* out) {
    ++pos_;  // '['
    SkipSpace();
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      size_t start = pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
      out->kind = Predicate::Kind::kPosition;
      out->position =
          ParseNonNegativeInt(input_.substr(start, pos_ - start));
      if (out->position <= 0) return Error("positions are 1-based");
      SkipSpace();
      if (Peek() != ']') return Error("expected ']'");
      ++pos_;
      return Status::OK();
    }
    auto path = std::make_unique<PathExpr>();
    BT_RETURN_NOT_OK(ParsePathExpr(path.get(), /*inside_predicate=*/true));
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      out->kind = Predicate::Kind::kExists;
      out->path = std::move(path);
      return Status::OK();
    }
    // Value comparison.
    CompareOp op;
    if (Peek() == '=') {
      op = CompareOp::kEq;
      ++pos_;
    } else if (Peek() == '!' && PeekAt(1) == '=') {
      op = CompareOp::kNeq;
      pos_ += 2;
    } else if (Peek() == '<') {
      ++pos_;
      if (Peek() == '=') {
        op = CompareOp::kLe;
        ++pos_;
      } else {
        op = CompareOp::kLt;
      }
    } else if (Peek() == '>') {
      ++pos_;
      if (Peek() == '=') {
        op = CompareOp::kGe;
        ++pos_;
      } else {
        op = CompareOp::kGt;
      }
    } else {
      return Error("expected ']' or comparison operator in predicate");
    }
    SkipSpace();
    std::string literal;
    if (Peek() == '"' || Peek() == '\'') {
      BT_RETURN_NOT_OK(ParseStringLiteral(&literal));
    } else {
      // Bare numeric literal.
      size_t start = pos_;
      if (Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek())) ||
             Peek() == '.') {
        ++pos_;
      }
      if (pos_ == start) return Error("expected literal in predicate");
      literal = std::string(input_.substr(start, pos_ - start));
    }
    SkipSpace();
    if (Peek() != ']') return Error("expected ']'");
    ++pos_;
    out->kind = Predicate::Kind::kValueCompare;
    out->path = std::move(path);
    out->op = op;
    out->literal = std::move(literal);
    return Status::OK();
  }

 private:
  std::string_view input_;
  size_t pos_;
  size_t max_depth_;
  size_t depth_ = 0;
};

}  // namespace

Result<PathExpr> ParsePath(std::string_view input, size_t max_depth) {
  size_t pos = 0;
  BT_ASSIGN_OR_RETURN(PathExpr path, ParsePathPrefix(input, &pos, max_depth));
  while (pos < input.size() &&
         std::isspace(static_cast<unsigned char>(input[pos]))) {
    ++pos;
  }
  if (pos != input.size()) {
    return Status::ParseError("XPath parse error: trailing input at offset " +
                              std::to_string(pos) + " in '" +
                              std::string(input) + "'");
  }
  return path;
}

Result<PathExpr> ParsePathPrefix(std::string_view input, size_t* pos,
                                 size_t max_depth) {
  PathParser parser(input, *pos, max_depth);
  PathExpr path;
  Status st = parser.ParsePathExpr(&path, /*inside_predicate=*/false);
  if (!st.ok()) return st;
  *pos = parser.pos();
  return path;
}

}  // namespace xpath
}  // namespace blossomtree
