#ifndef BLOSSOMTREE_FLWOR_PARSER_H_
#define BLOSSOMTREE_FLWOR_PARSER_H_

#include <memory>
#include <string_view>

#include "util/resource_guard.h"
#include "util/status.h"
#include "flwor/ast.h"

namespace blossomtree {
namespace flwor {

/// \brief Parses a query expression: a FLWOR expression, a direct element
/// constructor wrapping one (as in the paper's Example 1), or a bare path.
///
/// Grammar (paper §3.1, plus constructors for the return clause):
///
///   Expr      ::= Flwor | Constructor | Path
///   Flwor     ::= ('for' Var 'in' Path (',' Var 'in' Path)*
///                 | 'let' Var ':=' Path)+
///                 ('where' Bool)? ('order' 'by' Path Dir?)? 'return' Expr
///   Bool      ::= And ('or' And)*
///   And       ::= Primary ('and' Primary)*
///   Primary   ::= 'not' '(' Bool ')' | 'deep-equal' '(' Op ',' Op ')'
///               | '(' Bool ')' | Op (('<<'|'>>'|'='|'!='|'is') Op)?
///   Op        ::= Path | StringLiteral | Number
///   Constructor ::= '<' Name Attr* '>' (Text | '{' Expr '}' | Constructor)*
///                   '</' Name '>'
///
/// `limits` bounds the recursion depth (expression / boolean / constructor
/// nesting) and the input size; exceeding either returns a ParseError /
/// ResourceExhausted instead of overflowing the stack.
Result<std::unique_ptr<Expr>> ParseQuery(std::string_view input,
                                         const util::ParseLimits& limits = {});

}  // namespace flwor
}  // namespace blossomtree

#endif  // BLOSSOMTREE_FLWOR_PARSER_H_
