#ifndef BLOSSOMTREE_FLWOR_AST_H_
#define BLOSSOMTREE_FLWOR_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xpath/ast.h"

namespace blossomtree {
namespace flwor {

/// \brief One `for $v in path` or `let $v := path` binding (paper §3.1:
/// only path expressions may appear in for/let).
struct Binding {
  enum class Kind { kFor, kLet };
  Kind kind;
  std::string var;  ///< Variable name without '$'.
  xpath::PathExpr path;
};

/// \brief Comparison operators allowed in the where-clause. These are
/// exactly the relationship kinds the paper's crossing edges carry:
/// structural (`<<`, `>>`, `is`), value-based (`=`, `!=`), and mixed
/// (`deep-equal`).
enum class WhereOp {
  kDocBefore,  ///< `<<`
  kDocAfter,   ///< `>>`
  kEq,         ///< general comparison `=` on atomized values
  kNeq,        ///< `!=`
  kIs,         ///< node identity
  kDeepEqual,  ///< deep-equal(a, b)
  kExists,     ///< exists(path) — unary; only `left` is used.
};

const char* WhereOpToString(WhereOp op);

/// \brief A comparison operand: a path (usually `$v/...`), a literal, or
/// count(path) — which atomizes to the match count.
struct Operand {
  enum class Kind { kPath, kLiteral, kCount };
  Kind kind = Kind::kPath;
  xpath::PathExpr path;  ///< kPath / kCount.
  std::string literal;   ///< kLiteral.
};

/// \brief Boolean expression tree over comparisons.
struct BoolExpr {
  enum class Kind { kAnd, kOr, kNot, kCompare };
  Kind kind = Kind::kCompare;
  std::vector<std::unique_ptr<BoolExpr>> children;  ///< kAnd / kOr / kNot.
  // kCompare:
  WhereOp op = WhereOp::kEq;
  Operand left;
  Operand right;
};

struct Expr;

/// \brief A piece of element-constructor content: literal text, an embedded
/// expression `{ ... }`, or a nested constructor.
struct ConstructorItem {
  enum class Kind { kText, kExpr, kElement };
  Kind kind;
  std::string text;                   ///< kText.
  std::unique_ptr<Expr> expr;         ///< kExpr / kElement.
};

/// \brief A direct element constructor `<name>...</name>`.
struct Constructor {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<ConstructorItem> items;
};

/// \brief A FLWOR expression per the paper's restricted grammar:
///   (for | let)+ where? (order by)? return.
struct Flwor {
  std::vector<Binding> bindings;
  std::unique_ptr<BoolExpr> where;        ///< May be null.
  std::optional<xpath::PathExpr> order_by; ///< May be absent.
  bool order_descending = false;
  std::unique_ptr<Expr> ret;
};

/// \brief Top-level query expression: a FLWOR, a constructor (possibly
/// containing FLWORs), or a bare path.
struct Expr {
  enum class Kind { kFlwor, kConstructor, kPath };
  Kind kind;
  std::unique_ptr<Flwor> flwor;
  std::unique_ptr<Constructor> ctor;
  xpath::PathExpr path;
};

}  // namespace flwor
}  // namespace blossomtree

#endif  // BLOSSOMTREE_FLWOR_AST_H_
