#include "flwor/parser.h"

#include <cctype>

#include "util/strings.h"
#include "util/trace.h"
#include "xpath/parser.h"

namespace blossomtree {
namespace flwor {

const char* WhereOpToString(WhereOp op) {
  switch (op) {
    case WhereOp::kDocBefore:
      return "<<";
    case WhereOp::kDocAfter:
      return ">>";
    case WhereOp::kEq:
      return "=";
    case WhereOp::kNeq:
      return "!=";
    case WhereOp::kIs:
      return "is";
    case WhereOp::kDeepEqual:
      return "deep-equal";
    case WhereOp::kExists:
      return "exists";
  }
  return "?";
}

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

class QueryParser {
 public:
  QueryParser(std::string_view input, const util::ParseLimits& limits)
      : input_(input), limits_(limits) {}

  Status Error(const std::string& msg) const {
    return Status::ParseError("FLWOR parse error at offset " +
                              std::to_string(pos_) + ": " + msg);
  }

  /// Bounds the mutual recursion ParseExpr → ParseFlwor → ParseExpr,
  /// ParseBool → … → ParsePrimary → ParseBool, and ParseConstructor →
  /// ParseConstructor: without it ~100k-deep inputs like `((((…))))`
  /// overflow the parser stack.
  Status EnterNesting() {
    if (++depth_ > limits_.max_depth) {
      return Error("nesting depth exceeds limit of " +
                   std::to_string(limits_.max_depth));
    }
    return Status::OK();
  }
  void LeaveNesting() { --depth_; }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return AtEnd() ? '\0' : input_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  /// True if the upcoming token is exactly the keyword `kw` (not a prefix
  /// of a longer name).
  bool PeekKeyword(std::string_view kw) {
    SkipSpace();
    if (!input_.substr(pos_).starts_with(kw)) return false;
    size_t after = pos_ + kw.size();
    return after >= input_.size() || !IsWordChar(input_[after]);
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    pos_ += kw.size();
    return true;
  }

  bool ConsumeToken(std::string_view tok) {
    SkipSpace();
    if (!input_.substr(pos_).starts_with(tok)) return false;
    pos_ += tok.size();
    return true;
  }

  Status ParseVariable(std::string* out) {
    SkipSpace();
    if (Peek() != '$') return Error("expected '$variable'");
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && IsWordChar(Peek())) ++pos_;
    if (pos_ == start) return Error("empty variable name");
    *out = std::string(input_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParseEmbeddedPath(xpath::PathExpr* out) {
    SkipSpace();
    size_t pos = pos_;
    auto r = xpath::ParsePathPrefix(input_, &pos, limits_.max_depth);
    if (!r.ok()) return r.status();
    pos_ = pos;
    *out = r.MoveValue();
    return Status::OK();
  }

  Status ParseExpr(std::unique_ptr<Expr>* out) {
    BT_RETURN_NOT_OK(EnterNesting());
    Status st = ParseExprNoGuard(out);
    LeaveNesting();
    return st;
  }

  Status ParseExprNoGuard(std::unique_ptr<Expr>* out) {
    SkipSpace();
    auto expr = std::make_unique<Expr>();
    if (Peek() == '<' && PeekAt(1) != '/') {
      expr->kind = Expr::Kind::kConstructor;
      expr->ctor = std::make_unique<Constructor>();
      BT_RETURN_NOT_OK(ParseConstructor(expr->ctor.get()));
    } else if (PeekKeyword("for") || PeekKeyword("let")) {
      expr->kind = Expr::Kind::kFlwor;
      expr->flwor = std::make_unique<Flwor>();
      BT_RETURN_NOT_OK(ParseFlwor(expr->flwor.get()));
    } else {
      expr->kind = Expr::Kind::kPath;
      BT_RETURN_NOT_OK(ParseEmbeddedPath(&expr->path));
    }
    *out = std::move(expr);
    return Status::OK();
  }

  Status ParseWholeQuery(std::unique_ptr<Expr>* out) {
    BT_RETURN_NOT_OK(ParseExpr(out));
    SkipSpace();
    if (!AtEnd()) return Error("trailing input after query");
    return Status::OK();
  }

 private:
  Status ParseFlwor(Flwor* out) {
    while (true) {
      if (ConsumeKeyword("for")) {
        // 'for' allows a comma-separated binding list.
        while (true) {
          Binding b;
          b.kind = Binding::Kind::kFor;
          BT_RETURN_NOT_OK(ParseVariable(&b.var));
          if (!ConsumeKeyword("in")) return Error("expected 'in'");
          SkipSpace();
          BT_RETURN_NOT_OK(ParseEmbeddedPath(&b.path));
          out->bindings.push_back(std::move(b));
          SkipSpace();
          if (!ConsumeToken(",")) break;
        }
        continue;
      }
      if (ConsumeKeyword("let")) {
        while (true) {
          Binding b;
          b.kind = Binding::Kind::kLet;
          BT_RETURN_NOT_OK(ParseVariable(&b.var));
          if (!ConsumeToken(":=")) return Error("expected ':='");
          SkipSpace();
          BT_RETURN_NOT_OK(ParseEmbeddedPath(&b.path));
          out->bindings.push_back(std::move(b));
          SkipSpace();
          if (!ConsumeToken(",")) break;
        }
        continue;
      }
      break;
    }
    if (out->bindings.empty()) {
      return Error("FLWOR requires at least one for/let clause");
    }
    if (ConsumeKeyword("where")) {
      BT_RETURN_NOT_OK(ParseBool(&out->where));
    }
    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) return Error("expected 'by' after 'order'");
      SkipSpace();
      xpath::PathExpr key;
      BT_RETURN_NOT_OK(ParseEmbeddedPath(&key));
      out->order_by = std::move(key);
      if (ConsumeKeyword("descending")) {
        out->order_descending = true;
      } else {
        (void)ConsumeKeyword("ascending");
      }
    }
    if (!ConsumeKeyword("return")) return Error("expected 'return'");
    return ParseExpr(&out->ret);
  }

  Status ParseBool(std::unique_ptr<BoolExpr>* out) {
    BT_RETURN_NOT_OK(EnterNesting());
    Status st = ParseBoolNoGuard(out);
    LeaveNesting();
    return st;
  }

  Status ParseBoolNoGuard(std::unique_ptr<BoolExpr>* out) {
    BT_RETURN_NOT_OK(ParseAnd(out));
    while (PeekKeyword("or")) {
      ConsumeKeyword("or");
      auto node = std::make_unique<BoolExpr>();
      node->kind = BoolExpr::Kind::kOr;
      node->children.push_back(std::move(*out));
      std::unique_ptr<BoolExpr> rhs;
      BT_RETURN_NOT_OK(ParseAnd(&rhs));
      node->children.push_back(std::move(rhs));
      *out = std::move(node);
    }
    return Status::OK();
  }

  Status ParseAnd(std::unique_ptr<BoolExpr>* out) {
    BT_RETURN_NOT_OK(ParsePrimary(out));
    while (PeekKeyword("and")) {
      ConsumeKeyword("and");
      auto node = std::make_unique<BoolExpr>();
      node->kind = BoolExpr::Kind::kAnd;
      node->children.push_back(std::move(*out));
      std::unique_ptr<BoolExpr> rhs;
      BT_RETURN_NOT_OK(ParsePrimary(&rhs));
      node->children.push_back(std::move(rhs));
      *out = std::move(node);
    }
    return Status::OK();
  }

  Status ParsePrimary(std::unique_ptr<BoolExpr>* out) {
    SkipSpace();
    if (PeekKeyword("not")) {
      ConsumeKeyword("not");
      if (!ConsumeToken("(")) return Error("expected '(' after 'not'");
      auto node = std::make_unique<BoolExpr>();
      node->kind = BoolExpr::Kind::kNot;
      std::unique_ptr<BoolExpr> inner;
      BT_RETURN_NOT_OK(ParseBool(&inner));
      node->children.push_back(std::move(inner));
      if (!ConsumeToken(")")) return Error("expected ')' after not(...)");
      *out = std::move(node);
      return Status::OK();
    }
    if (PeekKeyword("exists") || PeekKeyword("empty")) {
      bool empty_form = PeekKeyword("empty");
      ConsumeKeyword(empty_form ? "empty" : "exists");
      if (!ConsumeToken("(")) return Error("expected '(' after exists/empty");
      auto node = std::make_unique<BoolExpr>();
      node->kind = BoolExpr::Kind::kCompare;
      node->op = WhereOp::kExists;
      BT_RETURN_NOT_OK(ParseOperand(&node->left));
      if (!ConsumeToken(")")) return Error("expected ')' after exists/empty");
      if (empty_form) {
        // empty(p) ≡ not(exists(p)).
        auto wrapper = std::make_unique<BoolExpr>();
        wrapper->kind = BoolExpr::Kind::kNot;
        wrapper->children.push_back(std::move(node));
        *out = std::move(wrapper);
      } else {
        *out = std::move(node);
      }
      return Status::OK();
    }
    if (PeekKeyword("deep-equal")) {
      ConsumeKeyword("deep-equal");
      if (!ConsumeToken("(")) return Error("expected '(' after 'deep-equal'");
      auto node = std::make_unique<BoolExpr>();
      node->kind = BoolExpr::Kind::kCompare;
      node->op = WhereOp::kDeepEqual;
      BT_RETURN_NOT_OK(ParseOperand(&node->left));
      if (!ConsumeToken(",")) return Error("expected ',' in deep-equal");
      BT_RETURN_NOT_OK(ParseOperand(&node->right));
      if (!ConsumeToken(")")) return Error("expected ')' in deep-equal");
      *out = std::move(node);
      return Status::OK();
    }
    if (ConsumeToken("(")) {
      BT_RETURN_NOT_OK(ParseBool(out));
      if (!ConsumeToken(")")) return Error("expected ')'");
      return Status::OK();
    }
    auto node = std::make_unique<BoolExpr>();
    node->kind = BoolExpr::Kind::kCompare;
    BT_RETURN_NOT_OK(ParseOperand(&node->left));
    SkipSpace();
    if (ConsumeToken("<<")) {
      node->op = WhereOp::kDocBefore;
    } else if (ConsumeToken(">>")) {
      node->op = WhereOp::kDocAfter;
    } else if (ConsumeToken("!=")) {
      node->op = WhereOp::kNeq;
    } else if (Peek() == '=') {
      ++pos_;
      node->op = WhereOp::kEq;
    } else if (PeekKeyword("isnot")) {
      // Convenience surface form for the paper's "isnot" join: not(a is b).
      ConsumeKeyword("isnot");
      node->op = WhereOp::kIs;
      BT_RETURN_NOT_OK(ParseOperand(&node->right));
      auto wrapper = std::make_unique<BoolExpr>();
      wrapper->kind = BoolExpr::Kind::kNot;
      wrapper->children.push_back(std::move(node));
      *out = std::move(wrapper);
      return Status::OK();
    } else if (PeekKeyword("is")) {
      ConsumeKeyword("is");
      node->op = WhereOp::kIs;
    } else {
      // Bare existence test: "where $v/path" — model as path != empty via
      // kEq against a sentinel? Keep it explicit: unsupported.
      return Error("expected a comparison operator in where-clause");
    }
    BT_RETURN_NOT_OK(ParseOperand(&node->right));
    *out = std::move(node);
    return Status::OK();
  }

  Status ParseOperand(Operand* out) {
    SkipSpace();
    if (PeekKeyword("count")) {
      ConsumeKeyword("count");
      if (!ConsumeToken("(")) return Error("expected '(' after count");
      out->kind = Operand::Kind::kCount;
      SkipSpace();
      BT_RETURN_NOT_OK(ParseEmbeddedPath(&out->path));
      if (!ConsumeToken(")")) return Error("expected ')' after count(...)");
      return Status::OK();
    }
    if (Peek() == '"' || Peek() == '\'') {
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated string literal");
      out->kind = Operand::Kind::kLiteral;
      out->literal = std::string(input_.substr(start, pos_ - start));
      ++pos_;
      return Status::OK();
    }
    if (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '-') {
      size_t start = pos_;
      if (Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek())) ||
             Peek() == '.') {
        ++pos_;
      }
      out->kind = Operand::Kind::kLiteral;
      out->literal = std::string(input_.substr(start, pos_ - start));
      return Status::OK();
    }
    out->kind = Operand::Kind::kPath;
    return ParseEmbeddedPath(&out->path);
  }

  Status ParseConstructor(Constructor* out) {
    BT_RETURN_NOT_OK(EnterNesting());
    Status st = ParseConstructorNoGuard(out);
    LeaveNesting();
    return st;
  }

  Status ParseConstructorNoGuard(Constructor* out) {
    // Cursor at '<'.
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && IsWordChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected element name in constructor");
    out->name = std::string(input_.substr(start, pos_ - start));
    // Attributes (literal values only).
    while (true) {
      SkipSpace();
      if (Peek() == '>' || Peek() == '/') break;
      size_t astart = pos_;
      while (!AtEnd() && IsWordChar(Peek())) ++pos_;
      if (pos_ == astart) return Error("expected attribute name");
      std::string aname(input_.substr(astart, pos_ - astart));
      if (!ConsumeToken("=")) return Error("expected '=' in attribute");
      SkipSpace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      ++pos_;
      size_t vstart = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      out->attributes.emplace_back(
          aname, std::string(input_.substr(vstart, pos_ - vstart)));
      ++pos_;
    }
    if (ConsumeToken("/>")) return Status::OK();
    if (!ConsumeToken(">")) return Error("expected '>'");
    // Content.
    while (true) {
      if (AtEnd()) return Error("unterminated constructor <" + out->name + ">");
      if (Peek() == '<' && PeekAt(1) == '/') {
        pos_ += 2;
        size_t nstart = pos_;
        while (!AtEnd() && IsWordChar(Peek())) ++pos_;
        std::string_view closing = input_.substr(nstart, pos_ - nstart);
        if (closing != out->name) {
          return Error("mismatched </" + std::string(closing) + ">");
        }
        SkipSpace();
        if (!ConsumeToken(">")) return Error("expected '>' in end tag");
        return Status::OK();
      }
      if (Peek() == '<') {
        ConstructorItem item;
        item.kind = ConstructorItem::Kind::kElement;
        item.expr = std::make_unique<Expr>();
        item.expr->kind = Expr::Kind::kConstructor;
        item.expr->ctor = std::make_unique<Constructor>();
        BT_RETURN_NOT_OK(ParseConstructor(item.expr->ctor.get()));
        out->items.push_back(std::move(item));
        continue;
      }
      if (Peek() == '{') {
        ++pos_;
        ConstructorItem item;
        item.kind = ConstructorItem::Kind::kExpr;
        BT_RETURN_NOT_OK(ParseExpr(&item.expr));
        SkipSpace();
        if (!ConsumeToken("}")) return Error("expected '}'");
        out->items.push_back(std::move(item));
        continue;
      }
      // Literal text run.
      size_t tstart = pos_;
      while (!AtEnd() && Peek() != '<' && Peek() != '{') ++pos_;
      std::string_view raw = input_.substr(tstart, pos_ - tstart);
      if (!IsAllWhitespace(raw)) {
        ConstructorItem item;
        item.kind = ConstructorItem::Kind::kText;
        item.text = std::string(Trim(raw));
        out->items.push_back(std::move(item));
      }
    }
  }

  std::string_view input_;
  util::ParseLimits limits_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<std::unique_ptr<Expr>> ParseQuery(std::string_view input,
                                         const util::ParseLimits& limits) {
  util::TraceSpan span("parse", "flwor::ParseQuery");
  if (input.size() > limits.max_input_bytes) {
    return Status::ResourceExhausted(
        "query of " + std::to_string(input.size()) +
        " bytes exceeds limit of " + std::to_string(limits.max_input_bytes));
  }
  QueryParser parser(input, limits);
  std::unique_ptr<Expr> out;
  BT_RETURN_NOT_OK(parser.ParseWholeQuery(&out));
  return out;
}

}  // namespace flwor
}  // namespace blossomtree
