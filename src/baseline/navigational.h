#ifndef BLOSSOMTREE_BASELINE_NAVIGATIONAL_H_
#define BLOSSOMTREE_BASELINE_NAVIGATIONAL_H_

#include <string>
#include <vector>

#include "engine/construct.h"
#include "engine/path_eval.h"
#include "flwor/ast.h"
#include "util/status.h"

namespace blossomtree {
namespace baseline {

/// \brief The navigational whole-query evaluator — the stand-in for the
/// paper's X-Hive/DB comparator (see DESIGN.md §5):
///  - path expressions are evaluated step-by-step by direct DOM traversal,
///    with no tag indexes and no work sharing;
///  - FLWOR expressions follow their nested-loop semantics, re-evaluating
///    every embedded path per iteration (the paper's intro: "this approach
///    may be very inefficient, due to the redundancy during the loop").
class NavigationalEvaluator {
 public:
  explicit NavigationalEvaluator(const xml::Document* doc) : doc_(doc) {}

  /// \brief Evaluates a path query to its distinct document-ordered nodes.
  Result<std::vector<xml::NodeId>> EvaluatePath(const xpath::PathExpr& path);

  /// \brief Evaluates a full query expression to serialized XML.
  Result<std::string> EvaluateToXml(const flwor::Expr& expr);

  /// \brief Parses and evaluates a query string.
  Result<std::string> EvaluateQuery(std::string_view query);

  /// \brief Total navigation work across all evaluations.
  uint64_t NodesVisited() const { return nodes_visited_; }

 private:
  Status EvalExpr(const flwor::Expr& expr, const engine::Env& env,
                  engine::ResultBuilder* out);

  const xml::Document* doc_;
  uint64_t nodes_visited_ = 0;
};

}  // namespace baseline
}  // namespace blossomtree

#endif  // BLOSSOMTREE_BASELINE_NAVIGATIONAL_H_
