#include "baseline/navigational.h"

#include <algorithm>

#include "engine/engine.h"
#include "flwor/parser.h"

namespace blossomtree {
namespace baseline {

using engine::Env;
using engine::PathEvaluator;
using engine::ResultBuilder;

Result<std::vector<xml::NodeId>> NavigationalEvaluator::EvaluatePath(
    const xpath::PathExpr& path) {
  PathEvaluator ev(doc_);
  auto r = ev.Evaluate(path);
  nodes_visited_ += ev.NodesVisited();
  return r;
}

Result<std::string> NavigationalEvaluator::EvaluateQuery(
    std::string_view query) {
  BT_ASSIGN_OR_RETURN(std::unique_ptr<flwor::Expr> expr,
                      flwor::ParseQuery(query));
  return EvaluateToXml(*expr);
}

Result<std::string> NavigationalEvaluator::EvaluateToXml(
    const flwor::Expr& expr) {
  ResultBuilder out(doc_);
  BT_RETURN_NOT_OK(EvalExpr(expr, Env{}, &out));
  return out.ToXml();
}

Status NavigationalEvaluator::EvalExpr(const flwor::Expr& expr,
                                       const Env& env, ResultBuilder* out) {
  switch (expr.kind) {
    case flwor::Expr::Kind::kPath: {
      PathEvaluator ev(doc_);
      BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                          ev.EvaluateWith(expr.path, env, {}));
      nodes_visited_ += ev.NodesVisited();
      for (xml::NodeId n : nodes) out->CopyNode(n);
      return Status::OK();
    }
    case flwor::Expr::Kind::kConstructor: {
      out->BeginElement(expr.ctor->name);
      for (const auto& [name, value] : expr.ctor->attributes) {
        out->AddAttribute(name, value);
      }
      for (const flwor::ConstructorItem& item : expr.ctor->items) {
        if (item.kind == flwor::ConstructorItem::Kind::kText) {
          out->AddText(item.text);
        } else {
          BT_RETURN_NOT_OK(EvalExpr(*item.expr, env, out));
        }
      }
      out->EndElement();
      return Status::OK();
    }
    case flwor::Expr::Kind::kFlwor: {
      PathEvaluator ev(doc_);
      BT_ASSIGN_OR_RETURN(std::vector<Env> tuples,
                          engine::NaiveFlworTuples(*expr.flwor, env, &ev));
      nodes_visited_ += ev.NodesVisited();
      const flwor::Flwor& f = *expr.flwor;
      if (f.order_by.has_value()) {
        PathEvaluator kev(doc_);
        std::vector<std::pair<std::string, size_t>> keys;
        for (size_t i = 0; i < tuples.size(); ++i) {
          BT_ASSIGN_OR_RETURN(std::vector<xml::NodeId> nodes,
                              kev.EvaluateWith(*f.order_by, tuples[i], {}));
          keys.emplace_back(
              nodes.empty() ? "" : doc_->StringValue(nodes[0]), i);
        }
        nodes_visited_ += kev.NodesVisited();
        std::stable_sort(keys.begin(), keys.end(),
                         [&](const auto& a, const auto& b) {
                           return f.order_descending ? a.first > b.first
                                                     : a.first < b.first;
                         });
        std::vector<Env> ordered;
        for (const auto& [key, idx] : keys) ordered.push_back(tuples[idx]);
        tuples = std::move(ordered);
      }
      for (const Env& t : tuples) {
        BT_RETURN_NOT_OK(EvalExpr(*f.ret, t, out));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace baseline
}  // namespace blossomtree
