#ifndef BLOSSOMTREE_XML_PARSER_H_
#define BLOSSOMTREE_XML_PARSER_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/document.h"

namespace blossomtree {
namespace xml {

/// \brief Parser configuration.
struct ParseOptions {
  /// Drop text nodes that are pure whitespace between elements (standard for
  /// data-oriented XML; keeps node counts comparable with the paper).
  bool skip_whitespace_text = true;
  /// Keep XML comments/processing instructions? (They are always skipped from
  /// the tree; this flag only controls whether they are a parse error.)
  bool allow_misc = true;
  /// Maximum element-nesting depth. The parser is iterative (no stack-
  /// overflow risk), but each open element costs heap for the
  /// well-formedness stack and one Document node, so pathological inputs
  /// like 10M nested `<a>` are rejected with ResourceExhausted.
  size_t max_depth = 10000;
  /// Maximum input size in bytes; exceeding it returns ResourceExhausted
  /// before any parsing work.
  size_t max_input_bytes = std::numeric_limits<size_t>::max();
};

/// \brief Receives parse events in document order (SAX-style).
///
/// The navigational approaches in the paper consume exactly this stream; the
/// DOM builder is one implementation.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;
  virtual void OnStartElement(std::string_view name) = 0;
  /// Called between OnStartElement and the first child event.
  virtual void OnAttribute(std::string_view name, std::string_view value) = 0;
  virtual void OnText(std::string_view text) = 0;
  virtual void OnEndElement(std::string_view name) = 0;
};

/// \brief Parses XML text, delivering events to `handler`.
///
/// Supports: one root element, attributes, character data, the five
/// predefined entities plus numeric character references, CDATA sections,
/// comments, processing instructions, an XML declaration, and a DOCTYPE
/// declaration (skipped, including bracketed internal subsets and quoted
/// system/public literals).
/// Reports errors with 1-based line/column positions.
Status ParseXml(std::string_view input, SaxHandler* handler,
                const ParseOptions& options = {});

/// \brief Parses XML text into an in-memory Document.
Result<std::unique_ptr<Document>> ParseDocument(
    std::string_view input, const ParseOptions& options = {});

/// \brief Reads a file and parses it into a Document.
Result<std::unique_ptr<Document>> ParseDocumentFile(
    const std::string& path, const ParseOptions& options = {});

}  // namespace xml
}  // namespace blossomtree

#endif  // BLOSSOMTREE_XML_PARSER_H_
