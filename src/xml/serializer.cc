#include "xml/serializer.h"

#include <vector>

#include "util/strings.h"

namespace blossomtree {
namespace xml {

namespace {

bool HasElementChild(const Document& doc, NodeId n) {
  for (NodeId c = doc.FirstChild(n); c != kNullNode; c = doc.NextSibling(c)) {
    if (doc.IsElement(c)) return true;
  }
  return false;
}

bool HasTextChild(const Document& doc, NodeId n) {
  for (NodeId c = doc.FirstChild(n); c != kNullNode; c = doc.NextSibling(c)) {
    if (!doc.IsElement(c)) return true;
  }
  return false;
}

/// One pending unit of output. `close` frames emit the element's end tag;
/// open frames emit the node itself (and, for elements, push the close
/// frame plus the children). `indent` carries the parent's block decision:
/// whether a newline + indentation precedes this frame's output.
struct Frame {
  NodeId node;
  int depth;
  bool close;
  bool indent;
};

/// Iterative serializer (explicit stack): document depth never grows the
/// call stack, so pathologically deep documents serialize instead of
/// overflowing.
void SerializeIter(const Document& doc, NodeId root,
                   const SerializeOptions& opts, std::string* out) {
  std::vector<Frame> stack;
  stack.push_back(Frame{root, 0, false, false});
  std::vector<NodeId> children;  // Scratch for reverse-order pushes.
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.indent) {
      out->push_back('\n');
      out->append(static_cast<size_t>(f.depth) * 2, ' ');
    }
    if (f.close) {
      out->append("</");
      out->append(doc.TagName(f.node));
      out->push_back('>');
      continue;
    }
    if (!doc.IsElement(f.node)) {
      out->append(XmlEscape(doc.Text(f.node)));
      continue;
    }
    out->push_back('<');
    out->append(doc.TagName(f.node));
    for (const auto& [name, value] : doc.Attributes(f.node)) {
      out->push_back(' ');
      out->append(name);
      out->append("=\"");
      out->append(XmlEscape(value));
      out->push_back('"');
    }
    NodeId child = doc.FirstChild(f.node);
    if (child == kNullNode) {
      out->append("/>");
      continue;
    }
    out->push_back('>');
    // Indent only element-only content. Mixed content (any text child)
    // must serialize inline: injected whitespace would become part of the
    // element's text on re-parse.
    bool block = opts.indent && HasElementChild(doc, f.node) &&
                 !HasTextChild(doc, f.node);
    stack.push_back(Frame{f.node, f.depth, true, block});
    children.clear();
    for (NodeId c = child; c != kNullNode; c = doc.NextSibling(c)) {
      children.push_back(c);
    }
    for (size_t i = children.size(); i-- > 0;) {
      stack.push_back(Frame{children[i], f.depth + 1, false, block});
    }
  }
}

}  // namespace

std::string SerializeSubtree(const Document& doc, NodeId n,
                             const SerializeOptions& options) {
  std::string out;
  SerializeIter(doc, n, options, &out);
  return out;
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  if (doc.empty()) return "";
  return SerializeSubtree(doc, doc.Root(), options);
}

}  // namespace xml
}  // namespace blossomtree
