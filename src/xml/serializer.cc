#include "xml/serializer.h"

#include "util/strings.h"

namespace blossomtree {
namespace xml {

namespace {

bool HasElementChild(const Document& doc, NodeId n) {
  for (NodeId c = doc.FirstChild(n); c != kNullNode; c = doc.NextSibling(c)) {
    if (doc.IsElement(c)) return true;
  }
  return false;
}

void SerializeRec(const Document& doc, NodeId n, const SerializeOptions& opts,
                  int depth, std::string* out) {
  if (!doc.IsElement(n)) {
    out->append(XmlEscape(doc.Text(n)));
    return;
  }
  auto indent = [&](int d) {
    if (opts.indent) {
      out->push_back('\n');
      out->append(static_cast<size_t>(d) * 2, ' ');
    }
  };
  out->push_back('<');
  out->append(doc.TagName(n));
  for (const auto& [name, value] : doc.Attributes(n)) {
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    out->append(XmlEscape(value));
    out->push_back('"');
  }
  NodeId child = doc.FirstChild(n);
  if (child == kNullNode) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  bool block = opts.indent && HasElementChild(doc, n);
  for (NodeId c = child; c != kNullNode; c = doc.NextSibling(c)) {
    if (block) indent(depth + 1);
    SerializeRec(doc, c, opts, depth + 1, out);
  }
  if (block) indent(depth);
  out->append("</");
  out->append(doc.TagName(n));
  out->push_back('>');
}

}  // namespace

std::string SerializeSubtree(const Document& doc, NodeId n,
                             const SerializeOptions& options) {
  std::string out;
  SerializeRec(doc, n, options, 0, &out);
  return out;
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  if (doc.empty()) return "";
  return SerializeSubtree(doc, doc.Root(), options);
}

}  // namespace xml
}  // namespace blossomtree
