#include "xml/document.h"

#include <algorithm>
#include <atomic>

namespace blossomtree {
namespace xml {

namespace {

/// Process-wide generation counter shared by Finish() and AdoptExternal():
/// never reused, so every finished/adopted document has a distinct cache
/// identity (DESIGN.md §11).
uint64_t NextGeneration() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TagId TagDictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

TagId TagDictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNullTag : it->second;
}

NodeId Document::BeginElement(std::string_view name) {
  NodeId id = static_cast<NodeId>(kind_.size());
  kind_.push_back(NodeKind::kElement);
  tag_.push_back(tags_.Intern(name));
  NodeId parent = open_stack_.empty() ? kNullNode : open_stack_.back();
  parent_.push_back(parent);
  first_child_.push_back(kNullNode);
  last_child_.push_back(kNullNode);
  next_sibling_.push_back(kNullNode);
  subtree_end_.push_back(id);
  level_.push_back(parent == kNullNode ? 0 : level_[parent] + 1);
  text_span_.emplace_back(0, 0);
  if (parent != kNullNode) {
    if (first_child_[parent] == kNullNode) {
      first_child_[parent] = id;
    } else {
      next_sibling_[last_child_[parent]] = id;
    }
    last_child_[parent] = id;
  }
  open_stack_.push_back(id);
  return id;
}

void Document::AddAttribute(std::string_view name, std::string_view value) {
  NodeId owner = open_stack_.back();
  uint32_t name_off = static_cast<uint32_t>(text_pool_.size());
  text_pool_.append(name);
  uint32_t value_off = static_cast<uint32_t>(text_pool_.size());
  text_pool_.append(value);
  Attribute a{name_off, static_cast<uint32_t>(name.size()), value_off,
              static_cast<uint32_t>(value.size())};
  auto it = attr_range_.find(owner);
  if (it == attr_range_.end()) {
    uint32_t idx = static_cast<uint32_t>(attrs_.size());
    attrs_.push_back(a);
    attr_range_.emplace(owner, std::make_pair(idx, idx + 1));
  } else {
    // Attributes of one element are added contiguously by the builder.
    attrs_.push_back(a);
    it->second.second = static_cast<uint32_t>(attrs_.size());
  }
}

NodeId Document::AddText(std::string_view text) {
  NodeId id = static_cast<NodeId>(kind_.size());
  kind_.push_back(NodeKind::kText);
  tag_.push_back(kNullTag);
  NodeId parent = open_stack_.empty() ? kNullNode : open_stack_.back();
  parent_.push_back(parent);
  first_child_.push_back(kNullNode);
  last_child_.push_back(kNullNode);
  next_sibling_.push_back(kNullNode);
  subtree_end_.push_back(id);
  level_.push_back(parent == kNullNode ? 0 : level_[parent] + 1);
  uint32_t off = static_cast<uint32_t>(text_pool_.size());
  text_pool_.append(text);
  text_span_.emplace_back(off, static_cast<uint32_t>(text.size()));
  if (parent != kNullNode) {
    if (first_child_[parent] == kNullNode) {
      first_child_[parent] = id;
    } else {
      next_sibling_[last_child_[parent]] = id;
    }
    last_child_[parent] = id;
  }
  return id;
}

void Document::EndElement() {
  NodeId id = open_stack_.back();
  open_stack_.pop_back();
  subtree_end_[id] = static_cast<NodeId>(kind_.size() - 1);
}

Status Document::Finish() {
  if (!open_stack_.empty()) {
    return Status::Internal("Document::Finish with unclosed elements");
  }
  ComputeStats();
  // Process-wide, never reused: identical bytes re-parsed into a new
  // Document get a new generation, which is what invalidates NoK result
  // cache entries keyed to the old object (DESIGN.md §11).
  generation_ = NextGeneration();
  return Status::OK();
}

Status Document::AdoptExternal(ExternalLayout layout) {
  if (!kind_.empty() || generation_ != 0 || ext_.records != nullptr) {
    return Status::Internal("AdoptExternal on a non-empty document");
  }
  if (layout.num_nodes > 0 &&
      (layout.records == nullptr || layout.parent == nullptr)) {
    return Status::InvalidArgument("AdoptExternal: missing node arrays");
  }
  if (!layout.tag_names.empty() &&
      (layout.tag_stream_offsets == nullptr ||
       layout.tag_recursion == nullptr)) {
    return Status::InvalidArgument("AdoptExternal: missing per-tag arrays");
  }
  if (layout.num_text_spans > 0 && layout.text_spans == nullptr) {
    return Status::InvalidArgument("AdoptExternal: missing text spans");
  }
  if ((layout.num_attrs > 0 && layout.attrs == nullptr) ||
      (layout.num_attr_owners > 0 && layout.attr_owners == nullptr)) {
    return Status::InvalidArgument("AdoptExternal: missing attribute arrays");
  }
  // Intern the persisted dictionary in TagId order, so on-disk TagIds and
  // in-memory TagIds coincide and the per-tag streams index directly.
  for (const std::string& name : layout.tag_names) tags_.Intern(name);
  if (tags_.size() != layout.tag_names.size()) {
    return Status::InvalidArgument(
        "AdoptExternal: duplicate names in tag dictionary");
  }
  num_elements_ = layout.num_elements;
  max_depth_ = layout.max_depth;
  avg_depth_ = layout.avg_depth;
  max_recursion_ = layout.max_recursion;
  ext_ = std::move(layout);
  // Names now live in tags_; keep the layout copy from doubling memory.
  ext_.tag_names.clear();
  ext_.tag_names.shrink_to_fit();
  generation_ = NextGeneration();
  return Status::OK();
}

std::string_view Document::Text(NodeId n) const {
  if (ext_.records != nullptr) {
    uint32_t ref = ext_.records[n].text_ref;
    if (ref == static_cast<uint32_t>(-1)) return {};
    const ExternalTextSpan& span = ext_.text_spans[ref];
    return std::string_view(ext_.text_pool + span.offset, span.length);
  }
  const auto& span = text_span_[n];
  return std::string_view(text_pool_).substr(span.first, span.second);
}

std::string Document::StringValue(NodeId n) const {
  if (Kind(n) == NodeKind::kText) return std::string(Text(n));
  std::string out;
  NodeId end = SubtreeEnd(n);
  for (NodeId i = n; i <= end; ++i) {
    if (Kind(i) == NodeKind::kText) {
      auto t = Text(i);
      out.append(t.data(), t.size());
    }
  }
  return out;
}

const ExternalAttrOwner* Document::FindExternalAttrs(NodeId n) const {
  const ExternalAttrOwner* begin = ext_.attr_owners;
  const ExternalAttrOwner* end = begin + ext_.num_attr_owners;
  const ExternalAttrOwner* it = std::lower_bound(
      begin, end, n,
      [](const ExternalAttrOwner& o, NodeId node) { return o.node < node; });
  return (it != end && it->node == n) ? it : nullptr;
}

std::vector<std::pair<std::string_view, std::string_view>>
Document::Attributes(NodeId n) const {
  std::vector<std::pair<std::string_view, std::string_view>> out;
  uint32_t first = 0;
  uint32_t last = 0;
  std::string_view pool;
  if (ext_.records != nullptr) {
    const ExternalAttrOwner* owner = FindExternalAttrs(n);
    if (owner == nullptr) return out;
    first = owner->first;
    last = owner->last;
    pool = std::string_view(ext_.text_pool, ext_.text_pool_bytes);
  } else {
    auto it = attr_range_.find(n);
    if (it == attr_range_.end()) return out;
    first = it->second.first;
    last = it->second.second;
    pool = std::string_view(text_pool_);
  }
  const Attribute* attrs = ext_.records != nullptr ? ext_.attrs : attrs_.data();
  for (uint32_t i = first; i < last; ++i) {
    const Attribute& a = attrs[i];
    out.emplace_back(pool.substr(a.name_offset, a.name_len),
                     pool.substr(a.value_offset, a.value_len));
  }
  return out;
}

bool Document::AttributeValue(NodeId n, std::string_view name,
                              std::string_view* value) const {
  uint32_t first = 0;
  uint32_t last = 0;
  std::string_view pool;
  if (ext_.records != nullptr) {
    const ExternalAttrOwner* owner = FindExternalAttrs(n);
    if (owner == nullptr) return false;
    first = owner->first;
    last = owner->last;
    pool = std::string_view(ext_.text_pool, ext_.text_pool_bytes);
  } else {
    auto it = attr_range_.find(n);
    if (it == attr_range_.end()) return false;
    first = it->second.first;
    last = it->second.second;
    pool = std::string_view(text_pool_);
  }
  const Attribute* attrs = ext_.records != nullptr ? ext_.attrs : attrs_.data();
  for (uint32_t i = first; i < last; ++i) {
    const Attribute& a = attrs[i];
    if (pool.substr(a.name_offset, a.name_len) == name) {
      *value = pool.substr(a.value_offset, a.value_len);
      return true;
    }
  }
  return false;
}

std::span<const NodeId> Document::TagIndex(TagId t) const {
  if (ext_.records != nullptr) {
    // Zero-copy view over the persisted per-tag stream — no build pass.
    if (t == kNullTag || t >= tags_.size()) return {};
    uint64_t begin = ext_.tag_stream_offsets[t];
    uint64_t end = ext_.tag_stream_offsets[t + 1];
    return {ext_.tag_streams + begin, static_cast<size_t>(end - begin)};
  }
  // Built at most once even under concurrent callers: documents are shared
  // read-only across a service's concurrent queries, and the pre-PR 6
  // unguarded lazy build was a data race in that regime.
  std::call_once(tag_index_once_, [this] {
    tag_index_.assign(tags_.size(), {});
    for (NodeId n = 0; n < kind_.size(); ++n) {
      if (kind_[n] == NodeKind::kElement) tag_index_[tag_[n]].push_back(n);
    }
  });
  if (t == kNullTag || t >= tag_index_.size()) return {};
  return tag_index_[t];
}

void Document::ComputeStats() {
  num_elements_ = 0;
  max_depth_ = 0;
  max_recursion_ = 0;
  uint64_t depth_sum = 0;
  // Same-tag nesting degree via a DFS with per-tag counters: the ancestor
  // chain of node n is exactly the elements a with a <= n <= SubtreeEnd(a),
  // which we track with an explicit stack during the linear scan.
  std::vector<NodeId> stack;
  std::vector<uint32_t> tag_depth(tags_.size(), 0);
  tag_recursion_.assign(tags_.size(), 0);
  for (NodeId n = 0; n < kind_.size(); ++n) {
    while (!stack.empty() && subtree_end_[stack.back()] < n) {
      --tag_depth[tag_[stack.back()]];
      stack.pop_back();
    }
    if (kind_[n] != NodeKind::kElement) continue;
    ++num_elements_;
    uint32_t depth = level_[n] + 1;  // Table 1 counts the root as depth 1.
    depth_sum += depth;
    max_depth_ = std::max(max_depth_, depth);
    uint32_t deg = ++tag_depth[tag_[n]];
    max_recursion_ = std::max(max_recursion_, deg);
    tag_recursion_[tag_[n]] = std::max(tag_recursion_[tag_[n]], deg);
    stack.push_back(n);
  }
  avg_depth_ = num_elements_ == 0
                   ? 0.0
                   : static_cast<double>(depth_sum) / num_elements_;
}

uint32_t SiblingRank(const Document& doc, NodeId n, std::string_view tag) {
  NodeId parent = doc.Parent(n);
  if (parent == kNullNode) return 1;
  uint32_t rank = 0;
  for (NodeId c = doc.FirstChild(parent); c != kNullNode;
       c = doc.NextSibling(c)) {
    if (!doc.IsElement(c)) continue;
    if (tag == "*" || doc.TagName(c) == tag) ++rank;
    if (c == n) return rank;
  }
  return rank;
}

size_t Document::StructureBytes() const {
  if (ext_.records != nullptr) {
    return ext_.num_nodes * (sizeof(PackedNodeRecord) + sizeof(NodeId));
  }
  return kind_.size() * (sizeof(NodeKind) + sizeof(TagId) + 4 * sizeof(NodeId) +
                         sizeof(uint32_t));
}

}  // namespace xml
}  // namespace blossomtree
